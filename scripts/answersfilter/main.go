// Command answersfilter canonicalizes an imgrn-server query response for
// byte-exact comparison across restarts: it reads the JSON response on
// stdin and prints only the answers — source, full-precision probability,
// gene labels and edges — one line per answer.
//
// The smoke tests (scripts/persist_smoke.sh) compare these lines before
// a kill -9 and after the warm restart. The stats block is deliberately
// dropped: a warm boot bulk-loads its R*-trees from snapshot points, so
// simulated page-I/O counters can differ from the incrementally grown
// pre-crash tree even though the answer set is identical — the engine's
// durability contract is about answers, not access paths (DESIGN.md §12).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

type response struct {
	Answers []struct {
		Source int      `json:"source"`
		Prob   float64  `json:"prob"`
		Genes  []string `json:"genes"`
		Edges  []struct {
			S    int     `json:"s"`
			T    int     `json:"t"`
			Prob float64 `json:"prob"`
		} `json:"edges"`
	} `json:"answers"`
	Error string `json:"error"`
}

func main() {
	var resp response
	if err := json.NewDecoder(os.Stdin).Decode(&resp); err != nil {
		fmt.Fprintln(os.Stderr, "answersfilter: invalid response JSON:", err)
		os.Exit(1)
	}
	if resp.Error != "" {
		fmt.Fprintln(os.Stderr, "answersfilter: server error:", resp.Error)
		os.Exit(1)
	}
	for _, a := range resp.Answers {
		var edges []string
		for _, e := range a.Edges {
			edges = append(edges, fmt.Sprintf("%d-%d:%.17g", e.S, e.T, e.Prob))
		}
		fmt.Printf("src=%d prob=%.17g genes=%s edges=%s\n",
			a.Source, a.Prob, strings.Join(a.Genes, ","), strings.Join(edges, ";"))
	}
}
