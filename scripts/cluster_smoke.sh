#!/bin/sh
# cluster_smoke.sh — end-to-end distributed-serving smoke test (DESIGN.md §15):
# builds the real binaries, boots three durable shard servers plus a
# scatter-gather coordinator over them (R=2 replication on a shared
# consistent-hash ring), and asserts:
#
#   1. the coordinator answers /query-graph deterministically (two runs,
#      byte-identical answers),
#   2. /query-batch streams one frame per query plus a terminal done frame,
#   3. mutations route through the ring, replicate to both replicas, and
#      show up in the coordinator's aggregate /stats,
#   4. kill -9 of one shard server leaves every query answerable — the
#      surviving replicas take over with byte-identical answers,
#   5. the killed server warm-restarts from its own -data-dir and rejoins,
#   6. the cluster metric families are live on both roles.
#
# Run via `make cluster-smoke`. Exits non-zero on any violation.
set -eu

BASE="${SMOKE_PORT:-18990}"
CPORT=$BASE
P0=$((BASE + 1)); P1=$((BASE + 2)); P2=$((BASE + 3))
ROSTER="http://127.0.0.1:$P0,http://127.0.0.1:$P1,http://127.0.0.1:$P2"
TMP="$(mktemp -d)"
PIDS=""
cleanup() {
    for pid in $PIDS; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

QUERY='{
  "genes": ["1", "2"],
  "edges": [{"s": 0, "t": 1, "prob": 0.6}],
  "params": {"gamma": 0.5, "alpha": 0.3, "analytic": true}
}'

wait_healthy() { # port logfile pid
    i=0
    until curl -fsS "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ] || ! kill -0 "$3" 2>/dev/null; then
            echo "FAIL: server on :$1 did not become healthy; log:" >&2
            cat "$2" >&2
            exit 1
        fi
        sleep 0.2
    done
}

run_query() {
    curl -fsS "http://127.0.0.1:$CPORT/query-graph" -d "$QUERY" | "$TMP/answersfilter"
}

start_shard() { # index port logfile
    "$TMP/imgrn-server" -role shard -shards-at "$ROSTER" -server-index "$1" \
        -replication 2 -db "$TMP/db.imgrn" -data-dir "$TMP/data$1" \
        -addr "127.0.0.1:$2" >"$3" 2>&1 &
    LAST_PID=$!
    PIDS="$PIDS $LAST_PID"
}

echo "== building binaries"
go build -o "$TMP/imgrn-datagen" ./cmd/imgrn-datagen
go build -o "$TMP/imgrn-server" ./cmd/imgrn-server
go build -o "$TMP/answersfilter" ./scripts/answersfilter

echo "== generating tiny database"
"$TMP/imgrn-datagen" -out "$TMP/db.imgrn" -n 40 -nmin 8 -nmax 14 -lmin 10 -lmax 16 -pool 60 -seed 7

echo "== booting 3 durable shard servers (R=2)"
start_shard 0 "$P0" "$TMP/shard0.log"; S0_PID=$LAST_PID
start_shard 1 "$P1" "$TMP/shard1.log"; S1_PID=$LAST_PID
start_shard 2 "$P2" "$TMP/shard2.log"; S2_PID=$LAST_PID
wait_healthy "$P0" "$TMP/shard0.log" "$S0_PID"
wait_healthy "$P1" "$TMP/shard1.log" "$S1_PID"
wait_healthy "$P2" "$TMP/shard2.log" "$S2_PID"
for i in 0 1 2; do
    grep -q "cluster: shard server $i/3 serving global shards" "$TMP/shard$i.log" \
        || { echo "FAIL: shard $i boot line missing; log:"; cat "$TMP/shard$i.log"; exit 1; }
done

echo "== booting coordinator"
"$TMP/imgrn-server" -role coordinator -shards-at "$ROSTER" -replication 2 \
    -addr "127.0.0.1:$CPORT" >"$TMP/coord.log" 2>&1 &
COORD_PID=$!
PIDS="$PIDS $COORD_PID"
wait_healthy "$CPORT" "$TMP/coord.log" "$COORD_PID"
grep -q 'cluster: coordinator over 3 shard servers (P=3, R=2)' "$TMP/coord.log" \
    || { echo "FAIL: coordinator boot line missing; log:"; cat "$TMP/coord.log"; exit 1; }

echo "== membership: 3 healthy shard servers"
curl -fsS "http://127.0.0.1:$CPORT/cluster/members" >"$TMP/members.json"
[ "$(grep -o '"healthy":true' "$TMP/members.json" | wc -l)" -eq 3 ] \
    || { echo "FAIL: expected 3 healthy members:"; cat "$TMP/members.json"; exit 1; }

echo "== scatter-gather query is deterministic"
run_query >"$TMP/q1.answers"
[ -s "$TMP/q1.answers" ] || { echo "FAIL: query returned no answers"; exit 1; }
run_query >"$TMP/q2.answers"
cmp -s "$TMP/q1.answers" "$TMP/q2.answers" \
    || { echo "FAIL: identical queries returned different answers"; exit 1; }

echo "== batch endpoint streams per-query frames"
curl -fsS "http://127.0.0.1:$CPORT/query-batch" -d '{
  "queries": [
    {"genes": ["1", "2"], "edges": [{"s": 0, "t": 1, "prob": 0.6}],
     "params": {"gamma": 0.5, "alpha": 0.3, "analytic": true}},
    {"genes": ["2", "3"], "edges": [{"s": 0, "t": 1, "prob": 0.5}],
     "params": {"gamma": 0.5, "alpha": 0.3, "analytic": true}}
  ]
}' >"$TMP/batch.ndjson"
[ "$(wc -l <"$TMP/batch.ndjson")" -eq 3 ] \
    || { echo "FAIL: batch stream should be 2 item frames + 1 done frame:"; cat "$TMP/batch.ndjson"; exit 1; }
grep -q '"done":true' "$TMP/batch.ndjson" \
    || { echo "FAIL: batch stream missing terminal done frame"; exit 1; }

echo "== replicated mutations through the ring (3 adds + 1 remove)"
for src in 900 901 902; do
    curl -fsS "http://127.0.0.1:$CPORT/add-matrix" -d '{
      "source": '"$src"',
      "genes": ["1", "2"],
      "columns": [[1,2,3,4,5,6,7,8,1,2,3,4],
                  [2,1,4,3,6,5,8,7,2,1,4,3]]
    }' >/dev/null || { echo "FAIL: add-matrix $src"; exit 1; }
done
curl -fsS "http://127.0.0.1:$CPORT/remove-matrix" -d '{"source": 5}' >/dev/null \
    || { echo "FAIL: remove-matrix 5"; exit 1; }
curl -fsS "http://127.0.0.1:$CPORT/stats" >"$TMP/stats.json"
grep -q '"matrices":42' "$TMP/stats.json" \
    || { echo "FAIL: expected 42 matrices (40 + 3 adds - 1 remove):"; cat "$TMP/stats.json"; exit 1; }
run_query >"$TMP/q3.answers"

echo "== kill -9 one shard server; replicated reads keep answering"
kill -9 "$S2_PID"
wait "$S2_PID" 2>/dev/null || true
run_query >"$TMP/q4.answers"
cmp -s "$TMP/q3.answers" "$TMP/q4.answers" \
    || { echo "FAIL: answers changed after losing one replica:" >&2; \
         diff "$TMP/q3.answers" "$TMP/q4.answers" >&2 || true; exit 1; }

echo "== warm restart of the killed server from its own -data-dir"
start_shard 2 "$P2" "$TMP/shard2b.log"; S2_PID=$LAST_PID
wait_healthy "$P2" "$TMP/shard2b.log" "$S2_PID"
grep -q 'warm=true' "$TMP/shard2b.log" \
    || { echo "FAIL: restart was not a warm boot; log:"; cat "$TMP/shard2b.log"; exit 1; }
run_query >"$TMP/q5.answers"
cmp -s "$TMP/q3.answers" "$TMP/q5.answers" \
    || { echo "FAIL: answers changed after warm rejoin"; exit 1; }

echo "== cluster metric families present on both roles"
curl -fsS "http://127.0.0.1:$CPORT/metrics" >"$TMP/coord-metrics.txt"
for family in imgrn_cluster_members imgrn_cluster_scatters_total \
    imgrn_rpc_requests_total imgrn_rpc_seconds; do
    grep -q "^# TYPE $family " "$TMP/coord-metrics.txt" \
        || { echo "FAIL: family $family missing from coordinator /metrics"; exit 1; }
done
grep -q '^imgrn_cluster_members 3$' "$TMP/coord-metrics.txt" \
    || { echo "FAIL: imgrn_cluster_members should be 3"; exit 1; }
grep -q '^imgrn_cluster_members_healthy 3$' "$TMP/coord-metrics.txt" \
    || { echo "FAIL: all 3 members should be healthy after the rejoin"; exit 1; }
curl -fsS "http://127.0.0.1:$P0/metrics" >"$TMP/shard-metrics.txt"
grep -q 'endpoint="cluster-exec"' "$TMP/shard-metrics.txt" \
    || { echo "FAIL: shard server /metrics missing cluster-exec label"; exit 1; }

echo "PASS: scatter-gather deterministic, mutations replicated, kill -9 survived, warm rejoin byte-identical"
