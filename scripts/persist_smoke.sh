#!/bin/sh
# persist_smoke.sh — end-to-end crash-durability smoke test (DESIGN.md §12):
# builds the real binaries, cold-boots a durable server, applies a mutation
# storm over HTTP, records the query answers, kills the server with SIGKILL
# (no checkpoint, no flush beyond the per-mutation fsync), restarts it from
# the same -data-dir, and asserts:
#
#   1. the restart is a WARM boot that replays exactly the logged mutations
#      and re-embeds ONLY those (snapshot sources load without Monte Carlo),
#   2. every acknowledged mutation survived,
#   3. query answers are byte-identical before and after the crash,
#   4. a clean shutdown checkpoints, so the NEXT boot replays nothing.
#
# Run via `make persist-smoke`. Exits non-zero on any violation.
set -eu

PORT="${SMOKE_PORT:-18978}"
TMP="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

QUERY='{
  "genes": ["1", "2"],
  "edges": [{"s": 0, "t": 1, "prob": 0.6}],
  "params": {"gamma": 0.5, "alpha": 0.3, "analytic": true}
}'

wait_healthy() {
    i=0
    until curl -fsS "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "FAIL: server did not become healthy; log:" >&2
            cat "$1" >&2
            exit 1
        fi
        if ! kill -0 "$SERVER_PID" 2>/dev/null; then
            echo "FAIL: server exited; log:" >&2
            cat "$1" >&2
            exit 1
        fi
        sleep 0.2
    done
}

run_query() {
    curl -fsS "http://127.0.0.1:$PORT/query-graph" -d "$QUERY" | "$TMP/answersfilter"
}

echo "== building binaries"
go build -o "$TMP/imgrn-datagen" ./cmd/imgrn-datagen
go build -o "$TMP/imgrn-server" ./cmd/imgrn-server
go build -o "$TMP/answersfilter" ./scripts/answersfilter

echo "== generating tiny database"
"$TMP/imgrn-datagen" -out "$TMP/db.imgrn" -n 40 -nmin 8 -nmax 14 -lmin 10 -lmax 16 -pool 60 -seed 7

echo "== cold boot with -data-dir"
"$TMP/imgrn-server" -db "$TMP/db.imgrn" -data-dir "$TMP/data" -shards 2 \
    -addr "127.0.0.1:$PORT" >"$TMP/boot1.log" 2>&1 &
SERVER_PID=$!
wait_healthy "$TMP/boot1.log"
grep -q 'store: cold boot gen=1' "$TMP/boot1.log" \
    || { echo "FAIL: first boot was not a cold boot; log:"; cat "$TMP/boot1.log"; exit 1; }

echo "== mutation storm (3 adds + 1 remove, all acked)"
for src in 900 901 902; do
    curl -fsS "http://127.0.0.1:$PORT/add-matrix" -d '{
      "source": '"$src"',
      "genes": ["1", "2"],
      "columns": [[1,2,3,4,5,6,7,8,1,2,3,4],
                  [2,1,4,3,6,5,8,7,2,1,4,3]]
    }' >/dev/null || { echo "FAIL: add-matrix $src"; exit 1; }
done
curl -fsS "http://127.0.0.1:$PORT/remove-matrix" -d '{"source": 5}' >/dev/null \
    || { echo "FAIL: remove-matrix 5"; exit 1; }

echo "== recording pre-crash answers"
run_query >"$TMP/before.answers"
[ -s "$TMP/before.answers" ] || { echo "FAIL: pre-crash query returned no answers"; exit 1; }

echo "== kill -9 (no checkpoint)"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""

echo "== warm restart from the same -data-dir"
"$TMP/imgrn-server" -data-dir "$TMP/data" -shards 2 \
    -addr "127.0.0.1:$PORT" >"$TMP/boot2.log" 2>&1 &
SERVER_PID=$!
wait_healthy "$TMP/boot2.log"

# The boot line is the witness: warm boot, the 4 acked mutations replayed,
# and ONLY the 3 replayed adds re-embedded — the 40 snapshot sources (less
# the removed one) loaded their Monte Carlo vectors from disk.
grep -q 'store: warm boot gen=1 replayed=4 ' "$TMP/boot2.log" \
    || { echo "FAIL: expected warm boot replaying 4 records; log:"; cat "$TMP/boot2.log"; exit 1; }
grep -q 'embedded=3/' "$TMP/boot2.log" \
    || { echo "FAIL: warm boot should embed only the 3 replayed adds; log:"; cat "$TMP/boot2.log"; exit 1; }
echo "== warm boot OK: $(grep 'store: warm boot' "$TMP/boot2.log")"

echo "== verifying acked mutations survived"
curl -fsS "http://127.0.0.1:$PORT/stats" >"$TMP/stats.json"
grep -q '"matrices":42' "$TMP/stats.json" \
    || { echo "FAIL: expected 42 matrices (40 + 3 adds - 1 remove):"; cat "$TMP/stats.json"; exit 1; }
grep -q '"warmBoot":true' "$TMP/stats.json" \
    || { echo "FAIL: /stats durability block does not report a warm boot"; exit 1; }

echo "== comparing answers byte-for-byte"
run_query >"$TMP/after.answers"
if ! cmp -s "$TMP/before.answers" "$TMP/after.answers"; then
    echo "FAIL: answers diverged across kill -9 + warm restart:" >&2
    diff "$TMP/before.answers" "$TMP/after.answers" >&2 || true
    exit 1
fi

echo "== durability metric families present"
curl -fsS "http://127.0.0.1:$PORT/metrics" >"$TMP/metrics.txt"
for family in imgrn_wal_appends_total imgrn_wal_segment_bytes \
    imgrn_wal_replayed_records imgrn_snapshot_generation \
    imgrn_snapshot_warm_boot imgrn_snapshot_checkpoints_total; do
    grep -q "^# TYPE $family " "$TMP/metrics.txt" \
        || { echo "FAIL: family $family missing from /metrics"; exit 1; }
done
grep -q '^imgrn_snapshot_warm_boot 1$' "$TMP/metrics.txt" \
    || { echo "FAIL: imgrn_snapshot_warm_boot should be 1"; exit 1; }
grep -q '^imgrn_wal_replayed_records 4$' "$TMP/metrics.txt" \
    || { echo "FAIL: imgrn_wal_replayed_records should be 4"; exit 1; }

echo "== clean shutdown checkpoints"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
grep -q 'store: clean shutdown at gen' "$TMP/boot2.log" \
    || { echo "FAIL: clean shutdown did not checkpoint; log:"; cat "$TMP/boot2.log"; exit 1; }

echo "== third boot replays nothing"
"$TMP/imgrn-server" -data-dir "$TMP/data" -shards 2 \
    -addr "127.0.0.1:$PORT" >"$TMP/boot3.log" 2>&1 &
SERVER_PID=$!
wait_healthy "$TMP/boot3.log"
grep -q 'replayed=0 torn=0B embedded=0/' "$TMP/boot3.log" \
    || { echo "FAIL: post-checkpoint boot should replay and embed nothing; log:"; cat "$TMP/boot3.log"; exit 1; }
run_query >"$TMP/final.answers"
cmp -s "$TMP/before.answers" "$TMP/final.answers" \
    || { echo "FAIL: answers diverged after clean restart"; exit 1; }

echo "PASS: acked mutations survived kill -9, answers byte-identical, warm boot skipped re-embedding"
