#!/bin/sh
# metrics_smoke.sh — end-to-end smoke test of the observability surface:
# builds the real binaries, generates a tiny database, starts imgrn-server,
# probes /healthz, runs one /query-graph request and
# one streamed /query-batch request, and asserts every metric family the
# DESIGN.md catalog promises is present in /metrics.
#
# Run via `make metrics-smoke`. Exits non-zero on any missing family.
set -eu

PORT="${SMOKE_PORT:-18977}"
TMP="$(mktemp -d)"
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT INT TERM

echo "== building binaries"
go build -o "$TMP/imgrn-datagen" ./cmd/imgrn-datagen
go build -o "$TMP/imgrn-server" ./cmd/imgrn-server

echo "== generating tiny database"
"$TMP/imgrn-datagen" -out "$TMP/db.imgrn" -n 40 -nmin 8 -nmax 14 -lmin 10 -lmax 16 -pool 60 -seed 7

echo "== starting server on :$PORT"
"$TMP/imgrn-server" -db "$TMP/db.imgrn" -addr "127.0.0.1:$PORT" -slow-query 1ns >"$TMP/server.log" 2>&1 &
SERVER_PID=$!

i=0
until curl -fsS "http://127.0.0.1:$PORT/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "FAIL: server did not become healthy; log:" >&2
        cat "$TMP/server.log" >&2
        exit 1
    fi
    if ! kill -0 "$SERVER_PID" 2>/dev/null; then
        echo "FAIL: server exited; log:" >&2
        cat "$TMP/server.log" >&2
        exit 1
    fi
    sleep 0.2
done
echo "== /healthz ok"

echo "== running one query"
curl -fsS "http://127.0.0.1:$PORT/query-graph" -d '{
  "genes": ["1", "2"],
  "edges": [{"s": 0, "t": 1, "prob": 0.9}],
  "params": {"gamma": 0.5, "alpha": 0.5, "analytic": true, "trace": true}
}' >"$TMP/query.json"
grep -q '"stats"' "$TMP/query.json" || { echo "FAIL: query response lacks stats"; exit 1; }
grep -q '"trace"' "$TMP/query.json" || { echo "FAIL: traced query response lacks trace"; exit 1; }

echo "== running one NDJSON batch"
curl -fsS "http://127.0.0.1:$PORT/query-batch" -d '{
  "queries": [
    {"genes": ["1", "2"], "edges": [{"s": 0, "t": 1, "prob": 0.9}],
     "params": {"gamma": 0.5, "alpha": 0.5, "analytic": true}},
    {"genes": ["2", "3"], "edges": [{"s": 0, "t": 1, "prob": 0.8}],
     "params": {"gamma": 0.5, "alpha": 0.5, "analytic": true}}
  ]
}' >"$TMP/batch.ndjson"
[ "$(wc -l <"$TMP/batch.ndjson")" -eq 3 ] \
    || { echo "FAIL: batch response is not 3 NDJSON frames (2 items + done)"; cat "$TMP/batch.ndjson"; exit 1; }
tail -n 1 "$TMP/batch.ndjson" | grep -q '"done":true' \
    || { echo "FAIL: batch terminal frame lacks done:true"; exit 1; }

echo "== scraping /metrics"
curl -fsS "http://127.0.0.1:$PORT/metrics" >"$TMP/metrics.txt"

status=0
for family in \
    imgrn_requests_total \
    imgrn_request_errors_total \
    imgrn_query_seconds \
    imgrn_stage_seconds \
    imgrn_candidates_filtered_total \
    imgrn_candidates_refined_total \
    imgrn_edgeprob_cache_hits_total \
    imgrn_edgeprob_cache_misses_total \
    imgrn_reader_page_accesses_total \
    imgrn_reader_buffer_hits_total \
    imgrn_reader_pages \
    imgrn_requests_in_flight \
    imgrn_requests_shed_total \
    imgrn_slow_queries_total \
    imgrn_batch_requests_total \
    imgrn_batch_queries_total \
    imgrn_batch_size \
    imgrn_batch_item_errors_total \
    imgrn_batch_groups_total \
    imgrn_batch_perm_fills_total \
    imgrn_batch_perm_probes_total; do
    if ! grep -q "^# TYPE $family " "$TMP/metrics.txt"; then
        echo "FAIL: family $family missing from /metrics" >&2
        status=1
    fi
done
[ "$status" -eq 0 ] || exit "$status"

# The queries above must have been counted and (with -slow-query 1ns)
# logged: batch items flow through the same per-query observation path as
# solo queries, so the two batch items count as slow queries too.
grep -q '^imgrn_requests_total{endpoint="query-graph"} 1$' "$TMP/metrics.txt" \
    || { echo "FAIL: query-graph request not counted"; exit 1; }
grep -q '^imgrn_slow_queries_total 3$' "$TMP/metrics.txt" \
    || { echo "FAIL: slow queries (1 solo + 2 batch items) not counted"; exit 1; }
grep -q 'slow query: endpoint=query-graph' "$TMP/server.log" \
    || { echo "FAIL: slow-query log line missing"; exit 1; }

# The batch above must have been counted: one request, two items.
grep -q '^imgrn_batch_requests_total 1$' "$TMP/metrics.txt" \
    || { echo "FAIL: batch request not counted"; exit 1; }
grep -q '^imgrn_batch_queries_total 2$' "$TMP/metrics.txt" \
    || { echo "FAIL: batch items not counted"; exit 1; }

echo "PASS: all metric families present, query counted, slow-query log fired"
