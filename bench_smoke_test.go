package imgrn_test

import (
	"os"
	"testing"

	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/stats"
)

// TestBatchNotSlowerThanScalar is the CI benchmark smoke gate
// (`make bench-smoke`): a short fixed-iteration measurement asserting the
// batched inference kernel has not regressed below the scalar path it
// replaces. Gated behind BENCH_SMOKE=1 so ordinary `go test` runs — and
// loaded CI machines running the race detector — never flake on timing.
func TestBatchNotSlowerThanScalar(t *testing.T) {
	if os.Getenv("BENCH_SMOKE") != "1" {
		t.Skip("set BENCH_SMOKE=1 to run the benchmark smoke gate")
	}
	var tb testing.B
	m := benchInferMatrix(&tb, 100, 50, 26)
	run := func(batch bool) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sc := grn.NewRandomizedScorer(27, stats.DefaultSamples)
				sc.Batch = batch
				pr := grn.NewPruner(28, 16)
				if _, _, err := grn.InferPruned(m, sc, pr, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	scalar := run(false)
	batch := run(true)
	t.Logf("scalar %v/op, batch %v/op (%.2fx)", scalar.NsPerOp(), batch.NsPerOp(),
		float64(scalar.NsPerOp())/float64(batch.NsPerOp()))
	// The kernel targets >= 3x; the smoke gate only guards against a
	// regression, with 20% headroom for noisy shared runners.
	if float64(batch.NsPerOp()) > 1.2*float64(scalar.NsPerOp()) {
		t.Errorf("batched inference kernel slower than scalar path: %v/op vs %v/op",
			batch.NsPerOp(), scalar.NsPerOp())
	}
}
