package imgrn_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	imgrn "github.com/imgrn/imgrn"
	"github.com/imgrn/imgrn/internal/randgen"
)

// openBoth opens the same fixture database unsharded and sharded; the
// fixture is rebuilt per engine so the two never share matrices.
func openBoth(t *testing.T, n int, seed uint64, shards int) (*imgrn.Engine, *imgrn.Engine, *imgrn.Database) {
	t.Helper()
	opts := imgrn.IndexOptions{D: 2, Samples: 24, Seed: seed}
	db := buildPublicFixture(t, n, seed)
	eng, err := imgrn.Open(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	sdb := buildPublicFixture(t, n, seed)
	seng, err := imgrn.OpenSharded(sdb, opts, shards)
	if err != nil {
		t.Fatal(err)
	}
	return eng, seng, db
}

// TestOpenShardedMatchesUnsharded: the public sharded engine answers
// set-equal to the unsharded one under the analytic estimator, with the
// identical API surface.
func TestOpenShardedMatchesUnsharded(t *testing.T) {
	eng, seng, db := openBoth(t, 18, 40, 3)
	if got := seng.NumShards(); got != 3 {
		t.Fatalf("NumShards = %d", got)
	}
	if got := eng.NumShards(); got != 1 {
		t.Fatalf("unsharded NumShards = %d", got)
	}
	if v := seng.IndexStats().Vectors; v != eng.IndexStats().Vectors {
		t.Errorf("sharded index vectors = %d, unsharded %d", v, eng.IndexStats().Vectors)
	}
	params := imgrn.QueryParams{Gamma: 0.6, Alpha: 0.4, Seed: 41, Analytic: true}
	for src := 0; src < 6; src++ {
		qm, err := db.BySource(src).SubMatrix(-1, []int{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := eng.Query(qm, params)
		if err != nil {
			t.Fatal(err)
		}
		got, st, err := seng.Query(qm, params)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: sharded %d answers, unsharded %d", src, len(got), len(want))
		}
		for k := range got {
			if got[k].Source != want[k].Source || got[k].Prob != want[k].Prob {
				t.Errorf("query %d answer %d differs: sharded (src=%d p=%v), unsharded (src=%d p=%v)",
					src, k, got[k].Source, got[k].Prob, want[k].Source, want[k].Prob)
			}
		}
		if st.QueryEdges == 0 {
			t.Errorf("query %d: merged stats empty: %+v", src, st)
		}
	}
}

// TestShardedTopKAndStats: sharded QueryTopK returns the ranking prefix,
// and ShardStats exposes per-shard counters after queries ran.
func TestShardedTopKAndStats(t *testing.T) {
	_, seng, db := openBoth(t, 16, 44, 4)
	params := imgrn.QueryParams{Gamma: 0.6, Alpha: 0.2, Seed: 45, Analytic: true}
	qm, err := db.BySource(0).SubMatrix(-1, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	all, _, err := seng.QueryTopK(qm, params, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 4 {
		t.Skipf("fixture produced only %d matches", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Prob > all[i-1].Prob {
			t.Fatal("sharded TopK(0) not ranked by probability")
		}
	}
	top3, _, err := seng.QueryTopK(qm, params, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(top3) != 3 {
		t.Fatalf("TopK(3) returned %d", len(top3))
	}
	for i := range top3 {
		if top3[i].Source != all[i].Source || top3[i].Prob != all[i].Prob {
			t.Errorf("TopK(3)[%d] = (src=%d p=%v), want (src=%d p=%v)",
				i, top3[i].Source, top3[i].Prob, all[i].Source, all[i].Prob)
		}
	}

	infos := seng.ShardStats()
	if len(infos) != 4 {
		t.Fatalf("ShardStats returned %d shards", len(infos))
	}
	sources := 0
	var queries uint64
	for _, info := range infos {
		sources += info.Sources
		queries += info.Queries
	}
	if sources != 16 {
		t.Errorf("ShardStats sources sum to %d, want 16", sources)
	}
	if queries == 0 {
		t.Error("ShardStats recorded no queries")
	}
	// Unsharded engines report no shards.
	eng, err := imgrn.Open(buildPublicFixture(t, 4, 46), imgrn.IndexOptions{D: 1, Samples: 8, Seed: 46})
	if err != nil {
		t.Fatal(err)
	}
	if eng.ShardStats() != nil {
		t.Error("unsharded ShardStats should be nil")
	}
}

// TestShardedSaveIndexRejected: sharded engines cannot serialize their
// index yet and must say so instead of writing garbage.
func TestShardedSaveIndexRejected(t *testing.T) {
	db := buildPublicFixture(t, 6, 48)
	seng, err := imgrn.OpenSharded(db, imgrn.IndexOptions{D: 1, Samples: 8, Seed: 48}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := seng.SaveIndex(&buf); err == nil {
		t.Fatal("sharded SaveIndex should error")
	}
	if buf.Len() != 0 {
		t.Errorf("sharded SaveIndex wrote %d bytes alongside the error", buf.Len())
	}
}

// TestShardedConcurrentMixedWorkload is the sharded twin of
// TestEngineConcurrentMixedWorkload: scatter-gather queries racing
// mutations across shards, with answer sets pinned to the quiescent run
// (run with -race in CI).
func TestShardedConcurrentMixedWorkload(t *testing.T) {
	db := buildPublicFixture(t, 16, 50)
	eng, err := imgrn.OpenSharded(db, imgrn.IndexOptions{D: 2, Samples: 24, Seed: 50}, 3)
	if err != nil {
		t.Fatal(err)
	}
	params := imgrn.QueryParams{Gamma: 0.6, Alpha: 0.4, Seed: 51, Analytic: true}

	queries := make([]*imgrn.Matrix, 4)
	want := make([][]imgrn.Answer, len(queries))
	for i := range queries {
		qm, err := db.BySource(i).SubMatrix(-1, []int{0, 1, 2})
		if err != nil {
			t.Fatal(err)
		}
		queries[i] = qm
		want[i], _, err = eng.Query(qm, params)
		if err != nil {
			t.Fatal(err)
		}
	}

	mkExtra := func(src int) *imgrn.Matrix {
		rng := randgen.New(uint64(src) * 13)
		genes := []imgrn.GeneID{imgrn.GeneID(4000 + src), imgrn.GeneID(5000 + src)}
		cols := make([][]float64, len(genes))
		for j := range cols {
			col := make([]float64, 16)
			for k := range col {
				col[k] = rng.Gaussian(0, 1)
			}
			cols[j] = col
		}
		m, err := imgrn.NewMatrix(src, genes, cols)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				src := 1000 + w*10 + rep
				if err := eng.AddMatrix(mkExtra(src)); err != nil {
					errCh <- err
					return
				}
				if err := eng.RemoveMatrix(src); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for i := range queries {
		for rep := 0; rep < 3; rep++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				got, _, err := eng.Query(queries[i], params)
				if err != nil {
					errCh <- err
					return
				}
				if len(got) != len(want[i]) {
					errCh <- fmt.Errorf("sharded query %d: %d answers, want %d", i, len(got), len(want[i]))
					return
				}
				for k := range got {
					if got[k].Source != want[i][k].Source || got[k].Prob != want[i][k].Prob {
						errCh <- fmt.Errorf("sharded query %d: answer %d differs", i, k)
						return
					}
				}
			}(i)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestShardedQueryCancellation mirrors the unsharded cancellation test
// through the scatter path.
func TestShardedQueryCancellation(t *testing.T) {
	db := buildPublicFixture(t, 10, 54)
	eng, err := imgrn.OpenSharded(db, imgrn.IndexOptions{D: 2, Samples: 24, Seed: 54}, 2)
	if err != nil {
		t.Fatal(err)
	}
	qm, err := db.BySource(0).SubMatrix(-1, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	params := imgrn.QueryParams{Gamma: 0.6, Alpha: 0.4, Seed: 55, Analytic: true}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := eng.QueryContext(ctx, qm, params); !errors.Is(err, context.Canceled) {
		t.Fatalf("sharded QueryContext err = %v, want context.Canceled", err)
	}
	if _, _, err := eng.QueryTopKContext(ctx, qm, params, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("sharded QueryTopKContext err = %v, want context.Canceled", err)
	}
	if _, _, err := eng.QueryContext(context.Background(), qm, params); err != nil {
		t.Fatalf("background sharded QueryContext: %v", err)
	}
}

// TestCacheInvalidationPerSource: a mutation must invalidate only its own
// source's memoized edge probabilities — a repeat query after an
// unrelated mutation still hits the warm cache.
func TestCacheInvalidationPerSource(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db := buildPublicFixture(t, 10, 58)
			var eng *imgrn.Engine
			var err error
			if shards == 1 {
				eng, err = imgrn.Open(db, imgrn.IndexOptions{D: 2, Samples: 24, Seed: 58})
			} else {
				eng, err = imgrn.OpenSharded(db, imgrn.IndexOptions{D: 2, Samples: 24, Seed: 58}, shards)
			}
			if err != nil {
				t.Fatal(err)
			}
			qm, err := db.BySource(0).SubMatrix(-1, []int{0, 1, 2})
			if err != nil {
				t.Fatal(err)
			}
			params := imgrn.QueryParams{Gamma: 0.6, Alpha: 0.4, Samples: 48, Seed: 59}
			if _, st, err := eng.Query(qm, params); err != nil {
				t.Fatal(err)
			} else if st.CacheMisses == 0 {
				t.Skip("fixture query never reached the cache")
			}
			warm, _, err := eng.Query(qm, params)
			if err != nil {
				t.Fatal(err)
			}
			// Mutate a source unrelated to the query's gene module.
			rng := randgen.New(60)
			col := make([]float64, 16)
			for k := range col {
				col[k] = rng.Gaussian(0, 1)
			}
			extra, err := imgrn.NewMatrix(777, []imgrn.GeneID{9000}, [][]float64{col})
			if err != nil {
				t.Fatal(err)
			}
			if err := eng.AddMatrix(extra); err != nil {
				t.Fatal(err)
			}
			after, st, err := eng.Query(qm, params)
			if err != nil {
				t.Fatal(err)
			}
			if st.CacheHits == 0 {
				t.Errorf("query after unrelated mutation got no cache hits (cache flushed?): %+v", st)
			}
			if st.CacheMisses != 0 {
				t.Errorf("query after unrelated mutation re-estimated %d edges", st.CacheMisses)
			}
			if len(after) != len(warm) {
				t.Fatalf("answers changed after unrelated mutation: %d vs %d", len(after), len(warm))
			}
			for k := range after {
				if after[k].Source != warm[k].Source || after[k].Prob != warm[k].Prob {
					t.Errorf("answer %d changed after unrelated mutation", k)
				}
			}
			// Mutating a source the query matched must drop only that
			// source's entries: the repeat query re-estimates something but
			// still hits the other sources' warm entries.
			if err := eng.RemoveMatrix(9); err != nil {
				t.Fatal(err)
			}
			_, st2, err := eng.Query(qm, params)
			if err != nil {
				t.Fatal(err)
			}
			if st2.CacheHits == 0 {
				t.Errorf("query after targeted mutation lost every warm entry: %+v", st2)
			}
		})
	}
}
