package shard

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/wal"
)

// Durable state (DESIGN.md §12). A Store layers crash safety over a
// Coordinator: every acknowledged mutation is fsynced to a per-shard
// write-ahead log before the call returns, and the expensive composite
// index (Monte Carlo embeddings + R*-tree points) is checkpointed into
// per-shard snapshot files so a restart loads vectors instead of
// re-embedding them.
//
// On-disk layout under DurableOptions.Dir:
//
//	MANIFEST                     JSON: format, generation, shard count,
//	                             placement cursor, full index options
//	shard-000/snap-0000000G.snap snapshot of shard 0 at generation G
//	shard-000/wal-0000000G.log   mutations since generation G
//	shard-001/…                  one directory per shard
//
// The generation G is store-global: a checkpoint snapshots every shard,
// then commits by atomically renaming a new MANIFEST. WAL segments are
// named after the snapshot generation they follow, which ties log and
// snapshot together without any cross-file sequence numbers.
//
// Recovery protocol (OpenDurable):
//
//  1. Read MANIFEST; its generation G names the committed state. Files
//     from other generations are leftovers of an interrupted checkpoint
//     (gen > G: snapshots written but never committed) or an interrupted
//     cleanup (gen < G) and are deleted.
//  2. Per shard, in parallel: load snap-G.snap (partition database +
//     index; the Monte Carlo embedding is NOT recomputed), then replay
//     wal-G.log — truncating a torn tail first — through the index's
//     online mutation path.
//  3. Reassemble the coordinator: placement falls out of which shard's
//     files each source lives in; the round-robin cursor is the manifest
//     cursor plus the add records replayed.
//
// Ordering guarantee: a mutation is applied to the in-memory engine,
// appended to its shard's WAL, fsynced, and only then acknowledged. A
// crash at any point therefore loses only unacknowledged mutations: an
// applied-but-unlogged mutation dies with the process memory, and a torn
// log tail is dropped by recovery. Conversely every acknowledged
// mutation is in the fsynced log (or in a newer snapshot) and survives
// kill -9.
//
// A snapshot generation G is safe to delete exactly when a MANIFEST with
// generation > G has been renamed into place and fsynced — which is the
// only moment the store deletes anything.

// Snapshot container format (little-endian), one file per shard:
//
//	magic     [8]byte  "IMGRNSS1"
//	gen       uint64   snapshot generation
//	shard     uint32   shard number in [0, numShards)
//	numShards uint32
//	dbLen     uint64   length of the database section
//	idxLen    uint64   length of the index section
//	crc       uint32   CRC-32C of the two sections
//	_         uint32   reserved (zero)
//	database  [dbLen]byte   IMGRNDB1 (gene.WriteDatabase)
//	index     [idxLen]byte  IMGRNIX1 (index.Save)
var snapMagic = [8]byte{'I', 'M', 'G', 'R', 'N', 'S', 'S', '1'}

const snapHeaderSize = 8 + 8 + 4 + 4 + 8 + 8 + 4 + 4

// manifestFormat versions the MANIFEST schema.
const manifestFormat = 1

// manifest is the committed-state pointer of a durable store. It is
// written with the same write-temp + rename + dir-fsync protocol as the
// snapshots it names.
type manifest struct {
	Format    int    `json:"format"`
	Gen       uint64 `json:"gen"`
	NumShards int    `json:"numShards"`
	// Cursor is the round-robin placement cursor at the checkpoint;
	// recovery adds the add-records replayed from the WALs so future
	// placements continue the same sequence.
	Cursor int `json:"cursor"`
	// Index is the full option set of the shard indexes. The snapshot
	// header carries only the structural fields; Seed, Samples and the
	// pivot-selection parameters live here so replayed and future
	// AddMatrix calls embed with the original randomness.
	Index index.Options `json:"index"`
}

// DurableOptions configures the durable lifecycle of a Store.
type DurableOptions struct {
	// Dir is the data directory (required). It is created if absent.
	Dir string
	// CheckpointBytes triggers a checkpoint when the live WAL segments
	// exceed this many bytes in total (64 MiB when 0; < 0 disables the
	// size trigger).
	CheckpointBytes int64
	// CheckpointEvery triggers a background checkpoint at this interval
	// while mutations are outstanding (0 disables the timer; the log is
	// also checkpointed on Close).
	CheckpointEvery time.Duration
	// DisableFsync skips every fsync (records are still written and
	// framed). Only for tests that reopen stores hundreds of times; a
	// server running with this set can lose acknowledged mutations on a
	// machine crash, though not on a process kill.
	DisableFsync bool
}

func (o DurableOptions) withDefaults() DurableOptions {
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = 64 << 20
	}
	return o
}

// DurableStats is an observability snapshot of a Store (the
// imgrn_wal_* / imgrn_snapshot_* metric families and the /stats
// durability block).
type DurableStats struct {
	// Gen is the committed snapshot generation.
	Gen uint64
	// WarmBoot reports whether OpenDurable restored state from disk
	// (true) or built the index from scratch (false).
	WarmBoot bool
	// BootDuration is the wall-clock time of OpenDurable.
	BootDuration time.Duration
	// ReplayedRecords counts WAL records applied during recovery, and
	// ReplayedAdds the add-matrix subset (each of which re-embeds one
	// matrix; everything else loads from the snapshot).
	ReplayedRecords int
	ReplayedAdds    int
	// TornBytes is the total torn-tail length truncated at recovery.
	TornBytes int64
	// WALAppends, WALAppendBytes and WALFsyncs count logging activity
	// since open; WALSegmentBytes is the current total size of the live
	// segments (resets to 0 at each checkpoint).
	WALAppends      uint64
	WALAppendBytes  uint64
	WALFsyncs       uint64
	WALSegmentBytes int64
	// Checkpoints counts completed checkpoints since open;
	// LastCheckpointDuration and LastCheckpointBytes describe the most
	// recent one (bytes = total snapshot file size across shards).
	Checkpoints            uint64
	LastCheckpointDuration time.Duration
	LastCheckpointBytes    int64
	// CheckpointFailures counts checkpoint attempts that returned an
	// error since open (including ones swallowed by the size/timer
	// triggers, whose mutations are durable regardless);
	// LastCheckpointError describes the most recent failure.
	CheckpointFailures  uint64
	LastCheckpointError string
}

// Store is a Coordinator with a durable lifecycle: mutations are
// write-ahead logged and fsynced before they are acknowledged, and
// Checkpoint/Close rotate the log into crash-safe snapshots. The
// embedded Coordinator serves the read path unchanged — queries never
// touch the log. Mutations MUST go through the Store's AddMatrix and
// RemoveMatrix (the facade enforces this); calling the embedded
// coordinator's mutation methods directly would bypass the log.
type Store struct {
	*Coordinator

	dopts DurableOptions

	// mutMu serializes mutations and checkpoints against each other.
	// Queries are not affected: they take per-shard read locks only.
	mutMu  sync.Mutex
	gen    uint64
	wals   []*wal.Writer
	dirty  int // appends since the last checkpoint
	closed bool
	// failed latches a durability failure: either a log-append error
	// (the in-memory engine is ahead of the log, and a checkpoint would
	// make the unacknowledged mutation durable) or a checkpoint error
	// past the manifest commit point (the live segments may no longer
	// belong to the committed generation, so recovery would discard
	// anything appended to them). Further mutations and checkpoints are
	// refused; the read path is unaffected.
	failed error

	stopTicker chan struct{}
	tickerDone chan struct{}

	statsMu sync.Mutex
	stats   DurableStats
}

// OpenDurable opens (or initializes) the durable store in
// dopts.Dir. When the directory holds a committed MANIFEST the store
// warm-boots: per-shard snapshots are loaded (skipping the Monte Carlo
// embedding) and the WAL segments are replayed over them; db is ignored
// and may be nil. Otherwise the store cold-boots: the coordinator is
// built from db exactly like Build, and a generation-1 checkpoint is
// written so the state is durable before OpenDurable returns.
//
// On a warm boot opts.NumShards must match the on-disk shard count
// (resharding a durable directory is an explicit offline rebuild), or be
// <= 1 to adopt it; the on-disk index options win over opts.Index except
// for the runtime-only Workers field.
func OpenDurable(db *gene.Database, opts Options, dopts DurableOptions) (*Store, error) {
	start := time.Now()
	if dopts.Dir == "" {
		return nil, fmt.Errorf("shard: durable store requires a data directory")
	}
	dopts = dopts.withDefaults()
	if err := os.MkdirAll(dopts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: creating data dir: %w", err)
	}

	man, err := readManifest(filepath.Join(dopts.Dir, "MANIFEST"))
	if err != nil {
		return nil, err
	}
	var st *Store
	if man != nil {
		st, err = openWarm(man, opts, dopts)
	} else {
		st, err = openCold(db, opts, dopts)
	}
	if err != nil {
		return nil, err
	}
	st.stats.BootDuration = time.Since(start)
	if dopts.CheckpointEvery > 0 {
		st.stopTicker = make(chan struct{})
		st.tickerDone = make(chan struct{})
		go st.checkpointLoop(st.stopTicker)
	}
	return st, nil
}

// openCold builds the coordinator from db and commits generation 1.
func openCold(db *gene.Database, opts Options, dopts DurableOptions) (*Store, error) {
	// Refuse a directory with shard files but no manifest: that is not a
	// fresh store, it is a corrupted one (or someone else's data).
	entries, err := os.ReadDir(dopts.Dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if e.IsDir() && len(e.Name()) > 6 && e.Name()[:6] == "shard-" {
			return nil, fmt.Errorf("shard: %s has shard directories but no MANIFEST; refusing to overwrite", dopts.Dir)
		}
	}
	if db == nil {
		db = gene.NewDatabase()
	}
	coord, err := Build(db, opts)
	if err != nil {
		return nil, err
	}
	st := &Store{Coordinator: coord, dopts: dopts, wals: make([]*wal.Writer, coord.NumShards())}
	st.mutMu.Lock()
	defer st.mutMu.Unlock()
	if err := st.checkpointLocked(); err != nil {
		return nil, err
	}
	return st, nil
}

// openWarm restores the store from the committed generation: snapshot
// load plus WAL replay, per shard in parallel.
func openWarm(man *manifest, opts Options, dopts DurableOptions) (*Store, error) {
	if man.Format != manifestFormat {
		return nil, fmt.Errorf("shard: MANIFEST format %d not supported", man.Format)
	}
	opts = opts.withDefaults()
	if opts.NumShards > 1 && opts.NumShards != man.NumShards {
		return nil, fmt.Errorf("shard: data dir holds %d shards but %d requested; resharding requires an offline rebuild",
			man.NumShards, opts.NumShards)
	}
	p := man.NumShards
	idxOpts := man.Index
	idxOpts.Workers = opts.Index.Workers // runtime knob, not persisted state

	type shardBoot struct {
		idx  *index.Index
		db   *gene.Database
		wal  *wal.Writer
		info wal.RecoveryInfo
		adds int
		recs int
	}
	boots := make([]shardBoot, p)
	errs := make([]error, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dir := shardDirPath(dopts.Dir, i)
			if err := cleanShardDir(dir, man.Gen); err != nil {
				errs[i] = err
				return
			}
			partDB, idx, err := readSnapshot(snapPath(dir, man.Gen), man.Gen, i, p)
			if err != nil {
				errs[i] = err
				return
			}
			if err := idx.RestoreOptions(idxOpts); err != nil {
				errs[i] = err
				return
			}
			b := shardBoot{idx: idx, db: partDB}
			w, info, err := wal.Open(walPath(dir, man.Gen), !dopts.DisableFsync, func(payload []byte) error {
				rec, err := wal.DecodeRecord(payload)
				if err != nil {
					return err
				}
				b.recs++
				switch rec.Op {
				case wal.OpAddMatrix:
					b.adds++
					return idx.AddMatrix(rec.Matrix)
				case wal.OpRemoveMatrix:
					return idx.RemoveMatrix(rec.Source)
				default:
					return fmt.Errorf("unknown op %v", rec.Op)
				}
			})
			if err != nil {
				errs[i] = err
				return
			}
			b.wal = w
			b.info = info
			boots[i] = b
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			for _, b := range boots {
				if b.wal != nil {
					b.wal.Close()
				}
			}
			return nil, fmt.Errorf("shard: recovering shard %d: %w", i, err)
		}
	}

	// Reassemble the coordinator. Placement is implicit in which shard's
	// files a source lives in; the global database view interleaves the
	// partitions round-robin, which reproduces the original insertion
	// order for a store that has only grown.
	coord := &Coordinator{
		opts:      Options{NumShards: p, Index: idxOpts, Workers: opts.Workers, ImbalanceRatio: opts.ImbalanceRatio, OnImbalance: opts.OnImbalance}.withDefaults(),
		placement: make(map[int]int),
		db:        gene.NewDatabase(),
		shards:    make([]*shardState, p),
	}
	st := &Store{Coordinator: coord, dopts: dopts, gen: man.Gen, wals: make([]*wal.Writer, p)}
	st.stats.Gen = man.Gen
	st.stats.WarmBoot = true
	maxLen := 0
	for i, b := range boots {
		coord.shards[i] = &shardState{idx: b.idx}
		st.wals[i] = b.wal
		st.stats.WALSegmentBytes += b.wal.Size()
		st.stats.ReplayedRecords += b.recs
		st.stats.ReplayedAdds += b.adds
		st.stats.TornBytes += b.info.TornBytes
		st.dirty += b.recs
		for _, m := range b.idx.DB().Matrices() {
			coord.placement[m.Source] = i
		}
		if n := b.idx.DB().Len(); n > maxLen {
			maxLen = n
		}
	}
	for j := 0; j < maxLen; j++ {
		for i := 0; i < p; i++ {
			part := boots[i].idx.DB()
			if j < part.Len() {
				if err := coord.db.Add(part.Matrix(j)); err != nil {
					return nil, fmt.Errorf("shard: reassembling database view: %w", err)
				}
			}
		}
	}
	coord.cursor = man.Cursor + st.stats.ReplayedAdds
	return st, nil
}

// checkpointLoop is the time-based checkpoint trigger: while mutations
// are outstanding, checkpoint every CheckpointEvery.
func (st *Store) checkpointLoop(stop <-chan struct{}) {
	defer close(st.tickerDone)
	t := time.NewTicker(st.dopts.CheckpointEvery)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			st.mutMu.Lock()
			if !st.closed && st.failed == nil && st.dirty > 0 {
				_ = st.checkpointLocked() // surfaced via stats; mutations keep logging
			}
			st.mutMu.Unlock()
		}
	}
}

// ErrMutationTooLarge rejects a mutation whose encoded WAL record would
// exceed wal.MaxRecord. The check runs before the mutation is applied,
// so an oversized request is an ordinary client error — it does not
// latch the store read-only.
var ErrMutationTooLarge = errors.New("mutation exceeds WAL record limit")

// AddMatrix indexes a new data source online and makes it durable: the
// mutation is applied, appended to the owning shard's WAL, fsynced, and
// only then acknowledged by returning nil.
func (st *Store) AddMatrix(m *gene.Matrix) error {
	st.mutMu.Lock()
	defer st.mutMu.Unlock()
	if err := st.usableLocked(); err != nil {
		return err
	}
	if m == nil {
		return fmt.Errorf("shard: nil matrix")
	}
	payload, err := wal.EncodeAddMatrix(m)
	if err != nil {
		return err
	}
	// Validate the record size before applying: a compact JSON body under
	// the server's request limit can encode to a binary record over
	// wal.MaxRecord (float64 columns expand ~4x), and discovering that in
	// logLocked — after the apply — would latch the whole store read-only
	// for one oversized request.
	if len(payload) > wal.MaxRecord {
		return fmt.Errorf("shard: matrix %d encodes to a %d-byte WAL record (limit %d): %w",
			m.Source, len(payload), wal.MaxRecord, ErrMutationTooLarge)
	}
	sh := st.Coordinator.peekAddShard(m.Source)
	if err := st.Coordinator.AddMatrix(m); err != nil {
		return err
	}
	return st.logLocked(sh, payload)
}

// RemoveMatrix drops a data source and makes the removal durable with
// the same apply → log → fsync → ack ordering as AddMatrix.
func (st *Store) RemoveMatrix(source int) error {
	st.mutMu.Lock()
	defer st.mutMu.Unlock()
	if err := st.usableLocked(); err != nil {
		return err
	}
	sh, ok := st.Coordinator.Placement(source)
	if !ok {
		return fmt.Errorf("shard: source %d: %w", source, ErrSourceNotFound)
	}
	if err := st.Coordinator.RemoveMatrix(source); err != nil {
		return err
	}
	return st.logLocked(sh, wal.EncodeRemoveMatrix(source))
}

func (st *Store) usableLocked() error {
	if st.closed {
		return fmt.Errorf("shard: durable store is closed")
	}
	if st.failed != nil {
		return fmt.Errorf("shard: durable store is read-only after durability failure: %w", st.failed)
	}
	return nil
}

// logLocked appends an applied mutation to shard sh's segment. On append
// failure the in-memory engine is ahead of the log; the store latches
// read-only so the divergence cannot become durable, and the caller must
// treat the mutation as unacknowledged (a restart will not have it).
func (st *Store) logLocked(sh int, payload []byte) error {
	w := st.wals[sh]
	if err := w.Append(payload); err != nil {
		st.failed = err
		return fmt.Errorf("shard: mutation applied in memory but not logged; store is now read-only: %w", err)
	}
	st.dirty++
	st.statsMu.Lock()
	st.stats.WALAppends++
	st.stats.WALAppendBytes += uint64(len(payload))
	if !st.dopts.DisableFsync {
		st.stats.WALFsyncs++
	}
	st.stats.WALSegmentBytes = st.segmentBytesLocked()
	segBytes := st.stats.WALSegmentBytes
	st.statsMu.Unlock()
	if st.dopts.CheckpointBytes > 0 && segBytes >= st.dopts.CheckpointBytes {
		// The mutation that tripped the size trigger is already applied,
		// logged and fsynced — it is durable whatever happens to the
		// checkpoint, so a checkpoint error must not become this
		// mutation's result (the client would retry an acked add and get
		// ErrSourceExists). Failures surface via CheckpointFailures and,
		// past the commit point, the read-only latch.
		_ = st.checkpointLocked()
	}
	return nil
}

func (st *Store) segmentBytesLocked() int64 {
	var n int64
	for _, w := range st.wals {
		if w != nil {
			n += w.Size()
		}
	}
	return n
}

// Checkpoint writes a new snapshot generation and truncates the WAL: all
// shards are snapshotted, the MANIFEST is atomically replaced, fresh
// (empty) segments are opened, and the previous generation's files are
// deleted. Queries proceed concurrently (snapshots take per-shard read
// locks); mutations wait.
func (st *Store) Checkpoint() error {
	st.mutMu.Lock()
	defer st.mutMu.Unlock()
	if err := st.usableLocked(); err != nil {
		return err
	}
	return st.checkpointLocked()
}

// checkpointLocked runs one checkpoint and records any failure in the
// stats (so triggers that cannot return the error to anyone — the size
// threshold in logLocked, the timer loop — still surface it).
func (st *Store) checkpointLocked() error {
	err := st.runCheckpointLocked()
	if err != nil {
		st.statsMu.Lock()
		st.stats.CheckpointFailures++
		st.stats.LastCheckpointError = err.Error()
		st.statsMu.Unlock()
	}
	return err
}

func (st *Store) runCheckpointLocked() error {
	start := time.Now()
	c := st.Coordinator
	newGen := st.gen + 1
	doSync := !st.dopts.DisableFsync

	// Phase 1: write every shard's snapshot (temp + rename). Nothing is
	// committed yet; a crash here leaves uncommitted gen-newGen files
	// that recovery deletes.
	sizes := make([]int64, c.NumShards())
	errs := make([]error, c.NumShards())
	var wg sync.WaitGroup
	for i := range c.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dir := shardDirPath(st.dopts.Dir, i)
			if err := os.MkdirAll(dir, 0o755); err != nil {
				errs[i] = err
				return
			}
			s := c.shards[i]
			s.mu.RLock()
			n, err := writeSnapshot(snapPath(dir, newGen), newGen, i, c.NumShards(), s.idx, doSync)
			s.mu.RUnlock()
			sizes[i] = n
			errs[i] = err
		}(i)
	}
	wg.Wait()
	var snapBytes int64
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("shard: checkpointing shard %d: %w", i, err)
		}
		snapBytes += sizes[i]
	}

	// Phase 2: commit. The manifest rename is the atomic commit point;
	// after its directory fsync the new generation is the recovered one.
	c.mu.Lock()
	cursor := c.cursor
	c.mu.Unlock()
	man := manifest{
		Format:    manifestFormat,
		Gen:       newGen,
		NumShards: c.NumShards(),
		Cursor:    cursor,
		Index:     c.opts.Index,
	}
	committed, err := writeManifest(filepath.Join(st.dopts.Dir, "MANIFEST"), man, doSync)
	if err != nil {
		if !committed {
			// The old manifest still names the committed state: the new
			// generation's snapshots are strays recovery deletes, and the
			// live segments still belong to the committed generation, so
			// the store keeps logging normally.
			return err
		}
		// The rename landed but its durability is unknown (the directory
		// fsync failed) — recovery may resurrect either generation, so no
		// further mutation may be acknowledged against segments one of
		// them would delete.
		st.failed = fmt.Errorf("shard: checkpoint commit for gen %d not durable: %w", newGen, err)
		return fmt.Errorf("shard: store is now read-only: %w", st.failed)
	}

	// Phase 3: rotate segments and delete the superseded generation. A
	// *crash* anywhere here is repaired by recovery (missing new segments
	// are created empty; stale gen files are deleted). An *error* here
	// latches the store read-only: gen newGen is already committed, so
	// recovery deletes the old segments — acking further appends to them
	// would silently lose those mutations, and a retried checkpoint could
	// os.Remove the very wal-newGen segment it had just opened.
	oldGen := st.gen
	st.gen = newGen
	st.statsMu.Lock()
	st.stats.Gen = newGen
	st.statsMu.Unlock()
	for i := range c.shards {
		dir := shardDirPath(st.dopts.Dir, i)
		w, _, err := wal.Open(walPath(dir, newGen), doSync, nil)
		if err != nil {
			st.failed = fmt.Errorf("shard: opening segment for gen %d after commit: %w", newGen, err)
			return fmt.Errorf("shard: store is now read-only: %w", st.failed)
		}
		if old := st.wals[i]; old != nil {
			old.Close()
			// Path equality guards the defense-in-depth case of a rotation
			// retry: never unlink the segment the live writer holds.
			if old.Path() != w.Path() {
				os.Remove(old.Path())
			}
		}
		st.wals[i] = w
		if oldGen > 0 {
			os.Remove(snapPath(dir, oldGen))
		}
	}
	st.dirty = 0

	st.statsMu.Lock()
	st.stats.Checkpoints++
	st.stats.LastCheckpointDuration = time.Since(start)
	st.stats.LastCheckpointBytes = snapBytes
	st.stats.WALSegmentBytes = 0
	st.statsMu.Unlock()
	return nil
}

// Close checkpoints outstanding mutations (clean-shutdown checkpointing,
// so the next boot replays nothing) and closes the log segments. The
// store is unusable afterwards.
func (st *Store) Close() error {
	st.mutMu.Lock()
	defer st.mutMu.Unlock()
	if st.closed {
		return nil
	}
	st.stopTickerLocked()
	var err error
	if st.failed == nil && st.dirty > 0 {
		err = st.checkpointLocked()
	}
	st.closeSegmentsLocked()
	st.closed = true
	return err
}

// crash abandons the store without checkpointing or syncing — the test
// seam simulating kill -9: file handles close (the OS would do that
// anyway) but nothing is flushed, rotated, or committed.
func (st *Store) crash() {
	st.mutMu.Lock()
	defer st.mutMu.Unlock()
	if st.closed {
		return
	}
	st.stopTickerLocked()
	st.closeSegmentsLocked()
	st.closed = true
}

func (st *Store) stopTickerLocked() {
	if st.stopTicker != nil {
		close(st.stopTicker)
		// The loop may be blocked on mutMu; it checks closed under the
		// lock, so just signal and let it drain.
		st.stopTicker = nil
	}
}

func (st *Store) closeSegmentsLocked() {
	for _, w := range st.wals {
		if w != nil {
			w.Close()
		}
	}
}

// Gen reports the committed snapshot generation.
func (st *Store) Gen() uint64 {
	st.statsMu.Lock()
	defer st.statsMu.Unlock()
	return st.stats.Gen
}

// Dir reports the data directory.
func (st *Store) Dir() string { return st.dopts.Dir }

// DurableStats reports the store's durability counters.
func (st *Store) DurableStats() DurableStats {
	st.statsMu.Lock()
	defer st.statsMu.Unlock()
	return st.stats
}

// peekAddShard reports the shard an AddMatrix of source will be placed
// on. The Store's mutation lock keeps the round-robin cursor stable
// between the peek and the placement; a PlaceFunc placement depends only
// on the source.
func (c *Coordinator) peekAddShard(source int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.opts.PlaceFunc != nil {
		return c.opts.placeOf(source)
	}
	return c.cursor % len(c.shards)
}

// --- file layout helpers ---

func shardDirPath(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("shard-%03d", i))
}

func snapPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%08d.snap", gen))
}

func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.log", gen))
}

// cleanShardDir deletes temp files and files from generations other than
// the committed one: gen > committed are uncommitted checkpoint
// leftovers, gen < committed escaped a completed checkpoint's cleanup.
func cleanShardDir(dir string, gen uint64) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("shard: missing shard directory %s", dir)
		}
		return err
	}
	for _, e := range entries {
		name := e.Name()
		var g uint64
		keep := false
		switch {
		case matchGen(name, "snap-", ".snap", &g):
			keep = g == gen
		case matchGen(name, "wal-", ".log", &g):
			keep = g == gen
		}
		if !keep {
			if err := os.Remove(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("shard: removing stray %s: %w", name, err)
			}
		}
	}
	return nil
}

// matchGen parses `prefix<digits>suffix` file names. The digit run is
// variable-length: snapPath/walPath pad to 8 digits with %08d but emit 9+
// once the generation passes 10^8, and a fixed-width parse would make
// cleanShardDir mistake the committed generation's own files for strays.
func matchGen(name, prefix, suffix string, gen *uint64) bool {
	if len(name) <= len(prefix)+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return false
	}
	var g uint64
	for _, c := range name[len(prefix) : len(name)-len(suffix)] {
		if c < '0' || c > '9' {
			return false
		}
		g = g*10 + uint64(c-'0')
	}
	*gen = g
	return true
}

// --- manifest I/O ---

func readManifest(path string) (*manifest, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("shard: reading MANIFEST: %w", err)
	}
	var man manifest
	if err := json.Unmarshal(data, &man); err != nil {
		return nil, fmt.Errorf("shard: parsing MANIFEST: %w", err)
	}
	if man.NumShards <= 0 || man.Gen == 0 {
		return nil, fmt.Errorf("shard: implausible MANIFEST (gen=%d shards=%d)", man.Gen, man.NumShards)
	}
	return &man, nil
}

func writeManifest(path string, man manifest, doSync bool) (committed bool, err error) {
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return false, err
	}
	return atomicWrite(path, append(data, '\n'), doSync)
}

// atomicWrite is the crash-safe replace protocol of the manifest: write
// a temp file, fsync it, rename over the target, fsync the directory. A
// reader sees either the old complete file or the new complete file,
// never a partial one. committed reports whether the rename was issued:
// an error with committed=false left the old file in place, while an
// error with committed=true (the directory fsync failed) leaves the
// replace in an unknown durability state — the caller must treat the
// commit as ambiguous, not rolled back.
func atomicWrite(path string, data []byte, doSync bool) (committed bool, err error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return false, err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return false, err
	}
	if doSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return false, err
		}
	}
	if err := f.Close(); err != nil {
		return false, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return false, err
	}
	if doSync {
		return true, wal.SyncDir(filepath.Dir(path))
	}
	return true, nil
}

// --- snapshot I/O ---

// crcCounter accumulates a CRC-32C and byte count of everything written
// through it.
type crcCounter struct {
	w   io.Writer
	n   int64
	crc uint32
}

var snapCRCTable = crc32.MakeTable(crc32.Castagnoli)

func (c *crcCounter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.crc = crc32.Update(c.crc, snapCRCTable, p[:n])
	return n, err
}

type crcCountReader struct {
	r   io.Reader
	n   int64
	crc uint32
}

func (c *crcCountReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	c.crc = crc32.Update(c.crc, snapCRCTable, p[:n])
	return n, err
}

// writeSnapshot serializes one shard (partition database + index) into a
// generation-stamped snapshot file using the temp + rename protocol, and
// returns the file size.
func writeSnapshot(path string, gen uint64, shardID, numShards int, idx *index.Index, doSync bool) (int64, error) {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, err
	}
	fail := func(err error) (int64, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	// Header placeholder; lengths and CRC are patched in afterwards.
	if _, err := f.Write(make([]byte, snapHeaderSize)); err != nil {
		return fail(err)
	}
	cw := &crcCounter{w: f}
	if err := gene.WriteDatabase(cw, idx.DB()); err != nil {
		return fail(fmt.Errorf("snapshot database section: %w", err))
	}
	dbLen := cw.n
	if err := idx.Save(cw); err != nil {
		return fail(fmt.Errorf("snapshot index section: %w", err))
	}
	idxLen := cw.n - dbLen

	hdr := make([]byte, snapHeaderSize)
	copy(hdr, snapMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], gen)
	binary.LittleEndian.PutUint32(hdr[16:], uint32(shardID))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(numShards))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(dbLen))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(idxLen))
	binary.LittleEndian.PutUint32(hdr[40:], cw.crc)
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return fail(err)
	}
	if doSync {
		if err := f.Sync(); err != nil {
			return fail(err)
		}
	}
	if err := f.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return 0, err
	}
	if doSync {
		if err := wal.SyncDir(filepath.Dir(path)); err != nil {
			return 0, err
		}
	}
	return snapHeaderSize + cw.n, nil
}

// readSnapshot loads one shard snapshot, validating generation, shard
// identity and the section checksum.
func readSnapshot(path string, wantGen uint64, wantShard, wantShards int) (*gene.Database, *index.Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	hdr := make([]byte, snapHeaderSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		return nil, nil, fmt.Errorf("snapshot header: %w", err)
	}
	if string(hdr[:8]) != string(snapMagic[:]) {
		return nil, nil, fmt.Errorf("snapshot %s: bad magic %q", path, hdr[:8])
	}
	gen := binary.LittleEndian.Uint64(hdr[8:])
	shardID := binary.LittleEndian.Uint32(hdr[16:])
	numShards := binary.LittleEndian.Uint32(hdr[20:])
	dbLen := int64(binary.LittleEndian.Uint64(hdr[24:]))
	idxLen := int64(binary.LittleEndian.Uint64(hdr[32:]))
	wantCRC := binary.LittleEndian.Uint32(hdr[40:])
	if gen != wantGen || int(shardID) != wantShard || int(numShards) != wantShards {
		return nil, nil, fmt.Errorf("snapshot %s: header (gen=%d shard=%d/%d) does not match manifest (gen=%d shard=%d/%d)",
			path, gen, shardID, numShards, wantGen, wantShard, wantShards)
	}
	cr := &crcCountReader{r: f}
	db, err := gene.ReadDatabase(io.LimitReader(cr, dbLen))
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot database section: %w", err)
	}
	// The database section's buffered reader consumed up to dbLen bytes
	// through cr; account for any it left behind before the index section.
	if cr.n < dbLen {
		if _, err := io.CopyN(io.Discard, cr, dbLen-cr.n); err != nil {
			return nil, nil, err
		}
	}
	idx, err := index.Load(io.LimitReader(cr, idxLen), db)
	if err != nil {
		return nil, nil, fmt.Errorf("snapshot index section: %w", err)
	}
	if cr.n < dbLen+idxLen {
		if _, err := io.CopyN(io.Discard, cr, dbLen+idxLen-cr.n); err != nil {
			return nil, nil, err
		}
	}
	if cr.crc != wantCRC {
		return nil, nil, fmt.Errorf("snapshot %s: checksum mismatch (corrupt file)", path)
	}
	return db, idx, nil
}
