package shard

import (
	"context"
	"fmt"
	"time"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/exec"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/obs"
	"github.com/imgrn/imgrn/internal/randgen"
)

// Scatter-gather query protocol (DESIGN.md §10).
//
// P = 1 delegates the whole query to the single shard's processor with the
// caller's params untouched: one processor, one sequential RNG stream —
// byte-identical to the unsharded engine (inference and refinement share
// that stream, so splitting the query across processors would already
// perturb it).
//
// P > 1 infers the query graph once (it reads only the query matrix, never
// the shards), then fans QueryGraphContext out over the shards on an exec
// worker pool. Each shard queries its own index under its read lock with
// params rewritten for the shard: Seed derived from (Seed, shard) — so
// results are a pure function of (placement, Params), never of the
// schedule — and Cache pointing at the shard's own store. The shared
// obs.Tracer (concurrency-safe) collects every shard's pipeline spans
// under one scatter span; per-shard Stats are summed into one aggregate
// (durations become aggregate across-shard time, like the Workers>1
// refinement sub-stages).
//
// The top-k entry wires a shared core.TopKSink through every shard's
// params, switching their refinement into the streamed mode: candidates
// verify in descending Lemma-5 upper-bound order and each shard terminates
// its own refinement as soon as its best remaining upper bound falls below
// the sink floor — the k-th best probability found so far across ALL
// shards (cross-shard Markov-bound early termination). The first shard
// error cancels the scatter context, so in-flight shards abort at their
// next cancellation check instead of running to completion.

// QueryContext answers an IM-GRN query scatter-gather: it infers the query
// GRN from mq once and fans the match out over the shards. Answers are
// sorted by source ID, exactly like the unsharded engine.
func (c *Coordinator) QueryContext(ctx context.Context, mq *gene.Matrix, params core.Params) ([]core.Answer, core.Stats, error) {
	if len(c.shards) == 1 {
		return c.queryOne(ctx, mq, params)
	}
	params, err := c.planOnce(params)
	if err != nil {
		return nil, core.Stats{}, err
	}
	start := time.Now()
	q, st, err := c.inferOnce(ctx, mq, params)
	if err != nil {
		return nil, st, err
	}
	answers, sst, err := c.scatter(ctx, q, params, nil)
	if err != nil {
		return nil, st, err
	}
	mergeScatterStats(&st, sst)
	st.Plan = params.Plan
	st.Total = time.Since(start)
	return answers, st, nil
}

// planOnce resolves the query plan at the coordinator, before the
// fan-out: the per-shard params copies in scatter share the resolved
// *plan.Plan pointer, so every shard executes the same decisions — the
// plan travels with the query exactly like the once-inferred query
// graph. (Validation must precede resolution: a bad (Eps, Delta) is a
// caller error, not a scatter failure.)
func (c *Coordinator) planOnce(params core.Params) (core.Params, error) {
	if err := params.Validate(); err != nil {
		return params, err
	}
	return params.ResolvePlan()
}

// QueryGraphContext answers a query for an already-inferred query GRN
// scatter-gather.
func (c *Coordinator) QueryGraphContext(ctx context.Context, q *grn.Graph, params core.Params) ([]core.Answer, core.Stats, error) {
	if len(c.shards) == 1 {
		return c.queryGraphOne(ctx, q, params)
	}
	var st core.Stats
	params, err := c.planOnce(params)
	if err != nil {
		return nil, st, err
	}
	start := time.Now()
	st.QueryVertices = q.NumVertices()
	st.QueryEdges = q.NumEdges()
	answers, sst, err := c.scatter(ctx, q, params, nil)
	if err != nil {
		return nil, st, err
	}
	mergeScatterStats(&st, sst)
	st.Plan = params.Plan
	st.Total = time.Since(start)
	return answers, st, nil
}

// QueryTopKContext answers a query keeping only the k best matches by
// appearance probability (ties toward smaller source IDs). With P>1 and
// k>0 the shards stream their answers into a shared bounded top-k merge
// and terminate early on the cross-shard Markov bound; the returned top-k
// set is deterministic for a fixed placement, though which candidates the
// rising bound prunes — and so the pruning and cache counters — may vary
// run to run. k <= 0 ranks all matches.
func (c *Coordinator) QueryTopKContext(ctx context.Context, mq *gene.Matrix, params core.Params, k int) ([]core.Answer, core.Stats, error) {
	if len(c.shards) == 1 || k <= 0 {
		answers, st, err := c.QueryContext(ctx, mq, params)
		if err != nil {
			return nil, st, err
		}
		mark := params.Trace.Start(obs.StageTopK)
		in := len(answers)
		core.RankAnswers(answers)
		if k > 0 && len(answers) > k {
			answers = answers[:k]
		}
		mark.End(in, len(answers))
		return answers, st, nil
	}
	params, err := c.planOnce(params)
	if err != nil {
		return nil, core.Stats{}, err
	}
	start := time.Now()
	q, st, err := c.inferOnce(ctx, mq, params)
	if err != nil {
		return nil, st, err
	}
	sink := core.NewTopKSink(k, params.Alpha)
	answers, sst, err := c.scatter(ctx, q, params, sink)
	if err != nil {
		return nil, st, err
	}
	mergeScatterStats(&st, sst)
	st.Plan = params.Plan
	st.Total = time.Since(start)
	return answers, st, nil
}

// InferGraph reconstructs the probabilistic GRN of a matrix with the
// coordinator's estimator settings; the shards are not consulted (query
// inference reads only the matrix).
func (c *Coordinator) InferGraph(m *gene.Matrix, params core.Params) (*grn.Graph, error) {
	s := c.shards[0]
	s.mu.RLock()
	defer s.mu.RUnlock()
	proc, err := core.NewProcessor(s.idx, params)
	if err != nil {
		return nil, err
	}
	return proc.InferQueryGraph(m)
}

// queryOne is the P=1 fast path: the whole query — inference and
// refinement on one sequential stream — runs on the single shard's
// processor with the caller's params, byte-identical to the unsharded
// engine.
func (c *Coordinator) queryOne(ctx context.Context, mq *gene.Matrix, params core.Params) ([]core.Answer, core.Stats, error) {
	// Resolve the plan before cache selection: the cache key includes the
	// sample count, which an (Eps, Delta) accuracy request rewrites.
	params, err := c.planOnce(params)
	if err != nil {
		return nil, core.Stats{}, err
	}
	s := c.shards[0]
	s.mu.RLock()
	defer s.mu.RUnlock()
	params.Cache = s.cacheFor(params)
	proc, err := core.NewProcessor(s.idx, params)
	if err != nil {
		return nil, core.Stats{}, err
	}
	answers, st, err := proc.QueryContext(ctx, mq)
	s.recordQuery(st)
	return answers, st, err
}

// queryGraphOne is queryOne for pre-inferred query graphs.
func (c *Coordinator) queryGraphOne(ctx context.Context, q *grn.Graph, params core.Params) ([]core.Answer, core.Stats, error) {
	params, err := c.planOnce(params)
	if err != nil {
		return nil, core.Stats{}, err
	}
	s := c.shards[0]
	s.mu.RLock()
	defer s.mu.RUnlock()
	params.Cache = s.cacheFor(params)
	proc, err := core.NewProcessor(s.idx, params)
	if err != nil {
		return nil, core.Stats{}, err
	}
	answers, st, err := proc.QueryGraphContext(ctx, q)
	s.recordQuery(st)
	return answers, st, err
}

// recordQuery folds one served query into the shard's lifetime counters.
func (s *shardState) recordQuery(st core.Stats) {
	s.queries.Add(1)
	s.ioCost.Add(st.IOCost)
	s.ioHits.Add(st.IOHits)
}

// inferOnce infers the query graph for the P>1 paths: once, up front, on
// the caller's base Seed (so the inferred graph is independent of P), with
// the infer span and stats recorded coordinator-side.
func (c *Coordinator) inferOnce(ctx context.Context, mq *gene.Matrix, params core.Params) (*grn.Graph, core.Stats, error) {
	var st core.Stats
	start := time.Now()
	s := c.shards[0]
	s.mu.RLock()
	proc, err := core.NewProcessor(s.idx, params)
	if err != nil {
		s.mu.RUnlock()
		return nil, st, err
	}
	q, err := proc.InferQueryGraphContext(ctx, mq)
	s.mu.RUnlock()
	if err != nil {
		return nil, st, fmt.Errorf("shard: inferring query graph: %w", err)
	}
	st.InferQuery = time.Since(start)
	st.QueryVertices = q.NumVertices()
	st.QueryEdges = q.NumEdges()
	params.Trace.Record(obs.StageInfer, start, st.InferQuery, mq.NumGenes(), q.NumEdges())
	return q, st, nil
}

// scatterScratch is internal/shard's compartment of the exec.Arena: the
// flat per-shard slices of one scatter, recycled across queries. Only
// state consumed before the arena is released may live here — the
// per-shard Stats escape to the caller, so they are NOT pooled.
type scatterScratch struct {
	runs  [][]core.Answer
	procs []*core.Processor
}

// scatterScratchFor returns the scatter's pooled scratch, creating and
// registering it in the arena on first use.
func scatterScratchFor(ec *exec.Context) *scatterScratch {
	a := ec.Arena()
	if ss, ok := a.Slot(exec.ArenaScatterScratch).(*scatterScratch); ok {
		return ss
	}
	ss := &scatterScratch{}
	a.SetSlot(exec.ArenaScatterScratch, ss)
	return ss
}

// scatter fans the query graph out over all shards and merges the
// per-shard answers: the full sorted union when sink is nil, the sink's
// ranked top-k otherwise.
//
// The shared prologue runs once, sequentially, before the fan-out:
// parameter validation, the per-shard params rewrite (derived seed, sink,
// cache handle — cacheFor contends on the shard's cache mutex, so
// serializing it here keeps the mutex out of the parallel phase), and
// processor construction. The workers then only take the shard read lock
// and run the query.
func (c *Coordinator) scatter(ctx context.Context, q *grn.Graph, params core.Params, sink *core.TopKSink) ([]core.Answer, []core.Stats, error) {
	sStart := time.Now()
	scatterCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ec := exec.New(scatterCtx, nil, c.opts.Workers).
		WithGrain(params.Grain).
		WithArena(exec.GrabArena())
	defer ec.Close()

	ss := scatterScratchFor(ec)
	runs := exec.GrowSlice(&ss.runs, len(c.shards))
	procs := exec.GrowSlice(&ss.procs, len(c.shards))
	stats := make([]core.Stats, len(c.shards)) // escapes to the caller

	for i, s := range c.shards {
		sp := params
		sp.Seed = randgen.SeedFrom(params.Seed, uint64(i))
		sp.Sink = sink
		sp.Cache = s.cacheFor(sp)
		proc, perr := core.NewProcessor(s.idx, sp)
		if perr != nil {
			return nil, nil, perr
		}
		procs[i] = proc
	}

	err := ec.ForEach(len(c.shards), func(i int) error {
		s := c.shards[i]
		s.mu.RLock()
		ans, sst, qerr := procs[i].QueryGraphContext(scatterCtx, q)
		s.mu.RUnlock()
		if qerr != nil {
			return fmt.Errorf("shard %d: %w", i, qerr)
		}
		s.recordQuery(sst)
		runs[i] = ans
		stats[i] = sst
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	produced := 0
	for _, a := range runs {
		produced += len(a)
	}
	params.Trace.Record(obs.StageScatter, sStart, time.Since(sStart), len(c.shards), produced)

	mStart := time.Now()
	var merged []core.Answer
	if sink != nil {
		merged = sink.Results()
	} else {
		// Placement partitions the sources, so the union has no duplicates;
		// each run is already Source-ascending, and the streaming k-way
		// merge preserves that order — matching the unsharded engine's
		// answer order without re-sorting the union.
		merged = core.MergeAnswerRuns(runs)
	}
	params.Trace.Record(obs.StageMerge, mStart, time.Since(mStart), produced, len(merged))
	return merged, stats, nil
}

// mergeScatterStats folds the per-shard stats of one scatter into the
// aggregate query stats; see core.MergeScatterStats.
func mergeScatterStats(st *core.Stats, shards []core.Stats) {
	core.MergeScatterStats(st, shards)
}
