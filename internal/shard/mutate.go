package shard

import (
	"errors"
	"fmt"

	"github.com/imgrn/imgrn/internal/gene"
)

// Mutation routing errors, matchable with errors.Is so callers (the HTTP
// layer) can map them onto statuses.
var (
	// ErrSourceExists rejects AddMatrix of an already-placed source.
	ErrSourceExists = errors.New("source already placed")
	// ErrSourceNotFound rejects RemoveMatrix of an unplaced source.
	ErrSourceNotFound = errors.New("source not placed")
)

// Mutation routing. The default placement is deterministic round-robin
// by arrival: the i-th source ever placed goes to shard i mod P, so a
// database built then grown reaches the same placement as one grown from
// empty in the same order. With Options.PlaceFunc set (the distributed
// tier's consistent-hash ring) placement is instead a pure function of
// the source ID — arrival order stops mattering, which is what lets
// independent replicas of a shard agree on ownership without
// coordination. Either way a mutation write-locks only its own shard —
// queries on the other P-1 shards and mutations routed elsewhere proceed
// concurrently — and invalidates only the mutated source's cache entries
// on that shard.

// AddMatrix places a new data source on its shard (round-robin, or
// Options.PlaceFunc when set) and indexes it there online. The source
// becomes immediately queryable.
func (c *Coordinator) AddMatrix(m *gene.Matrix) error {
	if m == nil {
		return fmt.Errorf("shard: nil matrix")
	}
	c.mu.Lock()
	if sh, ok := c.placement[m.Source]; ok {
		c.mu.Unlock()
		return fmt.Errorf("shard: source %d on shard %d: %w", m.Source, sh, ErrSourceExists)
	}
	sh := c.cursor % len(c.shards)
	if c.opts.PlaceFunc != nil {
		sh = c.opts.placeOf(m.Source)
	}
	// The cursor still counts successful placements even under PlaceFunc:
	// the durable manifest recovers it as checkpointed-cursor + replayed
	// adds, so it must advance identically on every code path.
	c.cursor++
	c.placement[m.Source] = sh
	c.mu.Unlock()

	s := c.shards[sh]
	s.mu.Lock()
	err := s.idx.AddMatrix(m)
	s.mu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.placement, m.Source)
		// Roll the cursor back too: it must count successful placements
		// only, or the durable store's recovered cursor (manifest cursor +
		// replayed adds, none of which include failed adds) would diverge
		// from the live one and change round-robin placement after a
		// restart.
		c.cursor--
		c.mu.Unlock()
		return err
	}
	if !c.sharedDB {
		// FromIndex shares the shard's database as the global view, where
		// idx.AddMatrix has already registered the matrix.
		c.mu.Lock()
		dbErr := c.db.Add(m)
		c.mu.Unlock()
		if dbErr != nil {
			return fmt.Errorf("shard: global database out of sync: %w", dbErr)
		}
	}
	s.invalidateSource(m.Source)
	s.mutations.Add(1)
	c.checkImbalance()
	return nil
}

// RemoveMatrix drops a data source from the shard it is placed on.
func (c *Coordinator) RemoveMatrix(source int) error {
	c.mu.Lock()
	sh, ok := c.placement[source]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("shard: source %d: %w", source, ErrSourceNotFound)
	}
	s := c.shards[sh]
	s.mu.Lock()
	err := s.idx.RemoveMatrix(source)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.placement, source)
	if !c.sharedDB {
		c.db.Remove(source)
	}
	c.mu.Unlock()
	s.invalidateSource(source)
	s.mutations.Add(1)
	c.checkImbalance()
	return nil
}

// Placement reports which shard a source is placed on.
func (c *Coordinator) Placement(source int) (shard int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	sh, ok := c.placement[source]
	return sh, ok
}

// Loads returns the per-shard source counts from the placement map.
func (c *Coordinator) Loads() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.loadsLocked()
}

func (c *Coordinator) loadsLocked() []int {
	loads := make([]int, len(c.shards))
	for _, sh := range c.placement {
		loads[sh]++
	}
	return loads
}

// checkImbalance invokes the rebalance hook when removals have skewed the
// placement beyond Options.ImbalanceRatio. Round-robin keeps additions
// balanced to within one source, so only deletion patterns trigger it.
func (c *Coordinator) checkImbalance() {
	if c.opts.OnImbalance == nil || len(c.shards) < 2 {
		return
	}
	c.mu.Lock()
	loads := c.loadsLocked()
	c.mu.Unlock()
	minLoad, maxLoad := loads[0], loads[0]
	for _, l := range loads[1:] {
		if l < minLoad {
			minLoad = l
		}
		if l > maxLoad {
			maxLoad = l
		}
	}
	imbalanced := false
	if minLoad == 0 {
		imbalanced = maxLoad > 1
	} else {
		imbalanced = float64(maxLoad) > c.opts.ImbalanceRatio*float64(minLoad)
	}
	if imbalanced {
		c.opts.OnImbalance(loads)
	}
}
