package shard_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/shard"
	"github.com/imgrn/imgrn/internal/synth"
)

// goldenOpts is the shared fixed-seed fixture of the core golden tests:
// the same database, index options and query workload, so a P=1
// coordinator can be pinned byte-identical to the raw processor.
var goldenOpts = index.Options{D: 2, Samples: 24, Seed: 7, Bits: 512, BufferPages: 256}

func goldenDB(t *testing.T) *synth.Dataset {
	t.Helper()
	ds, err := synth.GenerateDatabase(synth.DBParams{
		N: 120, NMin: 20, NMax: 40, LMin: 20, LMax: 30, Seed: 7, Dist: synth.Gaussian,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// fingerprint renders one query result — answers with full-precision
// probabilities plus every schedule-independent Stats counter — for exact
// comparison across engine configurations.
func fingerprint(answers []core.Answer, st core.Stats) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "answers=%d io=%d hits=%d cand=%d genes=%d l5=%d npv=%d npp=%d ppc=%d ppp=%d qv=%d qe=%d ch=%d cm=%d\n",
		len(answers), st.IOCost, st.IOHits, st.CandidateMatrices, st.CandidateGenes,
		st.MatricesPrunedL5, st.NodePairsVisited, st.NodePairsPruned,
		st.PointPairsChecked, st.PointPairsPruned, st.QueryVertices, st.QueryEdges,
		st.CacheHits, st.CacheMisses)
	for _, a := range answers {
		fmt.Fprintf(&sb, "  src=%d prob=%.17g edges=%d\n", a.Source, a.Prob, len(a.Edges))
	}
	return sb.String()
}

// TestP1ByteIdentical pins the sharding tentpole's core invariant: a
// 1-shard coordinator answers byte-identically to the raw unsharded
// processor — same answers, same probabilities to the last bit, same
// pruning/I/O/cache counters — across the golden Monte Carlo workload.
// P=1 must delegate the whole query to one processor because inference
// and refinement share the sequential RNG stream.
func TestP1ByteIdentical(t *testing.T) {
	ds := goldenDB(t)
	idx, err := index.Build(ds.DB, goldenOpts)
	if err != nil {
		t.Fatal(err)
	}
	ds2 := goldenDB(t)
	coord, err := shard.Build(ds2.DB, shard.Options{NumShards: 1, Index: goldenOpts})
	if err != nil {
		t.Fatal(err)
	}

	// The unsharded engine builds a fresh processor per query over a shared
	// cache; mirror that exactly.
	params := core.Params{Gamma: 0.5, Alpha: 0.4, Samples: 48, Seed: 9,
		Cache: core.NewEdgeProbCache(0)}

	rng := randgen.New(99)
	rng2 := randgen.New(99)
	for i := 0; i < 6; i++ {
		mq, _, err := ds.ExtractQuery(rng, 5)
		if err != nil {
			t.Fatal(err)
		}
		mq2, _, err := ds2.ExtractQuery(rng2, 5)
		if err != nil {
			t.Fatal(err)
		}
		proc, err := core.NewProcessor(idx, params)
		if err != nil {
			t.Fatal(err)
		}
		want, wantSt, err := proc.Query(mq)
		if err != nil {
			t.Fatal(err)
		}
		got, gotSt, err := coord.QueryContext(context.Background(), mq2, params)
		if err != nil {
			t.Fatal(err)
		}
		if w, g := fingerprint(want, wantSt), fingerprint(got, gotSt); g != w {
			t.Errorf("query %d: P=1 coordinator diverged from unsharded processor:\n got:\n%s\nwant:\n%s", i, g, w)
		}
	}
}

// buildBoth builds the golden database twice: once unsharded, once
// partitioned across p shards.
func buildBoth(t *testing.T, p int) (*synth.Dataset, *index.Index, *synth.Dataset, *shard.Coordinator, core.Params) {
	t.Helper()
	ds := goldenDB(t)
	idx, err := index.Build(ds.DB, goldenOpts)
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{Gamma: 0.5, Alpha: 0.4, Seed: 9, Analytic: true}
	ds2 := goldenDB(t)
	coord, err := shard.Build(ds2.DB, shard.Options{NumShards: p, Index: goldenOpts})
	if err != nil {
		t.Fatal(err)
	}
	return ds, idx, ds2, coord, params
}

// TestScatterSetEquality: under the deterministic analytic estimator a
// P>1 scatter must return exactly the unsharded answer set — same
// sources, bit-equal probabilities, sorted by source — because placement
// partitions the sources and all pruning is lossless per shard.
func TestScatterSetEquality(t *testing.T) {
	for _, p := range []int{2, 4} {
		t.Run(fmt.Sprintf("P=%d", p), func(t *testing.T) {
			ds, idx, ds2, coord, params := buildBoth(t, p)
			rng := randgen.New(99)
			rng2 := randgen.New(99)
			for i := 0; i < 6; i++ {
				mq, _, err := ds.ExtractQuery(rng, 5)
				if err != nil {
					t.Fatal(err)
				}
				mq2, _, err := ds2.ExtractQuery(rng2, 5)
				if err != nil {
					t.Fatal(err)
				}
				proc, err := core.NewProcessor(idx, params)
				if err != nil {
					t.Fatal(err)
				}
				want, _, err := proc.Query(mq)
				if err != nil {
					t.Fatal(err)
				}
				got, st, err := coord.QueryContext(context.Background(), mq2, params)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("query %d: %d answers sharded, %d unsharded", i, len(got), len(want))
				}
				for k := range got {
					if got[k].Source != want[k].Source || got[k].Prob != want[k].Prob {
						t.Errorf("query %d answer %d: sharded (src=%d p=%v) != unsharded (src=%d p=%v)",
							i, k, got[k].Source, got[k].Prob, want[k].Source, want[k].Prob)
					}
				}
				if st.QueryVertices == 0 || st.IOCost == 0 {
					t.Errorf("query %d: aggregate stats not merged: %+v", i, st)
				}
			}
		})
	}
}

// TestScatterDeterministicMC: under Monte Carlo estimation a P>1 scatter
// draws (Seed, shard)-derived streams, so results differ from the
// unsharded stream but must be a pure function of (placement, Params) —
// identical across repeated runs and across identically-built
// coordinators, never dependent on goroutine schedule.
func TestScatterDeterministicMC(t *testing.T) {
	params := core.Params{Gamma: 0.5, Alpha: 0.4, Samples: 48, Seed: 9}
	run := func() string {
		ds2 := goldenDB(t)
		mq2, _, err := ds2.ExtractQuery(randgen.New(99), 5)
		if err != nil {
			t.Fatal(err)
		}
		coord, err := shard.Build(ds2.DB, shard.Options{NumShards: 3, Index: goldenOpts})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for rep := 0; rep < 2; rep++ {
			answers, _, err := coord.QueryContext(context.Background(), mq2, params)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range answers {
				fmt.Fprintf(&sb, "src=%d prob=%.17g\n", a.Source, a.Prob)
			}
			sb.WriteString("--\n")
		}
		return sb.String()
	}
	first := run()
	if second := run(); second != first {
		t.Errorf("MC scatter not deterministic across identical coordinators:\n%s\nvs\n%s", first, second)
	}
}

// TestTopKMatchesFullRanking: the streamed bounded merge with cross-shard
// early termination must return exactly the k best answers of the full
// query — the prefix of the probability ranking (ties toward smaller
// source IDs) — even though it prunes shard work the full query performs.
func TestTopKMatchesFullRanking(t *testing.T) {
	_, _, ds2, coord, params := buildBoth(t, 3)
	rng := randgen.New(99)
	for i := 0; i < 4; i++ {
		mq, _, err := ds2.ExtractQuery(rng, 5)
		if err != nil {
			t.Fatal(err)
		}
		full, _, err := coord.QueryContext(context.Background(), mq, params)
		if err != nil {
			t.Fatal(err)
		}
		// Rank the full answer set the way top-k defines it.
		ranked := append([]core.Answer(nil), full...)
		for a := 1; a < len(ranked); a++ {
			for b := a; b > 0; b-- {
				if ranked[b].Prob > ranked[b-1].Prob ||
					(ranked[b].Prob == ranked[b-1].Prob && ranked[b].Source < ranked[b-1].Source) {
					ranked[b], ranked[b-1] = ranked[b-1], ranked[b]
				} else {
					break
				}
			}
		}
		for _, k := range []int{1, 3, 10} {
			got, st, err := coord.QueryTopKContext(context.Background(), mq, params, k)
			if err != nil {
				t.Fatal(err)
			}
			wantN := k
			if wantN > len(ranked) {
				wantN = len(ranked)
			}
			if len(got) != wantN {
				t.Fatalf("query %d k=%d: %d answers, want %d", i, k, len(got), wantN)
			}
			for j := 0; j < wantN; j++ {
				if got[j].Source != ranked[j].Source || got[j].Prob != ranked[j].Prob {
					t.Errorf("query %d k=%d rank %d: (src=%d p=%v), want (src=%d p=%v)",
						i, k, j, got[j].Source, got[j].Prob, ranked[j].Source, ranked[j].Prob)
				}
			}
			if st.QueryEdges == 0 {
				t.Errorf("query %d k=%d: stats not populated", i, k)
			}
		}
	}
}

// mkMatrix builds a small matrix over genes disjoint from the synth pool.
func mkMatrix(t testing.TB, src int) *gene.Matrix {
	t.Helper()
	rng := randgen.New(uint64(src)*0x9e37 + 1)
	genes := []gene.ID{gene.ID(100000 + 2*src), gene.ID(100001 + 2*src)}
	cols := make([][]float64, len(genes))
	for j := range cols {
		col := make([]float64, 16)
		for k := range col {
			col[k] = rng.Gaussian(0, 1)
		}
		cols[j] = col
	}
	m, err := gene.NewMatrix(src, genes, cols)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestMutationRouting covers placement: round-robin assignment of new
// sources, the sentinel errors, load reporting, and the global database
// view staying in sync with the shards.
func TestMutationRouting(t *testing.T) {
	ds := goldenDB(t)
	n := ds.DB.Len()
	coord, err := shard.Build(ds.DB, shard.Options{NumShards: 4, Index: goldenOpts})
	if err != nil {
		t.Fatal(err)
	}
	// Round-robin continues from the build cursor.
	for i := 0; i < 8; i++ {
		src := 5000 + i
		if err := coord.AddMatrix(mkMatrix(t, src)); err != nil {
			t.Fatal(err)
		}
		sh, ok := coord.Placement(src)
		if !ok {
			t.Fatalf("source %d unplaced after AddMatrix", src)
		}
		if want := (n + i) % 4; sh != want {
			t.Errorf("source %d placed on shard %d, want %d", src, sh, want)
		}
	}
	if got := coord.Database().Len(); got != n+8 {
		t.Errorf("global database = %d sources, want %d", got, n+8)
	}
	loads := coord.Loads()
	total := 0
	for _, l := range loads {
		total += l
	}
	if total != n+8 {
		t.Errorf("loads %v sum to %d, want %d", loads, total, n+8)
	}
	// Duplicate source: ErrSourceExists, placement unchanged.
	if err := coord.AddMatrix(mkMatrix(t, 5000)); !errors.Is(err, shard.ErrSourceExists) {
		t.Errorf("duplicate AddMatrix err = %v, want ErrSourceExists", err)
	}
	// Remove, then the source is gone everywhere.
	if err := coord.RemoveMatrix(5000); err != nil {
		t.Fatal(err)
	}
	if _, ok := coord.Placement(5000); ok {
		t.Error("removed source still placed")
	}
	if coord.Database().BySource(5000) != nil {
		t.Error("removed source still in global database")
	}
	if err := coord.RemoveMatrix(5000); !errors.Is(err, shard.ErrSourceNotFound) {
		t.Errorf("double RemoveMatrix err = %v, want ErrSourceNotFound", err)
	}
}

// TestImbalanceHook: the rebalance hook fires when a mutation leaves the
// max/min shard load ratio above the threshold, and never moves sources
// itself.
func TestImbalanceHook(t *testing.T) {
	db := gene.NewDatabase()
	for src := 0; src < 4; src++ {
		if err := db.Add(mkMatrix(t, src)); err != nil {
			t.Fatal(err)
		}
	}
	var mu sync.Mutex
	var fired [][]int
	coord, err := shard.Build(db, shard.Options{
		NumShards: 2, Index: index.Options{D: 1, Samples: 8, Seed: 1},
		ImbalanceRatio: 2,
		OnImbalance: func(loads []int) {
			mu.Lock()
			fired = append(fired, append([]int(nil), loads...))
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Balanced 2/2; drain shard 1 (odd build positions: sources 1, 3).
	if err := coord.RemoveMatrix(1); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n0 := len(fired)
	mu.Unlock()
	if n0 != 0 {
		t.Fatalf("hook fired at 2/1 load: %v", fired)
	}
	if err := coord.RemoveMatrix(3); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(fired) == 0 {
		t.Fatal("hook did not fire at 2/0 load")
	}
	got := fired[len(fired)-1]
	if len(got) != 2 || got[0]+got[1] != 2 {
		t.Errorf("hook loads = %v, want two shards holding 2 sources", got)
	}
}

// TestSnapshotCounters: Snapshot partitions the sources, counts served
// queries per shard, and surfaces per-shard I/O and cache counters after
// queries ran.
func TestSnapshotCounters(t *testing.T) {
	ds := goldenDB(t)
	coord, err := shard.Build(ds.DB, shard.Options{NumShards: 3, Index: goldenOpts})
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{Gamma: 0.5, Alpha: 0.4, Seed: 9, Analytic: true}
	mq, _, err := ds.ExtractQuery(randgen.New(99), 5)
	if err != nil {
		t.Fatal(err)
	}
	const reps = 2
	for i := 0; i < reps; i++ {
		if _, _, err := coord.QueryContext(context.Background(), mq, params); err != nil {
			t.Fatal(err)
		}
	}
	infos := coord.Snapshot()
	if len(infos) != 3 {
		t.Fatalf("snapshot has %d shards", len(infos))
	}
	sources, queries, io := 0, uint64(0), uint64(0)
	for i, info := range infos {
		if info.Shard != i {
			t.Errorf("snapshot[%d].Shard = %d", i, info.Shard)
		}
		sources += info.Sources
		queries += info.Queries
		io += info.IOCost
	}
	if sources != ds.DB.Len() {
		t.Errorf("snapshot sources sum to %d, want %d", sources, ds.DB.Len())
	}
	if queries != reps*3 {
		t.Errorf("snapshot queries sum to %d, want %d (each scatter touches every shard)", queries, reps*3)
	}
	if io == 0 {
		t.Error("no shard accumulated I/O cost")
	}
	bs := coord.IndexStats()
	vectors := 0
	for _, info := range infos {
		vectors += info.Vectors
	}
	if bs.Vectors != vectors {
		t.Errorf("IndexStats.Vectors = %d, snapshot sums to %d", bs.Vectors, vectors)
	}
}

// TestScatterCancellation: a cancelled context aborts the scatter with
// context.Canceled, both when cancelled before the call and while shards
// are mid-flight.
func TestScatterCancellation(t *testing.T) {
	ds := goldenDB(t)
	coord, err := shard.Build(ds.DB, shard.Options{NumShards: 3, Index: goldenOpts})
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{Gamma: 0.5, Alpha: 0.4, Samples: 48, Seed: 9}
	mq, _, err := ds.ExtractQuery(randgen.New(99), 5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := coord.QueryContext(ctx, mq, params); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled QueryContext err = %v, want context.Canceled", err)
	}
	if _, _, err := coord.QueryTopKContext(ctx, mq, params, 3); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled QueryTopKContext err = %v, want context.Canceled", err)
	}
	// Mid-scatter: race a cancel against the running query; the call must
	// return promptly with either a complete answer or context.Canceled,
	// never a partial set or a deadlock (exercised under -race in CI).
	for rep := 0; rep < 8; rep++ {
		qctx, qcancel := context.WithCancel(context.Background())
		done := make(chan struct{})
		var answers []core.Answer
		var qerr error
		go func() {
			answers, _, qerr = coord.QueryContext(qctx, mq, params)
			close(done)
		}()
		qcancel()
		<-done
		if qerr != nil && !errors.Is(qerr, context.Canceled) {
			t.Fatalf("rep %d: err = %v, want nil or context.Canceled", rep, qerr)
		}
		if qerr != nil && answers != nil {
			t.Fatalf("rep %d: cancelled query returned partial answers", rep)
		}
	}
	// The coordinator still answers after cancellations.
	if _, _, err := coord.QueryContext(context.Background(), mq, params); err != nil {
		t.Fatalf("post-cancel query: %v", err)
	}
}

// TestConcurrentMutationsAndQueries races scatter-gather queries against
// mutations routed to every shard (run with -race in CI). The mutated
// sources carry genes disjoint from the query, so the fixed query's
// answer set must equal the quiescent run no matter the interleaving.
func TestConcurrentMutationsAndQueries(t *testing.T) {
	ds := goldenDB(t)
	coord, err := shard.Build(ds.DB, shard.Options{NumShards: 3, Index: goldenOpts})
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{Gamma: 0.5, Alpha: 0.4, Seed: 9, Analytic: true}
	mq, _, err := ds.ExtractQuery(randgen.New(99), 5)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := coord.QueryContext(context.Background(), mq, params)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				src := 7000 + w*100 + rep
				if err := coord.AddMatrix(mkMatrix(t, src)); err != nil {
					errCh <- err
					return
				}
				if err := coord.RemoveMatrix(src); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				got, _, err := coord.QueryContext(context.Background(), mq, params)
				if err != nil {
					errCh <- err
					return
				}
				if len(got) != len(want) {
					errCh <- fmt.Errorf("concurrent query: %d answers, want %d", len(got), len(want))
					return
				}
				for k := range got {
					if got[k].Source != want[k].Source || got[k].Prob != want[k].Prob {
						errCh <- fmt.Errorf("concurrent query: answer %d differs", k)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}

// TestFromIndexSharedDatabase: wrapping a built index must not
// double-register mutations in the shared database, and queries must work
// unchanged.
func TestFromIndexSharedDatabase(t *testing.T) {
	ds := goldenDB(t)
	idx, err := index.Build(ds.DB, goldenOpts)
	if err != nil {
		t.Fatal(err)
	}
	coord := shard.FromIndex(idx)
	if coord.NumShards() != 1 {
		t.Fatalf("FromIndex shards = %d", coord.NumShards())
	}
	n := coord.Database().Len()
	if err := coord.AddMatrix(mkMatrix(t, 9000)); err != nil {
		t.Fatal(err)
	}
	if got := coord.Database().Len(); got != n+1 {
		t.Fatalf("database after add = %d sources, want %d (double registration?)", got, n+1)
	}
	if err := coord.RemoveMatrix(9000); err != nil {
		t.Fatal(err)
	}
	if got := coord.Database().Len(); got != n {
		t.Fatalf("database after remove = %d sources, want %d", got, n)
	}
}
