package shard

import (
	"context"
	"fmt"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
)

// Per-shard execution seams for the distributed serving tier
// (DESIGN.md §15). A shard server hosts a Coordinator over the subset of
// global shards placed on it; the remote coordinator ships each request
// with the resolved plan and the per-GLOBAL-shard derived seed already in
// the params, and these entry points execute exactly the per-shard leg of
// the in-process scatter: cache handle from the shard's own store, query
// under the shard's read lock, lifetime counters recorded. The caller —
// not these methods — owns the params rewrite (SeedFrom(Seed, global),
// Sink, Plan): that is what keeps a remote shard's answers byte-identical
// to the same shard of an in-process scatter.

// QueryShardGraph runs one pre-inferred query graph on local shard
// `local` with the caller's params verbatim (plus the shard's cache
// handle). Params must already be validated and plan-resolved.
func (c *Coordinator) QueryShardGraph(ctx context.Context, local int, q *grn.Graph, params core.Params) ([]core.Answer, core.Stats, error) {
	if local < 0 || local >= len(c.shards) {
		return nil, core.Stats{}, fmt.Errorf("shard: local shard %d out of range [0,%d)", local, len(c.shards))
	}
	s := c.shards[local]
	s.mu.RLock()
	defer s.mu.RUnlock()
	params.Cache = s.cacheFor(params)
	proc, err := core.NewProcessor(s.idx, params)
	if err != nil {
		return nil, core.Stats{}, err
	}
	answers, st, err := proc.QueryGraphContext(ctx, q)
	s.recordQuery(st)
	return answers, st, err
}

// InferGraphContext infers the query GRN of mq once, at the caller's
// base seed, with the infer stats and trace span recorded — the shared
// prologue of a scatter, exposed so a shard server can reproduce the
// coordinator-side inference locally (inference reads only the query
// matrix, so every server derives the identical graph).
func (c *Coordinator) InferGraphContext(ctx context.Context, mq *gene.Matrix, params core.Params) (*grn.Graph, core.Stats, error) {
	return c.inferOnce(ctx, mq, params)
}

// QueryShardBatch runs a pre-built batch — graph items whose params
// already carry the per-shard rewrite — on local shard `local` through
// the shard's core.QueryBatch, preserving the per-shard traversal and
// permutation sharing of the in-process batch scatter.
func (c *Coordinator) QueryShardBatch(ctx context.Context, local int, items []core.BatchItem, opts core.BatchOptions) ([]core.BatchResult, core.BatchStats, error) {
	if local < 0 || local >= len(c.shards) {
		return nil, core.BatchStats{}, fmt.Errorf("shard: local shard %d out of range [0,%d)", local, len(c.shards))
	}
	s := c.shards[local]
	for i := range items {
		items[i].Params.Cache = s.cacheFor(items[i].Params)
	}
	s.mu.RLock()
	results, bst := core.QueryBatch(ctx, s.idx, items, opts)
	s.mu.RUnlock()
	for _, r := range results {
		if r.Err == nil {
			s.recordQuery(r.Stats)
		}
	}
	return results, bst, nil
}

// Matrices reports the number of indexed data sources — the Engine
// surface shared with the cluster coordinator, which has no Database
// view.
func (c *Coordinator) Matrices() int {
	return c.Database().Len()
}
