package shard_test

import (
	"context"
	"testing"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/shard"
	"github.com/imgrn/imgrn/internal/stats"
	"github.com/imgrn/imgrn/internal/synth"
)

// TestScatterSharesAccuracyPlan: a P>1 query with a requested (ε, δ)
// resolves its plan once at the coordinator — the reported stats carry
// one plan with the Lemma-2 sample count R = SampleSize(ε, δ), exactly
// like the once-inferred query graph is shared across the shards.
func TestScatterSharesAccuracyPlan(t *testing.T) {
	ds, err := synth.GenerateDatabase(synth.DBParams{
		N: 12, NMin: 8, NMax: 12, LMin: 16, LMax: 20, Seed: 11, Dist: synth.Gaussian,
	})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := shard.Build(ds.DB, shard.Options{NumShards: 3, Index: goldenOpts})
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := ds.ExtractQuery(randgen.New(5), 4)
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{Gamma: 0.5, Alpha: 0.4, Eps: 0.1, Delta: 0.05, Seed: 3}
	_, st, err := coord.QueryContext(context.Background(), q, params)
	if err != nil {
		t.Fatal(err)
	}
	want := stats.SampleSize(0.1, 0.05)
	if st.Plan == nil {
		t.Fatal("sharded query stats carry no plan")
	}
	if !st.Plan.FromAccuracy || st.Plan.EffectiveSamples() != want {
		t.Errorf("plan = %+v, want FromAccuracy with R=%d", st.Plan, want)
	}

	// Invalid accuracy is an error at the coordinator boundary, not a
	// panic inside a shard worker.
	params.Delta = 2
	if _, _, err := coord.QueryContext(context.Background(), q, params); err == nil {
		t.Error("bad (eps, delta) accepted by sharded query")
	}
}
