// Package shard partitions a gene feature database into P independent
// index shards and runs IM-GRN queries over them scatter-gather
// (DESIGN.md §10). Each shard owns a full vertical slice of the engine
// below the facade: its own R*-tree index over its partition, its own
// pagestore accountant (so per-shard I/O is attributable), and its own
// per-estimator edge-probability caches. A Coordinator routes mutations to
// shards by a deterministic placement policy and fans queries out across
// shards with the exec worker pool, merging per-shard answers — either a
// full ordered union or a bounded top-k merge with cross-shard
// Markov-bound early termination.
//
// Sharding changes the concurrency profile, not the answer set: a P=1
// coordinator is byte-identical to the unsharded engine (pinned by a
// golden test), and P>1 answers are set-equal under the analytic
// estimator. Under Monte Carlo estimation P>1 shards draw from
// (Seed, shard)-derived streams, so probabilities are deterministic for a
// fixed P and placement but differ from the unsharded stream — the same
// caveat the Workers>1 path documents.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/index"
)

// Options configures a sharded coordinator.
type Options struct {
	// NumShards is the partition count P (1 when <= 0). P=1 reproduces the
	// unsharded engine exactly.
	NumShards int
	// Index configures each shard's index construction. All shards share
	// one Options value: embeddings derive their randomness from
	// (Index.Seed, Source), so a matrix embeds identically whichever shard
	// it lands on.
	Index index.Options
	// PlaceFunc, when non-nil, overrides the round-robin placement policy:
	// a source is placed on shard PlaceFunc(source) mod NumShards, both at
	// Build time and for every AddMatrix. The distributed tier supplies a
	// consistent-hash ring here so placement is a pure function of the
	// source ID — every coordinator and shard server derives the same
	// placement independently. The function must be deterministic and safe
	// for concurrent use; reopening a durable store must pass the same
	// function, or recovered placement diverges from new placements.
	PlaceFunc func(source int) int
	// Workers bounds the scatter fan-out concurrency (NumShards when <= 0).
	// Intra-shard parallelism is still governed by the per-query
	// Params.Workers; with both set the products multiply, so configure one
	// or the other.
	Workers int
	// ImbalanceRatio triggers the rebalance hook when the most loaded
	// shard holds more than ImbalanceRatio times the sources of the least
	// loaded one (2 when <= 1). Only meaningful with OnImbalance set.
	ImbalanceRatio float64
	// OnImbalance, when non-nil, is invoked after a mutation that leaves
	// the placement imbalanced, with the per-shard source counts. The hook
	// observes — it may schedule a rebuild at a larger P or log — but the
	// coordinator itself never moves sources between shards (moving a
	// source changes its shard-derived sample streams, so rebalancing is an
	// explicit, offline decision). Called outside all coordinator locks.
	OnImbalance func(loads []int)
}

// placeOf maps a source onto a shard through PlaceFunc, clamped into
// [0, NumShards) so a misbehaving policy cannot index out of range.
func (o Options) placeOf(source int) int {
	sh := o.PlaceFunc(source) % o.NumShards
	if sh < 0 {
		sh += o.NumShards
	}
	return sh
}

func (o Options) withDefaults() Options {
	if o.NumShards <= 0 {
		o.NumShards = 1
	}
	if o.Workers <= 0 {
		o.Workers = o.NumShards
	}
	if o.ImbalanceRatio <= 1 {
		o.ImbalanceRatio = 2
	}
	return o
}

// Coordinator routes queries and mutations across the shards. Methods are
// safe for concurrent use: queries take per-shard read locks (so queries
// proceed in parallel with each other on every shard), while a mutation
// write-locks only the one shard its source is placed on — mutations on
// different shards, and queries on the other P-1 shards, proceed
// concurrently.
type Coordinator struct {
	opts Options

	// mu guards the placement map, the round-robin cursor, and the global
	// database view. It is never held while a shard lock is held.
	mu        sync.Mutex
	placement map[int]int // source -> shard
	cursor    int         // round-robin placement position
	db        *gene.Database
	sharedDB  bool // db is shard 0's own database (FromIndex); skip double bookkeeping

	shards []*shardState
}

// shardState is one shard: an index over its partition plus the shard's
// own caches and lifetime counters.
type shardState struct {
	// mu is the shard's index lock: queries hold it for reading, mutations
	// for writing.
	mu  sync.RWMutex
	idx *index.Index

	cacheMu sync.Mutex
	caches  map[estimatorSig]*core.EdgeProbCache

	// Lifetime counters for observability (Snapshot, /stats, /metrics).
	queries   atomic.Uint64
	mutations atomic.Uint64
	ioCost    atomic.Uint64 // per-query page accesses served by this shard
	ioHits    atomic.Uint64 // per-query buffer-pool absorptions
}

// estimatorSig keys the per-shard caches by estimator configuration,
// mirroring the unsharded engine: a cache must never be shared across
// configurations (the memoized probabilities depend on them).
type estimatorSig struct {
	samples  int
	seed     uint64
	analytic bool
	oneSided bool
}

// cacheFor returns (creating if needed) the shard's probability cache for
// the estimator settings of params. For P>1 params already carries the
// shard-derived seed, so the same base query maps to distinct cache keys
// on distinct shards — exactly right, since their sample streams differ.
func (s *shardState) cacheFor(params core.Params) *core.EdgeProbCache {
	sig := estimatorSig{
		samples:  params.Samples,
		seed:     params.Seed,
		analytic: params.Analytic,
		oneSided: params.OneSided,
	}
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	if s.caches == nil {
		s.caches = make(map[estimatorSig]*core.EdgeProbCache)
	}
	c, ok := s.caches[sig]
	if !ok {
		c = core.NewEdgeProbCache(0)
		s.caches[sig] = c
	}
	return c
}

// invalidateSource drops the cached probabilities of one source from every
// estimator cache of the shard, leaving all other sources' entries (and
// the caches' hit counters) warm.
func (s *shardState) invalidateSource(source int) {
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	for _, c := range s.caches {
		c.InvalidateSource(source)
	}
}

// Build partitions db round-robin into opts.NumShards shards and builds
// one index per shard. Matrices are shared by pointer between db and the
// shard partitions; db remains the coordinator's global view (Database).
func Build(db *gene.Database, opts Options) (*Coordinator, error) {
	if db == nil {
		return nil, fmt.Errorf("shard: nil database")
	}
	opts = opts.withDefaults()
	p := opts.NumShards

	parts := make([]*gene.Database, p)
	for i := range parts {
		parts[i] = gene.NewDatabase()
	}
	placement := make(map[int]int, db.Len())
	for i, m := range db.Matrices() {
		sh := i % p
		if opts.PlaceFunc != nil {
			sh = opts.placeOf(m.Source)
		}
		if err := parts[sh].Add(m); err != nil {
			return nil, fmt.Errorf("shard: partitioning source %d: %w", m.Source, err)
		}
		placement[m.Source] = sh
	}

	c := &Coordinator{
		opts:      opts,
		placement: placement,
		cursor:    db.Len(),
		db:        db,
		shards:    make([]*shardState, p),
	}
	for i := range c.shards {
		idx, err := index.Build(parts[i], opts.Index)
		if err != nil {
			return nil, fmt.Errorf("shard: building shard %d: %w", i, err)
		}
		c.shards[i] = &shardState{idx: idx}
	}
	return c, nil
}

// FromIndex wraps an already-built index as a single-shard coordinator —
// the path for indexes loaded from disk, and the degenerate deployment the
// golden tests pin against the unsharded engine.
func FromIndex(idx *index.Index) *Coordinator {
	db := idx.DB()
	placement := make(map[int]int, db.Len())
	for _, m := range db.Matrices() {
		placement[m.Source] = 0
	}
	return &Coordinator{
		opts:      Options{NumShards: 1, Index: idx.Options()}.withDefaults(),
		placement: placement,
		cursor:    db.Len(),
		db:        db,
		sharedDB:  true,
		shards:    []*shardState{{idx: idx}},
	}
}

// NumShards returns the partition count P.
func (c *Coordinator) NumShards() int { return len(c.shards) }

// D returns the per-matrix pivot count of the shard indexes.
func (c *Coordinator) D() int { return c.shards[0].idx.D() }

// Database returns the coordinator's global database view: every source
// across all shards. Safe for concurrent use with queries; mutations
// update it atomically with their shard.
func (c *Coordinator) Database() *gene.Database {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.db
}

// IndexStats aggregates the shards' index construction statistics:
// vectors, nodes, pages and build time sum across shards; tree height is
// the maximum.
func (c *Coordinator) IndexStats() index.BuildStats {
	var out index.BuildStats
	for _, s := range c.shards {
		s.mu.RLock()
		bs := s.idx.Stats()
		s.mu.RUnlock()
		out.Elapsed += bs.Elapsed
		out.Vectors += bs.Vectors
		out.TreeNodes += bs.TreeNodes
		out.Pages += bs.Pages
		out.PivotCostSum += bs.PivotCostSum
		if bs.TreeHeight > out.TreeHeight {
			out.TreeHeight = bs.TreeHeight
		}
	}
	return out
}

// ShardInfo is one shard's observability snapshot.
type ShardInfo struct {
	// Shard is the shard number in [0, P).
	Shard int
	// Sources and Vectors size the shard's partition: data sources placed
	// on it and gene vectors in its R*-tree.
	Sources int
	Vectors int
	// Queries and Mutations count the operations the shard has served.
	Queries   uint64
	Mutations uint64
	// IOCost and IOHits aggregate the per-query simulated page accesses
	// and buffer absorptions charged against this shard's index.
	IOCost uint64
	IOHits uint64
	// CacheEntries, CacheHits and CacheMisses aggregate the shard's
	// edge-probability caches across estimator configurations.
	CacheEntries int
	CacheHits    uint64
	CacheMisses  uint64
}

// Snapshot reports the per-shard counters, one entry per shard in shard
// order. Counters are read atomically but not as one cross-shard
// transaction; concurrent queries may land between entries.
func (c *Coordinator) Snapshot() []ShardInfo {
	out := make([]ShardInfo, len(c.shards))
	for i, s := range c.shards {
		s.mu.RLock()
		sources := s.idx.DB().Len()
		vectors := s.idx.Stats().Vectors
		s.mu.RUnlock()
		info := ShardInfo{
			Shard:     i,
			Sources:   sources,
			Vectors:   vectors,
			Queries:   s.queries.Load(),
			Mutations: s.mutations.Load(),
			IOCost:    s.ioCost.Load(),
			IOHits:    s.ioHits.Load(),
		}
		s.cacheMu.Lock()
		for _, cache := range s.caches {
			info.CacheEntries += cache.Len()
			cs := cache.Stats()
			info.CacheHits += cs.Hits
			info.CacheMisses += cs.Misses
		}
		s.cacheMu.Unlock()
		out[i] = info
	}
	return out
}
