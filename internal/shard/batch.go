package shard

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/exec"
	"github.com/imgrn/imgrn/internal/obs"
	"github.com/imgrn/imgrn/internal/randgen"
)

// Sharded batch execution (DESIGN.md §14).
//
// P = 1 delegates the whole batch to the single shard's core.QueryBatch —
// one prologue, shared γ-group traversals, refinement in item order
// against the shard's caches: byte-identical to running the items
// sequentially through the unsharded engine.
//
// P > 1 runs ONE scatter for the whole batch instead of one per query:
// plans resolve once per distinct request group, every matrix item's
// query graph is inferred once at the caller's base seed (inference reads
// only the matrix, never the shards), and each shard receives the full
// batch as pre-inferred graph items with its per-shard params rewrite
// (derived seed, cache handle, per-item top-k sink). Each shard then runs
// its own core.QueryBatch — so the per-shard prologue, traversal sharing
// and permutation sharing all happen once per shard per batch, not once
// per shard per query. A per-item countdown merges each item as its last
// shard completes it, so results stream out as individual queries finish
// (possibly out of item order; the server serializes frames).
//
// Items with K > 0 refine against a per-item shared core.TopKSink: all
// shards of one item raise one floor, keeping the cross-shard
// Markov-bound early termination of QueryTopKContext per batch item.

// QueryBatch answers a batch of queries scatter-gather. It returns one
// result per item in item order; opts.OnResult streams each item as its
// merge completes. Item errors are per item — a failed item never fails
// its siblings — and the batch-level counters aggregate across shards.
func (c *Coordinator) QueryBatch(ctx context.Context, items []core.BatchItem, opts core.BatchOptions) ([]core.BatchResult, core.BatchStats) {
	if len(c.shards) == 1 {
		return c.queryBatchOne(ctx, items, opts)
	}
	return c.queryBatchScatter(ctx, items, opts)
}

// queryBatchOne is the P=1 fast path: the whole batch runs on the single
// shard with the caller's params plus the shard's cache handles.
func (c *Coordinator) queryBatchOne(ctx context.Context, items []core.BatchItem, opts core.BatchOptions) ([]core.BatchResult, core.BatchStats) {
	s := c.shards[0]
	// Resolve plans before cache selection: the cache key includes the
	// sample count, which an (Eps, Delta) accuracy request rewrites.
	// QueryBatch re-runs the (idempotent) resolution and re-derives the
	// same per-item errors for the items skipped here.
	errs := core.ResolveBatchPlans(items)
	for i := range items {
		if errs[i] == nil {
			items[i].Params.Cache = s.cacheFor(items[i].Params)
		}
	}
	s.mu.RLock()
	results, bst := core.QueryBatch(ctx, s.idx, items, opts)
	s.mu.RUnlock()
	for _, r := range results {
		if r.Err == nil {
			s.recordQuery(r.Stats)
		}
	}
	return results, bst
}

// queryBatchScatter is the P>1 path: one scatter for the whole batch.
func (c *Coordinator) queryBatchScatter(ctx context.Context, items []core.BatchItem, opts core.BatchOptions) ([]core.BatchResult, core.BatchStats) {
	nShards := len(c.shards)
	results := make([]core.BatchResult, len(items))
	bst := core.BatchStats{Queries: len(items)}
	var bstMu sync.Mutex

	// Streaming is concurrent across items here (the last shard of an
	// item fires its merge); serialize the caller's callback.
	var emitMu sync.Mutex
	finish := func(i int, res core.BatchResult) {
		results[i] = res
		if res.Err != nil {
			bstMu.Lock()
			bst.Errors++
			bstMu.Unlock()
		}
		if opts.OnResult != nil {
			emitMu.Lock()
			opts.OnResult(i, res)
			emitMu.Unlock()
		}
	}

	// Shared prologue: plan resolution once per distinct request group,
	// then one inference per matrix item at the caller's base seed so the
	// scattered graph — like the solo scatter's — is independent of P.
	start := time.Now()
	planErrs := core.ResolveBatchPlans(items)
	type liveItem struct {
		orig int // index into items/results
		base core.Stats
		sink *core.TopKSink
	}
	var live []liveItem
	for i := range items {
		if planErrs[i] != nil {
			finish(i, core.BatchResult{Err: planErrs[i]})
			continue
		}
		it := liveItem{orig: i}
		if items[i].Graph == nil {
			if items[i].Matrix == nil {
				finish(i, core.BatchResult{Err: core.ErrNoBatchQuery})
				continue
			}
			ictx, cancel := ctx, context.CancelFunc(func() {})
			if opts.ItemTimeout > 0 {
				ictx, cancel = context.WithTimeout(ctx, opts.ItemTimeout)
			}
			q, ist, err := c.inferOnce(ictx, items[i].Matrix, items[i].Params)
			cancel()
			if err != nil {
				finish(i, core.BatchResult{Err: err})
				continue
			}
			items[i].Graph = q
			it.base = ist
		} else {
			it.base.QueryVertices = items[i].Graph.NumVertices()
			it.base.QueryEdges = items[i].Graph.NumEdges()
		}
		it.base.Plan = items[i].Params.Plan
		if items[i].K > 0 {
			it.sink = core.NewTopKSink(items[i].K, items[i].Params.Alpha)
		}
		live = append(live, it)
	}
	if len(live) == 0 {
		return results, bst
	}

	// One scatter: each shard runs the whole surviving batch as graph
	// items under its read lock. Per-item countdown latches fire the
	// cross-shard merge the moment an item's last shard retires it.
	shardResults := make([][]core.BatchResult, nShards)
	for s := range shardResults {
		shardResults[s] = make([]core.BatchResult, len(live))
	}
	remaining := make([]atomic.Int32, len(live))
	for p := range remaining {
		remaining[p].Store(int32(nShards))
	}
	mergeItem := func(pos int) {
		li := live[pos]
		st := li.base
		var runs [][]core.Answer
		perShard := make([]core.Stats, 0, nShards)
		for s := 0; s < nShards; s++ {
			r := shardResults[s][pos]
			if r.Err != nil {
				finish(li.orig, core.BatchResult{Err: fmt.Errorf("shard %d: %w", s, r.Err)})
				return
			}
			runs = append(runs, r.Answers)
			perShard = append(perShard, r.Stats)
		}
		mergeScatterStats(&st, perShard)
		st.Plan = li.base.Plan
		mStart := time.Now()
		var merged []core.Answer
		if li.sink != nil {
			merged = li.sink.Results()
		} else {
			merged = core.MergeAnswerRuns(runs)
		}
		produced := st.Answers
		st.Answers = len(merged)
		p := items[li.orig].Params
		p.Trace.Record(obs.StageMerge, mStart, time.Since(mStart), produced, len(merged))
		p.Trace.Record(obs.StageScatter, start, time.Since(start), nShards, produced)
		st.Total = time.Since(start)
		finish(li.orig, core.BatchResult{Answers: merged, Stats: st})
	}

	ec := exec.New(ctx, nil, c.opts.Workers).WithArena(exec.GrabArena())
	defer ec.Close()
	err := ec.ForEach(nShards, func(s int) error {
		sh := c.shards[s]
		shardItems := make([]core.BatchItem, len(live))
		for pos, li := range live {
			sp := items[li.orig].Params
			sp.Seed = randgen.SeedFrom(sp.Seed, uint64(s))
			sp.Sink = li.sink
			sp.Cache = sh.cacheFor(sp)
			// The plan traveled with the params; K stays 0 at shard level
			// (the shared sink owns the trim).
			shardItems[pos] = core.BatchItem{Graph: items[li.orig].Graph, Params: sp}
		}
		shardOpts := core.BatchOptions{
			SharedPerms: opts.SharedPerms,
			ItemTimeout: opts.ItemTimeout,
			OnResult: func(pos int, res core.BatchResult) {
				shardResults[s][pos] = res
				if res.Err == nil {
					sh.recordQuery(res.Stats)
				}
				if remaining[pos].Add(-1) == 0 {
					mergeItem(pos)
				}
			},
		}
		sh.mu.RLock()
		_, sbst := core.QueryBatch(ctx, sh.idx, shardItems, shardOpts)
		sh.mu.RUnlock()
		bstMu.Lock()
		bst.Groups += sbst.Groups
		bst.PermFills += sbst.PermFills
		bst.PermProbes += sbst.PermProbes
		bstMu.Unlock()
		return nil
	})
	// A cancelled scatter context can keep some shard closures from ever
	// running; their items' countdowns never fire. Fail those items
	// explicitly (all merges that will happen have happened: ForEach is a
	// barrier and mergeItem runs synchronously inside the closures).
	for pos := range live {
		if remaining[pos].Load() > 0 {
			e := err
			if e == nil {
				e = ctx.Err()
			}
			if e == nil {
				e = context.Canceled
			}
			finish(live[pos].orig, core.BatchResult{Err: e})
		}
	}
	return results, bst
}
