package shard

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/synth"
)

// Durable-store crash tests are white-box: they use the unexported
// crash() seam (close file handles, flush nothing, commit nothing) to
// simulate kill -9, then mangle the data directory the way a real crash
// would — torn WAL tails, uncommitted snapshot generations, stray temp
// files — and assert the recovery protocol restores exactly the
// acknowledged state.

var durOpts = index.Options{D: 2, Samples: 16, Seed: 7, Bits: 256, BufferPages: 64}

// durDataset generates n small matrices; the first built go into the
// initial build, the rest arrive as online mutations.
func durDataset(t *testing.T, n int) *synth.Dataset {
	t.Helper()
	ds, err := synth.GenerateDatabase(synth.DBParams{
		N: n, NMin: 8, NMax: 12, LMin: 10, LMax: 14, Seed: 11, Dist: synth.Gaussian,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// splitDataset returns a database holding the first n sources and the
// remaining matrices as a mutation stream.
func splitDataset(t *testing.T, ds *synth.Dataset, n int) (*gene.Database, []*gene.Matrix) {
	t.Helper()
	db := gene.NewDatabase()
	for i := 0; i < n; i++ {
		if err := db.Add(ds.DB.Matrix(i)); err != nil {
			t.Fatal(err)
		}
	}
	return db, ds.DB.Matrices()[n:]
}

func openTestStore(t *testing.T, db *gene.Database, p int, dir string) *Store {
	t.Helper()
	st, err := OpenDurable(db, Options{NumShards: p, Index: durOpts},
		DurableOptions{Dir: dir, DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// durFingerprint renders a query result for exact equality comparison
// across a crash/reopen boundary.
func durFingerprint(t *testing.T, c *Coordinator, ds *synth.Dataset) string {
	t.Helper()
	params := core.Params{Gamma: 0.5, Alpha: 0.4, Seed: 9, Analytic: true}
	rng := randgen.New(321)
	var sb strings.Builder
	for i := 0; i < 3; i++ {
		mq, _, err := ds.ExtractQuery(rng, 4)
		if err != nil {
			t.Fatal(err)
		}
		answers, _, err := c.QueryContext(context.Background(), mq, params)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range answers {
			fmt.Fprintf(&sb, "q%d src=%d prob=%.17g edges=%d\n", i, a.Source, a.Prob, len(a.Edges))
		}
	}
	return sb.String()
}

func sources(c *Coordinator) map[int]bool {
	got := make(map[int]bool)
	for _, m := range c.Database().Matrices() {
		got[m.Source] = true
	}
	return got
}

// TestDurableCleanShutdownWarmBoot: Close checkpoints, so a reopen warm
// boots with zero WAL replay, zero re-embeddings, and byte-identical
// query answers.
func TestDurableCleanShutdownWarmBoot(t *testing.T) {
	ds := durDataset(t, 12)
	db, muts := splitDataset(t, ds, 10)
	dir := t.TempDir()

	st := openTestStore(t, db, 2, dir)
	if stats := st.DurableStats(); stats.WarmBoot || stats.Gen != 1 {
		t.Fatalf("cold boot stats = %+v, want gen 1 cold", stats)
	}
	for _, m := range muts {
		if err := st.AddMatrix(m); err != nil {
			t.Fatal(err)
		}
	}
	want := durFingerprint(t, st.Coordinator, ds)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	before := index.EmbedCalls()
	st2 := openTestStore(t, nil, 2, dir)
	defer st2.Close()
	embedded := index.EmbedCalls() - before
	stats := st2.DurableStats()
	if !stats.WarmBoot {
		t.Fatal("expected warm boot")
	}
	if stats.ReplayedRecords != 0 {
		t.Fatalf("clean shutdown replayed %d records, want 0", stats.ReplayedRecords)
	}
	if embedded != 0 {
		t.Fatalf("warm boot after clean shutdown embedded %d matrices, want 0", embedded)
	}
	if got := durFingerprint(t, st2.Coordinator, ds); got != want {
		t.Errorf("answers diverged across clean restart:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestDurableCrashRecoversAckedMutations: kill -9 after a mutation storm
// (adds and a remove, all acknowledged, no checkpoint) must lose
// nothing; the warm boot re-embeds only the WAL-replayed adds.
func TestDurableCrashRecoversAckedMutations(t *testing.T) {
	ds := durDataset(t, 14)
	db, muts := splitDataset(t, ds, 10)
	dir := t.TempDir()

	st := openTestStore(t, db, 3, dir)
	for _, m := range muts {
		if err := st.AddMatrix(m); err != nil {
			t.Fatal(err)
		}
	}
	removed := ds.DB.Matrix(2).Source
	if err := st.RemoveMatrix(removed); err != nil {
		t.Fatal(err)
	}
	wantSources := sources(st.Coordinator)
	want := durFingerprint(t, st.Coordinator, ds)
	st.crash()

	before := index.EmbedCalls()
	st2 := openTestStore(t, nil, 3, dir)
	defer st2.Close()
	embedded := index.EmbedCalls() - before
	stats := st2.DurableStats()
	if !stats.WarmBoot {
		t.Fatal("expected warm boot")
	}
	if wantRecs := len(muts) + 1; stats.ReplayedRecords != wantRecs {
		t.Fatalf("replayed %d records, want %d", stats.ReplayedRecords, wantRecs)
	}
	if stats.ReplayedAdds != len(muts) {
		t.Fatalf("replayed %d adds, want %d", stats.ReplayedAdds, len(muts))
	}
	if embedded != uint64(len(muts)) {
		t.Fatalf("warm boot embedded %d matrices, want only the %d replayed adds", embedded, len(muts))
	}
	gotSources := sources(st2.Coordinator)
	if len(gotSources) != len(wantSources) {
		t.Fatalf("recovered %d sources, want %d", len(gotSources), len(wantSources))
	}
	for s := range wantSources {
		if !gotSources[s] {
			t.Errorf("acked source %d lost in crash", s)
		}
	}
	if gotSources[removed] {
		t.Errorf("acked removal of source %d lost in crash", removed)
	}
	if got := durFingerprint(t, st2.Coordinator, ds); got != want {
		t.Errorf("answers diverged across crash:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestDurableTornWALEveryOffset is the store-level kill-mid-append
// property test: a P=1 store's WAL is truncated at EVERY byte offset —
// every possible torn tail a crash mid-write can leave — and each
// truncated state must reopen with exactly the complete-frame prefix of
// mutations (the acknowledged ones) and nothing else.
func TestDurableTornWALEveryOffset(t *testing.T) {
	ds := durDataset(t, 9)
	db, muts := splitDataset(t, ds, 6)
	base := t.TempDir()
	dir := filepath.Join(base, "store")

	baseLen := db.Len() // Build adopts db as the global view, so it grows with the store
	st := openTestStore(t, db, 1, dir)
	// Record WAL size after each acked mutation: the frame boundaries.
	var boundaries []int64
	for _, m := range muts {
		if err := st.AddMatrix(m); err != nil {
			t.Fatal(err)
		}
		boundaries = append(boundaries, st.wals[0].Size())
	}
	walFile := st.wals[0].Path()
	st.crash()
	full, err := os.ReadFile(walFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(boundaries) == 0 || boundaries[len(boundaries)-1] != int64(len(full)) {
		t.Fatalf("boundary bookkeeping off: %v vs %d bytes", boundaries, len(full))
	}
	snapData, err := os.ReadFile(filepath.Join(dir, "shard-000", "snap-00000001.snap"))
	if err != nil {
		t.Fatal(err)
	}
	manData, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}

	ackedAt := func(n int64) int {
		k := 0
		for _, b := range boundaries {
			if b <= n {
				k++
			}
		}
		return k
	}

	for n := int64(0); n <= int64(len(full)); n++ {
		// Rebuild the post-crash directory with the WAL torn at offset n.
		tdir := filepath.Join(base, fmt.Sprintf("torn-%04d", n))
		shardDir := filepath.Join(tdir, "shard-000")
		if err := os.MkdirAll(shardDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(tdir, "MANIFEST"), manData, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(shardDir, "snap-00000001.snap"), snapData, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(shardDir, "wal-00000001.log"), full[:n], 0o644); err != nil {
			t.Fatal(err)
		}

		st2 := openTestStore(t, nil, 1, tdir)
		acked := ackedAt(n)
		stats := st2.DurableStats()
		if stats.ReplayedRecords != acked {
			t.Fatalf("offset %d: replayed %d mutations, want %d", n, stats.ReplayedRecords, acked)
		}
		if wantTorn := n - func() int64 {
			var v int64
			for _, b := range boundaries {
				if b <= n {
					v = b
				}
			}
			return v
		}(); stats.TornBytes != wantTorn {
			t.Fatalf("offset %d: torn bytes = %d, want %d", n, stats.TornBytes, wantTorn)
		}
		if got, want := st2.Database().Len(), baseLen+acked; got != want {
			t.Fatalf("offset %d: recovered %d sources, want %d", n, got, want)
		}
		// The first unacked mutation must be absent, all acked present.
		for i, m := range muts {
			if _, ok := st2.Placement(m.Source); ok != (i < acked) {
				t.Fatalf("offset %d: source %d placed=%v, want %v", n, m.Source, ok, i < acked)
			}
		}
		// The store must accept new mutations after recovery (torn tail
		// truncated, segment appendable).
		if acked < len(muts) {
			if err := st2.AddMatrix(muts[acked]); err != nil {
				t.Fatalf("offset %d: add after recovery: %v", n, err)
			}
		}
		st2.crash()
		os.RemoveAll(tdir)
	}
}

// TestDurableInterruptedCheckpoint walks the directory states a crash
// can leave at each phase of a checkpoint and asserts recovery lands on
// the committed generation every time.
func TestDurableInterruptedCheckpoint(t *testing.T) {
	ds := durDataset(t, 10)
	db, muts := splitDataset(t, ds, 8)
	dir := t.TempDir()
	st := openTestStore(t, db, 2, dir)
	for _, m := range muts {
		if err := st.AddMatrix(m); err != nil {
			t.Fatal(err)
		}
	}
	want := durFingerprint(t, st.Coordinator, ds)
	wantSources := sources(st.Coordinator)
	st.crash()

	shard0 := filepath.Join(dir, "shard-000")
	snap1, err := os.ReadFile(filepath.Join(shard0, "snap-00000001.snap"))
	if err != nil {
		t.Fatal(err)
	}

	// Phase-1 crash: a temp snapshot mid-write and a complete-but-
	// uncommitted gen-2 snapshot exist; MANIFEST still names gen 1.
	// Recovery must delete both and replay gen 1 + WAL.
	if err := os.WriteFile(filepath.Join(shard0, "snap-00000002.snap.tmp"), snap1[:len(snap1)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(shard0, "snap-00000002.snap"), snap1, 0o644); err != nil {
		t.Fatal(err)
	}
	st2 := openTestStore(t, nil, 2, dir)
	if got := durFingerprint(t, st2.Coordinator, ds); got != want {
		t.Errorf("recovery over uncommitted checkpoint diverged:\n got:\n%s\nwant:\n%s", got, want)
	}
	for _, stray := range []string{"snap-00000002.snap.tmp", "snap-00000002.snap"} {
		if _, err := os.Stat(filepath.Join(shard0, stray)); !os.IsNotExist(err) {
			t.Errorf("uncommitted %s survived recovery", stray)
		}
	}

	// Phase-3 crash: commit a real checkpoint (now gen N), then plant a
	// stale previous-generation snapshot+wal as if cleanup never ran.
	if err := st2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	gen := st2.Gen()
	st2.crash()
	staleSnap := filepath.Join(shard0, fmt.Sprintf("snap-%08d.snap", gen-1))
	staleWAL := filepath.Join(shard0, fmt.Sprintf("wal-%08d.log", gen-1))
	if err := os.WriteFile(staleSnap, snap1, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(staleWAL, []byte("garbage that must never be replayed"), 0o644); err != nil {
		t.Fatal(err)
	}
	st3 := openTestStore(t, nil, 2, dir)
	defer st3.Close()
	stats := st3.DurableStats()
	if stats.Gen != gen || stats.ReplayedRecords != 0 {
		t.Fatalf("post-checkpoint recovery stats = %+v, want gen %d, no replay", stats, gen)
	}
	for _, stale := range []string{staleSnap, staleWAL} {
		if _, err := os.Stat(stale); !os.IsNotExist(err) {
			t.Errorf("stale generation file %s survived recovery", stale)
		}
	}
	gotSources := sources(st3.Coordinator)
	if len(gotSources) != len(wantSources) {
		t.Fatalf("recovered %d sources, want %d", len(gotSources), len(wantSources))
	}
	if got := durFingerprint(t, st3.Coordinator, ds); got != want {
		t.Errorf("answers diverged after checkpoint+stale-file recovery:\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestDurableCheckpointRotation: an explicit checkpoint bumps the
// generation, empties the live WAL, and deletes the superseded files.
func TestDurableCheckpointRotation(t *testing.T) {
	ds := durDataset(t, 10)
	db, muts := splitDataset(t, ds, 8)
	dir := t.TempDir()
	st := openTestStore(t, db, 2, dir)
	defer st.Close()
	for _, m := range muts {
		if err := st.AddMatrix(m); err != nil {
			t.Fatal(err)
		}
	}
	if st.DurableStats().WALSegmentBytes == 0 {
		t.Fatal("mutations produced no WAL bytes")
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	stats := st.DurableStats()
	if stats.Gen != 2 || stats.Checkpoints != 2 { // cold boot = checkpoint 1
		t.Fatalf("stats after checkpoint = %+v, want gen 2", stats)
	}
	if stats.WALSegmentBytes != 0 {
		t.Fatalf("live WAL holds %d bytes after checkpoint, want 0", stats.WALSegmentBytes)
	}
	for i := 0; i < 2; i++ {
		sd := shardDirPath(dir, i)
		if _, err := os.Stat(snapPath(sd, 1)); !os.IsNotExist(err) {
			t.Errorf("shard %d: superseded gen-1 snapshot not deleted", i)
		}
		if _, err := os.Stat(walPath(sd, 1)); !os.IsNotExist(err) {
			t.Errorf("shard %d: superseded gen-1 WAL not deleted", i)
		}
		if _, err := os.Stat(snapPath(sd, 2)); err != nil {
			t.Errorf("shard %d: gen-2 snapshot missing: %v", i, err)
		}
	}
}

// TestDurableCursorContinuity: round-robin placement must continue the
// same sequence across a crash — a store that crashed and recovered
// places future sources exactly like one that never did.
func TestDurableCursorContinuity(t *testing.T) {
	ds := durDataset(t, 16)
	db, muts := splitDataset(t, ds, 9)
	dirA := t.TempDir()
	dirB := t.TempDir()

	// Control: no crash.
	ctl := openTestStore(t, db, 3, dirA)
	defer ctl.Close()
	// Crashing store: crash mid-stream, recover, continue.
	db2, _ := splitDataset(t, ds, 9)
	cr := openTestStore(t, db2, 3, dirB)
	for i, m := range muts {
		if err := ctl.AddMatrix(m); err != nil {
			t.Fatal(err)
		}
		if i == 3 {
			cr.crash()
			cr = openTestStore(t, nil, 3, dirB)
		}
		if err := cr.AddMatrix(m); err != nil {
			t.Fatal(err)
		}
	}
	defer cr.Close()
	for _, m := range ds.DB.Matrices() {
		wantSh, ok1 := ctl.Placement(m.Source)
		gotSh, ok2 := cr.Placement(m.Source)
		if !ok1 || !ok2 || wantSh != gotSh {
			t.Errorf("source %d: crashed store placed on %d (ok=%v), control on %d (ok=%v)",
				m.Source, gotSh, ok2, wantSh, ok1)
		}
	}
}

// TestDurableColdBootGuards: refuse a directory that has shard data but
// no MANIFEST, and refuse a warm boot at the wrong shard count.
func TestDurableColdBootGuards(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "shard-000"), 0o755); err != nil {
		t.Fatal(err)
	}
	_, err := OpenDurable(gene.NewDatabase(), Options{NumShards: 1, Index: durOpts},
		DurableOptions{Dir: dir, DisableFsync: true})
	if err == nil || !strings.Contains(err.Error(), "MANIFEST") {
		t.Fatalf("cold boot over orphan shard dirs: err = %v, want MANIFEST refusal", err)
	}

	ds := durDataset(t, 6)
	dir2 := t.TempDir()
	st := openTestStore(t, ds.DB, 2, dir2)
	st.Close()
	_, err = OpenDurable(nil, Options{NumShards: 3, Index: durOpts},
		DurableOptions{Dir: dir2, DisableFsync: true})
	if err == nil || !strings.Contains(err.Error(), "reshard") {
		t.Fatalf("warm boot at wrong P: err = %v, want reshard refusal", err)
	}
	// NumShards <= 1 adopts the on-disk count.
	st2, err := OpenDurable(nil, Options{Index: durOpts}, DurableOptions{Dir: dir2, DisableFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.NumShards() != 2 {
		t.Errorf("adopted %d shards, want on-disk 2", st2.NumShards())
	}
}

// TestDurableRotationFailureLatchesReadOnly: a checkpoint that fails
// AFTER the manifest commit (phase 3) must latch the store read-only —
// the live segments belong to a generation recovery deletes, so acking
// further appends to them would silently lose acknowledged writes — and
// a reopen must recover every mutation acked before the failure.
func TestDurableRotationFailureLatchesReadOnly(t *testing.T) {
	ds := durDataset(t, 10)
	db, muts := splitDataset(t, ds, 8)
	dir := t.TempDir()
	st := openTestStore(t, db, 1, dir)
	for _, m := range muts {
		if err := st.AddMatrix(m); err != nil {
			t.Fatal(err)
		}
	}
	wantSources := sources(st.Coordinator)

	// Make phase 3 fail: plant a directory where the gen-2 segment goes.
	// Phases 1-2 (snapshots + manifest commit) succeed, then wal.Open
	// hits the directory and errors.
	blocker := walPath(shardDirPath(dir, 0), 2)
	if err := os.Mkdir(blocker, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err == nil {
		t.Fatal("checkpoint over a blocked segment path succeeded")
	}
	stats := st.DurableStats()
	if stats.CheckpointFailures == 0 || stats.LastCheckpointError == "" {
		t.Errorf("checkpoint failure not counted in stats: %+v", stats)
	}
	if stats.Gen != 2 {
		t.Errorf("stats.Gen = %d after committed-but-unrotated checkpoint, want 2", stats.Gen)
	}
	// Further mutations and checkpoint retries must be refused: gen 2 is
	// committed, so an append to the live gen-1 segment would be dropped
	// by recovery, and a retried rotation could unlink a live segment.
	if err := st.AddMatrix(ds.DB.Matrix(8)); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("mutation after failed rotation: err = %v, want read-only latch", err)
	}
	if err := st.Checkpoint(); err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("checkpoint retry after failed rotation: err = %v, want read-only latch", err)
	}
	st.crash()

	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	st2 := openTestStore(t, nil, 1, dir)
	defer st2.Close()
	if got := st2.Gen(); got != 2 {
		t.Errorf("recovered generation = %d, want committed 2", got)
	}
	gotSources := sources(st2.Coordinator)
	if len(gotSources) != len(wantSources) {
		t.Errorf("recovered %d sources, want %d", len(gotSources), len(wantSources))
	}
	for s := range wantSources {
		if !gotSources[s] {
			t.Errorf("acked source %d lost across failed rotation + reopen", s)
		}
	}
}

// TestDurableSizeTriggeredCheckpointFailureKeepsMutationAcked: a
// mutation whose append trips CheckpointBytes is applied, logged and
// fsynced before the checkpoint runs, so a pre-commit checkpoint failure
// must surface via stats — not as the mutation's result, which a client
// would retry into ErrSourceExists.
func TestDurableSizeTriggeredCheckpointFailureKeepsMutationAcked(t *testing.T) {
	ds := durDataset(t, 10)
	db, muts := splitDataset(t, ds, 8)
	dir := t.TempDir()
	st, err := OpenDurable(db, Options{NumShards: 1, Index: durOpts},
		DurableOptions{Dir: dir, DisableFsync: true, CheckpointBytes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Make the NEXT checkpoint fail in phase 1 (before the commit point):
	// a directory squats on the gen-2 snapshot's temp path.
	blocker := snapPath(shardDirPath(dir, 0), 2) + ".tmp"
	if err := os.Mkdir(blocker, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, m := range muts[:2] {
		if err := st.AddMatrix(m); err != nil {
			t.Fatalf("mutation %d failed because its size-triggered checkpoint failed: %v", i, err)
		}
	}
	stats := st.DurableStats()
	if stats.CheckpointFailures != 2 {
		t.Errorf("CheckpointFailures = %d, want 2", stats.CheckpointFailures)
	}
	if stats.Gen != 1 {
		t.Errorf("gen = %d after pre-commit checkpoint failures, want 1", stats.Gen)
	}
	// Pre-commit failures do not latch: once the obstruction clears, the
	// same store checkpoints fine.
	if err := os.Remove(blocker); err != nil {
		t.Fatal(err)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after clearing obstruction: %v", err)
	}
	st.crash()

	st2 := openTestStore(t, nil, 1, dir)
	defer st2.Close()
	for _, m := range muts[:2] {
		if _, ok := st2.Placement(m.Source); !ok {
			t.Errorf("acked source %d lost across checkpoint failures + reopen", m.Source)
		}
	}
}

// TestDurableOversizedMutationRejectedBeforeApply: a matrix whose WAL
// encoding exceeds wal.MaxRecord must be rejected as a client error
// before it is applied — not discovered at append time, which would
// latch the whole store read-only for one oversized request.
func TestDurableOversizedMutationRejectedBeforeApply(t *testing.T) {
	ds := durDataset(t, 7)
	db, muts := splitDataset(t, ds, 6)
	dir := t.TempDir()
	st := openTestStore(t, db, 2, dir)
	defer st.Close()

	// 8 columns x 1.05M samples x 8 bytes ≈ 67.2 MB of float64 payload,
	// just over the 64 MiB record cap.
	const nGenes, nSamples = 8, 1_050_000
	ids := make([]gene.ID, nGenes)
	cols := make([][]float64, nGenes)
	for j := range cols {
		ids[j] = gene.ID(j)
		col := make([]float64, nSamples)
		for i := range col {
			col[i] = float64((i + j) % 97)
		}
		cols[j] = col
	}
	big, err := gene.NewMatrix(9999, ids, cols)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AddMatrix(big); !errors.Is(err, ErrMutationTooLarge) {
		t.Fatalf("oversized AddMatrix err = %v, want ErrMutationTooLarge", err)
	}
	if _, ok := st.Placement(9999); ok {
		t.Error("oversized matrix was placed despite rejection")
	}
	if st.Database().BySource(9999) != nil {
		t.Error("oversized matrix reached the database despite rejection")
	}
	// The store is not latched: ordinary mutations still work.
	if err := st.AddMatrix(muts[0]); err != nil {
		t.Fatalf("mutation after oversized rejection: %v", err)
	}
}

// TestCursorRollbackOnFailedAdd: a failed AddMatrix must leave the
// round-robin cursor untouched so it keeps counting successful
// placements only — the invariant durable recovery reconstructs the
// cursor from (manifest cursor + replayed adds, which include no failed
// adds).
func TestCursorRollbackOnFailedAdd(t *testing.T) {
	ds := durDataset(t, 8)
	db, muts := splitDataset(t, ds, 6)
	coord, err := Build(db, Options{NumShards: 2, Index: durOpts})
	if err != nil {
		t.Fatal(err)
	}
	coord.mu.Lock()
	before := coord.cursor
	coord.mu.Unlock()

	// An empty matrix passes the coordinator's checks but is rejected by
	// index.AddMatrix — the rollback path.
	empty, err := gene.NewMatrix(7777, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.AddMatrix(empty); err == nil {
		t.Fatal("AddMatrix of an empty matrix succeeded")
	}
	coord.mu.Lock()
	after := coord.cursor
	coord.mu.Unlock()
	if after != before {
		t.Fatalf("cursor moved %d -> %d across a failed add", before, after)
	}
	if _, ok := coord.Placement(7777); ok {
		t.Error("failed add left a placement entry")
	}
	// Placement continues as if the failed add never happened.
	wantShard := after % coord.NumShards()
	if err := coord.AddMatrix(muts[0]); err != nil {
		t.Fatal(err)
	}
	if sh, _ := coord.Placement(muts[0].Source); sh != wantShard {
		t.Errorf("next add placed on shard %d, want %d", sh, wantShard)
	}
}

// TestMatchGenVariableWidth: generation parsing must accept the 9+ digit
// file names %08d emits once the generation passes 10^8 — a fixed-width
// parse would make cleanShardDir delete the committed generation's own
// files.
func TestMatchGenVariableWidth(t *testing.T) {
	cases := []struct {
		name string
		want uint64
		ok   bool
	}{
		{"snap-00000007.snap", 7, true},
		{"snap-99999999.snap", 99999999, true},
		{"snap-100000000.snap", 100000000, true},
		{"snap-123456789012.snap", 123456789012, true},
		{"snap-.snap", 0, false},
		{"snap-0000000x.snap", 0, false},
		{"snap-00000002.snap.tmp", 0, false},
		{"wal-00000002.log", 0, false}, // wrong prefix/suffix
	}
	for _, c := range cases {
		var g uint64
		ok := matchGen(c.name, "snap-", ".snap", &g)
		if ok != c.ok || (ok && g != c.want) {
			t.Errorf("matchGen(%q) = (%d, %v), want (%d, %v)", c.name, g, ok, c.want, c.ok)
		}
	}

	dir := t.TempDir()
	const gen = 100000000
	keepSnap := filepath.Join(dir, fmt.Sprintf("snap-%08d.snap", uint64(gen)))
	keepWAL := filepath.Join(dir, fmt.Sprintf("wal-%08d.log", uint64(gen)))
	stray := filepath.Join(dir, "snap-99999999.snap")
	for _, p := range []string{keepSnap, keepWAL, stray} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := cleanShardDir(dir, gen); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{keepSnap, keepWAL} {
		if _, err := os.Stat(p); err != nil {
			t.Errorf("committed-generation file %s deleted by cleanShardDir", filepath.Base(p))
		}
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Error("stale snap-99999999.snap survived cleanShardDir")
	}
}
