package core

import "sort"

// K-way answer merging (DESIGN.md §11.4).
//
// Each shard of the scatter-gather path returns its answers sorted by
// Source ascending (placement partitions the sources, but the merge does
// not rely on that: duplicates are kept in run order). The gather step
// used to append every run into one slice and re-sort it from scratch; a
// loser-tree merge does the same job in one O(total · log k) streaming
// pass, emitting answers in final order as soon as every run's head is
// known — which is what lets a downstream consumer (e.g. a top-k floor)
// observe answers incrementally instead of after the full sort.

// MergeScatterStats folds the per-shard stats of one scatter into the
// aggregate query stats. Counters and I/O sum; stage durations sum too,
// so like the Workers>1 refinement sub-stages they are aggregate
// across-shard time and may exceed the query's wall-clock Total. Shared
// by the in-process coordinator and the networked cluster coordinator so
// both report the same aggregate shape.
func MergeScatterStats(st *Stats, shards []Stats) {
	answers := 0
	for _, s := range shards {
		st.Traversal += s.Traversal
		st.Refinement += s.Refinement
		st.MarkovPrune += s.MarkovPrune
		st.MonteCarlo += s.MonteCarlo
		st.IOCost += s.IOCost
		st.IOHits += s.IOHits
		st.NodePairsVisited += s.NodePairsVisited
		st.NodePairsPruned += s.NodePairsPruned
		st.PointPairsChecked += s.PointPairsChecked
		st.PointPairsPruned += s.PointPairsPruned
		st.CandidateGenes += s.CandidateGenes
		st.CandidateMatrices += s.CandidateMatrices
		st.MatricesPrunedL5 += s.MatricesPrunedL5
		st.CacheHits += s.CacheHits
		st.CacheMisses += s.CacheMisses
		answers += s.Answers
	}
	// The merge may have trimmed (top-k): report what the shards produced;
	// the caller's answer slice is authoritative for the final count.
	st.Answers = answers
}

// RankAnswers orders answers by probability descending, ties toward
// smaller source IDs — the canonical top-k ranking, shared by the public
// facade and the sharded coordinator.
func RankAnswers(answers []Answer) {
	sort.SliceStable(answers, func(i, j int) bool {
		if answers[i].Prob != answers[j].Prob {
			return answers[i].Prob > answers[j].Prob
		}
		return answers[i].Source < answers[j].Source
	})
}

// MergeAnswerRuns merges runs — each already sorted by Source ascending —
// into a single Source-ascending slice. Answers with equal Source are
// emitted in run order (lower run index first), so the result is exactly
// what appending all runs and stable-sorting by Source would produce.
func MergeAnswerRuns(runs [][]Answer) []Answer {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	if total == 0 {
		return nil
	}
	out := make([]Answer, 0, total)
	MergeAnswerRunsFunc(runs, func(a Answer) bool {
		out = append(out, a)
		return true
	})
	return out
}

// MergeAnswerRunsFunc streams the merge of MergeAnswerRuns: yield receives
// the answers in merged order and may return false to stop early (e.g.
// once a top-k consumer's floor proves the tail irrelevant).
func MergeAnswerRunsFunc(runs [][]Answer, yield func(Answer) bool) {
	switch len(runs) {
	case 0:
		return
	case 1:
		for _, a := range runs[0] {
			if !yield(a) {
				return
			}
		}
		return
	}
	m := newAnswerMerger(runs)
	for {
		w := m.tree[0]
		if m.pos[w] >= len(m.runs[w]) {
			return // the overall winner is exhausted: all runs are drained
		}
		a := m.runs[w][m.pos[w]]
		m.pos[w]++
		if !yield(a) {
			return
		}
		m.replay(w)
	}
}

// answerMerger is a loser tree over k runs, laid out as an implicit
// complete binary tree of 2k slots: internal nodes 1..k-1 each hold the
// losing run of the match between their subtrees' winners, node 0 holds
// the overall winner, and leaf slot k+r stands for run r (the run's
// current head is runs[r][pos[r]]). Advancing the winner and replaying
// its leaf-to-root path costs O(log k) comparisons per emitted answer.
type answerMerger struct {
	runs [][]Answer
	pos  []int
	tree []int // [0] = winner run; [1..k-1] = loser runs
	k    int
}

func newAnswerMerger(runs [][]Answer) *answerMerger {
	k := len(runs)
	m := &answerMerger{runs: runs, pos: make([]int, k), tree: make([]int, k), k: k}
	m.tree[0] = m.build(1)
	return m
}

// build runs the initial tournament below node, storing losers and
// returning the subtree's winning run.
func (m *answerMerger) build(node int) int {
	if node >= m.k {
		return node - m.k // leaf slot → run index
	}
	l := m.build(2 * node)
	r := m.build(2*node + 1)
	if m.beats(l, r) {
		m.tree[node] = r
		return l
	}
	m.tree[node] = l
	return r
}

// replay re-runs the matches on run r's leaf-to-root path after its head
// advanced: at each node the current winner plays the stored loser, the
// loser of that match stays in the node, and the winner moves up.
func (m *answerMerger) replay(r int) {
	winner := r
	for node := (r + m.k) / 2; node >= 1; node /= 2 {
		if m.beats(m.tree[node], winner) {
			winner, m.tree[node] = m.tree[node], winner
		}
	}
	m.tree[0] = winner
}

// beats reports whether run a's head precedes run b's head in the merged
// order: smaller Source first, ties toward the lower run index (the
// stable append-order tie-break). An exhausted run loses to everything.
func (m *answerMerger) beats(a, b int) bool {
	if m.pos[a] >= len(m.runs[a]) || m.pos[b] >= len(m.runs[b]) {
		return m.pos[b] >= len(m.runs[b]) && m.pos[a] < len(m.runs[a])
	}
	x, y := &m.runs[a][m.pos[a]], &m.runs[b][m.pos[b]]
	if x.Source != y.Source {
		return x.Source < y.Source
	}
	return a < b
}
