package core_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/synth"
)

// extractMixedQueries pulls a mixed-width query workload (alternating 2-
// and 5-gene queries) from the dataset, the batch engine's target shape.
func extractMixedQueries(t *testing.T, ds *synth.Dataset, n int, seed uint64) []*gene.Matrix {
	t.Helper()
	rng := randgen.New(seed)
	out := make([]*gene.Matrix, n)
	for i := range out {
		nq := 2
		if i%2 == 1 {
			nq = 5
		}
		q, _, err := ds.ExtractQuery(rng, nq)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = q
	}
	return out
}

// assertBatchItemMatches compares one batch item's outcome against its
// solo-run reference: answers bit-for-bit, and every counter the shared
// traversal claims to preserve exactly. I/O counters are excluded by
// design — the shared descent touches each page once per group, so a
// member's I/O accounting differs from a solo run (see DESIGN.md §14).
func assertBatchItemMatches(t *testing.T, label string, ref []core.Answer, refSt core.Stats, got core.BatchResult) {
	t.Helper()
	if got.Err != nil {
		t.Fatalf("%s: batch item error: %v", label, got.Err)
	}
	if len(ref) != len(got.Answers) {
		t.Fatalf("%s: %d answers sequential vs %d batch", label, len(ref), len(got.Answers))
	}
	for i := range ref {
		if ref[i].Source != got.Answers[i].Source || ref[i].Prob != got.Answers[i].Prob {
			t.Fatalf("%s: answer %d differs: (%d, %v) vs (%d, %v)",
				label, i, ref[i].Source, ref[i].Prob, got.Answers[i].Source, got.Answers[i].Prob)
		}
		if len(ref[i].Edges) != len(got.Answers[i].Edges) {
			t.Fatalf("%s: answer %d edge count differs", label, i)
		}
		for j := range ref[i].Edges {
			if ref[i].Edges[j] != got.Answers[i].Edges[j] {
				t.Fatalf("%s: answer %d edge %d differs", label, i, j)
			}
		}
	}
	st := got.Stats
	if refSt.NodePairsVisited != st.NodePairsVisited || refSt.NodePairsPruned != st.NodePairsPruned ||
		refSt.PointPairsChecked != st.PointPairsChecked || refSt.PointPairsPruned != st.PointPairsPruned {
		t.Fatalf("%s: traversal counters differ:\nseq:   %+v\nbatch: %+v", label, refSt, st)
	}
	if refSt.CandidateMatrices != st.CandidateMatrices || refSt.CandidateGenes != st.CandidateGenes ||
		refSt.MatricesPrunedL5 != st.MatricesPrunedL5 || refSt.Answers != st.Answers ||
		refSt.CacheHits != st.CacheHits || refSt.CacheMisses != st.CacheMisses ||
		refSt.QueryVertices != st.QueryVertices || refSt.QueryEdges != st.QueryEdges {
		t.Fatalf("%s: refinement counters differ:\nseq:   %+v\nbatch: %+v", label, refSt, st)
	}
}

// TestBatchMatchesSequentialMC pins the headline determinism contract:
// a default-mode batch is byte-identical to running the same queries
// sequentially against the same engine (fresh per-query processors, one
// shared MC edge-probability cache), for the Monte Carlo kernel.
func TestBatchMatchesSequentialMC(t *testing.T) {
	ds, idx := buildConcFixture(t, 71)
	queries := extractMixedQueries(t, ds, 6, 91)

	mkItems := func(cache *core.EdgeProbCache) []core.BatchItem {
		items := make([]core.BatchItem, len(queries))
		for i, q := range queries {
			items[i] = core.BatchItem{Matrix: q, Params: core.Params{
				Gamma: 0.5, Alpha: 0.3, Samples: 32, Seed: 9, Cache: cache,
			}}
		}
		return items
	}

	// Sequential reference with its own (fresh) shared cache.
	seqCache := core.NewEdgeProbCache(1 << 12)
	seqItems := mkItems(seqCache)
	refAnswers := make([][]core.Answer, len(seqItems))
	refStats := make([]core.Stats, len(seqItems))
	for i, it := range seqItems {
		proc, err := core.NewProcessor(idx, it.Params)
		if err != nil {
			t.Fatal(err)
		}
		a, st, err := proc.Query(it.Matrix)
		if err != nil {
			t.Fatal(err)
		}
		refAnswers[i], refStats[i] = a, st
	}

	// Batch run with an equally fresh cache.
	batchItems := mkItems(core.NewEdgeProbCache(1 << 12))
	var streamed []int
	results, bst := core.QueryBatch(context.Background(), idx, batchItems, core.BatchOptions{
		OnResult: func(i int, _ core.BatchResult) { streamed = append(streamed, i) },
	})
	if bst.Queries != len(queries) || bst.Errors != 0 {
		t.Fatalf("batch stats: %+v", bst)
	}
	if bst.Groups < 1 {
		t.Fatalf("expected at least one shared traversal group, got %+v", bst)
	}
	for i := range results {
		assertBatchItemMatches(t, fmt.Sprintf("query %d", i), refAnswers[i], refStats[i], results[i])
	}
	// Core streams results in item order.
	for i, s := range streamed {
		if s != i {
			t.Fatalf("OnResult order = %v", streamed)
		}
	}
}

// TestBatchMatchesSequentialAnalytic is the same contract under the
// analytic kernel (no RNG at all).
func TestBatchMatchesSequentialAnalytic(t *testing.T) {
	ds, idx := buildConcFixture(t, 73)
	queries := extractMixedQueries(t, ds, 6, 93)
	params := core.Params{Gamma: 0.5, Alpha: 0.3, Seed: 5, Analytic: true}

	items := make([]core.BatchItem, len(queries))
	refAnswers := make([][]core.Answer, len(queries))
	refStats := make([]core.Stats, len(queries))
	for i, q := range queries {
		items[i] = core.BatchItem{Matrix: q, Params: params}
		proc, err := core.NewProcessor(idx, params)
		if err != nil {
			t.Fatal(err)
		}
		a, st, err := proc.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		refAnswers[i], refStats[i] = a, st
	}
	results, _ := core.QueryBatch(context.Background(), idx, items, core.BatchOptions{})
	for i := range results {
		assertBatchItemMatches(t, fmt.Sprintf("query %d", i), refAnswers[i], refStats[i], results[i])
	}
}

// TestBatchMixedGammasGroupSeparately: items with different γ cannot share
// a descent; they split into groups and each still matches its solo run.
func TestBatchMixedGammasGroupSeparately(t *testing.T) {
	ds, idx := buildConcFixture(t, 79)
	queries := extractMixedQueries(t, ds, 4, 95)
	gammas := []float64{0.4, 0.6, 0.4, 0.6}

	items := make([]core.BatchItem, len(queries))
	refAnswers := make([][]core.Answer, len(queries))
	refStats := make([]core.Stats, len(queries))
	for i, q := range queries {
		p := core.Params{Gamma: gammas[i], Alpha: 0.3, Samples: 24, Seed: 11}
		items[i] = core.BatchItem{Matrix: q, Params: p}
		proc, err := core.NewProcessor(idx, p)
		if err != nil {
			t.Fatal(err)
		}
		a, st, err := proc.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		refAnswers[i], refStats[i] = a, st
	}
	results, bst := core.QueryBatch(context.Background(), idx, items, core.BatchOptions{})
	if bst.Groups != 2 {
		t.Fatalf("groups = %d, want 2 (one per γ)", bst.Groups)
	}
	for i := range results {
		assertBatchItemMatches(t, fmt.Sprintf("query %d", i), refAnswers[i], refStats[i], results[i])
	}
}

// TestBatchSharedPermsDeterministic: the shared-permutation mode is
// deterministic and independent of batch composition — every item's
// answers are a pure function of (Seed, source, column), so the same item
// must produce identical answers in different batches and orders.
func TestBatchSharedPermsDeterministic(t *testing.T) {
	ds, idx := buildConcFixture(t, 83)
	queries := extractMixedQueries(t, ds, 4, 97)
	params := core.Params{Gamma: 0.5, Alpha: 0.3, Samples: 32, Seed: 13}

	run := func(order []int) map[int]core.BatchResult {
		items := make([]core.BatchItem, len(order))
		for pos, qi := range order {
			items[pos] = core.BatchItem{Matrix: queries[qi], Params: params}
		}
		results, bst := core.QueryBatch(context.Background(), idx, items, core.BatchOptions{SharedPerms: true})
		if bst.PermFills == 0 && bst.PermProbes > 0 {
			t.Fatalf("perm pool counters inconsistent: %+v", bst)
		}
		out := make(map[int]core.BatchResult, len(order))
		for pos, qi := range order {
			if results[pos].Err != nil {
				t.Fatal(results[pos].Err)
			}
			out[qi] = results[pos]
		}
		return out
	}

	full := run([]int{0, 1, 2, 3})
	rev := run([]int{3, 2, 1, 0})
	sub := run([]int{2, 0})
	for qi, res := range full {
		for name, other := range map[string]map[int]core.BatchResult{"reversed": rev, "subset": sub} {
			o, ok := other[qi]
			if !ok {
				continue
			}
			if len(res.Answers) != len(o.Answers) {
				t.Fatalf("query %d: %s batch changed answer count", qi, name)
			}
			for i := range res.Answers {
				if res.Answers[i].Source != o.Answers[i].Source || res.Answers[i].Prob != o.Answers[i].Prob {
					t.Fatalf("query %d: %s batch changed answer %d", qi, name, i)
				}
			}
		}
	}
}

// TestBatchSharedPermsAnalyticIdentity: under the analytic kernel
// SharedPerms must be a no-op — no RNG exists to share.
func TestBatchSharedPermsAnalyticIdentity(t *testing.T) {
	ds, idx := buildConcFixture(t, 89)
	queries := extractMixedQueries(t, ds, 3, 99)
	params := core.Params{Gamma: 0.5, Alpha: 0.3, Seed: 7, Analytic: true}
	mkItems := func() []core.BatchItem {
		items := make([]core.BatchItem, len(queries))
		for i, q := range queries {
			items[i] = core.BatchItem{Matrix: q, Params: params}
		}
		return items
	}
	plain, _ := core.QueryBatch(context.Background(), idx, mkItems(), core.BatchOptions{})
	shared, bst := core.QueryBatch(context.Background(), idx, mkItems(), core.BatchOptions{SharedPerms: true})
	if bst.PermFills != 0 || bst.PermProbes != 0 {
		t.Fatalf("analytic batch used the perm pool: %+v", bst)
	}
	for i := range plain {
		if len(plain[i].Answers) != len(shared[i].Answers) {
			t.Fatalf("query %d: answer count differs", i)
		}
		for j := range plain[i].Answers {
			a, b := plain[i].Answers[j], shared[i].Answers[j]
			if a.Source != b.Source || a.Prob != b.Prob {
				t.Fatalf("query %d answer %d differs", i, j)
			}
		}
	}
}

// TestBatchItemIsolation: a nil item and a K-trimmed item behave per-item
// without affecting siblings.
func TestBatchItemIsolation(t *testing.T) {
	ds, idx := buildConcFixture(t, 97)
	queries := extractMixedQueries(t, ds, 2, 101)
	params := core.Params{Gamma: 0.5, Alpha: 0.2, Seed: 5, Analytic: true}
	items := []core.BatchItem{
		{Matrix: queries[0], Params: params},
		{Params: params}, // no matrix, no graph
		{Matrix: queries[1], Params: params, K: 1},
	}
	results, bst := core.QueryBatch(context.Background(), idx, items, core.BatchOptions{})
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("sibling errors: %v / %v", results[0].Err, results[2].Err)
	}
	if results[1].Err == nil {
		t.Fatal("empty item did not error")
	}
	if bst.Errors != 1 {
		t.Fatalf("batch errors = %d, want 1", bst.Errors)
	}
	if len(results[2].Answers) > 1 {
		t.Fatalf("K=1 item returned %d answers", len(results[2].Answers))
	}
}

// TestBatchItemTimeout: an unreasonably small per-item budget fails items
// individually, not the batch.
func TestBatchItemTimeout(t *testing.T) {
	ds, idx := buildConcFixture(t, 101)
	queries := extractMixedQueries(t, ds, 2, 103)
	params := core.Params{Gamma: 0.5, Alpha: 0.3, Samples: 32, Seed: 5}
	items := []core.BatchItem{
		{Matrix: queries[0], Params: params},
		{Matrix: queries[1], Params: params},
	}
	results, _ := core.QueryBatch(context.Background(), idx, items, core.BatchOptions{
		ItemTimeout: time.Nanosecond,
	})
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("item %d: expected timeout error", i)
		}
	}
	// A generous budget succeeds.
	results, _ = core.QueryBatch(context.Background(), idx, items, core.BatchOptions{
		ItemTimeout: time.Minute,
	})
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
}
