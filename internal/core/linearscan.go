package core

import (
	"context"
	"sort"
	"time"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/pagestore"
)

// LinearScan is the index-free method of Section 4.1: it scans every
// matrix in the database, applies the Section-3.2 prunings (Lemma 3 edge
// inference pruning and Lemma 5 graph existence pruning) per matrix, and
// refines the survivors with exact Monte Carlo estimates. It is the middle
// ground between Baseline (no pruning, full materialization) and the
// indexed IM-GRN processor, and serves as the pruning ablation.
type LinearScan struct {
	db     *gene.Database
	acc    *pagestore.Accountant
	heap   map[int]pagestore.PageID
	params Params
	scorer *grn.RandomizedScorer
	an     grn.AnalyticScorer
	pruner *grn.Pruner
}

// NewLinearScan returns a linear-scan query engine over db.
func NewLinearScan(db *gene.Database, params Params) (*LinearScan, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	ls := &LinearScan{
		db:     db,
		acc:    pagestore.New(pagestore.DefaultPageSize, 0),
		heap:   make(map[int]pagestore.PageID, db.Len()),
		params: params,
		scorer: grn.NewRandomizedScorer(params.Seed^0x7f4a7c159e3779b9, params.Samples),
		an:     grn.AnalyticScorer{OneSided: params.OneSided},
		pruner: grn.NewPruner(params.Seed^0x3c6ef372fe94f82a, params.BoundSamples),
	}
	ls.scorer.OneSided = params.OneSided
	ls.pruner.OneSided = params.OneSided
	for _, m := range db.Matrices() {
		id, _ := ls.acc.Allocate(m.NumGenes() * m.Samples() * 8)
		ls.heap[m.Source] = id
	}
	ls.acc.ResetStats()
	return ls, nil
}

// Query answers an IM-GRN query by pruned linear scan.
func (ls *LinearScan) Query(mq *gene.Matrix) ([]Answer, Stats, error) {
	return ls.QueryContext(context.Background(), mq)
}

// QueryContext is Query under an explicit context; cancellation is honored
// between matrices of the scan. The RNG streams are shared across queries,
// so a LinearScan must not serve concurrent queries.
func (ls *LinearScan) QueryContext(ctx context.Context, mq *gene.Matrix) ([]Answer, Stats, error) {
	var st Stats
	start := time.Now()
	ls.acc.ResetStats()
	var q *grn.Graph
	var err error
	if ls.params.Analytic {
		q, err = grn.Infer(mq, ls.an, ls.params.Gamma)
	} else {
		q, _, err = grn.InferPruned(mq, ls.scorer, ls.pruner, ls.params.Gamma)
	}
	if err != nil {
		return nil, st, err
	}
	st.InferQuery = time.Since(start)
	st.QueryVertices = q.NumVertices()
	st.QueryEdges = q.NumEdges()
	answers, err := ls.queryWithGraph(ctx, q, &st)
	if err != nil {
		return nil, st, err
	}
	st.IOCost = ls.acc.Stats().Accesses
	st.Total = time.Since(start)
	st.Answers = len(answers)
	return answers, st, nil
}

// QueryGraph runs the linear scan for an already-inferred query GRN.
func (ls *LinearScan) QueryGraph(q *grn.Graph) ([]Answer, Stats, error) {
	return ls.QueryGraphContext(context.Background(), q)
}

// QueryGraphContext is QueryGraph under an explicit context.
func (ls *LinearScan) QueryGraphContext(ctx context.Context, q *grn.Graph) ([]Answer, Stats, error) {
	var st Stats
	start := time.Now()
	ls.acc.ResetStats()
	st.QueryVertices = q.NumVertices()
	st.QueryEdges = q.NumEdges()
	answers, err := ls.queryWithGraph(ctx, q, &st)
	if err != nil {
		return nil, st, err
	}
	st.IOCost = ls.acc.Stats().Accesses
	st.Total = time.Since(start)
	st.Answers = len(answers)
	return answers, st, nil
}

func (ls *LinearScan) queryWithGraph(ctx context.Context, q *grn.Graph, st *Stats) ([]Answer, error) {
	if hasDuplicateGenes(q) {
		return nil, nil // unique per-matrix labels make injective embedding impossible
	}
	tStart := time.Now()
	qEdges := q.Edges()
	gamma, alpha := ls.params.Gamma, ls.params.Alpha
	var answers []Answer

	sources := make([]int, 0, ls.db.Len())
	for _, m := range ls.db.Matrices() {
		sources = append(sources, m.Source)
	}
	sort.Ints(sources)
	candGenes := make(map[[2]int]bool)

	colBytes := func(m *gene.Matrix) int { return m.Samples() * 8 }
	for _, src := range sources {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m := ls.db.BySource(src)
		cols := make([]int, q.NumVertices())
		ok := true
		for v := 0; v < q.NumVertices(); v++ {
			c := m.IndexOf(q.Gene(v))
			if c < 0 {
				ok = false
				break
			}
			cols[v] = c
		}
		if !ok {
			continue
		}
		st.CandidateMatrices++
		for _, c := range cols {
			candGenes[[2]int{src, c}] = true
		}
		// Lemma 3 per edge, accumulating the Lemma 5 product bound.
		ub := 1.0
		pruned := false
		for _, e := range qEdges {
			a, b := cols[e.S], cols[e.T]
			ls.acc.ChargeBytes(ls.heap[src], 2*colBytes(m))
			if !m.Informative(a) || !m.Informative(b) {
				pruned = true
				break
			}
			eub := ls.pruner.UpperBound(m.StdCol(a), m.StdCol(b))
			if eub <= gamma { // Lemma 3: edge cannot exist
				pruned = true
				break
			}
			ub *= eub
			if grn.PruneByGraphExistence(ub, alpha) { // Lemma 5
				pruned = true
				break
			}
		}
		if pruned {
			st.MatricesPrunedL5++
			continue
		}
		// Refinement with exact estimates.
		prob := 1.0
		edges := make([]grn.Edge, 0, len(qEdges))
		matched := true
		for _, e := range qEdges {
			a, b := cols[e.S], cols[e.T]
			var ep float64
			if ls.params.Analytic {
				ep = ls.an.Score(m, a, b)
			} else {
				ep = ls.scorer.Score(m, a, b)
			}
			if ep <= gamma {
				matched = false
				break
			}
			prob *= ep
			if prob <= alpha {
				matched = false
				break
			}
			edges = append(edges, grn.Edge{S: e.S, T: e.T, P: ep})
		}
		if !matched {
			continue
		}
		genes := make([]gene.ID, q.NumVertices())
		copy(genes, q.Genes())
		answers = append(answers, Answer{Source: src, Prob: prob, Edges: edges, Genes: genes})
	}
	st.CandidateGenes = len(candGenes)
	st.Traversal = time.Since(tStart)
	return answers, nil
}
