package core

import (
	"testing"

	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/obs"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/synth"
)

// TestQueryRecordsTraceSpans runs one traced query end to end and checks
// the pipeline stages show up as spans with consistent in/out counts.
func TestQueryRecordsTraceSpans(t *testing.T) {
	ds, idx := buildFixture(t, 70)
	mq, _, err := ds.ExtractQuery(randgen.New(71), 4)
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer()
	proc, err := NewProcessor(idx, Params{Gamma: 0.5, Alpha: 0.3, Seed: 71, Analytic: true, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	answers, st, err := proc.Query(mq)
	if err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	byStage := make(map[obs.Stage]obs.Span, len(spans))
	for _, sp := range spans {
		if sp.Dur < 0 || sp.Begin < 0 {
			t.Errorf("span %v has negative timing: %+v", sp.Stage, sp)
		}
		byStage[sp.Stage] = sp
	}
	for _, want := range []obs.Stage{obs.StageInfer, obs.StageTraverse, obs.StageFilter,
		obs.StageMarkov, obs.StageMonteCarlo} {
		if _, ok := byStage[want]; !ok {
			t.Fatalf("traced query missing %v span (got %v)", want, spans)
		}
	}
	if sp := byStage[obs.StageInfer]; sp.Out != st.QueryEdges {
		t.Errorf("infer out = %d, QueryEdges = %d", sp.Out, st.QueryEdges)
	}
	if sp := byStage[obs.StageFilter]; sp.Out != st.CandidateMatrices {
		t.Errorf("filter out = %d, CandidateMatrices = %d", sp.Out, st.CandidateMatrices)
	}
	if sp := byStage[obs.StageMonteCarlo]; sp.Out != len(answers) {
		t.Errorf("monte_carlo out = %d, answers = %d", sp.Out, len(answers))
	}
	mk := byStage[obs.StageMarkov]
	if mk.Out != mk.In-st.MatricesPrunedL5 {
		t.Errorf("markov in=%d out=%d, MatricesPrunedL5=%d", mk.In, mk.Out, st.MatricesPrunedL5)
	}
}

// TestTracingDoesNotChangeAnswers checks the zero-observer property: a
// traced query returns byte-identical answers and counters to an
// untraced one.
func TestTracingDoesNotChangeAnswers(t *testing.T) {
	ds, idx := buildFixture(t, 72)
	mq, _, err := ds.ExtractQuery(randgen.New(73), 4)
	if err != nil {
		t.Fatal(err)
	}
	run := func(tr *obs.Tracer) ([]Answer, Stats) {
		proc, err := NewProcessor(idx, Params{Gamma: 0.4, Alpha: 0.3, Seed: 17, Samples: 64, Trace: tr})
		if err != nil {
			t.Fatal(err)
		}
		ans, st, err := proc.Query(mq)
		if err != nil {
			t.Fatal(err)
		}
		return ans, st
	}
	plain, pst := run(nil)
	traced, tst := run(obs.NewTracer())
	if len(plain) != len(traced) {
		t.Fatalf("answer counts differ: %d vs %d", len(plain), len(traced))
	}
	for i := range plain {
		if plain[i].Source != traced[i].Source || plain[i].Prob != traced[i].Prob {
			t.Errorf("answer %d differs under tracing", i)
		}
	}
	if pst.IOCost != tst.IOCost || pst.CandidateMatrices != tst.CandidateMatrices ||
		pst.MatricesPrunedL5 != tst.MatricesPrunedL5 {
		t.Errorf("counters differ under tracing: %+v vs %+v", pst, tst)
	}
}

// BenchmarkNoopTraceQuery measures the full query path with tracing
// disabled — compare against BenchmarkTracedQuery for the observability
// overhead on real queries (acceptance: < 2%).
func BenchmarkNoopTraceQuery(b *testing.B) {
	benchQuery(b, false)
}

func BenchmarkTracedQuery(b *testing.B) {
	benchQuery(b, true)
}

func benchQuery(b *testing.B, traced bool) {
	ds, err := synth.GenerateDatabase(synth.DBParams{
		N: 40, NMin: 8, NMax: 14, LMin: 10, LMax: 16,
		Dist: synth.Uniform, GenePool: 60, Seed: 74,
	})
	if err != nil {
		b.Fatal(err)
	}
	idx, err := index.Build(ds.DB, index.Options{D: 2, Samples: 32, Seed: 74})
	if err != nil {
		b.Fatal(err)
	}
	mq, _, err := ds.ExtractQuery(randgen.New(75), 4)
	if err != nil {
		b.Fatal(err)
	}
	p := Params{Gamma: 0.5, Alpha: 0.3, Seed: 75, Analytic: true}
	if traced {
		p.Trace = obs.NewTracer()
	}
	proc, err := NewProcessor(idx, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := proc.Query(mq); err != nil {
			b.Fatal(err)
		}
	}
}
