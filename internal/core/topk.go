package core

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// TopKSink is a bounded top-k answer merge shared by the concurrent
// producers of one sharded query (DESIGN.md §10). Each shard streams its
// verified answers into the sink; the sink keeps only the best k by
// (probability descending, source ascending) and publishes a monotone
// "floor" — the largest effective α under which no top-k answer can be
// lost. Refinement loops consult the floor to tighten their Lemma-5 and
// running-product cutoffs mid-query: once k answers with probability ≥ θ
// exist, any candidate whose upper bound falls below θ can never displace
// them, so a shard whose best remaining upper bound is under the floor
// terminates early (the cross-shard Markov-bound early-termination rule).
//
// The floor is the largest float64 strictly below the current k-th
// probability, so a candidate tied with the k-th answer still verifies
// (probability comparisons in refinement are strict, and ties break toward
// smaller source IDs in the final ranking). Safe for concurrent use.
type TopKSink struct {
	k     int
	alpha float64       // the query's base α; the floor never drops below it
	floor atomic.Uint64 // math.Float64bits of the current effective α

	mu      sync.Mutex
	answers []Answer // sorted by (Prob desc, Source asc), len <= k

	// onAccept, when set, observes every answer that enters the top-k set
	// at the moment of insertion (it may later be displaced). The networked
	// coordinator uses it to stream accepted answers to the remote merge so
	// the cross-shard floor can propagate mid-query. Called with the sink
	// lock held: the callback must not call back into the sink.
	onAccept func(Answer)
}

// NewTopKSink returns a sink keeping the best k answers, with the query's
// base α as the initial floor. k must be positive.
func NewTopKSink(k int, alpha float64) *TopKSink {
	s := &TopKSink{k: k, alpha: alpha}
	s.floor.Store(math.Float64bits(alpha))
	return s
}

// K returns the sink's capacity.
func (s *TopKSink) K() int { return s.k }

// Alpha returns the query's base α the sink was built with.
func (s *TopKSink) Alpha() float64 { return s.alpha }

// SetOnAccept installs the accepted-answer observer. Must be called
// before the sink is shared with producers; the callback runs with the
// sink lock held and must not call back into the sink.
func (s *TopKSink) SetOnAccept(fn func(Answer)) { s.onAccept = fn }

// RaiseFloor lifts the effective α to at least f. It is how a remote
// coordinator propagates the global cross-shard floor into a shard
// server's local sink: pruning against a floor above the local k-th
// probability is safe because any candidate it suppresses could not have
// entered the global top k either. Monotone — a floor below the current
// one (or below the base α) is a no-op.
func (s *TopKSink) RaiseFloor(f float64) {
	for {
		cur := s.floor.Load()
		if math.Float64frombits(cur) >= f {
			return
		}
		if s.floor.CompareAndSwap(cur, math.Float64bits(f)) {
			return
		}
	}
}

// Floor returns the current effective α: the base α until k answers have
// arrived, then the predecessor of the k-th probability. Monotone
// non-decreasing over the sink's lifetime.
func (s *TopKSink) Floor() float64 {
	return math.Float64frombits(s.floor.Load())
}

// Offer merges one answer into the top-k set, raising the floor when the
// set is full. Answers at or below the current floor are ignored (they
// cannot enter the top k).
func (s *TopKSink) Offer(a Answer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := sort.Search(len(s.answers), func(i int) bool {
		if s.answers[i].Prob != a.Prob {
			return s.answers[i].Prob < a.Prob
		}
		return s.answers[i].Source > a.Source
	})
	if i >= s.k {
		return
	}
	s.answers = append(s.answers, Answer{})
	copy(s.answers[i+1:], s.answers[i:])
	s.answers[i] = a
	if s.onAccept != nil {
		s.onAccept(a)
	}
	if len(s.answers) > s.k {
		s.answers = s.answers[:s.k]
	}
	if len(s.answers) == s.k {
		kth := s.answers[s.k-1].Prob
		// The largest α that still lets a kth-tied candidate pass the
		// strict prob > α refinement cutoffs.
		f := math.Nextafter(kth, 0)
		if f > s.alpha {
			s.floor.Store(math.Float64bits(f))
		}
	}
}

// Results returns the merged top-k answers, ranked by probability
// (ties toward smaller source IDs). The returned slice is a copy.
func (s *TopKSink) Results() []Answer {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Answer, len(s.answers))
	copy(out, s.answers)
	return out
}
