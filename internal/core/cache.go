package core

import (
	"sync"
	"sync/atomic"
)

// EdgeProbCache memoizes exact edge-probability estimates across queries.
// The Monte Carlo estimate of one gene pair is the expensive unit of
// refinement work, and popular query patterns (biomarkers, cluster
// representatives) revisit the same pairs; the cache makes repeated
// queries both faster and mutually consistent.
//
// A cache is only valid for one estimator configuration (seed, sample
// count, analytic/one-sided flags); the Engine keys caches by that
// configuration. Safe for concurrent use: the key space is lock-striped
// across shards so parallel refinement workers and concurrent queries do
// not contend on a single mutex, and hit/miss totals are kept in atomic
// counters.
type EdgeProbCache struct {
	shards []cacheShard
	mask   uint64
	hits   atomic.Uint64
	misses atomic.Uint64
}

// cacheShard owns one stripe of the key space. Entries are immutable and
// cheap to recompute, so a simple FIFO bound per shard is enough.
type cacheShard struct {
	mu       sync.Mutex
	capacity int
	m        map[edgeKey]float64
	fifo     []edgeKey
}

type edgeKey struct {
	source int
	a, b   int
}

// cacheShards is the stripe count for large caches; small caches collapse
// to one shard so the configured capacity bound stays exact.
const cacheShards = 16

// NewEdgeProbCache returns a cache bounded to capacity entries
// (65536 when capacity <= 0). Capacities below one page per stripe use a
// single shard.
func NewEdgeProbCache(capacity int) *EdgeProbCache {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	shards := cacheShards
	if capacity < 16*cacheShards {
		shards = 1
	}
	c := &EdgeProbCache{shards: make([]cacheShard, shards), mask: uint64(shards - 1)}
	per := (capacity + shards - 1) / shards
	for i := range c.shards {
		c.shards[i].capacity = per
		c.shards[i].m = make(map[edgeKey]float64)
	}
	return c
}

func canonicalKey(source, a, b int) edgeKey {
	if a > b {
		a, b = b, a
	}
	return edgeKey{source: source, a: a, b: b}
}

// shardOf routes a key to its stripe with a SplitMix64-style mix so
// consecutive column indices spread across shards.
func (c *EdgeProbCache) shardOf(k edgeKey) *cacheShard {
	z := uint64(k.source)*0x9e3779b97f4a7c15 ^ uint64(k.a)*0xbf58476d1ce4e5b9 ^ uint64(k.b)*0x94d049bb133111eb
	z ^= z >> 29
	z *= 0xff51afd7ed558ccd
	z ^= z >> 32
	return &c.shards[z&c.mask]
}

// Get returns the cached probability of edge (a, b) in the given source
// and records a hit or miss.
func (c *EdgeProbCache) Get(source, a, b int) (float64, bool) {
	k := canonicalKey(source, a, b)
	s := c.shardOf(k)
	s.mu.Lock()
	p, ok := s.m[k]
	s.mu.Unlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return p, ok
}

// Put stores the probability of edge (a, b), evicting the oldest entry of
// the key's shard when that shard is full.
func (c *EdgeProbCache) Put(source, a, b int, p float64) {
	k := canonicalKey(source, a, b)
	s := c.shardOf(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.m[k]; exists {
		s.m[k] = p
		return
	}
	if len(s.m) >= s.capacity {
		oldest := s.fifo[0]
		s.fifo = s.fifo[1:]
		delete(s.m, oldest)
	}
	s.m[k] = p
	s.fifo = append(s.fifo, k)
}

// InvalidateSource drops every cached probability of one data source,
// returning the number of entries removed. Mutations call this instead of
// discarding the whole cache: edge probabilities are keyed by
// (source, column, column), so adding or removing a matrix can only stale
// the entries of that one source — every other source's entries (and the
// cache's lifetime hit/miss counters) stay warm.
func (c *EdgeProbCache) InvalidateSource(source int) int {
	removed := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		kept := s.fifo[:0]
		for _, k := range s.fifo {
			if k.source == source {
				delete(s.m, k)
				removed++
			} else {
				kept = append(kept, k)
			}
		}
		s.fifo = kept
		s.mu.Unlock()
	}
	return removed
}

// Len returns the number of cached entries across all shards.
func (c *EdgeProbCache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// CacheStats aggregates cache effectiveness counters since creation.
type CacheStats struct {
	Hits   uint64
	Misses uint64
}

// Stats returns the lifetime hit/miss totals of the cache.
func (c *EdgeProbCache) Stats() CacheStats {
	return CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
}
