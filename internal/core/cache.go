package core

import "sync"

// EdgeProbCache memoizes exact edge-probability estimates across queries.
// The Monte Carlo estimate of one gene pair is the expensive unit of
// refinement work, and popular query patterns (biomarkers, cluster
// representatives) revisit the same pairs; the cache makes repeated
// queries both faster and mutually consistent.
//
// A cache is only valid for one estimator configuration (seed, sample
// count, analytic/one-sided flags); the Engine keys caches by that
// configuration. Safe for concurrent use.
type EdgeProbCache struct {
	mu       sync.Mutex
	capacity int
	m        map[edgeKey]float64
	// fifo holds insertion order for bounded eviction; a simple FIFO is
	// enough because entries are immutable and cheap to recompute.
	fifo []edgeKey
}

type edgeKey struct {
	source int
	a, b   int
}

// NewEdgeProbCache returns a cache bounded to capacity entries
// (65536 when capacity <= 0).
func NewEdgeProbCache(capacity int) *EdgeProbCache {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &EdgeProbCache{capacity: capacity, m: make(map[edgeKey]float64)}
}

func canonicalKey(source, a, b int) edgeKey {
	if a > b {
		a, b = b, a
	}
	return edgeKey{source: source, a: a, b: b}
}

// Get returns the cached probability of edge (a, b) in the given source.
func (c *EdgeProbCache) Get(source, a, b int) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.m[canonicalKey(source, a, b)]
	return p, ok
}

// Put stores the probability of edge (a, b), evicting the oldest entry
// when full.
func (c *EdgeProbCache) Put(source, a, b int, p float64) {
	key := canonicalKey(source, a, b)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.m[key]; exists {
		c.m[key] = p
		return
	}
	if len(c.m) >= c.capacity {
		oldest := c.fifo[0]
		c.fifo = c.fifo[1:]
		delete(c.m, oldest)
	}
	c.m[key] = p
	c.fifo = append(c.fifo, key)
}

// Len returns the number of cached entries.
func (c *EdgeProbCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
