package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/pagestore"
	"github.com/imgrn/imgrn/internal/subiso"
)

// Baseline is the Section-6.1 competitor: it offline pre-computes and
// stores the existence probabilities of all pairwise edges of every GRN
// (complete graphs, O(N·n_i²/2) floats), then answers a query by scanning
// every matrix's pre-computed data, materializing G_i w.r.t. the ad-hoc γ,
// and matching the query graph against it.
type Baseline struct {
	db  *gene.Database
	acc *pagestore.Accountant

	// probs[source] is the upper-triangular probability array of the
	// complete GRN: entry (s, t), s < t, at index s·n − s(s+1)/2 + (t−s−1).
	probs map[int][]float64
	pages map[int]pagestore.PageID
	n     map[int]int

	params Params
	scorer *grn.RandomizedScorer
	an     grn.AnalyticScorer

	buildTime time.Duration
	bytes     uint64
}

// BuildBaseline materializes every pairwise edge probability offline.
// With params.Analytic unset this is extremely expensive (full Monte Carlo
// per pair), exactly the cost the paper's approach avoids.
func BuildBaseline(db *gene.Database, params Params) (*Baseline, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	b := &Baseline{
		db:     db,
		acc:    pagestore.New(pagestore.DefaultPageSize, 0),
		probs:  make(map[int][]float64, db.Len()),
		pages:  make(map[int]pagestore.PageID, db.Len()),
		n:      make(map[int]int, db.Len()),
		params: params,
		scorer: grn.NewRandomizedScorer(params.Seed^0xdeadbeefcafef00d, params.Samples),
		an:     grn.AnalyticScorer{OneSided: params.OneSided},
	}
	b.scorer.OneSided = params.OneSided
	for _, m := range db.Matrices() {
		n := m.NumGenes()
		tri := make([]float64, n*(n-1)/2)
		k := 0
		for s := 0; s < n; s++ {
			for t := s + 1; t < n; t++ {
				if params.Analytic {
					tri[k] = b.an.Score(m, s, t)
				} else {
					tri[k] = b.scorer.Score(m, s, t)
				}
				k++
			}
		}
		b.probs[m.Source] = tri
		b.n[m.Source] = n
		id, _ := b.acc.Allocate(len(tri) * 8)
		b.pages[m.Source] = id
		b.bytes += uint64(len(tri) * 8)
	}
	b.buildTime = time.Since(start)
	b.acc.ResetStats()
	return b, nil
}

// BuildTime returns the offline materialization time.
func (b *Baseline) BuildTime() time.Duration { return b.buildTime }

// StorageBytes returns the size of the materialized probability data, the
// space cost the paper criticizes (17.94 GB at n_i = 300, N = 100K).
func (b *Baseline) StorageBytes() uint64 { return b.bytes }

func triIndex(n, s, t int) int {
	if s > t {
		s, t = t, s
	}
	return s*n - s*(s+1)/2 + (t - s - 1)
}

// Prob returns the materialized probability of edge (s, t) in the GRN of
// the given source.
func (b *Baseline) Prob(source, s, t int) (float64, error) {
	tri, ok := b.probs[source]
	if !ok {
		return 0, fmt.Errorf("core: baseline has no source %d", source)
	}
	if s == t {
		return 0, fmt.Errorf("core: baseline self-edge (%d,%d)", s, t)
	}
	return tri[triIndex(b.n[source], s, t)], nil
}

// Query answers an IM-GRN query by the baseline method: infer Q, then scan
// all pre-computed probability data (charged as page I/O), materialize each
// G_i w.r.t. γ and subgraph-match Q against it.
func (b *Baseline) Query(mq *gene.Matrix) ([]Answer, Stats, error) {
	return b.QueryContext(context.Background(), mq)
}

// QueryContext is Query under an explicit context; cancellation is honored
// between matrices of the scan. The RNG streams are shared across queries
// (as in the original offline design), so a Baseline must not serve
// concurrent queries.
func (b *Baseline) QueryContext(ctx context.Context, mq *gene.Matrix) ([]Answer, Stats, error) {
	var st Stats
	start := time.Now()
	b.acc.ResetStats()

	var q *grn.Graph
	var err error
	if b.params.Analytic {
		q, err = grn.Infer(mq, b.an, b.params.Gamma)
	} else {
		q, err = grn.Infer(mq, b.scorer, b.params.Gamma)
	}
	if err != nil {
		return nil, st, err
	}
	st.InferQuery = time.Since(start)
	st.QueryVertices = q.NumVertices()
	st.QueryEdges = q.NumEdges()

	answers, err := b.queryWithGraph(ctx, q, &st)
	if err != nil {
		return nil, st, err
	}
	st.IOCost = b.acc.Stats().Accesses
	st.Total = time.Since(start)
	st.Answers = len(answers)
	return answers, st, nil
}

// QueryGraph runs the baseline for an already-inferred query GRN.
func (b *Baseline) QueryGraph(q *grn.Graph) ([]Answer, Stats, error) {
	return b.QueryGraphContext(context.Background(), q)
}

// QueryGraphContext is QueryGraph under an explicit context.
func (b *Baseline) QueryGraphContext(ctx context.Context, q *grn.Graph) ([]Answer, Stats, error) {
	var st Stats
	start := time.Now()
	b.acc.ResetStats()
	st.QueryVertices = q.NumVertices()
	st.QueryEdges = q.NumEdges()
	answers, err := b.queryWithGraph(ctx, q, &st)
	if err != nil {
		return nil, st, err
	}
	st.IOCost = b.acc.Stats().Accesses
	st.Total = time.Since(start)
	st.Answers = len(answers)
	return answers, st, nil
}

func (b *Baseline) queryWithGraph(ctx context.Context, q *grn.Graph, st *Stats) ([]Answer, error) {
	tStart := time.Now()
	gamma, alpha := b.params.Gamma, b.params.Alpha
	var answers []Answer

	sources := make([]int, 0, b.db.Len())
	for _, m := range b.db.Matrices() {
		sources = append(sources, m.Source)
	}
	sort.Ints(sources)

	queryGenes := make(map[gene.ID]bool, q.NumVertices())
	for _, g := range q.Genes() {
		queryGenes[g] = true
	}
	candGenes := 0
	for _, src := range sources {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		m := b.db.BySource(src)
		n := b.n[src]
		tri := b.probs[src]
		// The baseline reads the entire pre-computed array of each matrix
		// and materializes the full GRN G_i w.r.t. the ad-hoc γ.
		b.acc.ChargeBytes(b.pages[src], len(tri)*8)
		gi := grn.NewGraph(m.Genes())
		k := 0
		for s := 0; s < n; s++ {
			for t := s + 1; t < n; t++ {
				if tri[k] > gamma {
					gi.SetEdge(s, t, tri[k])
				}
				k++
			}
		}
		st.CandidateMatrices++
		for _, g := range m.Genes() {
			if queryGenes[g] {
				candGenes++
			}
		}
		// Subgraph-match Q against the materialized G_i (Definition 4).
		match, ok := subiso.Exists(q, gi, alpha)
		if !ok {
			continue
		}
		edges := make([]grn.Edge, 0, q.NumEdges())
		for _, e := range q.Edges() {
			p, _ := gi.EdgeProb(match.Mapping[e.S], match.Mapping[e.T])
			edges = append(edges, grn.Edge{S: e.S, T: e.T, P: p})
		}
		genes := make([]gene.ID, q.NumVertices())
		copy(genes, q.Genes())
		answers = append(answers, Answer{Source: src, Prob: match.Prob, Edges: edges, Genes: genes})
	}
	st.CandidateGenes = candGenes
	st.Traversal = time.Since(tStart)
	return answers, nil
}
