package core

import (
	"sort"
	"testing"

	"github.com/imgrn/imgrn/internal/randgen"
)

// sortBySourceStable is the merge's reference implementation: append every
// run in order and stable-sort by Source.
func sortBySourceStable(runs [][]Answer) []Answer {
	var all []Answer
	for _, r := range runs {
		all = append(all, r...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].Source < all[j].Source })
	return all
}

// TestMergeAnswerRunsEquivalence is the merge's property test: for random
// run sets — including duplicate Sources across runs — the loser-tree
// merge must produce exactly what appending all runs and stable-sorting
// by Source produces. Prob is used as a unique provenance tag so the
// comparison detects any reordering among equal Sources.
func TestMergeAnswerRunsEquivalence(t *testing.T) {
	rng := randgen.New(20260807)
	for trial := 0; trial < 500; trial++ {
		k := rng.Intn(7) // 0..6 runs, covering the k=0/1/2 special cases
		runs := make([][]Answer, k)
		tag := 0.0
		for r := range runs {
			n := rng.Intn(9)
			run := make([]Answer, n)
			for i := range run {
				tag++
				run[i] = Answer{Source: rng.Intn(12), Prob: tag}
			}
			sort.SliceStable(run, func(i, j int) bool { return run[i].Source < run[j].Source })
			runs[r] = run
		}
		want := sortBySourceStable(runs)
		got := MergeAnswerRuns(runs)
		if len(got) != len(want) {
			t.Fatalf("trial %d: merged %d answers, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Source != want[i].Source || got[i].Prob != want[i].Prob {
				t.Fatalf("trial %d: position %d = (src %d, tag %v), want (src %d, tag %v)",
					trial, i, got[i].Source, got[i].Prob, want[i].Source, want[i].Prob)
			}
		}
	}
}

func TestMergeAnswerRunsFuncEarlyStop(t *testing.T) {
	runs := [][]Answer{
		{{Source: 1}, {Source: 4}},
		{{Source: 2}, {Source: 3}},
	}
	var got []int
	MergeAnswerRunsFunc(runs, func(a Answer) bool {
		got = append(got, a.Source)
		return len(got) < 3
	})
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("early-stopped merge emitted %v, want [1 2 3]", got)
	}
}

func TestRankAnswers(t *testing.T) {
	answers := []Answer{
		{Source: 3, Prob: 0.5},
		{Source: 1, Prob: 0.9},
		{Source: 2, Prob: 0.5},
		{Source: 0, Prob: 0.9},
	}
	RankAnswers(answers)
	want := []Answer{
		{Source: 0, Prob: 0.9},
		{Source: 1, Prob: 0.9},
		{Source: 2, Prob: 0.5},
		{Source: 3, Prob: 0.5},
	}
	for i := range want {
		if answers[i].Source != want[i].Source {
			t.Fatalf("rank[%d] = source %d, want %d", i, answers[i].Source, want[i].Source)
		}
	}
}
