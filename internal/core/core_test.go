package core

import (
	"strings"
	"testing"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/synth"
)

func TestParamsValidate(t *testing.T) {
	good := Params{Gamma: 0, Alpha: 0.99}
	if err := good.Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	for _, bad := range []Params{
		{Gamma: 1, Alpha: 0.5},
		{Gamma: -0.1, Alpha: 0.5},
		{Gamma: 0.5, Alpha: 1},
		{Gamma: 0.5, Alpha: -0.2},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid params accepted: %+v", bad)
		}
	}
}

func buildFixture(t *testing.T, seed uint64) (*synth.Dataset, *index.Index) {
	t.Helper()
	ds, err := synth.GenerateDatabase(synth.DBParams{
		N: 40, NMin: 8, NMax: 14, LMin: 10, LMax: 16,
		Dist: synth.Uniform, GenePool: 60, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(ds.DB, index.Options{D: 2, Samples: 32, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return ds, idx
}

func TestNewProcessorRejectsBadParams(t *testing.T) {
	_, idx := buildFixture(t, 30)
	if _, err := NewProcessor(idx, Params{Gamma: 2}); err == nil {
		t.Error("bad params should be rejected")
	}
}

func TestEdgelessQueryMatchesByGeneContainment(t *testing.T) {
	ds, idx := buildFixture(t, 31)
	proc, err := NewProcessor(idx, Params{Gamma: 0.5, Alpha: 0.5, Seed: 31, Analytic: true})
	if err != nil {
		t.Fatal(err)
	}
	// Build an edgeless query graph over genes of a known matrix.
	m := ds.DB.Matrix(0)
	q := grn.NewGraph([]gene.ID{m.Gene(0), m.Gene(1)})
	answers, st, err := proc.QueryGraph(q)
	if err != nil {
		t.Fatal(err)
	}
	foundOrigin := false
	for _, a := range answers {
		am := ds.DB.BySource(a.Source)
		for _, g := range q.Genes() {
			if !am.Has(g) {
				t.Errorf("answer %d lacks query gene %d", a.Source, g)
			}
		}
		if a.Prob != 1 {
			t.Errorf("edgeless query Pr = %v, want 1", a.Prob)
		}
		if a.Source == m.Source {
			foundOrigin = true
		}
	}
	if !foundOrigin {
		t.Error("edgeless query missed the matrix that defines it")
	}
	if st.QueryEdges != 0 {
		t.Errorf("query edges = %d", st.QueryEdges)
	}
}

func TestQueryDeterminism(t *testing.T) {
	ds, idx := buildFixture(t, 32)
	mq, _, err := ds.ExtractQuery(randgen.New(33), 4)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Gamma: 0.4, Alpha: 0.3, Seed: 17, Samples: 64}
	run := func() ([]Answer, Stats) {
		proc, err := NewProcessor(idx, params)
		if err != nil {
			t.Fatal(err)
		}
		ans, st, err := proc.Query(mq)
		if err != nil {
			t.Fatal(err)
		}
		return ans, st
	}
	a1, s1 := run()
	a2, s2 := run()
	if len(a1) != len(a2) {
		t.Fatalf("answer counts differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i].Source != a2[i].Source || a1[i].Prob != a2[i].Prob {
			t.Errorf("answer %d differs across identical runs", i)
		}
	}
	if s1.CandidateGenes != s2.CandidateGenes || s1.IOCost != s2.IOCost {
		t.Errorf("stats differ: %+v vs %+v", s1, s2)
	}
}

func TestQueryStatsSanity(t *testing.T) {
	ds, idx := buildFixture(t, 34)
	mq, _, err := ds.ExtractQuery(randgen.New(35), 4)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := NewProcessor(idx, Params{Gamma: 0.5, Alpha: 0.3, Seed: 35, Analytic: true})
	if err != nil {
		t.Fatal(err)
	}
	answers, st, err := proc.Query(mq)
	if err != nil {
		t.Fatal(err)
	}
	if st.Answers != len(answers) {
		t.Errorf("Answers = %d, len = %d", st.Answers, len(answers))
	}
	if st.QueryVertices != 4 {
		t.Errorf("QueryVertices = %d", st.QueryVertices)
	}
	if st.Total <= 0 {
		t.Error("Total duration must be positive")
	}
	if st.NodePairsVisited < 0 || st.CandidateGenes < 0 {
		t.Error("negative counters")
	}
	for _, a := range answers {
		if a.Prob <= 0.3 {
			t.Errorf("answer %d has Pr %v ≤ α", a.Source, a.Prob)
		}
		for _, e := range a.Edges {
			if e.P <= 0.5 {
				t.Errorf("answer %d edge prob %v ≤ γ", a.Source, e.P)
			}
		}
	}
}

func TestBaselineProbAndTriIndex(t *testing.T) {
	ds, _ := buildFixture(t, 36)
	base, err := BuildBaseline(ds.DB, Params{Gamma: 0.5, Alpha: 0.5, Seed: 36, Analytic: true})
	if err != nil {
		t.Fatal(err)
	}
	m := ds.DB.Matrix(0)
	an := grn.AnalyticScorer{}
	for s := 0; s < m.NumGenes(); s++ {
		for u := s + 1; u < m.NumGenes(); u++ {
			p, err := base.Prob(m.Source, s, u)
			if err != nil {
				t.Fatal(err)
			}
			if want := an.Score(m, s, u); p != want {
				t.Errorf("Prob(%d,%d) = %v, want %v", s, u, p, want)
			}
			// Symmetric lookup.
			p2, _ := base.Prob(m.Source, u, s)
			if p != p2 {
				t.Error("Prob not symmetric")
			}
		}
	}
	if _, err := base.Prob(999, 0, 1); err == nil {
		t.Error("unknown source should error")
	}
	if _, err := base.Prob(m.Source, 2, 2); err == nil {
		t.Error("self edge should error")
	}
	if base.StorageBytes() == 0 || base.BuildTime() <= 0 {
		t.Error("baseline build metrics empty")
	}
}

func TestTriIndexBijective(t *testing.T) {
	n := 17
	seen := make(map[int]bool)
	for s := 0; s < n; s++ {
		for u := s + 1; u < n; u++ {
			k := triIndex(n, s, u)
			if k < 0 || k >= n*(n-1)/2 {
				t.Fatalf("triIndex(%d,%d) = %d out of range", s, u, k)
			}
			if seen[k] {
				t.Fatalf("triIndex collision at (%d,%d)", s, u)
			}
			seen[k] = true
			if k != triIndex(n, u, s) {
				t.Fatal("triIndex not symmetric")
			}
		}
	}
}

func TestLinearScanStats(t *testing.T) {
	ds, _ := buildFixture(t, 37)
	ls, err := NewLinearScan(ds.DB, Params{Gamma: 0.5, Alpha: 0.3, Seed: 37, Analytic: true})
	if err != nil {
		t.Fatal(err)
	}
	mq, origin, err := ds.ExtractQuery(randgen.New(38), 3)
	if err != nil {
		t.Fatal(err)
	}
	answers, st, err := ls.Query(mq)
	if err != nil {
		t.Fatal(err)
	}
	if st.Answers != len(answers) {
		t.Error("stats/answers mismatch")
	}
	found := false
	for _, a := range answers {
		if a.Source == origin {
			found = true
		}
	}
	if !found && st.QueryEdges > 0 {
		t.Error("linear scan missed the origin matrix")
	}
}

// TestMonteCarloModeFindsOrigin exercises the full (non-analytic) pipeline:
// Monte Carlo inference, pivot pruning, Lemma-3 refinement.
func TestMonteCarloModeFindsOrigin(t *testing.T) {
	ds, idx := buildFixture(t, 39)
	proc, err := NewProcessor(idx, Params{Gamma: 0.4, Alpha: 0.2, Seed: 40, Samples: 128, BoundSamples: 16})
	if err != nil {
		t.Fatal(err)
	}
	rng := randgen.New(41)
	hits, tries := 0, 6
	for i := 0; i < tries; i++ {
		mq, origin, err := ds.ExtractQuery(rng, 3)
		if err != nil {
			t.Fatal(err)
		}
		answers, _, err := proc.Query(mq)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range answers {
			if a.Source == origin {
				hits++
				break
			}
		}
	}
	if hits == 0 {
		t.Errorf("Monte Carlo pipeline found the origin in 0 of %d queries", tries)
	}
}

// TestOneSidedMode runs the literal Eq.-(4) signed pipeline end to end.
func TestOneSidedMode(t *testing.T) {
	ds, idx := buildFixture(t, 42)
	proc, err := NewProcessor(idx, Params{Gamma: 0.5, Alpha: 0.3, Seed: 43, Analytic: true, OneSided: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := BuildBaseline(ds.DB, Params{Gamma: 0.5, Alpha: 0.3, Seed: 43, Analytic: true, OneSided: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := randgen.New(44)
	for i := 0; i < 5; i++ {
		mq, _, err := ds.ExtractQuery(rng, 3)
		if err != nil {
			t.Fatal(err)
		}
		q, err := proc.InferQueryGraph(mq)
		if err != nil {
			t.Fatal(err)
		}
		ans, _, err := proc.QueryGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		bAns, _, err := base.QueryGraph(q)
		if err != nil {
			t.Fatal(err)
		}
		if !sameSources(ans, bAns) {
			t.Errorf("query %d: one-sided IM-GRN and Baseline disagree", i)
		}
	}
}

func sameSources(a, b []Answer) bool {
	if len(a) != len(b) {
		return false
	}
	set := make(map[int]bool, len(a))
	for _, x := range a {
		set[x.Source] = true
	}
	for _, x := range b {
		if !set[x.Source] {
			return false
		}
	}
	return true
}

func TestDuplicateLabelQueryReturnsNothing(t *testing.T) {
	ds, idx := buildFixture(t, 95)
	params := Params{Gamma: 0.3, Alpha: 0.1, Seed: 95, Analytic: true}
	proc, err := NewProcessor(idx, params)
	if err != nil {
		t.Fatal(err)
	}
	m := ds.DB.Matrix(0)
	q := grn.NewGraph([]gene.ID{m.Gene(0), m.Gene(0)})
	q.SetEdge(0, 1, 0.5)
	ans, _, err := proc.QueryGraph(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != 0 {
		t.Errorf("duplicate-label query matched %d sources", len(ans))
	}
	// The exhaustive baseline agrees (injectivity fails for every matrix).
	base, err := BuildBaseline(ds.DB, params)
	if err != nil {
		t.Fatal(err)
	}
	bAns, _, err := base.QueryGraph(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(bAns) != 0 {
		t.Errorf("baseline matched duplicate-label query: %d", len(bAns))
	}
	ls, err := NewLinearScan(ds.DB, params)
	if err != nil {
		t.Fatal(err)
	}
	lAns, _, err := ls.QueryGraph(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(lAns) != 0 {
		t.Errorf("linear scan matched duplicate-label query: %d", len(lAns))
	}
}

func TestEmptyQueryGraphMatchesEverything(t *testing.T) {
	ds, idx := buildFixture(t, 96)
	proc, err := NewProcessor(idx, Params{Gamma: 0.5, Alpha: 0.5, Seed: 96, Analytic: true})
	if err != nil {
		t.Fatal(err)
	}
	ans, _, err := proc.QueryGraph(grn.NewGraph(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(ans) != ds.DB.Len() {
		t.Errorf("empty query matched %d of %d sources", len(ans), ds.DB.Len())
	}
}

func TestBaselineQueryFromMatrix(t *testing.T) {
	ds, idx := buildFixture(t, 97)
	params := Params{Gamma: 0.4, Alpha: 0.2, Seed: 97, Analytic: true}
	base, err := BuildBaseline(ds.DB, params)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := NewProcessor(idx, params)
	if err != nil {
		t.Fatal(err)
	}
	if got := proc.Params().Gamma; got != 0.4 {
		t.Errorf("Params accessor = %v", got)
	}
	mq, _, err := ds.ExtractQuery(randgen.New(98), 3)
	if err != nil {
		t.Fatal(err)
	}
	bAns, bSt, err := base.Query(mq)
	if err != nil {
		t.Fatal(err)
	}
	pAns, _, err := proc.Query(mq)
	if err != nil {
		t.Fatal(err)
	}
	if bSt.IOCost == 0 {
		t.Error("baseline query charged no I/O")
	}
	if !sameSources(bAns, pAns) {
		t.Errorf("Baseline.Query and Processor.Query disagree: %d vs %d answers",
			len(bAns), len(pAns))
	}
}

func TestParamsErrorMessage(t *testing.T) {
	err := Params{Gamma: 2, Alpha: 0.5}.Validate()
	if err == nil || !strings.Contains(err.Error(), "Gamma") {
		t.Errorf("error = %v, want mention of Gamma", err)
	}
}
