package core

import (
	"math"
	"time"

	"github.com/imgrn/imgrn/internal/exec"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/obs"
)

// Parallel execution paths (params.Workers > 1).
//
// Schedule independence is the invariant: answers and statistics of a
// parallel query are a pure function of (index contents, Params) — never of
// the goroutine schedule. Two rules enforce it:
//
//  1. Randomness is addressed by work unit, not by goroutine. Each work
//     unit (candidate matrix, query gene pair) derives its scorer and
//     pruner seeds from the query Seed and its own coordinates via
//     randgen.SeedFrom, so whichever worker picks it up draws the same
//     sample stream.
//  2. Workers only write into their own pre-assigned slot of a results
//     slice; aggregation into answers, Stats, and the query's I/O reader
//     happens afterwards, sequentially, in index order.
//
// Note that the Workers > 1 sample streams intentionally differ from the
// single sequential stream of Workers <= 1 (which remains byte-identical to
// the pre-parallel implementation); both are deterministic under a fixed
// Seed.

// refineParallel verifies the candidate matrices concurrently: one work
// unit per candidate, each drawing from its own (Seed, source)-addressed
// scorer/pruner streams (reseeded into the worker slot's pooled pair) and
// charging its own sub-reader with a private cold page buffer — SubReader
// stays per-candidate so I/O accounting is schedule-independent. Outcomes
// are aggregated in source order.
func (p *Processor) refineParallel(ec *exec.Context, q *grn.Graph, sources []int, st *Stats) ([]Answer, error) {
	qEdges := q.Edges()
	qs := queryScratchFor(ec)
	outcomes := exec.GrowSlice(&qs.outcomes, len(sources))
	readers := exec.GrowSlice(&qs.readers, len(sources))
	qs.growWorkers(ec.Workers())
	err := ec.ForEachWorker(len(sources), ec.Grain(), func(w, i int) error {
		src := sources[i]
		ws := qs.worker(w)
		sc, pr := p.primeScorers(ws, uint64(int64(src)))
		sub := ec.IO().SubReader()
		outcomes[i] = p.verifyCandidate(sub, q, qEdges, src, sc, pr, &ws.bufs)
		readers[i] = sub
		return nil
	})
	if err != nil {
		return nil, err
	}
	var answers []Answer
	for i, o := range outcomes {
		if readers[i] != nil {
			ec.IO().AddStats(readers[i].Stats())
		}
		st.applyCandidate(o)
		if o.answer != nil {
			answers = append(answers, *o.answer)
		}
	}
	return answers, nil
}

// inferPrunedParallel is the Workers > 1 counterpart of grn.InferPruned.
// With the batch kernel enabled the work unit is a target column (see
// inferPrunedParallelBatch); otherwise the O(n²) pair estimates fan out one
// work unit per informative gene pair, each drawing from a (Seed, s, t)-
// addressed stream. The graph is assembled in deterministic order either
// way.
func (p *Processor) inferPrunedParallel(ec *exec.Context, mq *gene.Matrix) (*grn.Graph, error) {
	if !p.params.DisableBatchInference {
		return p.inferPrunedParallelBatch(ec, mq)
	}
	n := mq.NumGenes()
	qs := queryScratchFor(ec)
	pairs := qs.pairs[:0]
	for s := 0; s < n; s++ {
		if !mq.Informative(s) {
			continue
		}
		for t := s + 1; t < n; t++ {
			if mq.Informative(t) {
				pairs = append(pairs, genePair{s, t})
			}
		}
	}
	qs.pairs = pairs
	scores := exec.GrowSlice(&qs.scores, len(pairs))
	qs.growWorkers(ec.Workers())
	err := ec.ForEachWorker(len(pairs), ec.Grain(), func(w, i int) error {
		s, t := pairs[i].s, pairs[i].t
		sc, pr := p.primeScorers(qs.worker(w), uint64(s), uint64(t))
		if pr.UpperBound(mq.StdCol(s), mq.StdCol(t)) <= p.params.Gamma {
			scores[i] = 0 // Lemma 3: the edge cannot clear gamma
			return nil
		}
		scores[i] = sc.Score(mq, s, t)
		return nil
	})
	if err != nil {
		return nil, err
	}
	g := grn.NewGraph(mq.Genes())
	for i, pe := range pairs {
		if scores[i] > p.params.Gamma {
			g.SetEdge(pe.s, pe.t, scores[i])
		}
	}
	return g, nil
}

// inferPrunedParallelBatch fans query-graph inference out one work unit per
// TARGET COLUMN: each unit bounds and scores all informative partners s < t
// against shared permutation batches of column t (the batched inference
// kernel), drawing from a (Seed, t)-addressed stream so the schedule cannot
// influence the answer. Columns are assembled in index order; the summed
// kernel time is recorded as StageInferKernel (aggregate CPU time across
// workers, like the refinement sub-stages).
func (p *Processor) inferPrunedParallelBatch(ec *exec.Context, mq *gene.Matrix) (*grn.Graph, error) {
	n := mq.NumGenes()
	type colUnit struct {
		t    int
		srcs []int
	}
	units := make([]colUnit, 0, n)
	for t := 1; t < n; t++ {
		if !mq.Informative(t) {
			continue
		}
		var srcs []int
		for s := 0; s < t; s++ {
			if mq.Informative(s) {
				srcs = append(srcs, s)
			}
		}
		if len(srcs) > 0 {
			units = append(units, colUnit{t: t, srcs: srcs})
		}
	}
	begin := time.Now()
	type colResult struct {
		probs     []float64 // per srcs index; NaN marks a Lemma-3-pruned pair
		kernel    time.Duration
		estimated int
	}
	qs := queryScratchFor(ec)
	results := make([]colResult, len(units))
	qs.growWorkers(ec.Workers())
	err := ec.ForEachWorker(len(units), ec.Grain(), func(w, i int) error {
		u := units[i]
		sc, pr := p.primeScorers(qs.worker(w), uint64(int64(u.t)))
		kStart := time.Now()
		vals := make([]float64, len(u.srcs))
		pr.UpperBoundColumn(mq, u.t, u.srcs, vals)
		survivors := make([]int, 0, len(u.srcs))
		keep := make([]bool, len(u.srcs))
		for j, ub := range vals {
			if ub > p.params.Gamma {
				survivors = append(survivors, u.srcs[j])
				keep[j] = true
			}
		}
		out := make([]float64, len(u.srcs))
		for j := range out {
			out[j] = math.NaN()
		}
		if len(survivors) > 0 {
			sc.ScoreColumn(mq, u.t, survivors, vals)
			k := 0
			for j := range u.srcs {
				if keep[j] {
					out[j] = vals[k]
					k++
				}
			}
		}
		results[i] = colResult{probs: out, kernel: time.Since(kStart), estimated: len(survivors)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	g := grn.NewGraph(mq.Genes())
	var kTotal time.Duration
	pairs, estimated := 0, 0
	for i, u := range units {
		kTotal += results[i].kernel
		pairs += len(u.srcs)
		estimated += results[i].estimated
		for j, s := range u.srcs {
			if pe := results[i].probs[j]; pe > p.params.Gamma {
				g.SetEdge(s, u.t, pe)
			}
		}
	}
	ec.Tracer().Record(obs.StageInferKernel, begin, kTotal, pairs, estimated)
	return g, nil
}
