package core_test

import (
	"testing"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/synth"
)

// TestSoundnessStress is the strongest correctness evidence for the core
// contribution: across many random datasets, thresholds, and query shapes,
// the indexed processor's answer set must equal the exhaustive Baseline's
// for the same (deterministic) estimator — i.e., all pruning is lossless
// and the traversal misses nothing.
func TestSoundnessStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short mode")
	}
	rng := randgen.New(0xbeefcafe)
	datasets := 8
	queriesPer := 4
	for di := 0; di < datasets; di++ {
		seed := rng.Uint64()
		ds, err := synth.GenerateDatabase(synth.DBParams{
			N:    30 + rng.Intn(60),
			NMin: 4 + rng.Intn(4), NMax: 10 + rng.Intn(10),
			LMin: 8 + rng.Intn(4), LMax: 14 + rng.Intn(8),
			Dist:     synth.Distribution(rng.Intn(2)),
			GenePool: 30 + rng.Intn(60),
			Seed:     seed,
		})
		if err != nil {
			t.Fatalf("dataset %d: %v", di, err)
		}
		d := 1 + rng.Intn(3)
		idx, err := index.Build(ds.DB, index.Options{
			D: d, Samples: 16 + rng.Intn(32), Seed: seed,
			MaxFill: 4 + rng.Intn(12),
		})
		if err != nil {
			t.Fatalf("dataset %d index: %v", di, err)
		}
		for qi := 0; qi < queriesPer; qi++ {
			params := core.Params{
				Gamma:    []float64{0.2, 0.5, 0.8, 0.9}[rng.Intn(4)],
				Alpha:    []float64{0.1, 0.3, 0.5, 0.8}[rng.Intn(4)],
				Seed:     rng.Uint64(),
				Analytic: true, // deterministic: both engines score identically
				OneSided: rng.Intn(2) == 0,
			}
			proc, err := core.NewProcessor(idx, params)
			if err != nil {
				t.Fatal(err)
			}
			base, err := core.BuildBaseline(ds.DB, params)
			if err != nil {
				t.Fatal(err)
			}
			nq := 2 + rng.Intn(4)
			mq, _, err := ds.ExtractQuery(rng, nq)
			if err != nil {
				t.Fatalf("dataset %d query %d: %v", di, qi, err)
			}
			q, err := proc.InferQueryGraph(mq)
			if err != nil {
				t.Fatal(err)
			}
			ans, _, err := proc.QueryGraph(q)
			if err != nil {
				t.Fatal(err)
			}
			bAns, _, err := base.QueryGraph(q)
			if err != nil {
				t.Fatal(err)
			}
			got := sourcesOf(ans)
			want := sourcesOf(bAns)
			if !sameSet(got, want) {
				t.Errorf("dataset %d query %d (γ=%g α=%g d=%d oneSided=%v, %d query edges): IM-GRN %v != Baseline %v",
					di, qi, params.Gamma, params.Alpha, d, params.OneSided, q.NumEdges(), got, want)
			}
			// Probabilities of shared answers must agree exactly under the
			// deterministic estimator.
			bBySource := make(map[int]float64, len(bAns))
			for _, a := range bAns {
				bBySource[a.Source] = a.Prob
			}
			for _, a := range ans {
				if bp, ok := bBySource[a.Source]; ok && bp != a.Prob {
					t.Errorf("dataset %d query %d source %d: Pr %v != baseline %v",
						di, qi, a.Source, a.Prob, bp)
				}
			}
		}
	}
}

// TestDisconnectedQueryGraphSoundness: the traversal seeds from a single
// high-degree vertex; a query with several components must still verify
// every component's edges during refinement.
func TestDisconnectedQueryGraphSoundness(t *testing.T) {
	ds, err := synth.GenerateDatabase(synth.DBParams{
		N: 40, NMin: 8, NMax: 14, LMin: 10, LMax: 16,
		Dist: synth.Uniform, GenePool: 60, Seed: 90,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(ds.DB, index.Options{D: 2, Samples: 32, Seed: 90})
	if err != nil {
		t.Fatal(err)
	}
	params := core.Params{Gamma: 0.3, Alpha: 0.1, Seed: 91, Analytic: true}
	proc, err := core.NewProcessor(idx, params)
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.BuildBaseline(ds.DB, params)
	if err != nil {
		t.Fatal(err)
	}
	// Build a 2-component query over genes of one matrix: edges (0,1) and
	// (2,3), probabilities from the analytic scorer so both engines agree.
	m := ds.DB.Matrix(0)
	if m.NumGenes() < 4 {
		t.Skip("fixture matrix too narrow")
	}
	q := grn.NewGraph([]gene.ID{m.Gene(0), m.Gene(1), m.Gene(2), m.Gene(3)})
	q.SetEdge(0, 1, 0.5)
	q.SetEdge(2, 3, 0.5)
	ans, _, err := proc.QueryGraph(q)
	if err != nil {
		t.Fatal(err)
	}
	bAns, _, err := base.QueryGraph(q)
	if err != nil {
		t.Fatal(err)
	}
	if !sameSet(sourcesOf(ans), sourcesOf(bAns)) {
		t.Errorf("disconnected query: IM-GRN %v != Baseline %v",
			sourcesOf(ans), sourcesOf(bAns))
	}
}
