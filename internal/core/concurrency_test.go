package core_test

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/synth"
)

func buildConcFixture(t *testing.T, seed uint64) (*synth.Dataset, *index.Index) {
	t.Helper()
	ds, err := synth.GenerateDatabase(synth.DBParams{
		N: 60, NMin: 12, NMax: 20, LMin: 14, LMax: 20,
		Dist: synth.Gaussian, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(ds.DB, index.Options{D: 2, Samples: 24, Seed: seed, BufferPages: 128})
	if err != nil {
		t.Fatal(err)
	}
	return ds, idx
}

func extractQueries(t *testing.T, ds *synth.Dataset, n int, seed uint64) []*gene.Matrix {
	t.Helper()
	rng := randgen.New(seed)
	out := make([]*gene.Matrix, n)
	for i := range out {
		q, _, err := ds.ExtractQuery(rng, 5)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = q
	}
	return out
}

func assertSameResults(t *testing.T, label string, a1 []core.Answer, st1 core.Stats, a2 []core.Answer, st2 core.Stats) {
	t.Helper()
	if len(a1) != len(a2) {
		t.Fatalf("%s: %d answers vs %d", label, len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i].Source != a2[i].Source || a1[i].Prob != a2[i].Prob {
			t.Fatalf("%s: answer %d differs: (%d, %v) vs (%d, %v)",
				label, i, a1[i].Source, a1[i].Prob, a2[i].Source, a2[i].Prob)
		}
		if len(a1[i].Edges) != len(a2[i].Edges) {
			t.Fatalf("%s: answer %d edge count differs", label, i)
		}
		for j := range a1[i].Edges {
			if a1[i].Edges[j] != a2[i].Edges[j] {
				t.Fatalf("%s: answer %d edge %d differs", label, i, j)
			}
		}
	}
	if st1.IOCost != st2.IOCost {
		t.Fatalf("%s: IOCost %d vs %d", label, st1.IOCost, st2.IOCost)
	}
	if st1.CandidateMatrices != st2.CandidateMatrices || st1.CandidateGenes != st2.CandidateGenes ||
		st1.MatricesPrunedL5 != st2.MatricesPrunedL5 || st1.Answers != st2.Answers ||
		st1.QueryVertices != st2.QueryVertices || st1.QueryEdges != st2.QueryEdges {
		t.Fatalf("%s: stats differ:\n%+v\n%+v", label, st1, st2)
	}
}

// TestParallelMatchesSequentialAnalytic: with the analytic estimator there
// is no RNG, so parallel refinement must reproduce the sequential answers,
// probabilities, and I/O accounting exactly.
func TestParallelMatchesSequentialAnalytic(t *testing.T) {
	ds, idx := buildConcFixture(t, 41)
	mkProc := func(workers int) *core.Processor {
		proc, err := core.NewProcessor(idx, core.Params{
			Gamma: 0.5, Alpha: 0.3, Seed: 5, Analytic: true, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return proc
	}
	seq := mkProc(1)
	par := mkProc(4)
	for i, q := range extractQueries(t, ds, 5, 77) {
		a1, st1, err := seq.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		a2, st2, err := par.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		assertSameResults(t, fmt.Sprintf("query %d", i), a1, st1, a2, st2)
	}
}

// TestParallelMCScheduleIndependent: Monte Carlo results under Workers > 1
// are a pure function of (Seed, work unit), so runs with different worker
// counts — and repeated runs — must agree bit-for-bit.
func TestParallelMCScheduleIndependent(t *testing.T) {
	ds, idx := buildConcFixture(t, 43)
	run := func(workers int) ([]core.Answer, core.Stats) {
		proc, err := core.NewProcessor(idx, core.Params{
			Gamma: 0.5, Alpha: 0.3, Samples: 32, Seed: 9, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		q := extractQueries(t, ds, 1, 55)[0]
		a, st, err := proc.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		return a, st
	}
	a2, st2 := run(2)
	a2b, st2b := run(2)
	assertSameResults(t, "workers=2 repeat", a2, st2, a2b, st2b)
	a8, st8 := run(8)
	assertSameResults(t, "workers=2 vs workers=8", a2, st2, a8, st8)
}

// TestSequentialUnchangedByWorkersFlag: Workers=0 and Workers=1 both take
// the original single-stream path and must agree exactly (MC included).
func TestSequentialUnchangedByWorkersFlag(t *testing.T) {
	ds, idx := buildConcFixture(t, 47)
	run := func(workers int) ([]core.Answer, core.Stats) {
		proc, err := core.NewProcessor(idx, core.Params{
			Gamma: 0.5, Alpha: 0.3, Samples: 32, Seed: 3, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		q := extractQueries(t, ds, 1, 21)[0]
		a, st, err := proc.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		return a, st
	}
	a0, st0 := run(0)
	a1, st1 := run(1)
	assertSameResults(t, "workers=0 vs workers=1", a0, st0, a1, st1)
}

func TestQueryContextCancellation(t *testing.T) {
	ds, idx := buildConcFixture(t, 53)
	for _, workers := range []int{1, 4} {
		proc, err := core.NewProcessor(idx, core.Params{
			Gamma: 0.5, Alpha: 0.3, Seed: 5, Analytic: true, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		q := extractQueries(t, ds, 1, 13)[0]
		if _, _, err := proc.QueryContext(ctx, q); !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestBaselineLinearScanCancellation(t *testing.T) {
	ds, _ := buildConcFixture(t, 59)
	params := core.Params{Gamma: 0.5, Alpha: 0.3, Seed: 5, Analytic: true}
	q := extractQueries(t, ds, 1, 17)[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	ls, err := core.NewLinearScan(ds.DB, params)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ls.QueryContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("linear scan: err = %v, want context.Canceled", err)
	}

	bl, err := core.BuildBaseline(ds.DB, params)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bl.QueryContext(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("baseline: err = %v, want context.Canceled", err)
	}
}
