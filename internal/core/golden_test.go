package core_test

import (
	"fmt"
	"os"
	"strings"
	"testing"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/synth"
)

// goldenFingerprint runs the shared fixed-seed query workload and renders
// the fingerprint compared by the golden tests below.
func goldenFingerprint(t *testing.T, params core.Params) string {
	t.Helper()
	ds, err := synth.GenerateDatabase(synth.DBParams{N: 120, NMin: 20, NMax: 40, LMin: 20, LMax: 30, Seed: 7, Dist: synth.Gaussian})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(ds.DB, index.Options{D: 2, Samples: 24, Seed: 7, Bits: 512, BufferPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := core.NewProcessor(idx, params)
	if err != nil {
		t.Fatal(err)
	}
	rng := randgen.New(99)
	var sb strings.Builder
	for i := 0; i < 6; i++ {
		q, _, err := ds.ExtractQuery(rng, 5)
		if err != nil {
			t.Fatal(err)
		}
		a, st, err := proc.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "q%d answers=%d io=%d cand=%d genes=%d l5=%d npv=%d npp=%d ppc=%d ppp=%d qv=%d qe=%d\n",
			i, len(a), st.IOCost, st.CandidateMatrices, st.CandidateGenes, st.MatricesPrunedL5,
			st.NodePairsVisited, st.NodePairsPruned, st.PointPairsChecked, st.PointPairsPruned,
			st.QueryVertices, st.QueryEdges)
		for _, an := range a {
			fmt.Fprintf(&sb, "  src=%d prob=%.17g edges=%d\n", an.Source, an.Prob, len(an.Edges))
		}
	}
	return sb.String()
}

// compareGolden checks got against the named golden file, regenerating it
// when GOLDEN_WRITE=1.
func compareGolden(t *testing.T, file, got string) {
	t.Helper()
	if os.Getenv("GOLDEN_WRITE") == "1" {
		if err := os.WriteFile(file, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("golden written")
		return
	}
	want, err := os.ReadFile(file)
	if err != nil {
		t.Fatalf("%s missing; run once with GOLDEN_WRITE=1 to capture", file)
	}
	if got != string(want) {
		t.Errorf("fixed-seed output diverged from golden:\n got:\n%s\nwant:\n%s", got, string(want))
	}
}

// TestSequentialGoldenFingerprint pins the sequential (Workers <= 1) query
// path to a fixed-seed fingerprint captured before the concurrency
// refactor: answers, probabilities, and every Stats counter must stay
// byte-identical across refactors. The batch inference kernel is disabled
// so the scalar reference path stays pinned to the pre-kernel fingerprint.
// Regenerate deliberately with GOLDEN_WRITE=1 after an intentional
// algorithm change.
func TestSequentialGoldenFingerprint(t *testing.T) {
	got := goldenFingerprint(t, core.Params{Gamma: 0.5, Alpha: 0.4, Samples: 48, Seed: 9,
		DisableBatchInference: true})
	compareGolden(t, "testdata/golden.txt", got)
}

// TestBatchSequentialGoldenFingerprint pins the batched inference kernel's
// sequential path the same way: the kernel consumes the RNG per target
// column instead of per pair, so its fingerprint legitimately differs from
// the scalar one, but it must be just as deterministic.
func TestBatchSequentialGoldenFingerprint(t *testing.T) {
	got := goldenFingerprint(t, core.Params{Gamma: 0.5, Alpha: 0.4, Samples: 48, Seed: 9})
	compareGolden(t, "testdata/golden_batch.txt", got)
}
