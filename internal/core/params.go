// Package core implements the paper's primary contribution: the
// IM-GRN_Processing algorithm of Figure 4 — ad-hoc inference of the query
// GRN, bit-vector and Lemma-6 pruned pairwise traversal of the R*-tree
// index, pivot and edge-inference pruning of candidate gene pairs, graph
// existence pruning (Lemma 5), and Monte Carlo refinement of the surviving
// candidate matrices. The package also provides the two competitors used in
// Section 6.3: Baseline (offline materialization of all pairwise edge
// probabilities plus a linear scan) and LinearScan (no index, per-pair
// pruning only).
package core

import (
	"time"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/obs"
	"github.com/imgrn/imgrn/internal/plan"
	"github.com/imgrn/imgrn/internal/stats"
)

// Params are the per-query IM-GRN parameters of Definition 4 plus
// estimation knobs.
type Params struct {
	// Gamma is the ad-hoc inference threshold γ ∈ [0, 1).
	Gamma float64
	// Alpha is the probabilistic matching threshold α ∈ [0, 1).
	Alpha float64
	// Samples is the Monte Carlo sample count for exact edge probabilities
	// (stats.DefaultSamples when 0). Overridden by Eps/Delta or an
	// explicit Plan.
	Samples int
	// Eps and Delta request a per-query (ε, δ)-approximation: when either
	// is non-zero both must satisfy Lemma 2's domain (ε > 0, 0 < δ < 1;
	// Validate rejects the rest) and the query plan chooses
	// Samples = stats.SampleSize(Eps, Delta) instead of the value above.
	Eps   float64
	Delta float64
	// BoundSamples is the (small) sample count for the Lemma-3 E(Z)
	// estimate (16 when 0).
	BoundSamples int
	// Seed drives the Monte Carlo estimators.
	Seed uint64
	// Analytic switches the exact edge probability from Monte Carlo to the
	// permutation-null normal approximation; used by large benchmark
	// sweeps.
	Analytic bool
	// OneSided selects the literal Eq.-(4) signed reduction, which only
	// credits positive correlations. The default (false) is the absolute
	// Pearson form of Definition 2, under which strong negative
	// correlations are interactions too; all pruning bounds adapt.
	OneSided bool

	// Workers bounds intra-query parallelism: candidate refinement and
	// Monte Carlo query-graph inference fan out across up to Workers
	// goroutines. 0 or 1 runs the exact sequential algorithm (one RNG
	// stream, byte-identical to the pre-parallel implementation under a
	// fixed Seed). For Workers > 1 every work unit (candidate matrix, gene
	// pair) derives its randomness from (Seed, unit) alone, so answers are
	// deterministic regardless of the goroutine schedule.
	Workers int

	// Grain is the work-stealing scheduler's chunk size: the number of
	// consecutive work units (candidates, gene pairs) a worker claims at a
	// time, and also the fan-out size at or below which a parallel query
	// stays on the calling goroutine — tiny candidate sets never pay
	// goroutine or chunk-claim overhead. 0 (the default) picks an automatic
	// grain per fan-out; it never changes answers, only scheduling.
	Grain int

	// Cache optionally memoizes exact edge-probability estimates across
	// queries. The cache must only be shared among queries with identical
	// estimator settings (Samples, Seed, Analytic, OneSided); the public
	// Engine manages this keying automatically.
	Cache *EdgeProbCache

	// Trace optionally collects per-stage spans (durations plus candidate
	// in/out counts) for this query. Nil disables tracing at zero cost;
	// tracing never changes answers or the RNG streams, only observes.
	Trace *obs.Tracer

	// Sink optionally streams verified answers into a shared bounded top-k
	// merge (the sharded scatter-gather path, DESIGN.md §10). When set,
	// refinement switches to the streamed mode: candidates are verified in
	// descending Lemma-5 upper-bound order with per-candidate (Seed, source)
	// RNG streams, each answer is offered to the sink as it is found, and
	// the loop terminates early once the best remaining upper bound falls
	// below the sink's floor (the current k-th probability across all
	// shards). Answer content is deterministic; which candidates are pruned
	// by the rising floor — and therefore the pruning counters — may vary
	// with cross-shard timing. Nil (the default) keeps the exact
	// set-returning refinement modes.
	Sink *TopKSink

	// Plan pins this query's execution plan. Nil (the usual case) makes
	// the processor resolve the fixed default plan from the params —
	// byte-identical to the pre-planner pipeline; the sharded coordinator
	// resolves once per query so every shard executes the same plan, and
	// the server installs adaptive plans from its cost-model Planner.
	// When set, the plan's decisions override Samples and the stage
	// switches below (DisableIndexPruning and DisableGeneRange stay
	// caller-controlled: they are ablation-only and not planned).
	Plan *plan.Plan

	// Ablation switches (used by the benchmark harness to isolate the
	// contribution of each pruning layer; leave false in production).
	DisableIndexPruning  bool // skip Lemma 6 node-pair pruning
	DisablePivotPruning  bool // skip leaf-level PPR point-pair pruning
	DisableSignatures    bool // skip bit-vector gene/source node filters
	DisableGeneRange     bool // skip gene-ID MBR range tests on node pairs
	DisableMarkovPruning bool // skip Lemma-5 graph existence pruning of candidates

	// DisableBatchInference turns off the batched Monte Carlo inference
	// kernel for query-graph inference, falling back to the per-pair scalar
	// estimators (the reference implementation). The batch kernel is on by
	// default; it consumes the scorer RNG per target column rather than per
	// pair, so fixed-seed query graphs differ between the two settings
	// (both deterministic, statistically equivalent). Flip this on to
	// reproduce pre-kernel golden outputs or to bisect a suspected kernel
	// discrepancy against the scalar reference.
	DisableBatchInference bool
}

// Validate reports whether the thresholds are in range, including the
// Lemma-2 domain of a requested (Eps, Delta). Bad accuracy parameters
// surface here as an error — never as a stats.SampleSize panic — so the
// HTTP layer can answer 400.
func (p Params) Validate() error {
	if p.Gamma < 0 || p.Gamma >= 1 {
		return errOutOfRange("Gamma", p.Gamma)
	}
	if p.Alpha < 0 || p.Alpha >= 1 {
		return errOutOfRange("Alpha", p.Alpha)
	}
	if p.Eps != 0 || p.Delta != 0 {
		if _, err := stats.SampleSizeErr(p.Eps, p.Delta); err != nil {
			return err
		}
	}
	return nil
}

// planRequest maps the params onto the planner's view of the query: the
// stage switches invert the Disable* ablation flags, and the accuracy
// and sample knobs pass through.
func (p Params) planRequest() plan.Request {
	return plan.Request{
		Eps:        p.Eps,
		Delta:      p.Delta,
		Samples:    p.Samples,
		Pivot:      !p.DisablePivotPruning,
		Signatures: !p.DisableSignatures,
		Markov:     !p.DisableMarkovPruning,
		Batch:      !p.DisableBatchInference,
	}
}

// ResolvePlan returns params with a query plan resolved and applied:
// a nil Plan is replaced by the fixed default plan (a pure round-trip of
// the params, so behavior is byte-identical to the pre-planner
// pipeline), and the plan's decisions are written back onto Samples and
// the stage switches. Idempotent; the sharded coordinator calls it once
// per query before scattering so every shard shares one plan, and
// NewProcessor calls it so direct processor use is planned too.
func (p Params) ResolvePlan() (Params, error) {
	if p.Plan == nil {
		pl, err := plan.Resolve(p.planRequest())
		if err != nil {
			return p, err
		}
		p.Plan = pl
	}
	pl := p.Plan
	p.Samples = pl.Samples
	p.DisablePivotPruning = !pl.Pivot
	p.DisableSignatures = !pl.Signatures
	p.DisableMarkovPruning = !pl.Markov
	p.DisableBatchInference = !pl.Batch
	return p, nil
}

type paramErr struct {
	name string
	v    float64
}

func errOutOfRange(name string, v float64) error { return paramErr{name, v} }

func (e paramErr) Error() string {
	return "core: parameter " + e.name + " out of [0,1)"
}

// Answer is one IM-GRN result: a database matrix whose inferred GRN
// contains the query with confidence above α.
type Answer struct {
	// Source is the data source ID of the matching matrix M_i.
	Source int
	// Prob is the appearance probability Pr{G} of the matched subgraph.
	Prob float64
	// Edges are the matched edges in query-vertex indexing, each carrying
	// its existence probability in the data GRN.
	Edges []grn.Edge
	// Genes maps query vertex index -> matched gene ID.
	Genes []gene.ID
}

// Stats reports the cost metrics of Section 6 for one query.
type Stats struct {
	// Durations of the processing phases. InferQuery, Traversal,
	// Refinement and Total are wall-clock; MarkovPrune and MonteCarlo
	// break Refinement down into its Lemma-5 upper-bound pruning and
	// exact-verification parts, summed across candidates (so with
	// Workers > 1 they are aggregate CPU time, not wall clock, and may
	// exceed Refinement).
	InferQuery  time.Duration
	Traversal   time.Duration
	Refinement  time.Duration
	MarkovPrune time.Duration
	MonteCarlo  time.Duration
	Total       time.Duration

	// IOCost is the number of simulated page accesses ("disk" reads);
	// IOHits counts the page touches absorbed by the query's private
	// buffer pool instead.
	IOCost uint64
	IOHits uint64

	// Pruning effectiveness counters.
	NodePairsVisited  int
	NodePairsPruned   int // by Lemma 6 or signatures during traversal
	PointPairsChecked int
	PointPairsPruned  int // by pivot pruning at the leaf level
	CandidateGenes    int // distinct candidate gene vectors after pruning
	CandidateMatrices int
	MatricesPrunedL5  int // candidate matrices removed by Lemma 5
	Answers           int

	// Edge-probability cache effectiveness during refinement (zero when no
	// cache is configured).
	CacheHits   int
	CacheMisses int

	// Query graph shape.
	QueryVertices int
	QueryEdges    int

	// Plan is the execution plan this query ran under (never nil for a
	// processor query: a nil Params.Plan resolves to the fixed default
	// plan). Shared, immutable; sharded queries report the one plan all
	// shards executed.
	Plan *plan.Plan
}

// PlanFeedback maps the query's realized stage statistics onto the
// planner's feedback record, closing the observability loop: the server
// (and the experiments harness) feed it into a plan.Planner after every
// query.
func (st Stats) PlanFeedback() plan.Feedback {
	return plan.Feedback{
		Candidates:        st.CandidateMatrices,
		PrunedL5:          st.MatricesPrunedL5,
		MarkovSeconds:     st.MarkovPrune.Seconds(),
		MonteCarloSeconds: st.MonteCarlo.Seconds(),
		PointPairsChecked: st.PointPairsChecked,
		PointPairsPruned:  st.PointPairsPruned,
		NodePairsVisited:  st.NodePairsVisited,
		NodePairsPruned:   st.NodePairsPruned,
		CacheHits:         st.CacheHits,
		CacheMisses:       st.CacheMisses,
	}
}
