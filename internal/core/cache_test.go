package core

import (
	"sync"
	"testing"

	"github.com/imgrn/imgrn/internal/randgen"
)

func TestEdgeProbCacheBasics(t *testing.T) {
	c := NewEdgeProbCache(4)
	if _, ok := c.Get(1, 2, 3); ok {
		t.Fatal("empty cache returned a value")
	}
	c.Put(1, 2, 3, 0.75)
	if p, ok := c.Get(1, 2, 3); !ok || p != 0.75 {
		t.Errorf("Get = %v, %v", p, ok)
	}
	// Canonical key: (a, b) and (b, a) are the same edge.
	if p, ok := c.Get(1, 3, 2); !ok || p != 0.75 {
		t.Errorf("reversed Get = %v, %v", p, ok)
	}
	// Different source is a different key.
	if _, ok := c.Get(2, 2, 3); ok {
		t.Error("cross-source hit")
	}
	// Update in place does not grow the cache.
	c.Put(1, 3, 2, 0.5)
	if p, _ := c.Get(1, 2, 3); p != 0.5 {
		t.Error("update lost")
	}
	if c.Len() != 1 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestEdgeProbCacheEviction(t *testing.T) {
	c := NewEdgeProbCache(3)
	c.Put(0, 0, 1, 0.1)
	c.Put(0, 0, 2, 0.2)
	c.Put(0, 0, 3, 0.3)
	c.Put(0, 0, 4, 0.4) // evicts the oldest (0,0,1)
	if _, ok := c.Get(0, 0, 1); ok {
		t.Error("oldest entry should be evicted")
	}
	for b, want := range map[int]float64{2: 0.2, 3: 0.3, 4: 0.4} {
		if p, ok := c.Get(0, 0, b); !ok || p != want {
			t.Errorf("entry (0,0,%d) = %v, %v", b, p, ok)
		}
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestEdgeProbCacheConcurrent(t *testing.T) {
	c := NewEdgeProbCache(1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := randgen.New(uint64(w))
			for i := 0; i < 2000; i++ {
				src := rng.Intn(10)
				a, b := rng.Intn(20), rng.Intn(20)
				if a == b {
					continue
				}
				if p, ok := c.Get(src, a, b); ok && (p < 0 || p > 1) {
					t.Errorf("corrupted value %v", p)
					return
				}
				c.Put(src, a, b, rng.Float64())
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 1024 {
		t.Errorf("cache exceeded capacity: %d", c.Len())
	}
}

func TestEdgeProbCacheInvalidateSource(t *testing.T) {
	c := NewEdgeProbCache(64)
	for src := 0; src < 3; src++ {
		c.Put(src, 0, 1, float64(src)+0.1)
		c.Put(src, 1, 2, float64(src)+0.2)
	}
	c.Get(0, 0, 1) // hit, must survive the invalidation below
	if n := c.InvalidateSource(1); n != 2 {
		t.Errorf("InvalidateSource removed %d entries, want 2", n)
	}
	if _, ok := c.Get(1, 0, 1); ok {
		t.Error("invalidated entry still cached")
	}
	if _, ok := c.Get(1, 1, 2); ok {
		t.Error("invalidated entry still cached")
	}
	// Other sources' entries stay warm.
	for _, src := range []int{0, 2} {
		if p, ok := c.Get(src, 0, 1); !ok || p != float64(src)+0.1 {
			t.Errorf("source %d entry lost by unrelated invalidation: %v, %v", src, p, ok)
		}
	}
	if c.Len() != 4 {
		t.Errorf("Len = %d, want 4", c.Len())
	}
	// Hit/miss counters survive: 3 hits above plus the 2 misses on the
	// invalidated keys, plus the initial hit.
	st := c.Stats()
	if st.Hits != 3 || st.Misses != 2 {
		t.Errorf("stats after invalidation = %+v, want 3 hits, 2 misses", st)
	}
	// Invalidating an absent source is a no-op.
	if n := c.InvalidateSource(42); n != 0 {
		t.Errorf("InvalidateSource(absent) = %d", n)
	}
}

func TestEdgeProbCacheStats(t *testing.T) {
	c := NewEdgeProbCache(16)
	if st := c.Stats(); st.Hits != 0 || st.Misses != 0 {
		t.Fatalf("fresh cache stats = %+v", st)
	}
	c.Get(1, 2, 3) // miss
	c.Put(1, 2, 3, 0.5)
	c.Get(1, 2, 3) // hit
	c.Get(1, 3, 2) // hit (canonical key)
	c.Get(9, 2, 3) // miss
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 2 hits, 2 misses", st)
	}
}

func TestEdgeProbCacheShardedCapacity(t *testing.T) {
	// Large capacities stripe across shards; the total bound must hold and
	// no entry may vanish before the cache fills.
	const capacity = 1 << 10
	c := NewEdgeProbCache(capacity)
	for i := 0; i < capacity/2; i++ {
		c.Put(i, 0, 1, float64(i))
	}
	for i := 0; i < capacity/2; i++ {
		if p, ok := c.Get(i, 0, 1); !ok || p != float64(i) {
			t.Fatalf("entry %d lost before capacity: %v, %v", i, p, ok)
		}
	}
	for i := capacity / 2; i < 4*capacity; i++ {
		c.Put(i, 0, 1, float64(i))
	}
	if n := c.Len(); n > capacity {
		t.Fatalf("Len = %d exceeds capacity %d", n, capacity)
	}
}

func TestCacheStatsSurfaceInQueryStats(t *testing.T) {
	ds, idx := buildFixture(t, 74)
	mq, _, err := ds.ExtractQuery(randgen.New(75), 4)
	if err != nil {
		t.Fatal(err)
	}
	params := Params{Gamma: 0.4, Alpha: 0.2, Seed: 76, Samples: 32, Cache: NewEdgeProbCache(0)}
	proc, err := NewProcessor(idx, params)
	if err != nil {
		t.Fatal(err)
	}
	_, st1, err := proc.Query(mq)
	if err != nil {
		t.Fatal(err)
	}
	if st1.CacheHits != 0 {
		t.Errorf("first query reported %d hits on a cold cache", st1.CacheHits)
	}
	_, st2, err := proc.Query(mq)
	if err != nil {
		t.Fatal(err)
	}
	if st1.CacheMisses > 0 && st2.CacheHits == 0 {
		t.Errorf("repeat query reported no cache hits (first run: %d misses)", st1.CacheMisses)
	}
}

// TestCachedQueriesConsistent: with a shared cache, two identical queries
// return identical probabilities (MC noise memoized away), and results
// match the uncached run of the same processor seed.
func TestCachedQueriesConsistent(t *testing.T) {
	ds, idx := buildFixture(t, 70)
	mq, _, err := ds.ExtractQuery(randgen.New(71), 4)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewEdgeProbCache(0)
	params := Params{Gamma: 0.4, Alpha: 0.2, Seed: 72, Samples: 64, Cache: cache}
	run := func(p Params) []Answer {
		proc, err := NewProcessor(idx, p)
		if err != nil {
			t.Fatal(err)
		}
		ans, _, err := proc.Query(mq)
		if err != nil {
			t.Fatal(err)
		}
		return ans
	}
	first := run(params)
	second := run(params) // served from cache
	if len(first) != len(second) {
		t.Fatalf("cached run answers differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].Source != second[i].Source || first[i].Prob != second[i].Prob {
			t.Errorf("answer %d differs under caching", i)
		}
	}
	if cache.Len() == 0 && len(first) > 0 {
		t.Error("cache never populated")
	}
}
