package core

import (
	"container/heap"
	"context"
	"errors"
	"math/bits"
	"sort"
	"sync"
	"time"

	"github.com/imgrn/imgrn/internal/bitvec"
	"github.com/imgrn/imgrn/internal/exec"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/obs"
	"github.com/imgrn/imgrn/internal/plan"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/rstar"
	"github.com/imgrn/imgrn/internal/stats"
)

// Multi-query batch execution (DESIGN.md §14).
//
// QueryBatch answers B queries over one index with cross-query
// amortization that a sequential loop cannot get:
//
//   - One shared R*-tree traversal per γ-group. Queries whose traversal
//     parameters agree (γ, estimator side, ablation switches) descend the
//     index together: every priority-queue entry carries a liveness
//     bitmask of the member queries that admitted it, node pages are
//     touched once per pop instead of once per query, and the per-query
//     signature/gene-range/Lemma-6 tests run against the shared node.
//     Each member's admission chain is evaluated independently, so its
//     candidate-pair SET (and all its traversal pruning counters) are
//     exactly those of a solo run — only the shared page I/O differs.
//   - One plan resolution per distinct (ε, δ, samples, stage-set) group:
//     members of a plan group share one resolved *plan.Plan pointer, the
//     same way the sharded coordinator shares a plan across shards.
//   - Optionally (BatchOptions.SharedPerms), one permutation batch per
//     (seed, source, column, R): Monte Carlo refinement switches to
//     per-(Seed, source)-addressed streams and draws the R permutations
//     of each probed target column once per batch into a shared
//     stats.PermBatch pool, so queries probing the same column pay one
//     blocked inner-product pass instead of R fresh permutations each.
//
// Determinism contract: with SharedPerms off (the default), batch results
// are byte-identical to running the same items sequentially against the
// same engine — per-item processors keep their private sequential RNG
// streams, and refinement runs strictly in item order so a shared
// edge-probability cache warms in exactly the sequential order. With
// SharedPerms on, refinement randomness is (Seed, source, column)
// addressed instead of stream-positional: results are deterministic and
// independent of batch composition and order, but differ from the
// sequential stream (the same contract as the Workers>1 and sharded
// paths). The shared traversal never draws randomness, so it is exact in
// both modes.

// BatchItem is one query of a batch: a query matrix (or a pre-inferred
// query graph) plus its own full parameter set.
type BatchItem struct {
	// Matrix is the query's feature matrix; ignored when Graph is set.
	Matrix *gene.Matrix
	// Graph is an already-inferred query GRN (the sharded scatter path
	// and /query-graph requests supply one); when set, the inference
	// stage is skipped.
	Graph *grn.Graph
	// Params are the item's query parameters. Items may differ in every
	// field; traversal sharing simply groups compatible items.
	Params Params
	// K keeps only the K best answers by appearance probability (ties
	// toward smaller source IDs), exactly like Engine.QueryTopK. K <= 0
	// returns all matches sorted by source.
	K int
}

// BatchResult is one item's outcome.
type BatchResult struct {
	Answers []Answer
	Stats   Stats
	// Err is the item's error (validation, cancellation, per-item
	// timeout). Items fail independently: one bad or slow item never
	// fails its siblings.
	Err error
}

// BatchOptions tunes one QueryBatch call.
type BatchOptions struct {
	// SharedPerms shares Monte Carlo permutation batches across the
	// queries of the batch (see the package comment's determinism
	// contract). Off by default: the default mode is byte-identical to
	// sequential execution.
	SharedPerms bool
	// ItemTimeout bounds each item's active phases (its inference, its
	// traversal group's shared descent, its refinement) individually, so
	// one slow item cannot starve the rest of the batch. 0 disables the
	// per-item bound; the batch context still applies throughout.
	ItemTimeout time.Duration
	// OnResult, when non-nil, is called once per item as the item
	// completes (successfully or not), before QueryBatch returns — the
	// streaming hook behind the server's NDJSON batch endpoint.
	// QueryBatch itself invokes it in item order from the calling
	// goroutine; the sharded coordinator may invoke it out of order.
	OnResult func(i int, res BatchResult)
}

// BatchStats aggregates batch-level execution counters (per-item costs
// live in each BatchResult.Stats).
type BatchStats struct {
	// Queries is the number of items submitted, Errors how many failed.
	Queries int
	Errors  int
	// Groups is the number of shared traversals run (γ-groups, after
	// chunking to the bitmask width); degenerate items (duplicate genes,
	// zero-edge graphs) never join a group.
	Groups int
	// PermFills / PermProbes count shared-permutation batch
	// materializations and the edge probabilities answered from them
	// (zero unless SharedPerms).
	PermFills  int
	PermProbes int
}

func (b *BatchStats) merge(o BatchStats) {
	b.Queries += o.Queries
	b.Errors += o.Errors
	b.Groups += o.Groups
	b.PermFills += o.PermFills
	b.PermProbes += o.PermProbes
}

// Merge folds another batch's counters into b (the sharded coordinator
// sums its per-shard batches).
func (b *BatchStats) Merge(o BatchStats) { b.merge(o) }

// ResolveBatchPlans validates every item and resolves its execution plan
// in place, sharing one resolved *plan.Plan across all items with the
// same plan request — one plan.Resolve per distinct (ε, δ, samples,
// stage-set) group in the batch. Items that already carry a pinned plan
// keep it. The returned slice holds one error per item (nil for valid
// items); callers must skip errored items. Idempotent.
func ResolveBatchPlans(items []BatchItem) []error {
	errs := make([]error, len(items))
	groups := make(map[plan.Request]*plan.Plan)
	for i := range items {
		p := &items[i].Params
		if err := p.Validate(); err != nil {
			errs[i] = err
			continue
		}
		if p.Plan == nil {
			req := p.planRequest()
			pl, ok := groups[req]
			if !ok {
				var err error
				pl, err = plan.Resolve(req)
				if err != nil {
					errs[i] = err
					continue
				}
				groups[req] = pl
			}
			p.Plan = pl
		}
		resolved, err := p.ResolvePlan()
		if err != nil {
			errs[i] = err
			continue
		}
		*p = resolved
	}
	return errs
}

// batchMember is the per-item execution state of one QueryBatch call.
type batchMember struct {
	i     int
	item  *BatchItem
	proc  *Processor
	graph *grn.Graph
	st    Stats
	pairs []candidatePair
	trav  *travState
	err   error
	done  bool
	// degenerate marks items that skip the shared traversal: duplicate
	// query genes (no possible embedding) or zero-edge graphs (inverted
	// file lookup instead of a descent).
	dupGenes  bool
	zeroEdges bool
}

// QueryBatch runs a batch of queries over idx with shared traversals,
// shared plan resolution and (optionally) shared permutation batches.
// It returns one BatchResult per item, in item order; opts.OnResult
// streams them as they complete. Item errors are reported per item, never
// as a batch failure — the only batch-wide abort is ctx cancellation.
func QueryBatch(ctx context.Context, idx *index.Index, items []BatchItem, opts BatchOptions) ([]BatchResult, BatchStats) {
	results := make([]BatchResult, len(items))
	bst := BatchStats{Queries: len(items)}
	if len(items) == 0 {
		return results, bst
	}

	members := make([]*batchMember, len(items))
	finish := func(m *batchMember, answers []Answer) {
		if m.done {
			return
		}
		m.done = true
		if m.err != nil {
			bst.Errors++
		}
		m.st.Answers = len(answers)
		results[m.i] = BatchResult{Answers: answers, Stats: m.st, Err: m.err}
		if opts.OnResult != nil {
			opts.OnResult(m.i, results[m.i])
		}
	}

	// Prologue: validation, shared plan resolution, one processor per
	// item. Each processor owns its item's private sequential RNG
	// streams, exactly as a sequential loop over the engine would.
	planErrs := ResolveBatchPlans(items)
	var pool *permPool
	if opts.SharedPerms {
		pool = newPermPool()
	}
	for i := range items {
		m := &batchMember{i: i, item: &items[i]}
		members[i] = m
		if planErrs[i] != nil {
			m.err = planErrs[i]
			continue
		}
		params := items[i].Params
		if params.Analytic {
			// SharedPerms is a Monte Carlo optimization; analytic items
			// keep their cache and draw nothing.
		} else if opts.SharedPerms {
			// Shared-permutation refinement addresses every probability
			// by (seed, source, column): the pool is the memoization, and
			// a stream-positional cache would mix contracts.
			params.Cache = nil
		}
		proc, err := NewProcessor(idx, params)
		if err != nil {
			m.err = err
			continue
		}
		if opts.SharedPerms && !params.Analytic {
			proc.permPool = pool
		}
		m.proc = proc
		m.st.Plan = proc.params.Plan
	}

	// Inference: in item order, each on its item's own stream (and its
	// own per-item timeout window), so each processor's scorer/pruner
	// stream is positioned exactly where a solo query would leave it when
	// refinement starts.
	for _, m := range members {
		if m.err != nil {
			continue
		}
		if m.item.Graph != nil {
			m.graph = m.item.Graph
			m.st.QueryVertices = m.graph.NumVertices()
			m.st.QueryEdges = m.graph.NumEdges()
		} else if m.item.Matrix == nil {
			m.err = ErrNoBatchQuery
			continue
		} else {
			ictx, cancel := batchWindow(ctx, opts.ItemTimeout)
			start := time.Now()
			ec := m.proc.newExec(ictx)
			q, err := m.proc.inferQueryGraph(ec, m.item.Matrix)
			m.chargeIO(ec)
			ec.Close()
			cancel()
			if err != nil {
				m.err = err
				continue
			}
			m.graph = q
			m.st.InferQuery = time.Since(start)
			m.st.QueryVertices = q.NumVertices()
			m.st.QueryEdges = q.NumEdges()
			m.proc.params.Trace.Record(obs.StageInfer, start, m.st.InferQuery, m.item.Matrix.NumGenes(), q.NumEdges())
		}
		switch {
		case hasDuplicateGenes(m.graph):
			m.dupGenes = true
		case m.graph.NumEdges() == 0:
			m.zeroEdges = true
		default:
			m.trav = buildTravState(m.proc, m.graph)
		}
	}

	// Shared traversal, one descent per γ-group (chunked to the liveness
	// bitmask width). Groups form in item order, so group execution order
	// is deterministic.
	for _, group := range groupTraversals(members) {
		bst.Groups++
		gctx, cancel := batchWindow(ctx, opts.ItemTimeout)
		gStart := time.Now()
		err := batchTraverse(gctx, idx, group)
		gDur := time.Since(gStart)
		cancel()
		for _, m := range group {
			m.st.Traversal = gDur
			if err != nil {
				m.err = err
				continue
			}
			m.proc.params.Trace.Record(obs.StageTraverse, gStart, gDur, m.st.NodePairsVisited, len(m.pairs))
		}
	}

	// Refinement: strictly in item order. With a shared edge-probability
	// cache this reproduces the sequential loop's cache-warmth
	// progression exactly; with SharedPerms the order is immaterial but
	// kept for ordered streaming.
	for _, m := range members {
		if m.err != nil || m.done {
			finish(m, nil)
			continue
		}
		if m.dupGenes {
			// Gene labels are unique within every matrix, so a query
			// repeating a gene can never embed injectively.
			finish(m, nil)
			continue
		}
		rctx, cancel := batchWindow(ctx, opts.ItemTimeout)
		answers, err := m.refineItem(rctx, opts)
		cancel()
		if err != nil {
			m.err = err
			finish(m, nil)
			continue
		}
		if k := m.item.K; k > 0 && m.proc.params.Sink == nil {
			mark := m.proc.params.Trace.Start(obs.StageTopK)
			in := len(answers)
			RankAnswers(answers)
			if len(answers) > k {
				answers = answers[:k]
			}
			mark.End(in, len(answers))
		}
		finish(m, answers)
	}
	if pool != nil {
		bst.PermFills, bst.PermProbes = pool.counters()
	}
	return results, bst
}

// refineItem runs one member's filter + refinement phases on a fresh
// per-item execution context, mirroring queryWithGraph's stage accounting.
func (m *batchMember) refineItem(ctx context.Context, opts BatchOptions) ([]Answer, error) {
	p := m.proc
	ec := p.newExec(ctx)
	defer func() { m.chargeIO(ec); ec.Close() }()
	tr := ec.Tracer()
	st := &m.st

	var sources []int
	if m.zeroEdges {
		// Degenerate query: no edges to traverse for; resolve via the
		// inverted file plus exact containment checks.
		tStart := time.Now()
		sources = p.sourcesContainingAll(m.graph.Genes())
		st.Traversal = time.Since(tStart)
		tr.Record(obs.StageTraverse, tStart, st.Traversal, 0, len(sources))
	} else {
		fStart := time.Now()
		sources = collectSources(queryScratchFor(ec), m.pairs, st)
		tr.Record(obs.StageFilter, fStart, time.Since(fStart), len(m.pairs), st.CandidateMatrices)
	}

	rStart := time.Now()
	var answers []Answer
	var err error
	if opts.SharedPerms && !p.params.Analytic && p.params.Sink == nil && !ec.Parallel() {
		answers, err = p.refineShared(ec, m.graph, sources, st)
	} else {
		answers, err = p.refine(ec, m.graph, sources, st)
	}
	st.Refinement = time.Since(rStart)
	if err != nil {
		return nil, err
	}
	survivors := len(sources) - st.MatricesPrunedL5
	tr.Record(obs.StageMarkov, rStart, st.MarkovPrune, len(sources), survivors)
	tr.Record(obs.StageMonteCarlo, rStart, st.MonteCarlo, survivors, len(answers))
	st.Total = st.InferQuery + st.Traversal + st.Refinement
	return answers, nil
}

// chargeIO folds one execution context's page accounting into the
// member's stats (items use one context per phase, unlike a solo query's
// single context, so the counters accumulate).
func (m *batchMember) chargeIO(ec *exec.Context) {
	io := ec.IO().Stats()
	m.st.IOCost += io.Accesses
	m.st.IOHits += io.Hits
}

// refineShared is sequential refinement under the shared-permutation
// contract: every candidate draws from its own (Seed, source)-addressed
// streams (the refineParallel convention), so results are independent of
// batch composition and candidate order, and the exact edge probabilities
// come from the shared permutation pool via verifyExact.
func (p *Processor) refineShared(ec *exec.Context, q *grn.Graph, sources []int, st *Stats) ([]Answer, error) {
	qEdges := q.Edges()
	ws := queryScratchFor(ec).worker(0)
	var answers []Answer
	for _, src := range sources {
		if err := ec.Err(); err != nil {
			return nil, err
		}
		sc, pr := p.primeScorers(ws, uint64(int64(src)))
		o := p.verifyCandidate(ec.IO(), q, qEdges, src, sc, pr, &ws.bufs)
		st.applyCandidate(o)
		if o.answer != nil {
			answers = append(answers, *o.answer)
		}
	}
	return answers, nil
}

// batchWindow derives one phase's context: the batch context bounded by
// the per-item timeout when one is configured.
func batchWindow(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return context.WithCancel(ctx)
}

// travGroupKey identifies one shared-traversal compatibility class: the
// parameters the descent itself reads. Queries in one group share every
// node pop and differ only in their per-query admission tests.
type travGroupKey struct {
	gamma                                float64
	oneSided                             bool
	disIndex, disPivot, disSig, disRange bool
}

func memberGroupKey(p Params) travGroupKey {
	return travGroupKey{
		gamma:    p.Gamma,
		oneSided: p.OneSided,
		disIndex: p.DisableIndexPruning,
		disPivot: p.DisablePivotPruning,
		disSig:   p.DisableSignatures,
		disRange: p.DisableGeneRange,
	}
}

// groupTraversals buckets the traversable members into γ-groups in item
// order, chunking each group to the 64-query liveness-mask width.
func groupTraversals(members []*batchMember) [][]*batchMember {
	var order []travGroupKey
	byKey := make(map[travGroupKey][]*batchMember)
	for _, m := range members {
		if m.err != nil || m.trav == nil {
			continue
		}
		k := memberGroupKey(m.proc.params)
		if _, ok := byKey[k]; !ok {
			order = append(order, k)
		}
		byKey[k] = append(byKey[k], m)
	}
	var out [][]*batchMember
	for _, k := range order {
		g := byKey[k]
		for len(g) > maskWidth {
			out = append(out, g[:maskWidth])
			g = g[maskWidth:]
		}
		if len(g) > 0 {
			out = append(out, g)
		}
	}
	return out
}

// maskWidth is the liveness bitmask width: the maximum number of queries
// one shared descent serves. Larger groups chunk into several descents.
const maskWidth = 64

// travState is one member's per-query traversal state: the highest-degree
// query vertex, its neighbor set, and the bit-vector signatures of the
// line 9–13 admission tests (mirrors Processor.traverse's prologue).
type travState struct {
	gsGene        gene.ID
	gsF           float64
	neighborGenes map[gene.ID]bool
	neighborF     []float64
	qVfS, qVfT    *bitvec.Vector
	qVdS, qVdT    *bitvec.Vector
}

func buildTravState(p *Processor, q *grn.Graph) *travState {
	b := p.idx.Bits()
	ts := &travState{neighborGenes: make(map[gene.ID]bool)}
	gs := q.MaxDegreeVertex()
	ts.gsGene = q.Gene(gs)
	ts.gsF = float64(ts.gsGene)
	ts.qVfS = bitvec.New(b)
	ts.qVfS.Set(bitvec.HashGene(ts.gsGene, b))
	ts.qVfT = bitvec.New(b)
	ts.qVdS = p.idx.Inverted().Sources(ts.gsGene).Clone()
	ts.qVdT = bitvec.New(b)
	for _, t := range q.Neighbors(gs) {
		tg := q.Gene(t)
		ts.neighborGenes[tg] = true
		ts.qVfT.Set(bitvec.HashGene(tg, b))
		ts.qVdT.OrInPlace(p.idx.Inverted().Sources(tg))
	}
	for g := range ts.neighborGenes {
		ts.neighborF = append(ts.neighborF, float64(g))
	}
	sort.Float64s(ts.neighborF)
	return ts
}

// sideContainsS reports whether the node's gene-ID MBR range contains the
// member's highest-degree query gene (the s-side range test).
func (ts *travState) sideContainsS(mbr rstar.Rect, geneDim int) bool {
	return mbr.Min[geneDim] <= ts.gsF && ts.gsF <= mbr.Max[geneDim]
}

// anyNeighborIn reports whether some neighbor gene ID lies within the
// node's gene-ID MBR range (the t-side range test).
func (ts *travState) anyNeighborIn(mbr rstar.Rect, geneDim int) bool {
	lo, hi := mbr.Min[geneDim], mbr.Max[geneDim]
	i := sort.SearchFloat64s(ts.neighborF, lo)
	return i < len(ts.neighborF) && ts.neighborF[i] <= hi
}

// maskedPairItem is one shared-queue element: a node pair plus the
// liveness mask of the member queries whose admission chain reached it.
type maskedPairItem struct {
	key  int // node level: smaller pops first => depth-first descent
	seq  int // insertion sequence for deterministic tie-breaking
	a, b *rstar.Node
	mask uint64
}

type maskedPairQueue []maskedPairItem

func (q maskedPairQueue) Len() int { return len(q) }
func (q maskedPairQueue) Less(i, j int) bool {
	if q[i].key != q[j].key {
		return q[i].key < q[j].key
	}
	return q[i].seq < q[j].seq
}
func (q maskedPairQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *maskedPairQueue) Push(x any)   { *q = append(*q, x.(maskedPairItem)) }
func (q *maskedPairQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// batchTraverse is the shared pairwise priority-queue descent for one
// γ-group (Figure 4 lines 2–27, evaluated per member at every entry).
// The priority key of a pair is the minimum of its member queries' solo
// keys — every solo key is the node level, so the shared queue preserves
// each member's depth-first visit order. Every page is touched once per
// pop on the group's shared reader; the group's I/O totals are charged to
// every member's stats afterwards (each member's traversal needed those
// pages — the engine just paid for them once).
//
// A member retires from the descent when no queued pair carries its bit
// any longer (its admission chain is exhausted); a cancelled or timed-out
// group context aborts the whole group at the next check boundary.
func batchTraverse(ctx context.Context, idx *index.Index, group []*batchMember) error {
	p0 := group[0].proc.params
	d := idx.D()
	geneDim := 2 * d
	gamma := p0.Gamma
	oneSided := p0.OneSided
	io := idx.NewReader()
	defer func() {
		iost := io.Stats()
		for _, m := range group {
			m.st.IOCost += iost.Accesses
			m.st.IOHits += iost.Hits
		}
	}()

	// Group-level neighbor-gene → member-mask table: one leaf-entry scan
	// serves every member at once (leafScanGroup) instead of one scan per
	// live member, and the pivot upper bound — a function of the point
	// pair and the group-uniform (γ, side) alone — is computed once per
	// point pair for the whole group.
	maxNbr := gene.ID(0)
	for _, m := range group {
		for g := range m.trav.neighborGenes {
			if g > maxNbr {
				maxNbr = g
			}
		}
	}
	nbrMask := make([]uint64, int(maxNbr)+1)
	for bi, m := range group {
		bit := uint64(1) << uint(bi)
		for g := range m.trav.neighborGenes {
			nbrMask[g] |= bit
		}
	}

	tree := idx.Tree()
	root := tree.Root()
	pq := make(maskedPairQueue, 0, 64)
	heap.Init(&pq)
	seq := 0
	push := func(key int, a, b *rstar.Node, mask uint64) {
		heap.Push(&pq, maskedPairItem{key: key, seq: seq, a: a, b: b, mask: mask})
		seq++
	}

	// Seed with the root paired against itself; admission per member.
	idx.TouchNodeTo(io, root)
	rootMask := uint64(0)
	for bi, m := range group {
		if p0.DisableSignatures || rootAdmissibleFor(idx, root, m.trav) {
			rootMask |= 1 << uint(bi)
		}
	}
	if rootMask != 0 {
		push(root.Level(), root, root, rootMask)
	}

	pops := 0
	for pq.Len() > 0 {
		if pops%cancelCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		it := heap.Pop(&pq).(maskedPairItem)
		pops++
		for ms := it.mask; ms != 0; ms &= ms - 1 {
			group[bits.TrailingZeros64(ms)].st.NodePairsVisited++
		}
		ea, eb := it.a, it.b
		idx.TouchNodeTo(io, ea)
		if eb != ea {
			idx.TouchNodeTo(io, eb)
		}
		if ea.IsLeaf() {
			// Lines 16–21: one shared pass over the leaf entry pairs serves
			// every live member.
			leafScanGroup(group, nbrMask, it.mask, ea, eb,
				d, gamma, oneSided, p0.DisablePivotPruning)
			continue
		}
		// Lines 22–27: expand child pairs, admission per member.
		for i := 0; i < ea.NumEntries(); i++ {
			ca := ea.Child(i)
			fa, da := idx.NodeSignature(ca)
			sMask := uint64(0)
			for ms := it.mask; ms != 0; ms &= ms - 1 {
				bi := bits.TrailingZeros64(ms)
				m := group[bi]
				// Gene-ID range test: the s-side subtree must contain g_s.
				if !p0.DisableGeneRange && !m.trav.sideContainsS(ca.MBR(), geneDim) {
					m.st.NodePairsPruned += eb.NumEntries()
					continue
				}
				if !p0.DisableSignatures && !m.trav.qVfS.Intersects(fa) {
					m.st.NodePairsPruned += eb.NumEntries()
					continue
				}
				sMask |= 1 << uint(bi)
			}
			if sMask == 0 {
				continue
			}
			for j := 0; j < eb.NumEntries(); j++ {
				cb := eb.Child(j)
				fb, db := idx.NodeSignature(cb)
				// Lemma 6 depends only on the MBR pair and the group's
				// shared (γ, side): memoize it across members.
				l6 := -1
				cMask := uint64(0)
				for ms := sMask; ms != 0; ms &= ms - 1 {
					bi := bits.TrailingZeros64(ms)
					m := group[bi]
					// Gene-ID range test on the t side.
					if !p0.DisableGeneRange && !m.trav.anyNeighborIn(cb.MBR(), geneDim) {
						m.st.NodePairsPruned++
						continue
					}
					// Line 25: gene-name and data-source signature tests.
					if !p0.DisableSignatures &&
						(!m.trav.qVfT.Intersects(fb) || !m.trav.qVdS.IntersectsAll(da, m.trav.qVdT, db)) {
						m.st.NodePairsPruned++
						continue
					}
					// Line 25 (cont.): Lemma 6 index pruning.
					if !p0.DisableIndexPruning {
						if l6 < 0 {
							if index.IndexPrunable(ca.MBR(), cb.MBR(), d, gamma, oneSided) {
								l6 = 1
							} else {
								l6 = 0
							}
						}
						if l6 == 1 {
							m.st.NodePairsPruned++
							continue
						}
					}
					cMask |= 1 << uint(bi)
				}
				if cMask != 0 {
					push(it.key-1, ca, cb, cMask)
				}
			}
		}
	}
	return nil
}

// leafScanGroup runs the leaf-level point-pair checks (lines 16–21) for
// every live member in one pass over the entry pairs. Per member it is
// byte-identical to the solo scan — the same pairs pass the same gene,
// source and pivot filters in the same (i, j) order — but the entry
// iteration, the gene lookups and the pivot upper bound are paid once
// per pair for the whole group instead of once per member (the bound
// depends only on the points and the group-uniform γ and side). The
// s-side gene filter stays a direct per-member integer comparison —
// cheaper than hashing for the group sizes the mask admits — while the
// t-side neighbor filter indexes a dense gene-ID -> member-mask table
// built once per group — catalog gene IDs are small dense integers, so
// the array load replaces the per-iteration map hash a solo scan pays
// and answers for every member at once.
func leafScanGroup(group []*batchMember, nbrMask []uint64, mask uint64,
	ea, eb *rstar.Node, d int, gamma float64, oneSided, disPivot bool) {
	for i := 0; i < ea.NumEntries(); i++ {
		ia := ea.Item(i)
		ga := gene.ID(int32(ia.Point[len(ia.Point)-1]))
		aMask := uint64(0)
		for ms := mask; ms != 0; ms &= ms - 1 {
			bi := bits.TrailingZeros64(ms)
			if group[bi].trav.gsGene == ga {
				aMask |= 1 << uint(bi)
			}
		}
		if aMask == 0 {
			continue
		}
		srcA, colA := index.UnpackRef(ia.Ref)
		for j := 0; j < eb.NumEntries(); j++ {
			ib := eb.Item(j)
			gb := int(int32(ib.Point[len(ib.Point)-1]))
			if gb >= len(nbrMask) {
				continue
			}
			bMask := nbrMask[gb] & aMask
			if bMask == 0 {
				continue
			}
			srcB, colB := index.UnpackRef(ib.Ref)
			if srcA != srcB {
				continue // line 19: data source IDs must agree
			}
			// Line 20: pivot-based pruning on embedded points, shared.
			pruned := !disPivot &&
				index.PointUpperBound(ia.Point, ib.Point, d, oneSided) <= gamma
			for ms := bMask; ms != 0; ms &= ms - 1 {
				m := group[bits.TrailingZeros64(ms)]
				m.st.PointPairsChecked++
				if pruned {
					m.st.PointPairsPruned++
					continue
				}
				m.pairs = append(m.pairs, candidatePair{source: srcA, sCol: colA, tCol: colB})
			}
		}
	}
}

// rootAdmissibleFor mirrors rootAdmissible for one member's signatures.
func rootAdmissibleFor(idx *index.Index, root *rstar.Node, ts *travState) bool {
	f, dsig := idx.NodeSignature(root)
	return ts.qVfS.Intersects(f) && ts.qVfT.Intersects(f) && ts.qVdS.IntersectsAll(dsig, ts.qVdT)
}

// permPool is the batch-wide shared permutation store of the SharedPerms
// mode: one stats.PermBatch per (seed, source, target column, R),
// filled from a stream addressed by those coordinates alone — so an
// entry's contents never depend on when (or whether) it was cached, and
// capacity overflow only costs a refill, never a different answer.
// Probes are mutex-serialized: parallel refinement workers of one batch
// share the pool.
type permPool struct {
	mu      sync.Mutex
	est     *stats.Estimator
	entries map[permPoolKey]*permPoolEntry
	bytes   int
	// overflow is the fill-and-discard scratch used once the byte budget
	// is exhausted; results are identical either way.
	overflow permPoolEntry
	srcs     [1][]float64
	dst      [1]float64
	fills    int
	probes   int
}

type permPoolKey struct {
	seed    uint64
	src     int
	col     int
	samples int
}

type permPoolEntry struct {
	pb stats.PermBatch
	xt []float64
}

// maxPermPoolBytes bounds the pool's materialized permutation matrices
// (per batch, per shard). Past the budget, probes refill the overflow
// scratch instead of caching — deterministic, just slower.
const maxPermPoolBytes = 64 << 20

// permPoolTag separates the pool's seed coordinates from the
// per-candidate refinement streams derived from the same base seed.
const permPoolTag = 0x70b5a7c4e1d2938f

func newPermPool() *permPool {
	return &permPool{est: stats.NewEstimator(0), entries: make(map[permPoolKey]*permPoolEntry)}
}

func (p *permPool) counters() (fills, probes int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fills, p.probes
}

// prob answers one exact edge probability from the shared permutations of
// (seed, src, col): the R permutations of xt are drawn once per batch
// from the (seed, src, col)-addressed stream, and each probe is one
// blocked inner-product pass of xa against them.
func (p *permPool) prob(seed uint64, src, col, samples int, oneSided bool, xa, xt []float64) float64 {
	if samples <= 0 {
		samples = stats.DefaultSamples
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	key := permPoolKey{seed: seed, src: src, col: col, samples: samples}
	e, ok := p.entries[key]
	if !ok {
		cost := samples * len(xt) * 8
		if p.bytes+cost <= maxPermPoolBytes {
			e = &permPoolEntry{}
			p.bytes += cost
			p.entries[key] = e
		} else {
			e = &p.overflow
		}
		e.xt = append(e.xt[:0], xt...)
		p.est.Reseed(randgen.SeedFrom(seed^seedScorer, permPoolTag, uint64(src), uint64(col)))
		e.pb.Fill(p.est, e.xt, samples)
		p.fills++
	}
	p.probes++
	p.srcs[0] = xa
	e.pb.EdgeProbabilitiesInto(p.dst[:], p.srcs[:], oneSided)
	p.srcs[0] = nil
	return p.dst[0]
}

// ErrNoBatchQuery rejects batch items carrying neither a query matrix
// nor a pre-inferred query graph.
var ErrNoBatchQuery = errors.New("core: batch item has no query matrix or graph")
