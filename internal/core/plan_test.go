package core_test

import (
	"testing"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/stats"
	"github.com/imgrn/imgrn/internal/synth"
)

// TestDefaultPlanGoldenFingerprint pins the planner seam's core contract:
// explicitly resolving the fixed default plan and pinning it on the
// params reproduces the golden fingerprints byte-for-byte, on both the
// scalar and the batch-kernel suites. A planner regression that perturbs
// the default pipeline (samples, stage set, RNG consumption) fails here
// before it can silently ship.
func TestDefaultPlanGoldenFingerprint(t *testing.T) {
	for _, tc := range []struct {
		name   string
		params core.Params
		golden string
	}{
		{"scalar", core.Params{Gamma: 0.5, Alpha: 0.4, Samples: 48, Seed: 9,
			DisableBatchInference: true}, "testdata/golden.txt"},
		{"batch", core.Params{Gamma: 0.5, Alpha: 0.4, Samples: 48, Seed: 9},
			"testdata/golden_batch.txt"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resolved, err := tc.params.ResolvePlan()
			if err != nil {
				t.Fatal(err)
			}
			if resolved.Plan == nil {
				t.Fatal("ResolvePlan left Plan nil")
			}
			if resolved.Plan.Adaptive || resolved.Plan.Mode() != "fixed" {
				t.Fatalf("default plan is not fixed: %+v", resolved.Plan)
			}
			// The golden fixture runs with the pre-resolved params — any
			// difference between "plan applied" and "no planner at all"
			// shows up as a fingerprint diff.
			compareGolden(t, tc.golden, goldenFingerprint(t, resolved))
		})
	}
}

// TestAccuracyChoosesLemma2Samples: a requested (ε, δ) = (0.1, 0.05)
// must make the plan run with exactly R = SampleSize(0.1, 0.05) = 1107
// Monte Carlo samples, and the stats must report that plan.
func TestAccuracyChoosesLemma2Samples(t *testing.T) {
	want := stats.SampleSize(0.1, 0.05)
	if want != 1107 {
		t.Fatalf("SampleSize(0.1, 0.05) = %d, want the documented 1107", want)
	}

	params := core.Params{Gamma: 0.5, Alpha: 0.4, Eps: 0.1, Delta: 0.05, Seed: 3}
	resolved, err := params.ResolvePlan()
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Samples != want {
		t.Errorf("resolved Samples = %d, want %d", resolved.Samples, want)
	}
	if pl := resolved.Plan; pl == nil || !pl.FromAccuracy || pl.Samples != want {
		t.Errorf("plan provenance wrong: %+v", resolved.Plan)
	}

	// End to end on a small database: the executed query must report the
	// accuracy-derived plan in its stats.
	ds, err := synth.GenerateDatabase(synth.DBParams{N: 10, NMin: 8, NMax: 12,
		LMin: 16, LMax: 20, Seed: 11, Dist: synth.Gaussian})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(ds.DB, index.Options{D: 2, Samples: 16, Seed: 11, BufferPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	proc, err := core.NewProcessor(idx, params)
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := ds.ExtractQuery(randgen.New(5), 4)
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := proc.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if st.Plan == nil {
		t.Fatal("query stats carry no plan")
	}
	if st.Plan.EffectiveSamples() != want || !st.Plan.FromAccuracy {
		t.Errorf("stats plan = %+v, want FromAccuracy with R=%d", st.Plan, want)
	}
	if st.Plan.Eps != 0.1 || st.Plan.Delta != 0.05 {
		t.Errorf("stats plan lost the accuracy request: %+v", st.Plan)
	}
}

// TestValidateRejectsBadAccuracy: invalid (Eps, Delta) surface as a
// Validate error — the route to an HTTP 400 — never a panic.
func TestValidateRejectsBadAccuracy(t *testing.T) {
	for _, c := range []struct{ eps, delta float64 }{
		{-0.1, 0.05}, {0.1, 0}, {0, 0.05}, {0.1, 1}, {0.1, -2},
	} {
		p := core.Params{Gamma: 0.5, Alpha: 0.4, Eps: c.eps, Delta: c.delta}
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(eps=%v, delta=%v): want error", c.eps, c.delta)
		}
		if _, err := core.NewProcessor(nil, p); err == nil {
			t.Errorf("NewProcessor(eps=%v, delta=%v): want error", c.eps, c.delta)
		}
	}
	ok := core.Params{Gamma: 0.5, Alpha: 0.4, Eps: 0.1, Delta: 0.05}
	if err := ok.Validate(); err != nil {
		t.Errorf("Validate(valid accuracy): %v", err)
	}
}

// TestResolvePlanIdempotent: resolving twice is the same as resolving
// once — the coordinator resolves before the scatter and the processor
// resolves again on each shard.
func TestResolvePlanIdempotent(t *testing.T) {
	p := core.Params{Gamma: 0.5, Alpha: 0.4, Eps: 0.1, Delta: 0.05, Seed: 3}
	once, err := p.ResolvePlan()
	if err != nil {
		t.Fatal(err)
	}
	twice, err := once.ResolvePlan()
	if err != nil {
		t.Fatal(err)
	}
	if once.Plan != twice.Plan {
		t.Error("second resolution replaced the plan pointer")
	}
	if once.Samples != twice.Samples ||
		once.DisablePivotPruning != twice.DisablePivotPruning ||
		once.DisableSignatures != twice.DisableSignatures ||
		once.DisableMarkovPruning != twice.DisableMarkovPruning ||
		once.DisableBatchInference != twice.DisableBatchInference {
		t.Errorf("resolution not idempotent: %+v vs %+v", once, twice)
	}
}
