package core_test

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/synth"
)

// goldenBatchFingerprint pins the multi-query batch engine the same way
// golden_test.go pins the solo pipeline: the fixed-seed workload runs
// once through core.QueryBatch and once as a sequential loop of fresh
// per-query processors over the same shared edge-probability cache (the
// documented byte-identity reference), the two fingerprints must match
// each other exactly, and the batch fingerprint is pinned to a golden
// file. I/O counters are excluded: a shared γ-group traversal charges
// the group's page touches to every member (DESIGN.md §14).
func goldenBatchFingerprint(t *testing.T, params core.Params) string {
	t.Helper()
	ds, err := synth.GenerateDatabase(synth.DBParams{N: 120, NMin: 20, NMax: 40, LMin: 20, LMax: 30, Seed: 7, Dist: synth.Gaussian})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := index.Build(ds.DB, index.Options{D: 2, Samples: 24, Seed: 7, Bits: 512, BufferPages: 256})
	if err != nil {
		t.Fatal(err)
	}
	rng := randgen.New(99)
	items := make([]core.BatchItem, 6)
	for i := range items {
		q, _, err := ds.ExtractQuery(rng, 5)
		if err != nil {
			t.Fatal(err)
		}
		p := params
		items[i] = core.BatchItem{Matrix: q, Params: p}
	}

	fingerprint := func(i int, a []core.Answer, st core.Stats) string {
		var sb strings.Builder
		fmt.Fprintf(&sb, "q%d answers=%d cand=%d genes=%d l5=%d npv=%d npp=%d ppc=%d ppp=%d qv=%d qe=%d ch=%d cm=%d\n",
			i, len(a), st.CandidateMatrices, st.CandidateGenes, st.MatricesPrunedL5,
			st.NodePairsVisited, st.NodePairsPruned, st.PointPairsChecked, st.PointPairsPruned,
			st.QueryVertices, st.QueryEdges, st.CacheHits, st.CacheMisses)
		for _, an := range a {
			fmt.Fprintf(&sb, "  src=%d prob=%.17g edges=%d\n", an.Source, an.Prob, len(an.Edges))
		}
		return sb.String()
	}

	// Sequential reference: fresh processor per query, shared cache.
	var seq strings.Builder
	seqCache := core.NewEdgeProbCache(1 << 12)
	for i := range items {
		p := items[i].Params
		p.Cache = seqCache
		proc, err := core.NewProcessor(idx, p)
		if err != nil {
			t.Fatal(err)
		}
		a, st, err := proc.Query(items[i].Matrix)
		if err != nil {
			t.Fatal(err)
		}
		seq.WriteString(fingerprint(i, a, st))
	}

	batchCache := core.NewEdgeProbCache(1 << 12)
	for i := range items {
		items[i].Params.Cache = batchCache
	}
	results, bst := core.QueryBatch(context.Background(), idx, items, core.BatchOptions{})
	if bst.Errors != 0 {
		t.Fatalf("batch stats: %+v", bst)
	}
	var got strings.Builder
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		got.WriteString(fingerprint(i, r.Answers, r.Stats))
	}
	if got.String() != seq.String() {
		t.Errorf("batch diverged from its sequential reference:\n batch:\n%s\n sequential:\n%s",
			got.String(), seq.String())
	}
	return got.String()
}

// TestMultiQueryGoldenFingerprint pins QueryBatch under the scalar
// inference kernel to a fixed-seed fingerprint. Regenerate deliberately
// with GOLDEN_WRITE=1 after an intentional algorithm change.
func TestMultiQueryGoldenFingerprint(t *testing.T) {
	got := goldenBatchFingerprint(t, core.Params{Gamma: 0.5, Alpha: 0.4, Samples: 48, Seed: 9,
		DisableBatchInference: true})
	compareGolden(t, "testdata/golden_multi.txt", got)
}

// TestMultiQueryBatchKernelGoldenFingerprint pins QueryBatch under the
// batched inference kernel (the default), whose per-column RNG
// consumption gives it a legitimately different fingerprint.
func TestMultiQueryBatchKernelGoldenFingerprint(t *testing.T) {
	got := goldenBatchFingerprint(t, core.Params{Gamma: 0.5, Alpha: 0.4, Samples: 48, Seed: 9})
	compareGolden(t, "testdata/golden_multi_batch.txt", got)
}
