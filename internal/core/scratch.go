package core

import (
	"github.com/imgrn/imgrn/internal/exec"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/pagestore"
	"github.com/imgrn/imgrn/internal/randgen"
)

// Per-query scratch pooled through the exec.Arena (DESIGN.md §11).
//
// The parallel refinement path used to allocate a fresh scorer, pruner
// (each an estimator with its own RNG and permutation scratch), column
// buffers, and outcome slices per candidate — a per-query allocation bill
// that grew with the worker count. The arena keeps one queryScratch alive
// across queries: per-worker scorer/pruner pairs are Reseed-ed per work
// unit instead of rebuilt (observationally identical — every estimator
// entry point refills its scratch before reading it), and the flat result
// slices are resized in place.
//
// Nothing stored here may alias memory that escapes into an Answer: the
// answer's Edges and Genes slices are freshly allocated in verifyExact,
// and the outcome/reader slices are consumed before the query returns.

// workerScratch is the per-worker-slot verification state. ForEachWorker
// guarantees calls sharing a slot never run concurrently, so no locking
// is needed; determinism is preserved because each work unit Reseed-s the
// streams from its own (Seed, unit) coordinates before drawing.
type workerScratch struct {
	sc   *grn.RandomizedScorer
	pr   *grn.Pruner
	bufs colBufs
}

// streamCand is one candidate of the streamed (top-k sink) refinement:
// its source and full Lemma-5 upper-bound product.
type streamCand struct {
	src int
	ub  float64
}

// queryScratch is internal/core's compartment of the exec.Arena.
type queryScratch struct {
	workers  []workerScratch
	outcomes []candOutcome
	readers  []*pagestore.Reader
	cands    []streamCand
	sources  []int
	scores   []float64
	pairs    []genePair

	sourceSet map[int]bool
	geneSet   map[[2]int]bool
}

// genePair is one (s, t) work unit of parallel scalar query inference.
type genePair struct{ s, t int }

// queryScratchFor returns the query's pooled scratch, creating and
// registering it on first use. Without an arena (legacy Background
// contexts) it degrades to a fresh, unpooled scratch per call.
func queryScratchFor(ec *exec.Context) *queryScratch {
	a := ec.Arena()
	if qs, ok := a.Slot(exec.ArenaQueryScratch).(*queryScratch); ok {
		return qs
	}
	qs := &queryScratch{}
	a.SetSlot(exec.ArenaQueryScratch, qs)
	return qs
}

// worker returns the scratch of worker slot w, growing the slot table on
// first use. Growing is NOT safe under a concurrent fan-out: parallel
// paths must call growWorkers before ForEachWorker so that concurrent
// worker(w) calls only index the pre-sized table.
func (qs *queryScratch) worker(w int) *workerScratch {
	qs.growWorkers(w + 1)
	return &qs.workers[w]
}

// growWorkers pre-sizes the slot table to n slots. Must be called from
// the fan-out's calling goroutine, before any worker runs.
func (qs *queryScratch) growWorkers(n int) {
	for len(qs.workers) < n {
		qs.workers = append(qs.workers, workerScratch{})
	}
}

// primeScorers readies worker scratch ws for one work unit: the pooled
// scorer/pruner pair is reseeded from the query Seed and the unit's own
// coordinates, and every params-derived knob is reset (the arena is
// shared across queries with different Params). The result is
// observationally identical to the pair scorerFor used to construct per
// unit.
func (p *Processor) primeScorers(ws *workerScratch, coords ...uint64) (*grn.RandomizedScorer, *grn.Pruner) {
	if ws.sc == nil {
		ws.sc = grn.NewRandomizedScorer(0, 0)
		ws.pr = grn.NewPruner(0, 0)
	}
	sc, pr := ws.sc, ws.pr
	sc.Reseed(randgen.SeedFrom(p.params.Seed^seedScorer, coords...))
	sc.Samples = p.params.Samples
	sc.OneSided = p.params.OneSided
	sc.Batch = !p.params.DisableBatchInference
	pr.Reseed(randgen.SeedFrom(p.params.Seed^seedPruner, coords...))
	pr.BoundSamples = p.params.BoundSamples
	if pr.BoundSamples <= 0 {
		pr.BoundSamples = grn.DefaultBoundSamples
	}
	pr.OneSided = p.params.OneSided
	return sc, pr
}
