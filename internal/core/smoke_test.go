package core_test

import (
	"testing"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/synth"
)

// TestEndToEndSmoke builds a small database, indexes it, and checks that
// queries extracted from database matrices are answered and that the
// indexed processor agrees with the exhaustive Baseline when both use the
// deterministic analytic estimator.
func TestEndToEndSmoke(t *testing.T) {
	ds, err := synth.GenerateDatabase(synth.DBParams{
		N: 60, NMin: 10, NMax: 20, LMin: 12, LMax: 20,
		Dist: synth.Uniform, GenePool: 60, Seed: 7,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	idx, err := index.Build(ds.DB, index.Options{D: 2, Samples: 48, Seed: 7})
	if err != nil {
		t.Fatalf("index: %v", err)
	}
	params := core.Params{Gamma: 0.5, Alpha: 0.3, Seed: 7, Analytic: true}
	proc, err := core.NewProcessor(idx, params)
	if err != nil {
		t.Fatalf("processor: %v", err)
	}
	base, err := core.BuildBaseline(ds.DB, params)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	ls, err := core.NewLinearScan(ds.DB, params)
	if err != nil {
		t.Fatalf("linearscan: %v", err)
	}

	rng := randgen.New(99)
	found := 0
	for qi := 0; qi < 8; qi++ {
		mq, origin, err := ds.ExtractQuery(rng, 4)
		if err != nil {
			t.Fatalf("extract query %d: %v", qi, err)
		}
		// Compare on the same inferred query graph so all three engines
		// decide over identical edges.
		q, err := proc.InferQueryGraph(mq)
		if err != nil {
			t.Fatalf("infer query: %v", err)
		}
		ans, st, err := proc.QueryGraph(q)
		if err != nil {
			t.Fatalf("imgrn query: %v", err)
		}
		bAns, _, err := base.QueryGraph(q)
		if err != nil {
			t.Fatalf("baseline query: %v", err)
		}
		lAns, _, err := ls.QueryGraph(q)
		if err != nil {
			t.Fatalf("linearscan query: %v", err)
		}
		got := sourcesOf(ans)
		want := sourcesOf(bAns)
		if !sameSet(got, want) {
			t.Errorf("query %d (origin %d, %d edges): IM-GRN answers %v != Baseline %v",
				qi, origin, q.NumEdges(), got, want)
		}
		if !sameSet(sourcesOf(lAns), want) {
			t.Errorf("query %d: LinearScan answers %v != Baseline %v", qi, sourcesOf(lAns), want)
		}
		for _, a := range ans {
			if a.Source == origin {
				found++
			}
		}
		if st.IOCost == 0 && q.NumEdges() > 0 {
			t.Errorf("query %d: expected nonzero I/O cost", qi)
		}
	}
	if found == 0 {
		t.Errorf("no query matched its origin matrix; inference or matching is broken")
	}
}

func sourcesOf(ans []core.Answer) map[int]bool {
	out := make(map[int]bool, len(ans))
	for _, a := range ans {
		out[a.Source] = true
	}
	return out
}

func sameSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
