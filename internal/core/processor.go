package core

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/imgrn/imgrn/internal/bitvec"
	"github.com/imgrn/imgrn/internal/exec"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/obs"
	"github.com/imgrn/imgrn/internal/pagestore"
	"github.com/imgrn/imgrn/internal/rstar"
	"github.com/imgrn/imgrn/internal/vecmath"
)

// Processor answers IM-GRN queries over one index (Figure 4).
//
// A Processor is cheap to construct and is NOT safe for concurrent use in
// the sequential (Workers <= 1) mode: the Monte Carlo scorer and pruner
// advance a single deterministic RNG stream across queries. Create one
// Processor per in-flight query (the public Engine does exactly that) and
// use QueryContext to attach cancellation, deadlines, and a worker budget.
type Processor struct {
	idx    *index.Index
	params Params

	// scorer/pruner hold the single sequential (Workers <= 1) RNG streams.
	// They are built lazily (seqScorers): the parallel and streamed paths
	// address their randomness per work unit and never touch them, and the
	// sharded scatter path constructs one Processor per shard per query, so
	// eager construction charged every scatter an estimator pair it never
	// used.
	scorer   *grn.RandomizedScorer
	analytic grn.AnalyticScorer
	pruner   *grn.Pruner

	// permPool, when non-nil, replaces per-candidate Monte Carlo draws in
	// verifyExact with probes against a batch-wide shared permutation
	// store (QueryBatch's SharedPerms mode). Never set on analytic
	// processors.
	permPool *permPool
}

// NewProcessor returns a processor for idx with the given parameters.
// The query plan is resolved here: a nil params.Plan becomes the fixed
// default plan (byte-identical to the pre-planner pipeline), and the
// plan's decisions — sample count, prune-stage switches, inference
// kernel — are applied onto the effective params every stage reads.
func NewProcessor(idx *index.Index, params Params) (*Processor, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	params, err := params.ResolvePlan()
	if err != nil {
		return nil, err
	}
	return &Processor{
		idx:      idx,
		params:   params,
		analytic: grn.AnalyticScorer{OneSided: params.OneSided},
	}, nil
}

// seqScorers returns the processor's sequential scorer/pruner pair,
// constructing it on first use. The construction parameters are exactly
// those of the former eager constructor, so the sequential sample streams
// are byte-identical to the pre-lazy implementation.
func (p *Processor) seqScorers() (*grn.RandomizedScorer, *grn.Pruner) {
	if p.scorer == nil {
		sc := grn.NewRandomizedScorer(p.params.Seed^seedScorer, p.params.Samples)
		sc.OneSided = p.params.OneSided
		sc.Batch = !p.params.DisableBatchInference
		pr := grn.NewPruner(p.params.Seed^seedPruner, p.params.BoundSamples)
		pr.OneSided = p.params.OneSided
		p.scorer, p.pruner = sc, pr
	}
	return p.scorer, p.pruner
}

// Seed-space separation constants: the scorer and pruner streams must stay
// distinct, and the parallel path derives per-work-unit seeds from the
// same constants so Workers = 1 and the pre-parallel implementation agree.
const (
	seedScorer = 0xa5b35705f39c2d17
	seedPruner = 0x94d049bb133111eb
)

// Params returns the processor's parameters.
func (p *Processor) Params() Params { return p.params }

// newExec builds the per-query execution context: the caller's ctx, a
// fresh per-query I/O reader (cold buffer, private counters), the
// configured worker budget and scheduling grain, the optional trace
// collector, and a pooled scratch arena. Callers must Close the context
// (releasing the arena) once the query's answers have been assembled.
func (p *Processor) newExec(ctx context.Context) *exec.Context {
	return exec.New(ctx, p.idx.NewReader(), p.params.Workers).
		WithTracer(p.params.Trace).
		WithGrain(p.params.Grain).
		WithArena(exec.GrabArena())
}

// edgeProbVecWith computes the exact edge existence probability of two
// standardized vectors under the configured estimator, drawing Monte Carlo
// samples from the given scorer's stream.
func (p *Processor) edgeProbVecWith(sc *grn.RandomizedScorer, xa, xb []float64) float64 {
	if p.params.Analytic {
		l := len(xa)
		if l < 2 {
			return 0
		}
		cor := vecmath.Dot(xa, xb)
		z := math.Sqrt(float64(l - 1))
		if p.params.OneSided {
			return stdNormalCDF(cor * z)
		}
		return 2*stdNormalCDF(math.Abs(cor)*z) - 1
	}
	if p.params.OneSided {
		return sc.Est.EdgeProbability(xa, xb, sc.Samples)
	}
	return sc.Est.AbsEdgeProbability(xa, xb, sc.Samples)
}

func stdNormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// InferQueryGraph reconstructs the query GRN Q from the query matrix
// (Fig. 4 line 1), with Lemma-3 edge inference pruning ahead of each
// Monte Carlo estimate.
func (p *Processor) InferQueryGraph(mq *gene.Matrix) (*grn.Graph, error) {
	return p.inferQueryGraph(exec.Background(nil), mq)
}

// InferQueryGraphContext is InferQueryGraph under an explicit context:
// cancellation is honored and params.Workers > 1 fans the pair estimates
// out across the worker pool. The sharded coordinator uses it to infer the
// query graph once before scattering it over the shards.
func (p *Processor) InferQueryGraphContext(ctx context.Context, mq *gene.Matrix) (*grn.Graph, error) {
	ec := p.newExec(ctx)
	defer ec.Close()
	return p.inferQueryGraph(ec, mq)
}

// inferQueryGraph is InferQueryGraph under an execution context: with a
// worker budget it fans the O(n²) pair estimates out with per-pair seeds
// (see inferPrunedParallel); sequentially it reproduces the single-stream
// algorithm exactly.
func (p *Processor) inferQueryGraph(ec *exec.Context, mq *gene.Matrix) (*grn.Graph, error) {
	if p.params.Analytic {
		return grn.Infer(mq, p.analytic, p.params.Gamma)
	}
	if ec.Parallel() {
		return p.inferPrunedParallel(ec, mq)
	}
	begin := time.Now()
	sc, pr := p.seqScorers()
	g, st, err := grn.InferPruned(mq, sc, pr, p.params.Gamma)
	if err == nil && st.Kernel > 0 {
		ec.Tracer().Record(obs.StageInferKernel, begin, st.Kernel, st.Pairs, st.Estimated)
	}
	return g, err
}

// pairItem is one priority-queue element: a pair of same-level index nodes
// that may contain an interacting (query gene, neighbor gene) pair.
type pairItem struct {
	key  int // node level; smaller pops first => depth-first descent
	seq  int // insertion sequence for deterministic tie-breaking
	a, b *rstar.Node
}

type pairQueue []pairItem

func (q pairQueue) Len() int { return len(q) }
func (q pairQueue) Less(i, j int) bool {
	if q[i].key != q[j].key {
		return q[i].key < q[j].key
	}
	return q[i].seq < q[j].seq
}
func (q pairQueue) Swap(i, j int)        { q[i], q[j] = q[j], q[i] }
func (q *pairQueue) Push(x any)          { *q = append(*q, x.(pairItem)) }
func (q *pairQueue) Pop() any            { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }
func (q *pairQueue) PushItem(i pairItem) { heap.Push(q, i) }

// candidatePair is a surviving (source, column, column) gene pair.
type candidatePair struct {
	source     int
	sCol, tCol int
}

// Query runs the IM-GRN_Processing algorithm for query matrix mq and
// returns the matching data sources with statistics. Results are sorted by
// data source ID.
func (p *Processor) Query(mq *gene.Matrix) ([]Answer, Stats, error) {
	return p.QueryContext(context.Background(), mq)
}

// QueryContext is Query under an explicit context: traversal and
// refinement honor ctx cancellation and deadlines at loop boundaries, and
// params.Workers > 1 parallelizes query inference and candidate
// refinement across a bounded worker pool.
func (p *Processor) QueryContext(ctx context.Context, mq *gene.Matrix) ([]Answer, Stats, error) {
	var st Stats
	st.Plan = p.params.Plan
	start := time.Now()
	ec := p.newExec(ctx)
	defer ec.Close()

	// Line 1: infer the exact query graph Q.
	q, err := p.inferQueryGraph(ec, mq)
	if err != nil {
		return nil, st, fmt.Errorf("core: inferring query graph: %w", err)
	}
	st.InferQuery = time.Since(start)
	st.QueryVertices = q.NumVertices()
	st.QueryEdges = q.NumEdges()
	ec.Tracer().Record(obs.StageInfer, start, st.InferQuery, mq.NumGenes(), q.NumEdges())

	answers, err := p.queryWithGraph(ec, q, &st)
	if err != nil {
		return nil, st, err
	}
	p.finishStats(ec, &st, len(answers))
	st.Total = time.Since(start)
	return answers, st, nil
}

// finishStats fills the end-of-query counters shared by the entry points:
// per-query I/O accounting and the answer count.
func (p *Processor) finishStats(ec *exec.Context, st *Stats, answers int) {
	io := ec.IO().Stats()
	st.IOCost = io.Accesses
	st.IOHits = io.Hits
	st.Answers = answers
}

// QueryGraph answers an IM-GRN query for an already-inferred query GRN,
// e.g. a hand-drawn biomarker pattern.
func (p *Processor) QueryGraph(q *grn.Graph) ([]Answer, Stats, error) {
	return p.QueryGraphContext(context.Background(), q)
}

// QueryGraphContext is QueryGraph under an explicit context.
func (p *Processor) QueryGraphContext(ctx context.Context, q *grn.Graph) ([]Answer, Stats, error) {
	var st Stats
	st.Plan = p.params.Plan
	start := time.Now()
	ec := p.newExec(ctx)
	defer ec.Close()
	st.QueryVertices = q.NumVertices()
	st.QueryEdges = q.NumEdges()
	answers, err := p.queryWithGraph(ec, q, &st)
	if err != nil {
		return nil, st, err
	}
	p.finishStats(ec, &st, len(answers))
	st.Total = time.Since(start)
	return answers, st, nil
}

func (p *Processor) queryWithGraph(ec *exec.Context, q *grn.Graph, st *Stats) ([]Answer, error) {
	// Gene labels are unique within every matrix, so a query repeating a
	// gene can never embed injectively: no matrix can host it.
	if hasDuplicateGenes(q) {
		return nil, nil
	}
	tr := ec.Tracer()
	tStart := time.Now()
	var sources []int
	if q.NumEdges() == 0 {
		// Degenerate query: no edges to traverse for. Every matrix
		// containing all query genes matches with Pr{G} = 1 (empty
		// product); resolve via the inverted file plus exact checks.
		sources = p.sourcesContainingAll(q.Genes())
		st.Traversal = time.Since(tStart)
		tr.Record(obs.StageTraverse, tStart, st.Traversal, 0, len(sources))
	} else {
		pairs, err := p.traverse(ec, q, st)
		if err != nil {
			return nil, err
		}
		st.Traversal = time.Since(tStart)
		tr.Record(obs.StageTraverse, tStart, st.Traversal, st.NodePairsVisited, len(pairs))
		fStart := time.Now()
		sources = collectSources(queryScratchFor(ec), pairs, st)
		tr.Record(obs.StageFilter, fStart, time.Since(fStart), len(pairs), st.CandidateMatrices)
	}

	rStart := time.Now()
	answers, err := p.refine(ec, q, sources, st)
	st.Refinement = time.Since(rStart)
	if err == nil {
		// The two refinement sub-stages carry aggregate per-candidate
		// durations (see Stats); their candidate flow is matrices in →
		// Lemma-5 survivors → answers. The degenerate zero-edge path
		// leaves CandidateMatrices at 0, so count the sources directly.
		survivors := len(sources) - st.MatricesPrunedL5
		tr.Record(obs.StageMarkov, rStart, st.MarkovPrune, len(sources), survivors)
		tr.Record(obs.StageMonteCarlo, rStart, st.MonteCarlo, survivors, len(answers))
	}
	return answers, err
}

// hasDuplicateGenes reports whether two query vertices share a gene label.
func hasDuplicateGenes(q *grn.Graph) bool {
	seen := make(map[gene.ID]bool, q.NumVertices())
	for _, g := range q.Genes() {
		if seen[g] {
			return true
		}
		seen[g] = true
	}
	return false
}

// sourcesContainingAll returns data sources whose matrices contain every
// query gene, using IF signatures as a pre-filter.
func (p *Processor) sourcesContainingAll(genes []gene.ID) []int {
	if len(genes) == 0 {
		// The empty query embeds trivially everywhere with Pr{G} = 1.
		out := make([]int, 0, p.idx.DB().Len())
		for _, m := range p.idx.DB().Matrices() {
			out = append(out, m.Source)
		}
		return out
	}
	b := p.idx.Bits()
	sig := bitvec.New(b)
	for i, g := range genes {
		s := p.idx.Inverted().Sources(g)
		if i == 0 {
			sig.OrInPlace(s)
			continue
		}
		// Intersect progressively: a source must appear in every IF entry.
		next := bitvec.New(b)
		for bit := 0; bit < b; bit++ {
			if sig.Test(bit) && s.Test(bit) {
				next.Set(bit)
			}
		}
		sig = next
	}
	var out []int
	for _, m := range p.idx.DB().Matrices() {
		if !sig.Test(bitvec.HashSource(m.Source, b)) {
			continue
		}
		ok := true
		for _, g := range genes {
			if !m.Has(g) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, m.Source)
		}
	}
	return out
}

// cancelCheckInterval bounds how many priority-queue pops the traversal
// performs between context checks.
const cancelCheckInterval = 64

// traverse implements lines 2–27 of Figure 4: the pairwise priority-queue
// descent of the index for the highest-degree query gene and its neighbors.
// Page accesses are charged to the execution context's reader; the descent
// aborts with ctx.Err() when the context is cancelled.
func (p *Processor) traverse(ec *exec.Context, q *grn.Graph, st *Stats) ([]candidatePair, error) {
	io := ec.IO()
	b := p.idx.Bits()
	gs := q.MaxDegreeVertex()
	gsGene := q.Gene(gs)
	neighborGenes := make(map[gene.ID]bool)
	qVfS := bitvec.New(b)
	qVfS.Set(bitvec.HashGene(gsGene, b))
	qVfT := bitvec.New(b)
	qVdS := p.idx.Inverted().Sources(gsGene).Clone()
	qVdT := bitvec.New(b)
	for _, t := range q.Neighbors(gs) {
		tg := q.Gene(t)
		neighborGenes[tg] = true
		qVfT.Set(bitvec.HashGene(tg, b))
		qVdT.OrInPlace(p.idx.Inverted().Sources(tg))
	}

	tree := p.idx.Tree()
	root := tree.Root()
	pq := make(pairQueue, 0, 64)
	heap.Init(&pq)
	seq := 0
	push := func(key int, a, b *rstar.Node) {
		pq.PushItem(pairItem{key: key, seq: seq, a: a, b: b})
		seq++
	}

	gamma := p.params.Gamma
	d := p.idx.D()
	geneDim := 2 * d
	gsF := float64(gsGene)
	neighborF := make([]float64, 0, len(neighborGenes))
	for g := range neighborGenes {
		neighborF = append(neighborF, float64(g))
	}
	sort.Float64s(neighborF)
	// anyNeighborIn reports whether some neighbor gene ID lies within the
	// node's gene-ID MBR range — exact, since gene IDs are stored as an
	// index dimension (Section 5.1's rationale for the (2d+1)-th axis).
	anyNeighborIn := func(mbr rstar.Rect) bool {
		lo, hi := mbr.Min[geneDim], mbr.Max[geneDim]
		i := sort.SearchFloat64s(neighborF, lo)
		return i < len(neighborF) && neighborF[i] <= hi
	}
	sideContainsS := func(mbr rstar.Rect) bool {
		return mbr.Min[geneDim] <= gsF && gsF <= mbr.Max[geneDim]
	}
	var out []candidatePair

	// Seed with the root paired against itself; the loop below performs
	// the lines 9–13 pairwise entry expansion uniformly.
	p.idx.TouchNodeTo(io, root)
	if p.params.DisableSignatures || p.rootAdmissible(root, qVfS, qVfT, qVdS, qVdT) {
		push(root.Level(), root, root)
	}

	for pq.Len() > 0 {
		if st.NodePairsVisited%cancelCheckInterval == 0 {
			if err := ec.Err(); err != nil {
				return nil, err
			}
		}
		it := heap.Pop(&pq).(pairItem)
		st.NodePairsVisited++
		ea, eb := it.a, it.b
		if ea.IsLeaf() {
			// Lines 16–21: pairwise point checks.
			p.idx.TouchNodeTo(io, ea)
			if eb != ea {
				p.idx.TouchNodeTo(io, eb)
			}
			for i := 0; i < ea.NumEntries(); i++ {
				ia := ea.Item(i)
				ga := gene.ID(int32(ia.Point[len(ia.Point)-1]))
				if ga != gsGene {
					continue
				}
				srcA, colA := index.UnpackRef(ia.Ref)
				for j := 0; j < eb.NumEntries(); j++ {
					ib := eb.Item(j)
					gb := gene.ID(int32(ib.Point[len(ib.Point)-1]))
					if !neighborGenes[gb] {
						continue
					}
					srcB, colB := index.UnpackRef(ib.Ref)
					if srcA != srcB {
						continue // line 19: data source IDs must agree
					}
					st.PointPairsChecked++
					// Line 20: pivot-based pruning on embedded points.
					if !p.params.DisablePivotPruning &&
						index.PointUpperBound(ia.Point, ib.Point, d, p.params.OneSided) <= gamma {
						st.PointPairsPruned++
						continue
					}
					out = append(out, candidatePair{source: srcA, sCol: colA, tCol: colB})
				}
			}
			continue
		}
		// Lines 22–27: expand child pairs.
		p.idx.TouchNodeTo(io, ea)
		if eb != ea {
			p.idx.TouchNodeTo(io, eb)
		}
		for i := 0; i < ea.NumEntries(); i++ {
			ca := ea.Child(i)
			// Gene-ID range test: the s-side subtree must contain g_s.
			if !p.params.DisableGeneRange && !sideContainsS(ca.MBR()) {
				st.NodePairsPruned += eb.NumEntries()
				continue
			}
			fa, da := p.idx.NodeSignature(ca)
			if !p.params.DisableSignatures && !qVfS.Intersects(fa) {
				st.NodePairsPruned += eb.NumEntries()
				continue
			}
			for j := 0; j < eb.NumEntries(); j++ {
				cb := eb.Child(j)
				// Gene-ID range test on the t side.
				if !p.params.DisableGeneRange && !anyNeighborIn(cb.MBR()) {
					st.NodePairsPruned++
					continue
				}
				fb, db := p.idx.NodeSignature(cb)
				// Line 25: gene-name and data-source signature tests.
				if !p.params.DisableSignatures &&
					(!qVfT.Intersects(fb) || !qVdS.IntersectsAll(da, qVdT, db)) {
					st.NodePairsPruned++
					continue
				}
				// Line 25 (cont.): Lemma 6 index pruning.
				if !p.params.DisableIndexPruning &&
					index.IndexPrunable(ca.MBR(), cb.MBR(), d, gamma, p.params.OneSided) {
					st.NodePairsPruned++
					continue
				}
				push(it.key-1, ca, cb)
			}
		}
	}
	return out, nil
}

// rootAdmissible mirrors the line 9–13 admission test on the root itself.
func (p *Processor) rootAdmissible(root *rstar.Node, qVfS, qVfT, qVdS, qVdT *bitvec.Vector) bool {
	f, d := p.idx.NodeSignature(root)
	return qVfS.Intersects(f) && qVfT.Intersects(f) && qVdS.IntersectsAll(d, qVdT)
}

// collectSources reduces candidate pairs to a sorted distinct source list
// and fills the candidate counters of st. The dedup maps and the result
// slice live in the query scratch, cleared per query instead of
// reallocated.
func collectSources(qs *queryScratch, pairs []candidatePair, st *Stats) []int {
	if qs.sourceSet == nil {
		qs.sourceSet = make(map[int]bool)
		qs.geneSet = make(map[[2]int]bool) // (source, col) distinct vectors
	} else {
		clear(qs.sourceSet)
		clear(qs.geneSet)
	}
	for _, c := range pairs {
		qs.sourceSet[c.source] = true
		qs.geneSet[[2]int{c.source, c.sCol}] = true
		qs.geneSet[[2]int{c.source, c.tCol}] = true
	}
	st.CandidateGenes = len(qs.geneSet)
	st.CandidateMatrices = len(qs.sourceSet)
	out := qs.sources[:0]
	for s := range qs.sourceSet {
		out = append(out, s)
	}
	sort.Ints(out)
	qs.sources = out
	return out
}

// candOutcome is the per-candidate result of verifyCandidate, aggregated
// into Stats deterministically (in source order) by both refine paths.
type candOutcome struct {
	answer      *Answer
	prunedL5    bool
	cacheHits   int
	cacheMisses int

	// Stage timings of this candidate: the Lemma-5 upper-bound test and
	// the exact Monte Carlo verification. Aggregated into
	// Stats.MarkovPrune / Stats.MonteCarlo.
	markovDur time.Duration
	verifyDur time.Duration
}

func (st *Stats) applyCandidate(o candOutcome) {
	if o.prunedL5 {
		st.MatricesPrunedL5++
	}
	st.CacheHits += o.cacheHits
	st.CacheMisses += o.cacheMisses
	st.MarkovPrune += o.markovDur
	st.MonteCarlo += o.verifyDur
}

// refine implements lines 28–30: Lemma-5 graph existence pruning on each
// candidate matrix followed by exact verification of Definition 4. With a
// worker budget the candidates are verified in parallel (refineParallel);
// otherwise they are verified sequentially on the processor's single
// scorer/pruner streams, byte-identical to the pre-parallel implementation.
func (p *Processor) refine(ec *exec.Context, q *grn.Graph, sources []int, st *Stats) ([]Answer, error) {
	if p.params.Sink != nil {
		return p.refineStreamed(ec, q, sources, st)
	}
	if ec.Parallel() {
		return p.refineParallel(ec, q, sources, st)
	}
	qEdges := q.Edges()
	sc, pr := p.seqScorers()
	var answers []Answer
	bufs := &queryScratchFor(ec).worker(0).bufs
	for _, src := range sources {
		if err := ec.Err(); err != nil {
			return nil, err
		}
		o := p.verifyCandidate(ec.IO(), q, qEdges, src, sc, pr, bufs)
		st.applyCandidate(o)
		if o.answer != nil {
			answers = append(answers, *o.answer)
		}
	}
	return answers, nil
}

// colBufs is the reusable column scratch space of one verification stream.
type colBufs struct {
	a, b []float64
	cols []int // query-vertex → matrix-column mapping scratch
}

// growCols returns the cols scratch resized to n (contents unspecified).
func (b *colBufs) growCols(n int) []int {
	if cap(b.cols) < n {
		b.cols = make([]int, n)
	}
	b.cols = b.cols[:n]
	return b.cols
}

// refineStreamed is refinement against a shared top-k sink (params.Sink):
// the cross-shard Markov-bound early-termination mode of the scatter-gather
// path. Candidates are ordered by descending Lemma-5 upper bound so that
// the likeliest answers raise the sink floor first; each verification runs
// at the current effective α (max of params.Alpha and the floor), and once
// the best remaining upper bound drops to the floor the whole tail is
// pruned in one step — no candidate in it can displace the k-th answer any
// shard has found.
//
// Every candidate draws from its own (Seed, source)-addressed streams (the
// refineParallel convention), so the answer content is independent of
// verification order and of how far other shards have raised the floor;
// only which candidates get pruned — and so the pruning/cache counters —
// depends on timing.
//
// The upper-bound computation here doubles as the top-k floor mechanism,
// so the streamed path keeps it even under a plan that skips Markov
// pruning (DisableMarkovPruning); the per-candidate Lemma-5 re-test
// inside verifyCandidateAt is already skipped via skipMarkov.
func (p *Processor) refineStreamed(ec *exec.Context, q *grn.Graph, sources []int, st *Stats) ([]Answer, error) {
	sink := p.params.Sink
	qEdges := q.Edges()
	qs := queryScratchFor(ec)
	ws := qs.worker(0)

	mStart := time.Now()
	cands := exec.GrowSlice(&qs.cands, len(sources))
	for i, src := range sources {
		cands[i] = streamCand{src: src, ub: p.candidateUpperBound(q, qEdges, src, &ws.bufs)}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].ub != cands[j].ub {
			return cands[i].ub > cands[j].ub
		}
		return cands[i].src < cands[j].src
	})
	st.MarkovPrune += time.Since(mStart)

	var answers []Answer
	for i, c := range cands {
		if err := ec.Err(); err != nil {
			return nil, err
		}
		alpha := p.params.Alpha
		if f := sink.Floor(); f > alpha {
			alpha = f
		}
		if c.ub <= alpha {
			// Sorted descending: every remaining candidate is bounded by
			// c.ub too. Prune the whole tail (Lemma 5 at the floor).
			st.MatricesPrunedL5 += len(cands) - i
			break
		}
		sc, pr := p.primeScorers(ws, uint64(int64(c.src)))
		o := p.verifyCandidateAt(ec.IO(), q, qEdges, c.src, sc, pr, &ws.bufs, alpha, true)
		st.applyCandidate(o)
		if o.answer != nil {
			answers = append(answers, *o.answer)
			sink.Offer(*o.answer)
		}
	}
	sort.Slice(answers, func(i, j int) bool { return answers[i].Source < answers[j].Source })
	return answers, nil
}

// verifyCandidate checks one candidate matrix: Lemma-5 graph existence
// pruning on pivot upper bounds, then exact verification of Definition 4,
// reading standardized vectors from the paged heap file charged to io and
// drawing Monte Carlo samples from the given scorer/pruner streams.
func (p *Processor) verifyCandidate(io pagestore.Toucher, q *grn.Graph, qEdges []grn.Edge, src int,
	sc *grn.RandomizedScorer, pr *grn.Pruner, bufs *colBufs) candOutcome {
	return p.verifyCandidateAt(io, q, qEdges, src, sc, pr, bufs, p.params.Alpha, false)
}

// verifyCandidateAt is verifyCandidate at an explicit α cutoff: the
// streamed refinement path passes the sink floor (the k-th probability so
// far) instead of params.Alpha, turning the Lemma-5 test and the running
// product cutoff into cross-shard top-k pruning. skipMarkov skips the
// Lemma-5 product when the caller already evaluated it (candidate
// ordering by upper bound precomputes the same product).
func (p *Processor) verifyCandidateAt(io pagestore.Toucher, q *grn.Graph, qEdges []grn.Edge, src int,
	sc *grn.RandomizedScorer, pr *grn.Pruner, bufs *colBufs, alpha float64, skipMarkov bool) candOutcome {
	var out candOutcome
	gamma := p.params.Gamma
	m := p.idx.DB().BySource(src)
	if m == nil {
		return out
	}
	// Map query vertices to columns by gene ID (labels are unique within a
	// matrix, so the embedding is forced).
	cols := bufs.growCols(q.NumVertices())
	for v := 0; v < q.NumVertices(); v++ {
		c := m.IndexOf(q.Gene(v))
		if c < 0 {
			return out
		}
		cols[v] = c
	}
	// Lemma 5: prune with the product of pivot-based edge upper bounds.
	// DisableMarkovPruning (a plan decision when the modeled bound cost
	// exceeds its savings) sends the candidate straight to verification.
	// Skipping is answer-safe per candidate — Lemma 5 only removes
	// candidates that provably cannot match — but in sequential mode the
	// extra verifications consume scorer draws, shifting later
	// candidates' sample streams (same determinism contract as the batch
	// kernel: deterministic per Seed, statistically equivalent).
	if !skipMarkov && !p.params.DisableMarkovPruning {
		mStart := time.Now()
		if emb := p.idx.Embedding(src); emb != nil && len(qEdges) > 0 {
			ub := 1.0
			for _, e := range qEdges {
				ub *= emb.UpperBound(cols[e.S], cols[e.T], p.params.OneSided)
				if ub <= alpha {
					break
				}
			}
			if grn.PruneByGraphExistence(ub, alpha) {
				out.prunedL5 = true
				out.markovDur = time.Since(mStart)
				return out
			}
		}
		out.markovDur = time.Since(mStart)
	}
	vStart := time.Now()
	out.answer = p.verifyExact(io, q, qEdges, src, m, cols, gamma, alpha, sc, pr, bufs, &out)
	out.verifyDur = time.Since(vStart)
	return out
}

// candidateUpperBound evaluates the full Lemma-5 pivot upper-bound product
// of one candidate matrix (no early exit, so candidates are comparable).
// Returns 1 when the source has no pivot embedding (nothing is provable)
// and 0 when a query gene is missing from the matrix (cannot match).
func (p *Processor) candidateUpperBound(q *grn.Graph, qEdges []grn.Edge, src int, bufs *colBufs) float64 {
	m := p.idx.DB().BySource(src)
	if m == nil {
		return 0
	}
	cols := bufs.growCols(q.NumVertices())
	for v := 0; v < q.NumVertices(); v++ {
		c := m.IndexOf(q.Gene(v))
		if c < 0 {
			return 0
		}
		cols[v] = c
	}
	emb := p.idx.Embedding(src)
	if emb == nil || len(qEdges) == 0 {
		return 1
	}
	ub := 1.0
	for _, e := range qEdges {
		ub *= emb.UpperBound(cols[e.S], cols[e.T], p.params.OneSided)
	}
	return ub
}

// verifyExact is the exact-verification tail of verifyCandidate: it infers
// only the query-mapped edges, reading the standardized vectors from the
// paged heap file (charged I/O), and returns the answer (nil when the
// candidate fails). Cache hit/miss counts go into out.
func (p *Processor) verifyExact(io pagestore.Toucher, q *grn.Graph, qEdges []grn.Edge, src int,
	m *gene.Matrix, cols []int, gamma, alpha float64,
	sc *grn.RandomizedScorer, pr *grn.Pruner, bufs *colBufs, out *candOutcome) *Answer {
	prob := 1.0
	edges := make([]grn.Edge, 0, len(qEdges))
	for _, e := range qEdges {
		a, bcol := cols[e.S], cols[e.T]
		if !m.Informative(a) || !m.Informative(bcol) {
			return nil
		}
		var err error
		if bufs.a, err = p.idx.FetchStdColumnTo(io, src, a, bufs.a); err != nil {
			return nil
		}
		if bufs.b, err = p.idx.FetchStdColumnTo(io, src, bcol, bufs.b); err != nil {
			return nil
		}
		// Lemma 3 edge inference pruning before the exact estimate.
		if !p.params.Analytic && pr.UpperBound(bufs.a, bufs.b) <= gamma {
			return nil
		}
		ep, cached := 0.0, false
		if p.params.Cache != nil {
			ep, cached = p.params.Cache.Get(src, a, bcol)
			if cached {
				out.cacheHits++
			} else {
				out.cacheMisses++
			}
		}
		if !cached {
			if p.permPool != nil {
				// Batch shared-permutation mode: the target column's R
				// permutations are drawn once per batch from a (seed,
				// source, column)-addressed stream and probed here.
				ep = p.permPool.prob(p.params.Seed, src, bcol, p.params.Samples,
					p.params.OneSided, bufs.a, bufs.b)
			} else {
				ep = p.edgeProbVecWith(sc, bufs.a, bufs.b)
			}
			if p.params.Cache != nil {
				p.params.Cache.Put(src, a, bcol, ep)
			}
		}
		if ep <= gamma {
			return nil
		}
		prob *= ep
		if prob <= alpha {
			return nil
		}
		edges = append(edges, grn.Edge{S: e.S, T: e.T, P: ep})
	}
	genes := make([]gene.ID, q.NumVertices())
	copy(genes, q.Genes())
	return &Answer{Source: src, Prob: prob, Edges: edges, Genes: genes}
}
