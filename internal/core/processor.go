package core

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/imgrn/imgrn/internal/bitvec"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/rstar"
	"github.com/imgrn/imgrn/internal/vecmath"
)

// Processor answers IM-GRN queries over one index (Figure 4).
type Processor struct {
	idx    *index.Index
	params Params

	scorer   *grn.RandomizedScorer
	analytic grn.AnalyticScorer
	pruner   *grn.Pruner
}

// NewProcessor returns a processor for idx with the given parameters.
func NewProcessor(idx *index.Index, params Params) (*Processor, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	sc := grn.NewRandomizedScorer(params.Seed^0xa5b35705f39c2d17, params.Samples)
	sc.OneSided = params.OneSided
	pr := grn.NewPruner(params.Seed^0x94d049bb133111eb, params.BoundSamples)
	pr.OneSided = params.OneSided
	return &Processor{
		idx:      idx,
		params:   params,
		scorer:   sc,
		analytic: grn.AnalyticScorer{OneSided: params.OneSided},
		pruner:   pr,
	}, nil
}

// Params returns the processor's parameters.
func (p *Processor) Params() Params { return p.params }

// edgeProbVec computes the exact edge existence probability of two
// standardized vectors under the configured estimator.
func (p *Processor) edgeProbVec(xa, xb []float64) float64 {
	if p.params.Analytic {
		l := len(xa)
		if l < 2 {
			return 0
		}
		cor := vecmath.Dot(xa, xb)
		z := math.Sqrt(float64(l - 1))
		if p.params.OneSided {
			return stdNormalCDF(cor * z)
		}
		return 2*stdNormalCDF(math.Abs(cor)*z) - 1
	}
	if p.params.OneSided {
		return p.scorer.Est.EdgeProbability(xa, xb, p.scorer.Samples)
	}
	return p.scorer.Est.AbsEdgeProbability(xa, xb, p.scorer.Samples)
}

func stdNormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// InferQueryGraph reconstructs the query GRN Q from the query matrix
// (Fig. 4 line 1), with Lemma-3 edge inference pruning ahead of each
// Monte Carlo estimate.
func (p *Processor) InferQueryGraph(mq *gene.Matrix) (*grn.Graph, error) {
	if p.params.Analytic {
		return grn.Infer(mq, p.analytic, p.params.Gamma)
	}
	g, _, err := grn.InferPruned(mq, p.scorer, p.pruner, p.params.Gamma)
	return g, err
}

// pairItem is one priority-queue element: a pair of same-level index nodes
// that may contain an interacting (query gene, neighbor gene) pair.
type pairItem struct {
	key  int // node level; smaller pops first => depth-first descent
	seq  int // insertion sequence for deterministic tie-breaking
	a, b *rstar.Node
}

type pairQueue []pairItem

func (q pairQueue) Len() int { return len(q) }
func (q pairQueue) Less(i, j int) bool {
	if q[i].key != q[j].key {
		return q[i].key < q[j].key
	}
	return q[i].seq < q[j].seq
}
func (q pairQueue) Swap(i, j int)        { q[i], q[j] = q[j], q[i] }
func (q *pairQueue) Push(x any)          { *q = append(*q, x.(pairItem)) }
func (q *pairQueue) Pop() any            { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }
func (q *pairQueue) PushItem(i pairItem) { heap.Push(q, i) }

// candidatePair is a surviving (source, column, column) gene pair.
type candidatePair struct {
	source     int
	sCol, tCol int
}

// Query runs the IM-GRN_Processing algorithm for query matrix mq and
// returns the matching data sources with statistics. Results are sorted by
// data source ID.
func (p *Processor) Query(mq *gene.Matrix) ([]Answer, Stats, error) {
	var st Stats
	start := time.Now()
	p.idx.Accountant().ResetStats()

	// Line 1: infer the exact query graph Q.
	q, err := p.InferQueryGraph(mq)
	if err != nil {
		return nil, st, fmt.Errorf("core: inferring query graph: %w", err)
	}
	st.InferQuery = time.Since(start)
	st.QueryVertices = q.NumVertices()
	st.QueryEdges = q.NumEdges()

	answers, err := p.queryWithGraph(q, &st)
	if err != nil {
		return nil, st, err
	}
	st.IOCost = p.idx.Accountant().Stats().Accesses
	st.Total = time.Since(start)
	st.Answers = len(answers)
	return answers, st, nil
}

// QueryGraph answers an IM-GRN query for an already-inferred query GRN,
// e.g. a hand-drawn biomarker pattern.
func (p *Processor) QueryGraph(q *grn.Graph) ([]Answer, Stats, error) {
	var st Stats
	start := time.Now()
	p.idx.Accountant().ResetStats()
	st.QueryVertices = q.NumVertices()
	st.QueryEdges = q.NumEdges()
	answers, err := p.queryWithGraph(q, &st)
	if err != nil {
		return nil, st, err
	}
	st.IOCost = p.idx.Accountant().Stats().Accesses
	st.Total = time.Since(start)
	st.Answers = len(answers)
	return answers, st, nil
}

func (p *Processor) queryWithGraph(q *grn.Graph, st *Stats) ([]Answer, error) {
	// Gene labels are unique within every matrix, so a query repeating a
	// gene can never embed injectively: no matrix can host it.
	if hasDuplicateGenes(q) {
		return nil, nil
	}
	tStart := time.Now()
	var sources []int
	if q.NumEdges() == 0 {
		// Degenerate query: no edges to traverse for. Every matrix
		// containing all query genes matches with Pr{G} = 1 (empty
		// product); resolve via the inverted file plus exact checks.
		sources = p.sourcesContainingAll(q.Genes())
		st.Traversal = time.Since(tStart)
	} else {
		pairs := p.traverse(q, st)
		st.Traversal = time.Since(tStart)
		sources = collectSources(pairs, st)
	}

	rStart := time.Now()
	answers := p.refine(q, sources, st)
	st.Refinement = time.Since(rStart)
	return answers, nil
}

// hasDuplicateGenes reports whether two query vertices share a gene label.
func hasDuplicateGenes(q *grn.Graph) bool {
	seen := make(map[gene.ID]bool, q.NumVertices())
	for _, g := range q.Genes() {
		if seen[g] {
			return true
		}
		seen[g] = true
	}
	return false
}

// sourcesContainingAll returns data sources whose matrices contain every
// query gene, using IF signatures as a pre-filter.
func (p *Processor) sourcesContainingAll(genes []gene.ID) []int {
	if len(genes) == 0 {
		// The empty query embeds trivially everywhere with Pr{G} = 1.
		out := make([]int, 0, p.idx.DB().Len())
		for _, m := range p.idx.DB().Matrices() {
			out = append(out, m.Source)
		}
		return out
	}
	b := p.idx.Bits()
	sig := bitvec.New(b)
	for i, g := range genes {
		s := p.idx.Inverted().Sources(g)
		if i == 0 {
			sig.OrInPlace(s)
			continue
		}
		// Intersect progressively: a source must appear in every IF entry.
		next := bitvec.New(b)
		for bit := 0; bit < b; bit++ {
			if sig.Test(bit) && s.Test(bit) {
				next.Set(bit)
			}
		}
		sig = next
	}
	var out []int
	for _, m := range p.idx.DB().Matrices() {
		if !sig.Test(bitvec.HashSource(m.Source, b)) {
			continue
		}
		ok := true
		for _, g := range genes {
			if !m.Has(g) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, m.Source)
		}
	}
	return out
}

// traverse implements lines 2–27 of Figure 4: the pairwise priority-queue
// descent of the index for the highest-degree query gene and its neighbors.
func (p *Processor) traverse(q *grn.Graph, st *Stats) []candidatePair {
	b := p.idx.Bits()
	gs := q.MaxDegreeVertex()
	gsGene := q.Gene(gs)
	neighborGenes := make(map[gene.ID]bool)
	qVfS := bitvec.New(b)
	qVfS.Set(bitvec.HashGene(gsGene, b))
	qVfT := bitvec.New(b)
	qVdS := p.idx.Inverted().Sources(gsGene).Clone()
	qVdT := bitvec.New(b)
	for _, t := range q.Neighbors(gs) {
		tg := q.Gene(t)
		neighborGenes[tg] = true
		qVfT.Set(bitvec.HashGene(tg, b))
		qVdT.OrInPlace(p.idx.Inverted().Sources(tg))
	}

	tree := p.idx.Tree()
	root := tree.Root()
	pq := make(pairQueue, 0, 64)
	heap.Init(&pq)
	seq := 0
	push := func(key int, a, b *rstar.Node) {
		pq.PushItem(pairItem{key: key, seq: seq, a: a, b: b})
		seq++
	}

	gamma := p.params.Gamma
	d := p.idx.D()
	geneDim := 2 * d
	gsF := float64(gsGene)
	neighborF := make([]float64, 0, len(neighborGenes))
	for g := range neighborGenes {
		neighborF = append(neighborF, float64(g))
	}
	sort.Float64s(neighborF)
	// anyNeighborIn reports whether some neighbor gene ID lies within the
	// node's gene-ID MBR range — exact, since gene IDs are stored as an
	// index dimension (Section 5.1's rationale for the (2d+1)-th axis).
	anyNeighborIn := func(mbr rstar.Rect) bool {
		lo, hi := mbr.Min[geneDim], mbr.Max[geneDim]
		i := sort.SearchFloat64s(neighborF, lo)
		return i < len(neighborF) && neighborF[i] <= hi
	}
	sideContainsS := func(mbr rstar.Rect) bool {
		return mbr.Min[geneDim] <= gsF && gsF <= mbr.Max[geneDim]
	}
	var out []candidatePair

	// Seed with the root paired against itself; the loop below performs
	// the lines 9–13 pairwise entry expansion uniformly.
	p.idx.TouchNode(root)
	if p.params.DisableSignatures || p.rootAdmissible(root, qVfS, qVfT, qVdS, qVdT) {
		push(root.Level(), root, root)
	}

	for pq.Len() > 0 {
		it := heap.Pop(&pq).(pairItem)
		st.NodePairsVisited++
		ea, eb := it.a, it.b
		if ea.IsLeaf() {
			// Lines 16–21: pairwise point checks.
			p.idx.TouchNode(ea)
			if eb != ea {
				p.idx.TouchNode(eb)
			}
			for i := 0; i < ea.NumEntries(); i++ {
				ia := ea.Item(i)
				ga := gene.ID(int32(ia.Point[len(ia.Point)-1]))
				if ga != gsGene {
					continue
				}
				srcA, colA := index.UnpackRef(ia.Ref)
				for j := 0; j < eb.NumEntries(); j++ {
					ib := eb.Item(j)
					gb := gene.ID(int32(ib.Point[len(ib.Point)-1]))
					if !neighborGenes[gb] {
						continue
					}
					srcB, colB := index.UnpackRef(ib.Ref)
					if srcA != srcB {
						continue // line 19: data source IDs must agree
					}
					st.PointPairsChecked++
					// Line 20: pivot-based pruning on embedded points.
					if !p.params.DisablePivotPruning &&
						index.PointUpperBound(ia.Point, ib.Point, d, p.params.OneSided) <= gamma {
						st.PointPairsPruned++
						continue
					}
					out = append(out, candidatePair{source: srcA, sCol: colA, tCol: colB})
				}
			}
			continue
		}
		// Lines 22–27: expand child pairs.
		p.idx.TouchNode(ea)
		if eb != ea {
			p.idx.TouchNode(eb)
		}
		for i := 0; i < ea.NumEntries(); i++ {
			ca := ea.Child(i)
			// Gene-ID range test: the s-side subtree must contain g_s.
			if !p.params.DisableGeneRange && !sideContainsS(ca.MBR()) {
				st.NodePairsPruned += eb.NumEntries()
				continue
			}
			fa, da := p.idx.NodeSignature(ca)
			if !p.params.DisableSignatures && !qVfS.Intersects(fa) {
				st.NodePairsPruned += eb.NumEntries()
				continue
			}
			for j := 0; j < eb.NumEntries(); j++ {
				cb := eb.Child(j)
				// Gene-ID range test on the t side.
				if !p.params.DisableGeneRange && !anyNeighborIn(cb.MBR()) {
					st.NodePairsPruned++
					continue
				}
				fb, db := p.idx.NodeSignature(cb)
				// Line 25: gene-name and data-source signature tests.
				if !p.params.DisableSignatures &&
					(!qVfT.Intersects(fb) || !qVdS.IntersectsAll(da, qVdT, db)) {
					st.NodePairsPruned++
					continue
				}
				// Line 25 (cont.): Lemma 6 index pruning.
				if !p.params.DisableIndexPruning &&
					index.IndexPrunable(ca.MBR(), cb.MBR(), d, gamma, p.params.OneSided) {
					st.NodePairsPruned++
					continue
				}
				push(it.key-1, ca, cb)
			}
		}
	}
	return out
}

// rootAdmissible mirrors the line 9–13 admission test on the root itself.
func (p *Processor) rootAdmissible(root *rstar.Node, qVfS, qVfT, qVdS, qVdT *bitvec.Vector) bool {
	f, d := p.idx.NodeSignature(root)
	return qVfS.Intersects(f) && qVfT.Intersects(f) && qVdS.IntersectsAll(d, qVdT)
}

// collectSources reduces candidate pairs to a sorted distinct source list
// and fills the candidate counters of st.
func collectSources(pairs []candidatePair, st *Stats) []int {
	sourceSet := make(map[int]bool)
	geneSet := make(map[[2]int]bool) // (source, col) distinct vectors
	for _, c := range pairs {
		sourceSet[c.source] = true
		geneSet[[2]int{c.source, c.sCol}] = true
		geneSet[[2]int{c.source, c.tCol}] = true
	}
	st.CandidateGenes = len(geneSet)
	st.CandidateMatrices = len(sourceSet)
	out := make([]int, 0, len(sourceSet))
	for s := range sourceSet {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// refine implements lines 28–30: Lemma-5 graph existence pruning on each
// candidate matrix followed by exact verification of Definition 4.
func (p *Processor) refine(q *grn.Graph, sources []int, st *Stats) []Answer {
	var answers []Answer
	qEdges := q.Edges()
	gamma, alpha := p.params.Gamma, p.params.Alpha
	for _, src := range sources {
		m := p.idx.DB().BySource(src)
		if m == nil {
			continue
		}
		// Map query vertices to columns by gene ID (labels are unique
		// within a matrix, so the embedding is forced).
		cols := make([]int, q.NumVertices())
		ok := true
		for v := 0; v < q.NumVertices(); v++ {
			c := m.IndexOf(q.Gene(v))
			if c < 0 {
				ok = false
				break
			}
			cols[v] = c
		}
		if !ok {
			continue
		}
		// Lemma 5: prune with the product of pivot-based edge upper bounds.
		if emb := p.idx.Embedding(src); emb != nil && len(qEdges) > 0 {
			ub := 1.0
			for _, e := range qEdges {
				ub *= emb.UpperBound(cols[e.S], cols[e.T], p.params.OneSided)
				if ub <= alpha {
					break
				}
			}
			if grn.PruneByGraphExistence(ub, alpha) {
				st.MatricesPrunedL5++
				continue
			}
		}
		// Exact verification: infer only the query-mapped edges, reading
		// the standardized vectors from the paged heap file (charged I/O).
		prob := 1.0
		edges := make([]grn.Edge, 0, len(qEdges))
		matched := true
		var bufA, bufB []float64
		for _, e := range qEdges {
			a, bcol := cols[e.S], cols[e.T]
			if !m.Informative(a) || !m.Informative(bcol) {
				matched = false
				break
			}
			var err error
			if bufA, err = p.idx.FetchStdColumn(src, a, bufA); err != nil {
				matched = false
				break
			}
			if bufB, err = p.idx.FetchStdColumn(src, bcol, bufB); err != nil {
				matched = false
				break
			}
			// Lemma 3 edge inference pruning before the exact estimate.
			if !p.params.Analytic && p.pruner.UpperBound(bufA, bufB) <= gamma {
				matched = false
				break
			}
			ep, cached := 0.0, false
			if p.params.Cache != nil {
				ep, cached = p.params.Cache.Get(src, a, bcol)
			}
			if !cached {
				ep = p.edgeProbVec(bufA, bufB)
				if p.params.Cache != nil {
					p.params.Cache.Put(src, a, bcol, ep)
				}
			}
			if ep <= gamma {
				matched = false
				break
			}
			prob *= ep
			if prob <= alpha {
				matched = false
				break
			}
			edges = append(edges, grn.Edge{S: e.S, T: e.T, P: ep})
		}
		if !matched {
			continue
		}
		genes := make([]gene.ID, q.NumVertices())
		copy(genes, q.Genes())
		answers = append(answers, Answer{Source: src, Prob: prob, Edges: edges, Genes: genes})
	}
	return answers
}
