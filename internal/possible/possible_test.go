package possible

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/randgen"
)

func randomGraph(rng *randgen.Rand, n, edges int) *grn.Graph {
	ids := make([]gene.ID, n)
	for i := range ids {
		ids[i] = gene.ID(i)
	}
	g := grn.NewGraph(ids)
	for g.NumEdges() < edges {
		s := rng.Intn(n)
		t := rng.Intn(n)
		if s == t {
			continue
		}
		g.SetEdge(s, t, 0.05+0.9*rng.Float64())
	}
	return g
}

func TestEnumerateCountAndTotalProbability(t *testing.T) {
	rng := randgen.New(50)
	f := func(seed uint64) bool {
		r := randgen.New(seed ^ rng.Uint64())
		g := randomGraph(r, 4, 1+r.Intn(5))
		count := 0
		total := 0.0
		Enumerate(g, func(w World) {
			count++
			total += w.Prob
		})
		return count == 1<<uint(g.NumEdges()) && math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEnumeratePanicsOnLargeGraph(t *testing.T) {
	rng := randgen.New(51)
	g := randomGraph(rng, 10, MaxEnumerableEdges+1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Enumerate(g, func(World) {})
}

// TestEq3MatchesPossibleWorlds is the central semantics check: the paper's
// closed-form appearance probability (Eq. 3, the product of edge
// probabilities) equals the possible-worlds sum.
func TestEq3MatchesPossibleWorlds(t *testing.T) {
	rng := randgen.New(52)
	f := func(seed uint64) bool {
		r := randgen.New(seed ^ rng.Uint64())
		g := randomGraph(r, 5, 2+r.Intn(5))
		edges := g.Edges()
		// Pick a random subset of existing edges.
		var sel []grn.Edge
		for _, e := range edges {
			if r.Float64() < 0.5 {
				sel = append(sel, e)
			}
		}
		closed, err := g.AppearanceProbability(sel)
		if err != nil {
			return false
		}
		worlds := SubgraphProbabilityExact(g, sel)
		return math.Abs(closed-worlds) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSubgraphProbabilityMissingEdge(t *testing.T) {
	g := randomGraph(randgen.New(53), 4, 2)
	if p := SubgraphProbabilityExact(g, []grn.Edge{{S: 0, T: 3}, {S: 3, T: 0}}); g.HasEdge(0, 3) == false && p != 0 {
		t.Errorf("missing edge should have probability 0, got %v", p)
	}
}

func TestSubgraphProbabilityReversedSelector(t *testing.T) {
	g := grn.NewGraph([]gene.ID{0, 1})
	g.SetEdge(0, 1, 0.4)
	a := SubgraphProbabilityExact(g, []grn.Edge{{S: 0, T: 1}})
	b := SubgraphProbabilityExact(g, []grn.Edge{{S: 1, T: 0}})
	if a != b || math.Abs(a-0.4) > 1e-12 {
		t.Errorf("probabilities: %v vs %v, want 0.4", a, b)
	}
}

func TestSampleWorldProbabilityConsistent(t *testing.T) {
	g := randomGraph(randgen.New(54), 4, 4)
	rng := randgen.New(55)
	w := SampleWorld(g, rng)
	// Recompute the probability of the sampled world from its bits.
	p := 1.0
	for i, e := range g.Edges() {
		if w.Present[i] {
			p *= e.P
		} else {
			p *= 1 - e.P
		}
	}
	if math.Abs(p-w.Prob) > 1e-12 {
		t.Errorf("sampled world prob %v, recomputed %v", w.Prob, p)
	}
}

func TestSubgraphProbabilityMCConvergence(t *testing.T) {
	g := randomGraph(randgen.New(56), 5, 6)
	edges := g.Edges()
	sel := edges[:3]
	exact := SubgraphProbabilityExact(g, sel)
	mc := SubgraphProbabilityMC(g, sel, randgen.New(57), 40000)
	if math.Abs(exact-mc) > 0.02 {
		t.Errorf("exact %v vs MC %v", exact, mc)
	}
}

func TestWorldCount(t *testing.T) {
	g := randomGraph(randgen.New(58), 4, 5)
	if got := WorldCount(g); got != 32 {
		t.Errorf("WorldCount = %v, want 32", got)
	}
}
