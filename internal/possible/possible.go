// Package possible implements the possible-worlds semantics of probabilistic
// graphs (Section 2.3): a probabilistic GRN with m edges induces 2^m
// deterministic worlds, each edge existing independently with its
// probability. The package enumerates worlds exactly for small graphs and
// samples them for large ones; both are used by tests to validate that the
// closed-form appearance probability of Eq. (3) matches the possible-worlds
// definition, and by the examples to explain query confidences.
package possible

import (
	"math"

	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/randgen"
)

// MaxEnumerableEdges bounds exact enumeration (2^20 worlds ≈ 1M).
const MaxEnumerableEdges = 20

// World is one materialized instance: Present[i] tells whether the i-th
// edge (in g.Edges() order) exists.
type World struct {
	Present []bool
	Prob    float64
}

// Enumerate yields every possible world of g in canonical bitmask order.
// It panics when g has more than MaxEnumerableEdges edges.
func Enumerate(g *grn.Graph, fn func(World)) {
	edges := g.Edges()
	m := len(edges)
	if m > MaxEnumerableEdges {
		panic("possible: too many edges to enumerate")
	}
	present := make([]bool, m)
	for mask := 0; mask < 1<<uint(m); mask++ {
		prob := 1.0
		for i, e := range edges {
			if mask&(1<<uint(i)) != 0 {
				present[i] = true
				prob *= e.P
			} else {
				present[i] = false
				prob *= 1 - e.P
			}
		}
		fn(World{Present: present, Prob: prob})
	}
}

// SubgraphProbabilityExact computes Pr{all edges in sel exist} by summing
// possible-world probabilities (the semantics behind Eq. 3). sel lists
// vertex pairs that must all be present; pairs not in g have probability 0.
// Exponential in the edge count of g: use only for validation.
func SubgraphProbabilityExact(g *grn.Graph, sel []grn.Edge) float64 {
	edges := g.Edges()
	need := make([]int, 0, len(sel))
	for _, want := range sel {
		found := -1
		for i, e := range edges {
			if (e.S == want.S && e.T == want.T) || (e.S == want.T && e.T == want.S) {
				found = i
				break
			}
		}
		if found < 0 {
			return 0
		}
		need = append(need, found)
	}
	var total float64
	Enumerate(g, func(w World) {
		for _, i := range need {
			if !w.Present[i] {
				return
			}
		}
		total += w.Prob
	})
	return total
}

// SampleWorld draws one world of g using rng.
func SampleWorld(g *grn.Graph, rng *randgen.Rand) World {
	edges := g.Edges()
	present := make([]bool, len(edges))
	prob := 1.0
	for i, e := range edges {
		if rng.Float64() < e.P {
			present[i] = true
			prob *= e.P
		} else {
			prob *= 1 - e.P
		}
	}
	return World{Present: present, Prob: prob}
}

// SubgraphProbabilityMC estimates Pr{all edges in sel exist} by sampling
// worlds. Used to cross-check Eq. (3) on graphs too large to enumerate.
func SubgraphProbabilityMC(g *grn.Graph, sel []grn.Edge, rng *randgen.Rand, samples int) float64 {
	edges := g.Edges()
	need := make([]int, 0, len(sel))
	for _, want := range sel {
		found := -1
		for i, e := range edges {
			if (e.S == want.S && e.T == want.T) || (e.S == want.T && e.T == want.S) {
				found = i
				break
			}
		}
		if found < 0 {
			return 0
		}
		need = append(need, found)
	}
	hits := 0
	for k := 0; k < samples; k++ {
		w := SampleWorld(g, rng)
		ok := true
		for _, i := range need {
			if !w.Present[i] {
				ok = false
				break
			}
		}
		if ok {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

// WorldCount returns 2^m as a float64 (exact for m ≤ 52), the size of the
// possible-world space the pruning framework avoids materializing.
func WorldCount(g *grn.Graph) float64 {
	return math.Exp2(float64(g.NumEdges()))
}
