package cluster

import (
	"encoding/json"
	"errors"
	"time"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
)

// Cluster wire protocol (DESIGN.md §15). One coordinator-resolved
// request envelope per (query, shard): the envelope carries the query
// payload (matrix columns or explicit pattern), the scalar params, the
// encoded plan (plan.EncodeWire — every shard executes the identical
// decisions), the GLOBAL shard index to execute (the shard server
// derives SeedFrom(Seed, global) itself, so answers are a pure function
// of placement and params, never of which replica served the request),
// and the top-k bound. Responses stream NDJSON: zero or more accept
// frames (top-k floor propagation), then exactly one terminal frame with
// the per-shard answer runs or an error.
//
// Endpoints (served by internal/server in the shard role):
//
//	POST /cluster/exec        one query, one global shard (or solo)
//	POST /cluster/exec-batch  whole batch, one global shard (or solo)
//	POST /cluster/mutate      routed mutation (replicated by the caller)
//	POST /cluster/floor       raise a live query's top-k floor
//	GET  /cluster/info        shard-server membership/health snapshot
//
// Versioning: every request carries Proto; a mismatch is answered with
// an explicit 400, never a best-effort execution. The plan payload is
// versioned separately (plan.WireVersion).

// ProtoVersion is the cluster protocol version.
const ProtoVersion = 1

// ErrProtoVersion reports a protocol version mismatch between
// coordinator and shard server. Matchable with errors.Is.
var ErrProtoVersion = errors.New("cluster: protocol version mismatch")

// Request kinds.
const (
	KindMatrix = "matrix" // feature-matrix query: the shard server infers the GRN at the base seed
	KindGraph  = "graph"  // explicit probabilistic pattern
)

// Endpoint paths.
const (
	PathExec      = "/cluster/exec"
	PathExecBatch = "/cluster/exec-batch"
	PathMutate    = "/cluster/mutate"
	PathFloor     = "/cluster/floor"
	PathInfo      = "/cluster/info"
	PathMembers   = "/cluster/members"
)

// WireParams is the scalar subset of core.Params that travels in the
// envelope. Runtime-only fields (Cache, Trace, Sink) never travel; the
// plan travels separately as an encoded plan.Plan, and its decisions
// overwrite Samples and the stage switches on the shard server exactly
// as ResolvePlan does in process.
type WireParams struct {
	Gamma    float64 `json:"gamma"`
	Alpha    float64 `json:"alpha"`
	Samples  int     `json:"samples,omitempty"`
	Seed     uint64  `json:"seed"`
	Analytic bool    `json:"analytic,omitempty"`
	OneSided bool    `json:"oneSided,omitempty"`
	// Workers and Grain are shipped because intra-query parallelism
	// changes the Monte Carlo work-unit streams (Workers) — the shard must
	// execute with the coordinator's setting for byte-identity — while
	// Grain only schedules.
	Workers int `json:"workers,omitempty"`
	Grain   int `json:"grain,omitempty"`
}

// ParamsToWire extracts the wire subset of params.
func ParamsToWire(p core.Params) WireParams {
	return WireParams{
		Gamma: p.Gamma, Alpha: p.Alpha, Samples: p.Samples,
		Seed: p.Seed, Analytic: p.Analytic, OneSided: p.OneSided,
		Workers: p.Workers, Grain: p.Grain,
	}
}

// Params rebuilds core.Params from the wire subset.
func (w WireParams) Params() core.Params {
	return core.Params{
		Gamma: w.Gamma, Alpha: w.Alpha, Samples: w.Samples,
		Seed: w.Seed, Analytic: w.Analytic, OneSided: w.OneSided,
		Workers: w.Workers, Grain: w.Grain,
	}
}

// WireEdge is one probabilistic edge in query-vertex indexing.
type WireEdge struct {
	S    int     `json:"s"`
	T    int     `json:"t"`
	Prob float64 `json:"prob"`
}

// WireAnswer carries one core.Answer bit-exactly: Go's encoding/json
// round-trips float64 through the shortest decimal representation, so
// probabilities survive the network unchanged.
type WireAnswer struct {
	Source int        `json:"source"`
	Prob   float64    `json:"prob"`
	Genes  []int32    `json:"genes"`
	Edges  []WireEdge `json:"edges"`
}

// AnswerToWire / Answer convert between core and wire answers.
func AnswerToWire(a core.Answer) WireAnswer {
	w := WireAnswer{Source: a.Source, Prob: a.Prob}
	if len(a.Genes) > 0 {
		w.Genes = make([]int32, len(a.Genes))
		for i, g := range a.Genes {
			w.Genes[i] = int32(g)
		}
	}
	if len(a.Edges) > 0 {
		w.Edges = make([]WireEdge, len(a.Edges))
		for i, e := range a.Edges {
			w.Edges[i] = WireEdge{S: e.S, T: e.T, Prob: e.P}
		}
	}
	return w
}

func (w WireAnswer) Answer() core.Answer {
	a := core.Answer{Source: w.Source, Prob: w.Prob}
	if len(w.Genes) > 0 {
		a.Genes = make([]gene.ID, len(w.Genes))
		for i, g := range w.Genes {
			a.Genes[i] = gene.ID(g)
		}
	}
	if len(w.Edges) > 0 {
		a.Edges = make([]grn.Edge, len(w.Edges))
		for i, e := range w.Edges {
			a.Edges[i] = grn.Edge{S: e.S, T: e.T, P: e.Prob}
		}
	}
	return a
}

// AnswersToWire converts a source-ordered answer run for the wire.
func AnswersToWire(answers []core.Answer) []WireAnswer {
	out := make([]WireAnswer, len(answers))
	for i, a := range answers {
		out[i] = AnswerToWire(a)
	}
	return out
}

// AnswersFromWire rebuilds a wire answer run as core answers.
func AnswersFromWire(ws []WireAnswer) []core.Answer {
	out := make([]core.Answer, len(ws))
	for i, w := range ws {
		out[i] = w.Answer()
	}
	return out
}

// WireStats mirrors core.Stats (minus the plan, which the coordinator
// already holds); durations travel as nanoseconds.
type WireStats struct {
	InferNs           int64  `json:"inferNs,omitempty"`
	TraversalNs       int64  `json:"traversalNs,omitempty"`
	RefinementNs      int64  `json:"refinementNs,omitempty"`
	MarkovNs          int64  `json:"markovNs,omitempty"`
	MonteCarloNs      int64  `json:"monteCarloNs,omitempty"`
	TotalNs           int64  `json:"totalNs,omitempty"`
	IOCost            uint64 `json:"ioCost,omitempty"`
	IOHits            uint64 `json:"ioHits,omitempty"`
	NodePairsVisited  int    `json:"nodePairsVisited,omitempty"`
	NodePairsPruned   int    `json:"nodePairsPruned,omitempty"`
	PointPairsChecked int    `json:"pointPairsChecked,omitempty"`
	PointPairsPruned  int    `json:"pointPairsPruned,omitempty"`
	CandidateGenes    int    `json:"candidateGenes,omitempty"`
	CandidateMatrices int    `json:"candidateMatrices,omitempty"`
	MatricesPrunedL5  int    `json:"matricesPrunedL5,omitempty"`
	Answers           int    `json:"answers,omitempty"`
	CacheHits         int    `json:"cacheHits,omitempty"`
	CacheMisses       int    `json:"cacheMisses,omitempty"`
	QueryVertices     int    `json:"queryVertices,omitempty"`
	QueryEdges        int    `json:"queryEdges,omitempty"`
}

// StatsToWire / Stats convert between core and wire stats.
func StatsToWire(st core.Stats) WireStats {
	return WireStats{
		InferNs:      st.InferQuery.Nanoseconds(),
		TraversalNs:  st.Traversal.Nanoseconds(),
		RefinementNs: st.Refinement.Nanoseconds(),
		MarkovNs:     st.MarkovPrune.Nanoseconds(),
		MonteCarloNs: st.MonteCarlo.Nanoseconds(),
		TotalNs:      st.Total.Nanoseconds(),
		IOCost:       st.IOCost, IOHits: st.IOHits,
		NodePairsVisited: st.NodePairsVisited, NodePairsPruned: st.NodePairsPruned,
		PointPairsChecked: st.PointPairsChecked, PointPairsPruned: st.PointPairsPruned,
		CandidateGenes: st.CandidateGenes, CandidateMatrices: st.CandidateMatrices,
		MatricesPrunedL5: st.MatricesPrunedL5, Answers: st.Answers,
		CacheHits: st.CacheHits, CacheMisses: st.CacheMisses,
		QueryVertices: st.QueryVertices, QueryEdges: st.QueryEdges,
	}
}

func (w WireStats) Stats() core.Stats {
	return core.Stats{
		InferQuery:  time.Duration(w.InferNs),
		Traversal:   time.Duration(w.TraversalNs),
		Refinement:  time.Duration(w.RefinementNs),
		MarkovPrune: time.Duration(w.MarkovNs),
		MonteCarlo:  time.Duration(w.MonteCarloNs),
		Total:       time.Duration(w.TotalNs),
		IOCost:      w.IOCost, IOHits: w.IOHits,
		NodePairsVisited: w.NodePairsVisited, NodePairsPruned: w.NodePairsPruned,
		PointPairsChecked: w.PointPairsChecked, PointPairsPruned: w.PointPairsPruned,
		CandidateGenes: w.CandidateGenes, CandidateMatrices: w.CandidateMatrices,
		MatricesPrunedL5: w.MatricesPrunedL5, Answers: w.Answers,
		CacheHits: w.CacheHits, CacheMisses: w.CacheMisses,
		QueryVertices: w.QueryVertices, QueryEdges: w.QueryEdges,
	}
}

// ExecRequest is the /cluster/exec envelope: one query, one global
// shard. Solo marks the P=1 degenerate case: the shard server runs the
// caller's params untouched on its single shard — the same sequential
// stream the unsharded engine uses — instead of the derived-seed scatter
// leg.
type ExecRequest struct {
	Proto   int    `json:"proto"`
	QueryID string `json:"queryId"`
	Kind    string `json:"kind"`
	// NumShards is the GLOBAL partition count P; the shard server rejects
	// a mismatch with its own topology (a misconfigured cluster must fail
	// loudly, not return wrong-seeded answers).
	NumShards int `json:"numShards"`
	// Shard is the GLOBAL shard index to execute.
	Shard int  `json:"shard"`
	Solo  bool `json:"solo,omitempty"`
	// K > 0 runs the shard leg in streamed top-k mode with a local sink
	// (accept frames + a local top-k run); 0 returns the full run.
	K int `json:"k,omitempty"`

	Genes   []int32         `json:"genes"`
	Columns [][]float64     `json:"columns,omitempty"` // KindMatrix
	Edges   []WireEdge      `json:"edges,omitempty"`   // KindGraph
	Params  WireParams      `json:"params"`
	Plan    json.RawMessage `json:"plan,omitempty"`
}

// ExecFrame is one NDJSON response frame of /cluster/exec. Exactly one
// of the fields is set.
type ExecFrame struct {
	// Accept streams one locally-accepted top-k answer the moment the
	// shard's sink admits it — the floor-propagation feed. Performance
	// only: the terminal run is authoritative.
	Accept *AcceptFrame `json:"accept,omitempty"`
	// Done is the terminal success frame.
	Done *ExecDone `json:"done,omitempty"`
	// Error is the terminal failure frame.
	Error string `json:"error,omitempty"`
}

// AcceptFrame is one streamed top-k acceptance.
type AcceptFrame struct {
	Shard  int     `json:"shard"`
	Source int     `json:"source"`
	Prob   float64 `json:"prob"`
}

// ExecDone carries the executed shard's answers. For K > 0 the run is
// the shard's local top-k (sink results); otherwise the full
// source-ascending run. Infer reports the server-side query-graph
// inference stats (KindMatrix only).
type ExecDone struct {
	Shard   int          `json:"shard"`
	Answers []WireAnswer `json:"answers"`
	Stats   WireStats    `json:"stats"`
	Infer   *WireStats   `json:"infer,omitempty"`
}

// BatchExecRequest is the /cluster/exec-batch envelope: the whole batch
// for one global shard, so the shard server preserves the per-shard
// γ-group traversal and permutation sharing of the in-process batch
// scatter.
type BatchExecRequest struct {
	Proto         int             `json:"proto"`
	QueryID       string          `json:"queryId"`
	NumShards     int             `json:"numShards"`
	Shard         int             `json:"shard"`
	Solo          bool            `json:"solo,omitempty"`
	SharedPerms   bool            `json:"sharedPerms,omitempty"`
	ItemTimeoutMs int64           `json:"itemTimeoutMs,omitempty"`
	Items         []BatchExecItem `json:"items"`
}

// BatchExecItem is one batch query in the envelope.
type BatchExecItem struct {
	Kind    string          `json:"kind"`
	K       int             `json:"k,omitempty"`
	Genes   []int32         `json:"genes"`
	Columns [][]float64     `json:"columns,omitempty"`
	Edges   []WireEdge      `json:"edges,omitempty"`
	Params  WireParams      `json:"params"`
	Plan    json.RawMessage `json:"plan,omitempty"`
}

// BatchExecFrame is one NDJSON response frame of /cluster/exec-batch:
// per-item frames as items retire on the shard, then one terminal frame.
type BatchExecFrame struct {
	Item  *BatchItemFrame `json:"item,omitempty"`
	Done  *BatchExecDone  `json:"done,omitempty"`
	Error string          `json:"error,omitempty"`
}

// BatchItemFrame is one item's result on the executed shard.
type BatchItemFrame struct {
	Index   int          `json:"index"`
	Shard   int          `json:"shard"`
	Answers []WireAnswer `json:"answers,omitempty"`
	Stats   WireStats    `json:"stats"`
	Infer   *WireStats   `json:"infer,omitempty"`
	Error   string       `json:"error,omitempty"`
}

// BatchExecDone is the terminal batch frame: the shard's batch-level
// sharing counters.
type BatchExecDone struct {
	Groups     int `json:"groups"`
	PermFills  int `json:"permFills,omitempty"`
	PermProbes int `json:"permProbes,omitempty"`
}

// MutateRequest is the /cluster/mutate envelope. The coordinator places
// the source on its ring, then sends the mutation to EVERY replica of
// the owning shard; Shard names the expected global shard so a
// misconfigured server (different ring or topology) rejects instead of
// placing the source elsewhere.
type MutateRequest struct {
	Proto  int    `json:"proto"`
	Op     string `json:"op"` // "add" | "remove"
	Source int    `json:"source"`
	Shard  int    `json:"shard"`
	// NumShards guards topology agreement like ExecRequest.NumShards.
	NumShards int         `json:"numShards"`
	Genes     []int32     `json:"genes,omitempty"`
	Columns   [][]float64 `json:"columns,omitempty"`
}

// MutateWireResponse acknowledges a replicated mutation on one replica.
type MutateWireResponse struct {
	Status string `json:"status"`
	Source int    `json:"source"`
	Shard  int    `json:"shard"`
	// Matrices is the replica's LOCAL source count after the mutation
	// (its served shards only).
	Matrices int `json:"matrices"`
}

// FloorRequest is the /cluster/floor envelope: raise the named live
// query's top-k floor to the coordinator's current global floor.
// Fire-and-forget; a query that already finished acks trivially.
type FloorRequest struct {
	Proto   int     `json:"proto"`
	QueryID string  `json:"queryId"`
	Floor   float64 `json:"floor"`
}

// FloorResponse acknowledges a floor update.
type FloorResponse struct {
	Status string `json:"status"`
	// Sinks is the number of live sinks the floor reached.
	Sinks int `json:"sinks"`
}

// InfoResponse is the GET /cluster/info snapshot: the shard server's
// identity, served shards and per-shard load — the coordinator's health
// probe and rebalance-signal input.
type InfoResponse struct {
	Proto     int             `json:"proto"`
	Role      string          `json:"role"`
	NumShards int             `json:"numShards"`
	Shards    []WireShardInfo `json:"shards"`
	// Durable state, when the server runs over a durable store.
	Gen      uint64 `json:"gen,omitempty"`
	WarmBoot bool   `json:"warmBoot,omitempty"`
}

// WireShardInfo is one served shard's load snapshot.
type WireShardInfo struct {
	// Global is the shard's global index; Local its index on this server.
	Global    int    `json:"global"`
	Local     int    `json:"local"`
	Sources   int    `json:"sources"`
	Vectors   int    `json:"vectors"`
	Queries   uint64 `json:"queries"`
	Mutations uint64 `json:"mutations"`
}
