package cluster

import (
	"encoding/binary"
	"hash/fnv"
	"sort"
)

// Consistent-hash placement of sources onto global shards. Placement
// must be a pure function of the source ID that every process — the
// coordinator and each shard server — computes identically and
// independently, so that mutations route to the owning shard's WAL
// without a placement service and replicas of a shard agree on
// membership. A hash ring with virtual nodes keeps the per-shard load
// within a few percent of uniform and, unlike source-mod-P, moves only
// ~1/P of the keyspace when the shard count changes — the property the
// rebalancing story (DESIGN.md §15) relies on.
//
// The ring is deterministic: same (shards, vnodes) in, same placement
// out, on every architecture (FNV-1a over fixed-width big-endian keys).

// DefaultVirtualNodes is the per-shard virtual node count. 64 vnodes
// keep the max/mean shard load under ~1.15 for realistic source counts
// while the ring stays small enough to rebuild on every Open.
const DefaultVirtualNodes = 64

// Ring places sources on global shards by consistent hashing.
type Ring struct {
	shards int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds the ring for numShards global shards with vnodes
// virtual nodes per shard (DefaultVirtualNodes when <= 0).
func NewRing(numShards, vnodes int) *Ring {
	if numShards < 1 {
		numShards = 1
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{
		shards: numShards,
		points: make([]ringPoint, 0, numShards*vnodes),
	}
	for sh := 0; sh < numShards; sh++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  ringHash('v', uint64(sh), uint64(v)),
				shard: sh,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare) break toward the smaller shard so
		// the ring order is fully deterministic.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// NumShards returns the global shard count the ring places onto.
func (r *Ring) NumShards() int { return r.shards }

// Place maps a source ID onto its global shard: the first virtual node
// clockwise of the source's hash.
func (r *Ring) Place(source int) int {
	h := ringHash('k', uint64(uint32(source)), 0)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// PlaceFunc returns Place as a shard.Options.PlaceFunc-shaped closure.
func (r *Ring) PlaceFunc() func(source int) int {
	return r.Place
}

// ringHash hashes a domain-separated fixed-width key with FNV-1a. The
// domain byte keeps virtual-node points and source keys in disjoint
// hash families.
func ringHash(domain byte, a, b uint64) uint64 {
	var buf [17]byte
	buf[0] = domain
	binary.BigEndian.PutUint64(buf[1:9], a)
	binary.BigEndian.PutUint64(buf[9:17], b)
	h := fnv.New64a()
	_, _ = h.Write(buf[:])
	return h.Sum64()
}
