package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"github.com/imgrn/imgrn/internal/shard"
)

// Client is the coordinator's HTTP client for shard-server RPCs. Every
// hop gets its own timeout; idempotent reads (exec, batch exec, info)
// retry transient failures — network errors and 502/503/504 — with
// exponential backoff, while mutations NEVER auto-retry (an add is not
// idempotent: a retry racing a slow first attempt could double-apply;
// the caller surfaces the partial-failure error instead). Streaming
// endpoints parse NDJSON frames as they arrive so accept frames reach
// the floor logic mid-query, not after.
type Client struct {
	// HTTP is the underlying transport client (a fresh http.Client when
	// nil). Its Timeout is left alone; per-hop deadlines come from
	// Timeout via context.
	HTTP *http.Client
	// Timeout bounds each RPC attempt (default 60s; streaming execs hold
	// the connection for the query's duration, so this is a query budget,
	// not a handshake budget).
	Timeout time.Duration
	// Retries is the extra attempts for idempotent reads (default 2).
	Retries int
	// Backoff is the first retry's delay, doubled per retry (default 50ms).
	Backoff time.Duration

	met *Metrics
}

func (c *Client) withDefaults() {
	if c.HTTP == nil {
		c.HTTP = &http.Client{}
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
}

// errTransient marks failures worth retrying on an idempotent RPC.
type errTransient struct{ err error }

func (e errTransient) Error() string { return e.err.Error() }
func (e errTransient) Unwrap() error { return e.err }

func transient(err error) bool {
	var t errTransient
	return errors.As(err, &t)
}

// post issues one POST attempt with the per-hop deadline and returns the
// response, classifying transport failures as transient. The caller owns
// resp.Body.
func (c *Client) post(ctx context.Context, url string, body []byte) (*http.Response, context.CancelFunc, error) {
	hopCtx, cancel := context.WithTimeout(ctx, c.Timeout)
	req, err := http.NewRequestWithContext(hopCtx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		cancel()
		if ctx.Err() != nil {
			return nil, nil, ctx.Err()
		}
		return nil, nil, errTransient{fmt.Errorf("cluster: %s: %w", url, err)}
	}
	return resp, cancel, nil
}

// outcomeOf maps an RPC error to its metric label.
func outcomeOf(err error) string {
	switch {
	case err == nil:
		return OutcomeOK
	case errors.Is(err, context.DeadlineExceeded):
		return OutcomeTimeout
	default:
		return OutcomeError
	}
}

// retryIdempotent runs attempt up to 1+Retries times, backing off on
// transient failures. attempt must be safe to repeat wholesale.
func (c *Client) retryIdempotent(ctx context.Context, attempt func() error) error {
	backoff := c.Backoff
	var err error
	for try := 0; ; try++ {
		start := time.Now()
		err = attempt()
		c.met.rpc(outcomeOf(err), time.Since(start).Seconds())
		if err == nil || !transient(err) || try == c.Retries {
			return err
		}
		c.met.retry()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		backoff *= 2
	}
}

// statusError drains the error payload of a non-200 response and decides
// transience. Shard servers answer handled failures with the standard
// {"error": "..."} envelope.
func statusError(url string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	msg := strings.TrimSpace(string(body))
	var env struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &env) == nil && env.Error != "" {
		msg = env.Error
	}
	err := fmt.Errorf("cluster: %s: HTTP %d: %s", url, resp.StatusCode, msg)
	switch resp.StatusCode {
	case http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout,
		http.StatusTooManyRequests: // admission-control shedding is transient by design
		return errTransient{err}
	}
	if strings.Contains(msg, "protocol version") {
		return fmt.Errorf("%w: %v", ErrProtoVersion, err)
	}
	return err
}

// Exec runs one ExecRequest against one shard server, streaming accept
// frames into onAccept (which may be nil) as they arrive and returning
// the terminal Done frame. Idempotent: the executed leg is a
// deterministic read, so transient failures retry the whole request —
// the caller's floor sink must dedup accepts by source, since a retry
// (or a hedged duplicate) replays them.
func (c *Client) Exec(ctx context.Context, baseURL string, req *ExecRequest, onAccept func(AcceptFrame)) (*ExecDone, error) {
	req.Proto = ProtoVersion
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var done *ExecDone
	err = c.retryIdempotent(ctx, func() error {
		done = nil
		return c.execOnce(ctx, baseURL+PathExec, body, onAccept, &done)
	})
	if err != nil {
		return nil, err
	}
	return done, nil
}

func (c *Client) execOnce(ctx context.Context, url string, body []byte, onAccept func(AcceptFrame), out **ExecDone) error {
	resp, cancel, err := c.post(ctx, url, body)
	if err != nil {
		return err
	}
	defer cancel()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(url, resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var frame ExecFrame
		if err := json.Unmarshal(line, &frame); err != nil {
			return errTransient{fmt.Errorf("cluster: %s: bad frame: %w", url, err)}
		}
		switch {
		case frame.Accept != nil:
			if onAccept != nil {
				onAccept(*frame.Accept)
			}
		case frame.Done != nil:
			*out = frame.Done
			return nil
		case frame.Error != "":
			// The server executed and failed: a real error, not transient.
			return fmt.Errorf("cluster: %s: %s", url, frame.Error)
		}
	}
	if err := sc.Err(); err != nil {
		return errTransient{fmt.Errorf("cluster: %s: stream: %w", url, err)}
	}
	// Stream ended without a terminal frame: the server died mid-query.
	return errTransient{fmt.Errorf("cluster: %s: stream truncated before terminal frame", url)}
}

// ExecBatch runs one BatchExecRequest against one shard server,
// streaming per-item frames into onItem as items retire and returning
// the terminal counters. Idempotent like Exec; the caller must keep the
// FIRST frame per (item, shard) since a retry replays earlier items.
func (c *Client) ExecBatch(ctx context.Context, baseURL string, req *BatchExecRequest, onItem func(BatchItemFrame)) (*BatchExecDone, error) {
	req.Proto = ProtoVersion
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	var done *BatchExecDone
	err = c.retryIdempotent(ctx, func() error {
		done = nil
		return c.execBatchOnce(ctx, baseURL+PathExecBatch, body, onItem, &done)
	})
	if err != nil {
		return nil, err
	}
	return done, nil
}

func (c *Client) execBatchOnce(ctx context.Context, url string, body []byte, onItem func(BatchItemFrame), out **BatchExecDone) error {
	resp, cancel, err := c.post(ctx, url, body)
	if err != nil {
		return err
	}
	defer cancel()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(url, resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var frame BatchExecFrame
		if err := json.Unmarshal(line, &frame); err != nil {
			return errTransient{fmt.Errorf("cluster: %s: bad frame: %w", url, err)}
		}
		switch {
		case frame.Item != nil:
			if onItem != nil {
				onItem(*frame.Item)
			}
		case frame.Done != nil:
			*out = frame.Done
			return nil
		case frame.Error != "":
			return fmt.Errorf("cluster: %s: %s", url, frame.Error)
		}
	}
	if err := sc.Err(); err != nil {
		return errTransient{fmt.Errorf("cluster: %s: stream: %w", url, err)}
	}
	return errTransient{fmt.Errorf("cluster: %s: stream truncated before terminal frame", url)}
}

// Mutate sends one replicated-mutation leg to one replica. Exactly one
// attempt — mutations are not idempotent — and remote sentinel statuses
// map back to the shard-package errors so coordinator callers keep their
// errors.Is checks: 409 → ErrSourceExists, 404 → ErrSourceNotFound,
// 413 → ErrMutationTooLarge.
func (c *Client) Mutate(ctx context.Context, baseURL string, req *MutateRequest) (*MutateWireResponse, error) {
	req.Proto = ProtoVersion
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	url := baseURL + PathMutate
	start := time.Now()
	resp, cancel, err := c.post(ctx, url, body)
	if err != nil {
		c.met.rpc(outcomeOf(err), time.Since(start).Seconds())
		return nil, err
	}
	defer cancel()
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		c.met.rpc(OutcomeError, time.Since(start).Seconds())
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("cluster: %s: source %d: %w", url, req.Source, shard.ErrSourceExists)
	case http.StatusNotFound:
		c.met.rpc(OutcomeError, time.Since(start).Seconds())
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("cluster: %s: source %d: %w", url, req.Source, shard.ErrSourceNotFound)
	case http.StatusRequestEntityTooLarge:
		c.met.rpc(OutcomeError, time.Since(start).Seconds())
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("cluster: %s: source %d: %w", url, req.Source, shard.ErrMutationTooLarge)
	default:
		c.met.rpc(OutcomeError, time.Since(start).Seconds())
		return nil, statusError(url, resp)
	}
	var ack MutateWireResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		c.met.rpc(OutcomeError, time.Since(start).Seconds())
		return nil, fmt.Errorf("cluster: %s: bad ack: %w", url, err)
	}
	c.met.rpc(OutcomeOK, time.Since(start).Seconds())
	return &ack, nil
}

// Floor pushes a top-k floor update for a live query. Best-effort: one
// attempt, errors are the caller's to ignore (the floor is a
// performance hint; the terminal merge never depends on it).
func (c *Client) Floor(ctx context.Context, baseURL string, req *FloorRequest) error {
	req.Proto = ProtoVersion
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	url := baseURL + PathFloor
	resp, cancel, err := c.post(ctx, url, body)
	if err != nil {
		return err
	}
	defer cancel()
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: %s: HTTP %d", url, resp.StatusCode)
	}
	return nil
}

// Info fetches one shard server's membership/health snapshot. Retries
// like any idempotent read.
func (c *Client) Info(ctx context.Context, baseURL string) (*InfoResponse, error) {
	url := baseURL + PathInfo
	var out *InfoResponse
	err := c.retryIdempotent(ctx, func() error {
		hopCtx, cancel := context.WithTimeout(ctx, c.Timeout)
		defer cancel()
		req, err := http.NewRequestWithContext(hopCtx, http.MethodGet, url, nil)
		if err != nil {
			return err
		}
		resp, err := c.HTTP.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			return errTransient{fmt.Errorf("cluster: %s: %w", url, err)}
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return statusError(url, resp)
		}
		var info InfoResponse
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			return errTransient{fmt.Errorf("cluster: %s: bad info: %w", url, err)}
		}
		if info.Proto != ProtoVersion {
			return fmt.Errorf("%w: %s speaks %d, this binary speaks %d", ErrProtoVersion, url, info.Proto, ProtoVersion)
		}
		out = &info
		return nil
	})
	return out, err
}
