package cluster

import "github.com/imgrn/imgrn/internal/obs"

// Metrics are the coordinator-side cluster and RPC metric families
// (imgrn_cluster_*, imgrn_rpc_*). Like the server's families (PR 2
// convention) every series that can ever appear is pre-seeded at
// registration, so dashboards distinguish "healthy cluster, zero
// partial failures" from "metric not wired".
type Metrics struct {
	// Cluster shape and health.
	Members        *obs.Gauge // configured shard servers
	MembersHealthy *obs.Gauge // servers whose last health probe succeeded

	// Scatter-gather outcomes.
	Scatters        *obs.Counter // scatter-gather fan-outs issued
	PartialFailures *obs.Counter // scatters aborted by an unreachable shard
	FloorUpdates    *obs.Counter // top-k floor pushes to remote shards
	RebalanceSigs   *obs.Counter // imbalance-hook firings over remote loads

	// Per-RPC accounting.
	Requests  obs.CounterVec // by outcome (ok, error, timeout)
	Retries   *obs.Counter   // idempotent-read retries after transient failures
	Hedges    *obs.Counter   // hedge attempts launched
	HedgeWins *obs.Counter   // hedge attempts that produced the winning reply
	Seconds   *obs.Histogram // per-RPC wall time (seconds)
}

// RPC outcome label values.
const (
	OutcomeOK      = "ok"
	OutcomeError   = "error"
	OutcomeTimeout = "timeout"
)

// NewMetrics registers the cluster families on r (nil-safe: a nil
// registry returns nil Metrics, and all Metrics methods tolerate nil).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	m := &Metrics{
		Members: r.Gauge("imgrn_cluster_members",
			"Configured shard servers in the cluster topology."),
		MembersHealthy: r.Gauge("imgrn_cluster_members_healthy",
			"Shard servers whose most recent health probe succeeded."),
		Scatters: r.Counter("imgrn_cluster_scatters_total",
			"Scatter-gather query fan-outs issued by the coordinator."),
		PartialFailures: r.Counter("imgrn_cluster_partial_failures_total",
			"Scatters aborted because a shard was unreachable on every replica."),
		FloorUpdates: r.Counter("imgrn_cluster_floor_updates_total",
			"Top-k floor updates pushed to remote shard servers."),
		RebalanceSigs: r.Counter("imgrn_cluster_rebalance_signals_total",
			"Shard-imbalance signals raised over remote per-shard loads."),
		Requests: r.CounterVec("imgrn_rpc_requests_total",
			"Cluster RPC attempts by outcome.", "outcome"),
		Retries: r.Counter("imgrn_rpc_retries_total",
			"Cluster RPC retries of idempotent reads after transient failures."),
		Hedges: r.Counter("imgrn_rpc_hedges_total",
			"Hedged replica attempts launched before the primary answered."),
		HedgeWins: r.Counter("imgrn_rpc_hedge_wins_total",
			"Hedged replica attempts that produced the winning reply."),
		Seconds: r.Histogram("imgrn_rpc_seconds",
			"Cluster RPC wall time in seconds.", obs.DefLatencyBuckets),
	}
	for _, outcome := range []string{OutcomeOK, OutcomeError, OutcomeTimeout} {
		m.Requests.With(outcome)
	}
	return m
}

// The nil-safe recording helpers keep call sites branch-free.

func (m *Metrics) rpc(outcome string, seconds float64) {
	if m == nil {
		return
	}
	m.Requests.With(outcome).Inc()
	m.Seconds.Observe(seconds)
}

func (m *Metrics) retry() {
	if m != nil {
		m.Retries.Inc()
	}
}

func (m *Metrics) hedge() {
	if m != nil {
		m.Hedges.Inc()
	}
}

func (m *Metrics) hedgeWin() {
	if m != nil {
		m.HedgeWins.Inc()
	}
}

func (m *Metrics) scatter() {
	if m != nil {
		m.Scatters.Inc()
	}
}

func (m *Metrics) partialFailure() {
	if m != nil {
		m.PartialFailures.Inc()
	}
}

func (m *Metrics) floorUpdate() {
	if m != nil {
		m.FloorUpdates.Inc()
	}
}

func (m *Metrics) rebalanceSignal() {
	if m != nil {
		m.RebalanceSigs.Inc()
	}
}

func (m *Metrics) setMembers(total, healthy int) {
	if m == nil {
		return
	}
	m.Members.Set(int64(total))
	m.MembersHealthy.Set(int64(healthy))
}
