// Package cluster is the distributed serving tier (DESIGN.md §15): a
// scatter-gather Coordinator that fans IM-GRN queries, batches and
// mutations out to remote shard servers over HTTP, with consistent-hash
// placement of sources onto global shards (ring.go), R-way replication
// of every shard with hedged replicated reads (client.go,
// coordinator.go), coordinator-resolved plans shipped in every request
// envelope (proto.go), and cross-shard top-k floor propagation so remote
// shards early-terminate like in-process ones. The in-process
// shard.Coordinator is the single-node degenerate case of the same code
// path: at the same shard count and placement the remote answers are
// byte-identical (pinned by goldens).
//
// The package also retains the original data-clustering workflows this
// package grew from — grouping data sources by the similarity of their
// inferred GRNs, the disease-clustering workflow of the paper's
// Example 2 (this file): the distance between two data sources compares
// their edge existence probabilities over the gene pairs both sources
// measure, so sources with the same wiring are close regardless of
// sample counts. Both k-medoids (PAM-style) and average-linkage
// agglomerative clustering are provided; everything operates on an
// explicit distance matrix so alternative distances plug in directly.
package cluster

import (
	"fmt"
	"math"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/vecmath"
)

// Options tunes GRN distance computation.
type Options struct {
	// Scorer computes edge probabilities (AnalyticScorer{} when nil).
	Scorer grn.Scorer
	// Gamma is the inference threshold at which the compared GRN edge
	// sets are materialized (0.9 when 0). A high threshold keeps the
	// comparison on confident edges: the calibrated measure is uniform
	// under the null, so raw-probability differences between unrelated
	// pairs would otherwise dominate the distance.
	Gamma float64
	// MaxSharedGenes caps the shared gene panel considered per pair to
	// bound the O(s²) probability evaluations (16 when 0).
	MaxSharedGenes int
}

func (o Options) withDefaults() Options {
	if o.Scorer == nil {
		o.Scorer = grn.AnalyticScorer{}
	}
	if o.Gamma == 0 {
		o.Gamma = 0.9
	}
	if o.MaxSharedGenes <= 0 {
		o.MaxSharedGenes = 16
	}
	return o
}

// Distance returns the regulatory-structure distance between two matrices:
// the Jaccard distance between the edge sets of their inferred GRNs
// restricted to the gene pairs measured by both sources,
//
//	d = |E_a Δ E_b| / |E_a ∪ E_b|       (0 when both edge sets are empty).
//
// Sources sharing fewer than two genes are maximally distant (1).
func Distance(a, b *gene.Matrix, opts Options) (float64, error) {
	opts = opts.withDefaults()
	shared := sharedGenes(a, b, opts.MaxSharedGenes)
	if len(shared) < 2 {
		return 1, nil
	}
	if err := opts.Scorer.Prepare(a); err != nil {
		return 0, fmt.Errorf("cluster: preparing scorer for source %d: %w", a.Source, err)
	}
	pa := pairProbs(a, shared, opts.Scorer)
	if err := opts.Scorer.Prepare(b); err != nil {
		return 0, fmt.Errorf("cluster: preparing scorer for source %d: %w", b.Source, err)
	}
	pb := pairProbs(b, shared, opts.Scorer)
	union, symdiff := 0, 0
	for i := range pa {
		ea := pa[i] > opts.Gamma
		eb := pb[i] > opts.Gamma
		if ea || eb {
			union++
			if ea != eb {
				symdiff++
			}
		}
	}
	if union == 0 {
		return 0, nil // both GRNs are empty over the shared panel
	}
	return float64(symdiff) / float64(union), nil
}

// sharedGenes returns up to limit gene IDs present in both matrices,
// in a's column order for determinism.
func sharedGenes(a, b *gene.Matrix, limit int) []gene.ID {
	var out []gene.ID
	for _, g := range a.Genes() {
		if b.Has(g) {
			out = append(out, g)
			if len(out) == limit {
				break
			}
		}
	}
	return out
}

// pairProbs evaluates edge probabilities for every pair of the shared
// genes within one matrix, in canonical pair order.
func pairProbs(m *gene.Matrix, shared []gene.ID, sc grn.Scorer) []float64 {
	cols := make([]int, len(shared))
	for i, g := range shared {
		cols[i] = m.IndexOf(g)
	}
	out := make([]float64, 0, len(shared)*(len(shared)-1)/2)
	for i := 0; i < len(cols); i++ {
		for j := i + 1; j < len(cols); j++ {
			out = append(out, sc.Score(m, cols[i], cols[j]))
		}
	}
	return out
}

// DistanceMatrix computes the symmetric source-by-source distance matrix
// of db (ordered by db iteration order).
func DistanceMatrix(db *gene.Database, opts Options) (*vecmath.Matrix, error) {
	n := db.Len()
	dm := vecmath.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d, err := Distance(db.Matrix(i), db.Matrix(j), opts)
			if err != nil {
				return nil, err
			}
			dm.Set(i, j, d)
			dm.Set(j, i, d)
		}
	}
	return dm, nil
}

// Result is a clustering of the db's matrices.
type Result struct {
	// Assign[i] is the cluster of db.Matrix(i), in [0, K).
	Assign []int
	// Medoids[c] is the index of cluster c's representative matrix
	// (k-medoids only; -1 entries for agglomerative results).
	Medoids []int
	// Cost is the sum of distances to assigned medoids (k-medoids) or the
	// final merge height (agglomerative).
	Cost float64
}

// K returns the number of clusters.
func (r Result) K() int { return len(r.Medoids) }

// KMedoids clusters n items with PAM-style alternating assignment and
// medoid update over the distance matrix, restarted `restarts` times from
// random medoids (deterministic per rng).
func KMedoids(dm *vecmath.Matrix, k, restarts int, rng *randgen.Rand) (Result, error) {
	n := dm.Rows
	if dm.Cols != n {
		return Result{}, fmt.Errorf("cluster: distance matrix is %dx%d", dm.Rows, dm.Cols)
	}
	if k < 1 || k > n {
		return Result{}, fmt.Errorf("cluster: k=%d out of range [1,%d]", k, n)
	}
	if restarts < 1 {
		restarts = 1
	}
	best := Result{Cost: math.Inf(1)}
	for r := 0; r < restarts; r++ {
		medoids := rng.SampleWithoutReplacement(n, k)
		assign := make([]int, n)
		for iter := 0; iter < 64; iter++ {
			// Assignment step. A medoid always belongs to its own cluster
			// (ties between duplicate points would otherwise strand it).
			changed := false
			for i := 0; i < n; i++ {
				bestC, bestD := 0, math.Inf(1)
				for c, m := range medoids {
					if m == i {
						bestC, bestD = c, -1
						break
					}
					if d := dm.At(i, m); d < bestD {
						bestC, bestD = c, d
					}
				}
				if assign[i] != bestC {
					assign[i] = bestC
					changed = true
				}
			}
			// Medoid update: the member minimizing intra-cluster distance.
			for c := range medoids {
				bestM, bestSum := medoids[c], math.Inf(1)
				for i := 0; i < n; i++ {
					if assign[i] != c {
						continue
					}
					var sum float64
					for j := 0; j < n; j++ {
						if assign[j] == c {
							sum += dm.At(i, j)
						}
					}
					if sum < bestSum {
						bestM, bestSum = i, sum
					}
				}
				if medoids[c] != bestM {
					medoids[c] = bestM
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		var cost float64
		for i := 0; i < n; i++ {
			cost += dm.At(i, medoids[assign[i]])
		}
		if cost < best.Cost {
			best = Result{
				Assign:  append([]int(nil), assign...),
				Medoids: append([]int(nil), medoids...),
				Cost:    cost,
			}
		}
	}
	return best, nil
}

// Agglomerative performs average-linkage hierarchical clustering, cutting
// the dendrogram at k clusters.
func Agglomerative(dm *vecmath.Matrix, k int) (Result, error) {
	n := dm.Rows
	if dm.Cols != n {
		return Result{}, fmt.Errorf("cluster: distance matrix is %dx%d", dm.Rows, dm.Cols)
	}
	if k < 1 || k > n {
		return Result{}, fmt.Errorf("cluster: k=%d out of range [1,%d]", k, n)
	}
	// Active clusters as member lists.
	clusters := make([][]int, n)
	for i := range clusters {
		clusters[i] = []int{i}
	}
	lastMerge := 0.0
	for len(clusters) > k {
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < len(clusters); i++ {
			for j := i + 1; j < len(clusters); j++ {
				if d := avgLinkage(dm, clusters[i], clusters[j]); d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		merged := append(append([]int(nil), clusters[bi]...), clusters[bj]...)
		clusters[bi] = merged
		clusters = append(clusters[:bj], clusters[bj+1:]...)
		lastMerge = bd
	}
	assign := make([]int, n)
	medoids := make([]int, len(clusters))
	for c, members := range clusters {
		for _, m := range members {
			assign[m] = c
		}
		medoids[c] = -1
	}
	return Result{Assign: assign, Medoids: medoids, Cost: lastMerge}, nil
}

func avgLinkage(dm *vecmath.Matrix, a, b []int) float64 {
	var sum float64
	for _, i := range a {
		for _, j := range b {
			sum += dm.At(i, j)
		}
	}
	return sum / float64(len(a)*len(b))
}

// Purity scores a clustering against ground-truth labels: the fraction of
// items whose cluster's majority label matches their own. 1 is perfect.
func Purity(assign []int, labels []int) float64 {
	if len(assign) != len(labels) || len(assign) == 0 {
		return 0
	}
	counts := make(map[int]map[int]int)
	for i, c := range assign {
		if counts[c] == nil {
			counts[c] = make(map[int]int)
		}
		counts[c][labels[i]]++
	}
	correct := 0
	for _, byLabel := range counts {
		best := 0
		for _, n := range byLabel {
			if n > best {
				best = n
			}
		}
		correct += best
	}
	return float64(correct) / float64(len(assign))
}
