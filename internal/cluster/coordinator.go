package cluster

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/obs"
)

// Coordinator is the scatter-gather front of the distributed serving
// tier: it owns no data, only the topology, the consistent-hash ring and
// an HTTP client, and answers the same Engine surface as the in-process
// shard.Coordinator by fanning each query out to the R replicas of every
// global shard. The determinism contract of DESIGN.md §10 carries over
// unchanged because the scatter legs are the same legs: the coordinator
// resolves the plan once, ships it (plan wire format) with the base seed
// in every envelope, and each shard server derives SeedFrom(Seed,
// globalShard) exactly as the in-process scatter does — so at the same
// shard count and placement, remote answers are byte-identical to
// in-process ones no matter which replica served each leg.

// ErrShardUnavailable reports a scatter leg that failed on every replica
// of its shard — the documented partial-failure mode: the query returns
// this error rather than a silently incomplete answer set. Matchable
// with errors.Is; the wrapped text names the shard and each replica's
// failure.
var ErrShardUnavailable = errors.New("cluster: shard unavailable on all replicas")

// CoordinatorOptions configures a Coordinator.
type CoordinatorOptions struct {
	// Topology is the cluster shape (required).
	Topology Topology
	// VirtualNodes per shard on the placement ring (DefaultVirtualNodes
	// when 0). Must match the shard servers' rings.
	VirtualNodes int
	// Client is the RPC client (a default-tuned one when nil).
	Client *Client
	// Registry receives the imgrn_cluster_*/imgrn_rpc_* families (nil
	// disables metrics).
	Registry *obs.Registry
	// HedgeAfter launches a read against the next replica when the
	// current one hasn't answered within this window (250ms when 0;
	// negative disables hedging — failover on error only).
	HedgeAfter time.Duration
	// FloorEvery is the cross-shard top-k floor push cadence (25ms when
	// 0; negative disables floor propagation).
	FloorEvery time.Duration
	// HealthEvery is the membership health-probe cadence (2s when 0).
	HealthEvery time.Duration
	// ImbalanceRatio and OnImbalance mirror shard.Options: the rebalance
	// hook fires after a health probe that finds the most loaded global
	// shard holding more than ImbalanceRatio times the sources of the
	// least loaded one (2 when <= 1).
	ImbalanceRatio float64
	OnImbalance    func(loads []int)
}

func (o CoordinatorOptions) withDefaults() CoordinatorOptions {
	o.Topology = o.Topology.withDefaults()
	if o.Client == nil {
		o.Client = &Client{}
	}
	if o.HedgeAfter == 0 {
		o.HedgeAfter = 250 * time.Millisecond
	}
	if o.FloorEvery == 0 {
		o.FloorEvery = 25 * time.Millisecond
	}
	if o.HealthEvery <= 0 {
		o.HealthEvery = 2 * time.Second
	}
	if o.ImbalanceRatio <= 1 {
		o.ImbalanceRatio = 2
	}
	return o
}

// Coordinator fans queries, batches and mutations out to remote shard
// servers. Safe for concurrent use.
type Coordinator struct {
	opts   CoordinatorOptions
	topo   Topology
	ring   *Ring
	client *Client
	met    *Metrics

	qid    atomic.Uint64
	prefix string // process-unique query-ID prefix

	mu      sync.Mutex
	healthy []bool
	infos   []*InfoResponse // last successful probe per server; nil until probed
	probed  bool

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
}

// New builds a Coordinator over the topology. It performs no I/O: the
// first health snapshot comes from Start's probe loop (or an on-demand
// probe from Members/Matrices).
func New(opts CoordinatorOptions) (*Coordinator, error) {
	opts = opts.withDefaults()
	if err := opts.Topology.Validate(); err != nil {
		return nil, err
	}
	c := &Coordinator{
		opts:    opts,
		topo:    opts.Topology,
		ring:    NewRing(opts.Topology.NumShards, opts.VirtualNodes),
		client:  opts.Client,
		met:     NewMetrics(opts.Registry),
		prefix:  fmt.Sprintf("c%d", os.Getpid()),
		healthy: make([]bool, len(opts.Topology.Servers)),
		infos:   make([]*InfoResponse, len(opts.Topology.Servers)),
		stop:    make(chan struct{}),
	}
	c.client.withDefaults()
	c.client.met = c.met
	c.met.setMembers(len(c.topo.Servers), 0)
	return c, nil
}

// Ring exposes the placement ring (shared with shard servers by
// construction: same NumShards, same VirtualNodes).
func (c *Coordinator) Ring() *Ring { return c.ring }

// Topology returns the cluster shape.
func (c *Coordinator) Topology() Topology { return c.topo }

// NumShards reports the GLOBAL shard count — the same number the
// in-process coordinator reports for an equivalent local deployment, so
// /stats output is deployment-transparent.
func (c *Coordinator) NumShards() int { return c.topo.NumShards }

// Placement reports the global shard the ring places source on. The
// coordinator holds no membership set, so ok reflects placement
// computability (always true), not presence.
func (c *Coordinator) Placement(source int) (int, bool) {
	return c.ring.Place(source), true
}

// Start launches the health-probe loop; Close stops it.
func (c *Coordinator) Start() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.opts.HealthEvery)
		defer t.Stop()
		c.RefreshHealth(context.Background())
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.RefreshHealth(context.Background())
			}
		}
	}()
}

// Close stops the probe loop and waits for it.
func (c *Coordinator) Close() error {
	c.stopOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
	return nil
}

// RefreshHealth probes every server once, in parallel, updating the
// health snapshot, the membership gauges and the imbalance signal.
func (c *Coordinator) RefreshHealth(ctx context.Context) {
	ctx, cancel := context.WithTimeout(ctx, c.client.Timeout)
	defer cancel()
	infos := make([]*InfoResponse, len(c.topo.Servers))
	var wg sync.WaitGroup
	for i, url := range c.topo.Servers {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			info, err := c.client.Info(ctx, url)
			if err == nil {
				infos[i] = info
			}
		}(i, url)
	}
	wg.Wait()

	healthyN := 0
	c.mu.Lock()
	for i, info := range infos {
		c.healthy[i] = info != nil
		if info != nil {
			c.infos[i] = info
			healthyN++
		}
	}
	c.probed = true
	c.mu.Unlock()
	c.met.setMembers(len(c.topo.Servers), healthyN)
	c.checkImbalance()
}

// ensureProbed runs one synchronous probe if none has happened yet, so
// Members/Matrices work before Start.
func (c *Coordinator) ensureProbed(ctx context.Context) {
	c.mu.Lock()
	done := c.probed
	c.mu.Unlock()
	if !done {
		c.RefreshHealth(ctx)
	}
}

// Member is one shard server's membership row.
type Member struct {
	// Index and URL identify the server in the topology roster.
	Index int    `json:"index"`
	URL   string `json:"url"`
	// Healthy reports the last probe's outcome; the remaining fields are
	// from the last successful probe (zero before one succeeds).
	Healthy bool  `json:"healthy"`
	Shards  []int `json:"shards"`
	Sources int   `json:"sources"`
	// Gen and WarmBoot surface durable-store state for warm-restart
	// verification.
	Gen      uint64 `json:"gen,omitempty"`
	WarmBoot bool   `json:"warmBoot,omitempty"`
}

// Members returns the membership/health table (probing synchronously if
// the probe loop hasn't run yet).
func (c *Coordinator) Members(ctx context.Context) []Member {
	c.ensureProbed(ctx)
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Member, len(c.topo.Servers))
	for i, url := range c.topo.Servers {
		m := Member{Index: i, URL: url, Healthy: c.healthy[i], Shards: c.topo.ServerShards(i)}
		if info := c.infos[i]; info != nil {
			for _, sh := range info.Shards {
				m.Sources += sh.Sources
			}
			m.Gen, m.WarmBoot = info.Gen, info.WarmBoot
		}
		out[i] = m
	}
	return out
}

// Loads returns per-GLOBAL-shard source counts assembled from the last
// health snapshot: for each shard, the first replica that reported it.
// Shards no replica has reported yet count zero.
func (c *Coordinator) Loads() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.loadsLocked()
}

func (c *Coordinator) loadsLocked() []int {
	loads := make([]int, c.topo.NumShards)
	seen := make([]bool, c.topo.NumShards)
	for _, info := range c.infos {
		if info == nil {
			continue
		}
		for _, sh := range info.Shards {
			if sh.Global >= 0 && sh.Global < len(loads) && !seen[sh.Global] {
				loads[sh.Global] = sh.Sources
				seen[sh.Global] = true
			}
		}
	}
	return loads
}

// ShardInfos returns one load row per GLOBAL shard assembled from the
// last health snapshot (first replica reporting each shard); unreported
// shards appear as zero rows. The coordinator-mode /stats endpoint is
// built on this, keeping /stats deployment-transparent.
func (c *Coordinator) ShardInfos() []WireShardInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WireShardInfo, c.topo.NumShards)
	seen := make([]bool, c.topo.NumShards)
	for g := range out {
		out[g] = WireShardInfo{Global: g, Local: -1}
	}
	for _, info := range c.infos {
		if info == nil {
			continue
		}
		for _, sh := range info.Shards {
			if sh.Global >= 0 && sh.Global < len(out) && !seen[sh.Global] {
				out[sh.Global] = sh
				seen[sh.Global] = true
			}
		}
	}
	return out
}

// Matrices reports the total indexed sources across global shards (each
// shard counted once, not per replica).
func (c *Coordinator) Matrices() int {
	c.ensureProbed(context.Background())
	total := 0
	for _, n := range c.Loads() {
		total += n
	}
	return total
}

// checkImbalance mirrors shard.Coordinator's rebalance signal over the
// remote per-shard loads.
func (c *Coordinator) checkImbalance() {
	if c.topo.NumShards < 2 {
		return
	}
	loads := c.Loads()
	minLoad, maxLoad := loads[0], loads[0]
	for _, l := range loads[1:] {
		if l < minLoad {
			minLoad = l
		}
		if l > maxLoad {
			maxLoad = l
		}
	}
	imbalanced := false
	if minLoad == 0 {
		imbalanced = maxLoad > 1
	} else {
		imbalanced = float64(maxLoad) > c.opts.ImbalanceRatio*float64(minLoad)
	}
	if imbalanced {
		c.met.rebalanceSignal()
		if c.opts.OnImbalance != nil {
			c.opts.OnImbalance(loads)
		}
	}
}

// replicaOrder returns the URLs to try for shard g: the replica set in
// primary-first order, stably rotated so currently-healthy replicas come
// first (an unhealthy primary shouldn't eat the first attempt's timeout
// on every query).
func (c *Coordinator) replicaOrder(g int) []string {
	replicas := c.topo.Replicas(g)
	c.mu.Lock()
	defer c.mu.Unlock()
	urls := make([]string, 0, len(replicas))
	for _, i := range replicas {
		if c.healthy[i] || !c.probed {
			urls = append(urls, c.topo.Servers[i])
		}
	}
	for _, i := range replicas {
		if c.probed && !c.healthy[i] {
			urls = append(urls, c.topo.Servers[i])
		}
	}
	return urls
}

// nextQueryID mints a cluster-unique query ID for floor propagation.
func (c *Coordinator) nextQueryID() string {
	return fmt.Sprintf("%s-%d", c.prefix, c.qid.Add(1))
}

// execShard runs one scatter leg — global shard g of req — with hedged
// replicated reads: the primary-ordered healthy replicas are tried with
// an attempt launched immediately, another after each HedgeAfter of
// silence, and an immediate failover on error; the first success wins
// and cancels the rest. Accept frames from duplicate attempts are the
// caller's to dedup (by source). Every replica failing yields
// ErrShardUnavailable.
func (c *Coordinator) execShard(ctx context.Context, g int, req ExecRequest, onAccept func(AcceptFrame)) (*ExecDone, error) {
	req.Shard = g
	urls := c.replicaOrder(g)
	if len(urls) == 0 {
		return nil, fmt.Errorf("%w: shard %d has no replicas", ErrShardUnavailable, g)
	}
	attemptCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		done    *ExecDone
		err     error
		attempt int
	}
	ch := make(chan result, len(urls))
	launched := 0
	launch := func() {
		attempt := launched
		url := urls[attempt]
		launched++
		legReq := req // per-attempt copy: Exec stamps Proto on its argument
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			done, err := c.client.Exec(attemptCtx, url, &legReq, onAccept)
			ch <- result{done, err, attempt}
		}()
	}
	launch()

	var hedge <-chan time.Time
	if c.opts.HedgeAfter > 0 {
		t := time.NewTimer(c.opts.HedgeAfter)
		defer t.Stop()
		hedge = t.C
	}
	pending := 1
	var errs []error
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-hedge:
			hedge = nil
			if launched < len(urls) {
				c.met.hedge()
				launch()
				pending++
			}
		case r := <-ch:
			pending--
			if r.err == nil {
				if r.attempt > 0 {
					c.met.hedgeWin()
				}
				return r.done, nil
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			errs = append(errs, fmt.Errorf("replica %s: %w", urls[r.attempt], r.err))
			if launched < len(urls) {
				launch()
				pending++
			} else if pending == 0 {
				return nil, fmt.Errorf("%w: shard %d: %w", ErrShardUnavailable, g, errors.Join(errs...))
			}
		}
	}
}

// floorTracker dedups streamed accept frames by source and maintains the
// coordinator's view of the global top-k floor. Dedup is load-bearing,
// not cosmetic: hedged (or retried) attempts replay a shard's accepts,
// and double-offering a source would over-raise the floor past the true
// global k-th best — which prunes real answers on other shards.
type floorTracker struct {
	mu   sync.Mutex
	seen map[int]struct{}
	sink *core.TopKSink
}

func newFloorTracker(k int, alpha float64) *floorTracker {
	return &floorTracker{seen: make(map[int]struct{}), sink: core.NewTopKSink(k, alpha)}
}

func (f *floorTracker) accept(fr AcceptFrame) {
	f.mu.Lock()
	if _, dup := f.seen[fr.Source]; !dup {
		f.seen[fr.Source] = struct{}{}
		f.sink.Offer(core.Answer{Source: fr.Source, Prob: fr.Prob})
	}
	f.mu.Unlock()
}

func (f *floorTracker) floor() float64 { return f.sink.Floor() }

// pushFloors runs the floor-propagation loop for one live top-k scatter:
// every FloorEvery it pushes a risen global floor to every server, so
// remote sinks raise their local floors and early-terminate refinement
// on the cross-shard Markov bound — the networked version of the shared
// in-process sink. Best-effort by design: the terminal merge is computed
// from Done frames only and never depends on a floor push landing.
func (c *Coordinator) pushFloors(ctx context.Context, queryID string, ft *floorTracker, stop <-chan struct{}) {
	defer c.wg.Done()
	t := time.NewTicker(c.opts.FloorEvery)
	defer t.Stop()
	last := ft.floor() // the alpha floor; only rises are worth pushing
	for {
		select {
		case <-stop:
			return
		case <-ctx.Done():
			return
		case <-t.C:
			f := ft.floor()
			if f <= last {
				continue
			}
			last = f
			req := FloorRequest{QueryID: queryID, Floor: f}
			var wg sync.WaitGroup
			for _, url := range c.topo.Servers {
				wg.Add(1)
				go func(url string) {
					defer wg.Done()
					r := req
					_ = c.client.Floor(ctx, url, &r)
				}(url)
			}
			wg.Wait()
			c.met.floorUpdate()
		}
	}
}

// scatter fans proto out over all global shards (Shard stamped per leg)
// and gathers the terminal frames in shard order. k > 0 additionally
// runs the floor-propagation machinery. The first failed leg cancels the
// rest and surfaces as the scatter's error (partial results are never
// returned).
func (c *Coordinator) scatter(ctx context.Context, proto ExecRequest, k int, alpha float64) ([]*ExecDone, error) {
	c.met.scatter()
	P := c.topo.NumShards
	scatterCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var onAccept func(AcceptFrame)
	if k > 0 && c.opts.FloorEvery > 0 {
		ft := newFloorTracker(k, alpha)
		onAccept = ft.accept
		stop := make(chan struct{})
		defer close(stop)
		c.wg.Add(1)
		go c.pushFloors(scatterCtx, proto.QueryID, ft, stop)
	}

	dones := make([]*ExecDone, P)
	errs := make([]error, P)
	var wg sync.WaitGroup
	for g := 0; g < P; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			done, err := c.execShard(scatterCtx, g, proto, onAccept)
			if err != nil {
				errs[g] = err
				cancel() // first failure aborts the in-flight legs
				return
			}
			dones[g] = done
		}(g)
	}
	wg.Wait()
	// Report the root cause, not the fallout: the first leg to fail
	// cancels its in-flight siblings, so sibling legs surface
	// context.Canceled. Prefer a leg whose error is its own.
	firstG, firstErr := -1, error(nil)
	for g, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil || (errors.Is(firstErr, context.Canceled) && !errors.Is(err, context.Canceled)) {
			firstG, firstErr = g, err
		}
	}
	if firstErr != nil {
		if errors.Is(firstErr, ErrShardUnavailable) {
			c.met.partialFailure()
		}
		return nil, fmt.Errorf("cluster: scatter leg %d: %w", firstG, firstErr)
	}
	return dones, nil
}

// matrixToWire extracts the query matrix payload (queries are source -1
// server-side, mirroring the HTTP handlers).
func matrixToWire(mq *gene.Matrix) (genes []int32, columns [][]float64) {
	ids := mq.Genes()
	genes = make([]int32, len(ids))
	columns = make([][]float64, len(ids))
	for j, id := range ids {
		genes[j] = int32(id)
		columns[j] = mq.Col(j)
	}
	return genes, columns
}

// graphToWire extracts an already-inferred query graph.
func graphToWire(q *grn.Graph) (genes []int32, edges []WireEdge) {
	ids := q.Genes()
	genes = make([]int32, len(ids))
	for j, id := range ids {
		genes[j] = int32(id)
	}
	for _, e := range q.Edges() {
		edges = append(edges, WireEdge{S: e.S, T: e.T, Prob: e.P})
	}
	return genes, edges
}

// planOnce validates params and resolves the execution plan — the
// coordinator-side decision point; shards only execute.
func (c *Coordinator) planOnce(params core.Params) (core.Params, error) {
	if err := params.Validate(); err != nil {
		return params, err
	}
	return params.ResolvePlan()
}

// protoFor assembles the shard-independent part of an exec envelope.
func (c *Coordinator) protoFor(kind string, genes []int32, columns [][]float64, edges []WireEdge, params core.Params, k int) (ExecRequest, error) {
	req := ExecRequest{
		QueryID:   c.nextQueryID(),
		Kind:      kind,
		NumShards: c.topo.NumShards,
		K:         k,
		Genes:     genes,
		Columns:   columns,
		Edges:     edges,
		Params:    ParamsToWire(params),
	}
	if params.Plan != nil {
		encoded, err := params.Plan.EncodeWire()
		if err != nil {
			return req, err
		}
		req.Plan = encoded
	}
	if c.topo.NumShards == 1 {
		// The P=1 degenerate case: the single shard runs the caller's
		// params untouched on the unsharded sequential path, exactly like
		// the in-process coordinator; top-k ranks at the coordinator.
		req.Solo = true
		req.K = 0
	}
	return req, nil
}

// gather merges the terminal frames into the final answer set and the
// aggregate stats, mirroring shard.Coordinator's merge exactly: K-less
// scatters concatenate the source-ascending per-shard runs (placement
// partitions the sources, so a k-way merge of shard-ordered runs is the
// engine's answer order); top-k scatters offer every shard's local top-k
// into a fresh bounded sink — correct because a shard's members of the
// global top-k are necessarily within its local top-k.
func (c *Coordinator) gather(dones []*ExecDone, params core.Params, k int, start time.Time) ([]core.Answer, core.Stats) {
	var answers []core.Answer
	if k > 0 {
		sink := core.NewTopKSink(k, params.Alpha)
		for _, d := range dones {
			for _, wa := range d.Answers {
				sink.Offer(wa.Answer())
			}
		}
		answers = sink.Results()
	} else {
		runs := make([][]core.Answer, len(dones))
		for i, d := range dones {
			runs[i] = AnswersFromWire(d.Answers)
		}
		answers = core.MergeAnswerRuns(runs)
	}

	var st core.Stats
	shardStats := make([]core.Stats, len(dones))
	for i, d := range dones {
		shardStats[i] = d.Stats.Stats()
	}
	core.MergeScatterStats(&st, shardStats)
	// Query-graph inference ran identically on every shard server (base
	// seed, query matrix only); report shard 0's run once, like the
	// in-process inferOnce.
	if inf := dones[0].Infer; inf != nil {
		ist := inf.Stats()
		st.InferQuery = ist.InferQuery
		st.QueryVertices = ist.QueryVertices
		st.QueryEdges = ist.QueryEdges
	} else {
		st.QueryVertices = dones[0].Stats.QueryVertices
		st.QueryEdges = dones[0].Stats.QueryEdges
	}
	st.Plan = params.Plan
	st.Total = time.Since(start)
	return answers, st
}

// soloResult unwraps the P=1 terminal frame: the single leg ran the full
// unsharded query, so its run and stats pass through whole.
func soloResult(done *ExecDone, params core.Params, k int, start time.Time) ([]core.Answer, core.Stats) {
	answers := AnswersFromWire(done.Answers)
	if k > 0 {
		core.RankAnswers(answers)
		if len(answers) > k {
			answers = answers[:k]
		}
	}
	st := done.Stats.Stats()
	if inf := done.Infer; inf != nil {
		st.InferQuery = inf.Stats().InferQuery
	}
	st.Plan = params.Plan
	st.Total = time.Since(start)
	return answers, st
}

// QueryContext answers an IM-GRN feature-matrix query scatter-gather
// over the cluster. The query matrix ships to every shard server, each
// of which infers the query GRN locally at the base seed (inference
// reads only the query matrix, so every server derives the identical
// graph) and executes its shard leg at the derived seed.
func (c *Coordinator) QueryContext(ctx context.Context, mq *gene.Matrix, params core.Params) ([]core.Answer, core.Stats, error) {
	return c.queryMatrix(ctx, mq, params, 0)
}

// QueryTopKContext answers a feature-matrix query keeping the k best
// matches, with remote floor propagation standing in for the shared
// in-process sink. k <= 0 ranks all matches.
func (c *Coordinator) QueryTopKContext(ctx context.Context, mq *gene.Matrix, params core.Params, k int) ([]core.Answer, core.Stats, error) {
	if k <= 0 {
		answers, st, err := c.QueryContext(ctx, mq, params)
		if err != nil {
			return nil, st, err
		}
		in := len(answers)
		mark := params.Trace.Start(obs.StageTopK)
		core.RankAnswers(answers)
		mark.End(in, len(answers))
		return answers, st, nil
	}
	return c.queryMatrix(ctx, mq, params, k)
}

func (c *Coordinator) queryMatrix(ctx context.Context, mq *gene.Matrix, params core.Params, k int) ([]core.Answer, core.Stats, error) {
	params, err := c.planOnce(params)
	if err != nil {
		return nil, core.Stats{}, err
	}
	start := time.Now()
	genes, columns := matrixToWire(mq)
	proto, err := c.protoFor(KindMatrix, genes, columns, nil, params, k)
	if err != nil {
		return nil, core.Stats{}, err
	}
	dones, err := c.scatter(ctx, proto, k, params.Alpha)
	if err != nil {
		return nil, core.Stats{}, err
	}
	if proto.Solo {
		answers, st := soloResult(dones[0], params, k, start)
		return answers, st, nil
	}
	answers, st := c.gather(dones, params, k, start)
	return answers, st, nil
}

// QueryGraphContext answers a query for an already-inferred query GRN
// scatter-gather over the cluster.
func (c *Coordinator) QueryGraphContext(ctx context.Context, q *grn.Graph, params core.Params) ([]core.Answer, core.Stats, error) {
	params, err := c.planOnce(params)
	if err != nil {
		return nil, core.Stats{}, err
	}
	start := time.Now()
	genes, edges := graphToWire(q)
	proto, err := c.protoFor(KindGraph, genes, nil, edges, params, 0)
	if err != nil {
		return nil, core.Stats{}, err
	}
	dones, err := c.scatter(ctx, proto, 0, params.Alpha)
	if err != nil {
		return nil, core.Stats{}, err
	}
	if proto.Solo {
		answers, st := soloResult(dones[0], params, 0, start)
		return answers, st, nil
	}
	answers, st := c.gather(dones, params, 0, start)
	return answers, st, nil
}

// AddMatrix places m on its ring shard and replicates the add to every
// replica of that shard, all-ack. No automatic retry: adds are not
// idempotent, and a replica that misses the mutation surfaces here as an
// explicit partial-failure error (naming the replicas that did and did
// not ack) rather than as silent divergence.
func (c *Coordinator) AddMatrix(m *gene.Matrix) error {
	ids := m.Genes()
	genes := make([]int32, len(ids))
	cols := make([][]float64, len(ids))
	for j, id := range ids {
		genes[j] = int32(id)
		cols[j] = m.Col(j)
	}
	return c.mutate(&MutateRequest{
		Op: "add", Source: m.Source, Genes: genes, Columns: cols,
	})
}

// RemoveMatrix removes the source from every replica of its ring shard,
// all-ack like AddMatrix.
func (c *Coordinator) RemoveMatrix(source int) error {
	return c.mutate(&MutateRequest{Op: "remove", Source: source})
}

func (c *Coordinator) mutate(req *MutateRequest) error {
	g := c.ring.Place(req.Source)
	req.Shard = g
	req.NumShards = c.topo.NumShards
	replicas := c.topo.Replicas(g)
	ctx, cancel := context.WithTimeout(context.Background(), c.client.Timeout)
	defer cancel()

	errs := make([]error, len(replicas))
	var wg sync.WaitGroup
	for i, server := range replicas {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			legReq := *req
			_, err := c.client.Mutate(ctx, url, &legReq)
			errs[i] = err
		}(i, c.topo.Servers[server])
	}
	wg.Wait()

	var failed []error
	acked := 0
	for i, err := range errs {
		if err == nil {
			acked++
		} else {
			failed = append(failed, fmt.Errorf("replica %s: %w", c.topo.Servers[replicas[i]], err))
		}
	}
	if len(failed) == 0 {
		// The cached health snapshot now miscounts the mutated shard;
		// make the next snapshot consumer (Matrices, Members) re-probe
		// instead of serving pre-mutation loads.
		c.mu.Lock()
		c.probed = false
		c.mu.Unlock()
		return nil
	}
	// Sentinel rejections (source exists / not found) are consistent
	// across replicas when the cluster is in sync; report them as
	// themselves so callers keep their errors.Is checks.
	if acked == 0 {
		return fmt.Errorf("cluster: %s source %d on shard %d failed on all replicas: %w",
			req.Op, req.Source, g, errors.Join(failed...))
	}
	return fmt.Errorf("cluster: %s source %d on shard %d acked by %d/%d replicas (divergent replicas need resync): %w",
		req.Op, req.Source, g, acked, len(replicas), errors.Join(failed...))
}
