package cluster

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/imgrn/imgrn/internal/core"
)

// Distributed batch execution: the remote analogue of the in-process
// batch scatter (DESIGN.md §14). The coordinator resolves every item's
// plan once, then ships the WHOLE batch to each global shard in a single
// BatchExecRequest, so the per-shard prologue, γ-group traversal sharing
// and permutation sharing still happen once per shard per batch — the
// sharing structure is identical to the in-process scatter; only the
// transport changed. Matrix items are inferred on each shard server at
// the base seed (inference reads only the query matrix, so every server
// derives the identical graph), and each server rewrites the per-item
// seed for its GLOBAL shard exactly like the local scatter.
//
// Top-k items use per-(item, shard) local sinks merged here, not the
// networked floor push: batch items retire too quickly for the push
// cadence to pay for its round trips (EXPERIMENTS.md). The merged top-k
// set is still deterministic — a shard's members of an item's global
// top-k are necessarily within that shard's local top-k.
//
// A per-item countdown merges each item as its last shard's FIRST frame
// lands: hedged or retried legs replay their item frames wholesale, so
// later duplicates of a (item, shard) frame are dropped, never merged
// twice.

// QueryBatch answers a batch of queries scatter-gather over the cluster.
// One result per item, in item order; opts.OnResult streams each item as
// its cross-shard merge completes (possibly out of item order).
// Item errors stay per item; a scatter leg failing on every replica
// fails only the items that leg still owed.
func (c *Coordinator) QueryBatch(ctx context.Context, items []core.BatchItem, opts core.BatchOptions) ([]core.BatchResult, core.BatchStats) {
	results := make([]core.BatchResult, len(items))
	bst := core.BatchStats{Queries: len(items)}
	if len(items) == 0 {
		return results, bst
	}
	var bstMu sync.Mutex
	var emitMu sync.Mutex
	finish := func(i int, res core.BatchResult) {
		results[i] = res
		if res.Err != nil {
			bstMu.Lock()
			bst.Errors++
			bstMu.Unlock()
		}
		if opts.OnResult != nil {
			emitMu.Lock()
			opts.OnResult(i, res)
			emitMu.Unlock()
		}
	}

	// Coordinator-side prologue: per-item validation and plan resolution,
	// then the wire envelope. Items that fail here never ship.
	start := time.Now()
	planErrs := core.ResolveBatchPlans(items)
	solo := c.topo.NumShards == 1
	var wire []BatchExecItem
	var live []int // wire index -> items index
	for i := range items {
		if planErrs[i] != nil {
			finish(i, core.BatchResult{Err: planErrs[i]})
			continue
		}
		w := BatchExecItem{K: items[i].K, Params: ParamsToWire(items[i].Params)}
		switch {
		case items[i].Graph != nil:
			w.Kind = KindGraph
			w.Genes, w.Edges = graphToWire(items[i].Graph)
		case items[i].Matrix != nil:
			w.Kind = KindMatrix
			w.Genes, w.Columns = matrixToWire(items[i].Matrix)
		default:
			finish(i, core.BatchResult{Err: core.ErrNoBatchQuery})
			continue
		}
		if items[i].Params.Plan != nil {
			encoded, err := items[i].Params.Plan.EncodeWire()
			if err != nil {
				finish(i, core.BatchResult{Err: err})
				continue
			}
			w.Plan = encoded
		}
		live = append(live, i)
		wire = append(wire, w)
	}
	if len(wire) == 0 {
		return results, bst
	}

	req := BatchExecRequest{
		QueryID:       c.nextQueryID(),
		NumShards:     c.topo.NumShards,
		Solo:          solo,
		SharedPerms:   opts.SharedPerms,
		ItemTimeoutMs: opts.ItemTimeout.Milliseconds(),
		Items:         wire,
	}

	c.met.scatter()
	P := c.topo.NumShards
	scatterCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// frames[g][pos] is the FIRST frame shard g produced for wire item
	// pos; merged[pos] latches so a duplicate frame (hedge/retry replay)
	// can never re-trigger or re-count.
	frames := make([][]*BatchItemFrame, P)
	seen := make([][]atomic.Bool, P)
	for g := 0; g < P; g++ {
		frames[g] = make([]*BatchItemFrame, len(wire))
		seen[g] = make([]atomic.Bool, len(wire))
	}
	remaining := make([]atomic.Int32, len(wire))
	for pos := range remaining {
		remaining[pos].Store(int32(P))
	}

	mergeItem := func(pos int) {
		orig := live[pos]
		if solo {
			// The single leg ran the unsharded batch path: its frame is the
			// item's final result (answers ranked/trimmed server-side by K).
			fr := frames[0][pos]
			if fr.Error != "" {
				finish(orig, core.BatchResult{Err: fmt.Errorf("cluster: batch item %d: %s", orig, fr.Error)})
				return
			}
			st := fr.Stats.Stats()
			st.Plan = items[orig].Params.Plan
			finish(orig, core.BatchResult{Answers: AnswersFromWire(fr.Answers), Stats: st})
			return
		}
		var st core.Stats
		perShard := make([]core.Stats, 0, P)
		runs := make([][]core.Answer, 0, P)
		for g := 0; g < P; g++ {
			fr := frames[g][pos]
			if fr.Error != "" {
				finish(orig, core.BatchResult{Err: fmt.Errorf("shard %d: %s", g, fr.Error)})
				return
			}
			perShard = append(perShard, fr.Stats.Stats())
			runs = append(runs, AnswersFromWire(fr.Answers))
		}
		core.MergeScatterStats(&st, perShard)
		if inf := frames[0][pos].Infer; inf != nil {
			ist := inf.Stats()
			st.InferQuery = ist.InferQuery
			st.QueryVertices = ist.QueryVertices
			st.QueryEdges = ist.QueryEdges
		} else {
			st.QueryVertices = frames[0][pos].Stats.QueryVertices
			st.QueryEdges = frames[0][pos].Stats.QueryEdges
		}
		var merged []core.Answer
		if k := items[orig].K; k > 0 {
			sink := core.NewTopKSink(k, items[orig].Params.Alpha)
			for _, run := range runs {
				for _, a := range run {
					sink.Offer(a)
				}
			}
			merged = sink.Results()
		} else {
			merged = core.MergeAnswerRuns(runs)
		}
		st.Answers = len(merged)
		st.Plan = items[orig].Params.Plan
		st.Total = time.Since(start)
		finish(orig, core.BatchResult{Answers: merged, Stats: st})
	}

	legErrs := make([]error, P)
	var wg sync.WaitGroup
	for g := 0; g < P; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			onItem := func(fr BatchItemFrame) {
				if fr.Index < 0 || fr.Index >= len(wire) {
					return
				}
				if seen[g][fr.Index].Swap(true) {
					return // hedge/retry replay of an already-counted frame
				}
				frCopy := fr
				frames[g][fr.Index] = &frCopy
				if remaining[fr.Index].Add(-1) == 0 {
					mergeItem(fr.Index)
				}
			}
			done, err := c.execBatchShard(scatterCtx, g, req, onItem)
			if err != nil {
				legErrs[g] = err
				return
			}
			bstMu.Lock()
			bst.Groups += done.Groups
			bst.PermFills += done.PermFills
			bst.PermProbes += done.PermProbes
			bstMu.Unlock()
		}(g)
	}
	wg.Wait()

	// Items a failed leg still owed fail explicitly (all merges that will
	// happen have happened: the legs are joined and merges run inside
	// their frame callbacks).
	var legErr error
	for g, err := range legErrs {
		if err != nil {
			c.met.partialFailure()
			legErr = fmt.Errorf("cluster: batch scatter leg %d: %w", g, err)
			break
		}
	}
	for pos := range remaining {
		if remaining[pos].Load() > 0 {
			e := legErr
			if e == nil {
				e = ctx.Err()
			}
			if e == nil {
				e = context.Canceled
			}
			finish(live[pos], core.BatchResult{Err: e})
		}
	}
	return results, bst
}

// execBatchShard is execShard's batch twin: hedged replicated execution
// of one batch leg. Frame replay across attempts is handled by the
// caller's first-wins dedup.
func (c *Coordinator) execBatchShard(ctx context.Context, g int, req BatchExecRequest, onItem func(BatchItemFrame)) (*BatchExecDone, error) {
	req.Shard = g
	urls := c.replicaOrder(g)
	if len(urls) == 0 {
		return nil, fmt.Errorf("%w: shard %d has no replicas", ErrShardUnavailable, g)
	}
	attemptCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	type result struct {
		done    *BatchExecDone
		err     error
		attempt int
	}
	ch := make(chan result, len(urls))
	launched := 0
	launch := func() {
		attempt := launched
		url := urls[attempt]
		launched++
		legReq := req
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			done, err := c.client.ExecBatch(attemptCtx, url, &legReq, onItem)
			ch <- result{done, err, attempt}
		}()
	}
	launch()

	var hedge <-chan time.Time
	if c.opts.HedgeAfter > 0 {
		t := time.NewTimer(c.opts.HedgeAfter)
		defer t.Stop()
		hedge = t.C
	}
	pending := 1
	var errs []error
	for {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-hedge:
			hedge = nil
			if launched < len(urls) {
				c.met.hedge()
				launch()
				pending++
			}
		case r := <-ch:
			pending--
			if r.err == nil {
				if r.attempt > 0 {
					c.met.hedgeWin()
				}
				return r.done, nil
			}
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			errs = append(errs, fmt.Errorf("replica %s: %w", urls[r.attempt], r.err))
			if launched < len(urls) {
				launch()
				pending++
			} else if pending == 0 {
				return nil, joinShardErr(g, errs)
			}
		}
	}
}

func joinShardErr(g int, errs []error) error {
	msg := ""
	for i, e := range errs {
		if i > 0 {
			msg += "; "
		}
		msg += e.Error()
	}
	return fmt.Errorf("%w: shard %d: %s", ErrShardUnavailable, g, msg)
}
