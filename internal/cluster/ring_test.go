package cluster

import "testing"

func TestRingPlaceDeterministicAndInRange(t *testing.T) {
	r1 := NewRing(5, 0)
	r2 := NewRing(5, 0)
	for src := 0; src < 1000; src++ {
		g := r1.Place(src)
		if g < 0 || g >= 5 {
			t.Fatalf("Place(%d) = %d out of range", src, g)
		}
		if g2 := r2.Place(src); g2 != g {
			t.Fatalf("Place(%d) differs across identical rings: %d vs %d", src, g, g2)
		}
		if g3 := r1.PlaceFunc()(src); g3 != g {
			t.Fatalf("PlaceFunc()(%d) = %d, Place = %d", src, g3, g)
		}
	}
}

func TestRingSpreadsLoad(t *testing.T) {
	const shards, sources = 4, 2000
	r := NewRing(shards, 0)
	counts := make([]int, shards)
	for src := 0; src < sources; src++ {
		counts[r.Place(src)]++
	}
	for g, n := range counts {
		// Consistent hashing with 64 vnodes is not perfectly uniform, but
		// every shard must carry a real share of the keyspace.
		if n < sources/shards/4 {
			t.Errorf("shard %d holds %d/%d sources — ring badly skewed: %v", g, n, sources, counts)
		}
	}
}

func TestRingStability(t *testing.T) {
	// Growing the ring from 4 to 5 shards must not reshuffle everything:
	// consistent hashing moves roughly 1/5 of the keys, round-robin would
	// move ~4/5.
	small, big := NewRing(4, 0), NewRing(5, 0)
	moved := 0
	const sources = 2000
	for src := 0; src < sources; src++ {
		if small.Place(src) != big.Place(src) {
			moved++
		}
	}
	if moved > sources/2 {
		t.Errorf("%d/%d sources moved when adding one shard; want consistent-hash stability", moved, sources)
	}
}

func TestTopologyReplicasAndServerShards(t *testing.T) {
	topo := Topology{Servers: []string{"a", "b", "c"}, NumShards: 3, Replication: 2}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	// Shard g lives on servers (g+r) mod S.
	hosts := make(map[int]int) // shard -> replica count seen via ServerShards
	for i := range topo.Servers {
		for _, g := range topo.ServerShards(i) {
			hosts[g]++
		}
	}
	for g := 0; g < topo.NumShards; g++ {
		if hosts[g] != topo.Replication {
			t.Errorf("shard %d hosted by %d servers, want %d", g, hosts[g], topo.Replication)
		}
		reps := topo.Replicas(g)
		if len(reps) != 2 || reps[0] != g%3 || reps[1] != (g+1)%3 {
			t.Errorf("Replicas(%d) = %v", g, reps)
		}
	}
}

func TestTopologyValidate(t *testing.T) {
	if err := (Topology{}).Validate(); err == nil {
		t.Error("empty topology validated")
	}
	if err := (Topology{Servers: []string{"a"}, NumShards: 1, Replication: 2}).Validate(); err == nil {
		t.Error("replication > servers validated")
	}
}

func TestWireStatsRoundTrip(t *testing.T) {
	st := WireStats{
		InferNs: 1, TraversalNs: 2, RefinementNs: 3, MarkovNs: 4, MonteCarloNs: 5, TotalNs: 6,
		IOCost: 7, IOHits: 8, NodePairsVisited: 9, NodePairsPruned: 10,
		PointPairsChecked: 11, PointPairsPruned: 12, CandidateGenes: 13,
		CandidateMatrices: 14, MatricesPrunedL5: 15, Answers: 16,
		CacheHits: 17, CacheMisses: 18, QueryVertices: 19, QueryEdges: 20,
	}
	if got := StatsToWire(st.Stats()); got != st {
		t.Errorf("stats round trip: got %+v want %+v", got, st)
	}
}
