package cluster

import (
	"testing"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/vecmath"
)

// plantedDB builds 2·perFamily matrices over a shared 4-gene panel with
// two distinct wirings: family 0 has gene0→gene1, family 1 has
// gene0→gene2. Returns the database and ground-truth family labels.
func plantedDB(t *testing.T, perFamily int, seed uint64) (*gene.Database, []int) {
	t.Helper()
	rng := randgen.New(seed)
	db := gene.NewDatabase()
	var labels []int
	for src := 0; src < 2*perFamily; src++ {
		family := src / perFamily
		labels = append(labels, family)
		l := 20 + rng.Intn(8)
		g0 := make([]float64, l)
		g1 := make([]float64, l)
		g2 := make([]float64, l)
		g3 := make([]float64, l)
		for i := 0; i < l; i++ {
			g0[i] = rng.Gaussian(0, 1)
			if family == 0 {
				g1[i] = 0.95*g0[i] + 0.2*rng.Gaussian(0, 1)
				g2[i] = rng.Gaussian(0, 1)
			} else {
				g2[i] = 0.95*g0[i] + 0.2*rng.Gaussian(0, 1)
				g1[i] = rng.Gaussian(0, 1)
			}
			g3[i] = rng.Gaussian(0, 1)
		}
		m, err := gene.NewMatrix(src, []gene.ID{0, 1, 2, 3}, [][]float64{g0, g1, g2, g3})
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	return db, labels
}

func TestDistanceSeparatesFamilies(t *testing.T) {
	db, _ := plantedDB(t, 3, 1)
	within, err := Distance(db.Matrix(0), db.Matrix(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	across, err := Distance(db.Matrix(0), db.Matrix(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if within >= across {
		t.Errorf("within-family distance %v >= across-family %v", within, across)
	}
}

func TestDistanceDisjointGenes(t *testing.T) {
	a, _ := gene.NewMatrix(0, []gene.ID{1, 2}, [][]float64{{1, 2, 3}, {3, 1, 2}})
	b, _ := gene.NewMatrix(1, []gene.ID{7, 8}, [][]float64{{1, 2, 3}, {3, 1, 2}})
	d, err := Distance(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("disjoint sources distance = %v, want 1", d)
	}
}

func TestDistanceSelfIsSmall(t *testing.T) {
	db, _ := plantedDB(t, 1, 2)
	d, err := Distance(db.Matrix(0), db.Matrix(0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("self distance = %v, want 0", d)
	}
}

func TestKMedoidsRecoversFamilies(t *testing.T) {
	db, labels := plantedDB(t, 6, 3)
	dm, err := DistanceMatrix(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := KMedoids(dm, 2, 4, randgen.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if p := Purity(res.Assign, labels); p < 0.9 {
		t.Errorf("k-medoids purity = %v", p)
	}
	if len(res.Medoids) != 2 || res.K() != 2 {
		t.Errorf("medoids = %v", res.Medoids)
	}
	for _, m := range res.Medoids {
		if m < 0 || m >= db.Len() {
			t.Errorf("medoid %d out of range", m)
		}
	}
}

func TestAgglomerativeRecoversFamilies(t *testing.T) {
	db, labels := plantedDB(t, 6, 5)
	dm, err := DistanceMatrix(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Agglomerative(dm, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p := Purity(res.Assign, labels); p < 0.9 {
		t.Errorf("agglomerative purity = %v", p)
	}
}

func TestClusteringValidation(t *testing.T) {
	dm := vecmath.NewMatrix(3, 3)
	if _, err := KMedoids(dm, 0, 1, randgen.New(1)); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := KMedoids(dm, 4, 1, randgen.New(1)); err == nil {
		t.Error("k>n should error")
	}
	if _, err := Agglomerative(dm, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := Agglomerative(vecmath.NewMatrix(2, 3), 1); err == nil {
		t.Error("non-square matrix should error")
	}
}

func TestKMedoidsSingleCluster(t *testing.T) {
	db, _ := plantedDB(t, 2, 6)
	dm, err := DistanceMatrix(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := KMedoids(dm, 1, 2, randgen.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Assign {
		if c != 0 {
			t.Error("single-cluster assignment wrong")
		}
	}
}

func TestPurity(t *testing.T) {
	if p := Purity([]int{0, 0, 1, 1}, []int{5, 5, 9, 9}); p != 1 {
		t.Errorf("perfect purity = %v", p)
	}
	if p := Purity([]int{0, 0, 0, 0}, []int{1, 1, 2, 2}); p != 0.5 {
		t.Errorf("merged purity = %v", p)
	}
	if p := Purity(nil, nil); p != 0 {
		t.Errorf("empty purity = %v", p)
	}
	if p := Purity([]int{0}, []int{0, 1}); p != 0 {
		t.Errorf("mismatched lengths purity = %v", p)
	}
}
