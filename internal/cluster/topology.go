package cluster

import "fmt"

// Topology is the static cluster shape: the shard-server roster, the
// global shard count P, and the replication factor R. Every process in
// the cluster is configured with the same topology (the -shards-at
// roster, in order); shard-to-server assignment is then implicit —
// shard g lives on servers (g+r) mod S for r in [0, R) — so adding a
// flag, not a placement service, defines the cluster.
type Topology struct {
	// Servers are the shard-server base URLs, in roster order. A server's
	// index in this slice is its identity (-server-index).
	Servers []string
	// NumShards is the global partition count P (len(Servers) when 0).
	NumShards int
	// Replication is the replica count R per shard (2 when 0, clamped to
	// len(Servers)). R >= 2 keeps every shard readable through a single
	// server failure.
	Replication int
}

// withDefaults resolves the zero values; Validate reports the rest.
func (t Topology) withDefaults() Topology {
	if t.NumShards <= 0 {
		t.NumShards = len(t.Servers)
	}
	if t.Replication <= 0 {
		t.Replication = 2
	}
	if t.Replication > len(t.Servers) {
		t.Replication = len(t.Servers)
	}
	return t
}

// Validate checks the topology is servable.
func (t Topology) Validate() error {
	if len(t.Servers) == 0 {
		return fmt.Errorf("cluster: topology has no servers")
	}
	if t.NumShards < 1 {
		return fmt.Errorf("cluster: topology has %d shards", t.NumShards)
	}
	if t.Replication < 1 || t.Replication > len(t.Servers) {
		return fmt.Errorf("cluster: replication %d out of range [1,%d]", t.Replication, len(t.Servers))
	}
	return nil
}

// Replicas returns the server indexes hosting global shard g, primary
// first: (g+r) mod S for r in [0, R).
func (t Topology) Replicas(g int) []int {
	out := make([]int, t.Replication)
	for r := 0; r < t.Replication; r++ {
		out[r] = (g + r) % len(t.Servers)
	}
	return out
}

// ServerShards returns the global shards hosted by server i, ascending —
// the shard subset that server builds its local store over.
func (t Topology) ServerShards(i int) []int {
	var out []int
	for g := 0; g < t.NumShards; g++ {
		for _, s := range t.Replicas(g) {
			if s == i {
				out = append(out, g)
				break
			}
		}
	}
	return out
}
