package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		const n = 100
		var seen [n]atomic.Int32
		ec := New(context.Background(), nil, workers)
		if err := ec.ForEach(n, func(i int) error {
			seen[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers, n = 3, 64
	var cur, peak atomic.Int32
	ec := New(context.Background(), nil, workers)
	err := ec.ForEach(n, func(int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(200 * time.Microsecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, budget %d", p, workers)
	}
}

func TestForEachStopsOnFirstError(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int32
	ec := New(context.Background(), nil, 4)
	err := ec.ForEach(1000, func(i int) error {
		if calls.Add(1) == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if c := calls.Load(); c >= 1000 {
		t.Fatalf("fan-out did not stop early: %d calls", c)
	}
}

func TestForEachHonorsCancellation(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		ec := New(ctx, nil, workers)
		var calls atomic.Int32
		var once sync.Once
		err := ec.ForEach(1000, func(i int) error {
			calls.Add(1)
			once.Do(cancel)
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if c := calls.Load(); c >= 1000 {
			t.Fatalf("workers=%d: cancellation ignored, %d calls", workers, c)
		}
	}
}

func TestForEachPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ec := New(ctx, nil, 2)
	if err := ec.ForEach(10, func(int) error {
		t.Fatal("fn called under a cancelled context")
		return nil
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// n = 0 still reports the cancellation.
	if err := ec.ForEach(0, func(int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("n=0 err = %v, want context.Canceled", err)
	}
}

func TestNewDefaults(t *testing.T) {
	ec := New(nil, nil, 0)
	if ec.Ctx() == nil {
		t.Fatal("nil ctx not defaulted")
	}
	if ec.Workers() != 1 || ec.Parallel() {
		t.Fatalf("workers = %d, parallel = %v; want 1, false", ec.Workers(), ec.Parallel())
	}
	if err := ec.Err(); err != nil {
		t.Fatalf("background Err = %v", err)
	}
	if bg := Background(nil); bg.Parallel() || bg.IO() != nil {
		t.Fatal("Background should be sequential with the given reader")
	}
}
