package exec

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// ChunkPanic wraps a panic that escaped fn on a worker goroutine of a
// ForEach fan-out. The scheduler recovers it on the worker, cancels the
// remaining chunks, and re-panics in the calling goroutine with this
// wrapper so the panic surfaces where the fan-out was requested while
// preserving the worker's stack.
type ChunkPanic struct {
	Value any    // the original panic value
	Stack []byte // the worker goroutine's stack at the time of the panic
}

func (p *ChunkPanic) Error() string {
	return fmt.Sprintf("exec: panic in parallel work unit: %v", p.Value)
}

// wsDeque is one worker's range of pending chunk indices, packed into a
// single atomic word: the high 32 bits hold next (the first unclaimed
// chunk) and the low 32 bits hold limit (one past the last). The owner
// claims from the front by CAS-ing next+1; a thief claims from the back
// by CAS-ing limit-1. Because both ends live in one word, every claim is
// a single compare-and-swap against the full state, so an owner and a
// thief racing for the final chunk can never both win: whichever CAS
// lands second sees a changed word and retries against an empty range.
type wsDeque struct {
	state atomic.Uint64
	// pad the deque to its own cache line so claims on one worker's
	// deque do not false-share with its neighbors'.
	_ [7]uint64
}

func packRange(next, limit uint32) uint64 { return uint64(next)<<32 | uint64(limit) }

func unpackRange(s uint64) (next, limit uint32) { return uint32(s >> 32), uint32(s) }

// takeFront claims the owner-side chunk. ok is false when the deque is
// empty.
func (d *wsDeque) takeFront() (chunk uint32, ok bool) {
	for {
		s := d.state.Load()
		next, limit := unpackRange(s)
		if next >= limit {
			return 0, false
		}
		if d.state.CompareAndSwap(s, packRange(next+1, limit)) {
			return next, true
		}
	}
}

// stealBack claims the thief-side chunk. ok is false when the deque is
// empty.
func (d *wsDeque) stealBack() (chunk uint32, ok bool) {
	for {
		s := d.state.Load()
		next, limit := unpackRange(s)
		if next >= limit {
			return 0, false
		}
		if d.state.CompareAndSwap(s, packRange(next, limit-1)) {
			return limit - 1, true
		}
	}
}

// forEachSteal is the parallel arm of ForEachWorker: n work units grouped
// into ceil(n/grain) chunks, dealt round-robin-contiguously across
// per-worker deques, executed by workers that drain their own deque from
// the front and steal single chunks from siblings' backs when theirs runs
// dry.
//
// Termination: deques only ever shrink, so once a worker's full steal
// sweep over every deque finds them all empty, no unclaimed chunk exists
// anywhere and the worker can exit. Every claimed chunk is either fully
// executed or abandoned only after stopped is set, and stopped also ends
// every other worker's claim loop, so the WaitGroup always drains.
func (c *Context) forEachSteal(n, grain int, fn func(w, i int) error) error {
	nchunks := (n + grain - 1) / grain
	workers := c.workers
	if workers > nchunks {
		workers = nchunks
	}

	// Deal chunks as one contiguous range per worker (remainder spread
	// over the first few), so the common no-steal schedule touches work
	// units in large ascending runs — friendly to any index-correlated
	// locality in the caller's data.
	deques := make([]wsDeque, workers)
	per, rem := nchunks/workers, nchunks%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + per
		if w < rem {
			hi++
		}
		deques[w].state.Store(packRange(uint32(lo), uint32(hi)))
		lo = hi
	}

	var (
		stopped  atomic.Bool
		errMu    sync.Mutex
		firstErr error
		panicked *ChunkPanic
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		stopped.Store(true)
	}
	done := c.ctx.Done()

	runChunk := func(w int, chunk uint32) {
		start := int(chunk) * grain
		end := start + grain
		if end > n {
			end = n
		}
		for i := start; i < end; i++ {
			if stopped.Load() {
				return
			}
			select {
			case <-done:
				fail(c.ctx.Err())
				return
			default:
			}
			if err := fn(w, i); err != nil {
				fail(err)
				return
			}
		}
	}

	worker := func(w int) {
		defer wg.Done()
		defer func() {
			if v := recover(); v != nil {
				cp := &ChunkPanic{Value: v, Stack: debug.Stack()}
				errMu.Lock()
				if panicked == nil {
					panicked = cp
				}
				errMu.Unlock()
				stopped.Store(true)
			}
		}()
		for {
			if stopped.Load() {
				return
			}
			if chunk, ok := deques[w].takeFront(); ok {
				runChunk(w, chunk)
				continue
			}
			// Own deque empty: sweep siblings once, stealing one chunk
			// from the back of the first non-empty deque found.
			stole := false
			for off := 1; off < workers; off++ {
				v := (w + off) % workers
				if chunk, ok := deques[v].stealBack(); ok {
					runChunk(w, chunk)
					stole = true
					break
				}
			}
			if !stole {
				// Every deque was observed empty and deques never grow:
				// all chunks are claimed, nothing left to do.
				return
			}
		}
	}

	wg.Add(workers)
	for w := 1; w < workers; w++ {
		go worker(w)
	}
	worker(0) // the caller participates as worker 0
	wg.Wait()

	if panicked != nil {
		panic(panicked)
	}
	return firstErr
}
