package exec

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachWorkerSlotExclusive checks the per-worker-slot contract:
// calls sharing a w value never run concurrently, so w-indexed scratch
// needs no locking.
func TestForEachWorkerSlotExclusive(t *testing.T) {
	const workers, n = 4, 200
	var active [workers]atomic.Int32
	ec := New(context.Background(), nil, workers)
	err := ec.ForEachWorker(n, 1, func(w, i int) error {
		if c := active[w].Add(1); c != 1 {
			t.Errorf("worker slot %d: %d concurrent calls", w, c)
		}
		time.Sleep(50 * time.Microsecond)
		active[w].Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestForEachSmallNStaysSequential checks the Grain knob's main promise:
// a fan-out no larger than the grain runs inline on the calling
// goroutine, in ascending order, as worker slot 0.
func TestForEachSmallNStaysSequential(t *testing.T) {
	ec := New(context.Background(), nil, 8).WithGrain(64)
	if got := ec.Grain(); got != 64 {
		t.Fatalf("Grain() = %d, want 64", got)
	}
	var order []int // unsynchronized on purpose: -race flags any fan-out
	err := ec.ForEachWorker(50, ec.Grain(), func(w, i int) error {
		if w != 0 {
			t.Errorf("inline run used worker slot %d", w)
		}
		order = append(order, i)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 50 {
		t.Fatalf("visited %d of 50 indices", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d; inline run must be ascending", i, got)
		}
	}
}

// TestForEachGrainEdgeCases covers the degenerate fan-out shapes: no work,
// a single unit, and fewer units than workers.
func TestForEachGrainEdgeCases(t *testing.T) {
	ec := New(context.Background(), nil, 8)
	if err := ec.ForEach(0, func(int) error {
		t.Error("fn called for n = 0")
		return nil
	}); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	for _, n := range []int{1, 3, 7} { // all < workers
		var seen [8]atomic.Int32
		if err := ec.ForEachGrain(n, 1, func(i int) error {
			seen[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := 0; i < n; i++ {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, got)
			}
		}
	}
}

func TestAutoGrainClamps(t *testing.T) {
	cases := []struct{ n, workers, want int }{
		{10, 4, 1},        // tiny fan-out: floor at 1
		{64, 8, 1},        // exactly stealRatio chunks per worker
		{1 << 20, 4, 256}, // huge fan-out: capped at maxAutoGrain
		{1000, 4, 31},     // in between: n / (workers · stealRatio)
	}
	for _, c := range cases {
		if got := autoGrain(c.n, c.workers); got != c.want {
			t.Errorf("autoGrain(%d, %d) = %d, want %d", c.n, c.workers, got, c.want)
		}
	}
}

// TestForEachStealingVisitsEveryIndexOnce forces heavy stealing (grain 1,
// skewed per-unit cost) and checks that every index runs exactly once and
// lands its result in its own slot. Run under -race this doubles as the
// scheduler's data-race check.
func TestForEachStealingVisitsEveryIndexOnce(t *testing.T) {
	const workers, n = 8, 400
	var seen [n]atomic.Int32
	out := make([]int, n)
	ec := New(context.Background(), nil, workers)
	err := ec.ForEachWorker(n, 1, func(w, i int) error {
		seen[i].Add(1)
		if i%workers == 0 { // skew: one unit in eight is slow
			time.Sleep(100 * time.Microsecond)
		}
		out[i] = i * i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("index %d visited %d times", i, got)
		}
		if out[i] != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, out[i], i*i)
		}
	}
}

// TestForEachPanicPropagates checks that a panic on a worker goroutine —
// here from a chunk stolen off another worker's deque — resurfaces in the
// caller as a *ChunkPanic carrying the original value and worker stack.
func TestForEachPanicPropagates(t *testing.T) {
	// workers=2, grain=1, n=4: worker 0 owns chunks {0,1}, worker 1 owns
	// {2,3}. Unit 0 is slow, units 2 and 3 are instant, so worker 1 drains
	// its own deque and steals unit 1 — the back of worker 0's — which
	// panics on whichever goroutine runs it.
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("panic in work unit did not propagate")
		}
		cp, ok := v.(*ChunkPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want *ChunkPanic", v, v)
		}
		if cp.Value != "boom in stolen chunk" {
			t.Fatalf("ChunkPanic.Value = %v", cp.Value)
		}
		if len(cp.Stack) == 0 {
			t.Fatal("ChunkPanic.Stack is empty")
		}
		if cp.Error() == "" {
			t.Fatal("ChunkPanic.Error is empty")
		}
	}()
	ec := New(context.Background(), nil, 2)
	_ = ec.ForEachWorker(4, 1, func(w, i int) error {
		switch i {
		case 0:
			time.Sleep(50 * time.Millisecond)
		case 1:
			panic("boom in stolen chunk")
		}
		return nil
	})
	t.Fatal("ForEachWorker returned instead of panicking")
}

// TestForEachCancelMidSteal cancels the context while workers are deep in
// a steal-heavy fan-out and checks that the cancellation is honored
// between work units and reported as the context error.
func TestForEachCancelMidSteal(t *testing.T) {
	const workers, n = 4, 1000
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ec := New(ctx, nil, workers)
	var calls atomic.Int32
	var once sync.Once
	err := ec.ForEachWorker(n, 1, func(w, i int) error {
		c := calls.Add(1)
		if i%3 == 0 {
			time.Sleep(20 * time.Microsecond) // skew to keep thieves busy
		}
		if c == 40 {
			once.Do(cancel)
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if c := calls.Load(); c >= n {
		t.Fatalf("cancellation ignored: all %d units ran", c)
	}
}

// TestForEachErrorInStolenChunk mirrors the panic test with an error
// return: the first error stops the fan-out and is the one reported.
func TestForEachErrorInStolenChunk(t *testing.T) {
	boom := errors.New("boom")
	ec := New(context.Background(), nil, 2)
	err := ec.ForEachWorker(4, 1, func(w, i int) error {
		switch i {
		case 0:
			time.Sleep(50 * time.Millisecond)
		case 1:
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestWsDequeClaims(t *testing.T) {
	var d wsDeque
	d.state.Store(packRange(3, 6)) // chunks {3, 4, 5}
	if c, ok := d.takeFront(); !ok || c != 3 {
		t.Fatalf("takeFront = %d, %v; want 3, true", c, ok)
	}
	if c, ok := d.stealBack(); !ok || c != 5 {
		t.Fatalf("stealBack = %d, %v; want 5, true", c, ok)
	}
	if c, ok := d.takeFront(); !ok || c != 4 {
		t.Fatalf("takeFront = %d, %v; want 4, true", c, ok)
	}
	if _, ok := d.takeFront(); ok {
		t.Fatal("takeFront on empty deque succeeded")
	}
	if _, ok := d.stealBack(); ok {
		t.Fatal("stealBack on empty deque succeeded")
	}
}

func TestArenaSlotRoundTrip(t *testing.T) {
	a := GrabArena()
	if got := a.Slot(ArenaQueryScratch); got != nil {
		// A pooled arena may legitimately carry scratch from an earlier
		// query; clear it so the round-trip below starts clean.
		a.SetSlot(ArenaQueryScratch, nil)
	}
	type scratch struct{ buf []int }
	s := &scratch{buf: make([]int, 8)}
	a.SetSlot(ArenaQueryScratch, s)
	if got := a.Slot(ArenaQueryScratch); got != any(s) {
		t.Fatalf("Slot returned %v, want the stored scratch", got)
	}
	ec := New(context.Background(), nil, 1).WithArena(a)
	if ec.Arena() != a {
		t.Fatal("WithArena did not attach the arena")
	}
	ec.Close()
	if ec.Arena() != nil {
		t.Fatal("Close did not detach the arena")
	}
	ec.Close() // second Close must be a no-op

	// Nil-safety: a nil arena ignores stores and returns nothing.
	var nilArena *Arena
	nilArena.SetSlot(ArenaQueryScratch, s)
	if got := nilArena.Slot(ArenaQueryScratch); got != nil {
		t.Fatalf("nil arena Slot = %v, want nil", got)
	}
	nilArena.Release()
}
