package exec

import "sync"

// ArenaSlot names one package's scratch compartment inside an Arena.
// Packages along the query path each own a slot so their per-query
// scratch structures (candidate slices, per-worker column buffers,
// per-shard result runs) survive across queries in the pool without the
// packages having to know about one another.
type ArenaSlot int

const (
	// ArenaQueryScratch is internal/core's refinement scratch.
	ArenaQueryScratch ArenaSlot = iota
	// ArenaScatterScratch is internal/shard's scatter-gather scratch.
	ArenaScatterScratch

	numArenaSlots
)

// Arena is a per-query bundle of reusable scratch structures, recycled
// through a process-wide pool. A query grabs one with GrabArena, attaches
// it to its exec.Context (WithArena), and releases it via Context.Close
// when the query finishes. An Arena is bound to one query at a time and
// is not safe for concurrent slot mutation; the owning package is
// responsible for any per-worker partitioning of the scratch it stores.
//
// Slot values persist across queries: a package retrieves its previous
// scratch with Slot, resets/resizes it, and stores it back with SetSlot.
// Scratch held in an arena must never alias memory that escapes into a
// query's results — anything returned to the caller has to be copied out
// before Release.
type Arena struct {
	slots [numArenaSlots]any
}

var arenaPool = sync.Pool{New: func() any { return new(Arena) }}

// GrabArena takes an arena from the process-wide pool (allocating a fresh
// one when the pool is empty). Pair with Release, typically via
// Context.Close.
func GrabArena() *Arena {
	return arenaPool.Get().(*Arena)
}

// Release returns a to the pool. Slot contents are retained — that reuse
// is the point — so the owning packages must treat anything they fetch
// from a slot as containing stale data from an earlier query.
func (a *Arena) Release() {
	if a != nil {
		arenaPool.Put(a)
	}
}

// Slot returns the scratch stored under s, or nil when the arena is nil
// or the slot has not been populated yet. Callers type-assert the result
// to their own scratch type.
func (a *Arena) Slot(s ArenaSlot) any {
	if a == nil {
		return nil
	}
	return a.slots[s]
}

// SetSlot stores scratch under s for retrieval by the same package on a
// later query. A nil arena ignores the store (the caller's scratch is
// simply not pooled).
func (a *Arena) SetSlot(s ArenaSlot, v any) {
	if a != nil {
		a.slots[s] = v
	}
}

// GrowSlice returns (*buf)[:n] zeroed, reallocating the backing array
// only when the pooled capacity is insufficient — the resize idiom for
// flat result slices kept in arena scratch. Zeroing matters: pooled
// slots carry values from earlier queries (stale pointers, partial
// results) that must not leak into the new query.
func GrowSlice[T any](buf *[]T, n int) []T {
	if cap(*buf) < n {
		*buf = make([]T, n)
		return *buf
	}
	s := (*buf)[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}
