// Package exec bundles the per-query execution state of one IM-GRN query:
// the caller's context.Context (cancellation and deadlines), a per-query
// page-I/O reader, and a bounded worker pool for intra-query parallelism.
//
// The IM-GRN_Processing algorithm (paper §5.2) is embarrassingly parallel
// at the candidate-verification stage: each surviving candidate matrix is
// verified independently by Monte Carlo refinement. An exec.Context makes
// that parallelism safe and deterministic by giving every query its own
// I/O accountant view (pagestore.Reader) and by addressing randomness per
// work unit (randgen.SeedFrom) rather than per goroutine, so results never
// depend on the goroutine schedule.
//
// A Context may also carry an obs.Tracer (WithTracer) so the query
// pipeline can record per-stage spans; a nil tracer is the disabled
// state and costs a single pointer test per recording site.
package exec

import (
	"context"
	"sync"
	"sync/atomic"

	"github.com/imgrn/imgrn/internal/obs"
	"github.com/imgrn/imgrn/internal/pagestore"
)

// Context carries the execution state of one query. It is created at the
// public API boundary (Engine.QueryContext, server handlers) and threaded
// through traversal and refinement. A Context is bound to a single query
// and must not be reused.
type Context struct {
	ctx     context.Context
	io      *pagestore.Reader
	workers int
	trace   *obs.Tracer
}

// New returns an execution context. A nil ctx means context.Background();
// workers <= 0 means 1 (the exact sequential algorithm). io may be nil for
// callers that do not account I/O (e.g. pure in-memory competitors).
func New(ctx context.Context, io *pagestore.Reader, workers int) *Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = 1
	}
	return &Context{ctx: ctx, io: io, workers: workers}
}

// Background returns a no-cancellation, sequential context with the given
// reader — the execution state legacy entry points run under.
func Background(io *pagestore.Reader) *Context {
	return New(context.Background(), io, 1)
}

// WithTracer attaches a per-query trace collector (see obs.Tracer) and
// returns c for chaining. A nil tracer (the default) disables tracing:
// every span operation on the nil tracer is a no-op pointer test, so the
// instrumented query path is unaffected when observability is off.
func (c *Context) WithTracer(t *obs.Tracer) *Context {
	c.trace = t
	return c
}

// Tracer returns the query's trace collector (nil when tracing is
// disabled; all obs.Tracer methods are nil-safe).
func (c *Context) Tracer() *obs.Tracer { return c.trace }

// Ctx returns the underlying context.Context.
func (c *Context) Ctx() context.Context { return c.ctx }

// IO returns the query's I/O reader (may be nil).
func (c *Context) IO() *pagestore.Reader { return c.io }

// Workers returns the effective worker budget (>= 1).
func (c *Context) Workers() int { return c.workers }

// Parallel reports whether the query may fan work units out to more than
// one goroutine.
func (c *Context) Parallel() bool { return c.workers > 1 }

// Err returns the context's cancellation error, if any. Loop boundaries in
// traversal and refinement call this to honor cancellation and deadlines.
func (c *Context) Err() error { return c.ctx.Err() }

// ForEach runs fn(i) for every i in [0, n), fanning the calls out across
// the context's worker budget. Calls must be independent: fn typically
// writes its result into slot i of a pre-sized slice, and the caller
// aggregates the slots in index order afterwards so the outcome is
// deterministic regardless of scheduling.
//
// The first error returned by fn stops the fan-out (in-flight calls finish,
// queued ones are skipped) and is returned. Cancellation of the underlying
// context is honored between work units and reported as ctx.Err().
func (c *Context) ForEach(n int, fn func(i int) error) error {
	if n <= 0 {
		return c.Err()
	}
	workers := c.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := c.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next    atomic.Int64
		stopped atomic.Bool
		errMu   sync.Mutex
		first   error
		wg      sync.WaitGroup
	)
	fail := func(err error) {
		errMu.Lock()
		if first == nil {
			first = err
		}
		errMu.Unlock()
		stopped.Store(true)
	}
	done := c.ctx.Done()
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stopped.Load() {
					return
				}
				select {
				case <-done:
					fail(c.ctx.Err())
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	errMu.Lock()
	defer errMu.Unlock()
	return first
}
