// Package exec bundles the per-query execution state of one IM-GRN query:
// the caller's context.Context (cancellation and deadlines), a per-query
// page-I/O reader, a chunked work-stealing scheduler for intra-query
// parallelism, and a pooled scratch arena.
//
// The IM-GRN_Processing algorithm (paper §5.2) is embarrassingly parallel
// at the candidate-verification stage: each surviving candidate matrix is
// verified independently by Monte Carlo refinement. An exec.Context makes
// that parallelism safe and deterministic by giving every query its own
// I/O accountant view (pagestore.Reader) and by addressing randomness per
// work unit (randgen.SeedFrom) rather than per goroutine, so results never
// depend on the goroutine schedule — including which worker steals which
// chunk.
//
// A Context may also carry an obs.Tracer (WithTracer) so the query
// pipeline can record per-stage spans; a nil tracer is the disabled
// state and costs a single pointer test per recording site.
package exec

import (
	"context"

	"github.com/imgrn/imgrn/internal/obs"
	"github.com/imgrn/imgrn/internal/pagestore"
)

// Context carries the execution state of one query. It is created at the
// public API boundary (Engine.QueryContext, server handlers) and threaded
// through traversal and refinement. A Context is bound to a single query
// and must not be reused.
type Context struct {
	ctx     context.Context
	io      *pagestore.Reader
	workers int
	grain   int // default chunk size for ForEach; 0 = automatic
	trace   *obs.Tracer
	arena   *Arena
}

// New returns an execution context. A nil ctx means context.Background();
// workers <= 0 means 1 (the exact sequential algorithm). io may be nil for
// callers that do not account I/O (e.g. pure in-memory competitors).
func New(ctx context.Context, io *pagestore.Reader, workers int) *Context {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = 1
	}
	return &Context{ctx: ctx, io: io, workers: workers}
}

// Background returns a no-cancellation, sequential context with the given
// reader — the execution state legacy entry points run under.
func Background(io *pagestore.Reader) *Context {
	return New(context.Background(), io, 1)
}

// WithTracer attaches a per-query trace collector (see obs.Tracer) and
// returns c for chaining. A nil tracer (the default) disables tracing:
// every span operation on the nil tracer is a no-op pointer test, so the
// instrumented query path is unaffected when observability is off.
func (c *Context) WithTracer(t *obs.Tracer) *Context {
	c.trace = t
	return c
}

// WithGrain sets the context's default scheduling grain — the number of
// consecutive work units a worker claims per steal — and returns c for
// chaining. Fan-outs of g or fewer units run inline on the calling
// goroutine, so tiny candidate sets never pay goroutine or chunk-claim
// overhead. g <= 0 (the default) selects an automatic grain per fan-out;
// individual fan-outs can override it via ForEachGrain.
func (c *Context) WithGrain(g int) *Context {
	c.grain = g
	return c
}

// Grain returns the context's default scheduling grain (0 = automatic).
func (c *Context) Grain() int { return c.grain }

// WithArena attaches a scratch arena (typically from GrabArena) and
// returns c for chaining. The arena holds per-query scratch structures
// that packages along the query path reuse across queries; it must be
// returned to the pool with Close once the query is finished.
func (c *Context) WithArena(a *Arena) *Context {
	c.arena = a
	return c
}

// Arena returns the context's scratch arena (nil when none is attached;
// Arena methods are nil-safe, so callers may use the result directly).
func (c *Context) Arena() *Arena { return c.arena }

// Close releases the context's pooled resources (the scratch arena, if
// any) back to their pools. It must be called at most once, after the
// last use of any scratch obtained through the arena; the Context itself
// remains usable for non-arena operations.
func (c *Context) Close() {
	if c.arena != nil {
		c.arena.Release()
		c.arena = nil
	}
}

// Tracer returns the query's trace collector (nil when tracing is
// disabled; all obs.Tracer methods are nil-safe).
func (c *Context) Tracer() *obs.Tracer { return c.trace }

// Ctx returns the underlying context.Context.
func (c *Context) Ctx() context.Context { return c.ctx }

// IO returns the query's I/O reader (may be nil).
func (c *Context) IO() *pagestore.Reader { return c.io }

// Workers returns the effective worker budget (>= 1).
func (c *Context) Workers() int { return c.workers }

// Parallel reports whether the query may fan work units out to more than
// one goroutine.
func (c *Context) Parallel() bool { return c.workers > 1 }

// Err returns the context's cancellation error, if any. Loop boundaries in
// traversal and refinement call this to honor cancellation and deadlines.
func (c *Context) Err() error { return c.ctx.Err() }

// ForEach runs fn(i) for every i in [0, n), fanning the calls out across
// the context's worker budget with the work-stealing scheduler (see
// ForEachWorker). Calls must be independent: fn typically writes its
// result into slot i of a pre-sized slice, and the caller aggregates the
// slots in index order afterwards so the outcome is deterministic
// regardless of scheduling.
//
// The first error returned by fn stops the fan-out (in-flight calls finish,
// queued ones are skipped) and is returned. Cancellation of the underlying
// context is honored between work units and reported as ctx.Err(). A panic
// in fn on a worker goroutine is re-thrown in the caller as a *ChunkPanic.
func (c *Context) ForEach(n int, fn func(i int) error) error {
	return c.ForEachWorker(n, c.grain, func(_, i int) error { return fn(i) })
}

// ForEachGrain is ForEach with an explicit scheduling grain for this
// fan-out alone, overriding the context default (see WithGrain).
func (c *Context) ForEachGrain(n, grain int, fn func(i int) error) error {
	return c.ForEachWorker(n, grain, func(_, i int) error { return fn(i) })
}

// ForEachWorker runs fn(w, i) for every i in [0, n) with the chunked
// work-stealing scheduler. w identifies the worker slot in [0, Workers())
// executing the call: calls sharing a w value never run concurrently, so
// callers can keep per-worker scratch (column buffers, reseedable
// estimator streams) indexed by w without synchronization. w carries no
// determinism guarantee — which slot executes which unit depends on the
// schedule — so per-unit randomness must still be addressed by i (via
// randgen.SeedFrom), never by w.
//
// grain is the number of consecutive units per chunk (<= 0 selects an
// automatic grain). When n <= grain — or the context is sequential — the
// whole fan-out runs inline on the calling goroutine as w = 0, in
// ascending index order, byte-identical to the pre-scheduler sequential
// loop.
func (c *Context) ForEachWorker(n, grain int, fn func(w, i int) error) error {
	if n <= 0 {
		return c.Err()
	}
	if grain <= 0 {
		grain = autoGrain(n, c.workers)
	}
	if c.workers <= 1 || n <= grain {
		for i := 0; i < n; i++ {
			if err := c.Err(); err != nil {
				return err
			}
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	return c.forEachSteal(n, grain, fn)
}

// autoGrain picks the default chunk size: enough chunks that stealing can
// balance skewed per-unit cost (stealRatio chunks per worker), but no
// chunk larger than maxAutoGrain so one oversized claim cannot serialize
// the tail of a fan-out.
func autoGrain(n, workers int) int {
	g := n / (workers * stealRatio)
	if g < 1 {
		g = 1
	}
	if g > maxAutoGrain {
		g = maxAutoGrain
	}
	return g
}

const (
	// stealRatio is the target number of chunks per worker under the
	// automatic grain: a worker whose units turn out cheap can steal up to
	// stealRatio-1 times from a loaded sibling before the fan-out drains.
	stealRatio = 8
	// maxAutoGrain caps the automatic chunk size.
	maxAutoGrain = 256
)
