package bitvec

import (
	"testing"
	"testing/quick"

	"github.com/imgrn/imgrn/internal/gene"
)

func TestSetTest(t *testing.T) {
	v := New(100)
	if v.Len() != 100 {
		t.Fatalf("Len = %d", v.Len())
	}
	v.Set(0)
	v.Set(63)
	v.Set(64)
	v.Set(99)
	for _, i := range []int{0, 63, 64, 99} {
		if !v.Test(i) {
			t.Errorf("bit %d should be set", i)
		}
	}
	if v.Test(1) || v.Test(65) {
		t.Error("unset bits report set")
	}
	if v.PopCount() != 4 {
		t.Errorf("PopCount = %d", v.PopCount())
	}
}

func TestBoundsPanics(t *testing.T) {
	v := New(10)
	for _, f := range []func(){
		func() { v.Set(10) },
		func() { v.Set(-1) },
		func() { v.Test(10) },
		func() { New(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestOrInPlace(t *testing.T) {
	a := New(70)
	b := New(70)
	a.Set(3)
	b.Set(65)
	a.OrInPlace(b)
	if !a.Test(3) || !a.Test(65) {
		t.Error("OrInPlace lost bits")
	}
	if b.Test(3) {
		t.Error("OrInPlace mutated argument")
	}
}

func TestIntersects(t *testing.T) {
	a := New(128)
	b := New(128)
	a.Set(100)
	b.Set(101)
	if a.Intersects(b) {
		t.Error("disjoint vectors intersect")
	}
	b.Set(100)
	if !a.Intersects(b) {
		t.Error("overlapping vectors do not intersect")
	}
}

func TestIntersectsAll(t *testing.T) {
	a := New(64)
	b := New(64)
	c := New(64)
	a.Set(5)
	b.Set(5)
	c.Set(5)
	if !a.IntersectsAll(b, c) {
		t.Error("common bit should intersect all")
	}
	c2 := New(64)
	c2.Set(6)
	if a.IntersectsAll(b, c2) {
		t.Error("no common bit across all three")
	}
	// Pairwise overlap without a common bit must fail: the AND chain is
	// the four-way test of Fig. 4.
	x := New(64)
	y := New(64)
	z := New(64)
	x.Set(1)
	x.Set(2)
	y.Set(1)
	z.Set(2)
	if x.IntersectsAll(y, z) {
		t.Error("AND chain requires one bit common to every vector")
	}
}

func TestWidthMismatchPanics(t *testing.T) {
	a, b := New(64), New(65)
	for _, f := range []func(){
		func() { a.OrInPlace(b) },
		func() { a.Intersects(b) },
		func() { a.IntersectsAll(b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCloneAndReset(t *testing.T) {
	a := New(32)
	a.Set(7)
	c := a.Clone()
	c.Set(8)
	if a.Test(8) {
		t.Error("Clone aliases original")
	}
	a.Reset()
	if a.PopCount() != 0 {
		t.Error("Reset left bits")
	}
}

func TestFromWordsRoundTrip(t *testing.T) {
	a := New(130)
	a.Set(0)
	a.Set(129)
	b, err := FromWords(130, a.Words())
	if err != nil {
		t.Fatal(err)
	}
	if !b.Test(0) || !b.Test(129) || b.PopCount() != 2 {
		t.Error("round trip lost bits")
	}
	if _, err := FromWords(130, a.Words()[:1]); err == nil {
		t.Error("wrong word count should error")
	}
}

func TestHashRangesAndDeterminism(t *testing.T) {
	for b := 1; b <= 300; b += 37 {
		for g := gene.ID(-5); g < 50; g += 7 {
			h := HashGene(g, b)
			if h < 0 || h >= b {
				t.Fatalf("HashGene(%d, %d) = %d", g, b, h)
			}
			if h != HashGene(g, b) {
				t.Fatal("HashGene not deterministic")
			}
		}
		for s := -3; s < 40; s += 5 {
			h := HashSource(s, b)
			if h < 0 || h >= b {
				t.Fatalf("HashSource(%d, %d) = %d", s, b, h)
			}
		}
	}
}

func TestGeneAndSourceHashesDiffer(t *testing.T) {
	// Different salts: the two hash families should disagree somewhere.
	same := 0
	for i := 0; i < 100; i++ {
		if HashGene(gene.ID(i), 1024) == HashSource(i, 1024) {
			same++
		}
	}
	if same > 20 {
		t.Errorf("hash families collide on %d of 100 keys", same)
	}
}

// TestSignatureNoFalseNegatives is the filter contract: a signature always
// contains every member's bit.
func TestSignatureNoFalseNegatives(t *testing.T) {
	f := func(raw []int16) bool {
		genes := make([]gene.ID, len(raw))
		sources := make([]int, len(raw))
		for i, r := range raw {
			genes[i] = gene.ID(r)
			sources[i] = int(r)
		}
		gs := GeneSignature(256, genes...)
		ss := SourceSignature(256, sources...)
		for i := range genes {
			if !gs.Test(HashGene(genes[i], 256)) {
				return false
			}
			if !ss.Test(HashSource(sources[i], 256)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestInvertedFile(t *testing.T) {
	f := NewInvertedFile(128)
	if f.Bits() != 128 {
		t.Fatalf("Bits = %d", f.Bits())
	}
	f.Add(7, 1)
	f.Add(7, 2)
	f.Add(9, 3)
	sig := f.Sources(7)
	if !sig.Test(HashSource(1, 128)) || !sig.Test(HashSource(2, 128)) {
		t.Error("IF lost source bits")
	}
	if f.Sources(9).Test(HashSource(1, 128)) && HashSource(1, 128) != HashSource(3, 128) {
		t.Error("IF leaked a source into the wrong gene")
	}
	if f.Genes() != 2 {
		t.Errorf("Genes = %d", f.Genes())
	}
	unknown := f.Sources(99)
	if unknown.PopCount() != 0 {
		t.Error("unknown gene should map to the zero signature")
	}
}
