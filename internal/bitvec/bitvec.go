// Package bitvec implements the fixed-size bit-vector signatures of
// Section 5.1: each embedded point carries a gene-ID signature V_f and a
// data-source signature V_d produced by hashing into B bits; index node
// entries hold the bit-OR of their children's signatures so that a bit-AND
// against the query signature can disqualify whole subtrees. The package
// also provides the inverted bit-vector file IF mapping each gene name to
// the signature of the data sources containing it.
package bitvec

import (
	"fmt"
	"math/bits"

	"github.com/imgrn/imgrn/internal/gene"
)

// DefaultBits is the default signature width B.
const DefaultBits = 256

// Vector is a fixed-width bit vector.
type Vector struct {
	words []uint64
	size  int
}

// New returns an all-zero vector of b bits (b must be positive).
func New(b int) *Vector {
	if b <= 0 {
		panic("bitvec: non-positive size")
	}
	return &Vector{words: make([]uint64, (b+63)/64), size: b}
}

// Len returns the width B in bits.
func (v *Vector) Len() int { return v.size }

// Set turns bit i on.
func (v *Vector) Set(i int) {
	if i < 0 || i >= v.size {
		panic(fmt.Sprintf("bitvec: Set(%d) out of range [0,%d)", i, v.size))
	}
	v.words[i/64] |= 1 << uint(i%64)
}

// Test reports whether bit i is on.
func (v *Vector) Test(i int) bool {
	if i < 0 || i >= v.size {
		panic(fmt.Sprintf("bitvec: Test(%d) out of range [0,%d)", i, v.size))
	}
	return v.words[i/64]&(1<<uint(i%64)) != 0
}

// OrInPlace sets v |= o. Widths must match.
func (v *Vector) OrInPlace(o *Vector) {
	if v.size != o.size {
		panic("bitvec: OrInPlace width mismatch")
	}
	for i, w := range o.words {
		v.words[i] |= w
	}
}

// Intersects reports whether v AND o is non-zero — the signature test of
// Fig. 4 (e.g. qV_f(s) ∧ V_f(E_a) ≠ 0).
func (v *Vector) Intersects(o *Vector) bool {
	if v.size != o.size {
		panic("bitvec: Intersects width mismatch")
	}
	for i, w := range o.words {
		if v.words[i]&w != 0 {
			return true
		}
	}
	return false
}

// IntersectsAll reports whether the AND of v with every vector in os is
// non-zero, the four-way test qV_d(s) ∧ V_d(E_a) ∧ qV_d(t) ∧ V_d(E_b) ≠ 0.
func (v *Vector) IntersectsAll(os ...*Vector) bool {
	acc := make([]uint64, len(v.words))
	copy(acc, v.words)
	for _, o := range os {
		if o.size != v.size {
			panic("bitvec: IntersectsAll width mismatch")
		}
		zero := true
		for i := range acc {
			acc[i] &= o.words[i]
			if acc[i] != 0 {
				zero = false
			}
		}
		if zero {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits.
func (v *Vector) PopCount() int {
	n := 0
	for _, w := range v.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Clone returns a copy of v.
func (v *Vector) Clone() *Vector {
	c := New(v.size)
	copy(c.words, v.words)
	return c
}

// Reset clears all bits.
func (v *Vector) Reset() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Words exposes the raw words for serialization; callers must not mutate.
func (v *Vector) Words() []uint64 { return v.words }

// FromWords reconstructs a vector of b bits from serialized words.
func FromWords(b int, words []uint64) (*Vector, error) {
	v := New(b)
	if len(words) != len(v.words) {
		return nil, fmt.Errorf("bitvec: got %d words for %d bits", len(words), b)
	}
	copy(v.words, words)
	return v, nil
}

// splitmix64 finalizer, used as the hash family H(·) for both signatures.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Salts separating the gene hash H_f from the source hash H_d.
const (
	geneSalt   = 0x8f1bbcdc5f3c1d2b
	sourceSalt = 0x2545f4914f6cdd1d
)

// HashGene returns H_f(g) in [0, b).
func HashGene(g gene.ID, b int) int {
	return int(mix(uint64(uint32(g))^geneSalt) % uint64(b))
}

// HashSource returns H_d(i) in [0, b).
func HashSource(source int, b int) int {
	return int(mix(uint64(source)^sourceSalt) % uint64(b))
}

// GeneSignature returns V_f over the given genes: one hashed bit per gene.
func GeneSignature(b int, genes ...gene.ID) *Vector {
	v := New(b)
	for _, g := range genes {
		v.Set(HashGene(g, b))
	}
	return v
}

// SourceSignature returns V_d over the given data source IDs.
func SourceSignature(b int, sources ...int) *Vector {
	v := New(b)
	for _, s := range sources {
		v.Set(HashSource(s, b))
	}
	return v
}

// InvertedFile is the inverted bit-vector file IF of Section 5.1: for each
// gene name g, IF[g] is the bit-OR of the source-ID signatures of every
// matrix containing g. It answers "which data sources may contain gene g"
// with one-sided error (false positives only).
type InvertedFile struct {
	bits    int
	entries map[gene.ID]*Vector
}

// NewInvertedFile returns an empty inverted file with b-bit signatures.
func NewInvertedFile(b int) *InvertedFile {
	return &InvertedFile{bits: b, entries: make(map[gene.ID]*Vector)}
}

// Bits returns the signature width.
func (f *InvertedFile) Bits() int { return f.bits }

// Add records that data source `source` contains gene g.
func (f *InvertedFile) Add(g gene.ID, source int) {
	v, ok := f.entries[g]
	if !ok {
		v = New(f.bits)
		f.entries[g] = v
	}
	v.Set(HashSource(source, f.bits))
}

// Sources returns the source signature IF[g]; an all-zero vector when g is
// unknown (no source can contain it).
func (f *InvertedFile) Sources(g gene.ID) *Vector {
	if v, ok := f.entries[g]; ok {
		return v
	}
	return New(f.bits)
}

// Genes returns the number of distinct genes recorded.
func (f *InvertedFile) Genes() int { return len(f.entries) }
