// Package grn models gene regulatory networks as probabilistic graphs
// (Definition 3) and implements the inference measures the paper evaluates:
// the randomized IM-GRN edge probability of Definition 2 (both Monte Carlo
// and an analytic permutation-null approximation), the classical absolute
// Pearson Correlation relevance networks, partial correlation (pCorr,
// Appendix H), and a mutual-information scorer (the future-work measure of
// Section 2.2). It also provides the edge inference pruning (Lemma 3/4) and
// graph existence pruning (Lemma 5).
package grn

import (
	"fmt"
	"sort"

	"github.com/imgrn/imgrn/internal/gene"
)

// Edge is an undirected probabilistic edge between vertex indices S < T
// with existence probability P (Definition 3).
type Edge struct {
	S, T int
	P    float64
}

// Graph is a probabilistic GRN: vertices labelled with gene IDs and
// undirected edges carrying existence probabilities in [0, 1).
type Graph struct {
	genes []gene.ID
	adj   []map[int]float64 // adj[s][t] = P for every edge {s,t}
	edges int
}

// NewGraph returns a graph with the given vertex labels and no edges.
func NewGraph(genes []gene.ID) *Graph {
	g := &Graph{
		genes: append([]gene.ID(nil), genes...),
		adj:   make([]map[int]float64, len(genes)),
	}
	return g
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.genes) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return g.edges }

// Gene returns the gene ID labelling vertex s.
func (g *Graph) Gene(s int) gene.ID { return g.genes[s] }

// Genes returns the vertex labels; callers must not mutate.
func (g *Graph) Genes() []gene.ID { return g.genes }

// SetEdge inserts or updates the undirected edge {s, t} with probability p.
// Self-loops are rejected: a gene does not regulate itself in this model.
func (g *Graph) SetEdge(s, t int, p float64) {
	if s == t {
		panic("grn: self-loop")
	}
	if g.adj[s] == nil {
		g.adj[s] = make(map[int]float64)
	}
	if g.adj[t] == nil {
		g.adj[t] = make(map[int]float64)
	}
	if _, exists := g.adj[s][t]; !exists {
		g.edges++
	}
	g.adj[s][t] = p
	g.adj[t][s] = p
}

// EdgeProb returns the existence probability of edge {s, t} and whether the
// edge is present.
func (g *Graph) EdgeProb(s, t int) (float64, bool) {
	if g.adj[s] == nil {
		return 0, false
	}
	p, ok := g.adj[s][t]
	return p, ok
}

// HasEdge reports whether edge {s, t} exists.
func (g *Graph) HasEdge(s, t int) bool {
	_, ok := g.EdgeProb(s, t)
	return ok
}

// Degree returns the number of edges incident to vertex s.
func (g *Graph) Degree(s int) int { return len(g.adj[s]) }

// Neighbors returns the sorted neighbor indices of vertex s.
func (g *Graph) Neighbors(s int) []int {
	out := make([]int, 0, len(g.adj[s]))
	for t := range g.adj[s] {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// Edges returns all edges with S < T, sorted by (S, T).
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.edges)
	for s, nb := range g.adj {
		for t, p := range nb {
			if s < t {
				out = append(out, Edge{S: s, T: t, P: p})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].S != out[j].S {
			return out[i].S < out[j].S
		}
		return out[i].T < out[j].T
	})
	return out
}

// MaxDegreeVertex returns the vertex with the highest degree, the traversal
// start the query algorithm uses for pruning power (Fig. 4, line 2). Ties
// break toward the smaller index. It returns -1 for an empty graph.
func (g *Graph) MaxDegreeVertex() int {
	best, bestDeg := -1, -1
	for s := range g.genes {
		if d := g.Degree(s); d > bestDeg {
			best, bestDeg = s, d
		}
	}
	return best
}

// Connected reports whether the graph is connected (query extraction in
// Section 6.1 requires connected query GRNs). The empty graph is connected.
func (g *Graph) Connected() bool {
	n := g.NumVertices()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	visited := 1
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for t := range g.adj[s] {
			if !seen[t] {
				seen[t] = true
				visited++
				stack = append(stack, t)
			}
		}
	}
	return visited == n
}

// AppearanceProbability returns Pr{G} of Eq. (3): the product of the edge
// existence probabilities of the edges selected by sel (pairs of vertex
// indices). It returns an error if a selected edge is absent.
func (g *Graph) AppearanceProbability(sel []Edge) (float64, error) {
	pr := 1.0
	for _, e := range sel {
		p, ok := g.EdgeProb(e.S, e.T)
		if !ok {
			return 0, fmt.Errorf("grn: edge {%d,%d} not present", e.S, e.T)
		}
		pr *= p
	}
	return pr, nil
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := NewGraph(g.genes)
	for s, nb := range g.adj {
		for t, p := range nb {
			if s < t {
				c.SetEdge(s, t, p)
			}
		}
	}
	return c
}

// String renders a compact description for logs and tests.
func (g *Graph) String() string {
	return fmt.Sprintf("GRN{V=%d, E=%d}", g.NumVertices(), g.NumEdges())
}
