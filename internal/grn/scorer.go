package grn

import (
	"fmt"
	"math"
	"sort"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/stats"
	"github.com/imgrn/imgrn/internal/vecmath"
)

// Scorer assigns an interaction score in [0, 1] to a pair of genes of one
// matrix. A GRN is inferred by keeping the edges whose score exceeds the
// ad-hoc inference threshold γ. Implementations are not required to be safe
// for concurrent use.
type Scorer interface {
	// Name identifies the measure in experiment output ("IM-GRN",
	// "Correlation", "pCorr", "MI").
	Name() string
	// Prepare is called once per matrix before any Score call for that
	// matrix, allowing whole-matrix precomputation (e.g. the precision
	// matrix behind partial correlations).
	Prepare(m *gene.Matrix) error
	// Score returns the interaction score of columns s and t of the
	// prepared matrix.
	Score(m *gene.Matrix, s, t int) float64
}

// RandomizedScorer is the paper's IM-GRN measure (Definition 2): the
// probability that the observed (absolute) correlation of two gene vectors
// exceeds the correlation against a randomized (permuted) vector, estimated
// by Monte Carlo in the Euclidean reduction of Lemma 1.
//
// By default the absolute Pearson form of Definition 2 is used
// ("two-sided": strong negative correlations also count as interactions).
// OneSided selects the literal Eq.-(4) reduction Pr{dist_R > dist}, which
// only credits positive correlations; the two forms agree whenever
// cor + cor_R ≥ 0, the regime assumed by Lemma 1's proof.
type RandomizedScorer struct {
	Est      *stats.Estimator
	Samples  int  // Monte Carlo samples per pair; DefaultSamples if <= 0
	OneSided bool // use the signed Eq.-(4) form

	// Batch enables the batched inference kernel (DESIGN.md §9): the bulk
	// entry points (Infer, InferPruned, PairScores) share one permutation
	// batch per target column and score all its partners with blocked
	// dot-product kernels. Per-pair Score calls are unaffected. The batch
	// path consumes the estimator RNG in a different order than the scalar
	// path, so fixed-seed results differ between the two (both are
	// individually deterministic and statistically equivalent).
	Batch bool

	batch stats.PermBatch // ScoreColumn shared-permutation scratch
	cols  [][]float64     // ScoreColumn source-column scratch
}

// NewRandomizedScorer returns the canonical IM-GRN scorer with the batched
// inference kernel enabled.
func NewRandomizedScorer(seed uint64, samples int) *RandomizedScorer {
	return &RandomizedScorer{Est: stats.NewEstimator(seed), Samples: samples, Batch: true}
}

// Reseed resets the scorer's estimator stream in place to the state a
// fresh NewRandomizedScorer(seed, ·) would hold, keeping the batch and
// column scratch warm. All scratch is refilled before it is read, so a
// reseeded scorer draws exactly the stream a newly constructed one would.
func (s *RandomizedScorer) Reseed(seed uint64) {
	s.Est.Reseed(seed)
}

// Name implements Scorer.
func (s *RandomizedScorer) Name() string { return "IM-GRN" }

// Prepare implements Scorer (no per-matrix state is needed).
func (s *RandomizedScorer) Prepare(*gene.Matrix) error { return nil }

// Score implements Scorer.
func (s *RandomizedScorer) Score(m *gene.Matrix, a, b int) float64 {
	if !m.Informative(a) || !m.Informative(b) {
		return 0
	}
	if s.OneSided {
		return s.Est.EdgeProbability(m.StdCol(a), m.StdCol(b), s.Samples)
	}
	return s.Est.AbsEdgeProbability(m.StdCol(a), m.StdCol(b), s.Samples)
}

// AnalyticScorer approximates the same IM-GRN probability with the normal
// approximation of the permutation null: for standardized vectors of length
// l, the permutation distribution of Xs·Xt^R has mean 0 and variance
// 1/(l−1), so
//
//	two-sided: e.p ≈ 2·Φ( |cor| · sqrt(l−1) ) − 1
//	one-sided: e.p ≈ Φ( cor · sqrt(l−1) ).
//
// It is orders of magnitude faster than Monte Carlo and is used by the
// large benchmark sweeps; an ablation benchmark quantifies its agreement
// with the Monte Carlo estimator.
type AnalyticScorer struct {
	OneSided bool
}

// Name implements Scorer.
func (AnalyticScorer) Name() string { return "IM-GRN(analytic)" }

// Prepare implements Scorer.
func (AnalyticScorer) Prepare(*gene.Matrix) error { return nil }

// Score implements Scorer.
func (s AnalyticScorer) Score(m *gene.Matrix, a, b int) float64 {
	if !m.Informative(a) || !m.Informative(b) {
		return 0
	}
	l := m.Samples()
	if l < 2 {
		return 0
	}
	cor := vecmath.Dot(m.StdCol(a), m.StdCol(b))
	if s.OneSided {
		return stdNormalCDF(cor * math.Sqrt(float64(l-1)))
	}
	return 2*stdNormalCDF(math.Abs(cor)*math.Sqrt(float64(l-1))) - 1
}

// stdNormalCDF is Φ(x) via the complementary error function.
func stdNormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// CorrelationScorer is the classical relevance-network measure: the
// absolute Pearson correlation coefficient of Eq. (2). It is the paper's
// main effectiveness competitor ("Correlation").
type CorrelationScorer struct{}

// Name implements Scorer.
func (CorrelationScorer) Name() string { return "Correlation" }

// Prepare implements Scorer.
func (CorrelationScorer) Prepare(*gene.Matrix) error { return nil }

// Score implements Scorer.
func (CorrelationScorer) Score(m *gene.Matrix, a, b int) float64 {
	if !m.Informative(a) || !m.Informative(b) {
		return 0
	}
	return math.Abs(vecmath.Dot(m.StdCol(a), m.StdCol(b)))
}

// PartialCorrScorer is the pCorr competitor of Appendix H: the absolute
// partial correlation of each pair controlling for all remaining genes,
// computed from the (ridge-regularized) inverse correlation matrix.
type PartialCorrScorer struct {
	// Ridge is added to the diagonal of the correlation matrix before
	// inversion; required whenever genes outnumber samples.
	Ridge float64

	prepared *gene.Matrix
	pc       *vecmath.Matrix
}

// Name implements Scorer.
func (s *PartialCorrScorer) Name() string { return "pCorr" }

// Prepare implements Scorer.
func (s *PartialCorrScorer) Prepare(m *gene.Matrix) error {
	ridge := s.Ridge
	if ridge == 0 {
		ridge = 1e-3
	}
	cols := make([][]float64, m.NumGenes())
	for j := range cols {
		cols[j] = m.Col(j)
	}
	raw, err := vecmath.NewMatrixFromRows(cols) // rows = gene vectors
	if err != nil {
		return err
	}
	// PartialCorrelations works on columns; transpose so columns are genes.
	pc, err := vecmath.PartialCorrelations(raw.Transpose(), ridge)
	if err != nil {
		return fmt.Errorf("grn: pCorr prepare: %w", err)
	}
	s.prepared, s.pc = m, pc
	return nil
}

// Score implements Scorer.
func (s *PartialCorrScorer) Score(m *gene.Matrix, a, b int) float64 {
	if s.prepared != m {
		if err := s.Prepare(m); err != nil {
			return 0
		}
	}
	return math.Abs(s.pc.At(a, b))
}

// MutualInfoScorer estimates the mutual information between two gene
// vectors with an equal-frequency (rank) histogram and maps it to [0, 1]
// via the Gaussian information-correlation transform
// r_MI = sqrt(1 − exp(−2·I)). This is the mutual-information inference
// measure the paper defers to future work (Section 2.2); it plugs into the
// same ad-hoc matching pipeline.
type MutualInfoScorer struct {
	// Bins is the number of histogram bins per axis; max(2, ⌊√(l/5)⌋) when 0.
	Bins int
}

// Name implements Scorer.
func (s *MutualInfoScorer) Name() string { return "MI" }

// Prepare implements Scorer.
func (s *MutualInfoScorer) Prepare(*gene.Matrix) error { return nil }

// Score implements Scorer.
func (s *MutualInfoScorer) Score(m *gene.Matrix, a, b int) float64 {
	x, y := m.Col(a), m.Col(b)
	l := len(x)
	if l < 4 {
		return 0
	}
	bins := s.Bins
	if bins <= 0 {
		bins = int(math.Sqrt(float64(l) / 5))
		if bins < 2 {
			bins = 2
		}
	}
	bx := equalFrequencyBins(x, bins)
	by := equalFrequencyBins(y, bins)
	joint := make([]float64, bins*bins)
	px := make([]float64, bins)
	py := make([]float64, bins)
	inv := 1 / float64(l)
	for i := 0; i < l; i++ {
		joint[bx[i]*bins+by[i]] += inv
		px[bx[i]] += inv
		py[by[i]] += inv
	}
	var mi float64
	for i := 0; i < bins; i++ {
		for j := 0; j < bins; j++ {
			p := joint[i*bins+j]
			if p > 0 {
				mi += p * math.Log(p/(px[i]*py[j]))
			}
		}
	}
	if mi < 0 {
		mi = 0
	}
	return math.Sqrt(1 - math.Exp(-2*mi))
}

// equalFrequencyBins assigns each value its rank-quantile bin in [0, bins).
func equalFrequencyBins(x []float64, bins int) []int {
	l := len(x)
	idx := make([]int, l)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return x[idx[i]] < x[idx[j]] })
	out := make([]int, l)
	for rank, i := range idx {
		b := rank * bins / l
		if b >= bins {
			b = bins - 1
		}
		out[i] = b
	}
	return out
}
