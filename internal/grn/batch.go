package grn

import (
	"time"

	"github.com/imgrn/imgrn/internal/gene"
)

// This file is the grn-level face of the batched Monte Carlo inference
// kernel (DESIGN.md §9). The scalar path scores each candidate pair (s, t)
// independently — R fresh permutations of Xt and R distance passes per
// pair. The batch path fixes the target column t, draws its R permutations
// once into a stats.PermBatch, and scores every partner s < t against that
// shared batch with blocked dot-product kernels, turning the O(n²·R·l) hot
// loop into n shared batch fills plus blocked mat-mat inner products.
//
// RNG-consumption order: the scalar path draws R permutations per PAIR in
// (s, t) lexicographic order; the batch path draws R permutations per
// COLUMN t (and, under pruning, only scores the survivors). Fixed-seed
// outputs therefore differ between the paths while both remain
// deterministic and statistically equivalent estimates of the same
// probabilities.

// ScoreColumn scores every source column in srcs against target column t
// using one shared permutation batch, writing dst[i] for srcs[i]. All
// indices, t included, must be informative columns of m. dst must have
// length ≥ len(srcs). Equivalent in distribution to calling Score for each
// pair, at a fraction of the permutation and arithmetic cost.
func (s *RandomizedScorer) ScoreColumn(m *gene.Matrix, t int, srcs []int, dst []float64) {
	s.batch.Fill(s.Est, m.StdCol(t), s.Samples)
	s.cols = gatherStdCols(s.cols, m, srcs)
	s.batch.EdgeProbabilitiesInto(dst, s.cols, s.OneSided)
}

// UpperBoundColumn computes the Lemma-4 pruning upper bound of every source
// column in srcs against target column t, writing dst[i] for srcs[i]. The
// E(Z) estimates reuse one shared batch of BoundSamples permutations of
// column t instead of BoundSamples fresh permutations per pair, making the
// bound a near-free byproduct of the batch's inner products. All indices
// must be informative columns of m; dst must have length ≥ len(srcs).
func (p *Pruner) UpperBoundColumn(m *gene.Matrix, t int, srcs []int, dst []float64) {
	p.batch.Fill(p.Est, m.StdCol(t), p.BoundSamples)
	p.cols = gatherStdCols(p.cols, m, srcs)
	p.batch.MarkovUpperBoundsInto(dst, p.cols, p.OneSided)
}

// gatherStdCols fills buf with the standardized columns idx of m, growing
// it as needed.
func gatherStdCols(buf [][]float64, m *gene.Matrix, idx []int) [][]float64 {
	if cap(buf) < len(idx) {
		buf = make([][]float64, len(idx))
	}
	buf = buf[:len(idx)]
	for i, j := range idx {
		buf[i] = m.StdCol(j)
	}
	return buf
}

// forEachColumnBatch drives the unpruned batch inference loop shared by
// Infer and PairScores: for every informative target column t it scores all
// informative sources s < t in one ScoreColumn call and hands the column's
// results to visit. The srcs and probs slices are reused across columns.
func forEachColumnBatch(m *gene.Matrix, sc *RandomizedScorer, visit func(t int, srcs []int, probs []float64)) {
	n := m.NumGenes()
	srcs := make([]int, 0, n)
	probs := make([]float64, 0, n)
	for t := 1; t < n; t++ {
		if !m.Informative(t) {
			continue
		}
		srcs = srcs[:0]
		for s := 0; s < t; s++ {
			if m.Informative(s) {
				srcs = append(srcs, s)
			}
		}
		if len(srcs) == 0 {
			continue
		}
		probs = probs[:len(srcs)]
		sc.ScoreColumn(m, t, srcs, probs)
		visit(t, srcs, probs)
	}
}

// inferPrunedBatch is InferPruned's batched implementation: per target
// column it bounds all candidate partners against a shared BoundSamples
// batch (Lemma 3 pruning), then scores only the survivors against a shared
// Samples batch. The scorer batch is filled lazily — a fully pruned column
// consumes no scorer RNG, mirroring the scalar path where pruned pairs are
// never scored.
func inferPrunedBatch(m *gene.Matrix, sc *RandomizedScorer, pr *Pruner, gamma float64) (*Graph, InferStats, error) {
	var st InferStats
	g := NewGraph(m.Genes())
	n := m.NumGenes()
	srcs := make([]int, 0, n)
	survivors := make([]int, 0, n)
	vals := make([]float64, n)
	for t := 1; t < n; t++ {
		if !m.Informative(t) {
			continue
		}
		srcs = srcs[:0]
		for s := 0; s < t; s++ {
			if m.Informative(s) {
				srcs = append(srcs, s)
			}
		}
		if len(srcs) == 0 {
			continue
		}
		st.Pairs += len(srcs)
		survivors = survivors[:0]
		if pr != nil {
			st.BoundCalls += pr.BoundSamples
			begin := time.Now()
			pr.UpperBoundColumn(m, t, srcs, vals)
			st.Kernel += time.Since(begin)
			for i, s := range srcs {
				if vals[i] <= gamma {
					st.Pruned++
				} else {
					survivors = append(survivors, s)
				}
			}
		} else {
			survivors = append(survivors, srcs...)
		}
		if len(survivors) == 0 {
			continue
		}
		st.Estimated += len(survivors)
		begin := time.Now()
		sc.ScoreColumn(m, t, survivors, vals)
		st.Kernel += time.Since(begin)
		for i, s := range survivors {
			if vals[i] > gamma {
				g.SetEdge(s, t, vals[i])
				st.Edges++
			}
		}
	}
	return g, st, nil
}
