package grn

import (
	"testing"

	"github.com/imgrn/imgrn/internal/gene"
)

func triangle() *Graph {
	g := NewGraph([]gene.ID{1, 2, 3})
	g.SetEdge(0, 1, 0.9)
	g.SetEdge(1, 2, 0.8)
	g.SetEdge(0, 2, 0.7)
	return g
}

func TestGraphBasics(t *testing.T) {
	g := triangle()
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("shape: V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	if p, ok := g.EdgeProb(1, 0); !ok || p != 0.9 {
		t.Errorf("EdgeProb(1,0) = %v,%v", p, ok)
	}
	if _, ok := g.EdgeProb(0, 0); ok {
		t.Error("self edge should not exist")
	}
	if !g.HasEdge(2, 1) {
		t.Error("undirected edge missing")
	}
	if g.Gene(2) != 3 {
		t.Errorf("Gene(2) = %d", g.Gene(2))
	}
}

func TestSetEdgeUpdatesInPlace(t *testing.T) {
	g := NewGraph([]gene.ID{1, 2})
	g.SetEdge(0, 1, 0.5)
	g.SetEdge(0, 1, 0.6)
	if g.NumEdges() != 1 {
		t.Errorf("edge count after update = %d", g.NumEdges())
	}
	if p, _ := g.EdgeProb(0, 1); p != 0.6 {
		t.Errorf("updated prob = %v", p)
	}
}

func TestSetEdgePanicsOnSelfLoop(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewGraph([]gene.ID{1}).SetEdge(0, 0, 0.5)
}

func TestNeighborsSorted(t *testing.T) {
	g := NewGraph([]gene.ID{1, 2, 3, 4})
	g.SetEdge(2, 0, 0.5)
	g.SetEdge(2, 3, 0.5)
	g.SetEdge(2, 1, 0.5)
	nb := g.Neighbors(2)
	if len(nb) != 3 || nb[0] != 0 || nb[1] != 1 || nb[2] != 3 {
		t.Errorf("Neighbors = %v", nb)
	}
	if g.Degree(2) != 3 || g.Degree(0) != 1 {
		t.Error("degrees wrong")
	}
}

func TestEdgesSortedCanonical(t *testing.T) {
	g := triangle()
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("len = %d", len(es))
	}
	for i, e := range es {
		if e.S >= e.T {
			t.Errorf("edge %d not canonical: %+v", i, e)
		}
		if i > 0 && (es[i-1].S > e.S || (es[i-1].S == e.S && es[i-1].T > e.T)) {
			t.Error("edges not sorted")
		}
	}
}

func TestMaxDegreeVertex(t *testing.T) {
	g := NewGraph([]gene.ID{1, 2, 3, 4})
	if g.MaxDegreeVertex() != 0 {
		t.Error("empty graph should pick vertex 0")
	}
	g.SetEdge(1, 2, 0.5)
	g.SetEdge(1, 3, 0.5)
	g.SetEdge(2, 3, 0.5)
	g.SetEdge(1, 0, 0.5)
	if got := g.MaxDegreeVertex(); got != 1 {
		t.Errorf("MaxDegreeVertex = %d, want 1", got)
	}
	if NewGraph(nil).MaxDegreeVertex() != -1 {
		t.Error("empty graph should return -1")
	}
}

func TestConnected(t *testing.T) {
	g := NewGraph([]gene.ID{1, 2, 3})
	if g.Connected() {
		t.Error("3 isolated vertices are not connected")
	}
	g.SetEdge(0, 1, 0.5)
	if g.Connected() {
		t.Error("still disconnected")
	}
	g.SetEdge(1, 2, 0.5)
	if !g.Connected() {
		t.Error("path graph is connected")
	}
	if !NewGraph(nil).Connected() || !NewGraph([]gene.ID{1}).Connected() {
		t.Error("empty and singleton graphs are connected")
	}
}

func TestAppearanceProbability(t *testing.T) {
	g := triangle()
	p, err := g.AppearanceProbability([]Edge{{S: 0, T: 1}, {S: 1, T: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.9 * 0.8; p < want-1e-12 || p > want+1e-12 {
		t.Errorf("Pr = %v, want %v", p, want)
	}
	if _, err := g.AppearanceProbability([]Edge{{S: 0, T: 1}, {S: 2, T: 0}, {S: 1, T: 0}}); err != nil {
		t.Error("reversed edge selector should be accepted")
	}
	g2 := NewGraph([]gene.ID{1, 2})
	if _, err := g2.AppearanceProbability([]Edge{{S: 0, T: 1}}); err == nil {
		t.Error("missing edge should error")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := triangle()
	c := g.Clone()
	c.SetEdge(0, 1, 0.1)
	if p, _ := g.EdgeProb(0, 1); p != 0.9 {
		t.Error("Clone aliases the original")
	}
	if c.NumEdges() != g.NumEdges() {
		t.Error("clone edge count wrong")
	}
}

func TestGraphString(t *testing.T) {
	if s := triangle().String(); s != "GRN{V=3, E=3}" {
		t.Errorf("String = %q", s)
	}
}
