package grn

import (
	"math"
	"testing"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/stats"
	"github.com/imgrn/imgrn/internal/vecmath"
)

// testMatrix builds a matrix whose columns have known relationships:
// col1 = col0 scaled, col2 = −col0, col3 independent noise.
func testMatrix(t *testing.T, l int, seed uint64) *gene.Matrix {
	t.Helper()
	rng := randgen.New(seed)
	base := make([]float64, l)
	noise := make([]float64, l)
	for i := 0; i < l; i++ {
		base[i] = rng.Gaussian(0, 1)
		noise[i] = rng.Gaussian(0, 1)
	}
	scaled := make([]float64, l)
	neg := make([]float64, l)
	for i, v := range base {
		scaled[i] = 2*v + 1
		neg[i] = -v
	}
	m, err := gene.NewMatrix(0, []gene.ID{0, 1, 2, 3}, [][]float64{base, scaled, neg, noise})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCorrelationScorer(t *testing.T) {
	m := testMatrix(t, 50, 1)
	sc := CorrelationScorer{}
	if err := sc.Prepare(m); err != nil {
		t.Fatal(err)
	}
	if got := sc.Score(m, 0, 1); math.Abs(got-1) > 1e-9 {
		t.Errorf("|cor(x, 2x+1)| = %v, want 1", got)
	}
	if got := sc.Score(m, 0, 2); math.Abs(got-1) > 1e-9 {
		t.Errorf("|cor(x, -x)| = %v, want 1", got)
	}
	if got := sc.Score(m, 0, 3); got > 0.4 {
		t.Errorf("|cor(x, noise)| = %v, want small", got)
	}
	if sc.Name() != "Correlation" {
		t.Errorf("Name = %q", sc.Name())
	}
}

func TestRandomizedScorerTwoSidedCreditsNegatives(t *testing.T) {
	m := testMatrix(t, 30, 2)
	sc := NewRandomizedScorer(7, 400)
	if got := sc.Score(m, 0, 2); got < 0.95 {
		t.Errorf("two-sided score of anti-correlated pair = %v, want ≈ 1", got)
	}
	one := NewRandomizedScorer(7, 400)
	one.OneSided = true
	if got := one.Score(m, 0, 2); got > 0.05 {
		t.Errorf("one-sided score of anti-correlated pair = %v, want ≈ 0", got)
	}
	if got := one.Score(m, 0, 1); got < 0.95 {
		t.Errorf("one-sided score of correlated pair = %v, want ≈ 1", got)
	}
}

func TestRandomizedScorerUninformativeColumn(t *testing.T) {
	m, err := gene.NewMatrix(0, []gene.ID{0, 1}, [][]float64{{1, 1, 1}, {1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewRandomizedScorer(1, 100)
	if got := sc.Score(m, 0, 1); got != 0 {
		t.Errorf("score with constant column = %v, want 0", got)
	}
}

func TestAnalyticScorerAgreesWithExact(t *testing.T) {
	rng := randgen.New(3)
	// Longer vectors make the normal approximation accurate; compare
	// against high-budget Monte Carlo.
	l := 60
	cols := make([][]float64, 2)
	base := make([]float64, l)
	for i := range base {
		base[i] = rng.Gaussian(0, 1)
	}
	mixed := make([]float64, l)
	for i := range mixed {
		mixed[i] = 0.5*base[i] + rng.Gaussian(0, 1)
	}
	cols[0], cols[1] = base, mixed
	m, err := gene.NewMatrix(0, []gene.ID{0, 1}, cols)
	if err != nil {
		t.Fatal(err)
	}
	an := AnalyticScorer{}
	mc := NewRandomizedScorer(4, 20000)
	if a, b := an.Score(m, 0, 1), mc.Score(m, 0, 1); math.Abs(a-b) > 0.05 {
		t.Errorf("analytic %v vs MC %v", a, b)
	}
	anOne := AnalyticScorer{OneSided: true}
	mcOne := NewRandomizedScorer(4, 20000)
	mcOne.OneSided = true
	if a, b := anOne.Score(m, 0, 1), mcOne.Score(m, 0, 1); math.Abs(a-b) > 0.05 {
		t.Errorf("one-sided analytic %v vs MC %v", a, b)
	}
}

func TestAnalyticScorerBounds(t *testing.T) {
	m := testMatrix(t, 40, 5)
	an := AnalyticScorer{}
	for s := 0; s < 4; s++ {
		for u := s + 1; u < 4; u++ {
			p := an.Score(m, s, u)
			if p < 0 || p > 1 {
				t.Errorf("score(%d,%d) = %v out of [0,1]", s, u, p)
			}
		}
	}
}

func TestPartialCorrScorerChain(t *testing.T) {
	rng := randgen.New(6)
	l := 3000
	x := make([]float64, l)
	y := make([]float64, l)
	z := make([]float64, l)
	for i := 0; i < l; i++ {
		x[i] = rng.Gaussian(0, 1)
		y[i] = 0.9*x[i] + rng.Gaussian(0, 0.3)
		z[i] = 0.9*y[i] + rng.Gaussian(0, 0.3)
	}
	m, err := gene.NewMatrix(0, []gene.ID{0, 1, 2}, [][]float64{x, y, z})
	if err != nil {
		t.Fatal(err)
	}
	sc := &PartialCorrScorer{Ridge: 1e-6}
	if err := sc.Prepare(m); err != nil {
		t.Fatal(err)
	}
	if got := sc.Score(m, 0, 2); got > 0.15 {
		t.Errorf("pcor(x,z|y) = %v, want ≈ 0 (chain)", got)
	}
	if got := sc.Score(m, 0, 1); got < 0.5 {
		t.Errorf("pcor(x,y|z) = %v, want strong", got)
	}
}

func TestPartialCorrScorerAutoPrepares(t *testing.T) {
	m := testMatrix(t, 40, 7)
	sc := &PartialCorrScorer{Ridge: 1e-2}
	// Score without explicit Prepare should self-prepare.
	if got := sc.Score(m, 0, 1); got <= 0 {
		t.Errorf("self-prepared score = %v", got)
	}
}

func TestMutualInfoScorer(t *testing.T) {
	rng := randgen.New(8)
	l := 400
	x := make([]float64, l)
	dep := make([]float64, l)
	indep := make([]float64, l)
	for i := 0; i < l; i++ {
		x[i] = rng.Gaussian(0, 1)
		dep[i] = x[i] * x[i] // strong nonlinear (zero-correlation) relation
		indep[i] = rng.Gaussian(0, 1)
	}
	m, err := gene.NewMatrix(0, []gene.ID{0, 1, 2}, [][]float64{x, dep, indep})
	if err != nil {
		t.Fatal(err)
	}
	sc := &MutualInfoScorer{}
	depScore := sc.Score(m, 0, 1)
	indepScore := sc.Score(m, 0, 2)
	if depScore <= indepScore {
		t.Errorf("MI(x, x²) = %v should exceed MI(x, noise) = %v", depScore, indepScore)
	}
	// The nonlinear dependence is invisible to correlation but not MI.
	if c := (CorrelationScorer{}).Score(m, 0, 1); c > 0.3 {
		t.Logf("note: |cor|(x, x²) = %v", c)
	}
	if depScore < 0.3 {
		t.Errorf("MI score of deterministic relation too low: %v", depScore)
	}
}

func TestMutualInfoShortVector(t *testing.T) {
	m, err := gene.NewMatrix(0, []gene.ID{0, 1}, [][]float64{{1, 2}, {2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := (&MutualInfoScorer{}).Score(m, 0, 1); got != 0 {
		t.Errorf("MI on l=2 = %v, want 0", got)
	}
}

func TestScorerNames(t *testing.T) {
	names := map[string]Scorer{
		"IM-GRN":           NewRandomizedScorer(1, 10),
		"IM-GRN(analytic)": AnalyticScorer{},
		"Correlation":      CorrelationScorer{},
		"pCorr":            &PartialCorrScorer{},
		"MI":               &MutualInfoScorer{},
	}
	for want, sc := range names {
		if got := sc.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

// TestRandomizedScorerMatchesStatsEstimator pins the scorer to the
// underlying estimator semantics.
func TestRandomizedScorerMatchesStatsEstimator(t *testing.T) {
	m := testMatrix(t, 6, 9)
	exact := stats.ExactAbsEdgeProbability(m.StdCol(0), m.StdCol(3))
	sc := NewRandomizedScorer(10, 20000)
	if got := sc.Score(m, 0, 3); math.Abs(got-exact) > 0.03 {
		t.Errorf("scorer %v vs exact %v", got, exact)
	}
}

var _ = vecmath.Dot // keep import for helper extensions
