package grn

import (
	"math"
	"testing"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/stats"
)

// randTestMatrix builds an n-gene matrix of Gaussian columns of length l.
func randTestMatrix(t *testing.T, n, l int, seed uint64) *gene.Matrix {
	t.Helper()
	rng := randgen.New(seed)
	ids := make([]gene.ID, n)
	cols := make([][]float64, n)
	for j := 0; j < n; j++ {
		ids[j] = gene.ID(j)
		cols[j] = make([]float64, l)
		for i := range cols[j] {
			cols[j][i] = rng.Gaussian(0, 1)
		}
	}
	m, err := gene.NewMatrix(0, ids, cols)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestScoreColumnMatchesExact: through the gene.Matrix plumbing, the batch
// column scorer must converge to the exact enumerated probability at small
// l, for both sidedness modes.
func TestScoreColumnMatchesExact(t *testing.T) {
	m := randTestMatrix(t, 6, 7, 21)
	for _, oneSided := range []bool{false, true} {
		sc := NewRandomizedScorer(22, 6000)
		sc.OneSided = oneSided
		tcol := 5
		srcs := []int{0, 1, 2, 3, 4}
		got := make([]float64, len(srcs))
		sc.ScoreColumn(m, tcol, srcs, got)
		for i, s := range srcs {
			var exact float64
			if oneSided {
				exact = stats.ExactEdgeProbability(m.StdCol(s), m.StdCol(tcol))
			} else {
				exact = stats.ExactAbsEdgeProbability(m.StdCol(s), m.StdCol(tcol))
			}
			if math.Abs(got[i]-exact) > 0.05 {
				t.Errorf("oneSided=%v src %d: batch %v, exact %v", oneSided, s, got[i], exact)
			}
		}
	}
}

// TestUpperBoundColumnDominatesExact: the batched Lemma-4 bound must stay
// an upper bound on the exact edge probability (up to Monte Carlo slack on
// the E(Z) estimate), like the scalar Pruner.UpperBound.
func TestUpperBoundColumnDominatesExact(t *testing.T) {
	m := randTestMatrix(t, 6, 7, 23)
	pr := NewPruner(24, 1024)
	tcol := 5
	srcs := []int{0, 1, 2, 3, 4}
	got := make([]float64, len(srcs))
	pr.UpperBoundColumn(m, tcol, srcs, got)
	for i, s := range srcs {
		if got[i] < 0 || got[i] > 1 {
			t.Errorf("src %d: bound %v out of [0,1]", s, got[i])
		}
		exact := stats.ExactAbsEdgeProbability(m.StdCol(s), m.StdCol(tcol))
		if got[i] < exact-0.05 {
			t.Errorf("src %d: bound %v below exact probability %v", s, got[i], exact)
		}
	}
}

// TestInferPrunedBatchNoPrunerMatchesInfer: with pruning off, the batched
// InferPruned consumes the scorer RNG exactly like the batched Infer (one
// batch per target column, all partners scored), so identically seeded
// scorers must produce identical graphs.
func TestInferPrunedBatchNoPrunerMatchesInfer(t *testing.T) {
	m := randTestMatrix(t, 12, 25, 25)
	g1, err := Infer(m, NewRandomizedScorer(26, 64), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	g2, st, err := InferPruned(m, NewRandomizedScorer(26, 64), nil, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != 12*11/2 || st.Estimated != st.Pairs || st.Pruned != 0 {
		t.Errorf("stats accounting off without pruner: %+v", st)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", g1.NumEdges(), g2.NumEdges())
	}
	for s := 0; s < 12; s++ {
		for u := s + 1; u < 12; u++ {
			p1, ok1 := g1.EdgeProb(s, u)
			p2, ok2 := g2.EdgeProb(s, u)
			if ok1 != ok2 || p1 != p2 {
				t.Errorf("edge (%d,%d): Infer %v,%v vs InferPruned %v,%v", s, u, p1, ok1, p2, ok2)
			}
		}
	}
}

// TestInferPrunedBatchAccounting: the batch path's InferStats must keep the
// scalar path's invariants (Pairs = Pruned + Estimated, Edges matches the
// graph) plus the new kernel clock and per-column BoundCalls semantics.
func TestInferPrunedBatchAccounting(t *testing.T) {
	n := 14
	m := randTestMatrix(t, n, 30, 27)
	sc := NewRandomizedScorer(28, 96)
	pr := NewPruner(29, 16)
	g, st, err := InferPruned(m, sc, pr, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != n*(n-1)/2 {
		t.Errorf("Pairs = %d, want %d", st.Pairs, n*(n-1)/2)
	}
	if st.Pruned+st.Estimated != st.Pairs {
		t.Errorf("Pruned %d + Estimated %d != Pairs %d", st.Pruned, st.Estimated, st.Pairs)
	}
	if st.Edges != g.NumEdges() {
		t.Errorf("Edges = %d, graph has %d", st.Edges, g.NumEdges())
	}
	if st.Kernel <= 0 {
		t.Error("batch path recorded no kernel time")
	}
	// Shared-batch bound accounting: BoundSamples per column with >= 1
	// candidate pair, i.e. columns 1..n-1, not per pair.
	if want := (n - 1) * pr.BoundSamples; st.BoundCalls != want {
		t.Errorf("BoundCalls = %d, want %d (per-column)", st.BoundCalls, want)
	}
}

// TestInferPrunedBatchDeterminism: fixed seeds, identical graphs.
func TestInferPrunedBatchDeterminism(t *testing.T) {
	m := randTestMatrix(t, 10, 20, 31)
	run := func() *Graph {
		g, _, err := InferPruned(m, NewRandomizedScorer(32, 64), NewPruner(33, 16), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	g1, g2 := run(), run()
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", g1.NumEdges(), g2.NumEdges())
	}
	for s := 0; s < 10; s++ {
		for u := s + 1; u < 10; u++ {
			p1, _ := g1.EdgeProb(s, u)
			p2, _ := g2.EdgeProb(s, u)
			if p1 != p2 {
				t.Errorf("edge (%d,%d): %v vs %v", s, u, p1, p2)
			}
		}
	}
}

// TestInferPrunedBatchAgreesWithScalarStatistically: the batch and scalar
// paths estimate the same probabilities, so at a generous sample budget
// their inferred edge sets on a well-separated matrix must coincide.
func TestInferPrunedBatchAgreesWithScalarStatistically(t *testing.T) {
	m := testMatrix(t, 60, 34) // 4 genes with strong correlation structure
	batch := NewRandomizedScorer(35, 2000)
	gb, _, err := InferPruned(m, batch, NewPruner(36, 64), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	scalar := NewRandomizedScorer(37, 2000)
	scalar.Batch = false
	gs, _, err := InferPruned(m, scalar, NewPruner(38, 64), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if gb.NumEdges() != gs.NumEdges() {
		t.Fatalf("batch %d edges, scalar %d edges", gb.NumEdges(), gs.NumEdges())
	}
	for s := 0; s < m.NumGenes(); s++ {
		for u := s + 1; u < m.NumGenes(); u++ {
			if gb.HasEdge(s, u) != gs.HasEdge(s, u) {
				t.Errorf("edge (%d,%d): batch %v, scalar %v", s, u, gb.HasEdge(s, u), gs.HasEdge(s, u))
			}
		}
	}
}
