package grn

import (
	"math"
	"testing"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/stats"
)

// TestCalibratedAbsPearsonMatchesDefinition2: the generic calibrated
// scorer with |Pearson| must agree with the paper's exact two-sided
// probability.
func TestCalibratedAbsPearsonMatchesDefinition2(t *testing.T) {
	m := testMatrix(t, 6, 100)
	exact := stats.ExactAbsEdgeProbability(m.StdCol(0), m.StdCol(3))
	sc := NewCalibratedScorer("cal|r|", AbsPearsonVec, 101, 20000)
	if got := sc.Score(m, 0, 3); math.Abs(got-exact) > 0.03 {
		t.Errorf("calibrated |r| = %v, exact Definition-2 = %v", got, exact)
	}
}

func TestCalibratedScorerStrongPair(t *testing.T) {
	m := testMatrix(t, 40, 102)
	for _, sc := range []*CalibratedScorer{
		NewCalibratedScorer("cal|r|", AbsPearsonVec, 103, 256),
		NewCalibratedScorer("cal-spearman", SpearmanVec, 104, 256),
		NewCalibratedScorer("cal-MI", MutualInfoVec(0), 105, 256),
	} {
		if got := sc.Score(m, 0, 1); got < 0.9 {
			t.Errorf("%s: strong pair scored %v", sc.Name(), got)
		}
		if got := sc.Score(m, 0, 3); got > 0.98 {
			t.Errorf("%s: independent pair scored %v (should not saturate)", sc.Name(), got)
		}
	}
}

// TestCalibratedUniformUnderNull: for independent vectors the calibrated
// probability is ~uniform, so its mean over many pairs is ~0.5 — the
// property that gives γ its false-positive-rate semantics.
func TestCalibratedUniformUnderNull(t *testing.T) {
	rng := randgen.New(106)
	sc := NewCalibratedScorer("cal|r|", AbsPearsonVec, 107, 128)
	var sum float64
	const trials = 60
	for k := 0; k < trials; k++ {
		m := testMatrix(t, 20, rng.Uint64())
		sum += sc.Score(m, 0, 3) // independent columns
	}
	mean := sum / trials
	if mean < 0.35 || mean > 0.65 {
		t.Errorf("null mean = %v, want ≈ 0.5", mean)
	}
}

func TestCalibratedMIDetectsNonlinear(t *testing.T) {
	rng := randgen.New(108)
	l := 300
	x := make([]float64, l)
	dep := make([]float64, l)
	for i := 0; i < l; i++ {
		x[i] = rng.Gaussian(0, 1)
		dep[i] = math.Abs(x[i]) // zero linear correlation, strong dependence
	}
	m := matrixFromCols(t, [][]float64{x, dep})
	calMI := NewCalibratedScorer("cal-MI", MutualInfoVec(0), 109, 256)
	calR := NewCalibratedScorer("cal|r|", AbsPearsonVec, 110, 256)
	if mi, r := calMI.Score(m, 0, 1), calR.Score(m, 0, 1); mi < 0.95 {
		t.Errorf("calibrated MI = %v (|r| variant = %v); MI should detect |x| dependence", mi, r)
	}
}

func TestSpearmanVec(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 100, 1000, 10000, 100000} // monotone, nonlinear
	if got := SpearmanVec(x, y); math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman of monotone pair = %v, want 1", got)
	}
	rev := []float64{5, 4, 3, 2, 1}
	if got := SpearmanVec(x, rev); math.Abs(got-1) > 1e-12 {
		t.Errorf("|Spearman| of reversed pair = %v, want 1", got)
	}
}

func TestAbsPearsonVecEdgeCases(t *testing.T) {
	if got := AbsPearsonVec([]float64{1}, []float64{1}); got != 0 {
		t.Errorf("single sample = %v", got)
	}
	if got := AbsPearsonVec([]float64{1, 2}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("length mismatch = %v", got)
	}
	if got := AbsPearsonVec([]float64{1, 1, 1}, []float64{1, 2, 3}); got != 0 {
		t.Errorf("constant vector = %v", got)
	}
}

func matrixFromCols(t *testing.T, cols [][]float64) *gene.Matrix {
	t.Helper()
	ids := make([]gene.ID, len(cols))
	for i := range ids {
		ids[i] = gene.ID(i)
	}
	m, err := gene.NewMatrix(0, ids, cols)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
