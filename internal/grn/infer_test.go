package grn

import (
	"testing"
	"testing/quick"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/stats"
	"github.com/imgrn/imgrn/internal/vecmath"
)

func TestInferThresholdSemantics(t *testing.T) {
	m := testMatrix(t, 40, 11)
	g, err := Infer(m, AnalyticScorer{}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute scores and check edge membership matches "> gamma".
	an := AnalyticScorer{}
	for s := 0; s < m.NumGenes(); s++ {
		for u := s + 1; u < m.NumGenes(); u++ {
			p := an.Score(m, s, u)
			if (p > 0.5) != g.HasEdge(s, u) {
				t.Errorf("edge (%d,%d) membership mismatch: score %v", s, u, p)
			}
			if ep, ok := g.EdgeProb(s, u); ok && ep != p {
				t.Errorf("edge (%d,%d) prob %v != score %v", s, u, ep, p)
			}
		}
	}
}

func TestInferGammaMonotonicity(t *testing.T) {
	m := testMatrix(t, 40, 12)
	prev := -1
	for _, gamma := range []float64{0.1, 0.5, 0.9, 0.99} {
		g, err := Infer(m, AnalyticScorer{}, gamma)
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && g.NumEdges() > prev {
			t.Errorf("edge count increased when gamma grew: %d > %d", g.NumEdges(), prev)
		}
		prev = g.NumEdges()
	}
}

func TestPairScores(t *testing.T) {
	m := testMatrix(t, 30, 13)
	ps, err := PairScores(m, CorrelationScorer{})
	if err != nil {
		t.Fatal(err)
	}
	if ps.Rows != 4 || ps.Cols != 4 {
		t.Fatalf("shape %dx%d", ps.Rows, ps.Cols)
	}
	for s := 0; s < 4; s++ {
		for u := 0; u < 4; u++ {
			if ps.At(s, u) != ps.At(u, s) {
				t.Error("pair scores not symmetric")
			}
		}
	}
	if ps.At(0, 1) < 0.99 {
		t.Errorf("scaled pair score = %v", ps.At(0, 1))
	}
}

// TestPrunerSoundness: the Lemma-3/4 upper bound (computed with a large
// bound-sample budget) must dominate the exact two-sided edge probability.
func TestPrunerSoundness(t *testing.T) {
	rng := randgen.New(14)
	pr := NewPruner(15, 2048)
	f := func(seed uint64) bool {
		r := randgen.New(seed ^ rng.Uint64())
		xs := make([]float64, 6)
		xt := make([]float64, 6)
		for i := range xs {
			xs[i] = r.Gaussian(0, 1)
			xt[i] = r.Gaussian(0, 1)
		}
		if !vecmath.Standardize(xs) || !vecmath.Standardize(xt) {
			return true
		}
		exact := stats.ExactAbsEdgeProbability(xs, xt)
		// Allow slack for the Monte Carlo E(Z) estimate.
		return pr.UpperBound(xs, xt) >= exact-0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPrunerOneSidedSoundness(t *testing.T) {
	rng := randgen.New(16)
	pr := NewPruner(17, 2048)
	pr.OneSided = true
	f := func(seed uint64) bool {
		r := randgen.New(seed ^ rng.Uint64())
		xs := make([]float64, 6)
		xt := make([]float64, 6)
		for i := range xs {
			xs[i] = r.Gaussian(0, 1)
			xt[i] = r.Gaussian(0, 1)
		}
		if !vecmath.Standardize(xs) || !vecmath.Standardize(xt) {
			return true
		}
		exact := stats.ExactEdgeProbability(xs, xt)
		return pr.UpperBound(xs, xt) >= exact-0.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestInferPrunedFindsStrongEdges: pruning must never lose an edge whose
// probability is decisively above gamma.
func TestInferPrunedFindsStrongEdges(t *testing.T) {
	m := testMatrix(t, 40, 18)
	sc := NewRandomizedScorer(19, 256)
	pr := NewPruner(20, 32)
	g, st, err := InferPruned(m, sc, pr, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// col0–col1 (perfect correlation) and col0–col2 (perfect
	// anti-correlation, two-sided) must be present.
	if !g.HasEdge(0, 1) {
		t.Error("pruned inference lost the strongly correlated edge")
	}
	if !g.HasEdge(0, 2) {
		t.Error("pruned inference lost the strongly anti-correlated edge")
	}
	if st.Pairs != 6 {
		t.Errorf("pair count = %d, want 6", st.Pairs)
	}
	if st.Pruned+st.Estimated != st.Pairs {
		t.Errorf("stats inconsistent: %+v", st)
	}
}

func TestInferPrunedNilPruner(t *testing.T) {
	m := testMatrix(t, 20, 21)
	sc := NewRandomizedScorer(22, 128)
	g, st, err := InferPruned(m, sc, nil, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pruned != 0 || st.Estimated != st.Pairs {
		t.Errorf("nil pruner should estimate everything: %+v", st)
	}
	if !g.HasEdge(0, 1) {
		t.Error("strong edge missing")
	}
}

func TestInferPrunedSkipsUninformative(t *testing.T) {
	m, err := gene.NewMatrix(0, []gene.ID{0, 1, 2},
		[][]float64{{1, 1, 1, 1}, {1, 2, 3, 4}, {2, 4, 6, 8}})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewRandomizedScorer(23, 64)
	g, st, err := InferPruned(m, sc, nil, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pairs != 1 {
		t.Errorf("pairs = %d, want 1 (constant column excluded)", st.Pairs)
	}
	if g.HasEdge(0, 1) || g.HasEdge(0, 2) {
		t.Error("edges to uninformative column must not exist")
	}
}

func TestGraphExistenceUpperBound(t *testing.T) {
	if got := GraphExistenceUpperBound([]float64{0.5, 0.5, 0.8}); got != 0.2 {
		t.Errorf("product = %v, want 0.2", got)
	}
	if got := GraphExistenceUpperBound(nil); got != 1 {
		t.Errorf("empty product = %v, want 1", got)
	}
}

func TestPruneByGraphExistence(t *testing.T) {
	if !PruneByGraphExistence(0.3, 0.3) {
		t.Error("ub == alpha should prune (strict > required)")
	}
	if PruneByGraphExistence(0.31, 0.3) {
		t.Error("ub > alpha should not prune")
	}
}
