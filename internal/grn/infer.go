package grn

import (
	"fmt"
	"time"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/stats"
	"github.com/imgrn/imgrn/internal/vecmath"
)

// Infer reconstructs the GRN of matrix m under inference threshold gamma
// (Definition 2/3): an edge {s, t} exists with probability score(s, t)
// whenever score(s, t) > gamma. All O(n²) pairs are scored; use
// InferPruned with a RandomizedScorer to skip pairs Lemma 3 eliminates.
func Infer(m *gene.Matrix, sc Scorer, gamma float64) (*Graph, error) {
	if err := sc.Prepare(m); err != nil {
		return nil, fmt.Errorf("grn: preparing %s scorer: %w", sc.Name(), err)
	}
	g := NewGraph(m.Genes())
	if rs, ok := sc.(*RandomizedScorer); ok && rs.Batch {
		forEachColumnBatch(m, rs, func(t int, srcs []int, probs []float64) {
			for i, s := range srcs {
				if probs[i] > gamma {
					g.SetEdge(s, t, probs[i])
				}
			}
		})
		return g, nil
	}
	n := m.NumGenes()
	for s := 0; s < n; s++ {
		for t := s + 1; t < n; t++ {
			if p := sc.Score(m, s, t); p > gamma {
				g.SetEdge(s, t, p)
			}
		}
	}
	return g, nil
}

// PairScores returns the full n×n symmetric score matrix of m under sc,
// used by the ROC experiments of Section 6.2 (every pair needs a score, not
// only those above a threshold).
func PairScores(m *gene.Matrix, sc Scorer) (*vecmath.Matrix, error) {
	if err := sc.Prepare(m); err != nil {
		return nil, fmt.Errorf("grn: preparing %s scorer: %w", sc.Name(), err)
	}
	n := m.NumGenes()
	out := vecmath.NewMatrix(n, n)
	if rs, ok := sc.(*RandomizedScorer); ok && rs.Batch {
		forEachColumnBatch(m, rs, func(t int, srcs []int, probs []float64) {
			for i, s := range srcs {
				out.Set(s, t, probs[i])
				out.Set(t, s, probs[i])
			}
		})
		return out, nil
	}
	for s := 0; s < n; s++ {
		for t := s + 1; t < n; t++ {
			p := sc.Score(m, s, t)
			out.Set(s, t, p)
			out.Set(t, s, p)
		}
	}
	return out, nil
}

// Pruner supplies cheap upper bounds on edge existence probabilities for
// Lemma 3 edge inference pruning.
type Pruner struct {
	// Est estimates E(Z) = E[dist(Xs, Xt^R)] by Monte Carlo.
	Est *stats.Estimator
	// BoundSamples is the (small) sample count used for the E(Z) estimate;
	// estimating a mean needs far fewer samples than estimating the tail
	// probability itself, which is where the Lemma 3 pruning saves work.
	BoundSamples int
	// OneSided matches the scorer's sidedness: the two-sided bound divides
	// E(Z) by the |cor|-equivalent distance min(d, sqrt(4 − d²)).
	OneSided bool

	batch stats.PermBatch // UpperBoundColumn shared-permutation scratch
	cols  [][]float64     // UpperBoundColumn source-column scratch
}

// DefaultBoundSamples is the bound sample count used when callers pass
// samples <= 0: estimating the E(Z) mean needs far fewer draws than the
// tail probability it bounds.
const DefaultBoundSamples = 16

// NewPruner returns a Pruner with the given seed and bound sample count
// (DefaultBoundSamples when samples <= 0).
func NewPruner(seed uint64, samples int) *Pruner {
	if samples <= 0 {
		samples = DefaultBoundSamples
	}
	return &Pruner{Est: stats.NewEstimator(seed), BoundSamples: samples}
}

// Reseed resets the pruner's estimator stream in place to the state a
// fresh NewPruner(seed, ·) would hold; see RandomizedScorer.Reseed.
func (p *Pruner) Reseed(seed uint64) {
	p.Est.Reseed(seed)
}

// UpperBound returns ub_P(e_{s,t}) of Lemma 4: E(Z)/dist(Xs, Xt), clamped
// to [0, 1]. xs and xt must be standardized. In the (default) two-sided
// mode the denominator is the |cor|-equivalent distance.
func (p *Pruner) UpperBound(xs, xt []float64) float64 {
	d := vecmath.Euclidean(xs, xt)
	if !p.OneSided {
		d = stats.TwoSidedDistance(d)
	}
	ez := p.Est.ExpectedPermDistance(xs, xt, p.BoundSamples)
	return stats.MarkovUpperBound(ez, d)
}

// InferStats reports how much work edge pruning saved during inference.
type InferStats struct {
	Pairs     int // total candidate pairs n·(n−1)/2
	Pruned    int // pairs eliminated by Lemma 3 before exact estimation
	Estimated int // pairs that required the full Monte Carlo estimate
	Edges     int // edges in the resulting graph
	// BoundCalls counts Monte Carlo samples spent on bounds (diagnostic).
	// On the scalar path this is BoundSamples per non-pruned-out pair; on
	// the batch path the permutations are shared across a whole target
	// column, so it is BoundSamples per column with ≥1 candidate pair.
	BoundCalls int
	// Kernel is the time spent inside the batched inference kernel (batch
	// fills, blocked inner products, bound/score reductions); zero on the
	// scalar path. Exposed so the query tracer can split kernel time from
	// the rest of inference.
	Kernel time.Duration
}

// InferPruned reconstructs the GRN of m with the IM-GRN randomized measure,
// applying the Lemma 3 edge inference pruning before each exact Monte Carlo
// estimate: when ub_P(e) = E(Z)/dist ≤ γ the edge cannot exist and the
// expensive estimate is skipped. This is the query-graph inference step of
// the IM-GRN_Processing algorithm (Fig. 4, line 1).
func InferPruned(m *gene.Matrix, sc *RandomizedScorer, pr *Pruner, gamma float64) (*Graph, InferStats, error) {
	if sc.Batch {
		return inferPrunedBatch(m, sc, pr, gamma)
	}
	var st InferStats
	g := NewGraph(m.Genes())
	n := m.NumGenes()
	for s := 0; s < n; s++ {
		if !m.Informative(s) {
			continue
		}
		xs := m.StdCol(s)
		for t := s + 1; t < n; t++ {
			if !m.Informative(t) {
				continue
			}
			st.Pairs++
			xt := m.StdCol(t)
			if pr != nil {
				st.BoundCalls += pr.BoundSamples
				if pr.UpperBound(xs, xt) <= gamma {
					st.Pruned++
					continue
				}
			}
			st.Estimated++
			if p := sc.Score(m, s, t); p > gamma {
				g.SetEdge(s, t, p)
				st.Edges++
			}
		}
	}
	return g, st, nil
}

// GraphExistenceUpperBound returns UB_Pr{G} of Lemma 5: the product of
// per-edge upper bounds. Pass the upper bound of each query-matched edge.
func GraphExistenceUpperBound(edgeUBs []float64) float64 {
	ub := 1.0
	for _, b := range edgeUBs {
		ub *= b
	}
	return ub
}

// PruneByGraphExistence implements Lemma 5: a candidate subgraph whose
// appearance-probability upper bound is ≤ α cannot be an answer.
func PruneByGraphExistence(ub, alpha float64) bool { return ub <= alpha }
