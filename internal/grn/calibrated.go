package grn

import (
	"math"
	"sort"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/stats"
)

// VectorScore is a raw pairwise association measure over feature vectors.
type VectorScore func(x, y []float64) float64

// CalibratedScorer generalizes Definition 2 to any association measure —
// the future-work direction the paper sketches in Section 2.2: the edge
// probability is the chance that the observed score beats the score
// against a randomized (permuted) partner vector,
//
//	e.p = Pr{ fn(X_s, X_t) > fn(X_s, X_t^R) },
//
// estimated by Monte Carlo over uniform permutations. With fn = |Pearson|
// this coincides with the paper's own measure; with fn = mutual
// information it yields the calibrated-MI variant.
type CalibratedScorer struct {
	// Label names the measure in experiment output.
	Label string
	// Fn is the raw measure; higher means more associated.
	Fn VectorScore
	// Samples is the Monte Carlo budget (stats.DefaultSamples when 0).
	Samples int

	rng     *randgen.Rand
	scratch []float64
}

// NewCalibratedScorer wraps fn into a permutation-calibrated probability.
func NewCalibratedScorer(label string, fn VectorScore, seed uint64, samples int) *CalibratedScorer {
	return &CalibratedScorer{Label: label, Fn: fn, Samples: samples, rng: randgen.New(seed)}
}

// Name implements Scorer.
func (c *CalibratedScorer) Name() string { return c.Label }

// Prepare implements Scorer.
func (c *CalibratedScorer) Prepare(*gene.Matrix) error { return nil }

// Score implements Scorer.
func (c *CalibratedScorer) Score(m *gene.Matrix, a, b int) float64 {
	x, y := m.Col(a), m.Col(b)
	samples := c.Samples
	if samples <= 0 {
		samples = stats.DefaultSamples
	}
	observed := c.Fn(x, y)
	if cap(c.scratch) < len(y) {
		c.scratch = make([]float64, len(y))
	}
	perm := c.scratch[:len(y)]
	hits := 0
	for i := 0; i < samples; i++ {
		c.rng.PermuteInto(perm, y)
		if observed > c.Fn(x, perm) {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

// AbsPearsonVec is the |Pearson| raw measure; CalibratedScorer over it
// reproduces the paper's Definition-2 measure (validated in tests).
func AbsPearsonVec(x, y []float64) float64 {
	lx, ly := float64(len(x)), float64(len(y))
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/lx, sy/ly
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	den := math.Sqrt(sxx * syy)
	if den < 1e-30 {
		return 0
	}
	return math.Abs(sxy / den)
}

// SpearmanVec is the absolute Spearman rank correlation — a robust raw
// measure that pairs naturally with permutation calibration.
func SpearmanVec(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	rx := ranks(x)
	ry := ranks(y)
	return AbsPearsonVec(rx, ry)
}

func ranks(x []float64) []float64 {
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return x[idx[i]] < x[idx[j]] })
	out := make([]float64, len(x))
	for rank, i := range idx {
		out[i] = float64(rank)
	}
	return out
}

// MutualInfoVec adapts the histogram MI estimator to a raw VectorScore so
// it can be permutation-calibrated (calibrated MI — the measure family of
// ARACNE-style inference with Definition-2 confidence semantics).
func MutualInfoVec(bins int) VectorScore {
	return func(x, y []float64) float64 {
		l := len(x)
		if l != len(y) || l < 4 {
			return 0
		}
		b := bins
		if b <= 0 {
			b = int(math.Sqrt(float64(l) / 5))
			if b < 2 {
				b = 2
			}
		}
		bx := equalFrequencyBins(x, b)
		by := equalFrequencyBins(y, b)
		joint := make([]float64, b*b)
		px := make([]float64, b)
		py := make([]float64, b)
		inv := 1 / float64(l)
		for i := 0; i < l; i++ {
			joint[bx[i]*b+by[i]] += inv
			px[bx[i]] += inv
			py[by[i]] += inv
		}
		var mi float64
		for i := 0; i < b; i++ {
			for j := 0; j < b; j++ {
				p := joint[i*b+j]
				if p > 0 {
					mi += p * math.Log(p/(px[i]*py[j]))
				}
			}
		}
		return mi
	}
}
