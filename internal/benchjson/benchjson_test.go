package benchjson

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: github.com/imgrn/imgrn
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkInferPruned/scalar-8    5  278028218 ns/op   329504 B/op  991 allocs/op
BenchmarkInferPruned/batch-8     5   33073406 ns/op   8.406 speedup  1620560 B/op  1262 allocs/op
BenchmarkEdgeProbabilityScalar-8 5    3302561 ns/op   51603 ns/pair  83 B/op  0 allocs/op
BenchmarkEdgeProbabilityBatch-8  5     373569 ns/op   5837 ns/pair   26214 B/op  0 allocs/op
BenchmarkParallelQuery/workers=1-8  1  903704458 ns/op  64 B/op  2 allocs/op
PASS
ok  github.com/imgrn/imgrn 1.903s
`

func TestParse(t *testing.T) {
	sum, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Benchmarks) != 5 {
		t.Fatalf("parsed %d benchmarks, want 5", len(sum.Benchmarks))
	}
	b0 := sum.Benchmarks[0]
	if b0.Name != "BenchmarkInferPruned/scalar" || b0.Iter != 5 || b0.NsOp != 278028218 {
		t.Errorf("first benchmark parsed wrong: %+v", b0)
	}
	if b0.AllocsOp == nil || *b0.AllocsOp != 991 {
		t.Errorf("allocs/op parsed wrong: %+v", b0.AllocsOp)
	}
	b1 := sum.Benchmarks[1]
	if b1.Metrics["speedup"] != 8.406 {
		t.Errorf("speedup metric parsed wrong: %+v", b1.Metrics)
	}
	// Derived ratios.
	if got := sum.Speedups["InferPruned_batch_vs_scalar"]; got < 8.3 || got > 8.5 {
		t.Errorf("InferPruned speedup = %v, want ~8.4", got)
	}
	if got := sum.Speedups["EdgeProbability_batch_vs_scalar"]; got < 8.8 || got > 8.9 {
		t.Errorf("EdgeProbability speedup = %v, want ~8.84", got)
	}
}

func TestParseShardSweepSpeedups(t *testing.T) {
	const shardSample = `BenchmarkShardQuery/P=1-8  1147  1000000 ns/op  97.39 pages/query
BenchmarkShardQuery/P=2-8  1278   800000 ns/op  104.0 pages/query  1.250 speedup
BenchmarkShardQuery/P=4-8  1219   500000 ns/op  117.4 pages/query  2.000 speedup
PASS
`
	sum, err := Parse(strings.NewReader(shardSample))
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Speedups["ShardQuery_P2_vs_P1"]; got != 1.25 {
		t.Errorf("ShardQuery_P2_vs_P1 = %v, want 1.25", got)
	}
	if got := sum.Speedups["ShardQuery_P4_vs_P1"]; got != 2 {
		t.Errorf("ShardQuery_P4_vs_P1 = %v, want 2", got)
	}
	// No P=8 line in the input: no derived entry.
	if _, ok := sum.Speedups["ShardQuery_P8_vs_P1"]; ok {
		t.Error("unexpected ShardQuery_P8_vs_P1 entry")
	}
	if sum.Benchmarks[0].Metrics["pages/query"] != 97.39 {
		t.Errorf("pages/query metric parsed wrong: %+v", sum.Benchmarks[0].Metrics)
	}
}

func TestParsePlanSpeedup(t *testing.T) {
	const planSample = `BenchmarkPlanQuery/fixed-8     1147  1000000 ns/op  51234 B/op  412 allocs/op
BenchmarkPlanQuery/adaptive-8  1278   800000 ns/op  49012 B/op  398 allocs/op
PASS
`
	sum, err := Parse(strings.NewReader(planSample))
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Speedups["PlanQuery_adaptive_vs_fixed"]; got != 1.25 {
		t.Errorf("PlanQuery_adaptive_vs_fixed = %v, want 1.25", got)
	}
	// One side alone derives nothing.
	sum, err = Parse(strings.NewReader("BenchmarkPlanQuery/fixed-8 1 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := sum.Speedups["PlanQuery_adaptive_vs_fixed"]; ok {
		t.Error("unexpected PlanQuery_adaptive_vs_fixed entry")
	}
}

func TestParseKeepsSubBenchNames(t *testing.T) {
	sum, err := Parse(strings.NewReader("BenchmarkParallelQuery/workers=12-8 1 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Benchmarks[0].Name != "BenchmarkParallelQuery/workers=12" {
		t.Errorf("name = %q", sum.Benchmarks[0].Name)
	}
}

// TestParseGenericFamilySpeedups pins the generic first-sub-baseline
// convention on a family the parser has no bespoke knowledge of: the
// first sub to appear is the baseline, every later sub derives an
// "Fam_<sub>_vs_<baseline>" entry, and sub names sanitize ('=' dropped).
func TestParseGenericFamilySpeedups(t *testing.T) {
	const batchSample = `BenchmarkBatchQuery/sequential-8      10  8000000 ns/op
BenchmarkBatchQuery/batch-8           10  4000000 ns/op
BenchmarkBatchQuery/batch_sharedPerms-8  10  2000000 ns/op
BenchmarkFutureSweep/width=2-8        10  1000000 ns/op
BenchmarkFutureSweep/width=8-8        10  2000000 ns/op
PASS
`
	sum, err := Parse(strings.NewReader(batchSample))
	if err != nil {
		t.Fatal(err)
	}
	if got := sum.Speedups["BatchQuery_batch_vs_sequential"]; got != 2 {
		t.Errorf("BatchQuery_batch_vs_sequential = %v, want 2", got)
	}
	if got := sum.Speedups["BatchQuery_batch_sharedPerms_vs_sequential"]; got != 4 {
		t.Errorf("BatchQuery_batch_sharedPerms_vs_sequential = %v, want 4", got)
	}
	if got := sum.Speedups["FutureSweep_width8_vs_width2"]; got != 0.5 {
		t.Errorf("FutureSweep_width8_vs_width2 = %v, want 0.5", got)
	}
	if n := len(sum.Speedups); n != 3 {
		t.Errorf("derived %d speedups, want 3: %+v", n, sum.Speedups)
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Error("expected error on input without benchmark lines")
	}
}

func TestParseNoSpeedupsWhenOneSided(t *testing.T) {
	sum, err := Parse(strings.NewReader("BenchmarkInferPruned/scalar-8 5 100 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Speedups != nil {
		t.Errorf("unexpected speedups: %+v", sum.Speedups)
	}
}
