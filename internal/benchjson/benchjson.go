// Package benchjson parses `go test -bench` text output into a structured
// summary with derived scalar-vs-batch speedups, consumed by
// cmd/imgrn-benchjson (`make bench-json`).
package benchjson

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
)

// Meta records the host configuration a benchmark run was collected on,
// so BENCH_*.json numbers — in particular the parallel speedup ratios,
// which are meaningless without knowing the core budget — can be read in
// context.
type Meta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
}

// CollectMeta snapshots the current process's runtime configuration. It is
// accurate for the Makefile pipelines, which run the benchmarks and the
// converter on the same host.
func CollectMeta() *Meta {
	return &Meta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
}

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name string  `json:"name"`
	Iter int64   `json:"iterations"`
	NsOp float64 `json:"ns_per_op"`
	// AllocsOp is allocations per op; nil when the line carries no
	// -benchmem columns.
	AllocsOp *float64 `json:"allocs_per_op,omitempty"`
	BytesOp  *float64 `json:"bytes_per_op,omitempty"`
	// Metrics holds any extra unit metrics reported with b.ReportMetric
	// (e.g. "speedup", "ns/pair").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Summary is the full parsed output plus derived speedup ratios.
type Summary struct {
	// Meta describes the host the run was collected on; filled in by
	// cmd/imgrn-benchjson via CollectMeta, nil when parsing archived
	// output offline.
	Meta       *Meta       `json:"meta,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Speedups maps a comparison label to baseline-time / candidate-time
	// (> 1 means the candidate is faster).
	Speedups map[string]float64 `json:"speedups,omitempty"`
}

// Parse reads `go test -bench` output and derives the inference-kernel
// speedup ratios. Unparseable lines (headers, PASS/ok, logs) are skipped.
func Parse(r io.Reader) (*Summary, error) {
	sum := &Summary{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			sum.Benchmarks = append(sum.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(sum.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	sum.Speedups = deriveSpeedups(sum.Benchmarks)
	return sum, nil
}

// parseLine parses one "BenchmarkName-8  N  t ns/op [...]" result line.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := f[0]
	// Strip the -GOMAXPROCS suffix goized onto the name.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iter, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iter: iter}
	// Remaining fields come in (value, unit) pairs.
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsOp = v
			seenNs = true
		case "B/op":
			b.BytesOp = &v
		case "allocs/op":
			b.AllocsOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, seenNs
}

// deriveSpeedups derives baseline-vs-candidate wall-clock ratios with one
// generic sub-benchmark convention: within every benchmark family
// "BenchmarkFam/<sub>" that reports at least two sub-runs, the FIRST sub
// to appear is the family's baseline, and every later sub X yields an
// entry "Fam_<X>_vs_<baseline>" = baselineNs / candidateNs (> 1 means X
// is faster). Sub names are sanitized for the key ("P=1" -> "P1",
// "workers=4" -> "workers4"), so sweep families derive their whole
// comparison table with no per-family code: InferPruned (scalar first,
// then batch), ShardQuery (P=1 first, then the P sweep), PlanQuery (fixed
// first, then adaptive), BatchQuery (sequential first, then batch) — and
// any future family that orders its baseline sub first.
//
// One legacy comparison predates the convention and is kept as a special
// case: EdgeProbability_batch_vs_scalar compares two separate top-level
// benchmarks on their reported ns/pair metric (per-pair cost, not ns/op).
func deriveSpeedups(bs []Benchmark) map[string]float64 {
	out := make(map[string]float64)
	// Generic rule: first sub of each family is the baseline.
	type baseline struct {
		sub  string
		nsOp float64
	}
	bases := make(map[string]baseline)
	for _, b := range bs {
		fam, sub, ok := splitFamily(b.Name)
		if !ok || b.NsOp <= 0 {
			continue
		}
		base, seen := bases[fam]
		if !seen {
			bases[fam] = baseline{sub: sub, nsOp: b.NsOp}
			continue
		}
		key := fmt.Sprintf("%s_%s_vs_%s", strings.TrimPrefix(fam, "Benchmark"),
			sanitizeSub(sub), sanitizeSub(base.sub))
		out[key] = base.nsOp / b.NsOp
	}
	// Legacy special case: two top-level benchmarks compared on ns/pair.
	byName := make(map[string]Benchmark, len(bs))
	for _, b := range bs {
		byName[b.Name] = b
	}
	s, okS := byName["BenchmarkEdgeProbabilityScalar"]
	b, okB := byName["BenchmarkEdgeProbabilityBatch"]
	if okS && okB {
		sp, okSP := s.Metrics["ns/pair"]
		bp, okBP := b.Metrics["ns/pair"]
		if okSP && okBP && bp > 0 {
			out["EdgeProbability_batch_vs_scalar"] = sp / bp
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// splitFamily splits "BenchmarkFam/sub" into (BenchmarkFam, sub); names
// without a sub-benchmark are not part of any comparison family.
func splitFamily(name string) (fam, sub string, ok bool) {
	i := strings.IndexByte(name, '/')
	if i <= 0 || i+1 >= len(name) {
		return "", "", false
	}
	return name[:i], name[i+1:], true
}

// sanitizeSub maps a sub-benchmark name onto a speedup-key fragment:
// '=' separators are dropped ("P=4" -> "P4") and any other
// non-alphanumeric runs become '_'.
func sanitizeSub(sub string) string {
	var sb strings.Builder
	for _, r := range sub {
		switch {
		case r == '=':
			// drop
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}
