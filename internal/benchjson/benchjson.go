// Package benchjson parses `go test -bench` text output into a structured
// summary with derived scalar-vs-batch speedups, consumed by
// cmd/imgrn-benchjson (`make bench-json`).
package benchjson

import (
	"bufio"
	"fmt"
	"io"
	"runtime"
	"strconv"
	"strings"
)

// Meta records the host configuration a benchmark run was collected on,
// so BENCH_*.json numbers — in particular the parallel speedup ratios,
// which are meaningless without knowing the core budget — can be read in
// context.
type Meta struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
}

// CollectMeta snapshots the current process's runtime configuration. It is
// accurate for the Makefile pipelines, which run the benchmarks and the
// converter on the same host.
func CollectMeta() *Meta {
	return &Meta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
}

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name string  `json:"name"`
	Iter int64   `json:"iterations"`
	NsOp float64 `json:"ns_per_op"`
	// AllocsOp is allocations per op; nil when the line carries no
	// -benchmem columns.
	AllocsOp *float64 `json:"allocs_per_op,omitempty"`
	BytesOp  *float64 `json:"bytes_per_op,omitempty"`
	// Metrics holds any extra unit metrics reported with b.ReportMetric
	// (e.g. "speedup", "ns/pair").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Summary is the full parsed output plus derived speedup ratios.
type Summary struct {
	// Meta describes the host the run was collected on; filled in by
	// cmd/imgrn-benchjson via CollectMeta, nil when parsing archived
	// output offline.
	Meta       *Meta       `json:"meta,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	// Speedups maps a comparison label to baseline-time / candidate-time
	// (> 1 means the candidate is faster).
	Speedups map[string]float64 `json:"speedups,omitempty"`
}

// Parse reads `go test -bench` output and derives the inference-kernel
// speedup ratios. Unparseable lines (headers, PASS/ok, logs) are skipped.
func Parse(r io.Reader) (*Summary, error) {
	sum := &Summary{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			sum.Benchmarks = append(sum.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(sum.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in input")
	}
	sum.Speedups = deriveSpeedups(sum.Benchmarks)
	return sum, nil
}

// parseLine parses one "BenchmarkName-8  N  t ns/op [...]" result line.
func parseLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := f[0]
	// Strip the -GOMAXPROCS suffix goized onto the name.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iter, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iter: iter}
	// Remaining fields come in (value, unit) pairs.
	seenNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsOp = v
			seenNs = true
		case "B/op":
			b.BytesOp = &v
		case "allocs/op":
			b.AllocsOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
	}
	return b, seenNs
}

// deriveSpeedups computes the scalar-vs-batch ratios of the inference
// kernel benchmarks when both sides are present.
func deriveSpeedups(bs []Benchmark) map[string]float64 {
	byName := make(map[string]Benchmark, len(bs))
	for _, b := range bs {
		byName[b.Name] = b
	}
	out := make(map[string]float64)
	if s, okS := byName["BenchmarkInferPruned/scalar"]; okS {
		if b, okB := byName["BenchmarkInferPruned/batch"]; okB && b.NsOp > 0 {
			out["InferPruned_batch_vs_scalar"] = s.NsOp / b.NsOp
		}
	}
	s, okS := byName["BenchmarkEdgeProbabilityScalar"]
	b, okB := byName["BenchmarkEdgeProbabilityBatch"]
	if okS && okB {
		sp, okSP := s.Metrics["ns/pair"]
		bp, okBP := b.Metrics["ns/pair"]
		if okSP && okBP && bp > 0 {
			out["EdgeProbability_batch_vs_scalar"] = sp / bp
		}
	}
	// Sharded scatter-gather sweep (`make bench-shard`): P-shard query
	// time vs the single-shard engine.
	if p1, ok := byName["BenchmarkShardQuery/P=1"]; ok {
		for _, p := range []int{2, 4, 8} {
			name := fmt.Sprintf("BenchmarkShardQuery/P=%d", p)
			if pb, ok := byName[name]; ok && pb.NsOp > 0 {
				out[fmt.Sprintf("ShardQuery_P%d_vs_P1", p)] = p1.NsOp / pb.NsOp
			}
		}
	}
	// Adaptive planner vs fixed pipeline (`make bench-plan`): the mixed
	// easy/hard workload under a warmed planner.
	if f, ok := byName["BenchmarkPlanQuery/fixed"]; ok {
		if a, ok := byName["BenchmarkPlanQuery/adaptive"]; ok && a.NsOp > 0 {
			out["PlanQuery_adaptive_vs_fixed"] = f.NsOp / a.NsOp
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
