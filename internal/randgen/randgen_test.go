package randgen

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(123), New(123)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed should produce identical streams")
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("nearby seeds collide on %d of 64 outputs", same)
	}
}

func TestZeroSeedIsUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed appears to produce a degenerate stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(9)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 64; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split children collide on %d of 64 outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestIntnBoundsAndCoverage(t *testing.T) {
	r := New(12)
	seen := make([]bool, 7)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Errorf("Intn never produced %d", v)
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(13)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("Intn(%d): value %d occurred %d times, want ≈ %v", n, v, c, want)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntIn(t *testing.T) {
	r := New(14)
	for i := 0; i < 1000; i++ {
		v := r.IntIn(5, 9)
		if v < 5 || v > 9 {
			t.Fatalf("IntIn(5,9) = %d", v)
		}
	}
}

func TestIntInPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).IntIn(3, 2)
}

func TestUniformIn(t *testing.T) {
	r := New(15)
	for i := 0; i < 1000; i++ {
		v := r.UniformIn(-2, 3)
		if v < -2 || v >= 3 {
			t.Fatalf("UniformIn out of range: %v", v)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(16)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ≈ 0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v, want ≈ 1", variance)
	}
}

func TestGaussian(t *testing.T) {
	r := New(17)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Gaussian(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Errorf("Gaussian(10,2) mean = %v", mean)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	f := func(seed uint64) bool {
		r := New(seed)
		orig := []float64{1, 2, 2, 3, 5, 8, 13}
		x := append([]float64(nil), orig...)
		r.Shuffle(x)
		sort.Float64s(x)
		for i := range orig {
			if x[i] != orig[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(18)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

// TestShuffleUniformity verifies Fisher–Yates produces each of the 6
// permutations of 3 elements with roughly equal frequency.
func TestShuffleUniformity(t *testing.T) {
	r := New(19)
	counts := make(map[[3]float64]int)
	const trials = 60000
	for i := 0; i < trials; i++ {
		x := []float64{1, 2, 3}
		r.Shuffle(x)
		counts[[3]float64{x[0], x[1], x[2]}]++
	}
	if len(counts) != 6 {
		t.Fatalf("saw %d distinct permutations, want 6", len(counts))
	}
	want := float64(trials) / 6
	for p, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("permutation %v occurred %d times, want ≈ %v", p, c, want)
		}
	}
}

func TestPermuteInto(t *testing.T) {
	r := New(20)
	src := []float64{1, 2, 3, 4}
	dst := make([]float64, 4)
	r.PermuteInto(dst, src)
	sorted := append([]float64(nil), dst...)
	sort.Float64s(sorted)
	for i, v := range sorted {
		if v != src[i] {
			t.Fatalf("PermuteInto is not a permutation: %v", dst)
		}
	}
}

func TestPermuteIntoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).PermuteInto(make([]float64, 2), make([]float64, 3))
}

func TestSampleWithoutReplacement(t *testing.T) {
	r := New(21)
	s := r.SampleWithoutReplacement(10, 5)
	if len(s) != 5 {
		t.Fatalf("len = %d", len(s))
	}
	seen := make(map[int]bool)
	for _, v := range s {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid sample: %v", s)
		}
		seen[v] = true
	}
	full := r.SampleWithoutReplacement(4, 4)
	if len(full) != 4 {
		t.Error("full sample should have every element")
	}
}

func TestSampleWithoutReplacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).SampleWithoutReplacement(3, 4)
}
