// Package randgen provides the deterministic pseudo-random machinery used
// throughout the IM-GRN system: an xoshiro256** generator seeded via
// SplitMix64, Gaussian and uniform variates, and Fisher–Yates permutation
// sampling (the randomization technique behind the paper's edge-probability
// measure, Definition 2).
//
// Every consumer of randomness in this repository threads an explicit *Rand
// so that data generation, Monte Carlo estimation, and pivot selection are
// all reproducible from a single seed, which in turn makes the experiment
// harness deterministic.
package randgen

import "math"

// Rand is a deterministic pseudo-random generator (xoshiro256**).
// It is NOT safe for concurrent use; derive per-goroutine generators with
// Split.
type Rand struct {
	s [4]uint64
	// cached second Gaussian from the polar Box–Muller transform
	gauss    float64
	hasGauss bool
}

// New returns a generator seeded from seed via SplitMix64, so that nearby
// seeds still produce well-separated state.
func New(seed uint64) *Rand {
	var r Rand
	r.Reseed(seed)
	return &r
}

// Reseed resets r in place to the exact state New(seed) would return,
// including the cached Box–Muller Gaussian. It lets hot loops that need a
// fresh deterministic stream per work unit (e.g. per-candidate refinement
// scorers) reuse one generator instead of allocating a new one each time.
func (r *Rand) Reseed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.gauss = 0
	r.hasGauss = false
}

// Split derives an independent generator from r, advancing r. It is the
// mechanism for handing deterministic sub-streams to parallel workers.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// SeedFrom deterministically derives a child seed from base and a sequence
// of work-unit coordinates (a data source ID, a column pair, ...). Unlike
// Split it is stateless: the same coordinates always yield the same seed,
// so parallel query workers can seed their generators per work unit rather
// than per goroutine, making results independent of the goroutine
// schedule. Each coordinate is folded in with a SplitMix64 finalization
// round, so nearby coordinates produce well-separated seeds.
func SeedFrom(base uint64, coords ...uint64) uint64 {
	z := base
	for _, c := range coords {
		z += 0x9e3779b97f4a7c15 + c
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
	}
	return z
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless bounded sampling keeps it branch-light.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("randgen: Intn with n <= 0")
	}
	un := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			x = r.Uint64()
			hi, lo = mul64(x, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// UniformIn returns a uniform float64 in [lo, hi).
func (r *Rand) UniformIn(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// IntIn returns a uniform int in [lo, hi] inclusive. It panics if hi < lo.
func (r *Rand) IntIn(lo, hi int) int {
	if hi < lo {
		panic("randgen: IntIn with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// NormFloat64 returns a standard-normal variate via the polar Box–Muller
// transform (Marsaglia). Consecutive values come in cached pairs.
func (r *Rand) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.gauss = v * f
		r.hasGauss = true
		return u * f
	}
}

// Gaussian returns a normal variate with the given mean and standard
// deviation.
func (r *Rand) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// Shuffle permutes x in place with the Fisher–Yates algorithm.
func (r *Rand) Shuffle(x []float64) {
	for i := len(x) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		x[i], x[j] = x[j], x[i]
	}
}

// ShuffleInts permutes x in place with the Fisher–Yates algorithm.
func (r *Rand) ShuffleInts(x []int) {
	for i := len(x) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		x[i], x[j] = x[j], x[i]
	}
}

// Perm returns a uniform random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// PermuteInto writes a fresh uniform random permutation of src into dst,
// the randomized vector X^R of Definition 2. dst and src must have equal
// length; dst is fully overwritten. No allocation occurs, which matters in
// the Monte Carlo hot loop.
func (r *Rand) PermuteInto(dst, src []float64) {
	if len(dst) != len(src) {
		panic("randgen: PermuteInto length mismatch")
	}
	copy(dst, src)
	r.Shuffle(dst)
}

// SampleWithoutReplacement returns k distinct uniform indices from [0, n).
// It panics if k > n. The result is in selection order (itself uniform).
func (r *Rand) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic("randgen: sample size exceeds population")
	}
	// Partial Fisher–Yates over an index table.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
		out[i] = idx[i]
	}
	return out
}
