package randgen

import "testing"

func TestSeedFromDeterministic(t *testing.T) {
	a := SeedFrom(42, 1, 2, 3)
	b := SeedFrom(42, 1, 2, 3)
	if a != b {
		t.Fatalf("SeedFrom not deterministic: %x vs %x", a, b)
	}
}

func TestSeedFromSeparatesCoordinates(t *testing.T) {
	seen := make(map[uint64][]uint64)
	record := func(s uint64, coords ...uint64) {
		if prev, ok := seen[s]; ok {
			t.Fatalf("seed collision between coords %v and %v", prev, coords)
		}
		seen[s] = coords
	}
	// Distinct coordinate tuples — including order swaps and tuples that
	// would collide under naive summation — must map to distinct seeds.
	record(SeedFrom(7))
	record(SeedFrom(7, 0))
	record(SeedFrom(7, 1))
	record(SeedFrom(7, 0, 1), 0, 1)
	record(SeedFrom(7, 1, 0), 1, 0)
	record(SeedFrom(7, 2, 2), 2, 2)
	for i := uint64(0); i < 100; i++ {
		record(SeedFrom(7, 100+i), 100+i)
	}
}

func TestSeedFromBaseMatters(t *testing.T) {
	if SeedFrom(1, 5) == SeedFrom(2, 5) {
		t.Fatal("different bases produced the same seed")
	}
}

func TestSeedFromStreamsAreIndependent(t *testing.T) {
	// RNGs seeded from adjacent work units must not be correlated: compare
	// the first draws of many adjacent streams for obvious lockstep.
	var equal int
	const streams = 200
	for i := uint64(0); i < streams; i++ {
		a := New(SeedFrom(9, i))
		b := New(SeedFrom(9, i+1))
		if a.Uint64()&0xffff == b.Uint64()&0xffff {
			equal++
		}
	}
	// Expected collisions of the low 16 bits: streams/65536 ≈ 0.003.
	if equal > 3 {
		t.Fatalf("adjacent streams agree on low bits %d/%d times", equal, streams)
	}
}
