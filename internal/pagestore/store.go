package pagestore

import "fmt"

// Store is a byte-addressable simulated disk layered over an Accountant:
// page IDs come from the accountant's single allocation namespace (so
// index nodes and heap data never collide in the buffer pool), and every
// read both moves real bytes and charges page accesses. The matrix column
// heap reads its vectors from here during query refinement, making the
// reported I/O cost correspond to genuine data movement.
//
// Not safe for concurrent use.
type Store struct {
	acc  *Accountant
	runs map[PageID][]byte // run base page ID → run contents
}

// NewStore returns an empty store charging to acc (required).
func NewStore(acc *Accountant) *Store {
	if acc == nil {
		panic("pagestore: NewStore requires an accountant")
	}
	return &Store{acc: acc, runs: make(map[PageID][]byte)}
}

// PageSize returns the accountant's page size.
func (s *Store) PageSize() int { return s.acc.PageSize() }

// Append stores data in a freshly allocated page run and returns its base
// PageID. The bytes are copied.
func (s *Store) Append(data []byte) PageID {
	id, _ := s.acc.Allocate(len(data))
	buf := make([]byte, len(data))
	copy(buf, data)
	s.runs[id] = buf
	return id
}

// RunLength returns the byte length of the run at id, or -1 if unknown.
func (s *Store) RunLength(id PageID) int {
	if run, ok := s.runs[id]; ok {
		return len(run)
	}
	return -1
}

// ReadAt copies length bytes starting at byte offset off within the run
// based at id into dst, charging one access per touched page against the
// store's own accountant. Query paths that need per-query accounting use
// ReadAtTo with a Reader instead.
func (s *Store) ReadAt(id PageID, off, length int, dst []byte) error {
	return s.ReadAtTo(s.acc, id, off, length, dst)
}

// ReadAtTo is ReadAt with the page charges billed to an explicit Toucher
// (typically a per-query Reader). The run contents themselves are
// immutable once appended, so concurrent ReadAtTo calls with distinct
// Touchers are safe as long as no Append runs concurrently.
func (s *Store) ReadAtTo(to Toucher, id PageID, off, length int, dst []byte) error {
	run, ok := s.runs[id]
	if !ok {
		return fmt.Errorf("pagestore: no run at page %d", id)
	}
	if off < 0 || length < 0 || off+length > len(run) {
		return fmt.Errorf("pagestore: read [%d,%d) out of run of %d bytes", off, off+length, len(run))
	}
	if len(dst) < length {
		return fmt.Errorf("pagestore: destination smaller than read length")
	}
	ps := to.PageSize()
	firstPage := off / ps
	lastPage := firstPage
	if length > 0 {
		lastPage = (off + length - 1) / ps
	}
	for p := firstPage; p <= lastPage; p++ {
		to.Touch(id + PageID(p))
	}
	copy(dst[:length], run[off:off+length])
	return nil
}

// Runs returns the number of stored runs.
func (s *Store) Runs() int { return len(s.runs) }
