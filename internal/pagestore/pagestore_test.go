package pagestore

import (
	"strings"
	"testing"
)

func TestAllocate(t *testing.T) {
	a := New(4096, 0)
	id1, pages1 := a.Allocate(1)
	if pages1 != 1 {
		t.Errorf("1 byte should take 1 page, got %d", pages1)
	}
	id2, pages2 := a.Allocate(4097)
	if pages2 != 2 {
		t.Errorf("4097 bytes should take 2 pages, got %d", pages2)
	}
	if id2 != id1+PageID(pages1) {
		t.Errorf("allocations should be contiguous: %d then %d", id1, id2)
	}
	id3, pages3 := a.Allocate(0)
	if pages3 != 1 {
		t.Errorf("zero bytes still reserves one page, got %d", pages3)
	}
	if id3 != id2+2 {
		t.Errorf("id3 = %d", id3)
	}
	if got := a.Stats().Allocated; got != 4 {
		t.Errorf("Allocated = %d, want 4", got)
	}
}

func TestDefaultPageSize(t *testing.T) {
	a := New(0, 0)
	if a.PageSize() != DefaultPageSize {
		t.Errorf("PageSize = %d", a.PageSize())
	}
}

func TestUnbufferedTouchCountsEverything(t *testing.T) {
	a := New(4096, 0)
	id, _ := a.Allocate(1)
	a.Touch(id)
	a.Touch(id)
	a.Touch(id)
	if got := a.Stats().Accesses; got != 3 {
		t.Errorf("Accesses = %d, want 3", got)
	}
	if got := a.Stats().Hits; got != 0 {
		t.Errorf("Hits = %d, want 0", got)
	}
}

func TestBufferedTouchAbsorbsRepeats(t *testing.T) {
	a := New(4096, 8)
	id, _ := a.Allocate(1)
	a.Touch(id)
	a.Touch(id)
	a.Touch(id)
	s := a.Stats()
	if s.Accesses != 1 || s.Hits != 2 {
		t.Errorf("stats = %+v, want 1 access 2 hits", s)
	}
}

func TestLRUEviction(t *testing.T) {
	a := New(4096, 2)
	ids := make([]PageID, 3)
	for i := range ids {
		ids[i], _ = a.Allocate(1)
	}
	a.Touch(ids[0]) // miss, cache [0]
	a.Touch(ids[1]) // miss, cache [1 0]
	a.Touch(ids[0]) // hit, cache [0 1]
	a.Touch(ids[2]) // miss, evicts 1, cache [2 0]
	a.Touch(ids[1]) // miss, evicts 0, cache [1 2]
	a.Touch(ids[2]) // hit (still resident)
	a.Touch(ids[0]) // miss (was evicted)
	s := a.Stats()
	if s.Accesses != 5 || s.Hits != 2 {
		t.Errorf("stats = %+v, want 5 accesses 2 hits", s)
	}
}

func TestTouchRange(t *testing.T) {
	a := New(4096, 0)
	id, pages := a.Allocate(3 * 4096)
	a.TouchRange(id, pages)
	if got := a.Stats().Accesses; got != 3 {
		t.Errorf("Accesses = %d, want 3", got)
	}
}

func TestChargeBytes(t *testing.T) {
	a := New(1024, 0)
	id, _ := a.Allocate(5000)
	a.ChargeBytes(id, 2500)
	if got := a.Stats().Accesses; got != 3 {
		t.Errorf("Accesses = %d, want 3 (2500B over 1KiB pages)", got)
	}
	a.ChargeBytes(id, 0)
	if got := a.Stats().Accesses; got != 4 {
		t.Errorf("zero bytes should still touch one page, got %d", got)
	}
}

func TestResetStats(t *testing.T) {
	a := New(4096, 4)
	id, _ := a.Allocate(1)
	a.Touch(id)
	a.Touch(id)
	a.ResetStats()
	s := a.Stats()
	if s.Accesses != 0 || s.Hits != 0 {
		t.Errorf("counters not cleared: %+v", s)
	}
	if s.Allocated != 1 {
		t.Errorf("allocation count should persist: %+v", s)
	}
	// Buffer must be cold again: next touch is a miss.
	a.Touch(id)
	if got := a.Stats(); got.Accesses != 1 || got.Hits != 0 {
		t.Errorf("buffer not dropped: %+v", got)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{Accesses: 5, Hits: 2, Allocated: 7}
	if got := s.String(); !strings.Contains(got, "accesses=5") || !strings.Contains(got, "hits=2") {
		t.Errorf("String = %q", got)
	}
}

func TestLRUMoveToFrontStress(t *testing.T) {
	a := New(4096, 16)
	ids := make([]PageID, 64)
	for i := range ids {
		ids[i], _ = a.Allocate(1)
	}
	// Deterministic access pattern mixing hits and misses; just verify the
	// accounting identity touches = accesses + hits.
	touches := 0
	for round := 0; round < 50; round++ {
		for i := 0; i < len(ids); i += (round % 7) + 1 {
			a.Touch(ids[i])
			touches++
		}
	}
	s := a.Stats()
	if int(s.Accesses+s.Hits) != touches {
		t.Errorf("accesses %d + hits %d != touches %d", s.Accesses, s.Hits, touches)
	}
}
