// Package pagestore simulates the disk layer of the paper's evaluation:
// fixed-size pages, an allocator that lays objects (index nodes, matrix
// column ranges) out over page ranges, and an accountant that counts page
// accesses — the I/O-cost metric of Section 6 — optionally through an LRU
// buffer pool so that repeated touches of a hot page are absorbed the way a
// DBMS buffer manager would absorb them.
//
// Queries draw private Readers from a shared Accountant: each reader
// carries its own counters (and a cold buffer of the accountant's
// capacity), so concurrent queries report independent I/O statistics.
// Those per-query numbers surface as Stats.IOCost/IOHits in query
// results and feed the imgrn_reader_* metric families (DESIGN.md §8).
package pagestore

import "fmt"

// PageID identifies one fixed-size page.
type PageID uint64

// DefaultPageSize is the classic 4 KiB database page.
const DefaultPageSize = 4096

// Stats aggregates I/O accounting.
type Stats struct {
	// Accesses is the number of page accesses that went to "disk"
	// (buffer-pool misses, or every touch when no buffer is configured).
	Accesses uint64
	// Hits counts touches absorbed by the buffer pool.
	Hits uint64
	// Allocated is the total number of pages handed out.
	Allocated uint64
}

// Accountant allocates pages and tracks page accesses, optionally through
// an LRU buffer pool. The zero value is not usable; call New.
// Not safe for concurrent use.
type Accountant struct {
	pageSize int
	next     PageID
	stats    Stats
	lru      *lruCache // nil means unbuffered: every touch is an access
}

// New returns an accountant with the given page size and buffer pool
// capacity in pages (0 disables buffering).
func New(pageSize, bufferPages int) *Accountant {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	a := &Accountant{pageSize: pageSize, next: 1}
	if bufferPages > 0 {
		a.lru = newLRU(bufferPages)
	}
	return a
}

// PageSize returns the configured page size in bytes.
func (a *Accountant) PageSize() int { return a.pageSize }

// Allocate reserves a contiguous run of pages able to hold n bytes and
// returns its first PageID along with the page count (at least 1).
func (a *Accountant) Allocate(n int) (PageID, int) {
	pages := (n + a.pageSize - 1) / a.pageSize
	if pages < 1 {
		pages = 1
	}
	id := a.next
	a.next += PageID(pages)
	a.stats.Allocated += uint64(pages)
	return id, pages
}

// Touch records one access of page id.
func (a *Accountant) Touch(id PageID) {
	if a.lru != nil && a.lru.touch(id) {
		a.stats.Hits++
		return
	}
	a.stats.Accesses++
}

// TouchRange records an access of each page in [id, id+pages).
func (a *Accountant) TouchRange(id PageID, pages int) {
	for k := 0; k < pages; k++ {
		a.Touch(id + PageID(k))
	}
}

// ChargeBytes charges the accesses required to read n bytes starting at
// the beginning of the object rooted at id.
func (a *Accountant) ChargeBytes(id PageID, n int) {
	pages := (n + a.pageSize - 1) / a.pageSize
	if pages < 1 {
		pages = 1
	}
	a.TouchRange(id, pages)
}

// Stats returns a snapshot of the counters.
func (a *Accountant) Stats() Stats { return a.stats }

// Toucher counts page accesses. Both *Accountant and *Reader implement it,
// so charged read paths (Store.ReadAtTo, rstar.TouchNode) can bill either
// the global accountant or a per-query reader.
type Toucher interface {
	Touch(id PageID)
	TouchRange(id PageID, pages int)
	PageSize() int
}

// NewReader returns a per-query view of the accountant: a Reader with
// private access/hit counters and a private buffer pool of the same
// capacity as the accountant's. Concurrent queries each hold their own
// Reader, so they account I/O independently instead of sharing one mutable
// counter. A fresh Reader starts with a cold buffer, which preserves the
// paper's per-query I/O-cost metric (Section 6.1): it reports exactly what
// Touch-after-ResetStats reported when queries were serialized.
func (a *Accountant) NewReader() *Reader {
	r := &Reader{pageSize: a.pageSize}
	if a.lru != nil {
		r.bufferPages = a.lru.capacity
		r.lru = newLRU(a.lru.capacity)
	}
	return r
}

// Reader is one query's I/O accounting view. It is intentionally cheap and
// unsynchronized: a Reader must not be shared across goroutines. Parallel
// workers within one query derive a SubReader each and merge the counters
// back with AddStats once the fan-out has been gathered.
type Reader struct {
	pageSize    int
	bufferPages int
	stats       Stats
	lru         *lruCache // nil means unbuffered
}

// PageSize returns the page size inherited from the accountant.
func (r *Reader) PageSize() int { return r.pageSize }

// Touch records one access of page id against this reader.
func (r *Reader) Touch(id PageID) {
	if r.lru != nil && r.lru.touch(id) {
		r.stats.Hits++
		return
	}
	r.stats.Accesses++
}

// TouchRange records an access of each page in [id, id+pages).
func (r *Reader) TouchRange(id PageID, pages int) {
	for k := 0; k < pages; k++ {
		r.Touch(id + PageID(k))
	}
}

// ChargeBytes charges the accesses required to read n bytes starting at
// the beginning of the object rooted at id.
func (r *Reader) ChargeBytes(id PageID, n int) {
	pages := (n + r.pageSize - 1) / r.pageSize
	if pages < 1 {
		pages = 1
	}
	r.TouchRange(id, pages)
}

// Stats returns a snapshot of the reader's counters.
func (r *Reader) Stats() Stats { return r.stats }

// SubReader derives a reader with the same page size and buffer capacity
// but fresh (zero) counters and a cold private buffer, for use by one
// parallel worker unit. Each unit's counters are a pure function of the
// work unit itself, so merged totals are independent of the goroutine
// schedule.
func (r *Reader) SubReader() *Reader {
	s := &Reader{pageSize: r.pageSize, bufferPages: r.bufferPages}
	if r.bufferPages > 0 {
		s.lru = newLRU(r.bufferPages)
	}
	return s
}

// AddStats merges the counters of a finished SubReader (or any Stats
// snapshot) into this reader.
func (r *Reader) AddStats(s Stats) {
	r.stats.Accesses += s.Accesses
	r.stats.Hits += s.Hits
	r.stats.Allocated += s.Allocated
}

// ResetStats zeroes the access/hit counters (allocation count is kept) and
// drops the buffer contents, so per-query I/O can be measured from a cold
// buffer as the paper does.
func (a *Accountant) ResetStats() {
	a.stats.Accesses = 0
	a.stats.Hits = 0
	if a.lru != nil {
		a.lru.reset()
	}
}

// String renders the stats for reports.
func (s Stats) String() string {
	return fmt.Sprintf("accesses=%d hits=%d allocated=%d", s.Accesses, s.Hits, s.Allocated)
}

// lruCache is a minimal intrusive LRU set of PageIDs.
type lruCache struct {
	capacity int
	nodes    map[PageID]*lruNode
	head     *lruNode // most recently used
	tail     *lruNode // least recently used
}

type lruNode struct {
	id         PageID
	prev, next *lruNode
}

func newLRU(capacity int) *lruCache {
	return &lruCache{capacity: capacity, nodes: make(map[PageID]*lruNode, capacity)}
}

// touch returns true when id was already cached (a buffer hit); otherwise
// it inserts id, evicting the LRU entry if full, and returns false.
func (c *lruCache) touch(id PageID) bool {
	if n, ok := c.nodes[id]; ok {
		c.moveToFront(n)
		return true
	}
	n := &lruNode{id: id}
	c.nodes[id] = n
	c.pushFront(n)
	if len(c.nodes) > c.capacity {
		evict := c.tail
		c.unlink(evict)
		delete(c.nodes, evict.id)
	}
	return false
}

func (c *lruCache) reset() {
	c.nodes = make(map[PageID]*lruNode, c.capacity)
	c.head, c.tail = nil, nil
}

func (c *lruCache) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *lruCache) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *lruCache) moveToFront(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}
