package pagestore

import (
	"bytes"
	"testing"
)

func TestStoreAppendReadAt(t *testing.T) {
	acc := New(16, 0)
	s := NewStore(acc)
	data := []byte("hello, paged world! 0123456789abcdef tail")
	id := s.Append(data)
	if s.Runs() != 1 || s.RunLength(id) != len(data) {
		t.Fatalf("runs=%d len=%d", s.Runs(), s.RunLength(id))
	}
	dst := make([]byte, len(data))
	if err := s.ReadAt(id, 0, len(data), dst); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dst, data) {
		t.Fatalf("round trip mismatch: %q", dst)
	}
	// Whole run spans ceil(41/16) = 3 pages.
	if got := acc.Stats().Accesses; got != 3 {
		t.Errorf("full read accesses = %d, want 3", got)
	}
}

func TestStorePartialReadCharging(t *testing.T) {
	acc := New(16, 0)
	s := NewStore(acc)
	data := make([]byte, 64) // 4 pages
	for i := range data {
		data[i] = byte(i)
	}
	id := s.Append(data)
	acc.ResetStats()
	dst := make([]byte, 8)
	// Bytes 20..28 live entirely in page 1.
	if err := s.ReadAt(id, 20, 8, dst); err != nil {
		t.Fatal(err)
	}
	if acc.Stats().Accesses != 1 {
		t.Errorf("single-page read charged %d pages", acc.Stats().Accesses)
	}
	if dst[0] != 20 || dst[7] != 27 {
		t.Errorf("partial read bytes wrong: %v", dst)
	}
	acc.ResetStats()
	// Bytes 14..30 straddle pages 0 and 1.
	if err := s.ReadAt(id, 14, 16, dst[:0:0]); err == nil {
		t.Error("short destination should error")
	}
	big := make([]byte, 16)
	if err := s.ReadAt(id, 14, 16, big); err != nil {
		t.Fatal(err)
	}
	if acc.Stats().Accesses != 2 {
		t.Errorf("straddling read charged %d pages, want 2", acc.Stats().Accesses)
	}
}

func TestStoreReadErrors(t *testing.T) {
	acc := New(16, 0)
	s := NewStore(acc)
	id := s.Append([]byte("abc"))
	dst := make([]byte, 8)
	if err := s.ReadAt(id, 2, 5, dst); err == nil {
		t.Error("read past run end should error")
	}
	if err := s.ReadAt(id, -1, 1, dst); err == nil {
		t.Error("negative offset should error")
	}
	if err := s.ReadAt(id+100, 0, 1, dst); err == nil {
		t.Error("unknown run should error")
	}
	if s.RunLength(id+100) != -1 {
		t.Error("unknown run length should be -1")
	}
}

func TestStoreNamespaceSharedWithAccountant(t *testing.T) {
	acc := New(16, 0)
	s := NewStore(acc)
	nodeID, _ := acc.Allocate(40) // simulate an index node allocation
	dataID := s.Append(make([]byte, 40))
	if nodeID == dataID {
		t.Error("store run collided with direct allocation")
	}
	if dataID <= nodeID {
		t.Error("allocations should be monotone in one namespace")
	}
}

func TestStoreEmptyRun(t *testing.T) {
	acc := New(16, 0)
	s := NewStore(acc)
	id := s.Append(nil)
	dst := make([]byte, 0)
	if err := s.ReadAt(id, 0, 0, dst); err != nil {
		t.Errorf("zero-length read: %v", err)
	}
}

func TestStorePanicsWithoutAccountant(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStore(nil)
}
