package pagestore

import (
	"sync"
	"testing"
)

func TestReaderCountsIndependently(t *testing.T) {
	acc := New(128, 4)
	id, _ := acc.Allocate(10 * 128)

	r1 := acc.NewReader()
	r2 := acc.NewReader()
	r1.Touch(id)
	r1.Touch(id + 1)
	r2.Touch(id)

	if got := r1.Stats().Accesses; got != 2 {
		t.Fatalf("r1 accesses = %d, want 2", got)
	}
	if got := r2.Stats().Accesses; got != 1 {
		t.Fatalf("r2 accesses = %d, want 1", got)
	}
	if got := acc.Stats().Accesses; got != 0 {
		t.Fatalf("reader touches leaked into the accountant: %d", got)
	}
}

// TestReaderMatchesResetAccountant is the metric-preservation property:
// a fresh Reader reports exactly what the shared accountant reported after
// ResetStats in the serialized design, for an arbitrary touch trace.
func TestReaderMatchesResetAccountant(t *testing.T) {
	trace := []PageID{1, 2, 3, 1, 1, 4, 5, 6, 2, 7, 3, 3, 8, 1}
	for _, bufferPages := range []int{0, 2, 4} {
		acc := New(256, bufferPages)
		acc.Allocate(8 * 256)
		// Warm the accountant's buffer with unrelated touches, then reset —
		// the serialized per-query protocol.
		acc.Touch(7)
		acc.Touch(8)
		acc.ResetStats()
		for _, id := range trace {
			acc.Touch(id)
		}

		r := New(256, bufferPages).NewReader()
		for _, id := range trace {
			r.Touch(id)
		}
		if acc.Stats().Accesses != r.Stats().Accesses || acc.Stats().Hits != r.Stats().Hits {
			t.Fatalf("bufferPages=%d: reader %v != reset accountant %v",
				bufferPages, r.Stats(), acc.Stats())
		}
	}
}

func TestReaderChargeBytes(t *testing.T) {
	r := New(100, 0).NewReader()
	r.ChargeBytes(1, 250) // 3 pages
	r.ChargeBytes(10, 0)  // minimum 1 page
	if got := r.Stats().Accesses; got != 4 {
		t.Fatalf("accesses = %d, want 4", got)
	}
	if r.PageSize() != 100 {
		t.Fatalf("page size = %d, want 100", r.PageSize())
	}
}

func TestSubReaderMergesBack(t *testing.T) {
	root := New(128, 4).NewReader()
	root.Touch(1)

	var wg sync.WaitGroup
	subs := make([]*Reader, 8)
	for i := range subs {
		subs[i] = root.SubReader()
		wg.Add(1)
		go func(r *Reader, base PageID) {
			defer wg.Done()
			// Second touch of the same page is a buffer hit.
			r.Touch(base)
			r.Touch(base)
		}(subs[i], PageID(100+i))
	}
	wg.Wait()
	for _, s := range subs {
		root.AddStats(s.Stats())
	}
	st := root.Stats()
	if st.Accesses != 1+8 {
		t.Fatalf("accesses = %d, want 9", st.Accesses)
	}
	if st.Hits != 8 {
		t.Fatalf("hits = %d, want 8", st.Hits)
	}
}

func TestSubReaderBufferIsCold(t *testing.T) {
	root := New(128, 4).NewReader()
	root.Touch(42) // now hot in root's buffer
	sub := root.SubReader()
	sub.Touch(42)
	if got := sub.Stats().Accesses; got != 1 {
		t.Fatalf("sub reader inherited a warm buffer: accesses = %d, want 1", got)
	}
	if got := sub.Stats().Hits; got != 0 {
		t.Fatalf("sub reader hits = %d, want 0", got)
	}
}

func TestUnbufferedReaderNeverHits(t *testing.T) {
	r := New(64, 0).NewReader()
	for i := 0; i < 5; i++ {
		r.Touch(3)
	}
	st := r.Stats()
	if st.Accesses != 5 || st.Hits != 0 {
		t.Fatalf("stats = %v, want 5 accesses, 0 hits", st)
	}
}
