package subiso

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/randgen"
)

func path(ids []gene.ID, probs []float64) *grn.Graph {
	g := grn.NewGraph(ids)
	for i, p := range probs {
		g.SetEdge(i, i+1, p)
	}
	return g
}

func TestUniqueLabelFastPathMatch(t *testing.T) {
	data := path([]gene.ID{1, 2, 3, 4}, []float64{0.9, 0.8, 0.7})
	query := path([]gene.ID{2, 3}, []float64{0.5})
	ms := Find(query, data, Options{Alpha: 0.5})
	if len(ms) != 1 {
		t.Fatalf("matches = %d, want 1", len(ms))
	}
	if ms[0].Mapping[0] != 1 || ms[0].Mapping[1] != 2 {
		t.Errorf("mapping = %v", ms[0].Mapping)
	}
	if math.Abs(ms[0].Prob-0.8) > 1e-12 {
		t.Errorf("prob = %v, want 0.8", ms[0].Prob)
	}
}

func TestAlphaFiltering(t *testing.T) {
	data := path([]gene.ID{1, 2, 3}, []float64{0.6, 0.6})
	query := path([]gene.ID{1, 2, 3}, []float64{0.5, 0.5})
	if ms := Find(query, data, Options{Alpha: 0.36}); len(ms) != 0 {
		t.Error("Pr = 0.36 must not exceed alpha = 0.36 (strict)")
	}
	if ms := Find(query, data, Options{Alpha: 0.35}); len(ms) != 1 {
		t.Error("Pr = 0.36 > 0.35 should match")
	}
}

func TestMissingQueryGene(t *testing.T) {
	data := path([]gene.ID{1, 2}, []float64{0.9})
	query := path([]gene.ID{1, 5}, []float64{0.5})
	if ms := Find(query, data, Options{}); len(ms) != 0 {
		t.Error("query gene absent from data should not match")
	}
}

func TestMissingQueryEdge(t *testing.T) {
	data := grn.NewGraph([]gene.ID{1, 2, 3})
	data.SetEdge(0, 1, 0.9)
	query := path([]gene.ID{1, 3}, []float64{0.5}) // edge 1–3 absent in data
	if ms := Find(query, data, Options{}); len(ms) != 0 {
		t.Error("missing data edge should not match")
	}
}

func TestNonInducedSemantics(t *testing.T) {
	// Data triangle; query path. Extra data edge must not block matching.
	data := grn.NewGraph([]gene.ID{1, 2, 3})
	data.SetEdge(0, 1, 0.9)
	data.SetEdge(1, 2, 0.9)
	data.SetEdge(0, 2, 0.9)
	query := path([]gene.ID{1, 2, 3}, []float64{0.5, 0.5})
	ms := Find(query, data, Options{})
	if len(ms) != 1 {
		t.Fatalf("matches = %d, want 1 (subgraph, not induced)", len(ms))
	}
	if math.Abs(ms[0].Prob-0.81) > 1e-12 {
		t.Errorf("prob = %v, want 0.81 (only query edges multiply)", ms[0].Prob)
	}
}

func TestDuplicateLabelsEnumerateAllEmbeddings(t *testing.T) {
	// Data: star with three leaves all labelled 7; query: one edge (5,7).
	data := grn.NewGraph([]gene.ID{5, 7, 7 + 1000, 7})
	// Give two of the three leaves label 7 (vertex 2 differs).
	data.SetEdge(0, 1, 0.9)
	data.SetEdge(0, 2, 0.8)
	data.SetEdge(0, 3, 0.7)
	query := grn.NewGraph([]gene.ID{5, 7})
	query.SetEdge(0, 1, 0.5)
	ms := Find(query, data, Options{})
	if len(ms) != 2 {
		t.Fatalf("matches = %d, want 2 (two leaves labelled 7)", len(ms))
	}
}

func TestWildcardLabel(t *testing.T) {
	data := path([]gene.ID{1, 2, 3}, []float64{0.9, 0.8})
	query := grn.NewGraph([]gene.ID{2, Wildcard})
	query.SetEdge(0, 1, 0.5)
	ms := Find(query, data, Options{})
	if len(ms) != 2 {
		t.Fatalf("matches = %d, want 2 (wildcard matches both neighbors)", len(ms))
	}
}

func TestMaxMatchesStopsEarly(t *testing.T) {
	data := path([]gene.ID{1, 2, 3}, []float64{0.9, 0.8})
	query := grn.NewGraph([]gene.ID{2, Wildcard})
	query.SetEdge(0, 1, 0.5)
	ms := Find(query, data, Options{MaxMatches: 1})
	if len(ms) != 1 {
		t.Fatalf("matches = %d, want 1", len(ms))
	}
}

func TestQueryLargerThanData(t *testing.T) {
	data := path([]gene.ID{1, 2}, []float64{0.9})
	query := path([]gene.ID{1, 2, 3}, []float64{0.5, 0.5})
	if ms := Find(query, data, Options{}); ms != nil {
		t.Error("oversized query should not match")
	}
}

func TestEmptyQuery(t *testing.T) {
	data := path([]gene.ID{1, 2}, []float64{0.9})
	query := grn.NewGraph(nil)
	ms := Find(query, data, Options{})
	if len(ms) != 1 || ms[0].Prob != 1 {
		t.Errorf("empty query: %+v", ms)
	}
}

func TestEdgelessQueryVerticesOnly(t *testing.T) {
	data := path([]gene.ID{1, 2, 3}, []float64{0.9, 0.8})
	query := grn.NewGraph([]gene.ID{3, 1})
	ms := Find(query, data, Options{})
	if len(ms) != 1 || ms[0].Prob != 1 {
		t.Fatalf("edgeless query: %+v", ms)
	}
	if ms[0].Mapping[0] != 2 || ms[0].Mapping[1] != 0 {
		t.Errorf("mapping = %v", ms[0].Mapping)
	}
}

func TestExistsAndBest(t *testing.T) {
	data := grn.NewGraph([]gene.ID{5, 7, 7 + 1000, 7})
	data.SetEdge(0, 1, 0.9)
	data.SetEdge(0, 3, 0.7)
	query := grn.NewGraph([]gene.ID{5, 7})
	query.SetEdge(0, 1, 0.5)
	if _, ok := Exists(query, data, 0.95); ok {
		t.Error("no embedding above 0.95 exists")
	}
	m, ok := Best(query, data, 0)
	if !ok || math.Abs(m.Prob-0.9) > 1e-12 {
		t.Errorf("Best = %+v, %v; want prob 0.9", m, ok)
	}
}

func TestDisconnectedQuery(t *testing.T) {
	data := grn.NewGraph([]gene.ID{1, 2, 3, 4})
	data.SetEdge(0, 1, 0.9)
	data.SetEdge(2, 3, 0.8)
	query := grn.NewGraph([]gene.ID{1, 2, 3, 4})
	query.SetEdge(0, 1, 0.5)
	query.SetEdge(2, 3, 0.5)
	ms := Find(query, data, Options{})
	if len(ms) != 1 {
		t.Fatalf("disconnected query matches = %d, want 1", len(ms))
	}
	if math.Abs(ms[0].Prob-0.72) > 1e-12 {
		t.Errorf("prob = %v", ms[0].Prob)
	}
}

// TestMatchValidity: every embedding returned on random inputs is valid —
// injective, label-compatible, edge-preserving, with the right probability.
func TestMatchValidity(t *testing.T) {
	rng := randgen.New(60)
	f := func(seed uint64) bool {
		r := randgen.New(seed ^ rng.Uint64())
		nd := 4 + r.Intn(5)
		data := randomLabelled(r, nd, 2+r.Intn(6), 3)
		query := randomLabelled(r, 2+r.Intn(3), 1+r.Intn(2), 3)
		alpha := r.Float64() * 0.5
		for _, m := range Find(query, data, Options{Alpha: alpha}) {
			seen := make(map[int]bool)
			prob := 1.0
			for qv, dv := range m.Mapping {
				if seen[dv] {
					return false // not injective
				}
				seen[dv] = true
				if ql := query.Gene(qv); ql != Wildcard && ql != data.Gene(dv) {
					return false // label mismatch
				}
			}
			for _, e := range query.Edges() {
				p, ok := data.EdgeProb(m.Mapping[e.S], m.Mapping[e.T])
				if !ok {
					return false // edge not preserved
				}
				prob *= p
			}
			if math.Abs(prob-m.Prob) > 1e-9 || prob <= alpha {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// randomLabelled builds a graph with labels drawn from a small alphabet so
// duplicates occur and the general matcher is exercised.
func randomLabelled(rng *randgen.Rand, n, edges, alphabet int) *grn.Graph {
	ids := make([]gene.ID, n)
	for i := range ids {
		ids[i] = gene.ID(rng.Intn(alphabet))
	}
	g := grn.NewGraph(ids)
	for k := 0; k < edges; k++ {
		s := rng.Intn(n)
		t := rng.Intn(n)
		if s == t {
			continue
		}
		g.SetEdge(s, t, 0.1+0.9*rng.Float64())
	}
	return g
}

// TestGeneralMatchesAgreeWithBruteForce cross-checks the VF2 matcher
// against exhaustive mapping enumeration on small graphs.
func TestGeneralMatchesAgreeWithBruteForce(t *testing.T) {
	rng := randgen.New(61)
	for trial := 0; trial < 100; trial++ {
		data := randomLabelled(rng, 5, 5, 2)
		query := randomLabelled(rng, 3, 2, 2)
		got := len(Find(query, data, Options{}))
		want := bruteForceCount(query, data, 0)
		if got != want {
			t.Fatalf("trial %d: matcher found %d, brute force %d", trial, got, want)
		}
	}
}

func bruteForceCount(q, g *grn.Graph, alpha float64) int {
	nq, ng := q.NumVertices(), g.NumVertices()
	mapping := make([]int, nq)
	used := make([]bool, ng)
	count := 0
	var rec func(depth int)
	rec = func(depth int) {
		if depth == nq {
			prob := 1.0
			for _, e := range q.Edges() {
				p, ok := g.EdgeProb(mapping[e.S], mapping[e.T])
				if !ok {
					return
				}
				prob *= p
			}
			if prob > alpha {
				count++
			}
			return
		}
		for dv := 0; dv < ng; dv++ {
			if used[dv] {
				continue
			}
			if ql := q.Gene(depth); ql != Wildcard && ql != g.Gene(dv) {
				continue
			}
			mapping[depth] = dv
			used[dv] = true
			rec(depth + 1)
			used[dv] = false
		}
	}
	rec(0)
	return count
}
