// Package subiso implements label-constrained subgraph isomorphism over
// probabilistic GRN graphs (Definition 4): an embedding maps every query
// vertex to a distinct data vertex with a compatible gene label, every query
// edge to an existing data edge, and the appearance probability of the
// matched subgraph — the product of the mapped edges' existence
// probabilities (Eq. 3) — must exceed the probabilistic threshold α.
//
// A VF2-style backtracking matcher handles duplicate and wildcard labels;
// a fast path resolves the common case where every query label occurs at
// most once in the data graph, making the embedding unique.
package subiso

import (
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
)

// Wildcard is a query gene label that matches any data gene.
const Wildcard gene.ID = -1

// Match is one embedding of the query into the data graph.
type Match struct {
	// Mapping[q] is the data-vertex index assigned to query vertex q.
	Mapping []int
	// Prob is the appearance probability Pr{G} of the matched subgraph.
	Prob float64
}

// Options tunes the matcher.
type Options struct {
	// Alpha is the probabilistic threshold: only embeddings with
	// Pr{G} > Alpha are reported. Zero keeps everything with Pr{G} > 0.
	Alpha float64
	// MaxMatches stops the search after this many embeddings (0 = all).
	MaxMatches int
}

// Find returns the embeddings of query q into data graph g that satisfy
// opts. Embeddings are found in a deterministic order.
func Find(q, g *grn.Graph, opts Options) []Match {
	nq := q.NumVertices()
	if nq == 0 {
		return []Match{{Mapping: []int{}, Prob: 1}}
	}
	if nq > g.NumVertices() {
		return nil
	}
	m := &matcher{q: q, g: g, opts: opts}
	if m.uniqueLabelFastPath() {
		return m.out
	}
	m.search()
	return m.out
}

// Exists reports whether at least one qualifying embedding exists, stopping
// at the first. This is the Definition-4 decision the query processor needs.
func Exists(q, g *grn.Graph, alpha float64) (Match, bool) {
	opts := Options{Alpha: alpha, MaxMatches: 1}
	ms := Find(q, g, opts)
	if len(ms) == 0 {
		return Match{}, false
	}
	return ms[0], true
}

// Best returns the qualifying embedding with the highest appearance
// probability, or ok=false when none exists.
func Best(q, g *grn.Graph, alpha float64) (Match, bool) {
	ms := Find(q, g, Options{Alpha: alpha})
	best, ok := Match{}, false
	for _, m := range ms {
		if !ok || m.Prob > best.Prob {
			best, ok = m, true
		}
	}
	return best, ok
}

type matcher struct {
	q, g *grn.Graph
	opts Options

	order   []int // query vertices in matching order
	mapping []int // query vertex -> data vertex (or -1)
	used    []bool
	out     []Match
	done    bool
}

// uniqueLabelFastPath handles the dominant biological case: every
// (non-wildcard) query label identifies at most one data vertex, so the
// embedding — if any — is forced. Returns true when the fast path applied
// (whether or not a match was found); false defers to the general search.
func (m *matcher) uniqueLabelFastPath() bool {
	nq := m.q.NumVertices()
	labelPos := make(map[gene.ID]int, m.g.NumVertices())
	for v := 0; v < m.g.NumVertices(); v++ {
		id := m.g.Gene(v)
		if _, dup := labelPos[id]; dup {
			return false // duplicate data label: general search required
		}
		labelPos[id] = v
	}
	mapping := make([]int, nq)
	for qv := 0; qv < nq; qv++ {
		id := m.q.Gene(qv)
		if id == Wildcard {
			return false
		}
		dv, ok := labelPos[id]
		if !ok {
			return true // some query gene absent: no match, fast path done
		}
		mapping[qv] = dv
	}
	// Distinctness is implied: distinct query vertices cannot share a gene
	// label within one graph, and labels map to unique data vertices.
	prob := 1.0
	for _, e := range m.q.Edges() {
		p, ok := m.g.EdgeProb(mapping[e.S], mapping[e.T])
		if !ok {
			return true
		}
		prob *= p
	}
	if prob > m.opts.Alpha {
		m.out = append(m.out, Match{Mapping: mapping, Prob: prob})
	}
	return true
}

// search runs the VF2-style backtracking matcher.
func (m *matcher) search() {
	nq := m.q.NumVertices()
	m.order = matchOrder(m.q)
	m.mapping = make([]int, nq)
	for i := range m.mapping {
		m.mapping[i] = -1
	}
	m.used = make([]bool, m.g.NumVertices())
	m.extend(0, 1.0)
}

// matchOrder returns query vertices ordered so each vertex (after the
// first) is adjacent to an already-ordered vertex when the query is
// connected, starting from the max-degree vertex — the heuristic of Fig. 4.
func matchOrder(q *grn.Graph) []int {
	nq := q.NumVertices()
	order := make([]int, 0, nq)
	placed := make([]bool, nq)
	for len(order) < nq {
		// Seed each component from its highest-degree unplaced vertex.
		seed, bestDeg := -1, -1
		for v := 0; v < nq; v++ {
			if !placed[v] && q.Degree(v) > bestDeg {
				seed, bestDeg = v, q.Degree(v)
			}
		}
		frontier := []int{seed}
		placed[seed] = true
		for len(frontier) > 0 {
			v := frontier[0]
			frontier = frontier[1:]
			order = append(order, v)
			for _, nb := range q.Neighbors(v) {
				if !placed[nb] {
					placed[nb] = true
					frontier = append(frontier, nb)
				}
			}
		}
	}
	return order
}

func (m *matcher) extend(depth int, prob float64) {
	if m.done {
		return
	}
	if depth == len(m.order) {
		mapping := make([]int, len(m.mapping))
		copy(mapping, m.mapping)
		m.out = append(m.out, Match{Mapping: mapping, Prob: prob})
		if m.opts.MaxMatches > 0 && len(m.out) >= m.opts.MaxMatches {
			m.done = true
		}
		return
	}
	qv := m.order[depth]
	qid := m.q.Gene(qv)
	for dv := 0; dv < m.g.NumVertices(); dv++ {
		if m.used[dv] {
			continue
		}
		if qid != Wildcard && m.g.Gene(dv) != qid {
			continue
		}
		if m.g.Degree(dv) < m.q.Degree(qv) {
			continue
		}
		// Every already-mapped query neighbor must be a data neighbor, and
		// the partial probability product must stay above alpha (edge
		// probabilities are ≤ 1, so the product can only shrink).
		p := prob
		ok := true
		for _, qn := range m.q.Neighbors(qv) {
			dn := m.mapping[qn]
			if dn < 0 {
				continue
			}
			ep, exists := m.g.EdgeProb(dv, dn)
			if !exists {
				ok = false
				break
			}
			p *= ep
			if p <= m.opts.Alpha {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		m.mapping[qv] = dv
		m.used[dv] = true
		m.extend(depth+1, p)
		m.used[dv] = false
		m.mapping[qv] = -1
		if m.done {
			return
		}
	}
}
