package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"github.com/imgrn/imgrn/internal/gene"
)

func testMatrix(t *testing.T, source int) *gene.Matrix {
	t.Helper()
	m, err := gene.NewMatrix(source,
		[]gene.ID{7, 11},
		[][]float64{{1, 2, 3, 4}, {0.5, -1, 2.25, 0}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// appendRecords writes the canonical test mutation sequence and returns
// the per-record frame sizes in append order.
func appendRecords(t *testing.T, w *Writer) []int64 {
	t.Helper()
	var sizes []int64
	before := w.Size()
	for _, payload := range testPayloads(t) {
		if err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, w.Size()-before)
		before = w.Size()
	}
	return sizes
}

func testPayloads(t *testing.T) [][]byte {
	t.Helper()
	add1, err := EncodeAddMatrix(testMatrix(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	add2, err := EncodeAddMatrix(testMatrix(t, 9))
	if err != nil {
		t.Fatal(err)
	}
	return [][]byte{add1, add2, EncodeRemoveMatrix(3)}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-00000001.log")
	w, info, err := Open(path, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Created {
		t.Fatal("expected fresh segment")
	}
	appendRecords(t, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var recs []Record
	w2, info, err := Open(path, true, func(payload []byte) error {
		r, err := DecodeRecord(payload)
		if err != nil {
			return err
		}
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if info.Records != 3 || info.TornBytes != 0 {
		t.Fatalf("recovery = %+v, want 3 records, no torn tail", info)
	}
	if recs[0].Op != OpAddMatrix || recs[0].Source != 3 ||
		recs[1].Op != OpAddMatrix || recs[1].Source != 9 ||
		recs[2].Op != OpRemoveMatrix || recs[2].Source != 3 {
		t.Fatalf("decoded records = %+v", recs)
	}
	if got, want := recs[0].Matrix.Col(1), []float64{0.5, -1, 2.25, 0}; len(got) != len(want) {
		t.Fatalf("matrix column mismatch: %v", got)
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("matrix col[1][%d] = %v, want %v", i, got[i], want[i])
			}
		}
	}
	// Appending after recovery extends the same segment.
	if err := w2.Append(EncodeRemoveMatrix(9)); err != nil {
		t.Fatal(err)
	}
	ri, err := Replay(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ri.Records != 4 {
		t.Fatalf("after reopen+append: %d records, want 4", ri.Records)
	}
}

// TestTornTailEveryOffset is the crash-recovery property test of the WAL
// frame format: for every possible truncation point of the segment — a
// simulated kill mid-append at every byte offset — reopening must keep
// exactly the records whose frames are complete (the acked prefix) and
// drop the torn tail cleanly.
func TestTornTailEveryOffset(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.log")
	w, _, err := Open(full, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	sizes := appendRecords(t, w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// boundary[k] is the end offset of record k.
	boundaries := make([]int64, len(sizes))
	var off int64
	for i, sz := range sizes {
		off += sz
		boundaries[i] = off
	}
	wantRecords := func(n int64) int {
		k := 0
		for _, b := range boundaries {
			if b <= n {
				k++
			}
		}
		return k
	}

	for n := int64(0); n <= int64(len(data)); n++ {
		path := filepath.Join(dir, fmt.Sprintf("torn-%04d.log", n))
		if err := os.WriteFile(path, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		var got int
		w, info, err := Open(path, false, func(payload []byte) error {
			if _, err := DecodeRecord(payload); err != nil {
				return err
			}
			got++
			return nil
		})
		if err != nil {
			t.Fatalf("offset %d: reopen failed: %v", n, err)
		}
		if want := wantRecords(n); got != want || info.Records != want {
			t.Fatalf("offset %d: replayed %d records, want %d", n, got, want)
		}
		wantValid := int64(0)
		for _, b := range boundaries {
			if b <= n {
				wantValid = b
			}
		}
		if info.Bytes != wantValid || info.TornBytes != n-wantValid {
			t.Fatalf("offset %d: recovery = %+v, want valid=%d torn=%d",
				n, info, wantValid, n-wantValid)
		}
		// The torn tail must be gone from disk and the segment appendable.
		if err := w.Append(EncodeRemoveMatrix(42)); err != nil {
			t.Fatalf("offset %d: append after recovery: %v", n, err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		ri, err := Replay(path, nil)
		if err != nil {
			t.Fatalf("offset %d: re-replay: %v", n, err)
		}
		if ri.Records != wantRecords(n)+1 || ri.TornBytes != 0 {
			t.Fatalf("offset %d: after truncate+append replay = %+v", n, ri)
		}
		os.Remove(path)
	}
}

// TestCorruptPayloadStopsReplay flips one payload byte of the middle
// record: recovery must keep the first record only (everything from the
// first bad frame is the torn tail).
func TestCorruptPayloadStopsReplay(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, _, err := Open(path, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	sizes := appendRecords(t, w)
	w.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[sizes[0]+frameHeaderSize+2] ^= 0xff // middle record payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, info, err := Open(path, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if info.Records != 1 || info.Bytes != sizes[0] {
		t.Fatalf("recovery over corrupt middle = %+v, want 1 record of %d bytes", info, sizes[0])
	}
}

func TestOversizedLengthTreatedAsTorn(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	var frame [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(frame[0:], MaxRecord+1)
	if err := os.WriteFile(path, frame[:], 0o644); err != nil {
		t.Fatal(err)
	}
	w, info, err := Open(path, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if info.Records != 0 || info.TornBytes != frameHeaderSize {
		t.Fatalf("recovery = %+v, want oversized header truncated", info)
	}
}

func TestAppendRejectsOversizedRecord(t *testing.T) {
	w, _, err := Open(filepath.Join(t.TempDir(), "wal.log"), false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversized append accepted")
	}
}

// TestGoldenRecordEncoding pins the exact on-disk bytes of the WAL
// record formats — frame header plus payload — so the encoding cannot
// drift silently: a drift would make old logs unreadable.
func TestGoldenRecordEncoding(t *testing.T) {
	m, err := gene.NewMatrix(5, []gene.ID{2, 3}, [][]float64{{1, 2}, {0.5, -1}})
	if err != nil {
		t.Fatal(err)
	}
	add, err := EncodeAddMatrix(m)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		payload []byte
		want    string // hex of frame header + payload
	}{
		{
			name:    "add-matrix",
			payload: add,
			want: "390000006379a36f" + // size=57, crc32c
				"01" + // op add
				"0500000000000000" + // source 5
				"02000000" + "02000000" + // genes=2, samples=2
				"02000000" + "03000000" + // ids 2,3
				"000000000000f03f" + "0000000000000040" + // col 0: 1, 2
				"000000000000e03f" + "000000000000f0bf", // col 1: 0.5, -1
		},
		{
			name:    "remove-matrix",
			payload: EncodeRemoveMatrix(5),
			want: "09000000" + "884d553e" + // size=9, crc32c
				"02" + "0500000000000000", // op remove, source 5
		},
	}
	for _, tc := range cases {
		var frame bytes.Buffer
		var hdr [frameHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(tc.payload)))
		binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(tc.payload, castagnoli))
		frame.Write(hdr[:])
		frame.Write(tc.payload)
		if got := hex.EncodeToString(frame.Bytes()); got != tc.want {
			t.Errorf("%s encoding drifted:\n got  %s\n want %s", tc.name, got, tc.want)
		}
		// And the writer must produce exactly these bytes.
		path := filepath.Join(t.TempDir(), "golden.log")
		w, _, err := Open(path, false, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(tc.payload); err != nil {
			t.Fatal(err)
		}
		w.Close()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := hex.EncodeToString(data); got != tc.want {
			t.Errorf("%s writer bytes drifted:\n got  %s\n want %s", tc.name, got, tc.want)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeRecord(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := DecodeRecord([]byte{99}); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := DecodeRecord([]byte{byte(OpRemoveMatrix), 1, 2}); err == nil {
		t.Error("short remove payload accepted")
	}
	if _, err := DecodeRecord([]byte{byte(OpAddMatrix), 1, 2, 3}); err == nil {
		t.Error("truncated add payload accepted")
	}
}
