// Package wal implements the mutation write-ahead log of the durable
// engine (DESIGN.md §12): an append-only segment file of length-prefixed,
// CRC-checksummed records that is fsynced before a mutation is
// acknowledged and replayed over the latest index snapshot at boot.
//
// # Frame format
//
// Every record is framed as (little-endian):
//
//	size uint32  payload length in bytes (≤ MaxRecord)
//	crc  uint32  CRC-32C (Castagnoli) of the payload
//	payload [size]byte
//
// The frame carries no sequence numbers: a segment has exactly one
// writer, records are strictly appended, and the segment's position in
// the snapshot-generation sequence is carried by its file name (the
// store layer names segments after the snapshot generation they follow).
//
// # Torn-tail recovery
//
// A crash can leave a torn tail: a partially written frame, or a frame
// whose payload bytes never reached the disk. Open replays records from
// the start of the segment and stops at the first frame that is
// incomplete, oversized, or fails its checksum; everything from that
// byte on is truncated before the segment is reopened for appending.
// Because the file is single-writer append-only, a bad frame can only be
// the torn tail of the last crashed append — there is nothing valid
// after it to lose. Records before the tail were fsynced before their
// mutations were acknowledged, so truncation drops unacked work only.
//
// # Durability contract
//
// Append returns only after the frame has been written and fsynced (when
// the writer is opened with sync=true), so a caller that acknowledges a
// mutation after Append returns can guarantee the mutation survives any
// later crash. Creating a new segment fsyncs the parent directory so the
// directory entry itself is durable.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// frameHeaderSize is the fixed per-record overhead: size + crc.
const frameHeaderSize = 8

// MaxRecord bounds a single record payload (64 MiB). The cap exists so a
// corrupt length field cannot demand an absurd allocation during
// recovery. It does NOT follow from the server's request bound: a
// compact JSON body under MaxBodyBytes (32 MiB) can decode to a matrix
// whose binary encoding is larger (short decimal floats expand to 8-byte
// float64s), so the store layer validates the encoded size against
// MaxRecord before applying a mutation and rejects oversized ones as a
// client error (shard.ErrMutationTooLarge).
const MaxRecord = 64 << 20

// castagnoli is the CRC-32C table shared by writer and scanner.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Writer appends framed records to one segment file. It is not safe for
// concurrent use; the store layer serializes mutations.
type Writer struct {
	f    *os.File
	path string
	size int64
	sync bool
	hdr  [frameHeaderSize]byte
}

// RecoveryInfo reports what Open found in an existing segment.
type RecoveryInfo struct {
	// Records is the number of intact records replayed.
	Records int
	// Bytes is the valid prefix length the segment was kept (or truncated) to.
	Bytes int64
	// TornBytes is the length of the torn tail that was truncated away
	// (0 for a cleanly closed segment).
	TornBytes int64
	// Created reports that the segment did not exist and was created empty.
	Created bool
}

// Open opens the segment at path for appending, creating it (and
// fsyncing the parent directory) if absent. Every intact record already
// in the segment is passed to apply in order; a torn tail is truncated.
// When sync is true every Append fsyncs before returning. A non-nil
// error from apply aborts recovery and is returned verbatim.
func Open(path string, sync bool, apply func(payload []byte) error) (*Writer, RecoveryInfo, error) {
	var info RecoveryInfo
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if os.IsNotExist(err) {
		f, err = os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return nil, info, fmt.Errorf("wal: creating %s: %w", path, err)
		}
		info.Created = true
		if sync {
			if err := syncDir(filepath.Dir(path)); err != nil {
				f.Close()
				return nil, info, err
			}
		}
		return &Writer{f: f, path: path, sync: sync}, info, nil
	}
	if err != nil {
		return nil, info, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	valid, records, scanErr := scan(f, apply)
	if scanErr != nil {
		f.Close()
		return nil, info, scanErr
	}
	info.Records = records
	info.Bytes = valid
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, info, err
	}
	if end > valid {
		info.TornBytes = end - valid
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, info, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
		if sync {
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, info, err
			}
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, info, err
	}
	return &Writer{f: f, path: path, size: valid, sync: sync}, info, nil
}

// scan replays intact records from r (positioned at the start) and
// returns the byte offset of the valid prefix. Any framing violation —
// short header, oversized length, short payload, checksum mismatch — is
// treated as the torn tail and ends the scan without error.
func scan(r io.ReadSeeker, apply func([]byte) error) (valid int64, records int, err error) {
	if _, err := r.Seek(0, io.SeekStart); err != nil {
		return 0, 0, err
	}
	var hdr [frameHeaderSize]byte
	var buf []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return valid, records, nil // clean EOF or torn header
		}
		size := binary.LittleEndian.Uint32(hdr[0:])
		crc := binary.LittleEndian.Uint32(hdr[4:])
		if size > MaxRecord {
			return valid, records, nil
		}
		if cap(buf) < int(size) {
			buf = make([]byte, size)
		}
		buf = buf[:size]
		if _, err := io.ReadFull(r, buf); err != nil {
			return valid, records, nil // torn payload
		}
		if crc32.Checksum(buf, castagnoli) != crc {
			return valid, records, nil // corrupt tail
		}
		if apply != nil {
			if err := apply(buf); err != nil {
				return valid, records, fmt.Errorf("wal: applying record %d: %w", records, err)
			}
		}
		valid += frameHeaderSize + int64(size)
		records++
	}
}

// Append writes one framed record and, when the writer is synchronous,
// fsyncs before returning — the caller may acknowledge the mutation as
// durable once Append returns nil.
func (w *Writer) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(payload))
	}
	binary.LittleEndian.PutUint32(w.hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.hdr[4:], crc32.Checksum(payload, castagnoli))
	if _, err := w.f.Write(w.hdr[:]); err != nil {
		return fmt.Errorf("wal: appending to %s: %w", w.path, err)
	}
	if _, err := w.f.Write(payload); err != nil {
		return fmt.Errorf("wal: appending to %s: %w", w.path, err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync %s: %w", w.path, err)
		}
	}
	w.size += frameHeaderSize + int64(len(payload))
	return nil
}

// Size returns the current segment length in bytes (valid prefix at open
// plus everything appended since).
func (w *Writer) Size() int64 { return w.size }

// Path returns the segment file path.
func (w *Writer) Path() string { return w.path }

// Sync forces an fsync regardless of the writer's sync mode.
func (w *Writer) Sync() error { return w.f.Sync() }

// Close closes the segment file without an implicit sync (Append already
// synced every acknowledged record).
func (w *Writer) Close() error { return w.f.Close() }

// Replay reads the segment at path without opening it for writing,
// passing every intact record to apply; it reports the intact record
// count and the torn-tail length without modifying the file. A missing
// file replays zero records.
func Replay(path string, apply func(payload []byte) error) (RecoveryInfo, error) {
	var info RecoveryInfo
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		info.Created = true
		return info, nil
	}
	if err != nil {
		return info, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	defer f.Close()
	valid, records, err := scan(f, apply)
	if err != nil {
		return info, err
	}
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return info, err
	}
	info.Records = records
	info.Bytes = valid
	info.TornBytes = end - valid
	return info, nil
}

// syncDir fsyncs a directory so a just-created or just-renamed entry is
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir %s: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync dir %s: %w", dir, err)
	}
	return nil
}

// SyncDir is syncDir for the store layer: it fsyncs a directory entry
// after a create or rename, the step that makes snapshot rotation
// crash-safe.
func SyncDir(dir string) error { return syncDir(dir) }
