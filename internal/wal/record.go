package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"github.com/imgrn/imgrn/internal/gene"
)

// Op tags a mutation record.
type Op uint8

// The mutation operations of the engine's write path. Values are part of
// the on-disk format and must never be renumbered.
const (
	// OpAddMatrix logs an online AddMatrix: the payload carries the full
	// feature matrix in the IMGRNDB1 per-matrix framing.
	OpAddMatrix Op = 1
	// OpRemoveMatrix logs a RemoveMatrix: the payload carries the source ID.
	OpRemoveMatrix Op = 2
)

func (op Op) String() string {
	switch op {
	case OpAddMatrix:
		return "add-matrix"
	case OpRemoveMatrix:
		return "remove-matrix"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Record is one decoded mutation.
type Record struct {
	Op Op
	// Source is the mutated data source ID (for both operations).
	Source int
	// Matrix is the added matrix (OpAddMatrix only).
	Matrix *gene.Matrix
}

// Record payload encoding (little-endian), inside the frame of wal.go:
//
//	op byte
//	OpAddMatrix:    matrix block (gene.WriteMatrix: source int64,
//	                genes uint32, samples uint32, ids int32×n,
//	                raw columns n×l float64)
//	OpRemoveMatrix: source int64
//
// The add payload stores raw (unstandardized) features like the database
// format, so replaying an add reconstructs the exact matrix the online
// mutation indexed and re-derives its embedding from (Seed, Source)
// alone — a replayed engine answers like the engine that crashed.

// EncodeAddMatrix serializes an AddMatrix mutation payload.
func EncodeAddMatrix(m *gene.Matrix) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(byte(OpAddMatrix))
	if err := gene.WriteMatrix(&buf, m); err != nil {
		return nil, fmt.Errorf("wal: encoding add-matrix: %w", err)
	}
	return buf.Bytes(), nil
}

// EncodeRemoveMatrix serializes a RemoveMatrix mutation payload.
func EncodeRemoveMatrix(source int) []byte {
	payload := make([]byte, 9)
	payload[0] = byte(OpRemoveMatrix)
	binary.LittleEndian.PutUint64(payload[1:], uint64(int64(source)))
	return payload
}

// DecodeRecord parses one mutation payload.
func DecodeRecord(payload []byte) (Record, error) {
	if len(payload) == 0 {
		return Record{}, fmt.Errorf("wal: empty record payload")
	}
	switch op := Op(payload[0]); op {
	case OpAddMatrix:
		m, err := gene.ReadMatrix(bytes.NewReader(payload[1:]))
		if err != nil {
			return Record{}, fmt.Errorf("wal: decoding add-matrix: %w", err)
		}
		return Record{Op: op, Source: m.Source, Matrix: m}, nil
	case OpRemoveMatrix:
		if len(payload) != 9 {
			return Record{}, fmt.Errorf("wal: remove-matrix payload is %d bytes, want 9", len(payload))
		}
		source := int(int64(binary.LittleEndian.Uint64(payload[1:])))
		return Record{Op: op, Source: source}, nil
	default:
		return Record{}, fmt.Errorf("wal: unknown record op %d", payload[0])
	}
}
