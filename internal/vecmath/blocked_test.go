package vecmath

import (
	"math"
	"testing"

	"github.com/imgrn/imgrn/internal/randgen"
)

func randMatAndSrcs(seed uint64, rows, cols, nsrc int) (mat []float64, srcs [][]float64) {
	rng := randgen.New(seed)
	mat = make([]float64, rows*cols)
	for i := range mat {
		mat[i] = rng.Gaussian(0, 1)
	}
	srcs = make([][]float64, nsrc)
	for s := range srcs {
		srcs[s] = make([]float64, cols)
		for i := range srcs[s] {
			srcs[s][i] = rng.Gaussian(0, 1)
		}
	}
	return mat, srcs
}

// TestMatVecRowsIntoMatchesDot: the unrolled kernel must agree with the
// scalar Dot reference on every row, including rows % 4 tails.
func TestMatVecRowsIntoMatchesDot(t *testing.T) {
	for _, shape := range []struct{ rows, cols int }{
		{1, 1}, {3, 7}, {4, 16}, {5, 50}, {192, 50}, {7, 3000},
	} {
		mat, srcs := randMatAndSrcs(uint64(shape.rows*1000+shape.cols), shape.rows, shape.cols, 1)
		x := srcs[0]
		dst := make([]float64, shape.rows)
		MatVecRowsInto(dst, mat, shape.rows, shape.cols, x)
		for r := 0; r < shape.rows; r++ {
			want := Dot(mat[r*shape.cols:(r+1)*shape.cols], x)
			if math.Abs(dst[r]-want) > 1e-9*(1+math.Abs(want)) {
				t.Errorf("shape %dx%d row %d: kernel %v, Dot %v", shape.rows, shape.cols, r, dst[r], want)
			}
		}
	}
}

// TestMatMulRowsIntoMatchesDot covers the 4-source blocks, the 1–3 source
// tail, and column blocks wider than matBlockCols.
func TestMatMulRowsIntoMatchesDot(t *testing.T) {
	for _, shape := range []struct{ rows, cols, nsrc int }{
		{5, 11, 1}, {5, 11, 4}, {5, 11, 6}, {192, 50, 9}, {3, 2500, 5},
	} {
		mat, srcs := randMatAndSrcs(uint64(shape.rows+shape.cols*31+shape.nsrc*7), shape.rows, shape.cols, shape.nsrc)
		dst := make([]float64, shape.nsrc*shape.rows)
		// Poison dst: the kernel must fully overwrite it.
		for i := range dst {
			dst[i] = math.NaN()
		}
		MatMulRowsInto(dst, mat, shape.rows, shape.cols, srcs)
		for s := 0; s < shape.nsrc; s++ {
			for r := 0; r < shape.rows; r++ {
				want := Dot(mat[r*shape.cols:(r+1)*shape.cols], srcs[s])
				got := dst[s*shape.rows+r]
				if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					t.Errorf("shape %+v src %d row %d: kernel %v, Dot %v", shape, s, r, got, want)
				}
			}
		}
	}
}

func TestMatMulRowsIntoEmptySrcs(t *testing.T) {
	mat := []float64{1, 2, 3, 4}
	MatMulRowsInto(nil, mat, 2, 2, nil) // must not panic
}

func TestBlockedKernelPanics(t *testing.T) {
	mat := make([]float64, 4)
	for _, fn := range []func(){
		func() { MatVecRowsInto(make([]float64, 2), mat, 2, 2, make([]float64, 3)) },
		func() { MatVecRowsInto(make([]float64, 1), mat, 2, 2, make([]float64, 2)) },
		func() { MatMulRowsInto(make([]float64, 1), mat, 2, 2, [][]float64{{1, 2}, {3, 4}}) },
		func() { MatMulRowsInto(make([]float64, 4), mat, 2, 2, [][]float64{{1, 2, 3}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on shape mismatch")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkMatMulRows(b *testing.B) {
	mat, srcs := randMatAndSrcs(1, 192, 50, 64)
	dst := make([]float64, len(srcs)*192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulRowsInto(dst, mat, 192, 50, srcs)
	}
}
