package vecmath

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/imgrn/imgrn/internal/randgen"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Errorf("Dot(nil, nil) = %v, want 0", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm(t *testing.T) {
	if got := Norm([]float64{3, 4}); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
}

func TestMeanVariance(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Mean(x); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
	if got := Variance(x); got != 1.25 {
		t.Errorf("Variance = %v, want 1.25", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("Mean/Variance of empty slice should be 0")
	}
}

func TestEuclidean(t *testing.T) {
	x := []float64{0, 0}
	y := []float64{3, 4}
	if got := Euclidean(x, y); got != 5 {
		t.Errorf("Euclidean = %v, want 5", got)
	}
	if got := SquaredEuclidean(x, y); got != 25 {
		t.Errorf("SquaredEuclidean = %v, want 25", got)
	}
}

func TestStandardize(t *testing.T) {
	x := []float64{1, 5, -3, 7, 2}
	if !Standardize(x) {
		t.Fatal("Standardize returned false for varied vector")
	}
	if !IsStandardized(x, 1e-12) {
		t.Errorf("vector not standardized: mean=%v norm=%v", Mean(x), Norm(x))
	}
}

func TestStandardizeConstantVector(t *testing.T) {
	x := []float64{2, 2, 2}
	if Standardize(x) {
		t.Error("Standardize should return false for a constant vector")
	}
	for _, v := range x {
		if v != 0 {
			t.Errorf("constant vector should map to zero vector, got %v", x)
		}
	}
}

func TestStandardizedCopyDoesNotMutate(t *testing.T) {
	x := []float64{1, 2, 3}
	c, ok := StandardizedCopy(x)
	if !ok {
		t.Fatal("expected ok")
	}
	if x[0] != 1 || x[1] != 2 || x[2] != 3 {
		t.Error("StandardizedCopy mutated its input")
	}
	if !IsStandardized(c, 1e-12) {
		t.Error("copy not standardized")
	}
}

func TestPearsonKnownValues(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10} // perfectly correlated
	if got := Pearson(x, y); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Pearson = %v, want 1", got)
	}
	z := []float64{10, 8, 6, 4, 2} // perfectly anti-correlated
	if got := Pearson(x, z); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Pearson = %v, want -1", got)
	}
	if got := AbsPearson(x, z); !almostEqual(got, 1, 1e-12) {
		t.Errorf("AbsPearson = %v, want 1", got)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	x := []float64{1, 1, 1}
	y := []float64{1, 2, 3}
	if got := Pearson(x, y); got != 0 {
		t.Errorf("Pearson with constant vector = %v, want 0", got)
	}
}

func TestPearsonSymmetry(t *testing.T) {
	rng := randgen.New(1)
	for i := 0; i < 50; i++ {
		x := randomVector(rng, 10)
		y := randomVector(rng, 10)
		if a, b := Pearson(x, y), Pearson(y, x); !almostEqual(a, b, 1e-12) {
			t.Fatalf("Pearson asymmetric: %v vs %v", a, b)
		}
	}
}

// TestDistanceCorrelationIdentity verifies the Lemma-1 identity behind the
// whole Euclidean reduction: for standardized vectors,
// dist² = 2·(1 − cor).
func TestDistanceCorrelationIdentity(t *testing.T) {
	rng := randgen.New(2)
	f := func(seed uint64) bool {
		r := randgen.New(seed ^ rng.Uint64())
		x := randomVector(r, 12)
		y := randomVector(r, 12)
		Standardize(x)
		Standardize(y)
		cor := Dot(x, y)
		d2 := SquaredEuclidean(x, y)
		return almostEqual(d2, 2*(1-cor), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCorrelationDistanceRoundTrip(t *testing.T) {
	for _, cor := range []float64{-1, -0.5, 0, 0.3, 0.99, 1} {
		d := DistanceFromCorrelation(cor)
		if got := CorrelationFromDistance(d); !almostEqual(got, cor, 1e-12) {
			t.Errorf("round trip of cor=%v gives %v", cor, got)
		}
	}
}

func TestScaleAXPYClone(t *testing.T) {
	x := []float64{1, 2}
	Scale(x, 3)
	if x[0] != 3 || x[1] != 6 {
		t.Errorf("Scale: got %v", x)
	}
	y := []float64{1, 1}
	AXPY(2, x, y)
	if y[0] != 7 || y[1] != 13 {
		t.Errorf("AXPY: got %v", y)
	}
	c := Clone(y)
	c[0] = 99
	if y[0] == 99 {
		t.Error("Clone aliases its input")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", lo, hi)
	}
}

func TestMinMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MinMax(nil)
}

func randomVector(rng *randgen.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Gaussian(0, 1)
	}
	return v
}
