package vecmath

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/imgrn/imgrn/internal/randgen"
)

func TestNewMatrixFromRows(t *testing.T) {
	m, err := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows != 3 || m.Cols != 2 {
		t.Fatalf("shape = %dx%d, want 3x2", m.Rows, m.Cols)
	}
	if m.At(2, 1) != 6 {
		t.Errorf("At(2,1) = %v, want 6", m.At(2, 1))
	}
}

func TestNewMatrixFromRowsRagged(t *testing.T) {
	_, err := NewMatrixFromRows([][]float64{{1, 2}, {3}})
	if !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("err = %v, want ErrDimensionMismatch", err)
	}
}

func TestRowColSetCol(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if r := m.Row(1); r[0] != 3 || r[1] != 4 {
		t.Errorf("Row(1) = %v", r)
	}
	if c := m.Col(0); c[0] != 1 || c[1] != 3 {
		t.Errorf("Col(0) = %v", c)
	}
	m.SetCol(1, []float64{9, 8})
	if m.At(0, 1) != 9 || m.At(1, 1) != 8 {
		t.Error("SetCol did not update values")
	}
	// Row aliases storage; Col copies.
	m.Row(0)[0] = 42
	if m.At(0, 0) != 42 {
		t.Error("Row should alias storage")
	}
	c := m.Col(0)
	c[0] = -1
	if m.At(0, 0) == -1 {
		t.Error("Col should copy")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape = %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulIdentityProperty(t *testing.T) {
	rng := randgen.New(3)
	f := func(seed uint64) bool {
		r := randgen.New(seed ^ rng.Uint64())
		n := 1 + r.Intn(6)
		a := randomMatrix(r, n, n)
		ai, err := Mul(a, Identity(n))
		if err != nil {
			return false
		}
		for i, v := range a.Data {
			if !almostEqual(v, ai.Data[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := Mul(a, b); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("err = %v, want ErrDimensionMismatch", err)
	}
}

func TestAddSub(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}})
	b, _ := NewMatrixFromRows([][]float64{{3, 5}})
	s, err := Add(a, b)
	if err != nil || s.At(0, 0) != 4 || s.At(0, 1) != 7 {
		t.Errorf("Add = %v (err %v)", s, err)
	}
	d, err := Sub(b, a)
	if err != nil || d.At(0, 0) != 2 || d.At(0, 1) != 3 {
		t.Errorf("Sub = %v (err %v)", d, err)
	}
	if _, err := Add(a, NewMatrix(2, 2)); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("Add should reject shape mismatch")
	}
	if _, err := Sub(a, NewMatrix(2, 2)); !errors.Is(err, ErrDimensionMismatch) {
		t.Error("Sub should reject shape mismatch")
	}
}

func TestInverseKnown(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := Inverse(m)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{0.6, -0.7}, {-0.2, 0.4}}
	for i := range want {
		for j := range want[i] {
			if !almostEqual(inv.At(i, j), want[i][j], 1e-12) {
				t.Errorf("inv[%d][%d] = %v, want %v", i, j, inv.At(i, j), want[i][j])
			}
		}
	}
}

func TestInverseSingular(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Inverse(m); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestInverseNonSquare(t *testing.T) {
	if _, err := Inverse(NewMatrix(2, 3)); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("err = %v, want ErrDimensionMismatch", err)
	}
}

// TestInverseProperty checks A·A⁻¹ = I on random diagonally dominant
// (hence well-conditioned) matrices.
func TestInverseProperty(t *testing.T) {
	rng := randgen.New(4)
	f := func(seed uint64) bool {
		r := randgen.New(seed ^ rng.Uint64())
		n := 1 + r.Intn(8)
		a := randomMatrix(r, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1) // diagonal dominance
		}
		inv, err := Inverse(a)
		if err != nil {
			return false
		}
		prod, err := Mul(a, inv)
		if err != nil {
			return false
		}
		id := Identity(n)
		for i, v := range prod.Data {
			if !almostEqual(v, id.Data[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolveAgainstInverse(t *testing.T) {
	rng := randgen.New(5)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		a := randomMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		b := randomVector(rng, n)
		x, err := Solve(a, b)
		if err != nil {
			t.Fatal(err)
		}
		// Check a·x = b.
		for i := 0; i < n; i++ {
			if got := Dot(a.Row(i), x); !almostEqual(got, b[i], 1e-8) {
				t.Fatalf("Solve residual at row %d: %v vs %v", i, got, b[i])
			}
		}
	}
}

func TestSolveSingular(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestCorrelationMatrix(t *testing.T) {
	// Columns: x, 2x (cor 1), -x (cor -1 with both).
	m, _ := NewMatrixFromRows([][]float64{
		{1, 2, -1},
		{2, 4, -2},
		{3, 6, -3},
		{5, 10, -5},
	})
	r := CorrelationMatrix(m)
	if !almostEqual(r.At(0, 1), 1, 1e-9) {
		t.Errorf("cor(x,2x) = %v, want 1", r.At(0, 1))
	}
	if !almostEqual(r.At(0, 2), -1, 1e-9) {
		t.Errorf("cor(x,-x) = %v, want -1", r.At(0, 2))
	}
	for i := 0; i < 3; i++ {
		if r.At(i, i) != 1 {
			t.Errorf("diag[%d] = %v, want 1", i, r.At(i, i))
		}
		for j := 0; j < 3; j++ {
			if r.At(i, j) != r.At(j, i) {
				t.Error("correlation matrix not symmetric")
			}
		}
	}
}

// TestPartialCorrelationsChain checks the defining property of partial
// correlation on a causal chain x → y → z: cor(x, z) is high but the
// partial correlation controlling for y vanishes.
func TestPartialCorrelationsChain(t *testing.T) {
	rng := randgen.New(6)
	l := 4000
	m := NewMatrix(l, 3)
	for i := 0; i < l; i++ {
		x := rng.Gaussian(0, 1)
		y := 0.9*x + rng.Gaussian(0, 0.3)
		z := 0.9*y + rng.Gaussian(0, 0.3)
		m.Set(i, 0, x)
		m.Set(i, 1, y)
		m.Set(i, 2, z)
	}
	cm := CorrelationMatrix(m)
	if math.Abs(cm.At(0, 2)) < 0.5 {
		t.Fatalf("chain should induce marginal correlation, got %v", cm.At(0, 2))
	}
	pc, err := PartialCorrelations(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pc.At(0, 2)) > 0.1 {
		t.Errorf("pcor(x,z|y) = %v, want ≈ 0", pc.At(0, 2))
	}
	if math.Abs(pc.At(0, 1)) < 0.5 {
		t.Errorf("pcor(x,y|z) = %v, want strong", pc.At(0, 1))
	}
}

func TestPartialCorrelationsRidgeRescuesSingular(t *testing.T) {
	// Two identical columns make the correlation matrix singular.
	m, _ := NewMatrixFromRows([][]float64{
		{1, 1, 2}, {2, 2, 1}, {3, 3, 5}, {4, 4, 2},
	})
	if _, err := PartialCorrelations(m, 0); err == nil {
		t.Skip("correlation matrix unexpectedly invertible") // numeric luck
	}
	if _, err := PartialCorrelations(m, 1e-2); err != nil {
		t.Errorf("ridge should rescue singularity: %v", err)
	}
}

func randomMatrix(rng *randgen.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Gaussian(0, 1)
	}
	return m
}
