package vecmath

// Blocked inner-product kernels for the batched Monte Carlo inference path
// (DESIGN.md §9). The hot object is a row-major "permutation matrix": R
// rows of length l, each row one randomized copy of a target gene vector.
// Computing the R inner products of a source vector against those rows is
// a mat-vec; computing them for a block of source vectors is a mat-mat.
// Both kernels below are cache-blocked over columns and unrolled so the
// permutation matrix is streamed once per four source vectors instead of
// once per pair, which is where the batched estimator gets its arithmetic
// density.

// matBlockCols is the column block width of the kernels: a 4-row working
// set of this width is 4·2048·8 B = 64 KiB, sized so one block of the
// permutation matrix plus the source vectors stay cache-resident while
// the accumulators live in registers.
const matBlockCols = 2048

// MatVecRowsInto computes dst[r] = ⟨mat row r, x⟩ for every row of the
// rows×cols row-major matrix mat. dst must have length ≥ rows and x
// length cols. Rows are processed four at a time with independent
// accumulators so x is re-read from cache, not memory.
func MatVecRowsInto(dst, mat []float64, rows, cols int, x []float64) {
	if len(x) != cols {
		panic("vecmath: MatVecRowsInto x length mismatch")
	}
	if len(mat) < rows*cols {
		panic("vecmath: MatVecRowsInto matrix too short")
	}
	if len(dst) < rows {
		panic("vecmath: MatVecRowsInto dst too short")
	}
	r := 0
	for ; r+4 <= rows; r += 4 {
		r0 := mat[(r+0)*cols : (r+1)*cols]
		r1 := mat[(r+1)*cols : (r+2)*cols]
		r2 := mat[(r+2)*cols : (r+3)*cols]
		r3 := mat[(r+3)*cols : (r+4)*cols]
		var s0, s1, s2, s3 float64
		for i, xv := range x {
			s0 += r0[i] * xv
			s1 += r1[i] * xv
			s2 += r2[i] * xv
			s3 += r3[i] * xv
		}
		dst[r], dst[r+1], dst[r+2], dst[r+3] = s0, s1, s2, s3
	}
	for ; r < rows; r++ {
		dst[r] = Dot(mat[r*cols:(r+1)*cols], x)
	}
}

// MatMulRowsInto computes the inner products of every source vector in
// srcs against every row of the rows×cols row-major matrix mat:
//
//	dst[si*rows + r] = ⟨srcs[si], mat row r⟩.
//
// dst must have length ≥ len(srcs)*rows and every source length cols.
// Sources are processed in blocks of four sharing one streaming pass over
// a column block of mat (the blocked mat-mat of the inference kernel), so
// the matrix traffic per source is a quarter of the naive mat-vec loop.
func MatMulRowsInto(dst, mat []float64, rows, cols int, srcs [][]float64) {
	if len(mat) < rows*cols {
		panic("vecmath: MatMulRowsInto matrix too short")
	}
	if len(dst) < len(srcs)*rows {
		panic("vecmath: MatMulRowsInto dst too short")
	}
	for si, x := range srcs {
		if len(x) != cols {
			panic("vecmath: MatMulRowsInto source length mismatch")
		}
		_ = si
	}
	n := len(srcs) * rows
	for i := range dst[:n] {
		dst[i] = 0
	}
	for c0 := 0; c0 < cols; c0 += matBlockCols {
		c1 := c0 + matBlockCols
		if c1 > cols {
			c1 = cols
		}
		si := 0
		for ; si+4 <= len(srcs); si += 4 {
			x0 := srcs[si+0][c0:c1]
			x1 := srcs[si+1][c0:c1]
			x2 := srcs[si+2][c0:c1]
			x3 := srcs[si+3][c0:c1]
			d0 := dst[(si+0)*rows : (si+1)*rows]
			d1 := dst[(si+1)*rows : (si+2)*rows]
			d2 := dst[(si+2)*rows : (si+3)*rows]
			d3 := dst[(si+3)*rows : (si+4)*rows]
			for r := 0; r < rows; r++ {
				row := mat[r*cols+c0 : r*cols+c1]
				var s0, s1, s2, s3 float64
				for i, v := range row {
					s0 += v * x0[i]
					s1 += v * x1[i]
					s2 += v * x2[i]
					s3 += v * x3[i]
				}
				d0[r] += s0
				d1[r] += s1
				d2[r] += s2
				d3[r] += s3
			}
		}
		for ; si < len(srcs); si++ {
			x := srcs[si][c0:c1]
			d := dst[si*rows : (si+1)*rows]
			for r := 0; r < rows; r++ {
				row := mat[r*cols+c0 : r*cols+c1]
				var s float64
				for i, v := range row {
					s += v * x[i]
				}
				d[r] += s
			}
		}
	}
}
