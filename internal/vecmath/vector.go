// Package vecmath provides the dense vector and matrix arithmetic the
// IM-GRN system is built on: standardization of gene feature vectors,
// Pearson correlation, Euclidean distances, and the small dense linear
// algebra (matrix products, Gauss–Jordan inversion) required by the
// synthetic data generator and the partial-correlation inference measure.
//
// All routines operate on float64 slices in row-major order and are
// allocation-conscious: hot-path functions accept destination buffers so the
// query processor can avoid per-edge allocations.
package vecmath

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when two vectors or matrices with
// incompatible shapes are combined.
var ErrDimensionMismatch = errors.New("vecmath: dimension mismatch")

// Dot returns the inner product of x and y.
// It panics if the lengths differ; callers validate shapes at ingestion time.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecmath: Dot length mismatch %d != %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Norm returns the Euclidean (L2) norm of x.
func Norm(x []float64) float64 {
	return math.Sqrt(Dot(x, x))
}

// Mean returns the arithmetic mean of x. It returns 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x (divides by len(x)).
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// Euclidean returns the Euclidean distance between x and y.
func Euclidean(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecmath: Euclidean length mismatch %d != %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// SquaredEuclidean returns the squared Euclidean distance between x and y.
func SquaredEuclidean(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecmath: SquaredEuclidean length mismatch %d != %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		d := v - y[i]
		s += d * d
	}
	return s
}

// Standardize rescales x in place to zero mean and unit L2 norm, the
// normal form assumed by Lemma 1 of the paper: after standardization
//
//	r(Xs, Xt) = |Xs · Xt|   and   dist²(Xs, Xt) = 2·(1 − Xs·Xt) ≤ 4.
//
// A vector with (numerically) zero variance cannot be standardized; it is
// mapped to the zero vector and false is returned so callers can treat the
// gene as uninformative (it correlates with nothing).
func Standardize(x []float64) bool {
	m := Mean(x)
	for i := range x {
		x[i] -= m
	}
	n := Norm(x)
	if n < 1e-30 {
		for i := range x {
			x[i] = 0
		}
		return false
	}
	inv := 1 / n
	for i := range x {
		x[i] *= inv
	}
	return true
}

// StandardizedCopy returns a standardized copy of x and whether the vector
// had usable variance (see Standardize).
func StandardizedCopy(x []float64) ([]float64, bool) {
	c := make([]float64, len(x))
	copy(c, x)
	ok := Standardize(c)
	return c, ok
}

// IsStandardized reports whether x has zero mean and unit norm within tol.
func IsStandardized(x []float64, tol float64) bool {
	return math.Abs(Mean(x)) <= tol && math.Abs(Norm(x)-1) <= tol
}

// Pearson returns the (signed) Pearson correlation coefficient between x
// and y. Either vector having zero variance yields a correlation of 0.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("vecmath: Pearson length mismatch %d != %d", len(x), len(y)))
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	den := math.Sqrt(sxx) * math.Sqrt(syy)
	if den < 1e-30 {
		return 0
	}
	r := sxy / den
	// Clamp away floating-point excursions outside [-1, 1].
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	return r
}

// AbsPearson returns |Pearson(x, y)|, the paper's correlation score
// r(Xs, Xt) of Eq. (2).
func AbsPearson(x, y []float64) float64 {
	return math.Abs(Pearson(x, y))
}

// CorrelationFromDistance converts the Euclidean distance between two
// standardized (zero-mean unit-norm) vectors back to their signed Pearson
// correlation using dist² = 2·(1 − cor), the identity behind Lemma 1.
func CorrelationFromDistance(dist float64) float64 {
	return 1 - dist*dist/2
}

// DistanceFromCorrelation is the inverse of CorrelationFromDistance.
func DistanceFromCorrelation(cor float64) float64 {
	d2 := 2 * (1 - cor)
	if d2 < 0 {
		d2 = 0
	}
	return math.Sqrt(d2)
}

// Scale multiplies every element of x by a, in place.
func Scale(x []float64, a float64) {
	for i := range x {
		x[i] *= a
	}
}

// AXPY computes y[i] += a*x[i] in place.
func AXPY(a float64, x, y []float64) {
	if len(x) != len(y) {
		panic("vecmath: AXPY length mismatch")
	}
	for i, v := range x {
		y[i] += a * v
	}
}

// Clone returns a copy of x.
func Clone(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}

// MinMax returns the minimum and maximum of x. It panics on empty input.
func MinMax(x []float64) (lo, hi float64) {
	if len(x) == 0 {
		panic("vecmath: MinMax of empty slice")
	}
	lo, hi = x[0], x[0]
	for _, v := range x[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
