package vecmath

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
//
// The zero value is an empty matrix. Use NewMatrix to allocate.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix allocates a Rows×Cols zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("vecmath: NewMatrix negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from a slice of equal-length rows.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return NewMatrix(0, 0), nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("vecmath: row %d has %d columns, want %d: %w", i, len(r), cols, ErrDimensionMismatch)
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Col copies column j into a new slice.
func (m *Matrix) Col(j int) []float64 {
	c := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		c[i] = m.Data[i*m.Cols+j]
	}
	return c
}

// SetCol overwrites column j with v.
func (m *Matrix) SetCol(j int, v []float64) {
	if len(v) != m.Rows {
		panic("vecmath: SetCol length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+j] = v[i]
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Transpose returns mᵀ as a new matrix.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*m.Rows+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Mul returns the matrix product a·b.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("vecmath: Mul %dx%d by %dx%d: %w", a.Rows, a.Cols, b.Rows, b.Cols, ErrDimensionMismatch)
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		orow := out.Data[i*b.Cols : (i+1)*b.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// Sub returns a − b element-wise.
func Sub(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("vecmath: Sub %dx%d vs %dx%d: %w", a.Rows, a.Cols, b.Rows, b.Cols, ErrDimensionMismatch)
	}
	out := NewMatrix(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v - b.Data[i]
	}
	return out, nil
}

// Add returns a + b element-wise.
func Add(a, b *Matrix) (*Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("vecmath: Add %dx%d vs %dx%d: %w", a.Rows, a.Cols, b.Rows, b.Cols, ErrDimensionMismatch)
	}
	out := NewMatrix(a.Rows, a.Cols)
	for i, v := range a.Data {
		out.Data[i] = v + b.Data[i]
	}
	return out, nil
}

// ErrSingular is returned by Inverse when the matrix is numerically singular.
var ErrSingular = fmt.Errorf("vecmath: singular matrix")

// Inverse returns m⁻¹ computed by Gauss–Jordan elimination with partial
// pivoting. The synthetic data generator uses it to evaluate the paper's
// linear model M = E·(I − B)⁻¹.
func Inverse(m *Matrix) (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("vecmath: Inverse of %dx%d: %w", m.Rows, m.Cols, ErrDimensionMismatch)
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Partial pivoting: pick the row with the largest magnitude in col.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Normalize the pivot row.
		p := a.At(col, col)
		Scale(a.Row(col), 1/p)
		Scale(inv.Row(col), 1/p)
		// Eliminate col from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			AXPY(-f, a.Row(col), a.Row(r))
			AXPY(-f, inv.Row(col), inv.Row(r))
		}
	}
	return inv, nil
}

func swapRows(m *Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Solve solves the linear system a·x = b for x (b and x are column vectors)
// using Gaussian elimination with partial pivoting.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols || a.Rows != len(b) {
		return nil, ErrDimensionMismatch
	}
	n := a.Rows
	aa := a.Clone()
	x := Clone(b)
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(aa.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aa.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(aa, pivot, col)
			x[pivot], x[col] = x[col], x[pivot]
		}
		p := aa.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aa.At(r, col) / p
			if f == 0 {
				continue
			}
			AXPY(-f, aa.Row(col), aa.Row(r))
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= aa.At(i, j) * x[j]
		}
		x[i] = s / aa.At(i, i)
	}
	return x, nil
}

// CorrelationMatrix returns the n×n matrix of signed Pearson correlations
// between the columns of m (each column is one gene's feature vector).
func CorrelationMatrix(m *Matrix) *Matrix {
	n := m.Cols
	cols := make([][]float64, n)
	for j := 0; j < n; j++ {
		c := m.Col(j)
		Standardize(c)
		cols[j] = c
	}
	out := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		out.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			r := Dot(cols[i], cols[j])
			if r > 1 {
				r = 1
			} else if r < -1 {
				r = -1
			}
			out.Set(i, j, r)
			out.Set(j, i, r)
		}
	}
	return out
}

// PartialCorrelations returns the matrix of pairwise partial correlations of
// the columns of m, controlling for all remaining columns. It is computed
// from the precision matrix P = R⁻¹ of the correlation matrix R via
//
//	pcor(i, j) = −P[i][j] / sqrt(P[i][i]·P[j][j]).
//
// When R is singular (e.g. more genes than samples) a ridge of eps is added
// to the diagonal, the standard regularization for microarray data. This is
// the pCorr competitor of the paper's Appendix H.
func PartialCorrelations(m *Matrix, eps float64) (*Matrix, error) {
	r := CorrelationMatrix(m)
	n := r.Rows
	if eps > 0 {
		for i := 0; i < n; i++ {
			r.Set(i, i, r.At(i, i)+eps)
		}
	}
	p, err := Inverse(r)
	if err != nil {
		return nil, fmt.Errorf("vecmath: partial correlation: %w", err)
	}
	out := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		out.Set(i, i, 1)
		for j := i + 1; j < n; j++ {
			den := math.Sqrt(p.At(i, i) * p.At(j, j))
			var pc float64
			if den > 1e-30 {
				pc = -p.At(i, j) / den
			}
			if pc > 1 {
				pc = 1
			} else if pc < -1 {
				pc = -1
			}
			out.Set(i, j, pc)
			out.Set(j, i, pc)
		}
	}
	return out, nil
}
