package rstar

import (
	"testing"
	"testing/quick"

	"github.com/imgrn/imgrn/internal/pagestore"
	"github.com/imgrn/imgrn/internal/randgen"
)

func randomItems(rng *randgen.Rand, n, dim int) []Item {
	items := make([]Item, n)
	for i := range items {
		p := make([]float64, dim)
		for d := range p {
			p[d] = rng.UniformIn(-100, 100)
		}
		items[i] = Item{Point: p, Ref: uint64(i)}
	}
	return items
}

func bruteSearch(items []Item, r Rect) map[uint64]bool {
	out := make(map[uint64]bool)
	for _, it := range items {
		if r.ContainsPoint(it.Point) {
			out[it.Ref] = true
		}
	}
	return out
}

func searchSet(t *Tree, r Rect) map[uint64]bool {
	out := make(map[uint64]bool)
	for _, it := range t.Search(r, nil) {
		out[it.Ref] = true
	}
	return out
}

func sameRefs(a, b map[uint64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestNewTreeValidation(t *testing.T) {
	if _, err := NewTree(Config{Dim: 0}); err == nil {
		t.Error("zero dim should error")
	}
	if _, err := NewTree(Config{Dim: 2, MaxFill: 3}); err == nil {
		t.Error("tiny MaxFill should error")
	}
	if _, err := NewTree(Config{Dim: 2, MaxFill: 10, MinFill: 6}); err == nil {
		t.Error("MinFill > MaxFill/2 should error")
	}
}

func TestInsertSearchMatchesBruteForce(t *testing.T) {
	rng := randgen.New(100)
	tree, err := NewTree(Config{Dim: 3, MaxFill: 8})
	if err != nil {
		t.Fatal(err)
	}
	items := randomItems(rng, 500, 3)
	for _, it := range items {
		if err := tree.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Size() != 500 {
		t.Fatalf("Size = %d", tree.Size())
	}
	if msg := tree.CheckInvariants(); msg != "" {
		t.Fatalf("invariants violated: %s", msg)
	}
	for q := 0; q < 50; q++ {
		lo := []float64{rng.UniformIn(-100, 50), rng.UniformIn(-100, 50), rng.UniformIn(-100, 50)}
		hi := []float64{lo[0] + rng.UniformIn(0, 80), lo[1] + rng.UniformIn(0, 80), lo[2] + rng.UniformIn(0, 80)}
		r := Rect{Min: lo, Max: hi}
		if !sameRefs(searchSet(tree, r), bruteSearch(items, r)) {
			t.Fatalf("query %d: search mismatch", q)
		}
	}
}

func TestInsertRejectsWrongDim(t *testing.T) {
	tree, _ := NewTree(Config{Dim: 2})
	if err := tree.Insert(Item{Point: []float64{1, 2, 3}}); err == nil {
		t.Error("wrong-dimension insert should error")
	}
}

func TestBulkLoadMatchesBruteForce(t *testing.T) {
	rng := randgen.New(101)
	tree, err := NewTree(Config{Dim: 2, MaxFill: 16})
	if err != nil {
		t.Fatal(err)
	}
	items := randomItems(rng, 2000, 2)
	if err := tree.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 2000 {
		t.Fatalf("Size = %d", tree.Size())
	}
	if msg := tree.CheckInvariants(); msg != "" {
		t.Fatalf("invariants violated: %s", msg)
	}
	for q := 0; q < 50; q++ {
		lo := []float64{rng.UniformIn(-100, 50), rng.UniformIn(-100, 50)}
		hi := []float64{lo[0] + rng.UniformIn(0, 100), lo[1] + rng.UniformIn(0, 100)}
		r := Rect{Min: lo, Max: hi}
		if !sameRefs(searchSet(tree, r), bruteSearch(items, r)) {
			t.Fatalf("query %d: search mismatch", q)
		}
	}
}

func TestBulkLoadEmptyAndSingle(t *testing.T) {
	tree, _ := NewTree(Config{Dim: 2})
	if err := tree.BulkLoad(nil); err != nil {
		t.Fatal(err)
	}
	if tree.Size() != 0 || tree.Height() != 1 {
		t.Error("empty bulk load wrong")
	}
	if err := tree.BulkLoad([]Item{{Point: []float64{1, 1}, Ref: 9}}); err != nil {
		t.Fatal(err)
	}
	got := tree.Search(NewRect([]float64{1, 1}), nil)
	if len(got) != 1 || got[0].Ref != 9 {
		t.Errorf("single item search = %v", got)
	}
}

func TestBulkLoadRejectsWrongDim(t *testing.T) {
	tree, _ := NewTree(Config{Dim: 2})
	if err := tree.BulkLoad([]Item{{Point: []float64{1}}}); err == nil {
		t.Error("wrong-dimension bulk load should error")
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	rng := randgen.New(102)
	tree, _ := NewTree(Config{Dim: 2, MaxFill: 8})
	items := randomItems(rng, 1000, 2)
	for _, it := range items {
		tree.Insert(it)
	}
	h := tree.Height()
	if h < 3 || h > 7 {
		t.Errorf("height = %d for 1000 items at fanout 8", h)
	}
}

func TestDuplicatePointsSupported(t *testing.T) {
	tree, _ := NewTree(Config{Dim: 2, MaxFill: 4})
	for i := 0; i < 50; i++ {
		if err := tree.Insert(Item{Point: []float64{1, 1}, Ref: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(tree.Search(NewRect([]float64{1, 1}), nil)); got != 50 {
		t.Errorf("found %d duplicates, want 50", got)
	}
	if msg := tree.CheckInvariants(); msg != "" {
		t.Errorf("invariants violated: %s", msg)
	}
}

func TestWalkOrders(t *testing.T) {
	rng := randgen.New(103)
	tree, _ := NewTree(Config{Dim: 2, MaxFill: 6})
	tree.BulkLoad(randomItems(rng, 300, 2))
	// Walk: parents before children.
	depth := map[*Node]int{}
	order := []*Node{}
	tree.Walk(func(n *Node) bool {
		order = append(order, n)
		return true
	})
	depth[order[0]] = 0
	// Bottom-up: children before parents.
	seen := map[*Node]bool{}
	tree.WalkBottomUp(func(n *Node) {
		if !n.IsLeaf() {
			for i := 0; i < n.NumEntries(); i++ {
				if !seen[n.Child(i)] {
					t.Fatal("WalkBottomUp visited parent before child")
				}
			}
		}
		seen[n] = true
	})
	if len(seen) != tree.NodeCount() {
		t.Errorf("bottom-up visited %d nodes, tree has %d", len(seen), tree.NodeCount())
	}
}

func TestWalkPrune(t *testing.T) {
	rng := randgen.New(104)
	tree, _ := NewTree(Config{Dim: 2, MaxFill: 6})
	tree.BulkLoad(randomItems(rng, 300, 2))
	count := 0
	tree.Walk(func(n *Node) bool {
		count++
		return false // prune everything below the root
	})
	if count != 1 {
		t.Errorf("pruned walk visited %d nodes, want 1", count)
	}
}

func TestAssignPagesAndTouch(t *testing.T) {
	rng := randgen.New(105)
	tree, _ := NewTree(Config{Dim: 2, MaxFill: 8})
	tree.BulkLoad(randomItems(rng, 200, 2))
	acc := pagestore.New(512, 0)
	total := tree.AssignPages(acc)
	if total <= 0 {
		t.Fatal("no pages assigned")
	}
	root := tree.Root()
	if root.Pages() <= 0 {
		t.Fatal("root has no pages")
	}
	TouchNode(acc, root)
	if got := acc.Stats().Accesses; got != uint64(root.Pages()) {
		t.Errorf("touch accesses = %d, want %d", got, root.Pages())
	}
	// Nil accountant and unassigned nodes are safe no-ops.
	TouchNode(nil, root)
	fresh, _ := NewTree(Config{Dim: 2})
	TouchNode(acc, fresh.Root())
}

func TestNodeAccessors(t *testing.T) {
	rng := randgen.New(106)
	tree, _ := NewTree(Config{Dim: 2, MaxFill: 6})
	tree.BulkLoad(randomItems(rng, 100, 2))
	root := tree.Root()
	if root.IsLeaf() {
		t.Fatal("100 items at fanout 6 should not fit one leaf")
	}
	if root.Level() != tree.Height()-1 {
		t.Errorf("root level = %d, height = %d", root.Level(), tree.Height())
	}
	for i := 0; i < root.NumEntries(); i++ {
		child := root.Child(i)
		if !root.EntryMBR(i).ContainsRect(child.MBR()) {
			t.Error("entry MBR does not bound child")
		}
	}
}

// TestInsertSearchProperty drives random workloads through the tree.
func TestInsertSearchProperty(t *testing.T) {
	rng := randgen.New(107)
	f := func(seed uint64) bool {
		r := randgen.New(seed ^ rng.Uint64())
		dim := 1 + r.Intn(4)
		tree, err := NewTree(Config{Dim: dim, MaxFill: 4 + r.Intn(12)})
		if err != nil {
			return false
		}
		items := randomItems(r, 50+r.Intn(200), dim)
		if r.Float64() < 0.5 {
			if err := tree.BulkLoad(items); err != nil {
				return false
			}
		} else {
			for _, it := range items {
				if err := tree.Insert(it); err != nil {
					return false
				}
			}
		}
		if tree.CheckInvariants() != "" {
			return false
		}
		lo := make([]float64, dim)
		hi := make([]float64, dim)
		for d := 0; d < dim; d++ {
			lo[d] = r.UniformIn(-100, 50)
			hi[d] = lo[d] + r.UniformIn(0, 100)
		}
		rect := Rect{Min: lo, Max: hi}
		return sameRefs(searchSet(tree, rect), bruteSearch(items, rect))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMixedInsertAfterBulkLoad(t *testing.T) {
	rng := randgen.New(108)
	tree, _ := NewTree(Config{Dim: 2, MaxFill: 8})
	items := randomItems(rng, 300, 2)
	tree.BulkLoad(items[:200])
	for _, it := range items[200:] {
		if err := tree.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	if tree.Size() != 300 {
		t.Fatalf("Size = %d", tree.Size())
	}
	if msg := tree.CheckInvariants(); msg != "" {
		t.Fatalf("invariants violated: %s", msg)
	}
	all := Rect{Min: []float64{-1000, -1000}, Max: []float64{1000, 1000}}
	if got := len(tree.Search(all, nil)); got != 300 {
		t.Errorf("full search found %d", got)
	}
}
