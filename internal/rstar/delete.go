package rstar

// Delete removes the first stored item with an equal point and reference,
// using the classic R-tree deletion algorithm: find the leaf, remove the
// entry, condense the tree (underfull nodes are dissolved and their
// remaining entries reinserted), and shrink the root when it is left with
// a single child. It reports whether an item was removed.
func (t *Tree) Delete(it Item) bool {
	if len(it.Point) != t.dim {
		return false
	}
	path, entryIdx := t.findLeaf(t.root, nil, it)
	if entryIdx < 0 {
		return false
	}
	leaf := path[len(path)-1]
	leaf.entries = append(leaf.entries[:entryIdx], leaf.entries[entryIdx+1:]...)
	t.size--
	t.condense(path)
	// Shrink the root: an internal root with one child is replaced by it.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
	}
	if len(t.root.entries) == 0 && !t.root.leaf {
		t.root = t.newNode(true, 0)
	}
	return true
}

// findLeaf locates the leaf containing it, returning the root-to-leaf path
// and the entry index, or (nil, -1).
func (t *Tree) findLeaf(n *Node, path []*Node, it Item) ([]*Node, int) {
	path = append(path, n)
	if n.leaf {
		for i := range n.entries {
			e := &n.entries[i]
			if e.item.Ref == it.Ref && pointsEqual(e.item.Point, it.Point) {
				return path, i
			}
		}
		return nil, -1
	}
	r := NewRect(it.Point)
	for i := range n.entries {
		if !n.entries[i].mbr.ContainsRect(r) {
			continue
		}
		if p, idx := t.findLeaf(n.entries[i].child, path, it); idx >= 0 {
			return p, idx
		}
	}
	return nil, -1
}

func pointsEqual(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// condense walks the path bottom-up: underfull non-root nodes are removed
// from their parents and their surviving entries queued for reinsertion at
// the original level; MBRs along the path are tightened.
func (t *Tree) condense(path []*Node) {
	type orphan struct {
		e     entry
		level int
	}
	var orphans []orphan
	for i := len(path) - 1; i > 0; i-- {
		n := path[i]
		parent := path[i-1]
		if len(n.entries) < t.minFill {
			// Detach n from its parent and orphan its entries.
			for j := range parent.entries {
				if parent.entries[j].child == n {
					parent.entries = append(parent.entries[:j], parent.entries[j+1:]...)
					break
				}
			}
			for _, e := range n.entries {
				orphans = append(orphans, orphan{e: e, level: n.level})
			}
			continue
		}
		n.recomputeMBR()
		for j := range parent.entries {
			if parent.entries[j].child == n {
				parent.entries[j].mbr = n.mbr.Clone()
				break
			}
		}
	}
	t.root.recomputeMBR()
	// Reinsert orphans at their original levels (leaf entries re-enter at
	// level 0; subtree entries re-enter so their leaves stay at depth 0).
	t.reinserting = true
	for _, o := range orphans {
		t.insertEntry(o.e, o.level)
	}
	t.reinserting = false
}
