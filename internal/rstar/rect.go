// Package rstar implements an R*-tree (Beckmann et al., SIGMOD 1990) over
// points of arbitrary dimensionality — the multidimensional index of
// Section 5.1. It supports R* insertion with forced reinsertion, the R*
// split heuristics, sort-tile-recursive bulk loading, range search, and a
// read-only node API that the IM-GRN query processor uses for its pairwise
// priority-queue traversal. Nodes can be mapped onto simulated disk pages
// for the I/O accounting of the evaluation.
package rstar

import (
	"fmt"
	"math"
)

// Rect is an axis-aligned minimum bounding rectangle in k dimensions.
type Rect struct {
	Min, Max []float64
}

// NewRect returns a degenerate rectangle covering the single point p.
func NewRect(p []float64) Rect {
	min := make([]float64, len(p))
	max := make([]float64, len(p))
	copy(min, p)
	copy(max, p)
	return Rect{Min: min, Max: max}
}

// EmptyRect returns the identity for Union in k dims (inverted bounds).
func EmptyRect(k int) Rect {
	min := make([]float64, k)
	max := make([]float64, k)
	for i := 0; i < k; i++ {
		min[i] = math.Inf(1)
		max[i] = math.Inf(-1)
	}
	return Rect{Min: min, Max: max}
}

// Dims returns the dimensionality.
func (r Rect) Dims() int { return len(r.Min) }

// Clone returns a deep copy.
func (r Rect) Clone() Rect {
	return Rect{Min: append([]float64(nil), r.Min...), Max: append([]float64(nil), r.Max...)}
}

// ExpandRect grows r in place to cover o.
func (r *Rect) ExpandRect(o Rect) {
	for i := range r.Min {
		if o.Min[i] < r.Min[i] {
			r.Min[i] = o.Min[i]
		}
		if o.Max[i] > r.Max[i] {
			r.Max[i] = o.Max[i]
		}
	}
}

// ExpandPoint grows r in place to cover point p.
func (r *Rect) ExpandPoint(p []float64) {
	for i := range r.Min {
		if p[i] < r.Min[i] {
			r.Min[i] = p[i]
		}
		if p[i] > r.Max[i] {
			r.Max[i] = p[i]
		}
	}
}

// Union returns the smallest rectangle covering both a and b.
func Union(a, b Rect) Rect {
	u := a.Clone()
	u.ExpandRect(b)
	return u
}

// Area returns the k-dimensional volume of r (0 for degenerate rects).
func (r Rect) Area() float64 {
	area := 1.0
	for i := range r.Min {
		side := r.Max[i] - r.Min[i]
		if side < 0 {
			return 0
		}
		area *= side
	}
	return area
}

// Margin returns the sum of edge lengths (the R* split axis criterion).
func (r Rect) Margin() float64 {
	var m float64
	for i := range r.Min {
		if side := r.Max[i] - r.Min[i]; side > 0 {
			m += side
		}
	}
	return m
}

// Enlargement returns the area growth needed for r to cover o.
func (r Rect) Enlargement(o Rect) float64 {
	return Union(r, o).Area() - r.Area()
}

// OverlapArea returns the volume of the intersection of a and b.
func OverlapArea(a, b Rect) float64 {
	area := 1.0
	for i := range a.Min {
		lo := math.Max(a.Min[i], b.Min[i])
		hi := math.Min(a.Max[i], b.Max[i])
		if hi <= lo {
			return 0
		}
		area *= hi - lo
	}
	return area
}

// Intersects reports whether a and b share any point.
func (a Rect) Intersects(b Rect) bool {
	for i := range a.Min {
		if a.Min[i] > b.Max[i] || b.Min[i] > a.Max[i] {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether p lies within r (inclusive).
func (r Rect) ContainsPoint(p []float64) bool {
	for i := range r.Min {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// ContainsRect reports whether o lies entirely within r.
func (r Rect) ContainsRect(o Rect) bool {
	for i := range r.Min {
		if o.Min[i] < r.Min[i] || o.Max[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// Center writes the rectangle center into dst and returns it.
func (r Rect) Center(dst []float64) []float64 {
	dst = dst[:len(r.Min)]
	for i := range r.Min {
		dst[i] = (r.Min[i] + r.Max[i]) / 2
	}
	return dst
}

// CenterDistance2 returns the squared distance between the centers of a
// and b (used by forced reinsertion ordering).
func CenterDistance2(a, b Rect) float64 {
	var s float64
	for i := range a.Min {
		d := (a.Min[i]+a.Max[i])/2 - (b.Min[i]+b.Max[i])/2
		s += d * d
	}
	return s
}

func (r Rect) String() string {
	return fmt.Sprintf("Rect{%v..%v}", r.Min, r.Max)
}
