package rstar

import "github.com/imgrn/imgrn/internal/pagestore"

// Search appends to out every item whose point lies inside r and returns
// the result. The order is deterministic (depth-first, entry order).
func (t *Tree) Search(r Rect, out []Item) []Item {
	return searchNode(t.root, r, out)
}

func searchNode(n *Node, r Rect, out []Item) []Item {
	for i := range n.entries {
		e := &n.entries[i]
		if !r.Intersects(e.mbr) {
			continue
		}
		if n.leaf {
			if r.ContainsPoint(e.item.Point) {
				out = append(out, e.item)
			}
		} else {
			out = searchNode(e.child, r, out)
		}
	}
	return out
}

// Walk visits every node top-down (parents before children). Returning
// false from fn skips the node's subtree.
func (t *Tree) Walk(fn func(n *Node) bool) {
	walkNode(t.root, fn)
}

func walkNode(n *Node, fn func(n *Node) bool) {
	if !fn(n) {
		return
	}
	if n.leaf {
		return
	}
	for i := range n.entries {
		walkNode(n.entries[i].child, fn)
	}
}

// WalkBottomUp visits every node with children before parents, the order
// needed to aggregate signatures (bit-OR of children, Section 5.1).
func (t *Tree) WalkBottomUp(fn func(n *Node)) {
	walkBottomUp(t.root, fn)
}

func walkBottomUp(n *Node, fn func(n *Node)) {
	if !n.leaf {
		for i := range n.entries {
			walkBottomUp(n.entries[i].child, fn)
		}
	}
	fn(n)
}

// NodeCount returns the total number of nodes.
func (t *Tree) NodeCount() int {
	count := 0
	t.Walk(func(*Node) bool { count++; return true })
	return count
}

// entryBytes estimates the on-page size of one entry: a 2k-float MBR plus
// a 64-bit child pointer / item reference.
func (t *Tree) entryBytes() int { return t.dim*2*8 + 8 }

// NodeBytes estimates the serialized size of node n: a small header plus
// its entries; leaf entries store the point (k floats) and the reference.
func (t *Tree) NodeBytes(n *Node) int {
	const header = 16
	if n.leaf {
		return header + len(n.entries)*(t.dim*8+8)
	}
	return header + len(n.entries)*t.entryBytes()
}

// SetPages assigns a page range to this node, for incremental page mapping
// after inserts created new nodes.
func (n *Node) SetPages(id pagestore.PageID, pages int) {
	n.page, n.pages = id, pages
}

// AssignPages maps every node onto pages of the accountant, enabling page
// I/O accounting during traversal. It returns the total number of pages.
func (t *Tree) AssignPages(acc *pagestore.Accountant) int {
	total := 0
	t.Walk(func(n *Node) bool {
		id, pages := acc.Allocate(t.NodeBytes(n))
		n.page, n.pages = id, pages
		total += pages
		return true
	})
	return total
}

// TouchNode charges a read of node n to the given toucher — the global
// accountant or a per-query reader (a no-op when pages were never assigned
// or to is nil).
func TouchNode(to pagestore.Toucher, n *Node) {
	if to == nil || n.pages == 0 {
		return
	}
	to.TouchRange(n.page, n.pages)
}

// CheckInvariants validates structural invariants for tests: MBR
// containment, fill factors (root excepted), uniform leaf level, and item
// count. It returns a descriptive error string, or "" when consistent.
func (t *Tree) CheckInvariants() string {
	if t.root == nil {
		return "nil root"
	}
	items := 0
	var check func(n *Node, isRoot bool) string
	check = func(n *Node, isRoot bool) string {
		if !isRoot && len(n.entries) < t.minFill {
			// Bulk loading may legitimately leave one underfull node per
			// level; accept any node with at least one entry.
			if len(n.entries) == 0 {
				return "empty non-root node"
			}
		}
		if len(n.entries) > t.maxFill {
			return "overfull node"
		}
		for i := range n.entries {
			e := &n.entries[i]
			if n.leaf {
				items++
				if !e.mbr.ContainsPoint(e.item.Point) {
					return "leaf MBR does not contain its point"
				}
			} else {
				if e.child.level != n.level-1 {
					return "child level mismatch"
				}
				if !e.mbr.ContainsRect(e.child.mbr) {
					return "entry MBR does not contain child MBR"
				}
				if s := check(e.child, false); s != "" {
					return s
				}
			}
		}
		if len(n.entries) > 0 && !n.mbr.ContainsRect(boundOf(n)) {
			return "node MBR too small"
		}
		return ""
	}
	if s := check(t.root, true); s != "" {
		return s
	}
	if items != t.size {
		return "item count mismatch"
	}
	return ""
}

func boundOf(n *Node) Rect {
	m := n.entries[0].mbr.Clone()
	for _, e := range n.entries[1:] {
		m.ExpandRect(e.mbr)
	}
	return m
}
