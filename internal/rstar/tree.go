package rstar

import (
	"fmt"

	"github.com/imgrn/imgrn/internal/pagestore"
)

// Item is one indexed point with an opaque 64-bit payload reference (the
// IM-GRN index packs the data-source ID and column index into it).
type Item struct {
	Point []float64
	Ref   uint64
}

// Node is a read-only view of one tree node exposed to traversal code.
type Node struct {
	leaf    bool
	level   int // 0 = leaf
	entries []entry
	mbr     Rect

	// Page mapping for I/O accounting (assigned by AssignPages).
	page  pagestore.PageID
	pages int

	// Aug is an arbitrary augmentation attached by the index layer
	// (bit-vector signatures in IM-GRN).
	Aug any
}

type entry struct {
	mbr   Rect
	child *Node // nil at leaf level
	item  Item  // valid at leaf level
}

// IsLeaf reports whether n is a leaf.
func (n *Node) IsLeaf() bool { return n.leaf }

// Level returns the node level (leaves are level 0).
func (n *Node) Level() int { return n.level }

// NumEntries returns the number of entries in n.
func (n *Node) NumEntries() int { return len(n.entries) }

// EntryMBR returns the MBR of entry i.
func (n *Node) EntryMBR(i int) Rect { return n.entries[i].mbr }

// MBR returns the bounding rectangle of the whole node.
func (n *Node) MBR() Rect { return n.mbr }

// Child returns the child node of entry i (nil for leaves).
func (n *Node) Child(i int) *Node { return n.entries[i].child }

// Item returns the item of entry i (zero Item for internal nodes).
func (n *Node) Item(i int) Item { return n.entries[i].item }

// Page returns the first page assigned to this node (0 before AssignPages).
func (n *Node) Page() pagestore.PageID { return n.page }

// Pages returns the page count assigned to this node.
func (n *Node) Pages() int { return n.pages }

func (n *Node) recomputeMBR() {
	if len(n.entries) == 0 {
		n.mbr = EmptyRect(n.mbr.Dims())
		return
	}
	m := n.entries[0].mbr.Clone()
	for _, e := range n.entries[1:] {
		m.ExpandRect(e.mbr)
	}
	n.mbr = m
}

// Tree is an R*-tree over k-dimensional points.
type Tree struct {
	dim         int
	minFill     int
	maxFill     int
	axisOrder   []int
	primaryFull bool
	root        *Node
	size        int

	// reinsertLevels tracks which levels already performed a forced
	// reinsertion during the current insert (R* OverflowTreatment).
	reinsertLevels map[int]bool
	reinserting    bool
}

// DefaultMaxFill is the default node capacity M; the R* paper recommends
// m = 40%·M, which Config applies when MinFill is zero.
const DefaultMaxFill = 32

// Config parameterizes a tree.
type Config struct {
	Dim     int // point dimensionality (required)
	MaxFill int // node capacity M (DefaultMaxFill when 0)
	MinFill int // minimum fill m (40% of MaxFill when 0)
	// AxisOrder optionally reorders the dimensions STR bulk loading
	// partitions by (a permutation of 0..Dim-1). Putting a
	// high-selectivity dimension first (e.g. the gene-ID coordinate of
	// the IM-GRN index) clusters equal values into few leaves, so MBR
	// range tests on that dimension prune most of the tree.
	AxisOrder []int
	// PrimaryAxisFull makes bulk loading sort *entirely* by the first
	// axis of AxisOrder (sequential packing, no slab recursion), so every
	// node spans the tightest possible range of that dimension. This is
	// the paper's "group genes with the same IDs together" layout.
	PrimaryAxisFull bool
}

// NewTree returns an empty R*-tree.
func NewTree(cfg Config) (*Tree, error) {
	if cfg.Dim <= 0 {
		return nil, fmt.Errorf("rstar: dimension must be positive, got %d", cfg.Dim)
	}
	if cfg.MaxFill == 0 {
		cfg.MaxFill = DefaultMaxFill
	}
	if cfg.MaxFill < 4 {
		return nil, fmt.Errorf("rstar: MaxFill must be >= 4, got %d", cfg.MaxFill)
	}
	if cfg.MinFill == 0 {
		cfg.MinFill = cfg.MaxFill * 2 / 5
	}
	if cfg.MinFill < 1 || cfg.MinFill > cfg.MaxFill/2 {
		return nil, fmt.Errorf("rstar: MinFill %d out of range [1,%d]", cfg.MinFill, cfg.MaxFill/2)
	}
	if cfg.AxisOrder != nil {
		if len(cfg.AxisOrder) != cfg.Dim {
			return nil, fmt.Errorf("rstar: AxisOrder has %d entries for %d dims", len(cfg.AxisOrder), cfg.Dim)
		}
		seen := make([]bool, cfg.Dim)
		for _, a := range cfg.AxisOrder {
			if a < 0 || a >= cfg.Dim || seen[a] {
				return nil, fmt.Errorf("rstar: AxisOrder %v is not a permutation of 0..%d", cfg.AxisOrder, cfg.Dim-1)
			}
			seen[a] = true
		}
	}
	t := &Tree{
		dim: cfg.Dim, minFill: cfg.MinFill, maxFill: cfg.MaxFill,
		axisOrder: cfg.AxisOrder, primaryFull: cfg.PrimaryAxisFull,
	}
	t.root = t.newNode(true, 0)
	return t, nil
}

// axisAt returns the STR partition axis for recursion depth `depth`.
func (t *Tree) axisAt(depth int) int {
	if t.axisOrder != nil {
		return t.axisOrder[depth]
	}
	return depth
}

func (t *Tree) newNode(leaf bool, level int) *Node {
	return &Node{leaf: leaf, level: level, mbr: EmptyRect(t.dim)}
}

// Dim returns the point dimensionality.
func (t *Tree) Dim() int { return t.dim }

// Size returns the number of stored items.
func (t *Tree) Size() int { return t.size }

// Height returns the number of levels (1 for a root-only tree).
func (t *Tree) Height() int { return t.root.level + 1 }

// Root returns the root node for custom traversals.
func (t *Tree) Root() *Node { return t.root }

// Insert adds an item using the R* insertion algorithm (ChooseSubtree,
// forced reinsertion, R* split).
func (t *Tree) Insert(it Item) error {
	if len(it.Point) != t.dim {
		return fmt.Errorf("rstar: point has %d dims, tree has %d", len(it.Point), t.dim)
	}
	t.reinsertLevels = make(map[int]bool)
	t.insertEntry(entry{mbr: NewRect(it.Point), item: it}, 0)
	t.size++
	return nil
}

// insertEntry places e at the given target level (0 = leaf).
func (t *Tree) insertEntry(e entry, level int) {
	leafPath := t.choosePath(e.mbr, level)
	n := leafPath[len(leafPath)-1]
	n.entries = append(n.entries, e)
	n.mbr.ExpandRect(e.mbr)
	if len(n.entries) > t.maxFill {
		t.overflow(leafPath)
	} else {
		t.adjustUpward(leafPath)
	}
}

// choosePath descends from the root to the node at the target level using
// the R* ChooseSubtree criterion and returns the path (root..target).
func (t *Tree) choosePath(r Rect, level int) []*Node {
	path := []*Node{t.root}
	n := t.root
	for n.level > level {
		best := t.chooseSubtree(n, r)
		n = n.entries[best].child
		path = append(path, n)
	}
	return path
}

// chooseSubtree picks the entry of n to descend into for rectangle r:
// minimum overlap enlargement when children are leaves, minimum area
// enlargement otherwise (ties break to smaller area).
func (t *Tree) chooseSubtree(n *Node, r Rect) int {
	childrenAreLeaves := n.level == 1
	best := 0
	if childrenAreLeaves {
		bestOverlap, bestEnl, bestArea := 0.0, 0.0, 0.0
		for i, e := range n.entries {
			grown := Union(e.mbr, r)
			var overlapDelta float64
			for j, o := range n.entries {
				if j == i {
					continue
				}
				overlapDelta += OverlapArea(grown, o.mbr) - OverlapArea(e.mbr, o.mbr)
			}
			enl := grown.Area() - e.mbr.Area()
			area := e.mbr.Area()
			if i == 0 || overlapDelta < bestOverlap ||
				(overlapDelta == bestOverlap && (enl < bestEnl ||
					(enl == bestEnl && area < bestArea))) {
				best, bestOverlap, bestEnl, bestArea = i, overlapDelta, enl, area
			}
		}
		return best
	}
	bestEnl, bestArea := 0.0, 0.0
	for i, e := range n.entries {
		enl := e.mbr.Enlargement(r)
		area := e.mbr.Area()
		if i == 0 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// adjustUpward refreshes MBRs along the path after an entry change.
func (t *Tree) adjustUpward(path []*Node) {
	for i := len(path) - 1; i >= 0; i-- {
		path[i].recomputeMBR()
		if i > 0 {
			parent := path[i-1]
			for j := range parent.entries {
				if parent.entries[j].child == path[i] {
					parent.entries[j].mbr = path[i].mbr.Clone()
					break
				}
			}
		}
	}
}

// reinsertFraction is the R* forced-reinsert share p = 30%.
const reinsertFraction = 0.3

// overflow applies R* OverflowTreatment to the last node of path.
func (t *Tree) overflow(path []*Node) {
	n := path[len(path)-1]
	isRoot := n == t.root
	if !isRoot && !t.reinserting && !t.reinsertLevels[n.level] {
		t.reinsertLevels[n.level] = true
		t.forcedReinsert(path)
		return
	}
	t.split(path)
}

// forcedReinsert removes the p·M entries of n whose centers are farthest
// from the node center and reinserts them at the same level.
func (t *Tree) forcedReinsert(path []*Node) {
	n := path[len(path)-1]
	p := int(reinsertFraction * float64(len(n.entries)))
	if p < 1 {
		p = 1
	}
	center := n.mbr
	// Selection-sort the p farthest entries to the back (M is small).
	type distEntry struct {
		d float64
		e entry
	}
	ds := make([]distEntry, len(n.entries))
	for i, e := range n.entries {
		ds[i] = distEntry{CenterDistance2(e.mbr, center), e}
	}
	// Sort ascending by distance; the tail p entries get reinserted.
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j].d < ds[j-1].d; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
	keep := ds[:len(ds)-p]
	evicted := ds[len(ds)-p:]
	n.entries = n.entries[:0]
	for _, de := range keep {
		n.entries = append(n.entries, de.e)
	}
	t.adjustUpward(path)
	t.reinserting = true
	for _, de := range evicted {
		t.insertEntry(de.e, n.level)
	}
	t.reinserting = false
}

// split performs the R* split of the overflowing last node of path,
// propagating upward as needed.
func (t *Tree) split(path []*Node) {
	n := path[len(path)-1]
	left, right := t.rstarSplit(n)
	if n == t.root {
		newRoot := t.newNode(false, n.level+1)
		newRoot.entries = append(newRoot.entries,
			entry{mbr: left.mbr.Clone(), child: left},
			entry{mbr: right.mbr.Clone(), child: right},
		)
		newRoot.recomputeMBR()
		t.root = newRoot
		return
	}
	parent := path[len(path)-2]
	for j := range parent.entries {
		if parent.entries[j].child == n {
			parent.entries[j] = entry{mbr: left.mbr.Clone(), child: left}
			break
		}
	}
	parent.entries = append(parent.entries, entry{mbr: right.mbr.Clone(), child: right})
	if len(parent.entries) > t.maxFill {
		t.overflow(path[:len(path)-1])
	} else {
		t.adjustUpward(path[:len(path)-1])
	}
}

// rstarSplit distributes the entries of n into two nodes using the R*
// axis/index selection: minimize margin sum over candidate axes, then
// minimize overlap (ties: area) over candidate distributions.
func (t *Tree) rstarSplit(n *Node) (left, right *Node) {
	entries := n.entries
	m := t.minFill
	M := len(entries) - 1 // capacity before overflow

	bestAxis, bestKind := -1, 0 // kind 0: sort by Min, 1: sort by Max
	bestMargin := 0.0
	for axis := 0; axis < t.dim; axis++ {
		for kind := 0; kind < 2; kind++ {
			sortEntriesByAxis(entries, axis, kind == 1)
			margin := 0.0
			for k := m; k <= M-m+1; k++ {
				lm, rm := groupMBRs(entries, k)
				margin += lm.Margin() + rm.Margin()
			}
			if bestAxis < 0 || margin < bestMargin {
				bestAxis, bestKind, bestMargin = axis, kind, margin
			}
		}
	}
	sortEntriesByAxis(entries, bestAxis, bestKind == 1)
	bestK := m
	bestOverlap, bestArea := 0.0, 0.0
	for k := m; k <= M-m+1; k++ {
		lm, rm := groupMBRs(entries, k)
		ov := OverlapArea(lm, rm)
		ar := lm.Area() + rm.Area()
		if k == m || ov < bestOverlap || (ov == bestOverlap && ar < bestArea) {
			bestK, bestOverlap, bestArea = k, ov, ar
		}
	}
	left = t.newNode(n.leaf, n.level)
	right = t.newNode(n.leaf, n.level)
	left.entries = append(left.entries, entries[:bestK]...)
	right.entries = append(right.entries, entries[bestK:]...)
	left.recomputeMBR()
	right.recomputeMBR()
	return left, right
}

func sortEntriesByAxis(es []entry, axis int, byMax bool) {
	key := func(e entry) float64 {
		if byMax {
			return e.mbr.Max[axis]
		}
		return e.mbr.Min[axis]
	}
	// Insertion sort: M is small (≤ a few dozen) and inputs are
	// near-sorted across the axis loop.
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && key(es[j]) < key(es[j-1]); j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

func groupMBRs(es []entry, k int) (Rect, Rect) {
	lm := es[0].mbr.Clone()
	for _, e := range es[1:k] {
		lm.ExpandRect(e.mbr)
	}
	rm := es[k].mbr.Clone()
	for _, e := range es[k+1:] {
		rm.ExpandRect(e.mbr)
	}
	return lm, rm
}
