package rstar

import (
	"fmt"
	"math"
	"sort"
)

// BulkLoad builds the tree from scratch with sort-tile-recursive (STR)
// packing, which yields well-shaped leaves for the static offline index
// construction of Section 5.1. Any existing contents are replaced.
func (t *Tree) BulkLoad(items []Item) error {
	for _, it := range items {
		if len(it.Point) != t.dim {
			return fmt.Errorf("rstar: point has %d dims, tree has %d", len(it.Point), t.dim)
		}
	}
	t.size = len(items)
	if len(items) == 0 {
		t.root = t.newNode(true, 0)
		return nil
	}
	// Pack leaves.
	leafItems := make([]Item, len(items))
	copy(leafItems, items)
	groups := t.strPartition(leafItems, t.maxFill, 0)
	nodes := make([]*Node, 0, len(groups))
	for _, g := range groups {
		n := t.newNode(true, 0)
		for _, it := range g {
			n.entries = append(n.entries, entry{mbr: NewRect(it.Point), item: it})
		}
		n.recomputeMBR()
		nodes = append(nodes, n)
	}
	// Pack upper levels until a single root remains.
	level := 1
	for len(nodes) > 1 {
		parents := t.packLevel(nodes, level)
		nodes = parents
		level++
	}
	t.root = nodes[0]
	return nil
}

type centeredNode struct {
	n      *Node
	center []float64
}

// packLevel groups child nodes into parents with STR on node centers.
func (t *Tree) packLevel(children []*Node, level int) []*Node {
	cs := make([]centeredNode, len(children))
	for i, n := range children {
		c := make([]float64, t.dim)
		n.mbr.Center(c)
		cs[i] = centeredNode{n, c}
	}
	groups := strGroups(len(cs), t.maxFill)
	// Recursively sort-and-slice over dimensions.
	t.strSortNodes(cs, 0, t.maxFill)
	parents := make([]*Node, 0, groups)
	for start := 0; start < len(cs); start += t.maxFill {
		end := start + t.maxFill
		if end > len(cs) {
			end = len(cs)
		}
		p := t.newNode(false, level)
		for _, c := range cs[start:end] {
			p.entries = append(p.entries, entry{mbr: c.n.mbr.Clone(), child: c.n})
		}
		p.recomputeMBR()
		parents = append(parents, p)
	}
	return parents
}

func strGroups(n, cap int) int { return (n + cap - 1) / cap }

// strSortNodes orders centered nodes with recursive STR slabs.
func (t *Tree) strSortNodes(cs []centeredNode, depth, cap int) {
	if len(cs) <= cap || depth >= t.dim {
		return
	}
	axis := t.axisAt(depth)
	sort.SliceStable(cs, func(i, j int) bool { return cs[i].center[axis] < cs[j].center[axis] })
	leaves := strGroups(len(cs), cap)
	slabs := int(math.Ceil(math.Pow(float64(leaves), 1/float64(t.dim-depth))))
	if depth == 0 && t.primaryFull {
		return // fully ordered by the primary axis; chunked by the caller
	}
	if slabs <= 1 {
		return
	}
	per := strGroups(len(cs), slabs)
	for start := 0; start < len(cs); start += per {
		end := start + per
		if end > len(cs) {
			end = len(cs)
		}
		t.strSortNodes(cs[start:end], depth+1, cap)
	}
}

// strPartition tiles items into groups of at most cap using recursive STR
// over the tree's axis order.
func (t *Tree) strPartition(items []Item, cap, depth int) [][]Item {
	if len(items) <= cap {
		return [][]Item{items}
	}
	if depth >= t.dim {
		// Degenerate: slice sequentially.
		var out [][]Item
		for start := 0; start < len(items); start += cap {
			end := start + cap
			if end > len(items) {
				end = len(items)
			}
			out = append(out, items[start:end])
		}
		return out
	}
	axis := t.axisAt(depth)
	sort.SliceStable(items, func(i, j int) bool { return items[i].Point[axis] < items[j].Point[axis] })
	leaves := strGroups(len(items), cap)
	slabs := int(math.Ceil(math.Pow(float64(leaves), 1/float64(t.dim-depth))))
	if depth == 0 && t.primaryFull {
		// Pure sorted packing on the primary axis: each group is exactly
		// one leaf-to-be, spanning the tightest primary-axis range.
		slabs = leaves
	}
	if slabs <= 1 {
		slabs = 1
	}
	per := strGroups(len(items), slabs)
	var out [][]Item
	for start := 0; start < len(items); start += per {
		end := start + per
		if end > len(items) {
			end = len(items)
		}
		out = append(out, t.strPartition(items[start:end], cap, depth+1)...)
	}
	return out
}
