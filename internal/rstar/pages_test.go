package rstar

import (
	"testing"

	"github.com/imgrn/imgrn/internal/pagestore"
	"github.com/imgrn/imgrn/internal/randgen"
)

func TestMarshalPagesRoundTrip(t *testing.T) {
	rng := randgen.New(300)
	tree, _ := NewTree(Config{Dim: 3, MaxFill: 8})
	items := randomItems(rng, 400, 3)
	if err := tree.BulkLoad(items); err != nil {
		t.Fatal(err)
	}
	acc := pagestore.New(512, 0)
	store := pagestore.NewStore(acc)
	root, err := tree.MarshalPages(store)
	if err != nil {
		t.Fatal(err)
	}
	if store.Runs() != tree.NodeCount() {
		t.Errorf("stored %d runs for %d nodes", store.Runs(), tree.NodeCount())
	}
	acc.ResetStats()
	got, err := UnmarshalPages(store, root, Config{Dim: 3, MaxFill: 8})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Stats().Accesses == 0 {
		t.Error("unmarshal performed no page reads")
	}
	if got.Size() != tree.Size() || got.Height() != tree.Height() {
		t.Fatalf("shape changed: size %d→%d height %d→%d",
			tree.Size(), got.Size(), tree.Height(), got.Height())
	}
	if msg := got.CheckInvariants(); msg != "" {
		t.Fatalf("round-tripped invariants: %s", msg)
	}
	// Searches agree on random ranges.
	for q := 0; q < 30; q++ {
		lo := []float64{rng.UniformIn(-100, 50), rng.UniformIn(-100, 50), rng.UniformIn(-100, 50)}
		hi := []float64{lo[0] + rng.UniformIn(0, 90), lo[1] + rng.UniformIn(0, 90), lo[2] + rng.UniformIn(0, 90)}
		r := Rect{Min: lo, Max: hi}
		if !sameRefs(searchSet(tree, r), searchSet(got, r)) {
			t.Fatalf("query %d: search results differ after round trip", q)
		}
	}
}

func TestMarshalPagesEmptyTree(t *testing.T) {
	tree, _ := NewTree(Config{Dim: 2})
	store := pagestore.NewStore(pagestore.New(256, 0))
	root, err := tree.MarshalPages(store)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPages(store, root, Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != 0 {
		t.Errorf("empty tree size = %d", got.Size())
	}
}

func TestMarshalPagesTooSmallPage(t *testing.T) {
	tree, _ := NewTree(Config{Dim: 8})
	small := pagestore.NewStore(pagestore.New(16, 0))
	if _, err := tree.MarshalPages(small); err == nil {
		t.Error("tiny pages should be rejected")
	}
}

func TestUnmarshalPagesCorruptRun(t *testing.T) {
	store := pagestore.NewStore(pagestore.New(256, 0))
	// A run too short to be a node header.
	id := store.Append([]byte{1, 2})
	if _, err := UnmarshalPages(store, id, Config{Dim: 2}); err == nil {
		t.Error("short run should fail")
	}
	// A header advertising more entries than the run holds.
	bad := make([]byte, nodeHeaderBytes)
	bad[4] = 1 // leaf
	bad[5] = 200
	id2 := store.Append(bad)
	if _, err := UnmarshalPages(store, id2, Config{Dim: 2}); err == nil {
		t.Error("overlong count should fail")
	}
}
