package rstar

import (
	"encoding/binary"
	"fmt"
	"math"

	"github.com/imgrn/imgrn/internal/pagestore"
)

// On-page node layout (little-endian), one page run per node:
//
//	level   int32
//	leaf    uint8
//	count   int32
//	entries:
//	  leaf:     point (k × float64), ref (uint64)
//	  internal: mbr (2k × float64), child base PageID (uint64)
//
// MarshalPages writes the whole tree bottom-up (children first, so parent
// entries can reference their children's page runs) and returns the root's
// base PageID. UnmarshalPages reads it back through the store, charging
// page accesses — a faithful persistent representation of the index layout
// Section 5.1 describes.

const nodeHeaderBytes = 4 + 1 + 4

// MarshalPages serializes the tree into the store and returns the root's
// base PageID.
func (t *Tree) MarshalPages(store *pagestore.Store) (pagestore.PageID, error) {
	if store.PageSize() < nodeHeaderBytes+t.dim*8+8 {
		return 0, fmt.Errorf("rstar: page size %d too small for dim %d", store.PageSize(), t.dim)
	}
	return t.marshalNode(store, t.root)
}

func (t *Tree) marshalNode(store *pagestore.Store, n *Node) (pagestore.PageID, error) {
	childIDs := make([]pagestore.PageID, len(n.entries))
	if !n.leaf {
		for i := range n.entries {
			id, err := t.marshalNode(store, n.entries[i].child)
			if err != nil {
				return 0, err
			}
			childIDs[i] = id
		}
	}
	var entryBytes int
	if n.leaf {
		entryBytes = t.dim*8 + 8
	} else {
		entryBytes = 2*t.dim*8 + 8
	}
	buf := make([]byte, nodeHeaderBytes+len(n.entries)*entryBytes)
	binary.LittleEndian.PutUint32(buf[0:], uint32(n.level))
	if n.leaf {
		buf[4] = 1
	}
	binary.LittleEndian.PutUint32(buf[5:], uint32(len(n.entries)))
	off := nodeHeaderBytes
	for i := range n.entries {
		e := &n.entries[i]
		if n.leaf {
			for _, v := range e.item.Point {
				binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
				off += 8
			}
			binary.LittleEndian.PutUint64(buf[off:], e.item.Ref)
			off += 8
		} else {
			for d := 0; d < t.dim; d++ {
				binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.mbr.Min[d]))
				off += 8
			}
			for d := 0; d < t.dim; d++ {
				binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.mbr.Max[d]))
				off += 8
			}
			binary.LittleEndian.PutUint64(buf[off:], uint64(childIDs[i]))
			off += 8
		}
	}
	return store.Append(buf), nil
}

// UnmarshalPages reconstructs a tree from the store, reading every node
// through the (access-charged) page interface.
func UnmarshalPages(store *pagestore.Store, root pagestore.PageID, cfg Config) (*Tree, error) {
	t, err := NewTree(cfg)
	if err != nil {
		return nil, err
	}
	n, size, err := t.unmarshalNode(store, root)
	if err != nil {
		return nil, err
	}
	t.root = n
	t.size = size
	return t, nil
}

func (t *Tree) unmarshalNode(store *pagestore.Store, id pagestore.PageID) (*Node, int, error) {
	length := store.RunLength(id)
	if length < nodeHeaderBytes {
		return nil, 0, fmt.Errorf("rstar: node run %d has %d bytes", id, length)
	}
	buf := make([]byte, length)
	if err := store.ReadAt(id, 0, length, buf); err != nil {
		return nil, 0, err
	}
	level := int(int32(binary.LittleEndian.Uint32(buf[0:])))
	leaf := buf[4] == 1
	count := int(binary.LittleEndian.Uint32(buf[5:]))
	var entryBytes int
	if leaf {
		entryBytes = t.dim*8 + 8
	} else {
		entryBytes = 2*t.dim*8 + 8
	}
	if count < 0 || nodeHeaderBytes+count*entryBytes > length {
		return nil, 0, fmt.Errorf("rstar: node run %d corrupt (count %d, %d bytes)", id, count, length)
	}
	n := t.newNode(leaf, level)
	off := nodeHeaderBytes
	size := 0
	for i := 0; i < count; i++ {
		if leaf {
			pt := make([]float64, t.dim)
			for d := range pt {
				pt[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
				off += 8
			}
			ref := binary.LittleEndian.Uint64(buf[off:])
			off += 8
			n.entries = append(n.entries, entry{mbr: NewRect(pt), item: Item{Point: pt, Ref: ref}})
			size++
		} else {
			mbr := EmptyRect(t.dim)
			for d := 0; d < t.dim; d++ {
				mbr.Min[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
				off += 8
			}
			for d := 0; d < t.dim; d++ {
				mbr.Max[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
				off += 8
			}
			childID := pagestore.PageID(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
			child, childSize, err := t.unmarshalNode(store, childID)
			if err != nil {
				return nil, 0, err
			}
			size += childSize
			n.entries = append(n.entries, entry{mbr: mbr, child: child})
		}
	}
	n.recomputeMBR()
	return n, size, nil
}
