package rstar

import (
	"math"
	"testing"
)

func rect(min, max []float64) Rect { return Rect{Min: min, Max: max} }

func TestNewRectDegenerate(t *testing.T) {
	r := NewRect([]float64{1, 2})
	if r.Area() != 0 {
		t.Errorf("point rect area = %v", r.Area())
	}
	if !r.ContainsPoint([]float64{1, 2}) {
		t.Error("point rect should contain its point")
	}
}

func TestEmptyRectIsUnionIdentity(t *testing.T) {
	e := EmptyRect(2)
	r := rect([]float64{1, 2}, []float64{3, 4})
	u := Union(e, r)
	for i := 0; i < 2; i++ {
		if u.Min[i] != r.Min[i] || u.Max[i] != r.Max[i] {
			t.Fatalf("union with empty changed rect: %v", u)
		}
	}
}

func TestExpand(t *testing.T) {
	r := NewRect([]float64{0, 0})
	r.ExpandPoint([]float64{2, -1})
	if r.Min[1] != -1 || r.Max[0] != 2 {
		t.Errorf("after expand: %v", r)
	}
	r.ExpandRect(rect([]float64{-5, 0}, []float64{0, 5}))
	if r.Min[0] != -5 || r.Max[1] != 5 {
		t.Errorf("after expand rect: %v", r)
	}
}

func TestAreaMargin(t *testing.T) {
	r := rect([]float64{0, 0, 0}, []float64{2, 3, 4})
	if r.Area() != 24 {
		t.Errorf("Area = %v", r.Area())
	}
	if r.Margin() != 9 {
		t.Errorf("Margin = %v", r.Margin())
	}
}

func TestEnlargement(t *testing.T) {
	r := rect([]float64{0, 0}, []float64{2, 2})
	o := rect([]float64{1, 1}, []float64{3, 3})
	if got := r.Enlargement(o); got != 5 {
		t.Errorf("Enlargement = %v, want 5 (3x3 - 2x2)", got)
	}
	inside := rect([]float64{0.5, 0.5}, []float64{1, 1})
	if got := r.Enlargement(inside); got != 0 {
		t.Errorf("contained rect should need no enlargement, got %v", got)
	}
}

func TestOverlapArea(t *testing.T) {
	a := rect([]float64{0, 0}, []float64{2, 2})
	b := rect([]float64{1, 1}, []float64{3, 3})
	if got := OverlapArea(a, b); got != 1 {
		t.Errorf("OverlapArea = %v, want 1", got)
	}
	c := rect([]float64{5, 5}, []float64{6, 6})
	if got := OverlapArea(a, c); got != 0 {
		t.Errorf("disjoint overlap = %v", got)
	}
	// Touching rectangles share zero area.
	d := rect([]float64{2, 0}, []float64{3, 2})
	if got := OverlapArea(a, d); got != 0 {
		t.Errorf("touching overlap = %v", got)
	}
}

func TestIntersectsAndContains(t *testing.T) {
	a := rect([]float64{0, 0}, []float64{2, 2})
	b := rect([]float64{2, 2}, []float64{3, 3}) // touching corner
	if !a.Intersects(b) {
		t.Error("touching rects should intersect (closed rects)")
	}
	if !a.ContainsRect(rect([]float64{0.5, 0.5}, []float64{1.5, 1.5})) {
		t.Error("containment failed")
	}
	if a.ContainsRect(b) {
		t.Error("should not contain outside rect")
	}
	if !a.ContainsPoint([]float64{2, 0}) {
		t.Error("boundary points are inside")
	}
	if a.ContainsPoint([]float64{2.0001, 0}) {
		t.Error("outside point reported inside")
	}
}

func TestCenterDistance(t *testing.T) {
	a := rect([]float64{0, 0}, []float64{2, 2})
	b := rect([]float64{4, 0}, []float64{6, 2})
	if got := CenterDistance2(a, b); got != 16 {
		t.Errorf("CenterDistance2 = %v, want 16", got)
	}
	c := make([]float64, 2)
	a.Center(c)
	if c[0] != 1 || c[1] != 1 {
		t.Errorf("Center = %v", c)
	}
}

func TestCloneIndependent(t *testing.T) {
	a := rect([]float64{0, 0}, []float64{1, 1})
	c := a.Clone()
	c.Min[0] = -9
	if a.Min[0] == -9 {
		t.Error("Clone aliases storage")
	}
}

func TestNegativeSideArea(t *testing.T) {
	// Inverted (empty) rect has zero area, infinite margin guards.
	e := EmptyRect(2)
	if e.Area() != 0 {
		t.Errorf("empty area = %v", e.Area())
	}
	if !math.IsInf(e.Min[0], 1) {
		t.Error("empty rect min should be +inf")
	}
}
