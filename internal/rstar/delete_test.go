package rstar

import (
	"testing"
	"testing/quick"

	"github.com/imgrn/imgrn/internal/randgen"
)

func TestDeleteBasic(t *testing.T) {
	rng := randgen.New(200)
	tree, _ := NewTree(Config{Dim: 2, MaxFill: 6})
	items := randomItems(rng, 200, 2)
	for _, it := range items {
		tree.Insert(it)
	}
	// Delete half of them.
	for _, it := range items[:100] {
		if !tree.Delete(it) {
			t.Fatalf("failed to delete %v", it.Ref)
		}
	}
	if tree.Size() != 100 {
		t.Fatalf("Size = %d", tree.Size())
	}
	if msg := tree.CheckInvariants(); msg != "" {
		t.Fatalf("invariants after delete: %s", msg)
	}
	// Remaining items stay findable; deleted ones are gone.
	all := Rect{Min: []float64{-1000, -1000}, Max: []float64{1000, 1000}}
	found := searchSet(tree, all)
	for _, it := range items[:100] {
		if found[it.Ref] {
			t.Errorf("deleted item %d still present", it.Ref)
		}
	}
	for _, it := range items[100:] {
		if !found[it.Ref] {
			t.Errorf("surviving item %d lost", it.Ref)
		}
	}
}

func TestDeleteMissing(t *testing.T) {
	rng := randgen.New(201)
	tree, _ := NewTree(Config{Dim: 2, MaxFill: 6})
	items := randomItems(rng, 50, 2)
	for _, it := range items {
		tree.Insert(it)
	}
	if tree.Delete(Item{Point: []float64{9999, 9999}, Ref: 1}) {
		t.Error("deleted a non-existent point")
	}
	if tree.Delete(Item{Point: items[0].Point, Ref: 99999}) {
		t.Error("deleted with mismatched ref")
	}
	if tree.Delete(Item{Point: []float64{1}, Ref: 0}) {
		t.Error("deleted with wrong dimensionality")
	}
	if tree.Size() != 50 {
		t.Errorf("Size changed: %d", tree.Size())
	}
}

func TestDeleteAll(t *testing.T) {
	rng := randgen.New(202)
	tree, _ := NewTree(Config{Dim: 3, MaxFill: 4})
	items := randomItems(rng, 120, 3)
	for _, it := range items {
		tree.Insert(it)
	}
	for _, it := range items {
		if !tree.Delete(it) {
			t.Fatalf("failed to delete %d", it.Ref)
		}
	}
	if tree.Size() != 0 {
		t.Fatalf("Size = %d after deleting everything", tree.Size())
	}
	if tree.Height() != 1 {
		t.Errorf("height = %d, want 1 (empty root)", tree.Height())
	}
	// The tree remains usable.
	if err := tree.Insert(items[0]); err != nil {
		t.Fatal(err)
	}
	if got := len(tree.Search(NewRect(items[0].Point), nil)); got != 1 {
		t.Errorf("reinserted item not found")
	}
}

func TestDeleteFromBulkLoaded(t *testing.T) {
	rng := randgen.New(203)
	tree, _ := NewTree(Config{Dim: 2, MaxFill: 8})
	items := randomItems(rng, 500, 2)
	tree.BulkLoad(items)
	for i := 0; i < 250; i++ {
		if !tree.Delete(items[i*2]) {
			t.Fatalf("delete %d failed", i*2)
		}
	}
	if tree.Size() != 250 {
		t.Fatalf("Size = %d", tree.Size())
	}
	if msg := tree.CheckInvariants(); msg != "" {
		t.Fatalf("invariants: %s", msg)
	}
}

// TestInsertDeleteSearchProperty interleaves random inserts and deletes and
// cross-checks search results against a model map.
func TestInsertDeleteSearchProperty(t *testing.T) {
	rng := randgen.New(204)
	f := func(seed uint64) bool {
		r := randgen.New(seed ^ rng.Uint64())
		dim := 1 + r.Intn(3)
		tree, err := NewTree(Config{Dim: dim, MaxFill: 4 + r.Intn(8)})
		if err != nil {
			return false
		}
		model := make(map[uint64]Item)
		nextRef := uint64(0)
		for op := 0; op < 200; op++ {
			if r.Float64() < 0.6 || len(model) == 0 {
				p := make([]float64, dim)
				for d := range p {
					p[d] = r.UniformIn(-50, 50)
				}
				it := Item{Point: p, Ref: nextRef}
				nextRef++
				if err := tree.Insert(it); err != nil {
					return false
				}
				model[it.Ref] = it
			} else {
				// Delete a random surviving item.
				for _, it := range model {
					if !tree.Delete(it) {
						return false
					}
					delete(model, it.Ref)
					break
				}
			}
		}
		if tree.Size() != len(model) {
			return false
		}
		if tree.CheckInvariants() != "" {
			return false
		}
		lo := make([]float64, dim)
		hi := make([]float64, dim)
		for d := 0; d < dim; d++ {
			lo[d] = r.UniformIn(-50, 0)
			hi[d] = lo[d] + r.UniformIn(0, 60)
		}
		rect := Rect{Min: lo, Max: hi}
		want := make(map[uint64]bool)
		for _, it := range model {
			if rect.ContainsPoint(it.Point) {
				want[it.Ref] = true
			}
		}
		return sameRefs(searchSet(tree, rect), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
