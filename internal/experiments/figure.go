package experiments

import (
	"fmt"
	"strings"
)

// Series is one labelled curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is one reproducible plot: an identifier matching the paper
// ("fig7a"), axis labels, and the series the paper draws.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Format renders the figure as an aligned text table, one row per X value
// and one column per series — the "same rows/series the paper reports".
func (f Figure) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	if len(f.Series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	// Collect the union of X values in first-seen order.
	var xs []float64
	seen := make(map[float64]bool)
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	header := make([]string, 0, len(f.Series)+1)
	header = append(header, f.XLabel)
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := "-"
			for i, sx := range s.X {
				if sx == x {
					cell = trimFloat(s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		rows = append(rows, row)
	}
	writeAligned(&b, rows)
	fmt.Fprintf(&b, "(y-axis: %s)\n", f.YLabel)
	return b.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.6g", v)
	return s
}

func writeAligned(b *strings.Builder, rows [][]string) {
	if len(rows) == 0 {
		return
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
}
