package experiments

import (
	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/synth"
)

// sweepCache reuses (dataset, index, workload) across sweep points for
// experiments that only vary query-time parameters (γ, α, n_Q): the index
// of Section 5.1 is threshold-independent, which is exactly what makes the
// ad-hoc queries of the paper possible.
type sweepCache struct {
	p       Params
	entries map[synth.Distribution]*sweepEntry
}

type sweepEntry struct {
	ds      *synth.Dataset
	idx     *index.Index
	queries map[int][]*gene.Matrix // keyed by n_Q
}

func newSweepCache(p Params) (*sweepCache, error) {
	return &sweepCache{p: p, entries: make(map[synth.Distribution]*sweepEntry)}, nil
}

func (c *sweepCache) entry(dist synth.Distribution) (*sweepEntry, error) {
	if e, ok := c.entries[dist]; ok {
		return e, nil
	}
	ds, err := buildSynthetic(dist, c.p)
	if err != nil {
		return nil, err
	}
	idx, err := buildIndex(ds, c.p)
	if err != nil {
		return nil, err
	}
	e := &sweepEntry{ds: ds, idx: idx, queries: make(map[int][]*gene.Matrix)}
	c.entries[dist] = e
	return e, nil
}

// run executes the cached workload of size nq with the given query-time
// parameters and returns the aggregate metrics.
func (c *sweepCache) run(dist synth.Distribution, nq int, cp core.Params) (Aggregate, error) {
	e, err := c.entry(dist)
	if err != nil {
		return Aggregate{}, err
	}
	qs, ok := e.queries[nq]
	if !ok {
		qs, err = workload(e.ds, c.p, nq)
		if err != nil {
			return Aggregate{}, err
		}
		e.queries[nq] = qs
	}
	proc, err := core.NewProcessor(e.idx, cp)
	if err != nil {
		return Aggregate{}, err
	}
	return runWorkload(proc, qs)
}
