// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6 plus Appendices G and H): the ROC effectiveness
// studies of the IM-GRN inference measure, the efficiency comparisons
// against the Baseline competitor, the parameter sweeps of Figures 7–12,
// and the index construction costs of Figure 13. Each experiment returns
// printable figures whose series mirror the paper's plots; EXPERIMENTS.md
// records paper-vs-measured shapes.
package experiments

import "fmt"

// Params mirrors Table 2 plus reproduction-scale knobs. Zero values take
// the Table-2 defaults scaled by Mode.
type Params struct {
	// Table 2 parameters (defaults in bold in the paper).
	Gamma float64 // inference threshold γ (default 0.5)
	Alpha float64 // probabilistic threshold α (default 0.5)
	D     int     // pivots per matrix (default 2)
	NQ    int     // query genes n_Q (default 5)
	NMin  int     // min genes per matrix (default 50)
	NMax  int     // max genes per matrix (default 100)
	N     int     // matrices in the database (default 10K)

	// Shape parameters the paper leaves implicit.
	LMin, LMax int // samples per matrix range
	GenePool   int // gene universe size (controls cross-source overlap)

	// Estimation and workload.
	Samples      int  // Monte Carlo samples for exact edge probabilities
	EmbedSamples int  // Monte Carlo samples for embedding y-coordinates
	Queries      int  // query matrices per measurement (paper: 20)
	Analytic     bool // use the analytic permutation-null scorer
	Seed         uint64

	// Mode selects the reproduction scale: "fast" (CI-sized) or "full"
	// (Table-2 scale). Empty means fast.
	Mode string

	// NSweepOverride replaces the mode's database-size sweep (fig12/fig13)
	// when non-empty, letting operators probe specific scales.
	NSweepOverride []int
}

// Fast returns the CI-scale defaults: every experiment finishes in seconds
// while preserving the paper's curve shapes.
func Fast() Params {
	return Params{
		Gamma: 0.5, Alpha: 0.5, D: 2, NQ: 5,
		NMin: 20, NMax: 40, N: 800,
		LMin: 10, LMax: 20, GenePool: 1000,
		Samples: 64, EmbedSamples: 48, Queries: 5,
		Seed: 42, Mode: "fast",
	}
}

// Full returns the Table-2 scale defaults.
func Full() Params {
	return Params{
		Gamma: 0.5, Alpha: 0.5, D: 2, NQ: 5,
		NMin: 50, NMax: 100, N: 10000,
		LMin: 20, LMax: 50, GenePool: 6000,
		Samples: 192, EmbedSamples: 96, Queries: 20,
		Seed: 42, Mode: "full",
	}
}

// Micro returns test-scale defaults: every experiment (including the full
// registry) completes in a few seconds total, for CI regression coverage of
// the harness plumbing. Not meaningful for performance numbers.
func Micro() Params {
	return Params{
		Gamma: 0.5, Alpha: 0.5, D: 2, NQ: 3,
		NMin: 6, NMax: 10, N: 60,
		LMin: 8, LMax: 10, GenePool: 80,
		Samples: 24, EmbedSamples: 12, Queries: 1,
		Analytic: true,
		Seed:     42, Mode: "micro",
	}
}

// ByMode returns Fast(), Full() or Micro() by name.
func ByMode(mode string) (Params, error) {
	switch mode {
	case "", "fast":
		return Fast(), nil
	case "full":
		return Full(), nil
	case "micro":
		return Micro(), nil
	default:
		return Params{}, fmt.Errorf("experiments: unknown mode %q (want fast, full or micro)", mode)
	}
}

// GammaSweep, AlphaSweep, DSweep, NQSweep are the Table-2 sweeps.
var (
	GammaSweep = []float64{0.2, 0.3, 0.5, 0.8, 0.9}
	AlphaSweep = []float64{0.2, 0.3, 0.5, 0.8, 0.9}
	DSweep     = []int{1, 2, 3, 4}
	NQSweep    = []int{2, 3, 5, 8, 10}
)

// RangeSweep returns the Table-2 [n_min, n_max] sweep, scaled down in fast
// and micro modes so the largest setting stays CI-sized.
func (p Params) RangeSweep() [][2]int {
	switch p.Mode {
	case "full":
		return [][2]int{{10, 20}, {20, 50}, {50, 100}, {100, 200}, {200, 300}}
	case "micro":
		return [][2]int{{4, 6}, {6, 10}}
	default:
		return [][2]int{{5, 10}, {10, 20}, {20, 40}, {40, 60}, {60, 80}}
	}
}

// NSweep returns the Table-2 database-size sweep (10K–100K), scaled in
// fast and micro modes, or the explicit override when set.
func (p Params) NSweep() []int {
	if len(p.NSweepOverride) > 0 {
		return p.NSweepOverride
	}
	switch p.Mode {
	case "full":
		return []int{10000, 20000, 30000, 40000, 50000, 100000}
	case "micro":
		return []int{40, 80}
	default:
		return []int{200, 400, 800, 1600, 3200}
	}
}

// ROCGenes returns the matrix width used by the ROC studies (n_i = 200 in
// Fig. 5a), scaled in fast and micro modes.
func (p Params) ROCGenes() int {
	switch p.Mode {
	case "full":
		return 200
	case "micro":
		return 24
	default:
		return 60
	}
}

// ROCSampleCap bounds the organism sample count outside full mode so that
// the per-pair Monte Carlo stays cheap.
func (p Params) ROCSampleCap() int {
	switch p.Mode {
	case "full":
		return 0 // organism's own sample count
	case "micro":
		return 24
	default:
		return 60
	}
}

// InferenceSizeSweep returns the Fig. 5(b) graph sizes n_i.
func (p Params) InferenceSizeSweep() []int {
	switch p.Mode {
	case "full":
		return []int{100, 200, 300, 400, 500}
	case "micro":
		return []int{15, 25}
	default:
		return []int{40, 60, 80, 100, 120}
	}
}

// String summarizes the parameter grid like Table 2's caption.
func (p Params) String() string {
	return fmt.Sprintf("mode=%s γ=%g α=%g d=%d n_Q=%d n∈[%d,%d] l∈[%d,%d] N=%d S=%d queries=%d seed=%d",
		p.Mode, p.Gamma, p.Alpha, p.D, p.NQ, p.NMin, p.NMax, p.LMin, p.LMax, p.N, p.Samples, p.Queries, p.Seed)
}
