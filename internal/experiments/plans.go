package experiments

import (
	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/plan"
	"github.com/imgrn/imgrn/internal/synth"
)

// plannedEngine runs each query under a fresh adaptive plan: the Planner
// builds the plan from its live cost model plus the query's shape, and
// the realized stage statistics are fed straight back. It mirrors what
// the server's -plan-adaptive loop does per request.
type plannedEngine struct {
	entry         *sweepEntry
	base          core.Params
	planner       *plan.Planner
	cache         *core.EdgeProbCache
	nq            int
	vectors       int
	meanPivotCost float64
}

func (pe *plannedEngine) Query(mq *gene.Matrix) ([]core.Answer, core.Stats, error) {
	pl, err := pe.planner.Plan(plan.Request{
		Samples: pe.base.Samples,
		Pivot:   true, Signatures: true, Markov: true, Batch: true,
		QueryGenes:    pe.nq,
		CacheEntries:  pe.cache.Len(),
		DBVectors:     pe.vectors,
		MeanPivotCost: pe.meanPivotCost,
	})
	if err != nil {
		return nil, core.Stats{}, err
	}
	cp := pe.base
	cp.Plan = pl
	cp.Cache = pe.cache
	proc, err := core.NewProcessor(pe.entry.idx, cp)
	if err != nil {
		return nil, core.Stats{}, err
	}
	ans, st, err := proc.Query(mq)
	if err != nil {
		return nil, st, err
	}
	pe.planner.Observe(st.PlanFeedback())
	return ans, st, nil
}

// Plans compares the fixed pipeline against the adaptive planner over a
// mixed workload on the Uni dataset: the n_Q sweep doubles as an
// easy/hard axis (narrow queries have few edges to verify, wide ones
// stress Lemma-5 pruning and verification). One planner persists across
// the whole sweep — it warms up on the first width (MinQueries is one
// workload) and plans adaptively from the second on — and both
// configurations share an edge-probability cache across the workload,
// exactly the setting where skipping a dead stage pays. Reported per
// width: average per-query seconds (inference + traversal + refinement)
// for both configurations, the planner's skip decisions per stage, and
// the modeled per-candidate stage costs behind those decisions (the
// harness view of the imgrn_plan_* metric family).
func Plans(p Params) ([]Figure, error) {
	cache, err := newSweepCache(p)
	if err != nil {
		return nil, err
	}
	e, err := cache.entry(synth.Uniform)
	if err != nil {
		return nil, err
	}
	bs := e.idx.Stats()
	meanPivot := 0.0
	if bs.Vectors > 0 {
		meanPivot = bs.PivotCostSum / float64(bs.Vectors)
	}

	// Query widths: the standard n_Q sweep, capped by the smallest
	// database matrix so extraction cannot fail.
	var widths []int
	for _, nq := range NQSweep {
		if nq <= p.NMin {
			widths = append(widths, nq)
		}
	}
	if len(widths) == 0 {
		widths = []int{p.NQ}
	}

	planner := plan.NewPlanner(plan.Options{MinQueries: p.Queries})
	fixedCache := core.NewEdgeProbCache(0)
	adaptiveCache := core.NewEdgeProbCache(0)

	fTime := Figure{ID: "plans-time", Title: "Fixed pipeline vs adaptive planner (Uni; caches shared across the sweep)",
		XLabel: "n_Q", YLabel: "avg seconds per query"}
	fixedS := Series{Name: "fixed (s)"}
	adaptS := Series{Name: "adaptive (s)"}

	fDecide := Figure{ID: "plans-decisions", Title: "Planner skip decisions per stage (count per width; warm-up width plans fixed)",
		XLabel: "n_Q", YLabel: "skips"}
	stageNames := []string{"pivot_prune", "signature", "markov_prune", "batch_kernel"}
	skipS := make([]Series, len(stageNames))
	for i, name := range stageNames {
		skipS[i] = Series{Name: name}
	}

	fCost := Figure{ID: "plans-cost", Title: "Modeled refinement economics after each width (EWMA cost model)",
		XLabel: "n_Q", YLabel: "seconds per candidate / rate"}
	markovCostS := Series{Name: "markovPerCandidate (s)"}
	mcCostS := Series{Name: "monteCarloPerCandidate (s)"}
	hitRateS := Series{Name: "cacheHitRate"}

	prevSkips := make(map[string]uint64)
	for _, nq := range widths {
		qs, ok := e.queries[nq]
		if !ok {
			qs, err = workload(e.ds, p, nq)
			if err != nil {
				return nil, err
			}
			e.queries[nq] = qs
		}

		cp := coreParams(p)
		cp.Cache = fixedCache
		proc, err := core.NewProcessor(e.idx, cp)
		if err != nil {
			return nil, err
		}
		aggF, err := runWorkload(proc, qs)
		if err != nil {
			return nil, err
		}

		pe := &plannedEngine{
			entry:         e,
			base:          coreParams(p),
			planner:       planner,
			cache:         adaptiveCache,
			nq:            nq,
			vectors:       bs.Vectors,
			meanPivotCost: meanPivot,
		}
		aggA, err := runWorkload(pe, qs)
		if err != nil {
			return nil, err
		}

		x := float64(nq)
		fixedS.X = append(fixedS.X, x)
		fixedS.Y = append(fixedS.Y, aggF.InferSeconds+aggF.CPUSeconds)
		adaptS.X = append(adaptS.X, x)
		adaptS.Y = append(adaptS.Y, aggA.InferSeconds+aggA.CPUSeconds)

		snap := planner.Snapshot()
		for i, name := range stageNames {
			skipS[i].X = append(skipS[i].X, x)
			skipS[i].Y = append(skipS[i].Y, float64(snap.Skips[name]-prevSkips[name]))
			prevSkips[name] = snap.Skips[name]
		}
		markovCostS.X = append(markovCostS.X, x)
		markovCostS.Y = append(markovCostS.Y, snap.Cost.MarkovPerCandidate)
		mcCostS.X = append(mcCostS.X, x)
		mcCostS.Y = append(mcCostS.Y, snap.Cost.MonteCarloPerCandidate)
		hitRateS.X = append(hitRateS.X, x)
		hitRateS.Y = append(hitRateS.Y, snap.Cost.CacheHitRate)
	}

	fTime.Series = []Series{fixedS, adaptS}
	fDecide.Series = skipS
	fCost.Series = []Series{markovCostS, mcCostS, hitRateS}
	return []Figure{fTime, fDecide, fCost}, nil
}
