package experiments

import (
	"context"
	"fmt"
	"time"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/synth"
)

// BSweep is the batch-size axis of the batch-execution study.
var BSweep = []int{1, 2, 4, 8}

// batchReps repeats each timed run (fresh caches every repetition, so
// every run stays a cold batch) to damp wall-clock noise at the
// sub-millisecond batch sizes of the fast mode.
const batchReps = 3

// batchWorkload builds one ad-hoc exploration batch of b queries: a
// client studying a pathway probes the full extracted region and then
// narrower variants of it. Each group of up to four items shares one
// base extraction; the variants keep a prefix of the base's BFS-ordered
// genes, so they stay connected and share anchor and neighbor genes —
// the overlap regime the batch engine's shared γ-group traversal
// amortizes.
func batchWorkload(ds *synth.Dataset, rng *randgen.Rand, p Params, b int) ([]core.BatchItem, error) {
	baseW := p.NQ
	if baseW < 2 {
		baseW = 2
	}
	widths := []int{baseW, 3 * baseW / 4, baseW / 2, 2}
	for i := range widths {
		if widths[i] < 2 {
			widths[i] = 2
		}
	}
	items := make([]core.BatchItem, 0, b)
	for len(items) < b {
		base, _, err := ds.ExtractQuery(rng, baseW)
		if err != nil {
			return nil, fmt.Errorf("experiments: extracting batch base: %w", err)
		}
		for _, w := range widths {
			if len(items) == b {
				break
			}
			cols := make([]int, w)
			for j := range cols {
				cols[j] = j
			}
			q, err := base.SubMatrix(-1-len(items), cols)
			if err != nil {
				return nil, err
			}
			items = append(items, core.BatchItem{Matrix: q, Params: coreParams(p)})
		}
	}
	return items, nil
}

// Batch measures the multi-query batch engine against a sequential loop
// over the batch-size sweep on the Uni dataset. Every batch is the
// ad-hoc exploration workload above, answered three ways under one
// fresh edge-probability cache each: as B independent queries (what a
// /query client pays today), as one engine batch in its byte-identical
// default mode (shared γ-group traversals and plan resolution), and as
// one batch with shared permutation fills (deterministic, not
// byte-identical — it targets cold batches). Reported per B: average
// wall seconds per batch for the three modes, plus the amortization
// counters behind them (γ-groups per batch and edge probabilities
// answered per shared permutation fill — the harness view of the
// imgrn_batch_* metric family).
func Batch(p Params) ([]Figure, error) {
	cache, err := newSweepCache(p)
	if err != nil {
		return nil, err
	}
	e, err := cache.entry(synth.Uniform)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	rng := randgen.New(p.Seed ^ 0x51c64b7e92a8d035)

	fTime := Figure{ID: "batch-time", Title: "Sequential loop vs batch engine (Uni; ad-hoc exploration batches)",
		XLabel: "B (queries per batch)", YLabel: "avg seconds per batch"}
	seqS := Series{Name: "sequential (s)"}
	batS := Series{Name: "batch (s)"}
	shS := Series{Name: "batch+sharedPerms (s)"}

	fAmort := Figure{ID: "batch-amortization", Title: "Batch amortization counters (per batch)",
		XLabel: "B (queries per batch)", YLabel: "count / ratio"}
	groupS := Series{Name: "gamma-groups"}
	probeS := Series{Name: "permProbesPerFill"}

	runSequential := func(items []core.BatchItem) (time.Duration, error) {
		c := core.NewEdgeProbCache(0)
		start := time.Now()
		for i := range items {
			cp := items[i].Params
			cp.Cache = c
			proc, err := core.NewProcessor(e.idx, cp)
			if err != nil {
				return 0, err
			}
			if _, _, err := proc.Query(items[i].Matrix); err != nil {
				return 0, err
			}
		}
		return time.Since(start), nil
	}
	runBatch := func(items []core.BatchItem, shared bool) (time.Duration, core.BatchStats, error) {
		c := core.NewEdgeProbCache(0)
		cp := make([]core.BatchItem, len(items))
		copy(cp, items)
		for i := range cp {
			cp[i].Params.Cache = c
		}
		start := time.Now()
		results, bst := core.QueryBatch(ctx, e.idx, cp, core.BatchOptions{SharedPerms: shared})
		for i := range results {
			if results[i].Err != nil {
				return 0, bst, fmt.Errorf("batch item %d: %w", i, results[i].Err)
			}
		}
		return time.Since(start), bst, nil
	}

	for _, b := range BSweep {
		var seqT, batT, shT time.Duration
		var groups, fills, probes float64
		for w := 0; w < p.Queries; w++ {
			items, err := batchWorkload(e.ds, rng, p, b)
			if err != nil {
				return nil, err
			}
			for rep := 0; rep < batchReps; rep++ {
				d, err := runSequential(items)
				if err != nil {
					return nil, err
				}
				seqT += d
				d, bst, err := runBatch(items, false)
				if err != nil {
					return nil, err
				}
				batT += d
				groups += float64(bst.Groups)
				d, bst, err = runBatch(items, true)
				if err != nil {
					return nil, err
				}
				shT += d
				fills += float64(bst.PermFills)
				probes += float64(bst.PermProbes)
			}
		}

		n := float64(p.Queries * batchReps)
		x := float64(b)
		seqS.X = append(seqS.X, x)
		seqS.Y = append(seqS.Y, seqT.Seconds()/n)
		batS.X = append(batS.X, x)
		batS.Y = append(batS.Y, batT.Seconds()/n)
		shS.X = append(shS.X, x)
		shS.Y = append(shS.Y, shT.Seconds()/n)
		groupS.X = append(groupS.X, x)
		groupS.Y = append(groupS.Y, groups/n)
		probeS.X = append(probeS.X, x)
		ratio := 0.0
		if fills > 0 {
			ratio = probes / fills
		}
		probeS.Y = append(probeS.Y, ratio)
	}

	fTime.Series = []Series{seqS, batS, shS}
	fAmort.Series = []Series{groupS, probeS}
	return []Figure{fTime, fAmort}, nil
}
