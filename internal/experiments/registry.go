package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Runner executes one experiment under the given parameters.
type Runner func(Params) ([]Figure, error)

// Registry maps experiment identifiers to runners, one per paper figure.
var Registry = map[string]Runner{
	"fig5a": Fig5a,
	"fig5b": Fig5b,
	"fig6":  Fig6,
	"fig7":  Fig7,
	"fig8":  Fig8,
	"fig9":  Fig9,
	"fig10": Fig10,
	"fig11": Fig11,
	"fig12": Fig12,
	"fig13": Fig13,
	"fig14": Fig14,
	"fig15": Fig15,
	// Extensions beyond the paper's figures (DESIGN.md §5).
	"ablation": Ablation,
	"batch":    Batch,
	"latency":  Latency,
	"measures": Measures,
	"plans":    Plans,
	"stages":   Stages,
}

// Names returns the registered experiment identifiers sorted for display.
func Names() []string {
	out := make([]string, 0, len(Registry))
	for k := range Registry {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric-aware ordering: fig5a < fig5b < fig6 < … < fig15.
		return figOrder(out[i]) < figOrder(out[j])
	})
	return out
}

func figOrder(name string) int {
	var n int
	var suffix byte
	if _, err := fmt.Sscanf(name, "fig%d", &n); err != nil {
		// Extension experiments sort after the paper's figures,
		// alphabetically by first letter.
		return 1_000_000 + int(name[0])
	}
	fmt.Sscanf(name, "fig%d%c", &n, &suffix)
	sub := 0
	if suffix >= 'a' && suffix <= 'z' {
		sub = int(suffix-'a') + 1
	}
	return n*100 + sub
}

// Run executes the named experiment and writes its formatted figures to w.
func Run(name string, p Params, w io.Writer) error {
	r, ok := Registry[name]
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, Names())
	}
	figs, err := r(p)
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", name, err)
	}
	for _, f := range figs {
		if _, err := io.WriteString(w, f.Format()); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}

// RunAll executes every registered experiment in figure order.
func RunAll(p Params, w io.Writer) error {
	for _, name := range Names() {
		if _, err := fmt.Fprintf(w, "### %s (%s)\n", name, p); err != nil {
			return err
		}
		if err := Run(name, p, w); err != nil {
			return err
		}
	}
	return nil
}
