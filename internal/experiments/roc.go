package experiments

import (
	"fmt"
	"time"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/stats"
	"github.com/imgrn/imgrn/internal/synth"
)

// NoiseSigma is the Gaussian corruption of the robustness studies:
// N(0, 0.3) per matrix element (Section 6.2).
const NoiseSigma = 0.3

// rocScorers builds the scorer under test. Fresh scorers per run keep the
// Monte Carlo streams independent.
func imGRNScorer(p Params) grn.Scorer {
	if p.Analytic {
		return grn.AnalyticScorer{}
	}
	// ROC ranking needs finer probability resolution than threshold
	// queries do; quadruple the Monte Carlo budget to reduce score ties.
	return grn.NewRandomizedScorer(p.Seed^0x1f83d9abfb41bd6b, 4*p.Samples)
}

// rocForScorer computes ROC points of one scorer against the ground truth
// of m, sweeping the inference threshold γ from 0 to 1 (step 0.01 in the
// paper; 0.02 here keeps output compact without changing the curve). The
// returned AUPR accompanies the AUC: with sparse true edges it is the
// stricter GRN-benchmark metric.
func rocForScorer(m *gene.Matrix, truth *synth.Truth, sc grn.Scorer) (points []stats.ROCPoint, auc, aupr float64, err error) {
	scores, labels, err := pairScoresAndLabels(m, truth, sc)
	if err != nil {
		return nil, 0, 0, err
	}
	ths := stats.Thresholds(0, 1, 50)
	points = stats.ROCCurve(scores, labels, ths)
	pr := stats.PRCurve(scores, labels, ths)
	return points, stats.AUC(points), stats.AUPR(pr), nil
}

func pairScoresAndLabels(m *gene.Matrix, truth *synth.Truth, sc grn.Scorer) ([]float64, []bool, error) {
	if err := sc.Prepare(m); err != nil {
		return nil, nil, err
	}
	n := m.NumGenes()
	scores := make([]float64, 0, n*(n-1)/2)
	labels := make([]bool, 0, n*(n-1)/2)
	for s := 0; s < n; s++ {
		for t := s + 1; t < n; t++ {
			scores = append(scores, sc.Score(m, s, t))
			labels = append(labels, truth.Has(s, t))
		}
	}
	return scores, labels, nil
}

// rocFigure compares IM-GRN against a competitor scorer over one organism
// with and without noise, producing the four ROC curves of Fig. 5(a) /
// Fig. 14 / Fig. 15.
func rocFigure(id string, organism synth.OrganismSpec, competitor grn.Scorer, p Params) (Figure, error) {
	m, truth, err := synth.GenerateOrganism(organism, p.ROCGenes(), p.ROCSampleCap(), p.Seed)
	if err != nil {
		return Figure{}, err
	}
	noisy := m.WithNoise(randgen.New(p.Seed^0x452821e638d01377), NoiseSigma)

	fig := Figure{
		ID:     id,
		Title:  fmt.Sprintf("ROC on %s-like data (±noise N(0,%.1f)), n_i=%d", organism.Name, NoiseSigma, p.ROCGenes()),
		XLabel: "FPR",
		YLabel: "TPR",
	}
	type variant struct {
		name string
		m    *gene.Matrix
		sc   grn.Scorer
	}
	variants := []variant{
		{"IM-GRN", m, imGRNScorer(p)},
		{"IM-GRN+noise", noisy, imGRNScorer(p)},
		{competitor.Name(), m, competitor},
		{competitor.Name() + "+noise", noisy, competitor},
	}
	for _, v := range variants {
		points, auc, aupr, err := rocForScorer(v.m, truth, v.sc)
		if err != nil {
			return Figure{}, fmt.Errorf("experiments: %s ROC for %s: %w", id, v.name, err)
		}
		s := Series{Name: fmt.Sprintf("%s(AUC=%.3f,AUPR=%.3f)", v.name, auc, aupr)}
		for _, pt := range points {
			s.X = append(s.X, pt.FPR)
			s.Y = append(s.Y, pt.TPR)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig5a reproduces Figure 5(a): ROC of IM-GRN vs Correlation on E.coli
// with and without noise, plus a supplementary operating-point study
// backing the paper's motivating claim (Section 1/2.2): a fixed ad-hoc
// threshold keeps its meaning for the calibrated probabilistic measure,
// while the same fixed |r| threshold silently changes its operating point
// as noise grows.
func Fig5a(p Params) ([]Figure, error) {
	fig, err := rocFigure("fig5a", synth.EColi, grn.CorrelationScorer{}, p)
	if err != nil {
		return nil, err
	}
	supp, err := thresholdStability(p)
	if err != nil {
		return nil, err
	}
	return []Figure{fig, supp}, nil
}

// thresholdStability measures the recall (TPR) of each measure at the
// fixed default threshold γ = 0.5 while the noise level grows.
func thresholdStability(p Params) (Figure, error) {
	m, truth, err := synth.GenerateOrganism(synth.EColi, p.ROCGenes(), p.ROCSampleCap(), p.Seed)
	if err != nil {
		return Figure{}, err
	}
	noises := []float64{0, 0.3, 0.6, 1.0}
	fig := Figure{
		ID:     "fig5a-supp",
		Title:  "Recall at fixed threshold γ=0.5 vs noise σ (E.coli-like)",
		XLabel: "noise σ",
		YLabel: "TPR at γ=0.5",
	}
	imgrn := Series{Name: "IM-GRN"}
	corr := Series{Name: "Correlation"}
	for _, sigma := range noises {
		mm := m
		if sigma > 0 {
			mm = m.WithNoise(randgen.New(p.Seed^uint64(sigma*1e4)^0x0f1e2d3c4b5a6978), sigma)
		}
		for _, s := range []struct {
			sc  grn.Scorer
			out *Series
		}{{imGRNScorer(p), &imgrn}, {grn.CorrelationScorer{}, &corr}} {
			scores, labels, err := pairScoresAndLabels(mm, truth, s.sc)
			if err != nil {
				return Figure{}, err
			}
			pts := stats.ROCCurve(scores, labels, []float64{0.5})
			s.out.X = append(s.out.X, sigma)
			s.out.Y = append(s.out.Y, pts[0].TPR)
		}
	}
	fig.Series = []Series{imgrn, corr}
	return fig, nil
}

// Fig14 reproduces Appendix G: ROC on S.aureus and S.cerevisiae.
func Fig14(p Params) ([]Figure, error) {
	a, err := rocFigure("fig14a", synth.SAureus, grn.CorrelationScorer{}, p)
	if err != nil {
		return nil, err
	}
	b, err := rocFigure("fig14b", synth.SCerevisiae, grn.CorrelationScorer{}, p)
	if err != nil {
		return nil, err
	}
	return []Figure{a, b}, nil
}

// Fig15 reproduces Appendix H: ROC of IM-GRN vs partial correlation
// (pCorr) on E.coli with and without noise.
func Fig15(p Params) ([]Figure, error) {
	fig, err := rocFigure("fig15", synth.EColi, &grn.PartialCorrScorer{Ridge: 1e-2}, p)
	if err != nil {
		return nil, err
	}
	return []Figure{fig}, nil
}

// Fig5b reproduces Figure 5(b): wall-clock inference time of IM-GRN vs
// Correlation over E.coli-like matrices of growing width n_i.
func Fig5b(p Params) ([]Figure, error) {
	sizes := p.InferenceSizeSweep()
	imgrn := Series{Name: "IM-GRN"}
	corr := Series{Name: "Correlation"}
	for _, n := range sizes {
		m, _, err := synth.GenerateOrganism(synth.EColi, n, p.ROCSampleCap(), p.Seed)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := grn.Infer(m, imGRNScorer(p), p.Gamma); err != nil {
			return nil, err
		}
		imgrn.X = append(imgrn.X, float64(n))
		imgrn.Y = append(imgrn.Y, time.Since(t0).Seconds())

		t0 = time.Now()
		if _, err := grn.Infer(m, grn.CorrelationScorer{}, p.Gamma); err != nil {
			return nil, err
		}
		corr.X = append(corr.X, float64(n))
		corr.Y = append(corr.Y, time.Since(t0).Seconds())
	}
	return []Figure{{
		ID:     "fig5b",
		Title:  "GRN inference time vs graph size n_i (E.coli-like)",
		XLabel: "n_i",
		YLabel: "seconds",
		Series: []Series{imgrn, corr},
	}}, nil
}
