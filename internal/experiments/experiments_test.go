package experiments

import (
	"strings"
	"testing"
)

// tiny returns CI-minimal parameters so experiment plumbing can be tested
// end to end in well under a second per figure.
func tiny() Params {
	p := Fast()
	p.N = 60
	p.NMin, p.NMax = 6, 10
	p.LMin, p.LMax = 8, 10
	p.GenePool = 80
	p.Queries = 2
	p.Samples = 24
	p.EmbedSamples = 16
	p.Analytic = true
	return p
}

func TestByMode(t *testing.T) {
	if p, err := ByMode(""); err != nil || p.Mode != "fast" {
		t.Errorf("default mode: %+v, %v", p, err)
	}
	if p, err := ByMode("full"); err != nil || p.N != 10000 {
		t.Errorf("full mode: %+v, %v", p, err)
	}
	if _, err := ByMode("warp"); err == nil {
		t.Error("unknown mode should error")
	}
}

func TestNamesOrdered(t *testing.T) {
	names := Names()
	if len(names) != len(Registry) {
		t.Fatalf("Names() returned %d of %d", len(names), len(Registry))
	}
	if names[0] != "fig5a" {
		t.Errorf("ordering wrong: %v", names)
	}
	// Paper figures come first (fig15 last among them), extensions after.
	figPos := map[string]int{}
	for i, n := range names {
		figPos[n] = i
	}
	if figPos["fig15"] > figPos["ablation"] || figPos["fig15"] > figPos["measures"] {
		t.Errorf("extensions should sort after paper figures: %v", names)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := Run("fig99", tiny(), &sb); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestFigureFormat(t *testing.T) {
	f := Figure{
		ID: "x", Title: "demo", XLabel: "n", YLabel: "seconds",
		Series: []Series{
			{Name: "a", X: []float64{1, 2}, Y: []float64{0.5, 1.5}},
			{Name: "b", X: []float64{2}, Y: []float64{9}},
		},
	}
	out := f.Format()
	for _, want := range []string{"== x: demo ==", "n", "a", "b", "0.5", "9", "seconds"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted figure missing %q:\n%s", want, out)
		}
	}
	// Series b has no value at x=1: rendered as "-".
	if !strings.Contains(out, "-") {
		t.Error("missing placeholder for absent value")
	}
	empty := Figure{ID: "y", Title: "none"}
	if !strings.Contains(empty.Format(), "(no data)") {
		t.Error("empty figure should render a placeholder")
	}
}

func TestSweepFigures(t *testing.T) {
	p := tiny()
	figs, err := Fig7(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 3 {
		t.Fatalf("fig7 produced %d figures, want 3 (CPU, IO, candidates)", len(figs))
	}
	for _, f := range figs {
		if len(f.Series) != 2 {
			t.Errorf("%s has %d series, want Uni+Gau", f.ID, len(f.Series))
		}
		for _, s := range f.Series {
			if len(s.X) != len(GammaSweep) || len(s.Y) != len(s.X) {
				t.Errorf("%s/%s has %d points", f.ID, s.Name, len(s.X))
			}
			for _, y := range s.Y {
				if y < 0 {
					t.Errorf("%s/%s has negative metric %v", f.ID, s.Name, y)
				}
			}
		}
	}
}

func TestFig13Shapes(t *testing.T) {
	p := tiny()
	figs, err := Fig13(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("fig13 produced %d figures", len(figs))
	}
	for _, f := range figs {
		for _, s := range f.Series {
			for _, y := range s.Y {
				if y <= 0 {
					t.Errorf("%s: non-positive build time %v", f.ID, y)
				}
			}
		}
	}
}

func TestROCFigure(t *testing.T) {
	p := tiny()
	figs, err := Fig5a(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("fig5a produced %d figures, want ROC + supplement", len(figs))
	}
	roc := figs[0]
	if len(roc.Series) != 4 {
		t.Errorf("ROC series = %d, want 4", len(roc.Series))
	}
	for _, s := range roc.Series {
		if !strings.Contains(s.Name, "AUC=") {
			t.Errorf("series %q missing AUC annotation", s.Name)
		}
		for i := range s.X {
			if s.X[i] < 0 || s.X[i] > 1 || s.Y[i] < 0 || s.Y[i] > 1 {
				t.Errorf("ROC point out of unit square: (%v, %v)", s.X[i], s.Y[i])
			}
		}
	}
}

func TestRunWritesFormattedOutput(t *testing.T) {
	var sb strings.Builder
	if err := Run("fig8", tiny(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "fig8a") || !strings.Contains(out, "I/O cost") {
		t.Errorf("output incomplete:\n%s", out)
	}
}

func TestAggregateString(t *testing.T) {
	a := Aggregate{CPUSeconds: 0.5, IOCost: 10, Candidates: 3, Answers: 1, Queries: 2}
	if s := a.String(); !strings.Contains(s, "io=10.0") {
		t.Errorf("String = %q", s)
	}
}

func TestParamsString(t *testing.T) {
	if s := Fast().String(); !strings.Contains(s, "mode=fast") {
		t.Errorf("String = %q", s)
	}
}

// TestAllExperimentsMicro regression-covers every registered experiment at
// micro scale: each must produce at least one non-empty figure.
func TestAllExperimentsMicro(t *testing.T) {
	p := Micro()
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			figs, err := Registry[name](p)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(figs) == 0 {
				t.Fatalf("%s produced no figures", name)
			}
			for _, f := range figs {
				if len(f.Series) == 0 {
					t.Errorf("%s/%s has no series", name, f.ID)
				}
				for _, s := range f.Series {
					if len(s.X) == 0 || len(s.X) != len(s.Y) {
						t.Errorf("%s/%s/%s malformed series", name, f.ID, s.Name)
					}
				}
				if out := f.Format(); !strings.Contains(out, f.ID) {
					t.Errorf("%s: Format missing figure ID", name)
				}
			}
		})
	}
}

func TestRunAllMicro(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole registry; skipped in -short mode")
	}
	var sb strings.Builder
	if err := RunAll(Micro(), &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, name := range Names() {
		if !strings.Contains(out, "### "+name) {
			t.Errorf("RunAll output missing %s", name)
		}
	}
}
