package experiments

import (
	"fmt"
	"sort"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/synth"
)

// Ablation measures the contribution of each pruning layer of the Figure-4
// traversal: full pruning, Lemma 6 disabled, PPR point pruning disabled,
// and bit-vector signatures disabled. It extends the paper's evaluation
// (DESIGN.md §5); the γ sweep shows where the geometric prunings begin to
// matter.
func Ablation(p Params) ([]Figure, error) {
	ds, err := buildSynthetic(synth.Uniform, p)
	if err != nil {
		return nil, err
	}
	idx, err := buildIndex(ds, p)
	if err != nil {
		return nil, err
	}
	queries, err := workload(ds, p, p.NQ)
	if err != nil {
		return nil, err
	}
	type variant struct {
		name   string
		mutate func(*core.Params)
	}
	variants := []variant{
		{"full", func(*core.Params) {}},
		{"noLemma6", func(cp *core.Params) { cp.DisableIndexPruning = true }},
		{"noPPR", func(cp *core.Params) { cp.DisablePivotPruning = true }},
		{"noSignatures", func(cp *core.Params) { cp.DisableSignatures = true }},
		{"noGeneRange", func(cp *core.Params) { cp.DisableGeneRange = true }},
	}
	gammas := GammaSweep
	names := make([]string, len(variants))
	aggs := make([][]Aggregate, len(variants))
	for vi, v := range variants {
		names[vi] = v.name
		aggs[vi] = make([]Aggregate, len(gammas))
		for gi, gamma := range gammas {
			cp := coreParams(p)
			cp.Gamma = gamma
			v.mutate(&cp)
			proc, err := core.NewProcessor(idx, cp)
			if err != nil {
				return nil, err
			}
			agg, err := runWorkload(proc, queries)
			if err != nil {
				return nil, fmt.Errorf("experiments: ablation %s γ=%g: %w", v.name, gamma, err)
			}
			aggs[vi][gi] = agg
		}
	}
	return threeFigures("ablation", "Pruning-layer ablation vs γ (Uni)", "γ", names, gammas, aggs), nil
}

// Latency profiles the tail behaviour of the three engines (IM-GRN,
// Baseline, LinearScan) on one workload: mean, median and P95 per-query
// CPU time. The paper reports means only; tails matter for an online
// service, and the indexed method's advantage is largest there (the
// Baseline's cost is workload-independent, so its tail is its mean, while
// IM-GRN's tail reflects occasional candidate-heavy queries).
func Latency(p Params) ([]Figure, error) {
	ds, err := buildSynthetic(synth.Uniform, p)
	if err != nil {
		return nil, err
	}
	idx, err := buildIndex(ds, p)
	if err != nil {
		return nil, err
	}
	cp := coreParams(p)
	proc, err := core.NewProcessor(idx, cp)
	if err != nil {
		return nil, err
	}
	bp := cp
	bp.Analytic = true
	base, err := core.BuildBaseline(ds.DB, bp)
	if err != nil {
		return nil, err
	}
	ls, err := core.NewLinearScan(ds.DB, cp)
	if err != nil {
		return nil, err
	}
	// A larger workload makes percentiles meaningful.
	wp := p
	if wp.Queries < 20 {
		wp.Queries = 20
	}
	if p.Mode == "micro" {
		wp.Queries = 5
	}
	queries, err := workload(ds, wp, p.NQ)
	if err != nil {
		return nil, err
	}
	engines := []struct {
		name string
		eng  queryEngine
	}{{"IM-GRN", proc}, {"Baseline", base}, {"LinearScan", ls}}
	fig := Figure{
		ID:     "latency",
		Title:  fmt.Sprintf("Per-query CPU latency distribution (Uni, N=%d; x: 0=mean 1=P50 2=P95)", p.N),
		XLabel: "statistic",
		YLabel: "seconds",
	}
	for _, e := range engines {
		var samples []float64
		for _, q := range queries {
			_, st, err := e.eng.Query(q)
			if err != nil {
				return nil, fmt.Errorf("experiments: latency %s: %w", e.name, err)
			}
			samples = append(samples, (st.Traversal + st.Refinement).Seconds())
		}
		sort.Float64s(samples)
		mean := 0.0
		for _, v := range samples {
			mean += v
		}
		mean /= float64(len(samples))
		fig.Series = append(fig.Series, Series{
			Name: e.name,
			X:    []float64{0, 1, 2},
			Y:    []float64{mean, percentile(samples, 0.5), percentile(samples, 0.95)},
		})
	}
	return []Figure{fig}, nil
}

// percentile returns the q-quantile of sorted samples (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Measures evaluates the generalized permutation-calibrated measures (the
// paper's Section-2.2 future work) against the canonical IM-GRN measure on
// the E.coli-like ROC task: calibrated Spearman and calibrated mutual
// information, each sharing Definition 2's confidence semantics.
func Measures(p Params) ([]Figure, error) {
	m, truth, err := synth.GenerateOrganism(synth.EColi, p.ROCGenes(), p.ROCSampleCap(), p.Seed)
	if err != nil {
		return nil, err
	}
	scorers := []grn.Scorer{
		imGRNScorer(p),
		grn.NewCalibratedScorer("cal-Spearman", grn.SpearmanVec, p.Seed^0x71c3, 2*p.Samples),
		grn.NewCalibratedScorer("cal-MI", grn.MutualInfoVec(0), p.Seed^0x55aa, 2*p.Samples),
		grn.CorrelationScorer{},
	}
	fig := Figure{
		ID:     "measures",
		Title:  fmt.Sprintf("ROC of calibrated measures (E.coli-like, n_i=%d)", p.ROCGenes()),
		XLabel: "FPR",
		YLabel: "TPR",
	}
	for _, sc := range scorers {
		points, auc, aupr, err := rocForScorer(m, truth, sc)
		if err != nil {
			return nil, fmt.Errorf("experiments: measures %s: %w", sc.Name(), err)
		}
		s := Series{Name: fmt.Sprintf("%s(AUC=%.3f,AUPR=%.3f)", sc.Name(), auc, aupr)}
		for _, pt := range points {
			s.X = append(s.X, pt.FPR)
			s.Y = append(s.Y, pt.TPR)
		}
		fig.Series = append(fig.Series, s)
	}
	return []Figure{fig}, nil
}
