package experiments

import (
	"fmt"
	"time"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/synth"
)

// metric identifies which Section-6 y-axis a sub-figure reports.
type metric int

const (
	metricCPU metric = iota
	metricIO
	metricCandidates
)

func (m metric) label() string {
	switch m {
	case metricCPU:
		return "CPU time (s)"
	case metricIO:
		return "I/O cost (page accesses)"
	default:
		return "# candidates"
	}
}

func (m metric) of(a Aggregate) float64 {
	switch m {
	case metricCPU:
		return a.CPUSeconds
	case metricIO:
		return a.IOCost
	default:
		return a.Candidates
	}
}

// threeFigures fans one (x, aggregate-per-series) sweep into the paper's
// standard (a) CPU, (b) I/O, (c) candidates triptych.
func threeFigures(id, title, xlabel string, seriesNames []string, xs []float64, aggs [][]Aggregate) []Figure {
	out := make([]Figure, 0, 3)
	for sub, m := range []metric{metricCPU, metricIO, metricCandidates} {
		f := Figure{
			ID:     fmt.Sprintf("%s%c", id, 'a'+sub),
			Title:  title,
			XLabel: xlabel,
			YLabel: m.label(),
		}
		for si, name := range seriesNames {
			s := Series{Name: name}
			for xi, x := range xs {
				s.X = append(s.X, x)
				s.Y = append(s.Y, m.of(aggs[si][xi]))
			}
			f.Series = append(f.Series, s)
		}
		out = append(out, f)
	}
	return out
}

// Fig6 reproduces Figure 6: IM-GRN vs Baseline on Real, Uni and Gau data.
// The Baseline pre-computes every pairwise edge probability offline and
// scans all of it per query.
func Fig6(p Params) ([]Figure, error) {
	type datasetBuilder struct {
		name  string
		build func() (*synth.Dataset, error)
	}
	// The Baseline materializes O(N·n²) floats; cap N so Figure 6 stays
	// runnable at full scale (the paper itself only shows Fig. 6 at the
	// default N; the trend vs Baseline is orders-of-magnitude regardless).
	bp := p
	if bp.N > 2000 {
		bp.N = 2000
	}
	builders := []datasetBuilder{
		{"Real", func() (*synth.Dataset, error) { return buildReal(bp) }},
		{"Uni", func() (*synth.Dataset, error) { return buildSynthetic(synth.Uniform, bp) }},
		{"Gau", func() (*synth.Dataset, error) { return buildSynthetic(synth.Gaussian, bp) }},
	}
	xs := []float64{0, 1, 2} // categorical: Real, Uni, Gau
	aggs := [][]Aggregate{make([]Aggregate, len(builders)), make([]Aggregate, len(builders))}
	for di, b := range builders {
		ds, err := b.build()
		if err != nil {
			return nil, fmt.Errorf("experiments: fig6 %s: %w", b.name, err)
		}
		idx, err := buildIndex(ds, bp)
		if err != nil {
			return nil, err
		}
		proc, err := core.NewProcessor(idx, coreParams(bp))
		if err != nil {
			return nil, err
		}
		// Baseline uses the analytic estimator offline: full Monte Carlo
		// materialization is the very cost the paper's method avoids, and
		// would dominate harness time without changing the online query
		// comparison.
		bparams := coreParams(bp)
		bparams.Analytic = true
		base, err := core.BuildBaseline(ds.DB, bparams)
		if err != nil {
			return nil, err
		}
		queries, err := workload(ds, bp, bp.NQ)
		if err != nil {
			return nil, err
		}
		if aggs[0][di], err = runWorkload(proc, queries); err != nil {
			return nil, err
		}
		if aggs[1][di], err = runWorkload(base, queries); err != nil {
			return nil, err
		}
	}
	figs := threeFigures("fig6", fmt.Sprintf("IM-GRN vs Baseline (N=%d; x: 0=Real 1=Uni 2=Gau)", bp.N),
		"dataset", []string{"IM-GRN", "Baseline"}, xs, aggs)
	return figs, nil
}

// sweepSynthetic runs one parameter sweep over the Uni and Gau datasets,
// rebuilding the dataset/index per x when mutate requires it.
func sweepSynthetic(id, title, xlabel string, xs []float64, p Params,
	run func(dist synth.Distribution, x float64) (Aggregate, error)) ([]Figure, error) {
	dists := []synth.Distribution{synth.Uniform, synth.Gaussian}
	aggs := [][]Aggregate{make([]Aggregate, len(xs)), make([]Aggregate, len(xs))}
	for di, dist := range dists {
		for xi, x := range xs {
			a, err := run(dist, x)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s %s x=%g: %w", id, dist, x, err)
			}
			aggs[di][xi] = a
		}
	}
	return threeFigures(id, title, xlabel, []string{"Uni", "Gau"}, xs, aggs), nil
}

// Fig7 reproduces Figure 7: performance vs inference threshold γ.
func Fig7(p Params) ([]Figure, error) {
	cache, err := newSweepCache(p)
	if err != nil {
		return nil, err
	}
	xs := GammaSweep
	return sweepSynthetic("fig7", "IM-GRN performance vs γ", "γ", xs, p,
		func(dist synth.Distribution, x float64) (Aggregate, error) {
			cp := coreParams(p)
			cp.Gamma = x
			return cache.run(dist, p.NQ, cp)
		})
}

// Fig8 reproduces Figure 8: performance vs probabilistic threshold α.
func Fig8(p Params) ([]Figure, error) {
	cache, err := newSweepCache(p)
	if err != nil {
		return nil, err
	}
	xs := AlphaSweep
	return sweepSynthetic("fig8", "IM-GRN performance vs α", "α", xs, p,
		func(dist synth.Distribution, x float64) (Aggregate, error) {
			cp := coreParams(p)
			cp.Alpha = x
			return cache.run(dist, p.NQ, cp)
		})
}

// Fig9 reproduces Figure 9: performance vs pivot count d (index
// dimensionality 2d+1): CPU and I/O grow with d (dimensionality curse).
func Fig9(p Params) ([]Figure, error) {
	xs := make([]float64, len(DSweep))
	for i, d := range DSweep {
		xs[i] = float64(d)
	}
	return sweepSynthetic("fig9", "IM-GRN performance vs pivots d", "d", xs, p,
		func(dist synth.Distribution, x float64) (Aggregate, error) {
			pp := p
			pp.D = int(x)
			agg, _, err := measureIMGRN(dist, pp)
			return agg, err
		})
}

// Fig10 reproduces Figure 10: performance vs query size n_Q ("U" curves).
func Fig10(p Params) ([]Figure, error) {
	cache, err := newSweepCache(p)
	if err != nil {
		return nil, err
	}
	xs := make([]float64, len(NQSweep))
	for i, nq := range NQSweep {
		xs[i] = float64(nq)
	}
	return sweepSynthetic("fig10", "IM-GRN performance vs query genes n_Q", "n_Q", xs, p,
		func(dist synth.Distribution, x float64) (Aggregate, error) {
			return cache.run(dist, int(x), coreParams(p))
		})
}

// Fig11 reproduces Figure 11: performance vs genes-per-matrix range.
func Fig11(p Params) ([]Figure, error) {
	ranges := p.RangeSweep()
	xs := make([]float64, len(ranges))
	for i, r := range ranges {
		xs[i] = float64(r[1]) // label each range by n_max
	}
	return sweepSynthetic("fig11", "IM-GRN performance vs [n_min,n_max] (x = n_max)", "n_max", xs, p,
		func(dist synth.Distribution, x float64) (Aggregate, error) {
			pp := p
			for _, r := range ranges {
				if float64(r[1]) == x {
					pp.NMin, pp.NMax = r[0], r[1]
				}
			}
			if pp.GenePool < 2*pp.NMax {
				pp.GenePool = 2 * pp.NMax
			}
			agg, _, err := measureIMGRN(dist, pp)
			return agg, err
		})
}

// Fig12 reproduces Figure 12: scalability vs database size N.
func Fig12(p Params) ([]Figure, error) {
	ns := p.NSweep()
	xs := make([]float64, len(ns))
	for i, n := range ns {
		xs[i] = float64(n)
	}
	return sweepSynthetic("fig12", "IM-GRN scalability vs N", "N", xs, p,
		func(dist synth.Distribution, x float64) (Aggregate, error) {
			pp := p
			pp.N = int(x)
			agg, _, err := measureIMGRN(dist, pp)
			return agg, err
		})
}

// Fig13 reproduces Figure 13: index construction time vs [n_min, n_max]
// and vs N.
func Fig13(p Params) ([]Figure, error) {
	dists := []synth.Distribution{synth.Uniform, synth.Gaussian}

	ranges := p.RangeSweep()
	figA := Figure{ID: "fig13a", Title: "Index construction time vs [n_min,n_max] (x = n_max)",
		XLabel: "n_max", YLabel: "seconds"}
	for _, dist := range dists {
		s := Series{Name: dist.String()}
		for _, r := range ranges {
			pp := p
			pp.NMin, pp.NMax = r[0], r[1]
			if pp.GenePool < 2*pp.NMax {
				pp.GenePool = 2 * pp.NMax
			}
			elapsed, err := buildOnly(dist, pp)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(r[1]))
			s.Y = append(s.Y, elapsed.Seconds())
		}
		figA.Series = append(figA.Series, s)
	}

	figB := Figure{ID: "fig13b", Title: "Index construction time vs N",
		XLabel: "N", YLabel: "seconds"}
	for _, dist := range dists {
		s := Series{Name: dist.String()}
		for _, n := range p.NSweep() {
			pp := p
			pp.N = n
			elapsed, err := buildOnly(dist, pp)
			if err != nil {
				return nil, err
			}
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, elapsed.Seconds())
		}
		figB.Series = append(figB.Series, s)
	}
	return []Figure{figA, figB}, nil
}

func buildOnly(dist synth.Distribution, p Params) (time.Duration, error) {
	ds, err := buildSynthetic(dist, p)
	if err != nil {
		return 0, err
	}
	idx, err := buildIndex(ds, p)
	if err != nil {
		return 0, err
	}
	return idx.Stats().Elapsed, nil
}
