package experiments

import (
	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/synth"
)

// Stages reports the observability-layer cost breakdown over the γ sweep
// on the Uni dataset: per-stage query time (query-GRN inference, index
// traversal, Lemma-5 Markov-bound pruning, exact Monte Carlo
// verification) plus edge-probability cache hits/misses per query under
// a cache shared across the workload. This is the harness counterpart of
// the server's imgrn_stage_seconds metrics: the filter/verify split it
// prints is the pruning-power axis of Figures 5–7 (see EXPERIMENTS.md
// "Reading the numbers").
func Stages(p Params) ([]Figure, error) {
	cache, err := newSweepCache(p)
	if err != nil {
		return nil, err
	}
	xs := GammaSweep
	stageSeries := []string{"infer (s)", "traverse (s)", "markov_prune (s)", "monte_carlo (s)"}
	fTime := Figure{ID: "stages-time", Title: "Per-stage query time vs γ (Uni)",
		XLabel: "γ", YLabel: "seconds"}
	fCache := Figure{ID: "stages-cache", Title: "Edge-probability cache effectiveness vs γ (Uni; cache shared across the workload)",
		XLabel: "γ", YLabel: "avg per query"}
	timeS := make([]Series, len(stageSeries))
	for i, name := range stageSeries {
		timeS[i] = Series{Name: name}
	}
	hitS, missS := Series{Name: "cacheHits"}, Series{Name: "cacheMisses"}
	for _, x := range xs {
		cp := coreParams(p)
		cp.Gamma = x
		// One cache per sweep point, shared by the whole workload: hits
		// measure cross-query reuse at identical estimator settings.
		cp.Cache = core.NewEdgeProbCache(0)
		agg, err := cache.run(synth.Uniform, p.NQ, cp)
		if err != nil {
			return nil, err
		}
		ys := []float64{agg.InferSeconds, agg.TraversalSeconds, agg.MarkovSeconds, agg.MonteCarloSeconds}
		for i := range timeS {
			timeS[i].X = append(timeS[i].X, x)
			timeS[i].Y = append(timeS[i].Y, ys[i])
		}
		hitS.X = append(hitS.X, x)
		hitS.Y = append(hitS.Y, agg.CacheHits)
		missS.X = append(missS.X, x)
		missS.Y = append(missS.Y, agg.CacheMisses)
	}
	fTime.Series = timeS
	fCache.Series = []Series{hitS, missS}
	return []Figure{fTime, fCache}, nil
}
