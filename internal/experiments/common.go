package experiments

import (
	"fmt"
	"time"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/synth"
)

// buildSynthetic generates one synthetic dataset (Uni or Gau) under p.
func buildSynthetic(dist synth.Distribution, p Params) (*synth.Dataset, error) {
	return synth.GenerateDatabase(synth.DBParams{
		N:    p.N,
		NMin: p.NMin, NMax: p.NMax,
		LMin: p.LMin, LMax: p.LMax,
		Dist:     dist,
		GenePool: p.GenePool,
		Seed:     p.Seed ^ uint64(dist+1)*0x9e3779b97f4a7c15,
	})
}

// buildReal carves the "Real" dataset out of the three organism stand-ins.
func buildReal(p Params) (*synth.Dataset, error) {
	genesPerOrganism := 4 * p.NMax
	return synth.RealDataset(p.N, p.NMin, p.NMax, p.LMin, p.LMax,
		genesPerOrganism, p.ROCSampleCap(), p.Seed)
}

// buildIndex constructs the IM-GRN index over ds with p's knobs.
func buildIndex(ds *synth.Dataset, p Params) (*index.Index, error) {
	return index.Build(ds.DB, index.Options{
		D:           p.D,
		Samples:     p.EmbedSamples,
		Seed:        p.Seed,
		Bits:        1024,
		BufferPages: 1024,
	})
}

// coreParams converts experiment params to query-processor params.
func coreParams(p Params) core.Params {
	return core.Params{
		Gamma:    p.Gamma,
		Alpha:    p.Alpha,
		Samples:  p.Samples,
		Seed:     p.Seed ^ 0xc2b2ae3d27d4eb4f,
		Analytic: p.Analytic,
	}
}

// workload extracts the query matrices of one measurement (Section 6.1:
// random connected sub-matrices of database matrices).
func workload(ds *synth.Dataset, p Params, nq int) ([]*gene.Matrix, error) {
	rng := randgen.New(p.Seed ^ 0x8d2fa3c1e5b79604)
	queries := make([]*gene.Matrix, 0, p.Queries)
	for len(queries) < p.Queries {
		q, _, err := ds.ExtractQuery(rng, nq)
		if err != nil {
			return nil, fmt.Errorf("experiments: extracting query: %w", err)
		}
		queries = append(queries, q)
	}
	return queries, nil
}

// Aggregate averages the Section-6 metrics over a query workload, plus
// the per-stage timings and cache effectiveness the observability layer
// surfaces (all averaged per query).
type Aggregate struct {
	CPUSeconds float64 // traversal + refinement, averaged
	IOCost     float64 // page accesses, averaged
	Candidates float64 // candidate genes after pruning, averaged
	Answers    float64
	Queries    int

	// Stage breakdown: query-GRN inference, index traversal, Lemma-5
	// upper-bound pruning and exact Monte Carlo verification (the latter
	// two are aggregate per-candidate CPU time; see core.Stats).
	InferSeconds      float64
	TraversalSeconds  float64
	MarkovSeconds     float64
	MonteCarloSeconds float64

	// Edge-probability cache effectiveness (zero when no cache is set).
	CacheHits   float64
	CacheMisses float64
}

func (a Aggregate) String() string {
	return fmt.Sprintf("cpu=%.6fs io=%.1f cand=%.2f ans=%.2f "+
		"stages[infer=%.6fs traverse=%.6fs markov=%.6fs mc=%.6fs] cacheHit=%.1f cacheMiss=%.1f (over %d queries)",
		a.CPUSeconds, a.IOCost, a.Candidates, a.Answers,
		a.InferSeconds, a.TraversalSeconds, a.MarkovSeconds, a.MonteCarloSeconds,
		a.CacheHits, a.CacheMisses, a.Queries)
}

// queryEngine abstracts the three methods (IM-GRN, Baseline, LinearScan).
type queryEngine interface {
	Query(mq *gene.Matrix) ([]core.Answer, core.Stats, error)
}

// runWorkload executes all queries on one engine and averages the metrics.
func runWorkload(eng queryEngine, queries []*gene.Matrix) (Aggregate, error) {
	var agg Aggregate
	for _, q := range queries {
		_, st, err := eng.Query(q)
		if err != nil {
			return agg, err
		}
		agg.CPUSeconds += (st.Traversal + st.Refinement).Seconds()
		agg.IOCost += float64(st.IOCost)
		agg.Candidates += float64(st.CandidateGenes)
		agg.Answers += float64(st.Answers)
		agg.InferSeconds += st.InferQuery.Seconds()
		agg.TraversalSeconds += st.Traversal.Seconds()
		agg.MarkovSeconds += st.MarkovPrune.Seconds()
		agg.MonteCarloSeconds += st.MonteCarlo.Seconds()
		agg.CacheHits += float64(st.CacheHits)
		agg.CacheMisses += float64(st.CacheMisses)
		agg.Queries++
	}
	if agg.Queries > 0 {
		n := float64(agg.Queries)
		agg.CPUSeconds /= n
		agg.IOCost /= n
		agg.Candidates /= n
		agg.Answers /= n
		agg.InferSeconds /= n
		agg.TraversalSeconds /= n
		agg.MarkovSeconds /= n
		agg.MonteCarloSeconds /= n
		agg.CacheHits /= n
		agg.CacheMisses /= n
	}
	return agg, nil
}

// measureIMGRN builds (dataset, index, processor), runs the workload and
// returns the aggregate plus the build duration (for Figure 13).
func measureIMGRN(dist synth.Distribution, p Params) (Aggregate, time.Duration, error) {
	ds, err := buildSynthetic(dist, p)
	if err != nil {
		return Aggregate{}, 0, err
	}
	idx, err := buildIndex(ds, p)
	if err != nil {
		return Aggregate{}, 0, err
	}
	proc, err := core.NewProcessor(idx, coreParams(p))
	if err != nil {
		return Aggregate{}, 0, err
	}
	queries, err := workload(ds, p, p.NQ)
	if err != nil {
		return Aggregate{}, 0, err
	}
	agg, err := runWorkload(proc, queries)
	return agg, idx.Stats().Elapsed, err
}
