package pivot

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/stats"
	"github.com/imgrn/imgrn/internal/vecmath"
)

func randomGeneMatrix(t *testing.T, rng *randgen.Rand, n, l int) *gene.Matrix {
	t.Helper()
	ids := make([]gene.ID, n)
	cols := make([][]float64, n)
	for j := 0; j < n; j++ {
		ids[j] = gene.ID(j)
		col := make([]float64, l)
		for i := range col {
			col[i] = rng.Gaussian(0, 1)
		}
		cols[j] = col
	}
	m, err := gene.NewMatrix(0, ids, cols)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEmbedCoordinates(t *testing.T) {
	rng := randgen.New(70)
	m := randomGeneMatrix(t, rng, 8, 6)
	est := stats.NewEstimator(71)
	emb, err := Embed(m, []int{0, 3}, est, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if emb.D != 2 {
		t.Fatalf("D = %d", emb.D)
	}
	for j := 0; j < m.NumGenes(); j++ {
		for r, pj := range emb.PivotIdx {
			wantX := vecmath.Euclidean(m.StdCol(j), m.StdCol(pj))
			if math.Abs(emb.X[j][r]-wantX) > 1e-12 {
				t.Errorf("X[%d][%d] = %v, want %v", j, r, emb.X[j][r], wantX)
			}
			wantY := stats.ExactExpectedPermDistance(m.StdCol(pj), m.StdCol(j))
			if math.Abs(emb.Y[j][r]-wantY) > 0.03 {
				t.Errorf("Y[%d][%d] = %v, exact %v", j, r, emb.Y[j][r], wantY)
			}
		}
	}
}

func TestEmbedPointLayout(t *testing.T) {
	rng := randgen.New(72)
	m := randomGeneMatrix(t, rng, 4, 5)
	est := stats.NewEstimator(73)
	emb, err := Embed(m, []int{1, 2}, est, 64)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 4)
	pt := emb.Point(3, buf)
	if pt[0] != emb.X[3][0] || pt[1] != emb.Y[3][0] || pt[2] != emb.X[3][1] || pt[3] != emb.Y[3][1] {
		t.Errorf("interleaved layout wrong: %v", pt)
	}
}

func TestEmbedValidation(t *testing.T) {
	rng := randgen.New(74)
	m := randomGeneMatrix(t, rng, 3, 4)
	est := stats.NewEstimator(75)
	if _, err := Embed(m, nil, est, 16); err == nil {
		t.Error("no pivots should error")
	}
	if _, err := Embed(m, []int{7}, est, 16); err == nil {
		t.Error("out-of-range pivot should error")
	}
}

// TestUpperBoundSoundness is the key pruning-correctness property: the
// pivot-based upper bound (with near-exact Y coordinates) dominates the
// exact two-sided edge probability for every pair.
func TestUpperBoundSoundness(t *testing.T) {
	rng := randgen.New(76)
	est := stats.NewEstimator(77)
	for trial := 0; trial < 15; trial++ {
		m := randomGeneMatrix(t, rng, 6, 6)
		emb, err := Embed(m, []int{0, 1}, est, 6000)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 6; s++ {
			for u := s + 1; u < 6; u++ {
				exact := stats.ExactAbsEdgeProbability(m.StdCol(s), m.StdCol(u))
				ub := emb.UpperBound(s, u, false)
				if ub < exact-0.05 {
					t.Errorf("trial %d pair (%d,%d): ub %v < exact %v", trial, s, u, ub, exact)
				}
			}
		}
	}
}

func TestUpperBoundSoundnessOneSided(t *testing.T) {
	rng := randgen.New(78)
	est := stats.NewEstimator(79)
	for trial := 0; trial < 15; trial++ {
		m := randomGeneMatrix(t, rng, 6, 6)
		emb, err := Embed(m, []int{0, 1}, est, 6000)
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 6; s++ {
			for u := s + 1; u < 6; u++ {
				exact := stats.ExactEdgeProbability(m.StdCol(s), m.StdCol(u))
				ub := emb.UpperBound(s, u, true)
				if ub < exact-0.05 {
					t.Errorf("trial %d pair (%d,%d): ub %v < exact %v", trial, s, u, ub, exact)
				}
			}
		}
	}
}

// TestEffectiveDistanceLBIsLowerBound: the pivot-space bound never exceeds
// the true (two-sided) distance.
func TestEffectiveDistanceLB(t *testing.T) {
	rng := randgen.New(80)
	f := func(seed uint64) bool {
		r := randgen.New(seed ^ rng.Uint64())
		l := 6
		xs := make([]float64, l)
		xt := make([]float64, l)
		p1 := make([]float64, l)
		p2 := make([]float64, l)
		for i := 0; i < l; i++ {
			xs[i] = r.Gaussian(0, 1)
			xt[i] = r.Gaussian(0, 1)
			p1[i] = r.Gaussian(0, 1)
			p2[i] = r.Gaussian(0, 1)
		}
		for _, v := range [][]float64{xs, xt, p1, p2} {
			if !vecmath.Standardize(v) {
				return true
			}
		}
		xsC := []float64{vecmath.Euclidean(xs, p1), vecmath.Euclidean(xs, p2)}
		xtC := []float64{vecmath.Euclidean(xt, p1), vecmath.Euclidean(xt, p2)}
		d := vecmath.Euclidean(xs, xt)
		if lb := EffectiveDistanceLB(xsC, xtC, true); lb > d+1e-9 {
			return false
		}
		dAbs := stats.TwoSidedDistance(d)
		return EffectiveDistanceLB(xsC, xtC, false) <= dAbs+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCostMatchesDefinition(t *testing.T) {
	rng := randgen.New(81)
	m := randomGeneMatrix(t, rng, 10, 8)
	piv := []int{2, 5, 7}
	got := Cost(m, piv)
	// T_i = Σ_s min_{r,w}(d_r + d_w) = Σ_s 2·min_r d_r.
	var want float64
	for s := 0; s < m.NumGenes(); s++ {
		best := math.Inf(1)
		for _, pj := range piv {
			if d := vecmath.Euclidean(m.StdCol(s), m.StdCol(pj)); d < best {
				best = d
			}
		}
		want += 2 * best
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Cost = %v, want %v", got, want)
	}
}

func TestSelectPivotsImprovesOnRandom(t *testing.T) {
	rng := randgen.New(82)
	m := randomGeneMatrix(t, rng, 30, 10)
	selRng := randgen.New(83)
	selected := SelectPivots(m, 3, SelectionParams{GlobalIter: 4, SwapIter: 40}, selRng)
	selCost := Cost(m, selected)
	// Average cost of random pivot sets.
	var avg float64
	const trials = 30
	for i := 0; i < trials; i++ {
		avg += Cost(m, selRng.SampleWithoutReplacement(30, 3))
	}
	avg /= trials
	if selCost > avg {
		t.Errorf("selected cost %v worse than random average %v", selCost, avg)
	}
}

func TestSelectPivotsSmallMatrix(t *testing.T) {
	rng := randgen.New(84)
	m := randomGeneMatrix(t, rng, 2, 5)
	piv := SelectPivots(m, 4, DefaultSelection, randgen.New(85))
	if len(piv) != 4 {
		t.Fatalf("pivot count = %d, want 4 (padded)", len(piv))
	}
	for _, p := range piv {
		if p < 0 || p >= 2 {
			t.Errorf("pivot %d out of range", p)
		}
	}
}

func TestSelectPivotsDeterministic(t *testing.T) {
	rng := randgen.New(86)
	m := randomGeneMatrix(t, rng, 20, 8)
	a := SelectPivots(m, 2, DefaultSelection, randgen.New(9))
	b := SelectPivots(m, 2, DefaultSelection, randgen.New(9))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different pivots")
		}
	}
}

func TestSelectPivotsEmpty(t *testing.T) {
	rng := randgen.New(87)
	m := randomGeneMatrix(t, rng, 3, 4)
	if piv := SelectPivots(m, 0, DefaultSelection, rng); piv != nil {
		t.Errorf("d=0 should return nil, got %v", piv)
	}
}

func TestPrunable(t *testing.T) {
	rng := randgen.New(88)
	m := randomGeneMatrix(t, rng, 6, 6)
	est := stats.NewEstimator(89)
	emb, err := Embed(m, []int{0}, est, 200)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 6; s++ {
		for u := s + 1; u < 6; u++ {
			want := emb.UpperBound(s, u, false) <= 0.8
			if got := emb.Prunable(s, u, 0.8, false); got != want {
				t.Errorf("Prunable(%d,%d) = %v, ub = %v", s, u, got, emb.UpperBound(s, u, false))
			}
		}
	}
}
