// Package pivot implements the pivot-based matrix embedding of Section 4:
// each gene feature vector X_s of matrix M_i is mapped — via d pivot
// vectors selected from M_i itself — to a 2d-dimensional point
//
//	g_{i,s} = (x_s[1], y_s[1]; …; x_s[d], y_s[d])
//	x_s[r]  = dist(X_s, piv_r)
//	y_s[r]  = E(dist(X_s^R, piv_r))
//
// which embeds matrices of heterogeneous dimensionality l_i into one common
// space. The package also provides the pivot-based probability upper bound
// (the PPR pruning condition of Section 4.2) and the cost-model-driven
// pivot selection algorithm of Figure 3.
package pivot

import (
	"fmt"
	"math"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/stats"
	"github.com/imgrn/imgrn/internal/vecmath"
)

// Embedding holds the pivot embedding of one matrix.
type Embedding struct {
	// D is the number of pivots.
	D int
	// PivotIdx are the column indices of M_i chosen as pivots. Entries may
	// repeat when the matrix has fewer than D columns.
	PivotIdx []int
	// X[j][r] = dist(X_j, piv_r) on standardized vectors.
	X [][]float64
	// Y[j][r] = E(dist(X_j^R, piv_r)), Monte Carlo estimated.
	Y [][]float64
}

// Point writes the 2d-dimensional embedded coordinates of column j into
// dst (len >= 2D) in the interleaved (x[1], y[1], …, x[d], y[d]) layout of
// Section 5.1 and returns dst[:2D].
func (e *Embedding) Point(j int, dst []float64) []float64 {
	dst = dst[:2*e.D]
	for r := 0; r < e.D; r++ {
		dst[2*r] = e.X[j][r]
		dst[2*r+1] = e.Y[j][r]
	}
	return dst
}

// Embed computes the embedding of m over the pivots given by column
// indices pivotIdx, estimating each expected randomized distance with
// `samples` Monte Carlo draws (stats.DefaultSamples when <= 0).
func Embed(m *gene.Matrix, pivotIdx []int, est *stats.Estimator, samples int) (*Embedding, error) {
	d := len(pivotIdx)
	if d == 0 {
		return nil, fmt.Errorf("pivot: need at least one pivot")
	}
	pivs := make([][]float64, d)
	for r, pj := range pivotIdx {
		if pj < 0 || pj >= m.NumGenes() {
			return nil, fmt.Errorf("pivot: pivot index %d out of range [0,%d)", pj, m.NumGenes())
		}
		pivs[r] = m.StdCol(pj)
	}
	n := m.NumGenes()
	emb := &Embedding{
		D:        d,
		PivotIdx: append([]int(nil), pivotIdx...),
		X:        make([][]float64, n),
		Y:        make([][]float64, n),
	}
	for j := 0; j < n; j++ {
		xs := m.StdCol(j)
		xrow := make([]float64, d)
		yrow := make([]float64, d)
		for r := 0; r < d; r++ {
			xrow[r] = vecmath.Euclidean(xs, pivs[r])
			yrow[r] = est.ExpectedPermDistance(pivs[r], xs, samples)
		}
		emb.X[j] = xrow
		emb.Y[j] = yrow
	}
	return emb, nil
}

// UpperBound returns the pivot-based upper bound ub_P(e_{s,t}) =
// min_w ub_P(e_{s,t}, piv_w) of Section 4.2, evaluated in both
// randomization directions (X_t^R and X_s^R are exchangeable for a uniform
// permutation) and clamped to [0, 1]:
//
//	C_w        = D_lb − x_s[w]
//	ub(…, w)   = 1                    if C_w ≤ 0      (Case 1)
//	             min(1, y_t[w]/C_w)   otherwise       (Case 2, Markov)
//
// where for the one-sided Eq.-(4) measure D_lb is the triangle lower bound
// max_r |x_s[r] − x_t[r]| on dist(X_s, X_t), and for the (default)
// two-sided absolute measure it is the lower bound on the |cor|-equivalent
// distance min(dist, sqrt(4 − dist²)).
func (e *Embedding) UpperBound(s, t int, oneSided bool) float64 {
	return UpperBoundCoords(e.X[s], e.Y[s], e.X[t], e.Y[t], oneSided)
}

// UpperBoundCoords computes the pivot-based upper bound directly from
// embedded coordinates: xs[r] = dist(X_s, piv_r), ys[r] = E(dist(X_s^R,
// piv_r)), and likewise for t. Both vectors must use the same pivots.
// The index layer applies it to leaf points whose matrices are unknown at
// traversal time; coordinates of points from the same data source always
// share pivots, and candidate pairs are restricted to one source before
// this bound is consulted for pruning decisions.
func UpperBoundCoords(xs, ys, xt, yt []float64, oneSided bool) float64 {
	dlb := EffectiveDistanceLB(xs, xt, oneSided)
	ub := 1.0
	for w := range xs {
		if c := dlb - xs[w]; c > 0 {
			if b := yt[w] / c; b < ub {
				ub = b
			}
		}
		if c := dlb - xt[w]; c > 0 {
			if b := ys[w] / c; b < ub {
				ub = b
			}
		}
	}
	if ub < 0 {
		ub = 0
	}
	return ub
}

// EffectiveDistanceLB returns the pivot-space lower bound on the distance
// that enters the Markov denominator: the triangle lower bound
// max_r |x_s[r] − x_t[r]| for the one-sided measure, or for the two-sided
// measure the lower bound on min(dist, sqrt(4 − dist²)) obtained from the
// triangle lower *and* upper (min_r x_s[r]+x_t[r]) bounds.
func EffectiveDistanceLB(xs, xt []float64, oneSided bool) float64 {
	lbd := 0.0
	for r := range xs {
		if v := abs(xs[r] - xt[r]); v > lbd {
			lbd = v
		}
	}
	if oneSided {
		return lbd
	}
	ubd := math.Inf(1)
	for r := range xs {
		if v := xs[r] + xt[r]; v < ubd {
			ubd = v
		}
	}
	alt2 := 4 - ubd*ubd
	if alt2 < 0 {
		alt2 = 0
	}
	if alt := math.Sqrt(alt2); alt < lbd {
		return alt
	}
	return lbd
}

// Prunable reports whether edge {s, t} can be pruned at inference threshold
// gamma, i.e. whether the pivot-based upper bound is ≤ γ (the PPR condition
// of Figure 2).
func (e *Embedding) Prunable(s, t int, gamma float64, oneSided bool) bool {
	return e.UpperBound(s, t, oneSided) <= gamma
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// VectorCost is the per-vector term of the Figure-3 cost function: the
// contribution of one gene vector with pivot distances dists[r] =
// dist(X_s, piv_r),
//
//	min_r min_w ( d_r + d_w )  =  2 · min_r d_r
//
// (the double minimum collapses because the two pivot choices are
// independent). It is the single scoring rule shared by pivot selection
// (Cost), the ablation benchmarks, and the query planner's §4 cost-model
// prior: lower cost means a larger expected pivot-based pruning region.
func VectorCost(dists []float64) float64 {
	if len(dists) == 0 {
		return 0
	}
	min := dists[0]
	for _, d := range dists[1:] {
		if d < min {
			min = d
		}
	}
	return 2 * min
}

// Cost evaluates the Figure-3 cost function of a pivot set over matrix m:
//
//	T_i = Σ_s VectorCost(dists_s) = Σ_s min_r min_w ( dist(X_s, piv_r) + dist(X_s, piv_w) )
//
// Lower cost means a larger expected pivot-based pruning region.
func Cost(m *gene.Matrix, pivotIdx []int) float64 {
	pivs := make([][]float64, len(pivotIdx))
	for r, pj := range pivotIdx {
		pivs[r] = m.StdCol(pj)
	}
	var total float64
	dists := make([]float64, len(pivs))
	for s := 0; s < m.NumGenes(); s++ {
		xs := m.StdCol(s)
		for r, pv := range pivs {
			dists[r] = vecmath.Euclidean(xs, pv)
		}
		total += VectorCost(dists)
	}
	return total
}

// SelectionParams tunes the randomized swap search of Figure 3.
type SelectionParams struct {
	GlobalIter int // restarts with fresh random pivots (line 2)
	SwapIter   int // random swap attempts per restart (line 5)
}

// DefaultSelection mirrors a practical configuration of the paper's
// algorithm: a handful of restarts, each with enough swaps to converge on
// the small d values of Table 2 (d ≤ 4).
var DefaultSelection = SelectionParams{GlobalIter: 3, SwapIter: 24}

// SelectPivots chooses d pivot columns of m minimizing Cost via the
// randomized swap search of Figure 3. When m has fewer than d columns the
// full column set is returned padded by repetition. The rng makes the
// search deterministic per seed.
func SelectPivots(m *gene.Matrix, d int, params SelectionParams, rng *randgen.Rand) []int {
	n := m.NumGenes()
	if n == 0 || d <= 0 {
		return nil
	}
	if n <= d {
		out := make([]int, d)
		for i := range out {
			out[i] = i % n
		}
		return out
	}
	if params.GlobalIter <= 0 {
		params.GlobalIter = 1
	}
	var best []int
	globalCost := float64(0)
	haveBest := false
	for a := 0; a < params.GlobalIter; a++ {
		piv := rng.SampleWithoutReplacement(n, d)
		inPiv := make(map[int]bool, d)
		for _, p := range piv {
			inPiv[p] = true
		}
		localCost := Cost(m, piv)
		for b := 0; b < params.SwapIter; b++ {
			ri := rng.Intn(d)
			// Draw a non-pivot column.
			xt := rng.Intn(n)
			for inPiv[xt] {
				xt = rng.Intn(n)
			}
			old := piv[ri]
			piv[ri] = xt
			if c := Cost(m, piv); c < localCost {
				localCost = c
				delete(inPiv, old)
				inPiv[xt] = true
			} else {
				piv[ri] = old
			}
		}
		if !haveBest || localCost < globalCost {
			globalCost = localCost
			best = append(best[:0], piv...)
			haveBest = true
		}
	}
	return best
}
