// Package gene defines the data model of Section 2.1: gene feature
// matrices M_i of heterogeneous shape (l_i samples × n_i genes), the gene
// feature database D that collects N of them from distinct data sources,
// and a catalog mapping human-readable gene names to integer gene IDs (the
// paper represents gene names by integers for indexing).
package gene

import (
	"fmt"
	"sort"

	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/vecmath"
)

// ID identifies a gene. Identical IDs across matrices denote the same gene
// measured by different data sources.
type ID int32

// Matrix is one gene feature matrix M_i: feature vectors for NumGenes()
// genes, each observed over Samples() individuals (e.g. patients). Feature
// vectors are stored column-wise because every algorithm in the paper
// consumes whole gene vectors.
type Matrix struct {
	// Source is the data source identifier i of this matrix within D.
	Source int
	// genes[j] labels column j. IDs are unique within a matrix.
	genes []ID
	// cols[j] is the raw feature vector of gene genes[j], length = samples.
	cols [][]float64
	// std[j] is cols[j] standardized to zero mean / unit norm (Lemma 1
	// normal form); built once at construction.
	std [][]float64
	// informative[j] is false when cols[j] has zero variance and therefore
	// carries no correlation signal.
	informative []bool
	byID        map[ID]int
	samples     int
}

// NewMatrix builds a Matrix from column vectors. genes[j] labels cols[j];
// all columns must share one length and gene IDs must be unique.
// The columns are retained (not copied); callers must not mutate them.
func NewMatrix(source int, genes []ID, cols [][]float64) (*Matrix, error) {
	if len(genes) != len(cols) {
		return nil, fmt.Errorf("gene: %d gene IDs for %d columns", len(genes), len(cols))
	}
	m := &Matrix{
		Source:      source,
		genes:       genes,
		cols:        cols,
		std:         make([][]float64, len(cols)),
		informative: make([]bool, len(cols)),
		byID:        make(map[ID]int, len(genes)),
	}
	if len(cols) > 0 {
		m.samples = len(cols[0])
	}
	for j, c := range cols {
		if len(c) != m.samples {
			return nil, fmt.Errorf("gene: column %d has %d samples, want %d", j, len(c), m.samples)
		}
		std, ok := vecmath.StandardizedCopy(c)
		m.std[j] = std
		m.informative[j] = ok
	}
	for j, g := range genes {
		if _, dup := m.byID[g]; dup {
			return nil, fmt.Errorf("gene: duplicate gene ID %d in source %d", g, source)
		}
		m.byID[g] = j
	}
	return m, nil
}

// NewMatrixFromRows builds a Matrix from an l×n row-major sample matrix
// (row j = sample of patient j, column k = gene k), the layout of
// Definition 1.
func NewMatrixFromRows(source int, genes []ID, rows *vecmath.Matrix) (*Matrix, error) {
	if rows.Cols != len(genes) {
		return nil, fmt.Errorf("gene: %d gene IDs for %d matrix columns", len(genes), rows.Cols)
	}
	cols := make([][]float64, rows.Cols)
	for j := range cols {
		cols[j] = rows.Col(j)
	}
	return NewMatrix(source, genes, cols)
}

// NumGenes returns n_i, the number of genes (columns).
func (m *Matrix) NumGenes() int { return len(m.genes) }

// Samples returns l_i, the number of individuals (rows).
func (m *Matrix) Samples() int { return m.samples }

// Gene returns the ID labelling column j.
func (m *Matrix) Gene(j int) ID { return m.genes[j] }

// Genes returns the column labels; callers must not mutate the slice.
func (m *Matrix) Genes() []ID { return m.genes }

// Col returns the raw feature vector of column j (not a copy).
func (m *Matrix) Col(j int) []float64 { return m.cols[j] }

// StdCol returns the standardized feature vector of column j (not a copy).
func (m *Matrix) StdCol(j int) []float64 { return m.std[j] }

// Informative reports whether column j has non-zero variance.
func (m *Matrix) Informative(j int) bool { return m.informative[j] }

// IndexOf returns the column index of gene g, or -1 if absent.
func (m *Matrix) IndexOf(g ID) int {
	if j, ok := m.byID[g]; ok {
		return j
	}
	return -1
}

// Has reports whether gene g appears in this matrix.
func (m *Matrix) Has(g ID) bool { _, ok := m.byID[g]; return ok }

// WithNoise returns a copy of m whose raw features have i.i.d. Gaussian
// noise N(0, sigma²) added, the corruption used in the robustness
// experiments of Section 6.2 (σ = 0.3).
func (m *Matrix) WithNoise(rng *randgen.Rand, sigma float64) *Matrix {
	cols := make([][]float64, len(m.cols))
	for j, c := range m.cols {
		nc := make([]float64, len(c))
		for i, v := range c {
			nc[i] = v + rng.Gaussian(0, sigma)
		}
		cols[j] = nc
	}
	genes := make([]ID, len(m.genes))
	copy(genes, m.genes)
	nm, err := NewMatrix(m.Source, genes, cols)
	if err != nil {
		// Shapes are preserved by construction; this cannot happen.
		panic(err)
	}
	return nm
}

// SubMatrix returns a new matrix restricted to the given column indices,
// with a fresh source ID. It is the extraction step used to derive query
// matrices M_Q from database matrices (Section 6.1).
func (m *Matrix) SubMatrix(source int, colIdx []int) (*Matrix, error) {
	genes := make([]ID, len(colIdx))
	cols := make([][]float64, len(colIdx))
	for k, j := range colIdx {
		if j < 0 || j >= len(m.cols) {
			return nil, fmt.Errorf("gene: column index %d out of range [0,%d)", j, len(m.cols))
		}
		genes[k] = m.genes[j]
		cols[k] = m.cols[j]
	}
	return NewMatrix(source, genes, cols)
}

// Database is the gene feature database D: N matrices from N data sources.
type Database struct {
	matrices []*Matrix
	bySource map[int]*Matrix
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{bySource: make(map[int]*Matrix)}
}

// Add appends a matrix; source IDs must be unique.
func (d *Database) Add(m *Matrix) error {
	if _, dup := d.bySource[m.Source]; dup {
		return fmt.Errorf("gene: duplicate data source ID %d", m.Source)
	}
	d.matrices = append(d.matrices, m)
	d.bySource[m.Source] = m
	return nil
}

// Remove deletes the matrix with the given data source ID, reporting
// whether it was present.
func (d *Database) Remove(source int) bool {
	if _, ok := d.bySource[source]; !ok {
		return false
	}
	delete(d.bySource, source)
	for i, m := range d.matrices {
		if m.Source == source {
			d.matrices = append(d.matrices[:i], d.matrices[i+1:]...)
			break
		}
	}
	return true
}

// Len returns N, the number of matrices.
func (d *Database) Len() int { return len(d.matrices) }

// Matrix returns the i-th matrix in insertion order.
func (d *Database) Matrix(i int) *Matrix { return d.matrices[i] }

// Matrices returns all matrices in insertion order; do not mutate.
func (d *Database) Matrices() []*Matrix { return d.matrices }

// BySource returns the matrix with the given data source ID, or nil.
func (d *Database) BySource(source int) *Matrix { return d.bySource[source] }

// GeneUniverse returns the sorted set of distinct gene IDs across all
// matrices.
func (d *Database) GeneUniverse() []ID {
	seen := make(map[ID]struct{})
	for _, m := range d.matrices {
		for _, g := range m.genes {
			seen[g] = struct{}{}
		}
	}
	out := make([]ID, 0, len(seen))
	for g := range seen {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats summarizes database shape for reporting.
type Stats struct {
	Matrices      int
	TotalVectors  int
	MinGenes      int
	MaxGenes      int
	MinSamples    int
	MaxSamples    int
	DistinctGenes int
}

// Summary computes Stats over the database.
func (d *Database) Summary() Stats {
	s := Stats{Matrices: d.Len()}
	if d.Len() == 0 {
		return s
	}
	s.MinGenes, s.MinSamples = int(^uint(0)>>1), int(^uint(0)>>1)
	for _, m := range d.matrices {
		n, l := m.NumGenes(), m.Samples()
		s.TotalVectors += n
		if n < s.MinGenes {
			s.MinGenes = n
		}
		if n > s.MaxGenes {
			s.MaxGenes = n
		}
		if l < s.MinSamples {
			s.MinSamples = l
		}
		if l > s.MaxSamples {
			s.MaxSamples = l
		}
	}
	s.DistinctGenes = len(d.GeneUniverse())
	return s
}
