package gene

import (
	"bytes"
	"testing"
)

// FuzzReadDatabase hardens the binary reader against corrupt or adversarial
// inputs: it must return an error or a valid database, never panic or
// allocate unboundedly. `go test -fuzz=FuzzReadDatabase ./internal/gene`
// explores further; the seed corpus runs in normal test mode.
func FuzzReadDatabase(f *testing.F) {
	// Seed: a valid one-matrix database.
	db := NewDatabase()
	m, err := NewMatrix(1, []ID{4, 9}, [][]float64{{1, 2, 3}, {4, 5, 6}})
	if err != nil {
		f.Fatal(err)
	}
	if err := db.Add(m); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDatabase(&buf, db); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:8])              // magic only
	f.Add(valid[:20])             // truncated header
	f.Add([]byte("IMGRNDB1"))     // bare magic
	f.Add(bytes.Repeat(valid, 2)) // trailing garbage
	// Flipped count byte.
	mutated := append([]byte(nil), valid...)
	mutated[8] = 0xFF
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadDatabase(bytes.NewReader(data))
		if err != nil {
			return
		}
		// On success the result must be internally consistent.
		for i := 0; i < got.Len(); i++ {
			gm := got.Matrix(i)
			if gm.NumGenes() != len(gm.Genes()) {
				t.Fatal("inconsistent matrix after successful parse")
			}
			for j := 0; j < gm.NumGenes(); j++ {
				if len(gm.Col(j)) != gm.Samples() {
					t.Fatal("ragged column after successful parse")
				}
			}
		}
	})
}
