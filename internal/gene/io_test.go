package gene

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"github.com/imgrn/imgrn/internal/randgen"
)

func randomDatabase(t *testing.T, n int, seed uint64) *Database {
	t.Helper()
	rng := randgen.New(seed)
	db := NewDatabase()
	for i := 0; i < n; i++ {
		genes := make([]ID, 2+rng.Intn(5))
		cols := make([][]float64, len(genes))
		l := 2 + rng.Intn(6)
		for j := range genes {
			genes[j] = ID(j*10 + rng.Intn(10))
			col := make([]float64, l)
			for k := range col {
				col[k] = rng.Gaussian(0, 1)
			}
			cols[j] = col
		}
		m, err := NewMatrix(i, genes, cols)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestDatabaseRoundTrip(t *testing.T) {
	db := randomDatabase(t, 7, 99)
	var buf bytes.Buffer
	if err := WriteDatabase(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertDatabasesEqual(t, db, got)
}

func assertDatabasesEqual(t *testing.T, want, got *Database) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		wm, gm := want.Matrix(i), got.Matrix(i)
		if gm.Source != wm.Source || gm.NumGenes() != wm.NumGenes() || gm.Samples() != wm.Samples() {
			t.Fatalf("matrix %d header mismatch", i)
		}
		for j := 0; j < wm.NumGenes(); j++ {
			if gm.Gene(j) != wm.Gene(j) {
				t.Fatalf("matrix %d gene %d mismatch", i, j)
			}
			wc, gc := wm.Col(j), gm.Col(j)
			for k := range wc {
				if wc[k] != gc[k] {
					t.Fatalf("matrix %d col %d row %d: %v != %v", i, j, k, gc[k], wc[k])
				}
			}
		}
	}
}

func TestEmptyDatabaseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDatabase(&buf, NewDatabase()); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDatabase(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 {
		t.Errorf("len = %d, want 0", got.Len())
	}
}

func TestReadDatabaseBadMagic(t *testing.T) {
	_, err := ReadDatabase(bytes.NewReader([]byte("NOTADB00xxxxxxx")))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("err = %v, want magic error", err)
	}
}

func TestReadDatabaseTruncated(t *testing.T) {
	db := randomDatabase(t, 3, 5)
	var buf bytes.Buffer
	if err := WriteDatabase(&buf, db); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadDatabase(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated stream should fail")
	}
}

func TestReadDatabaseImplausibleShape(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(dbMagic[:])
	buf.Write([]byte{1, 0, 0, 0}) // one matrix
	// source int64 = 0
	buf.Write(make([]byte, 8))
	// genes = 0xFFFFFFFF (implausible), samples = 1
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 0, 0, 0})
	if _, err := ReadDatabase(&buf); err == nil {
		t.Error("implausible header should fail")
	}
}

func TestSaveLoadDatabaseFile(t *testing.T) {
	db := randomDatabase(t, 4, 77)
	path := filepath.Join(t.TempDir(), "db.imgrn")
	if err := SaveDatabase(path, db); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDatabase(path)
	if err != nil {
		t.Fatal(err)
	}
	assertDatabasesEqual(t, db, got)
}

func TestLoadDatabaseMissingFile(t *testing.T) {
	if _, err := LoadDatabase(filepath.Join(t.TempDir(), "missing.imgrn")); err == nil {
		t.Error("missing file should error")
	}
}
