package gene

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func TestReadCSVGenesInColumns(t *testing.T) {
	in := "lexA,recA,uvrA\n1,4,7\n2,5,8\n3,6,9\n"
	cat := NewCatalog()
	m, err := ReadCSV(strings.NewReader(in), 5, GenesInColumns, ',', cat)
	if err != nil {
		t.Fatal(err)
	}
	if m.Source != 5 || m.NumGenes() != 3 || m.Samples() != 3 {
		t.Fatalf("shape: %d genes × %d samples", m.NumGenes(), m.Samples())
	}
	id, ok := cat.Lookup("recA")
	if !ok {
		t.Fatal("recA not interned")
	}
	j := m.IndexOf(id)
	if j != 1 {
		t.Fatalf("recA at column %d", j)
	}
	if got := m.Col(j); got[0] != 4 || got[2] != 6 {
		t.Errorf("recA column = %v", got)
	}
}

func TestReadCSVGenesInRows(t *testing.T) {
	in := "gene\tp1\tp2\tp3\tp4\nlexA\t1\t2\t3\t4\nrecA\t9\t8\t7\t6\n"
	cat := NewCatalog()
	m, err := ReadCSV(strings.NewReader(in), 1, GenesInRows, '\t', cat)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumGenes() != 2 || m.Samples() != 4 {
		t.Fatalf("shape: %d genes × %d samples", m.NumGenes(), m.Samples())
	}
	id, _ := cat.Lookup("recA")
	if got := m.Col(m.IndexOf(id)); got[0] != 9 || got[3] != 6 {
		t.Errorf("recA = %v", got)
	}
}

func TestReadCSVSharedCatalog(t *testing.T) {
	cat := NewCatalog()
	a, err := ReadCSV(strings.NewReader("g1,g2\n1,2\n3,4\n"), 1, GenesInColumns, ',', cat)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadCSV(strings.NewReader("g2,g3\n5,6\n7,8\n"), 2, GenesInColumns, ',', cat)
	if err != nil {
		t.Fatal(err)
	}
	id, _ := cat.Lookup("g2")
	if a.IndexOf(id) < 0 || b.IndexOf(id) < 0 {
		t.Error("shared gene should resolve to the same ID in both matrices")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cat := NewCatalog()
	cases := []struct{ name, in string }{
		{"header only", "g1,g2\n"},
		{"ragged", "g1,g2\n1\n"},
		{"non-numeric", "g1,g2\n1,x\n2,3\n"},
		{"empty gene name", "g1,\n1,2\n3,4\n"},
		{"duplicate genes", "g1,g1\n1,2\n3,4\n"},
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c.in), 0, GenesInColumns, ',', cat); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := ReadCSV(strings.NewReader("gene,p1\ng1,1\n"), 0, CSVLayout(9), ',', cat); err == nil {
		t.Error("unknown layout should error")
	}
	if _, err := ReadCSV(strings.NewReader("gene\ng1\n"), 0, GenesInRows, ',', cat); err == nil {
		t.Error("no sample columns should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	cat := NewCatalog()
	in := "alpha,beta\n1.5,-2\n0.25,3\n4,5.125\n"
	m, err := ReadCSV(strings.NewReader(in), 0, GenesInColumns, ',', cat)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, m, ',', cat); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadCSV(&buf, 0, GenesInColumns, ',', cat)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < m.NumGenes(); j++ {
		if m.Gene(j) != m2.Gene(j) {
			t.Fatal("gene IDs changed in round trip")
		}
		for i := 0; i < m.Samples(); i++ {
			if m.Col(j)[i] != m2.Col(j)[i] {
				t.Fatalf("value (%d,%d) changed: %v vs %v", i, j, m.Col(j)[i], m2.Col(j)[i])
			}
		}
	}
}

func TestReadCSVFileDelimiterInference(t *testing.T) {
	dir := t.TempDir()
	cat := NewCatalog()
	tsv := dir + "/m.tsv"
	if err := writeFile(tsv, "g1\tg2\n1\t2\n3\t4\n"); err != nil {
		t.Fatal(err)
	}
	m, err := ReadCSVFile(tsv, 0, GenesInColumns, cat)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumGenes() != 2 {
		t.Errorf("tsv genes = %d", m.NumGenes())
	}
	if _, err := ReadCSVFile(dir+"/missing.csv", 0, GenesInColumns, cat); err == nil {
		t.Error("missing file should error")
	}
}

func writeFile(path, content string) error {
	return writeFileBytes(path, []byte(content))
}

func writeFileBytes(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}
