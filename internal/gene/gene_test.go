package gene

import (
	"strings"
	"testing"

	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/vecmath"
)

func mustMatrix(t *testing.T, source int, ids []ID, cols [][]float64) *Matrix {
	t.Helper()
	m, err := NewMatrix(source, ids, cols)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func sampleMatrix(t *testing.T) *Matrix {
	return mustMatrix(t, 1, []ID{10, 20, 30}, [][]float64{
		{1, 2, 3, 4},
		{4, 3, 2, 1},
		{0, 1, 0, 1},
	})
}

func TestNewMatrixBasics(t *testing.T) {
	m := sampleMatrix(t)
	if m.NumGenes() != 3 || m.Samples() != 4 {
		t.Fatalf("shape = %dx%d", m.Samples(), m.NumGenes())
	}
	if m.Gene(1) != 20 {
		t.Errorf("Gene(1) = %d", m.Gene(1))
	}
	if m.IndexOf(30) != 2 || m.IndexOf(99) != -1 {
		t.Error("IndexOf wrong")
	}
	if !m.Has(10) || m.Has(11) {
		t.Error("Has wrong")
	}
}

func TestNewMatrixRejectsDuplicates(t *testing.T) {
	_, err := NewMatrix(1, []ID{5, 5}, [][]float64{{1, 2}, {3, 4}})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("err = %v, want duplicate gene error", err)
	}
}

func TestNewMatrixRejectsRaggedColumns(t *testing.T) {
	_, err := NewMatrix(1, []ID{1, 2}, [][]float64{{1, 2}, {3}})
	if err == nil {
		t.Error("ragged columns should be rejected")
	}
}

func TestNewMatrixRejectsCountMismatch(t *testing.T) {
	_, err := NewMatrix(1, []ID{1}, [][]float64{{1}, {2}})
	if err == nil {
		t.Error("gene/column count mismatch should be rejected")
	}
}

func TestStandardizedColumns(t *testing.T) {
	m := sampleMatrix(t)
	for j := 0; j < m.NumGenes(); j++ {
		if !m.Informative(j) {
			t.Errorf("column %d should be informative", j)
		}
		if !vecmath.IsStandardized(m.StdCol(j), 1e-9) {
			t.Errorf("StdCol(%d) not standardized", j)
		}
	}
}

func TestConstantColumnUninformative(t *testing.T) {
	m := mustMatrix(t, 1, []ID{1, 2}, [][]float64{{5, 5, 5}, {1, 2, 3}})
	if m.Informative(0) {
		t.Error("constant column should be uninformative")
	}
	if !m.Informative(1) {
		t.Error("varied column should be informative")
	}
}

func TestNewMatrixFromRows(t *testing.T) {
	rows := vecmath.NewMatrix(2, 3)
	rows.Set(0, 0, 1)
	rows.Set(1, 0, 2)
	rows.Set(0, 2, 7)
	m, err := NewMatrixFromRows(5, []ID{1, 2, 3}, rows)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Col(0); got[0] != 1 || got[1] != 2 {
		t.Errorf("Col(0) = %v", got)
	}
	if got := m.Col(2); got[0] != 7 {
		t.Errorf("Col(2) = %v", got)
	}
}

func TestWithNoise(t *testing.T) {
	m := sampleMatrix(t)
	n := m.WithNoise(randgen.New(1), 0.5)
	if n.NumGenes() != m.NumGenes() || n.Samples() != m.Samples() {
		t.Fatal("noise changed shape")
	}
	changed := false
	for j := 0; j < m.NumGenes(); j++ {
		if n.Gene(j) != m.Gene(j) {
			t.Error("noise changed gene IDs")
		}
		for i := 0; i < m.Samples(); i++ {
			if n.Col(j)[i] != m.Col(j)[i] {
				changed = true
			}
		}
	}
	if !changed {
		t.Error("noise changed no value")
	}
}

func TestSubMatrix(t *testing.T) {
	m := sampleMatrix(t)
	s, err := m.SubMatrix(-1, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.Source != -1 || s.NumGenes() != 2 {
		t.Fatalf("sub shape wrong: %+v", s)
	}
	if s.Gene(0) != 30 || s.Gene(1) != 10 {
		t.Errorf("sub genes = %v", s.Genes())
	}
	if s.Col(0)[1] != m.Col(2)[1] {
		t.Error("sub column data wrong")
	}
}

func TestSubMatrixOutOfRange(t *testing.T) {
	m := sampleMatrix(t)
	if _, err := m.SubMatrix(0, []int{5}); err == nil {
		t.Error("out-of-range column should error")
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase()
	if db.Len() != 0 {
		t.Fatal("new database not empty")
	}
	m1 := mustMatrix(t, 1, []ID{1, 2}, [][]float64{{1, 2}, {3, 4}})
	m2 := mustMatrix(t, 2, []ID{2, 3}, [][]float64{{1, 2, 3}, {4, 5, 6}})
	if err := db.Add(m1); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(m2); err != nil {
		t.Fatal(err)
	}
	if err := db.Add(m1); err == nil {
		t.Error("duplicate source should be rejected")
	}
	if db.Len() != 2 || db.Matrix(1) != m2 || db.BySource(1) != m1 {
		t.Error("database lookups wrong")
	}
	if db.BySource(42) != nil {
		t.Error("unknown source should be nil")
	}
	uni := db.GeneUniverse()
	if len(uni) != 3 || uni[0] != 1 || uni[2] != 3 {
		t.Errorf("universe = %v", uni)
	}
}

func TestDatabaseSummary(t *testing.T) {
	db := NewDatabase()
	if s := db.Summary(); s.Matrices != 0 {
		t.Error("empty summary wrong")
	}
	db.Add(mustMatrix(t, 1, []ID{1, 2}, [][]float64{{1, 2}, {3, 4}}))
	db.Add(mustMatrix(t, 2, []ID{2, 3, 4}, [][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}))
	s := db.Summary()
	if s.Matrices != 2 || s.TotalVectors != 5 {
		t.Errorf("summary = %+v", s)
	}
	if s.MinGenes != 2 || s.MaxGenes != 3 || s.MinSamples != 2 || s.MaxSamples != 3 {
		t.Errorf("summary ranges = %+v", s)
	}
	if s.DistinctGenes != 4 {
		t.Errorf("distinct genes = %d", s.DistinctGenes)
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	a := c.Intern("lexA")
	b := c.Intern("recA")
	if a == b {
		t.Fatal("distinct names share an ID")
	}
	if got := c.Intern("lexA"); got != a {
		t.Error("re-interning changed the ID")
	}
	if id, ok := c.Lookup("recA"); !ok || id != b {
		t.Error("Lookup failed")
	}
	if _, ok := c.Lookup("nope"); ok {
		t.Error("Lookup invented a gene")
	}
	if c.Name(a) != "lexA" {
		t.Errorf("Name(%d) = %q", a, c.Name(a))
	}
	if got := c.Name(999); got != "gene#999" {
		t.Errorf("unknown name = %q", got)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "lexA" {
		t.Errorf("Names = %v", names)
	}
}
