package gene

import (
	"fmt"
	"sort"
)

// Catalog maps human-readable gene names (e.g. "G1234", "lexA") to integer
// gene IDs and back. IDs are assigned densely in registration order so they
// double as the 1-D gene coordinate of the (2d+1)-dimensional index points
// (Section 5.1).
type Catalog struct {
	byName map[string]ID
	names  []string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{byName: make(map[string]ID)}
}

// Intern returns the ID for name, registering it if new.
func (c *Catalog) Intern(name string) ID {
	if id, ok := c.byName[name]; ok {
		return id
	}
	id := ID(len(c.names))
	c.byName[name] = id
	c.names = append(c.names, name)
	return id
}

// Lookup returns the ID for name and whether it is registered.
func (c *Catalog) Lookup(name string) (ID, bool) {
	id, ok := c.byName[name]
	return id, ok
}

// Name returns the name registered for id, or a synthetic "gene#<id>" when
// the ID was never interned (e.g. data generated directly with numeric IDs).
func (c *Catalog) Name(id ID) string {
	if int(id) >= 0 && int(id) < len(c.names) {
		return c.names[id]
	}
	return fmt.Sprintf("gene#%d", int(id))
}

// Len returns the number of registered names.
func (c *Catalog) Len() int { return len(c.names) }

// Names returns all registered names sorted lexicographically.
func (c *Catalog) Names() []string {
	out := make([]string, len(c.names))
	copy(out, c.names)
	sort.Strings(out)
	return out
}
