package gene

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// Binary database format (little-endian):
//
//	magic   [8]byte  "IMGRNDB1"
//	count   uint32   number of matrices
//	repeat count times:
//	  source  int64
//	  genes   uint32  (n_i)
//	  samples uint32  (l_i)
//	  ids     n_i × int32
//	  data    n_i × l_i × float64, column-major (vector by vector)
//
// The format stores raw (unstandardized) features; standardized forms are
// recomputed at load time, keeping files portable across estimator changes.

var dbMagic = [8]byte{'I', 'M', 'G', 'R', 'N', 'D', 'B', '1'}

// WriteDatabase serializes d to w.
func WriteDatabase(w io.Writer, d *Database) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(dbMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(d.Len())); err != nil {
		return err
	}
	for _, m := range d.Matrices() {
		if err := writeMatrix(bw, m); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteMatrix serializes one matrix in the IMGRNDB1 per-matrix framing
// (source int64, genes uint32, samples uint32, ids int32×n, raw columns
// float64×n×l). It is the unit of the database format above and of the
// mutation WAL records in internal/wal.
func WriteMatrix(w io.Writer, m *Matrix) error { return writeMatrix(w, m) }

// ReadMatrix deserializes one matrix written by WriteMatrix, applying the
// same corrupt-header sanity caps as ReadDatabase.
func ReadMatrix(r io.Reader) (*Matrix, error) { return readMatrix(r) }

func writeMatrix(w io.Writer, m *Matrix) error {
	hdr := struct {
		Source  int64
		Genes   uint32
		Samples uint32
	}{int64(m.Source), uint32(m.NumGenes()), uint32(m.Samples())}
	if err := binary.Write(w, binary.LittleEndian, hdr); err != nil {
		return err
	}
	ids := make([]int32, m.NumGenes())
	for j := range ids {
		ids[j] = int32(m.Gene(j))
	}
	if err := binary.Write(w, binary.LittleEndian, ids); err != nil {
		return err
	}
	buf := make([]byte, 8*m.Samples())
	for j := 0; j < m.NumGenes(); j++ {
		col := m.Col(j)
		for i, v := range col {
			binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadDatabase deserializes a database written by WriteDatabase.
func ReadDatabase(r io.Reader) (*Database, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("gene: reading magic: %w", err)
	}
	if magic != dbMagic {
		return nil, fmt.Errorf("gene: bad magic %q, not an IM-GRN database file", magic[:])
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("gene: reading matrix count: %w", err)
	}
	db := NewDatabase()
	for i := uint32(0); i < count; i++ {
		m, err := readMatrix(br)
		if err != nil {
			return nil, fmt.Errorf("gene: reading matrix %d: %w", i, err)
		}
		if err := db.Add(m); err != nil {
			return nil, err
		}
	}
	return db, nil
}

func readMatrix(r io.Reader) (*Matrix, error) {
	var hdr struct {
		Source  int64
		Genes   uint32
		Samples uint32
	}
	if err := binary.Read(r, binary.LittleEndian, &hdr); err != nil {
		return nil, err
	}
	// Sanity caps against corrupt headers: bound each dimension and the
	// total cell count so a flipped bit cannot demand gigabytes.
	const (
		maxDim   = 1 << 22
		maxCells = 1 << 24
	)
	if hdr.Genes > maxDim || hdr.Samples > maxDim ||
		uint64(hdr.Genes)*uint64(hdr.Samples) > maxCells {
		return nil, fmt.Errorf("implausible matrix shape %dx%d", hdr.Samples, hdr.Genes)
	}
	ids32 := make([]int32, hdr.Genes)
	if err := binary.Read(r, binary.LittleEndian, ids32); err != nil {
		return nil, err
	}
	genes := make([]ID, hdr.Genes)
	for j, v := range ids32 {
		genes[j] = ID(v)
	}
	cols := make([][]float64, hdr.Genes)
	buf := make([]byte, 8*hdr.Samples)
	for j := range cols {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		col := make([]float64, hdr.Samples)
		for i := range col {
			col[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
		}
		cols[j] = col
	}
	return NewMatrix(int(hdr.Source), genes, cols)
}

// SaveDatabase writes d to the named file.
func SaveDatabase(path string, d *Database) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteDatabase(f, d); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadDatabase reads a database from the named file.
func LoadDatabase(path string) (*Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDatabase(f)
}
