package gene

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// CSVLayout selects how a delimited expression file is oriented.
type CSVLayout int

const (
	// GenesInColumns: header row holds gene names, each following row is
	// one individual's sample (the l×n layout of Definition 1).
	GenesInColumns CSVLayout = iota
	// GenesInRows: first column holds gene names, each following column is
	// one individual (the common microarray export layout).
	GenesInRows
)

// ReadCSV parses a delimited gene expression file into a Matrix,
// interning gene names through the catalog (so the same gene name maps to
// the same GeneID across data sources). comma selects the delimiter
// (',' for CSV, '\t' for TSV).
func ReadCSV(r io.Reader, source int, layout CSVLayout, comma rune, cat *Catalog) (*Matrix, error) {
	cr := csv.NewReader(r)
	cr.Comma = comma
	cr.TrimLeadingSpace = true
	cr.FieldsPerRecord = -1 // validated manually for better messages
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("gene: parsing delimited file: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("gene: file has %d rows, need a header and at least one data row", len(records))
	}
	width := len(records[0])
	for i, rec := range records {
		if len(rec) != width {
			return nil, fmt.Errorf("gene: row %d has %d fields, header has %d", i+1, len(rec), width)
		}
	}
	switch layout {
	case GenesInColumns:
		return parseGenesInColumns(records, source, cat)
	case GenesInRows:
		return parseGenesInRows(records, source, cat)
	default:
		return nil, fmt.Errorf("gene: unknown CSV layout %d", layout)
	}
}

func parseGenesInColumns(records [][]string, source int, cat *Catalog) (*Matrix, error) {
	header := records[0]
	n := len(header)
	if n == 0 {
		return nil, fmt.Errorf("gene: empty header")
	}
	l := len(records) - 1
	genes := make([]ID, n)
	for j, name := range header {
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("gene: empty gene name in header column %d", j+1)
		}
		genes[j] = cat.Intern(name)
	}
	cols := make([][]float64, n)
	for j := range cols {
		cols[j] = make([]float64, l)
	}
	for i, rec := range records[1:] {
		for j, field := range rec {
			v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil {
				return nil, fmt.Errorf("gene: row %d column %d: %w", i+2, j+1, err)
			}
			cols[j][i] = v
		}
	}
	return NewMatrix(source, genes, cols)
}

func parseGenesInRows(records [][]string, source int, cat *Catalog) (*Matrix, error) {
	// records[0] is a header like: gene, sample1, sample2, ...
	l := len(records[0]) - 1
	if l < 1 {
		return nil, fmt.Errorf("gene: need at least one sample column")
	}
	n := len(records) - 1
	genes := make([]ID, n)
	cols := make([][]float64, n)
	for gi, rec := range records[1:] {
		name := strings.TrimSpace(rec[0])
		if name == "" {
			return nil, fmt.Errorf("gene: empty gene name at row %d", gi+2)
		}
		genes[gi] = cat.Intern(name)
		col := make([]float64, l)
		for k, field := range rec[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil {
				return nil, fmt.Errorf("gene: row %d sample %d: %w", gi+2, k+1, err)
			}
			col[k] = v
		}
		cols[gi] = col
	}
	return NewMatrix(source, genes, cols)
}

// ReadCSVFile loads a matrix from the named delimited file, inferring the
// delimiter from the extension (.tsv/.tab → tab, otherwise comma).
func ReadCSVFile(path string, source int, layout CSVLayout, cat *Catalog) (*Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	comma := ','
	if strings.HasSuffix(path, ".tsv") || strings.HasSuffix(path, ".tab") {
		comma = '\t'
	}
	return ReadCSV(f, source, layout, comma, cat)
}

// WriteCSV emits m in the GenesInColumns layout using the catalog for
// header names.
func WriteCSV(w io.Writer, m *Matrix, comma rune, cat *Catalog) error {
	cw := csv.NewWriter(w)
	cw.Comma = comma
	header := make([]string, m.NumGenes())
	for j := range header {
		header[j] = cat.Name(m.Gene(j))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, m.NumGenes())
	for i := 0; i < m.Samples(); i++ {
		for j := 0; j < m.NumGenes(); j++ {
			row[j] = strconv.FormatFloat(m.Col(j)[i], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
