package stats

import (
	"math"
	"testing"
)

func TestROCCurveKnown(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.4, 0.2}
	labels := []bool{true, true, false, false}
	pts := ROCCurve(scores, labels, []float64{0.5})
	if len(pts) != 1 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[0].TPR != 1 || pts[0].FPR != 0 {
		t.Errorf("point = %+v, want TPR 1 FPR 0", pts[0])
	}
	pts = ROCCurve(scores, labels, []float64{0.3})
	if pts[0].TPR != 1 || pts[0].FPR != 0.5 {
		t.Errorf("point = %+v, want TPR 1 FPR 0.5", pts[0])
	}
	pts = ROCCurve(scores, labels, []float64{0.85})
	if pts[0].TPR != 0.5 || pts[0].FPR != 0 {
		t.Errorf("point = %+v, want TPR 0.5 FPR 0", pts[0])
	}
}

func TestROCCurveThresholdIsStrict(t *testing.T) {
	pts := ROCCurve([]float64{0.5}, []bool{true}, []float64{0.5})
	if pts[0].TPR != 0 {
		t.Error("score equal to threshold must not be predicted positive")
	}
}

func TestROCCurveNoPositives(t *testing.T) {
	pts := ROCCurve([]float64{0.9}, []bool{false}, []float64{0.1})
	if pts[0].TPR != 0 || pts[0].FPR != 1 {
		t.Errorf("point = %+v", pts[0])
	}
}

func TestROCCurvePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ROCCurve([]float64{1}, []bool{true, false}, nil)
}

func TestThresholds(t *testing.T) {
	ths := Thresholds(0, 1, 4)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	if len(ths) != len(want) {
		t.Fatalf("len = %d", len(ths))
	}
	for i := range want {
		if math.Abs(ths[i]-want[i]) > 1e-12 {
			t.Errorf("ths[%d] = %v, want %v", i, ths[i], want[i])
		}
	}
}

func TestThresholdsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Thresholds(0, 1, 0)
}

func TestAUCPerfectClassifier(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.2, 0.1}
	labels := []bool{true, true, true, false, false}
	pts := ROCCurve(scores, labels, Thresholds(0, 1, 100))
	if auc := AUC(pts); auc < 0.99 {
		t.Errorf("perfect classifier AUC = %v", auc)
	}
}

func TestAUCReversedClassifier(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []bool{true, true, false, false}
	pts := ROCCurve(scores, labels, Thresholds(0, 1, 100))
	if auc := AUC(pts); auc > 0.05 {
		t.Errorf("reversed classifier AUC = %v, want ≈ 0", auc)
	}
}

func TestAUCRandomScoresNearHalf(t *testing.T) {
	// Alternating labels with monotone scores interleave TPR/FPR equally.
	var scores []float64
	var labels []bool
	for i := 0; i < 200; i++ {
		scores = append(scores, float64(i)/200)
		labels = append(labels, i%2 == 0)
	}
	pts := ROCCurve(scores, labels, Thresholds(0, 1, 200))
	if auc := AUC(pts); math.Abs(auc-0.5) > 0.05 {
		t.Errorf("interleaved AUC = %v, want ≈ 0.5", auc)
	}
}

func TestAUCEmptyPointsAnchored(t *testing.T) {
	if auc := AUC(nil); math.Abs(auc-0.5) > 1e-12 {
		t.Errorf("AUC of empty curve = %v, want 0.5 (diagonal)", auc)
	}
}

func TestPRCurveKnown(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.4, 0.2}
	labels := []bool{true, false, true, false}
	pts := PRCurve(scores, labels, []float64{0.5})
	if len(pts) != 1 {
		t.Fatalf("points = %d", len(pts))
	}
	// Above 0.5: one TP (0.9), one FP (0.8) → precision 0.5, recall 0.5.
	if pts[0].Precision != 0.5 || pts[0].Recall != 0.5 {
		t.Errorf("point = %+v", pts[0])
	}
	// Threshold above everything: by convention precision 1, recall 0.
	pts = PRCurve(scores, labels, []float64{0.95})
	if pts[0].Precision != 1 || pts[0].Recall != 0 {
		t.Errorf("empty-prediction point = %+v", pts[0])
	}
}

func TestPRCurvePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PRCurve([]float64{1}, []bool{true, false}, nil)
}

func TestAUPRPerfectAndRandom(t *testing.T) {
	// Perfect ranking: AUPR ≈ 1.
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	pts := PRCurve(scores, labels, Thresholds(0, 1, 100))
	if aupr := AUPR(pts); aupr < 0.95 {
		t.Errorf("perfect AUPR = %v", aupr)
	}
	// Reversed ranking: poor AUPR (positives found last, precision low
	// until full recall).
	rev := PRCurve([]float64{0.1, 0.2, 0.8, 0.9}, labels, Thresholds(0, 1, 100))
	if aupr := AUPR(rev); aupr > 0.6 {
		t.Errorf("reversed AUPR = %v", aupr)
	}
	if AUPR(nil) != 0 {
		t.Error("empty AUPR should be 0")
	}
}
