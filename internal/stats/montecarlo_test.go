package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/vecmath"
)

func TestSampleSize(t *testing.T) {
	// S ≥ (3/ε²)·ln(2/δ)
	got := SampleSize(0.1, 0.05)
	want := int(math.Ceil(3 / 0.01 * math.Log(40)))
	if got != want {
		t.Errorf("SampleSize(0.1, 0.05) = %d, want %d", got, want)
	}
	if SampleSize(0.5, 0.5) <= 0 {
		t.Error("sample size must be positive")
	}
}

func TestSampleSizeMonotonicity(t *testing.T) {
	if SampleSize(0.1, 0.05) <= SampleSize(0.2, 0.05) {
		t.Error("smaller ε must need more samples")
	}
	if SampleSize(0.1, 0.01) <= SampleSize(0.1, 0.1) {
		t.Error("smaller δ must need more samples")
	}
}

func TestSampleSizePanics(t *testing.T) {
	for _, c := range []struct{ eps, delta float64 }{{0, 0.1}, {0.1, 0}, {0.1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SampleSize(%v, %v) should panic", c.eps, c.delta)
				}
			}()
			SampleSize(c.eps, c.delta)
		}()
	}
}

// TestSampleSizeErr: the error-returning variant agrees with SampleSize
// on the valid domain and returns an error — never panics — outside it,
// which is what the query path routes through so HTTP gets a 400.
func TestSampleSizeErr(t *testing.T) {
	for _, c := range []struct{ eps, delta float64 }{{0.1, 0.05}, {0.5, 0.5}, {0.01, 0.001}} {
		n, err := SampleSizeErr(c.eps, c.delta)
		if err != nil {
			t.Fatalf("SampleSizeErr(%v, %v): %v", c.eps, c.delta, err)
		}
		if want := SampleSize(c.eps, c.delta); n != want {
			t.Errorf("SampleSizeErr(%v, %v) = %d, want %d", c.eps, c.delta, n, want)
		}
	}
	for _, c := range []struct{ eps, delta float64 }{
		{0, 0.1}, {0.1, 0}, {0.1, 1}, {-1, 0.5}, {0.1, -0.5}, {0.1, 2},
	} {
		if _, err := SampleSizeErr(c.eps, c.delta); err == nil {
			t.Errorf("SampleSizeErr(%v, %v): want error", c.eps, c.delta)
		}
	}
}

func stdPair(rng *randgen.Rand, l int) (xs, xt []float64) {
	for {
		xs = make([]float64, l)
		xt = make([]float64, l)
		for i := 0; i < l; i++ {
			xs[i] = rng.Gaussian(0, 1)
			xt[i] = rng.Gaussian(0, 1)
		}
		if vecmath.Standardize(xs) && vecmath.Standardize(xt) {
			return xs, xt
		}
	}
}

// TestEdgeProbabilityMatchesExact validates the Monte Carlo estimator
// against exhaustive enumeration over all l! permutations.
func TestEdgeProbabilityMatchesExact(t *testing.T) {
	rng := randgen.New(31)
	est := NewEstimator(32)
	for trial := 0; trial < 10; trial++ {
		xs, xt := stdPair(rng, 6)
		exact := ExactEdgeProbability(xs, xt)
		mc := est.EdgeProbability(xs, xt, 4000)
		if math.Abs(exact-mc) > 0.05 {
			t.Errorf("trial %d: exact %v vs MC %v", trial, exact, mc)
		}
	}
}

func TestAbsEdgeProbabilityMatchesExact(t *testing.T) {
	rng := randgen.New(33)
	est := NewEstimator(34)
	for trial := 0; trial < 10; trial++ {
		xs, xt := stdPair(rng, 6)
		exact := ExactAbsEdgeProbability(xs, xt)
		mc := est.AbsEdgeProbability(xs, xt, 4000)
		if math.Abs(exact-mc) > 0.05 {
			t.Errorf("trial %d: exact %v vs MC %v", trial, exact, mc)
		}
	}
}

// TestEdgeProbabilitySidesRelation: the one-sided probability of a pair and
// of its negated partner sum to ≈ 1 (ties aside), and the two-sided
// probability is within [|2p−1| − ε, 1].
func TestEdgeProbabilityNegationSymmetry(t *testing.T) {
	rng := randgen.New(35)
	for trial := 0; trial < 10; trial++ {
		xs, xt := stdPair(rng, 6)
		neg := make([]float64, len(xt))
		for i, v := range xt {
			neg[i] = -v
		}
		p := ExactEdgeProbability(xs, xt)
		q := ExactEdgeProbability(xs, neg)
		// dist(xs, -xt^R) mirrors dist, so p + q counts every permutation
		// at most once plus ties.
		if p+q > 1.000001 {
			t.Errorf("p + q = %v > 1", p+q)
		}
	}
}

func TestPerfectCorrelationProbabilities(t *testing.T) {
	// xt = xs: every permutation has dist >= 0 = dist(xs, xs) with
	// strict inequality unless the permutation fixes the multiset layout.
	xs := []float64{1, 2, 3, 4, 5, 6}
	vecmath.Standardize(xs)
	xt := vecmath.Clone(xs)
	if p := ExactEdgeProbability(xs, xt); p < 0.99 {
		t.Errorf("identical vectors should have near-1 one-sided probability, got %v", p)
	}
	if p := ExactAbsEdgeProbability(xs, xt); p < 0.99 {
		t.Errorf("identical vectors should have near-1 two-sided probability, got %v", p)
	}
}

func TestExpectedPermDistanceMatchesExact(t *testing.T) {
	rng := randgen.New(36)
	est := NewEstimator(37)
	for trial := 0; trial < 8; trial++ {
		fixed, permuted := stdPair(rng, 6)
		exact := ExactExpectedPermDistance(fixed, permuted)
		mc := est.ExpectedPermDistance(fixed, permuted, 4000)
		if math.Abs(exact-mc) > 0.03 {
			t.Errorf("trial %d: exact %v vs MC %v", trial, exact, mc)
		}
	}
}

// TestExpectedPermDistanceRange: for standardized vectors E[dist²] = 2, so
// E[dist] ∈ [1, √2] (Jensen + boundedness).
func TestExpectedPermDistanceRange(t *testing.T) {
	rng := randgen.New(38)
	f := func(seed uint64) bool {
		r := randgen.New(seed ^ rng.Uint64())
		fixed, permuted := stdPair(r, 7)
		e := ExactExpectedPermDistance(fixed, permuted)
		return e >= 0.99 && e <= math.Sqrt2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMarkovBoundDominatesExact is the soundness property behind Lemma 3:
// with the exact E(Z), the Markov bound never falls below the exact
// one-sided probability.
func TestMarkovBoundDominatesExact(t *testing.T) {
	rng := randgen.New(39)
	f := func(seed uint64) bool {
		r := randgen.New(seed ^ rng.Uint64())
		xs, xt := stdPair(r, 6)
		d := vecmath.Euclidean(xs, xt)
		ez := ExactExpectedPermDistance(xs, xt)
		return ExactEdgeProbability(xs, xt) <= MarkovUpperBound(ez, d)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestMarkovBoundDominatesExactTwoSided: the two-sided probability is
// bounded by the Markov bound at the |cor|-equivalent distance.
func TestMarkovBoundDominatesExactTwoSided(t *testing.T) {
	rng := randgen.New(40)
	f := func(seed uint64) bool {
		r := randgen.New(seed ^ rng.Uint64())
		xs, xt := stdPair(r, 6)
		d := TwoSidedDistance(vecmath.Euclidean(xs, xt))
		ez := ExactExpectedPermDistance(xs, xt)
		return ExactAbsEdgeProbability(xs, xt) <= MarkovUpperBound(ez, d)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMarkovUpperBoundClamps(t *testing.T) {
	if MarkovUpperBound(1.4, 0) != 1 {
		t.Error("zero distance should yield bound 1")
	}
	if MarkovUpperBound(5, 1) != 1 {
		t.Error("bound should clamp to 1")
	}
	if got := MarkovUpperBound(0.5, 2); got != 0.25 {
		t.Errorf("MarkovUpperBound(0.5, 2) = %v, want 0.25", got)
	}
}

func TestTwoSidedDistance(t *testing.T) {
	// Fixed point at √2 (cor = 0).
	if got := TwoSidedDistance(math.Sqrt2); !almost(got, math.Sqrt2, 1e-12) {
		t.Errorf("TwoSidedDistance(√2) = %v", got)
	}
	// d = 0 (cor 1) and d = 2 (cor −1) both map to 0.
	if got := TwoSidedDistance(0); got != 0 {
		t.Errorf("TwoSidedDistance(0) = %v", got)
	}
	if got := TwoSidedDistance(2); !almost(got, 0, 1e-12) {
		t.Errorf("TwoSidedDistance(2) = %v", got)
	}
	// Symmetric around √2: d and sqrt(4−d²) map to the same value.
	for _, d := range []float64{0.3, 0.9, 1.2} {
		mirror := math.Sqrt(4 - d*d)
		if !almost(TwoSidedDistance(d), TwoSidedDistance(mirror), 1e-12) {
			t.Errorf("TwoSidedDistance not symmetric at %v", d)
		}
	}
}

func TestEstimatorDeterminism(t *testing.T) {
	rng := randgen.New(41)
	xs, xt := stdPair(rng, 10)
	a := NewEstimator(7).EdgeProbability(xs, xt, 100)
	b := NewEstimator(7).EdgeProbability(xs, xt, 100)
	if a != b {
		t.Error("same-seed estimators must agree")
	}
}

func TestEstimatorSplit(t *testing.T) {
	e := NewEstimator(8)
	child := e.Split()
	rng := randgen.New(42)
	xs, xt := stdPair(rng, 10)
	// Split must not panic and must produce usable estimates.
	if p := child.EdgeProbability(xs, xt, 50); p < 0 || p > 1 {
		t.Errorf("split estimator probability out of range: %v", p)
	}
}

func TestDefaultSamplesUsedWhenZero(t *testing.T) {
	rng := randgen.New(43)
	xs, xt := stdPair(rng, 8)
	e := NewEstimator(9)
	if p := e.EdgeProbability(xs, xt, 0); p < 0 || p > 1 {
		t.Errorf("probability out of range: %v", p)
	}
}

func TestExactEdgeProbabilityPanicsOnLongInput(t *testing.T) {
	long := make([]float64, MaxExactLen+1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ExactEdgeProbability(long, long)
}

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
