// Batched Monte Carlo inference kernel (DESIGN.md §9).
//
// The scalar estimators above pay, per candidate pair (s, t), R fresh
// Fisher–Yates permutations of Xt plus R O(l) squared-distance passes. The
// batched kernel restructures that work around a fixed target column:
//
//  1. Shared permutation batches: the R permutations of Xt are drawn once
//     and materialized into an R×l row-major scratch matrix, amortizing
//     permutation generation across every source paired with Xt.
//  2. Dot-product hit tests: permutations preserve the norm, so
//     dist²(Xs, Xt^π) = |Xs|² + |Xt|² − 2·⟨Xs, Xt^π⟩ with constant norms,
//     and each hit test reduces to comparing an inner product against a
//     per-pair precomputed threshold — half the arithmetic of a distance
//     pass.
//  3. Blocked kernels: the R inner products of a block of source columns
//     are computed by vecmath.MatMulRowsInto, which streams the
//     permutation matrix once per four sources.
//
// Determinism contract: the batch path consumes the estimator RNG in a
// different order than the scalar path (R permutations per target column,
// not R per pair), so the two paths give different — but individually
// deterministic and statistically equivalent — fixed-seed estimates. The
// scalar path remains the reference implementation.

package stats

import (
	"math"

	"github.com/imgrn/imgrn/internal/vecmath"
)

// PermBatch is a shared batch of random permutations of one target vector
// Xt, materialized as an R×l row-major matrix. Fill it from an Estimator,
// then score any number of source vectors against it. A PermBatch owns
// reusable scratch and may be refilled for successive target columns; it
// is not safe for concurrent use.
type PermBatch struct {
	xt      []float64 // target vector (retained, not copied)
	tNorm2  float64   // |Xt|²
	l       int
	samples int
	mat     []float64 // samples×l: row r = Xt^{π_r}
	dots    []float64 // blocked inner-product scratch
}

// batchSrcBlock bounds how many source columns one kernel invocation
// scores at a time, keeping the inner-product scratch (batchSrcBlock ×
// samples floats) cache-sized regardless of how many sources the caller
// passes.
const batchSrcBlock = 32

// Fill draws samples fresh uniform permutations of xt from e's stream and
// materializes them into the batch, replacing any previous contents. The
// RNG cost equals samples scalar PermuteInto calls; every source scored
// against the batch shares it. samples <= 0 selects DefaultSamples.
func (b *PermBatch) Fill(e *Estimator, xt []float64, samples int) {
	if samples <= 0 {
		samples = DefaultSamples
	}
	l := len(xt)
	b.xt = xt
	b.tNorm2 = vecmath.Dot(xt, xt)
	b.l = l
	b.samples = samples
	b.mat = growSlice(b.mat, samples*l)
	for r := 0; r < samples; r++ {
		e.rng.PermuteInto(b.mat[r*l:(r+1)*l], xt)
	}
}

// growSlice is grow for slices owned by value types (no pointer needed).
func growSlice(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// Samples returns the number of permutations in the batch.
func (b *PermBatch) Samples() int { return b.samples }

// Len returns the vector length l of the batch (0 before the first Fill).
func (b *PermBatch) Len() int { return b.l }

// Row returns permutation r as a slice aliasing the batch storage.
// Intended for tests validating the dot-product hit tests against the
// scalar distance comparisons on the very same permutations.
func (b *PermBatch) Row(r int) []float64 { return b.mat[r*b.l : (r+1)*b.l] }

// EdgeProbabilitiesInto estimates the edge existence probability of every
// source column in srcs against the batch's target, writing dst[i] for
// srcs[i]. oneSided selects the Eq.-(4) form Pr{dist_R > dist}; otherwise
// the two-sided |cor| form of Definition 2 is used. All sources must have
// the batch's vector length. dst must have length ≥ len(srcs).
//
// The hit tests are the dot-product reduction: with c = ⟨Xs, Xt⟩ and
// m = (|Xs|² + |Xt|² − 2)/2,
//
//	one-sided:  dist²(Xs, Xt^π) > dist²(Xs, Xt)  ⟺  ⟨Xs, Xt^π⟩ < c
//	two-sided:  |dist²(Xs, Xt^π) − 2| < |dist²(Xs, Xt) − 2|
//	            ⟺  |m − ⟨Xs, Xt^π⟩| < |m − c|.
func (b *PermBatch) EdgeProbabilitiesInto(dst []float64, srcs [][]float64, oneSided bool) {
	if len(dst) < len(srcs) {
		panic("stats: EdgeProbabilitiesInto dst too short")
	}
	inv := 1 / float64(b.samples)
	for lo := 0; lo < len(srcs); lo += batchSrcBlock {
		hi := lo + batchSrcBlock
		if hi > len(srcs) {
			hi = len(srcs)
		}
		block := srcs[lo:hi]
		b.dots = growSlice(b.dots, len(block)*b.samples)
		vecmath.MatMulRowsInto(b.dots, b.mat, b.samples, b.l, block)
		for i, xs := range block {
			c := vecmath.Dot(xs, b.xt)
			dots := b.dots[i*b.samples : (i+1)*b.samples]
			hits := 0
			if oneSided {
				for _, d := range dots {
					if d < c {
						hits++
					}
				}
			} else {
				m := (vecmath.Dot(xs, xs) + b.tNorm2 - 2) / 2
				ch := abs(m - c)
				for _, d := range dots {
					if abs(m-d) < ch {
						hits++
					}
				}
			}
			dst[lo+i] = float64(hits) * inv
		}
	}
}

// MarkovUpperBoundsInto computes the Lemma-4 pruning upper bound
// ub_P = E(Z)/dist for every source column against the batch's target,
// with E(Z) = E[dist(Xs, Xt^R)] estimated over the batch's shared
// permutations — a near-free byproduct of the inner products already
// needed by the hit tests, instead of BoundSamples fresh permutations per
// pair. oneSided=false divides by the |cor|-equivalent two-sided distance.
func (b *PermBatch) MarkovUpperBoundsInto(dst []float64, srcs [][]float64, oneSided bool) {
	if len(dst) < len(srcs) {
		panic("stats: MarkovUpperBoundsInto dst too short")
	}
	inv := 1 / float64(b.samples)
	for lo := 0; lo < len(srcs); lo += batchSrcBlock {
		hi := lo + batchSrcBlock
		if hi > len(srcs) {
			hi = len(srcs)
		}
		block := srcs[lo:hi]
		b.dots = growSlice(b.dots, len(block)*b.samples)
		vecmath.MatMulRowsInto(b.dots, b.mat, b.samples, b.l, block)
		for i, xs := range block {
			nrm := vecmath.Dot(xs, xs) + b.tNorm2
			var ez float64
			for _, d := range b.dots[i*b.samples : (i+1)*b.samples] {
				d2 := nrm - 2*d
				if d2 > 0 {
					ez += math.Sqrt(d2)
				}
			}
			ez *= inv
			d2 := nrm - 2*vecmath.Dot(xs, b.xt)
			if d2 < 0 {
				d2 = 0
			}
			dist := math.Sqrt(d2)
			if !oneSided {
				dist = TwoSidedDistance(dist)
			}
			dst[lo+i] = MarkovUpperBound(ez, dist)
		}
	}
}

// EdgeProbabilityBatch estimates the one-sided edge existence probability
// of every source in srcs against a shared permutation batch of xt drawn
// from e's stream (see PermBatch). dst must have length ≥ len(srcs).
// Convenience wrapper over an estimator-owned batch; callers scoring many
// target columns should manage their own PermBatch to reuse its scratch.
func (e *Estimator) EdgeProbabilityBatch(dst []float64, srcs [][]float64, xt []float64, samples int) {
	b := PermBatch{mat: e.ar.batchMat, dots: e.ar.batchDots}
	b.Fill(e, xt, samples)
	b.EdgeProbabilitiesInto(dst, srcs, true)
	e.ar.batchMat, e.ar.batchDots = b.mat, b.dots
}

// AbsEdgeProbabilityBatch is EdgeProbabilityBatch for the two-sided
// (absolute-correlation) form of Definition 2.
func (e *Estimator) AbsEdgeProbabilityBatch(dst []float64, srcs [][]float64, xt []float64, samples int) {
	b := PermBatch{mat: e.ar.batchMat, dots: e.ar.batchDots}
	b.Fill(e, xt, samples)
	b.EdgeProbabilitiesInto(dst, srcs, false)
	e.ar.batchMat, e.ar.batchDots = b.mat, b.dots
}
