package stats

import (
	"math"
	"testing"

	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/vecmath"
)

// TestBatchEdgeProbabilityMatchesExact is the exact-enumeration
// cross-check of the batch path: at l ≤ MaxExactLen the batched Monte
// Carlo estimate must converge to the exhaustively enumerated probability,
// exactly as the scalar estimator does.
func TestBatchEdgeProbabilityMatchesExact(t *testing.T) {
	rng := randgen.New(51)
	est := NewEstimator(52)
	var b PermBatch
	for trial := 0; trial < 10; trial++ {
		xs, xt := stdPair(rng, 6)
		b.Fill(est, xt, 4000)
		got := make([]float64, 1)
		b.EdgeProbabilitiesInto(got, [][]float64{xs}, true)
		if exact := ExactEdgeProbability(xs, xt); math.Abs(exact-got[0]) > 0.05 {
			t.Errorf("trial %d one-sided: exact %v vs batch MC %v", trial, exact, got[0])
		}
		b.Fill(est, xt, 4000)
		b.EdgeProbabilitiesInto(got, [][]float64{xs}, false)
		if exact := ExactAbsEdgeProbability(xs, xt); math.Abs(exact-got[0]) > 0.05 {
			t.Errorf("trial %d two-sided: exact %v vs batch MC %v", trial, exact, got[0])
		}
	}
}

// TestBatchMatchesScalarAtDefaultSamples: fixed-seed statistical-tolerance
// test. The batch and scalar paths consume the RNG in different orders, so
// their DefaultSamples estimates are independent draws of the same
// binomial; both must sit within a few standard errors of the exact value.
func TestBatchMatchesScalarAtDefaultSamples(t *testing.T) {
	rng := randgen.New(53)
	// 4σ at DefaultSamples: sqrt(0.25/192) ≈ 0.036 per estimator.
	const tol = 0.15
	for trial := 0; trial < 8; trial++ {
		xs, xt := stdPair(rng, 7)
		exact := ExactEdgeProbability(xs, xt)
		scalar := NewEstimator(54).EdgeProbability(xs, xt, DefaultSamples)
		batch := make([]float64, 1)
		NewEstimator(54).EdgeProbabilityBatch(batch, [][]float64{xs}, xt, DefaultSamples)
		if math.Abs(scalar-exact) > tol || math.Abs(batch[0]-exact) > tol {
			t.Errorf("trial %d: exact %v, scalar %v, batch %v", trial, exact, scalar, batch[0])
		}
		exactAbs := ExactAbsEdgeProbability(xs, xt)
		scalarAbs := NewEstimator(55).AbsEdgeProbability(xs, xt, DefaultSamples)
		NewEstimator(55).AbsEdgeProbabilityBatch(batch, [][]float64{xs}, xt, DefaultSamples)
		if math.Abs(scalarAbs-exactAbs) > tol || math.Abs(batch[0]-exactAbs) > tol {
			t.Errorf("trial %d abs: exact %v, scalar %v, batch %v", trial, exactAbs, scalarAbs, batch[0])
		}
	}
}

// TestBatchHitTestMatchesScalarComparison: property test that the
// dot-product hit test agrees with the literal scalar distance comparison
// on the batch's own materialized permutations — i.e. a 1-source batch
// probability equals the fraction of rows r with
// dist²(xs, row_r) > dist²(xs, xt) (one-sided) or
// |dist²(xs, row_r) − 2| < |dist²(xs, xt) − 2| (two-sided).
func TestBatchHitTestMatchesScalarComparison(t *testing.T) {
	rng := randgen.New(56)
	est := NewEstimator(57)
	var b PermBatch
	for trial := 0; trial < 200; trial++ {
		l := 4 + rng.Intn(40)
		xs, xt := stdPair(rng, l)
		samples := 8 + rng.Intn(120)
		b.Fill(est, xt, samples)
		got := make([]float64, 1)
		for _, oneSided := range []bool{true, false} {
			b.EdgeProbabilitiesInto(got, [][]float64{xs}, oneSided)
			d := vecmath.SquaredEuclidean(xs, xt)
			c := abs(d - 2)
			hits := 0
			for r := 0; r < samples; r++ {
				d2 := vecmath.SquaredEuclidean(xs, b.Row(r))
				if oneSided && d2 > d {
					hits++
				}
				if !oneSided && abs(d2-2) < c {
					hits++
				}
			}
			want := float64(hits) / float64(samples)
			// The two formulations are algebraically identical; allow one
			// flipped hit for ties resolved differently by fp rounding.
			if math.Abs(got[0]-want) > 1.0/float64(samples)+1e-12 {
				t.Fatalf("trial %d oneSided=%v l=%d S=%d: batch %v, scalar comparison %v",
					trial, oneSided, l, samples, got[0], want)
			}
		}
	}
}

// TestBatchMarkovBoundsMatchScalarStructure: the batch bound must agree
// with MarkovUpperBound(E(Z), dist) recomputed scalar-style from the same
// shared permutations.
func TestBatchMarkovBoundsMatchScalar(t *testing.T) {
	rng := randgen.New(58)
	est := NewEstimator(59)
	var b PermBatch
	for trial := 0; trial < 50; trial++ {
		l := 5 + rng.Intn(30)
		xs, xt := stdPair(rng, l)
		samples := 8 + rng.Intn(56)
		b.Fill(est, xt, samples)
		for _, oneSided := range []bool{true, false} {
			got := make([]float64, 1)
			b.MarkovUpperBoundsInto(got, [][]float64{xs}, oneSided)
			var ez float64
			for r := 0; r < samples; r++ {
				ez += vecmath.Euclidean(xs, b.Row(r))
			}
			ez /= float64(samples)
			d := vecmath.Euclidean(xs, xt)
			if !oneSided {
				d = TwoSidedDistance(d)
			}
			want := MarkovUpperBound(ez, d)
			if math.Abs(got[0]-want) > 1e-9 {
				t.Fatalf("trial %d oneSided=%v: batch bound %v, scalar %v", trial, oneSided, got[0], want)
			}
		}
	}
}

// TestBatchMarkovBoundDominatesExact: soundness of the batched Lemma-4
// bound — with a generous sample budget it must dominate the exact edge
// probability, like the scalar pruner bound.
func TestBatchMarkovBoundDominatesExact(t *testing.T) {
	rng := randgen.New(60)
	est := NewEstimator(61)
	var b PermBatch
	for trial := 0; trial < 30; trial++ {
		xs, xt := stdPair(rng, 6)
		b.Fill(est, xt, 2048)
		got := make([]float64, 1)
		b.MarkovUpperBoundsInto(got, [][]float64{xs}, false)
		if exact := ExactAbsEdgeProbability(xs, xt); got[0] < exact-0.05 {
			t.Errorf("trial %d: batch bound %v below exact %v", trial, got[0], exact)
		}
	}
}

// TestBatchManySourcesMatchesSingles: scoring a block of sources in one
// kernel call must equal scoring each source alone against the same batch
// (exercises the 4-source blocking and the batchSrcBlock chunking).
func TestBatchManySourcesMatchesSingles(t *testing.T) {
	rng := randgen.New(62)
	est := NewEstimator(63)
	_, xt := stdPair(rng, 20)
	nsrc := 2*batchSrcBlock + 5 // spans multiple chunks plus a tail
	srcs := make([][]float64, nsrc)
	for i := range srcs {
		srcs[i], _ = stdPair(rng, 20)
	}
	var b PermBatch
	b.Fill(est, xt, 64)
	bulk := make([]float64, nsrc)
	b.EdgeProbabilitiesInto(bulk, srcs, false)
	one := make([]float64, 1)
	for i, xs := range srcs {
		b.EdgeProbabilitiesInto(one, [][]float64{xs}, false)
		if bulk[i] != one[0] {
			t.Fatalf("source %d: bulk %v != single %v", i, bulk[i], one[0])
		}
	}
}

// TestBatchDeterminism: same seed, same fills → identical batch scores.
func TestBatchDeterminism(t *testing.T) {
	rng := randgen.New(64)
	xs, xt := stdPair(rng, 12)
	run := func() float64 {
		dst := make([]float64, 1)
		NewEstimator(65).EdgeProbabilityBatch(dst, [][]float64{xs}, xt, 100)
		return dst[0]
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same-seed batch estimates differ: %v vs %v", a, b)
	}
}

// TestArenaSlotsDistinct is the regression test for the scratch aliasing
// hazard: EdgeProbability/AbsEdgeProbability, ExpectedPermDistance, and
// the batch kernel must each own a distinct arena slot, so no call can
// clobber another call site's in-flight buffer.
func TestArenaSlotsDistinct(t *testing.T) {
	rng := randgen.New(66)
	xs, xt := stdPair(rng, 10)
	e := NewEstimator(67)
	e.EdgeProbability(xs, xt, 8)
	e.ExpectedPermDistance(xs, xt, 8)
	dst := make([]float64, 1)
	e.EdgeProbabilityBatch(dst, [][]float64{xs}, xt, 8)
	if &e.ar.edgePerm[0] == &e.ar.distPerm[0] {
		t.Error("EdgeProbability and ExpectedPermDistance share a scratch slot")
	}
	if &e.ar.edgePerm[0] == &e.ar.batchMat[0] || &e.ar.distPerm[0] == &e.ar.batchMat[0] {
		t.Error("batch kernel shares a scratch slot with a scalar estimator")
	}
	// Interleaving must not corrupt results: an estimator that alternates
	// call sites agrees with one that runs them back-to-back from the same
	// RNG state for the deterministic (non-consuming) reads.
	perm := e.ar.distPerm
	before := append([]float64(nil), perm...)
	e.EdgeProbability(xs, xt, 8) // must not touch distPerm's backing array
	for i := range perm {
		if perm[i] != before[i] {
			t.Fatal("EdgeProbability clobbered ExpectedPermDistance's scratch")
		}
	}
}
