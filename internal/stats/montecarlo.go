// Package stats implements the statistical machinery of the IM-GRN paper:
// Monte Carlo estimation of edge existence probabilities over randomized
// (permuted) feature vectors (Section 3.1), the (ε, δ) sample-size bound of
// Lemma 2, exact enumeration over all l! permutations for validation,
// expected randomized distances, the Markov probability upper bound of
// Lemma 4, and ROC/AUC evaluation used in Section 6.2.
package stats

import (
	"fmt"
	"math"

	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/vecmath"
)

// SampleSize returns the number of Monte Carlo samples S required by
// Lemma 2 so that the estimated probability ρ̂ is an ε-approximation of the
// true ρ with confidence 1−δ:
//
//	S ≥ (3/ε²) · ln(2/δ).
//
// It panics outside the lemma's domain; use SampleSizeErr where the
// parameters arrive from untrusted input (e.g. an HTTP request).
func SampleSize(eps, delta float64) int {
	n, err := SampleSizeErr(eps, delta)
	if err != nil {
		panic("stats: SampleSize requires eps > 0 and 0 < delta < 1")
	}
	return n
}

// SampleSizeErr is SampleSize with the domain violation reported as an
// error instead of a panic, so query paths can turn a bad requested
// (ε, δ) into a validation failure.
func SampleSizeErr(eps, delta float64) (int, error) {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("stats: sample size needs eps > 0 and 0 < delta < 1 (got eps=%v, delta=%v)", eps, delta)
	}
	return int(math.Ceil(3 / (eps * eps) * math.Log(2/delta))), nil
}

// DefaultSamples is the Monte Carlo sample count used when callers do not
// specify one. It corresponds to SampleSize(0.25, 0.05) ≈ 177, rounded up
// to a friendlier figure; estimates at this size resolve the threshold
// comparisons of the paper's parameter grid (γ, α ∈ {0.2 … 0.9}).
const DefaultSamples = 192

// Estimator performs Monte Carlo estimation with a private deterministic
// generator and reusable scratch space. It is not safe for concurrent use;
// derive one per goroutine with Split.
type Estimator struct {
	rng *randgen.Rand
	ar  arena
}

// arena is the estimator's reusable scratch space, one slot per call
// site. Each estimation entry point owns a distinct slice so that
// interleaved calls on the same Estimator can never alias each other's
// in-flight data (EdgeProbability and ExpectedPermDistance formerly
// shared a single slice, so a caller holding one routine's permutation
// buffer across a call to the other would see it silently clobbered).
type arena struct {
	edgePerm  []float64 // EdgeProbability / AbsEdgeProbability permutations
	distPerm  []float64 // ExpectedPermDistance permutations
	batchMat  []float64 // EdgeProbabilityBatch permutation matrix
	batchDots []float64 // EdgeProbabilityBatch inner products
}

// grow returns (*buf)[:n], reallocating the backing array only when the
// capacity is insufficient. Contents are unspecified.
func grow(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return (*buf)[:n]
}

// NewEstimator returns an Estimator seeded deterministically.
func NewEstimator(seed uint64) *Estimator {
	return &Estimator{rng: randgen.New(seed)}
}

// Split derives an independent estimator for use on another goroutine.
func (e *Estimator) Split() *Estimator {
	return &Estimator{rng: e.rng.Split()}
}

// Reseed resets the estimator's generator in place to the state a fresh
// NewEstimator(seed) would hold, keeping the scratch arena warm. Every
// estimation entry point fills its scratch before reading it, so a reseeded
// estimator is observationally identical to a new one — the mechanism that
// lets refinement reuse one estimator across per-candidate streams without
// reallocating.
func (e *Estimator) Reseed(seed uint64) {
	e.rng.Reseed(seed)
}

// EdgeProbability estimates the edge existence probability of Eq. (1),
// reduced per Lemma 1 to the Euclidean form of Eq. (4):
//
//	e.p = Pr{ dist(Xs, Xt^R) > dist(Xs, Xt) }
//
// where Xt^R is a uniform random permutation of Xt. xs and xt must be
// standardized vectors of equal length; samples Monte Carlo draws are used
// (DefaultSamples if samples <= 0).
func (e *Estimator) EdgeProbability(xs, xt []float64, samples int) float64 {
	if samples <= 0 {
		samples = DefaultSamples
	}
	d := vecmath.SquaredEuclidean(xs, xt)
	perm := grow(&e.ar.edgePerm, len(xt))
	hits := 0
	for i := 0; i < samples; i++ {
		e.rng.PermuteInto(perm, xt)
		if vecmath.SquaredEuclidean(xs, perm) > d {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

// AbsEdgeProbability estimates the two-sided (absolute-correlation) form
// of Definition 2:
//
//	e.p = Pr{ |cor(Xs, Xt)| > |cor(Xs, Xt^R)| }
//	    = Pr{ |dist²(Xs, Xt^R) − 2| < |dist²(Xs, Xt) − 2| }
//
// for standardized vectors (|cor| = |1 − dist²/2|). The one-sided
// EdgeProbability is the literal Eq. (4) reduction; it coincides with this
// form whenever cor(Xs,Xt) + cor(Xs,Xt^R) ≥ 0 (the regime Lemma 1's proof
// assumes) and diverges for strong negative correlations, which the
// absolute form credits as interactions.
func (e *Estimator) AbsEdgeProbability(xs, xt []float64, samples int) float64 {
	if samples <= 0 {
		samples = DefaultSamples
	}
	c := abs(vecmath.SquaredEuclidean(xs, xt) - 2)
	perm := grow(&e.ar.edgePerm, len(xt))
	hits := 0
	for i := 0; i < samples; i++ {
		e.rng.PermuteInto(perm, xt)
		if abs(vecmath.SquaredEuclidean(xs, perm)-2) < c {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// ExpectedPermDistance estimates E[ dist(permuted^R, fixed) ], the expected
// Euclidean distance between a uniform random permutation of `permuted` and
// the fixed vector. This single estimator serves both E(Z) of Lemma 4
// (fixed = Xs, permuted = Xt) and the embedding coordinates
// y_s[w] = E(dist(Xs^R, piv_w)) of Section 4.2 (fixed = piv_w,
// permuted = Xs); the two forms agree in distribution because the inverse of
// a uniform permutation is uniform.
func (e *Estimator) ExpectedPermDistance(fixed, permuted []float64, samples int) float64 {
	if samples <= 0 {
		samples = DefaultSamples
	}
	perm := grow(&e.ar.distPerm, len(permuted))
	var sum float64
	for i := 0; i < samples; i++ {
		e.rng.PermuteInto(perm, permuted)
		sum += vecmath.Euclidean(fixed, perm)
	}
	return sum / float64(samples)
}

// MarkovUpperBound returns the Lemma-4 upper bound on an edge existence
// probability: ub_P = E(Z)/dist, clamped to [0, 1]. A zero distance means
// the vectors coincide, for which the bound degenerates to 1 (no pruning).
func MarkovUpperBound(expectedZ, dist float64) float64 {
	if dist <= 0 {
		return 1
	}
	ub := expectedZ / dist
	if ub > 1 {
		return 1
	}
	if ub < 0 {
		return 0
	}
	return ub
}

// MaxExactLen is the largest vector length for which the Exact* functions
// will enumerate all l! permutations (9! = 362,880).
const MaxExactLen = 9

// ExactEdgeProbability computes Pr{dist(xs, xt^R) > dist(xs, xt)} exactly by
// enumerating every permutation of xt. It panics if len(xt) > MaxExactLen.
// Intended for tests that validate the Monte Carlo estimator.
func ExactEdgeProbability(xs, xt []float64) float64 {
	if len(xt) > MaxExactLen {
		panic("stats: ExactEdgeProbability input too long")
	}
	d := vecmath.SquaredEuclidean(xs, xt)
	hits, total := 0, 0
	forEachPermutation(vecmath.Clone(xt), func(p []float64) {
		total++
		if vecmath.SquaredEuclidean(xs, p) > d {
			hits++
		}
	})
	return float64(hits) / float64(total)
}

// ExactExpectedPermDistance computes E[dist(fixed, permuted^R)] exactly by
// enumerating every permutation of permuted. It panics if the input is
// longer than MaxExactLen.
func ExactExpectedPermDistance(fixed, permuted []float64) float64 {
	if len(permuted) > MaxExactLen {
		panic("stats: ExactExpectedPermDistance input too long")
	}
	var sum float64
	total := 0
	forEachPermutation(vecmath.Clone(permuted), func(p []float64) {
		total++
		sum += vecmath.Euclidean(fixed, p)
	})
	return sum / float64(total)
}

// ExactAbsEdgeProbability computes the two-sided edge probability exactly
// by enumerating every permutation of xt. It panics if len(xt) >
// MaxExactLen. Intended for tests validating AbsEdgeProbability.
func ExactAbsEdgeProbability(xs, xt []float64) float64 {
	if len(xt) > MaxExactLen {
		panic("stats: ExactAbsEdgeProbability input too long")
	}
	c := abs(vecmath.SquaredEuclidean(xs, xt) - 2)
	hits, total := 0, 0
	forEachPermutation(vecmath.Clone(xt), func(p []float64) {
		total++
		if abs(vecmath.SquaredEuclidean(xs, p)-2) < c {
			hits++
		}
	})
	return float64(hits) / float64(total)
}

// TwoSidedDistance maps the pairwise distance of two standardized vectors
// to the distance corresponding to |cor|: d_abs = min(d, sqrt(4 − d²)).
// Upper bounds derived for the one-sided probability at distance d remain
// valid for the two-sided probability at distance TwoSidedDistance(d),
// because Pr{|cor_R| < |cor|} ≤ Pr{cor_R < |cor|} = Pr{dist_R > d_abs}.
func TwoSidedDistance(d float64) float64 {
	alt := 4 - d*d
	if alt < 0 {
		alt = 0
	}
	alt = math.Sqrt(alt)
	if alt < d {
		return alt
	}
	return d
}

// forEachPermutation invokes fn with every permutation of x (Heap's
// algorithm). fn must not retain or modify its argument.
func forEachPermutation(x []float64, fn func([]float64)) {
	n := len(x)
	c := make([]int, n)
	fn(x)
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				x[0], x[i] = x[i], x[0]
			} else {
				x[c[i]], x[i] = x[i], x[c[i]]
			}
			fn(x)
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}
