package stats

import "sort"

// ROCPoint is one (FPR, TPR) point of a receiver operating characteristic
// curve, tagged with the decision threshold that produced it.
type ROCPoint struct {
	Threshold float64
	FPR       float64 // false positive rate
	TPR       float64 // true positive rate (recall)
}

// ROCCurve sweeps the given thresholds over per-instance scores and boolean
// ground-truth labels and returns one point per threshold: an instance is
// predicted positive when score > threshold. This mirrors Section 6.2, where
// the inference threshold γ is swept from 0 to 1 and each setting yields one
// (FPR, TPR) point.
//
// scores and labels must have equal length. With no positive (or no
// negative) instances the corresponding rate is reported as 0.
func ROCCurve(scores []float64, labels []bool, thresholds []float64) []ROCPoint {
	if len(scores) != len(labels) {
		panic("stats: ROCCurve scores/labels length mismatch")
	}
	positives, negatives := 0, 0
	for _, l := range labels {
		if l {
			positives++
		} else {
			negatives++
		}
	}
	points := make([]ROCPoint, 0, len(thresholds))
	for _, th := range thresholds {
		tp, fp := 0, 0
		for i, s := range scores {
			if s > th {
				if labels[i] {
					tp++
				} else {
					fp++
				}
			}
		}
		p := ROCPoint{Threshold: th}
		if positives > 0 {
			p.TPR = float64(tp) / float64(positives)
		}
		if negatives > 0 {
			p.FPR = float64(fp) / float64(negatives)
		}
		points = append(points, p)
	}
	return points
}

// Thresholds returns n+1 evenly spaced thresholds from lo to hi inclusive.
func Thresholds(lo, hi float64, n int) []float64 {
	if n < 1 {
		panic("stats: Thresholds needs n >= 1")
	}
	out := make([]float64, n+1)
	step := (hi - lo) / float64(n)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

// PRPoint is one (recall, precision) point of a precision-recall curve.
type PRPoint struct {
	Threshold float64
	Recall    float64
	Precision float64
}

// PRCurve sweeps thresholds and returns precision-recall points — the
// AUPR companion metric standard in GRN-inference benchmarking, where
// positives (true edges) are heavily outnumbered and ROC can look rosy
// while precision is poor. Thresholds that predict nothing positive carry
// precision 1 by convention.
func PRCurve(scores []float64, labels []bool, thresholds []float64) []PRPoint {
	if len(scores) != len(labels) {
		panic("stats: PRCurve scores/labels length mismatch")
	}
	positives := 0
	for _, l := range labels {
		if l {
			positives++
		}
	}
	points := make([]PRPoint, 0, len(thresholds))
	for _, th := range thresholds {
		tp, fp := 0, 0
		for i, s := range scores {
			if s > th {
				if labels[i] {
					tp++
				} else {
					fp++
				}
			}
		}
		p := PRPoint{Threshold: th, Precision: 1}
		if tp+fp > 0 {
			p.Precision = float64(tp) / float64(tp+fp)
		}
		if positives > 0 {
			p.Recall = float64(tp) / float64(positives)
		}
		points = append(points, p)
	}
	return points
}

// AUPR returns the area under the precision-recall curve by trapezoidal
// integration over recall, anchored at recall 0 (precision of the first
// point) and the maximal observed recall.
func AUPR(points []PRPoint) float64 {
	ps := make([]PRPoint, len(points))
	copy(ps, points)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Recall < ps[j].Recall })
	if len(ps) == 0 {
		return 0
	}
	var area float64
	prevR, prevP := 0.0, ps[0].Precision
	for _, p := range ps {
		area += (p.Recall - prevR) * (p.Precision + prevP) / 2
		prevR, prevP = p.Recall, p.Precision
	}
	return area
}

// AUC returns the area under the ROC curve by trapezoidal integration over
// FPR, after sorting points by FPR and anchoring the curve at (0,0) and
// (1,1).
func AUC(points []ROCPoint) float64 {
	ps := make([]ROCPoint, 0, len(points)+2)
	ps = append(ps, points...)
	ps = append(ps, ROCPoint{FPR: 0, TPR: 0}, ROCPoint{FPR: 1, TPR: 1})
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].FPR != ps[j].FPR {
			return ps[i].FPR < ps[j].FPR
		}
		return ps[i].TPR < ps[j].TPR
	})
	var area float64
	for i := 1; i < len(ps); i++ {
		dx := ps[i].FPR - ps[i-1].FPR
		area += dx * (ps[i].TPR + ps[i-1].TPR) / 2
	}
	return area
}
