// Package obs is the stdlib-only observability layer of the IM-GRN
// system: a metrics registry and a per-query tracer, designed so that
// the query path can be instrumented without perturbing the algorithm
// it measures.
//
// The package has two halves:
//
//   - Metrics (metrics.go): a Registry of named Counters, Gauges and
//     fixed-bucket latency Histograms. All value updates are atomic, so
//     concurrent queries record into shared metrics without locking the
//     hot path; the Registry renders itself in the Prometheus text
//     exposition format (WritePrometheus) for the server's /metrics
//     endpoint. Histograms additionally expose p50/p95/p99 snapshots
//     (Snapshot/Quantile) for the slow-query log and trace summaries.
//
//   - Tracing (trace.go): a per-query Tracer collecting Spans, one per
//     pipeline stage of the IM-GRN_Processing algorithm (query-GRN
//     inference, index traversal, structural filtering, Markov-bound
//     pruning, Monte Carlo refinement, top-k ranking). Every span
//     carries its duration plus the candidate counts flowing in and out
//     of the stage, so pruning power — the filter/verify cost split that
//     probabilistic-graph query papers evaluate — is directly visible
//     per query.
//
// A nil *Tracer is the disabled state: every method is nil-safe and
// reduces to a pointer test, so code paths can be instrumented
// unconditionally and pay nothing when tracing is off (see
// BenchmarkNoopTrace in trace_test.go). Nothing in this package touches
// randomness or query results: enabling or disabling observability
// never changes answers.
package obs
