package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 10} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// <=1: {0.5, 1} = 2; <=2: +{1.5, 2} = 4; <=5: +{3} = 5; +Inf: +{10} = 6.
	want := []uint64{2, 4, 5, 6}
	for i, w := range want {
		if s.Cumulative[i] != w {
			t.Errorf("cumulative[%d] = %d, want %d", i, s.Cumulative[i], w)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	if got, want := s.Sum, 0.5+1+1.5+2+3+10; math.Abs(got-want) > 1e-12 {
		t.Errorf("sum = %g, want %g", got, want)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1, 10})
	// 100 observations uniformly inside (0, 0.01]: all in the first bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.005)
	}
	s := h.Snapshot()
	if p := s.P50(); p <= 0 || p > 0.01 {
		t.Errorf("p50 = %g, want within (0, 0.01]", p)
	}
	if p := s.P99(); p <= 0 || p > 0.01 {
		t.Errorf("p99 = %g, want within (0, 0.01]", p)
	}

	// Split 90/10 across buckets 1 and 3: p50 in bucket 1, p95 in bucket 3.
	h2 := newHistogram([]float64{1, 2, 4})
	for i := 0; i < 90; i++ {
		h2.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(3)
	}
	s2 := h2.Snapshot()
	if p := s2.P50(); p <= 0 || p > 1 {
		t.Errorf("p50 = %g, want within (0, 1]", p)
	}
	if p := s2.P95(); p <= 2 || p > 4 {
		t.Errorf("p95 = %g, want within (2, 4]", p)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := newHistogram(nil)
	if p := h.Snapshot().P99(); p != 0 {
		t.Errorf("empty histogram p99 = %g, want 0", p)
	}
}

func TestHistogramInfBucketQuantile(t *testing.T) {
	h := newHistogram([]float64{1})
	h.Observe(100) // +Inf bucket
	if p := h.Snapshot().P50(); p != 1 {
		t.Errorf("p50 = %g, want the last finite bound 1", p)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const goroutines, iters = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("c_total", "counter")
			ga := r.Gauge("g", "gauge")
			h := r.Histogram("h_seconds", "hist", nil)
			vec := r.CounterVec("v_total", "labeled", "k")
			for i := 0; i < iters; i++ {
				c.Inc()
				ga.Add(1)
				h.Observe(float64(i%10) / 100)
				vec.With("a").Inc()
				if g == 0 && i == 0 {
					vec.With("b").Add(5)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := r.Counter("c_total", "counter").Value(); got != goroutines*iters {
		t.Errorf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := r.Gauge("g", "gauge").Value(); got != goroutines*iters {
		t.Errorf("gauge = %d, want %d", got, goroutines*iters)
	}
	if got := r.Histogram("h_seconds", "hist", nil).Snapshot().Count; got != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", got, goroutines*iters)
	}
	if got := r.CounterVec("v_total", "labeled", "k").With("a").Value(); got != goroutines*iters {
		t.Errorf("vec counter = %d, want %d", got, goroutines*iters)
	}
}

func TestRegistryShapeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("imgrn_queries_total", "total queries").Add(3)
	r.Gauge("imgrn_in_flight", "in flight").Set(2)
	r.Histogram("imgrn_query_seconds", "latency", []float64{0.1, 1}).Observe(0.05)
	r.CounterVec("imgrn_errors_total", "errors", "code").With("500").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE imgrn_queries_total counter",
		"imgrn_queries_total 3",
		"# TYPE imgrn_in_flight gauge",
		"imgrn_in_flight 2",
		"# TYPE imgrn_query_seconds histogram",
		`imgrn_query_seconds_bucket{le="0.1"} 1`,
		`imgrn_query_seconds_bucket{le="+Inf"} 1`,
		"imgrn_query_seconds_sum 0.05",
		"imgrn_query_seconds_count 1",
		`imgrn_errors_total{code="500"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("m_total", "", "k").With(`a"b\c` + "\n").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if want := `m_total{k="a\"b\\c\n"} 1`; !strings.Contains(b.String(), want) {
		t.Errorf("escaped label missing %q in:\n%s", want, b.String())
	}
}
