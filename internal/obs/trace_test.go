package obs

import (
	"strings"
	"testing"
	"time"
)

func TestTracerRecordAndSpans(t *testing.T) {
	tr := NewTracer()
	begin := time.Now()
	tr.Record(StageTraverse, begin, 5*time.Millisecond, 100, 10)
	tr.Record(StageMonteCarlo, begin, 2*time.Millisecond, 10, 3)
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	if spans[0].Stage != StageTraverse || spans[0].In != 100 || spans[0].Out != 10 {
		t.Errorf("span 0 = %+v", spans[0])
	}
	if spans[0].Dur != 5*time.Millisecond {
		t.Errorf("span 0 dur = %v", spans[0].Dur)
	}
	if spans[1].Stage != StageMonteCarlo {
		t.Errorf("span 1 = %+v", spans[1])
	}
	sum := tr.Summary()
	for _, want := range []string{"traverse=", "(100→10)", "monte_carlo=", "(10→3)"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary %q missing %q", sum, want)
		}
	}
}

func TestTracerStartEnd(t *testing.T) {
	tr := NewTracer()
	m := tr.Start(StageInfer)
	m.End(0, 7)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Stage != StageInfer || spans[0].Out != 7 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Begin < 0 {
		t.Errorf("negative begin offset %v", spans[0].Begin)
	}
}

func TestNilTracerIsNoop(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	tr.Record(StageInfer, time.Now(), time.Second, 1, 1) // must not panic
	tr.Start(StageTraverse).End(5, 5)
	if tr.Spans() != nil {
		t.Error("nil tracer returned spans")
	}
	if tr.Summary() != "" {
		t.Error("nil tracer returned a summary")
	}
}

func TestStageNames(t *testing.T) {
	names := StageNames()
	if len(names) != int(numStages) {
		t.Fatalf("got %d names, want %d", len(names), int(numStages))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if n == "" || seen[n] {
			t.Errorf("bad or duplicate stage name %q", n)
		}
		seen[n] = true
	}
	if Stage(200).String() == "" {
		t.Error("out-of-range stage has empty name")
	}
}

// BenchmarkNoopTraceSpan measures the disabled-tracing cost of one
// Start/End pair on a nil tracer: it must reduce to pointer tests so
// instrumented hot paths pay nothing when tracing is off (the < 2%
// overhead acceptance bound; a full query does work many orders of
// magnitude above this per-span cost).
func BenchmarkNoopTraceSpan(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Start(StageTraverse).End(i, i)
	}
}

// BenchmarkNoopTraceRecord is the Record-style no-op path used by the
// query processor (which computes durations itself).
func BenchmarkNoopTraceRecord(b *testing.B) {
	var tr *Tracer
	var begin time.Time
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Record(StageMonteCarlo, begin, 0, i, i)
	}
}

// BenchmarkEnabledTraceSpan is the enabled-path counterpart, for
// comparing against the no-op benchmarks.
func BenchmarkEnabledTraceSpan(b *testing.B) {
	tr := NewTracer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Start(StageTraverse).End(i, i)
		tr.mu.Lock()
		tr.spans = tr.spans[:0] // keep the slice from growing unboundedly
		tr.mu.Unlock()
	}
}
