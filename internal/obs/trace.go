package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Stage identifies one pipeline stage of the IM-GRN_Processing algorithm
// (Figure 4). The stages map onto the paper's filtering/refinement split:
// everything up to StageMarkov is filtering (index traversal plus the
// pruning lemmas), StageMonteCarlo is the exact verification the filters
// exist to avoid, and StageTopK is post-processing.
type Stage uint8

const (
	// StageInfer is ad-hoc query-GRN inference from the query matrix
	// (Fig. 4 line 1, Definition 2/3).
	StageInfer Stage = iota
	// StageTraverse is the pairwise priority-queue descent of the R*-tree
	// index (Fig. 4 lines 2–27), including the bit-vector signature,
	// gene-ID-range and Lemma-6 structural filters applied per node pair.
	StageTraverse
	// StageFilter is the reduction of surviving candidate (gene, gene)
	// pairs to distinct candidate matrices.
	StageFilter
	// StageMarkov is Lemma-5 graph existence pruning: the Markov/pivot
	// upper-bound product test applied per candidate matrix. Its duration
	// is the aggregate across candidates (summed CPU time, not wall
	// clock, when refinement runs on multiple workers).
	StageMarkov
	// StageMonteCarlo is exact candidate verification: per-edge Monte
	// Carlo (or analytic) probability estimation of Definition 4.
	// Aggregate duration, like StageMarkov.
	StageMonteCarlo
	// StageTopK is ranking and truncation of the answer set.
	StageTopK
	// StageInferKernel is the portion of StageInfer spent inside the
	// batched Monte Carlo inference kernel (shared permutation batches plus
	// blocked inner products; DESIGN.md §9). It nests within StageInfer —
	// its duration is a subset, not an addition — and is absent when the
	// kernel is disabled or the analytic estimator is in use.
	StageInferKernel
	// StageScatter is the sharded fan-out of one query across the index
	// partitions (DESIGN.md §10): its duration is the wall-clock of the
	// whole scatter wave, In is the number of shards queried and Out the
	// total answers they produced. The per-shard pipeline stages (traverse,
	// filter, markov_prune, monte_carlo) nest within it — one span per
	// shard, recorded into the same trace.
	StageScatter
	// StageMerge is the cross-shard answer merge: either the ordered
	// concatenation of per-shard answer sets or the bounded top-k merge
	// with Markov-bound early termination. In counts answers entering the
	// merge, Out the answers surviving it.
	StageMerge
	// StagePlan is query-plan construction: the cost-model evaluation
	// that fixes the Monte Carlo sample count and the prune-stage set
	// before the pipeline runs. In is the number of queries the planner's
	// cost model had observed, Out the chosen sample count R.
	StagePlan
	// StageBatch is one multi-query batch execution (DESIGN.md §14): its
	// duration is the wall-clock of the whole batch, In the number of
	// queries submitted and Out the number that completed without error.
	// The per-item pipeline stages are recorded into each item's own
	// tracer; this span lives on the batch-level tracer.
	StageBatch

	numStages
)

// stageNames are the wire/metric names of the stages; they appear as the
// "stage" label on metrics and in JSON trace summaries.
var stageNames = [numStages]string{
	"infer", "traverse", "filter", "markov_prune", "monte_carlo", "topk",
	"infer_kernel", "scatter", "merge", "plan", "batch",
}

// String returns the stage's metric/wire name.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return fmt.Sprintf("stage(%d)", int(s))
}

// StageNames lists the wire names of all stages in pipeline order.
func StageNames() []string {
	out := make([]string, numStages)
	copy(out, stageNames[:])
	return out
}

// Span is one recorded stage of one query.
type Span struct {
	// Stage identifies the pipeline stage.
	Stage Stage
	// Begin is the span's start offset from the start of the trace.
	Begin time.Duration
	// Dur is the stage duration. For StageMarkov and StageMonteCarlo it
	// is the aggregate across candidates (see the Stage docs).
	Dur time.Duration
	// In and Out are the candidate counts flowing into and out of the
	// stage; Out/In is the stage's pruning power. Which objects are
	// counted depends on the stage (node pairs, candidate pairs,
	// candidate matrices, answers) — see the DESIGN.md metric catalog.
	In, Out int
}

// Tracer collects the stage spans of a single query. The zero value is
// not used directly: NewTracer pins the trace start time. A nil *Tracer
// is the disabled tracer — every method is nil-safe and free of
// allocation, so instrumented code calls unconditionally.
//
// Record is safe for concurrent use, though the query pipeline records
// stages sequentially from the orchestrating goroutine.
type Tracer struct {
	start time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTracer starts a trace at the current time.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now(), spans: make([]Span, 0, int(numStages))}
}

// Record appends a span for stage, started at begin with duration d and
// the given in/out candidate counts. No-op on a nil tracer.
func (t *Tracer) Record(stage Stage, begin time.Time, d time.Duration, in, out int) {
	if t == nil {
		return
	}
	offset := begin.Sub(t.start)
	if offset < 0 {
		offset = 0
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Stage: stage, Begin: offset, Dur: d, In: in, Out: out})
	t.mu.Unlock()
}

// Enabled reports whether the tracer records (false on nil).
func (t *Tracer) Enabled() bool { return t != nil }

// Spans returns the recorded spans in recording order (nil on a nil or
// empty tracer). The returned slice is a copy.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return nil
	}
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Mark is an in-progress span handle returned by Start. The zero Mark
// (from a nil tracer) is valid and its End is a no-op.
type Mark struct {
	t     *Tracer
	stage Stage
	begin time.Time
}

// Start begins a span for stage. On a nil tracer it returns the zero
// Mark without reading the clock.
func (t *Tracer) Start(stage Stage) Mark {
	if t == nil {
		return Mark{}
	}
	return Mark{t: t, stage: stage, begin: time.Now()}
}

// End completes the span with the given candidate counts.
func (m Mark) End(in, out int) {
	if m.t == nil {
		return
	}
	m.t.Record(m.stage, m.begin, time.Since(m.begin), in, out)
}

// Summary renders the trace as one human-readable line for the
// slow-query log: stage=dur(in→out) segments in recording order.
// Empty on a nil tracer.
func (t *Tracer) Summary() string {
	spans := t.Spans()
	if len(spans) == 0 {
		return ""
	}
	var b strings.Builder
	for i, s := range spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s(%d→%d)", s.Stage, s.Dur.Round(time.Microsecond), s.In, s.Out)
	}
	return b.String()
}
