package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is ignored: counters only go up).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down (in-flight requests, pages
// touched by the last query). All methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution metric. Observations land in
// the first bucket whose upper bound is >= the value; values above the
// last bound land in the implicit +Inf bucket. Counts, the running sum
// and the observation count are all atomics, so Observe is lock-free and
// safe for concurrent use.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	inf    atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // math.Float64bits-encoded running sum
}

// DefLatencyBuckets are the default upper bounds (in seconds) for query
// and stage latency histograms: sub-millisecond through one minute.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// newHistogram returns a histogram over the given bucket upper bounds
// (sorted copies; DefLatencyBuckets when empty).
func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefLatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistogramSnapshot is a consistent-enough view of a histogram: per-bucket
// cumulative counts plus sum and count. Taken bucket-by-bucket without a
// global lock, so concurrent Observes may skew it by a few observations —
// fine for monitoring, which is its only consumer.
type HistogramSnapshot struct {
	// Bounds are the bucket upper bounds (exclusive of +Inf).
	Bounds []float64
	// Cumulative[i] counts observations <= Bounds[i]; the final entry
	// (index len(Bounds)) is the total including the +Inf bucket.
	Cumulative []uint64
	// Sum is the running sum of all observed values.
	Sum float64
	// Count is the number of observations.
	Count uint64
}

// Snapshot captures the current bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:     h.bounds,
		Cumulative: make([]uint64, len(h.bounds)+1),
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		s.Cumulative[i] = cum
	}
	cum += h.inf.Load()
	s.Cumulative[len(h.bounds)] = cum
	s.Count = h.count.Load()
	s.Sum = math.Float64frombits(h.sum.Load())
	return s
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the bucket containing the target rank. Returns 0 with no
// observations; observations in the +Inf bucket report the last finite
// bound (the histogram cannot resolve beyond it).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	n := len(s.Bounds)
	if n == 0 || s.Cumulative[n] == 0 {
		return 0
	}
	total := s.Cumulative[n]
	rank := q * float64(total)
	for i := 0; i < n; i++ {
		if float64(s.Cumulative[i]) >= rank {
			lo := 0.0
			var below uint64
			if i > 0 {
				lo = s.Bounds[i-1]
				below = s.Cumulative[i-1]
			}
			in := s.Cumulative[i] - below
			if in == 0 {
				return s.Bounds[i]
			}
			frac := (rank - float64(below)) / float64(in)
			return lo + frac*(s.Bounds[i]-lo)
		}
	}
	return s.Bounds[n-1]
}

// P50 is Quantile(0.50).
func (s HistogramSnapshot) P50() float64 { return s.Quantile(0.50) }

// P95 is Quantile(0.95).
func (s HistogramSnapshot) P95() float64 { return s.Quantile(0.95) }

// P99 is Quantile(0.99).
func (s HistogramSnapshot) P99() float64 { return s.Quantile(0.99) }

// metricKind tags a family for the exposition TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance within a family.
type series struct {
	labelValue string // empty for unlabeled families
	c          *Counter
	g          *Gauge
	h          *Histogram
}

// family is one named metric with zero or one label dimension.
type family struct {
	name, help, label string
	kind              metricKind
	buckets           []float64

	mu     sync.Mutex
	series []*series
	byVal  map[string]*series
}

func (f *family) get(labelValue string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byVal[labelValue]; ok {
		return s
	}
	s := &series{labelValue: labelValue}
	switch f.kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	default:
		s.h = newHistogram(f.buckets)
	}
	f.byVal[labelValue] = s
	f.series = append(f.series, s)
	return s
}

// Registry holds named metric families and renders them in the
// Prometheus text exposition format. Families are registered once
// (repeat registrations of the same name return the existing metric,
// panicking on a kind mismatch) and listed in registration order.
// All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

func (r *Registry) family(name, help, label string, kind metricKind, buckets []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.kind != kind || f.label != label {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, label: label, kind: kind, buckets: buckets,
		byVal: make(map[string]*series),
	}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, "", kindCounter, nil).get("").c
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, "", kindGauge, nil).get("").g
}

// Histogram registers (or fetches) an unlabeled histogram over the given
// bucket upper bounds (DefLatencyBuckets when nil).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.family(name, help, "", kindHistogram, buckets).get("").h
}

// CounterVec is a counter family with one label dimension.
type CounterVec struct{ f *family }

// CounterVec registers a counter family keyed by the given label name.
func (r *Registry) CounterVec(name, help, label string) CounterVec {
	return CounterVec{r.family(name, help, label, kindCounter, nil)}
}

// With returns the counter for one label value, creating it on first use.
func (v CounterVec) With(labelValue string) *Counter { return v.f.get(labelValue).c }

// GaugeVec is a gauge family with one label dimension.
type GaugeVec struct{ f *family }

// GaugeVec registers a gauge family keyed by the given label name.
func (r *Registry) GaugeVec(name, help, label string) GaugeVec {
	return GaugeVec{r.family(name, help, label, kindGauge, nil)}
}

// With returns the gauge for one label value, creating it on first use.
func (v GaugeVec) With(labelValue string) *Gauge { return v.f.get(labelValue).g }

// HistogramVec is a histogram family with one label dimension.
type HistogramVec struct{ f *family }

// HistogramVec registers a histogram family keyed by the given label name.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) HistogramVec {
	return HistogramVec{r.family(name, help, label, kindHistogram, buckets)}
}

// With returns the histogram for one label value, creating it on first use.
func (v HistogramVec) With(labelValue string) *Histogram { return v.f.get(labelValue).h }

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE headers followed by
// one sample line per series, histograms expanded into cumulative
// {le="..."} buckets plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		ser := make([]*series, len(f.series))
		copy(ser, f.series)
		f.mu.Unlock()
		// A family with no series yet still announces itself: vec families
		// (e.g. errors by code) must be discoverable before the first event.
		sort.Slice(ser, func(i, j int) bool { return ser[i].labelValue < ser[j].labelValue })
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ser {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelPair(f.label, s.labelValue), s.c.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, labelPair(f.label, s.labelValue), s.g.Value())
			default:
				writeHistogram(&b, f, s)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogram(b *strings.Builder, f *family, s *series) {
	snap := s.h.Snapshot()
	for i, bound := range snap.Bounds {
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
			labelPairs(f.label, s.labelValue, "le", formatFloat(bound)), snap.Cumulative[i])
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
		labelPairs(f.label, s.labelValue, "le", "+Inf"), snap.Cumulative[len(snap.Bounds)])
	fmt.Fprintf(b, "%s_sum%s %s\n", f.name, labelPair(f.label, s.labelValue), formatFloat(snap.Sum))
	fmt.Fprintf(b, "%s_count%s %d\n", f.name, labelPair(f.label, s.labelValue), snap.Count)
}

// labelPair renders {name="value"}, or nothing when the family is
// unlabeled.
func labelPair(name, value string) string {
	if name == "" {
		return ""
	}
	return "{" + name + `="` + escapeLabel(value) + `"}`
}

// labelPairs renders one or two label pairs (the family label, if any,
// plus the histogram le label).
func labelPairs(name, value, name2, value2 string) string {
	if name == "" {
		return "{" + name2 + `="` + escapeLabel(value2) + `"}`
	}
	return "{" + name + `="` + escapeLabel(value) + `",` + name2 + `="` + escapeLabel(value2) + `"}`
}

func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
