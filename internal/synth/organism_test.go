package synth

import (
	"math"
	"testing"

	"github.com/imgrn/imgrn/internal/randgen"
)

func TestOrganismSpecs(t *testing.T) {
	if len(Organisms) != 3 {
		t.Fatalf("organisms = %d", len(Organisms))
	}
	if EColi.AvgDegree() <= 0.4 || EColi.AvgDegree() >= 0.5 {
		t.Errorf("E.coli avg degree = %v", EColi.AvgDegree())
	}
	p := EColi.Scaled(100, 50)
	if p.Genes != 100 || p.Samples != 50 {
		t.Errorf("scaled params: %+v", p)
	}
	p = SAureus.Scaled(100, 0)
	if p.Samples != SAureus.Samples {
		t.Errorf("uncapped samples = %d", p.Samples)
	}
}

func TestGenerateOrganism(t *testing.T) {
	m, truth, err := GenerateOrganism(EColi, 40, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumGenes() != 40 || m.Samples() != 30 {
		t.Fatalf("shape %dx%d", m.Samples(), m.NumGenes())
	}
	if truth.N() != 40 {
		t.Errorf("truth size = %d", truth.N())
	}
	if m.Source >= 0 {
		t.Errorf("organism sources should be negative, got %d", m.Source)
	}
	// Gene IDs must be namespaced per organism.
	m2, _, err := GenerateOrganism(SAureus, 40, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.Gene(0) == m2.Gene(0) {
		t.Error("organisms share gene IDs")
	}
}

func TestGenerateOrganismUnknown(t *testing.T) {
	if _, _, err := GenerateOrganism(OrganismSpec{Name: "nope"}, 10, 10, 1); err == nil {
		t.Error("unknown organism should error")
	}
}

func TestContaminateShapeAndRate(t *testing.T) {
	ds, err := GenerateDatabase(DBParams{
		N: 1, NMin: 10, NMax: 10, LMin: 50, LMax: 50, GenePool: 20, Seed: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := ds.DB.Matrix(0)
	c := Contaminate(m, randgen.New(21), 0.2, 1.0, 8)
	if c.NumGenes() != m.NumGenes() || c.Samples() != m.Samples() {
		t.Fatal("contamination changed shape")
	}
	// With geneRate 1, contaminated rows shift every column.
	changedRows := 0
	for i := 0; i < m.Samples(); i++ {
		if c.Col(0)[i] != m.Col(0)[i] {
			changedRows++
		}
	}
	if changedRows == 0 {
		t.Error("no rows contaminated at rate 0.2")
	}
	if changedRows > m.Samples()/2 {
		t.Errorf("too many rows contaminated: %d", changedRows)
	}
}

func TestContaminateZeroRateIsIdentity(t *testing.T) {
	ds, err := GenerateDatabase(DBParams{
		N: 1, NMin: 5, NMax: 5, LMin: 10, LMax: 10, GenePool: 10, Seed: 22,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := ds.DB.Matrix(0)
	c := Contaminate(m, randgen.New(23), 0, 1, 8)
	for j := 0; j < m.NumGenes(); j++ {
		for i := 0; i < m.Samples(); i++ {
			if c.Col(j)[i] != m.Col(j)[i] {
				t.Fatal("zero-rate contamination changed values")
			}
		}
	}
}

func TestContaminateCreatesOutliers(t *testing.T) {
	ds, err := GenerateDatabase(DBParams{
		N: 1, NMin: 5, NMax: 5, LMin: 200, LMax: 200, GenePool: 10, Seed: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := ds.DB.Matrix(0)
	c := Contaminate(m, randgen.New(25), 0.05, 1, 10)
	// Expect values beyond 4 sigma of the original column somewhere.
	found := false
	for j := 0; j < c.NumGenes() && !found; j++ {
		sigma := colStddev(m.Col(j))
		for i := 0; i < c.Samples(); i++ {
			if math.Abs(c.Col(j)[i]-m.Col(j)[i]) > 4*sigma {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("contamination produced no large outliers")
	}
}

func TestRealDataset(t *testing.T) {
	ds, err := RealDataset(9, 5, 8, 6, 10, 30, 40, 26)
	if err != nil {
		t.Fatal(err)
	}
	if ds.DB.Len() != 9 {
		t.Fatalf("N = %d", ds.DB.Len())
	}
	for _, m := range ds.DB.Matrices() {
		if m.NumGenes() < 5 || m.NumGenes() > 8 {
			t.Errorf("genes = %d", m.NumGenes())
		}
		if m.Samples() < 6 || m.Samples() > 10 {
			t.Errorf("samples = %d", m.Samples())
		}
		if ds.Truth[m.Source] == nil || ds.Truth[m.Source].N() != m.NumGenes() {
			t.Error("truth missing or mis-sized")
		}
	}
	// Three organisms contribute gene IDs from separate namespaces.
	namespaces := make(map[int32]bool)
	for _, g := range ds.DB.GeneUniverse() {
		namespaces[int32(g)/1_000_000] = true
	}
	if len(namespaces) != 3 {
		t.Errorf("expected 3 organism namespaces, got %d", len(namespaces))
	}
}

func TestColStddev(t *testing.T) {
	if got := colStddev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("constant stddev = %v", got)
	}
	if got := colStddev([]float64{0, 2}); got != 1 {
		t.Errorf("stddev = %v, want 1", got)
	}
	if got := colStddev(nil); got != 0 {
		t.Errorf("empty stddev = %v", got)
	}
}
