// Package synth generates gene feature data with the linear model of
// Section 6.1: a sparse random adjacency B_i encodes a ground-truth GRN,
// an l×n Gaussian error matrix E_i models measurement noise, and the
// observed features are M_i = E_i · (I − B_i)^{-1}. Edge weights follow
// either the Uniform or the two-sided Gaussian distribution over
// [−1, −0.5] ∪ [0.5, 1] (the Uni and Gau data sets). The package also
// synthesizes organism-like stand-ins for the paper's DREAM5 real data
// (E.coli, S.aureus, S.cerevisiae) — same generator, shapes and edge
// densities matched to the organisms — and utilities for extracting
// database matrices and connected query matrices.
package synth

import (
	"fmt"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/vecmath"
)

// Distribution selects the edge-weight law of the adjacency matrix B.
type Distribution int

const (
	// Uniform draws weights uniformly from [−1, −0.5] ∪ [0.5, 1] (Uni).
	Uniform Distribution = iota
	// Gaussian draws e' ~ N(1, 0.01) and folds e = e' (e' ≤ 1) or e'−2
	// (e' > 1), concentrating weights near ±1 (Gau).
	Gaussian
)

// String names the distribution as in the paper's figures.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "Uni"
	case Gaussian:
		return "Gau"
	default:
		return fmt.Sprintf("Distribution(%d)", int(d))
	}
}

// Truth is the ground-truth undirected GRN behind a generated matrix,
// indexed by column.
type Truth struct {
	n   int
	adj []bool
}

func newTruth(n int) *Truth { return &Truth{n: n, adj: make([]bool, n*n)} }

func (t *Truth) set(s, u int) {
	t.adj[s*t.n+u] = true
	t.adj[u*t.n+s] = true
}

// Has reports whether the ground truth has edge {s, u}.
func (t *Truth) Has(s, u int) bool { return t.adj[s*t.n+u] }

// N returns the vertex count.
func (t *Truth) N() int { return t.n }

// EdgeCount returns the number of undirected ground-truth edges.
func (t *Truth) EdgeCount() int {
	c := 0
	for s := 0; s < t.n; s++ {
		for u := s + 1; u < t.n; u++ {
			if t.Has(s, u) {
				c++
			}
		}
	}
	return c
}

// Neighbors returns the ground-truth neighbors of s.
func (t *Truth) Neighbors(s int) []int {
	var out []int
	for u := 0; u < t.n; u++ {
		if u != s && t.Has(s, u) {
			out = append(out, u)
		}
	}
	return out
}

// Sub returns the ground truth restricted to the given columns.
func (t *Truth) Sub(cols []int) *Truth {
	st := newTruth(len(cols))
	for a, ca := range cols {
		for b := a + 1; b < len(cols); b++ {
			if t.Has(ca, cols[b]) {
				st.set(a, b)
			}
		}
	}
	return st
}

// GenParams parameterizes one generated matrix.
type GenParams struct {
	// Genes is n_i, Samples is l_i.
	Genes, Samples int
	// Deg is the expected in-degree deg(G) (1 when 0, the paper default).
	Deg float64
	// Dist selects Uni or Gau edge weights.
	Dist Distribution
	// NoiseSigma is the std-dev of the error matrix entries (0.1 when 0,
	// matching the paper's N(0, 0.01) variance).
	NoiseSigma float64
	// WeightScale multiplies every edge weight (1 when 0). Values below 1
	// weaken regulatory signal relative to noise, producing the moderate
	// detectability regime of real microarray compendia.
	WeightScale float64
}

func (p GenParams) withDefaults() GenParams {
	if p.Deg == 0 {
		p.Deg = 1
	}
	if p.NoiseSigma == 0 {
		p.NoiseSigma = 0.1
	}
	if p.WeightScale == 0 {
		p.WeightScale = 1
	}
	return p
}

// drawWeight samples one nonzero edge weight.
func drawWeight(rng *randgen.Rand, dist Distribution) float64 {
	switch dist {
	case Gaussian:
		e := rng.Gaussian(1, 0.1) // N(1, 0.01) variance => sigma 0.1
		if e > 1 {
			e -= 2
		}
		return e
	default:
		v := rng.UniformIn(0.5, 1.0)
		if rng.Float64() < 0.5 {
			v = -v
		}
		return v
	}
}

// GenerateMatrix produces one gene feature matrix following the linear
// model, along with its ground-truth GRN. Singular (I − B) draws are
// retried with fresh adjacency randomness (up to a small bound).
func GenerateMatrix(rng *randgen.Rand, source int, genes []gene.ID, p GenParams) (*gene.Matrix, *Truth, error) {
	p = p.withDefaults()
	n := p.Genes
	if len(genes) != n {
		return nil, nil, fmt.Errorf("synth: %d gene IDs for %d genes", len(genes), n)
	}
	if n < 1 || p.Samples < 2 {
		return nil, nil, fmt.Errorf("synth: need Genes >= 1 and Samples >= 2, got %d/%d", n, p.Samples)
	}
	const maxRetries = 8
	for attempt := 0; ; attempt++ {
		b, truth := randomAdjacency(rng, n, p.Deg, p.Dist)
		if p.WeightScale != 1 {
			for i := range b.Data {
				b.Data[i] *= p.WeightScale
			}
		}
		ib, err := vecmath.Sub(vecmath.Identity(n), b)
		if err != nil {
			return nil, nil, err
		}
		inv, err := vecmath.Inverse(ib)
		if err != nil {
			if attempt < maxRetries {
				continue
			}
			return nil, nil, fmt.Errorf("synth: (I-B) singular after %d attempts: %w", attempt+1, err)
		}
		e := vecmath.NewMatrix(p.Samples, n)
		for i := range e.Data {
			e.Data[i] = rng.Gaussian(0, p.NoiseSigma)
		}
		m, err := vecmath.Mul(e, inv)
		if err != nil {
			return nil, nil, err
		}
		gm, err := gene.NewMatrixFromRows(source, genes, m)
		if err != nil {
			return nil, nil, err
		}
		return gm, truth, nil
	}
}

// randomAdjacency draws B: each off-diagonal element becomes a nonzero
// weight with probability deg/(n−1), i.e. n·deg expected regulators.
func randomAdjacency(rng *randgen.Rand, n int, deg float64, dist Distribution) (*vecmath.Matrix, *Truth) {
	b := vecmath.NewMatrix(n, n)
	truth := newTruth(n)
	if n == 1 {
		return b, truth
	}
	pEdge := deg / float64(n-1)
	for s := 0; s < n; s++ {
		for u := 0; u < n; u++ {
			if s == u {
				continue
			}
			if rng.Float64() < pEdge {
				b.Set(s, u, drawWeight(rng, dist))
				truth.set(s, u)
			}
		}
	}
	return b, truth
}

// SequentialIDs returns gene IDs lo, lo+1, …, lo+n−1.
func SequentialIDs(lo, n int) []gene.ID {
	out := make([]gene.ID, n)
	for i := range out {
		out[i] = gene.ID(lo + i)
	}
	return out
}

// SampleIDs draws n distinct gene IDs from a pool of `pool` IDs (0-based),
// modelling the overlap of gene panels across data sources.
func SampleIDs(rng *randgen.Rand, pool, n int) []gene.ID {
	idx := rng.SampleWithoutReplacement(pool, n)
	out := make([]gene.ID, n)
	for i, v := range idx {
		out[i] = gene.ID(v)
	}
	return out
}
