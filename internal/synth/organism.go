package synth

import (
	"fmt"
	"math"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/randgen"
)

// OrganismSpec describes one of the paper's DREAM5 real data sets [22].
// This reproduction has no access to the proprietary microarray
// compendia, so each organism is *simulated*: the same linear model that
// drives the paper's synthetic evaluation generates a feature matrix whose
// shape (samples × genes) and gold-standard edge density match the
// organism. See DESIGN.md §3 for the substitution rationale.
type OrganismSpec struct {
	Name    string
	Samples int // rows of the published matrix
	Genes   int // columns
	Edges   int // gold-standard network edges
}

// The three organisms of Section 6.1.
var (
	EColi       = OrganismSpec{Name: "E.coli", Samples: 805, Genes: 4511, Edges: 2066}
	SAureus     = OrganismSpec{Name: "S.aureus", Samples: 160, Genes: 2810, Edges: 518}
	SCerevisiae = OrganismSpec{Name: "S.cerevisiae", Samples: 536, Genes: 5950, Edges: 3940}
)

// Organisms lists all three specs in the paper's order.
var Organisms = []OrganismSpec{EColi, SAureus, SCerevisiae}

// AvgDegree returns the gold-standard edges per gene, the density the
// scaled stand-in preserves.
func (o OrganismSpec) AvgDegree() float64 {
	return float64(o.Edges) / float64(o.Genes)
}

// Scaled returns generation parameters for an organism-like matrix with
// the given number of genes (and at most maxSamples samples; 0 keeps the
// organism's sample count). Edge density and sample count follow the
// organism; the dense matrix inverse bounds practical gene counts to a
// few hundred, which matches the paper's own usage (n_i ≤ 500 in Fig. 5).
func (o OrganismSpec) Scaled(genes, maxSamples int) GenParams {
	samples := o.Samples
	if maxSamples > 0 && samples > maxSamples {
		samples = maxSamples
	}
	return GenParams{
		Genes:   genes,
		Samples: samples,
		Deg:     o.AvgDegree(),
		Dist:    Gaussian,
		// Expression features have unit-order scale (log-intensity data),
		// so the N(0, 0.3) corruption of the robustness study is the mild
		// perturbation the paper intends, not a signal-destroying one.
		NoiseSigma: 1.0,
		// Real regulatory signal is weak relative to measurement noise;
		// full-strength ±1 weights would make inference trivially easy
		// (AUC ≈ 1), unlike any DREAM5-style benchmark.
		WeightScale: 0.4,
	}
}

// Microarray compendia are heterogeneous: experiments from different labs,
// platforms and batches produce sample-wide (row-wise) artifacts — a bad
// array shifts every gene of that sample at once. Such batch effects
// inflate the raw correlation of unrelated gene pairs, while the paper's
// permutation-calibrated measure discounts them: permuting one vector
// misaligns the artifact rows, so the permutation null widens by exactly
// the spurious amount (Section 6.2's robustness claim). The organism
// stand-ins are therefore contaminated with sparse batch-effect rows.
const (
	// OutlierRate is the fraction of contaminated sample rows (bad
	// arrays / batches).
	OutlierRate = 0.04
	// OutlierGeneRate is the fraction of genes a bad row affects
	// (platform- or probe-specific artifacts, not whole-array shifts).
	OutlierGeneRate = 0.35
	// OutlierScale is the artifact magnitude in per-column standard
	// deviations.
	OutlierScale = 10.0
)

// Contaminate returns a copy of m with sample-level artifacts: each row
// is, with probability rowRate, a "bad array" carrying a common factor
// f ~ N(0, scale²); each gene is affected by a given bad row with
// probability geneRate, receiving a shift of f·σ_col in that row. Pairs of
// co-affected genes thus acquire spurious correlation (which pollutes the
// raw-|r| relevance-network ranking), while the permutation null of such
// outlier-bearing pairs is heavy-tailed, so the paper's randomized measure
// discounts them — Section 6.2's effectiveness/robustness mechanism.
func Contaminate(m *gene.Matrix, rng *randgen.Rand, rowRate, geneRate, scale float64) *gene.Matrix {
	l := m.Samples()
	rowFactor := make([]float64, l)
	for i := 0; i < l; i++ {
		if rng.Float64() < rowRate {
			rowFactor[i] = rng.Gaussian(0, scale)
		}
	}
	cols := make([][]float64, m.NumGenes())
	for j := 0; j < m.NumGenes(); j++ {
		src := m.Col(j)
		sigma := colStddev(src)
		dst := make([]float64, len(src))
		copy(dst, src)
		for i := range dst {
			if rowFactor[i] != 0 && rng.Float64() < geneRate {
				dst[i] += rowFactor[i] * sigma
			}
		}
		cols[j] = dst
	}
	genes := make([]gene.ID, m.NumGenes())
	copy(genes, m.Genes())
	nm, err := gene.NewMatrix(m.Source, genes, cols)
	if err != nil {
		panic(err) // shape preserved by construction
	}
	return nm
}

func colStddev(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	var ss float64
	for _, v := range x {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(x)))
}

// GenerateOrganism synthesizes an organism-like matrix with `genes` genes
// and the organism's sample count (capped by maxSamples when positive),
// returning the matrix and its gold-standard network. Gene IDs are
// organismIndex·10^6 + column so that the three organisms never collide.
// The features carry the OutlierRate/OutlierScale contamination described
// above.
func GenerateOrganism(o OrganismSpec, genes, maxSamples int, seed uint64) (*gene.Matrix, *Truth, error) {
	idx := organismIndex(o)
	if idx < 0 {
		return nil, nil, fmt.Errorf("synth: unknown organism %q", o.Name)
	}
	rng := randgen.New(seed ^ (0x9e3779b97f4a7c15 * uint64(idx+1)))
	ids := SequentialIDs(idx*1_000_000, genes)
	p := o.Scaled(genes, maxSamples)
	m, truth, err := GenerateMatrix(rng, -(idx + 1), ids, p)
	if err != nil {
		return nil, nil, err
	}
	return Contaminate(m, rng, OutlierRate, OutlierGeneRate, OutlierScale), truth, nil
}

func organismIndex(o OrganismSpec) int {
	for i, spec := range Organisms {
		if spec.Name == o.Name {
			return i
		}
	}
	return -1
}

// RealDataset carves a "Real" database (Section 6.3) out of organism-like
// matrices: N matrices total, N/3 extracted from each organism by random
// row/column sub-sampling with the given shape ranges.
func RealDataset(n, nMin, nMax, lMin, lMax, genesPerOrganism, maxSamples int, seed uint64) (*Dataset, error) {
	rng := randgen.New(seed ^ 0x41c64e6da3bc0074)
	ds := &Dataset{
		DB:    gene.NewDatabase(),
		Truth: make(map[int]*Truth, n),
		rng:   rng.Split(),
	}
	source := 0
	for oi, spec := range Organisms {
		base, truth, err := GenerateOrganism(spec, genesPerOrganism, maxSamples, seed)
		if err != nil {
			return nil, fmt.Errorf("synth: organism %s: %w", spec.Name, err)
		}
		share := n / len(Organisms)
		if oi < n%len(Organisms) {
			share++
		}
		for k := 0; k < share; k++ {
			ni := rng.IntIn(nMin, min(nMax, base.NumGenes()))
			li := rng.IntIn(lMin, min(lMax, base.Samples()))
			cols := rng.SampleWithoutReplacement(base.NumGenes(), ni)
			rows := rng.SampleWithoutReplacement(base.Samples(), li)
			m, err := SubSample(base, source, rows, cols)
			if err != nil {
				return nil, err
			}
			if err := ds.DB.Add(m); err != nil {
				return nil, err
			}
			ds.Truth[source] = truth.Sub(cols)
			source++
		}
	}
	return ds, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
