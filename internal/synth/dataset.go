package synth

import (
	"fmt"

	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/randgen"
)

// DBParams parameterizes a synthetic gene feature database (Table 2).
type DBParams struct {
	// N is the number of matrices (data sources).
	N int
	// NMin, NMax bound the genes per matrix ([n_min, n_max]).
	NMin, NMax int
	// LMin, LMax bound the samples per matrix.
	LMin, LMax int
	// Deg is the expected in-degree (1 when 0).
	Deg float64
	// Dist selects Uni or Gau.
	Dist Distribution
	// GenePool is the universe size gene IDs are drawn from; matrices
	// overlap in genes, enabling cross-source matching. Defaults to
	// 2·NMax when 0.
	GenePool int
	// Seed makes generation reproducible.
	Seed uint64
}

func (p DBParams) withDefaults() (DBParams, error) {
	if p.N <= 0 {
		return p, fmt.Errorf("synth: N must be positive")
	}
	if p.NMin <= 1 || p.NMax < p.NMin {
		return p, fmt.Errorf("synth: bad gene range [%d,%d]", p.NMin, p.NMax)
	}
	if p.LMin == 0 && p.LMax == 0 {
		p.LMin, p.LMax = 20, 50
	}
	if p.LMin < 2 || p.LMax < p.LMin {
		return p, fmt.Errorf("synth: bad sample range [%d,%d]", p.LMin, p.LMax)
	}
	if p.GenePool == 0 {
		p.GenePool = 2 * p.NMax
	}
	if p.GenePool < p.NMax {
		return p, fmt.Errorf("synth: gene pool %d smaller than NMax %d", p.GenePool, p.NMax)
	}
	return p, nil
}

// Dataset couples a generated database with its per-source ground truths.
type Dataset struct {
	DB    *gene.Database
	Truth map[int]*Truth
	rng   *randgen.Rand
}

// GenerateDatabase builds a database of N matrices with random shapes in
// the configured ranges (Section 6.1).
func GenerateDatabase(p DBParams) (*Dataset, error) {
	p, err := p.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := randgen.New(p.Seed ^ 0xbe5f14d21a3c9e70)
	ds := &Dataset{
		DB:    gene.NewDatabase(),
		Truth: make(map[int]*Truth, p.N),
		rng:   rng.Split(),
	}
	for i := 0; i < p.N; i++ {
		n := rng.IntIn(p.NMin, p.NMax)
		l := rng.IntIn(p.LMin, p.LMax)
		ids := SampleIDs(rng, p.GenePool, n)
		m, truth, err := GenerateMatrix(rng, i, ids, GenParams{
			Genes: n, Samples: l, Deg: p.Deg, Dist: p.Dist,
		})
		if err != nil {
			return nil, fmt.Errorf("synth: matrix %d: %w", i, err)
		}
		if err := ds.DB.Add(m); err != nil {
			return nil, err
		}
		ds.Truth[i] = truth
	}
	return ds, nil
}

// ExtractQuery extracts an l_Q×n_Q query matrix from a random database
// matrix such that the ground-truth subgraph over the chosen genes is
// connected (the query workload of Section 6.1). It returns the query
// matrix and the data source it came from.
func (ds *Dataset) ExtractQuery(rng *randgen.Rand, nQ int) (*gene.Matrix, int, error) {
	if rng == nil {
		rng = ds.rng
	}
	n := ds.DB.Len()
	if n == 0 {
		return nil, 0, fmt.Errorf("synth: empty database")
	}
	const maxTries = 256
	for try := 0; try < maxTries; try++ {
		m := ds.DB.Matrix(rng.Intn(n))
		truth := ds.Truth[m.Source]
		if m.NumGenes() < nQ {
			continue
		}
		cols, ok := connectedSubset(rng, truth, nQ)
		if !ok {
			continue
		}
		q, err := m.SubMatrix(-1-try, cols)
		if err != nil {
			return nil, 0, err
		}
		return q, m.Source, nil
	}
	// Sparse ground truths (e.g. organism-density sub-samples) may offer
	// no truth-connected n_Q-subset; fall back to a truth-seeded random
	// extraction. The inferred query GRN carries the connectivity the
	// matcher actually consumes, so the workload stays meaningful.
	for try := 0; try < maxTries; try++ {
		m := ds.DB.Matrix(rng.Intn(n))
		if m.NumGenes() < nQ {
			continue
		}
		truth := ds.Truth[m.Source]
		cols := seededSubset(rng, truth, m.NumGenes(), nQ)
		q, err := m.SubMatrix(-1-maxTries-try, cols)
		if err != nil {
			return nil, 0, err
		}
		return q, m.Source, nil
	}
	return nil, 0, fmt.Errorf("synth: could not extract a %d-gene query (all matrices have < %d genes?)", nQ, nQ)
}

// connectedSubset grows a connected vertex set of size k over the truth
// graph by randomized BFS from a random seed vertex.
func connectedSubset(rng *randgen.Rand, t *Truth, k int) ([]int, bool) {
	if k <= 0 || t.N() < k {
		return nil, false
	}
	if k == 1 {
		return []int{rng.Intn(t.N())}, true
	}
	start := rng.Intn(t.N())
	chosen := []int{start}
	inSet := map[int]bool{start: true}
	frontier := append([]int(nil), t.Neighbors(start)...)
	for len(chosen) < k && len(frontier) > 0 {
		// Randomize expansion for workload diversity.
		i := rng.Intn(len(frontier))
		v := frontier[i]
		frontier[i] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		if inSet[v] {
			continue
		}
		inSet[v] = true
		chosen = append(chosen, v)
		for _, nb := range t.Neighbors(v) {
			if !inSet[nb] {
				frontier = append(frontier, nb)
			}
		}
	}
	if len(chosen) < k {
		return nil, false
	}
	return chosen, true
}

// seededSubset grows as much of a truth-connected set as possible and
// fills the remainder with distinct random columns.
func seededSubset(rng *randgen.Rand, t *Truth, nCols, k int) []int {
	chosen, _ := connectedSubset(rng, t, 1)
	inSet := map[int]bool{chosen[0]: true}
	frontier := append([]int(nil), t.Neighbors(chosen[0])...)
	for len(chosen) < k && len(frontier) > 0 {
		i := rng.Intn(len(frontier))
		v := frontier[i]
		frontier[i] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		if inSet[v] {
			continue
		}
		inSet[v] = true
		chosen = append(chosen, v)
		frontier = append(frontier, t.Neighbors(v)...)
	}
	for len(chosen) < k {
		v := rng.Intn(nCols)
		if !inSet[v] {
			inSet[v] = true
			chosen = append(chosen, v)
		}
	}
	return chosen
}

// SubSample extracts a sub-matrix of m over the given row (sample) and
// column (gene) indices, the operation used to carve small database
// matrices out of a large organism-scale matrix ("Real" data, Section 6.3).
func SubSample(m *gene.Matrix, source int, rowIdx, colIdx []int) (*gene.Matrix, error) {
	genes := make([]gene.ID, len(colIdx))
	cols := make([][]float64, len(colIdx))
	for k, j := range colIdx {
		if j < 0 || j >= m.NumGenes() {
			return nil, fmt.Errorf("synth: column %d out of range", j)
		}
		full := m.Col(j)
		sub := make([]float64, len(rowIdx))
		for r, ri := range rowIdx {
			if ri < 0 || ri >= m.Samples() {
				return nil, fmt.Errorf("synth: row %d out of range", ri)
			}
			sub[r] = full[ri]
		}
		genes[k] = m.Gene(j)
		cols[k] = sub
	}
	return gene.NewMatrix(source, genes, cols)
}
