package synth

import (
	"math"
	"testing"

	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/vecmath"
)

func TestGenerateMatrixShape(t *testing.T) {
	rng := randgen.New(1)
	m, truth, err := GenerateMatrix(rng, 7, SequentialIDs(0, 20), GenParams{Genes: 20, Samples: 15})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumGenes() != 20 || m.Samples() != 15 || m.Source != 7 {
		t.Fatalf("shape: %dx%d source %d", m.Samples(), m.NumGenes(), m.Source)
	}
	if truth.N() != 20 {
		t.Errorf("truth size = %d", truth.N())
	}
	if truth.EdgeCount() == 0 {
		t.Error("expected some ground-truth edges at deg=1")
	}
}

func TestGenerateMatrixValidation(t *testing.T) {
	rng := randgen.New(2)
	if _, _, err := GenerateMatrix(rng, 0, SequentialIDs(0, 3), GenParams{Genes: 4, Samples: 10}); err == nil {
		t.Error("gene-count mismatch should error")
	}
	if _, _, err := GenerateMatrix(rng, 0, SequentialIDs(0, 3), GenParams{Genes: 3, Samples: 1}); err == nil {
		t.Error("single sample should error")
	}
}

// TestGenerateMatrixSignal: ground-truth edges should show elevated
// |correlation| relative to non-edges, on average — the property every
// inference experiment relies on.
func TestGenerateMatrixSignal(t *testing.T) {
	rng := randgen.New(3)
	m, truth, err := GenerateMatrix(rng, 0, SequentialIDs(0, 30), GenParams{Genes: 30, Samples: 200})
	if err != nil {
		t.Fatal(err)
	}
	var edgeSum, nonSum float64
	var edgeN, nonN int
	for s := 0; s < 30; s++ {
		for u := s + 1; u < 30; u++ {
			c := math.Abs(vecmath.Dot(m.StdCol(s), m.StdCol(u)))
			if truth.Has(s, u) {
				edgeSum += c
				edgeN++
			} else {
				nonSum += c
				nonN++
			}
		}
	}
	if edgeN == 0 {
		t.Skip("no edges drawn")
	}
	if edgeSum/float64(edgeN) <= nonSum/float64(nonN)+0.1 {
		t.Errorf("edges |cor| %.3f not above non-edges %.3f",
			edgeSum/float64(edgeN), nonSum/float64(nonN))
	}
}

func TestWeightScaleWeakensSignal(t *testing.T) {
	strong, truthS, err := GenerateMatrix(randgen.New(4), 0, SequentialIDs(0, 25),
		GenParams{Genes: 25, Samples: 150, WeightScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	weak, truthW, err := GenerateMatrix(randgen.New(4), 0, SequentialIDs(0, 25),
		GenParams{Genes: 25, Samples: 150, WeightScale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	avg := func(m interface {
		StdCol(int) []float64
	}, truth *Truth) float64 {
		var sum float64
		var n int
		for s := 0; s < 25; s++ {
			for u := s + 1; u < 25; u++ {
				if truth.Has(s, u) {
					sum += math.Abs(vecmath.Dot(m.StdCol(s), m.StdCol(u)))
					n++
				}
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	if avg(weak, truthW) >= avg(strong, truthS) {
		t.Error("WeightScale 0.2 should weaken edge correlations")
	}
}

func TestDistributionString(t *testing.T) {
	if Uniform.String() != "Uni" || Gaussian.String() != "Gau" {
		t.Error("distribution names wrong")
	}
	if Distribution(9).String() == "" {
		t.Error("unknown distribution should still render")
	}
}

func TestTruthOperations(t *testing.T) {
	tr := newTruth(4)
	tr.set(0, 2)
	tr.set(2, 3)
	if !tr.Has(2, 0) || tr.Has(0, 1) {
		t.Error("Has wrong")
	}
	if tr.EdgeCount() != 2 {
		t.Errorf("EdgeCount = %d", tr.EdgeCount())
	}
	nb := tr.Neighbors(2)
	if len(nb) != 2 || nb[0] != 0 || nb[1] != 3 {
		t.Errorf("Neighbors = %v", nb)
	}
	sub := tr.Sub([]int{2, 0, 1})
	if !sub.Has(0, 1) {
		t.Error("Sub lost the (2,0) edge (should be (0,1) after remap)")
	}
	if sub.Has(0, 2) {
		t.Error("Sub invented an edge")
	}
}

func TestSampleIDsDistinct(t *testing.T) {
	rng := randgen.New(5)
	ids := SampleIDs(rng, 50, 20)
	seen := make(map[int32]bool)
	for _, id := range ids {
		if seen[int32(id)] {
			t.Fatal("duplicate gene ID sampled")
		}
		seen[int32(id)] = true
		if id < 0 || int(id) >= 50 {
			t.Fatalf("ID %d out of pool", id)
		}
	}
}
