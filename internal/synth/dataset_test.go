package synth

import (
	"testing"

	"github.com/imgrn/imgrn/internal/randgen"
)

func TestGenerateDatabaseShapes(t *testing.T) {
	ds, err := GenerateDatabase(DBParams{
		N: 30, NMin: 5, NMax: 10, LMin: 6, LMax: 12,
		Dist: Gaussian, GenePool: 40, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ds.DB.Len() != 30 {
		t.Fatalf("N = %d", ds.DB.Len())
	}
	for _, m := range ds.DB.Matrices() {
		if m.NumGenes() < 5 || m.NumGenes() > 10 {
			t.Errorf("genes = %d out of [5,10]", m.NumGenes())
		}
		if m.Samples() < 6 || m.Samples() > 12 {
			t.Errorf("samples = %d out of [6,12]", m.Samples())
		}
		for _, g := range m.Genes() {
			if g < 0 || int(g) >= 40 {
				t.Errorf("gene %d outside pool", g)
			}
		}
		if ds.Truth[m.Source] == nil {
			t.Errorf("no truth for source %d", m.Source)
		}
	}
}

func TestGenerateDatabaseValidation(t *testing.T) {
	bad := []DBParams{
		{N: 0, NMin: 5, NMax: 10},
		{N: 5, NMin: 0, NMax: 10},
		{N: 5, NMin: 10, NMax: 5},
		{N: 5, NMin: 5, NMax: 10, LMin: 1, LMax: 0},
		{N: 5, NMin: 5, NMax: 10, GenePool: 3},
	}
	for i, p := range bad {
		if _, err := GenerateDatabase(p); err == nil {
			t.Errorf("case %d should fail: %+v", i, p)
		}
	}
}

func TestGenerateDatabaseDeterminism(t *testing.T) {
	p := DBParams{N: 5, NMin: 4, NMax: 6, LMin: 5, LMax: 8, GenePool: 20, Seed: 9}
	a, err := GenerateDatabase(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDatabase(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < a.DB.Len(); i++ {
		ma, mb := a.DB.Matrix(i), b.DB.Matrix(i)
		if ma.NumGenes() != mb.NumGenes() || ma.Samples() != mb.Samples() {
			t.Fatal("shapes differ across same-seed runs")
		}
		for j := 0; j < ma.NumGenes(); j++ {
			ca, cb := ma.Col(j), mb.Col(j)
			for k := range ca {
				if ca[k] != cb[k] {
					t.Fatal("values differ across same-seed runs")
				}
			}
		}
	}
}

func TestExtractQueryConnectedTruth(t *testing.T) {
	ds, err := GenerateDatabase(DBParams{
		N: 20, NMin: 10, NMax: 15, LMin: 8, LMax: 12,
		Dist: Uniform, GenePool: 60, Seed: 12, Deg: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := randgen.New(13)
	for i := 0; i < 10; i++ {
		q, origin, err := ds.ExtractQuery(rng, 4)
		if err != nil {
			t.Fatal(err)
		}
		if q.NumGenes() != 4 {
			t.Fatalf("query genes = %d", q.NumGenes())
		}
		om := ds.DB.BySource(origin)
		if om == nil {
			t.Fatalf("origin %d unknown", origin)
		}
		for _, g := range q.Genes() {
			if !om.Has(g) {
				t.Errorf("query gene %d not in origin", g)
			}
		}
		if q.Samples() != om.Samples() {
			t.Errorf("query sample count differs from origin")
		}
	}
}

func TestExtractQueryFallbackOnSparseTruth(t *testing.T) {
	// Near-zero degree leaves almost no truth edges; extraction must still
	// succeed via the fallback.
	ds, err := GenerateDatabase(DBParams{
		N: 10, NMin: 8, NMax: 10, LMin: 6, LMax: 8,
		Dist: Uniform, GenePool: 30, Seed: 14, Deg: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := randgen.New(15)
	q, _, err := ds.ExtractQuery(rng, 6)
	if err != nil {
		t.Fatal(err)
	}
	if q.NumGenes() != 6 {
		t.Errorf("fallback query genes = %d", q.NumGenes())
	}
}

func TestExtractQueryTooLarge(t *testing.T) {
	ds, err := GenerateDatabase(DBParams{
		N: 3, NMin: 4, NMax: 5, LMin: 5, LMax: 6, GenePool: 20, Seed: 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ds.ExtractQuery(randgen.New(17), 50); err == nil {
		t.Error("oversized query should fail")
	}
}

func TestSubSample(t *testing.T) {
	ds, err := GenerateDatabase(DBParams{
		N: 1, NMin: 6, NMax: 6, LMin: 10, LMax: 10, GenePool: 20, Seed: 18,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := ds.DB.Matrix(0)
	sub, err := SubSample(m, 99, []int{1, 3, 5}, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Source != 99 || sub.NumGenes() != 2 || sub.Samples() != 3 {
		t.Fatalf("sub shape: %d genes × %d samples", sub.NumGenes(), sub.Samples())
	}
	if sub.Gene(1) != m.Gene(2) {
		t.Error("gene labels wrong")
	}
	if sub.Col(0)[1] != m.Col(0)[3] {
		t.Error("row selection wrong")
	}
	if _, err := SubSample(m, 0, []int{99}, []int{0}); err == nil {
		t.Error("row out of range should error")
	}
	if _, err := SubSample(m, 0, []int{0}, []int{99}); err == nil {
		t.Error("column out of range should error")
	}
}
