package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/obs"
)

// POST /query-batch: many queries, one request, one engine batch
// (DESIGN.md §14). The whole batch shares plan resolution, γ-group index
// traversals and — on sharded servers — a single scatter, so B queries
// cost far less than B /query round trips. The response streams NDJSON:
// one frame per query the moment it retires (not necessarily in request
// order on sharded servers), then a terminal {"done":true,...} frame
// with the batch-level counters. Item errors are per item: a frame with
// an "error" field never aborts its siblings.
//
// QueryTimeout bounds each ITEM, not the batch: a B-item batch may
// legitimately run up to B×QueryTimeout, and one slow query cannot
// starve its batch siblings of their own full window. MaxConcurrent
// shedding counts a batch as its item count — a 64-query batch claims
// 64 slots or is shed with 503, so batching cannot bypass the load
// bound.

// BatchRequest is the /query-batch payload.
type BatchRequest struct {
	// Queries are the batch items, answered independently.
	Queries []BatchQueryJSON `json:"queries"`
	// SharedPerms opts into shared permutation batches (core
	// BatchOptions.SharedPerms): Monte Carlo items probing the same
	// (source, column, R) reuse one permutation fill. Deterministic, but
	// a different byte stream than sequential /query calls.
	SharedPerms bool `json:"sharedPerms,omitempty"`
}

// BatchQueryJSON is one batch item: a feature matrix (genes + columns,
// as in /query) or an explicit pattern (genes + edges, as in
// /query-graph), plus its own params.
type BatchQueryJSON struct {
	Genes   []string    `json:"genes"`
	Columns [][]float64 `json:"columns,omitempty"`
	Edges   []EdgeJSON  `json:"edges,omitempty"`
	Params  ParamsJSON  `json:"params"`
}

// BatchFrameJSON is one NDJSON result frame: the answer set of query
// Index, or its error. Trace is present when the item requested it.
type BatchFrameJSON struct {
	Index   int          `json:"index"`
	Answers []AnswerJSON `json:"answers,omitempty"`
	Stats   *QueryStats  `json:"stats,omitempty"`
	Trace   []SpanJSON   `json:"trace,omitempty"`
	Error   string       `json:"error,omitempty"`
}

// BatchDoneJSON is the terminal NDJSON frame: batch-level counters.
type BatchDoneJSON struct {
	Done         bool    `json:"done"`
	Queries      int     `json:"queries"`
	Errors       int     `json:"errors"`
	Groups       int     `json:"groups"`
	PermFills    int     `json:"permFills,omitempty"`
	PermProbes   int     `json:"permProbes,omitempty"`
	TotalSeconds float64 `json:"totalSeconds"`
}

// acquireN claims n execution slots — a batch counts as its item count
// against MaxConcurrent, so /query-batch cannot sidestep the load bound
// a /query client is subject to. All-or-nothing: a batch that does not
// fit entirely is shed with 503 rather than admitted partially.
func (s *Server) acquireN(w http.ResponseWriter, n int) (release func(), ok bool) {
	s.semOnce.Do(func() {
		if s.MaxConcurrent > 0 {
			s.sem = make(chan struct{}, s.MaxConcurrent)
		}
	})
	if s.sem == nil {
		s.met.inFlight.Add(int64(n))
		return func() { s.met.inFlight.Add(int64(-n)) }, true
	}
	claimed := 0
	for ; claimed < n; claimed++ {
		select {
		case s.sem <- struct{}{}:
		default:
			for ; claimed > 0; claimed-- {
				<-s.sem
			}
			s.met.shed.Inc()
			s.error(w, http.StatusServiceUnavailable, "server at capacity")
			return nil, false
		}
	}
	s.met.inFlight.Add(int64(n))
	return func() {
		s.met.inFlight.Add(int64(-n))
		for i := 0; i < n; i++ {
			<-s.sem
		}
	}, true
}

func (s *Server) handleQueryBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		s.error(w, http.StatusBadRequest, "empty batch")
		return
	}
	if max := s.maxBatchItems(); len(req.Queries) > max {
		s.error(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds limit %d", len(req.Queries), max))
		return
	}

	// Build every item up front; a malformed item is reported in its
	// result frame, never a 400 for the whole batch (its siblings are
	// already paid for). Validation errors from params surface the same
	// way, through core plan resolution.
	items := make([]core.BatchItem, len(req.Queries))
	preErr := make([]error, len(req.Queries))
	trs := make([]*obs.Tracer, len(req.Queries))
	for i := range req.Queries {
		trs[i] = obs.NewTracer()
		preErr[i] = s.buildBatchItem(&req.Queries[i], trs[i], &items[i])
	}

	release, ok := s.acquireN(w, len(req.Queries))
	if !ok {
		return
	}
	defer release()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	var wmu sync.Mutex
	emit := func(f BatchFrameJSON) {
		wmu.Lock()
		defer wmu.Unlock()
		_ = enc.Encode(f)
		if flusher != nil {
			flusher.Flush()
		}
	}

	// Pre-failed items stream first; the live subset runs as one engine
	// batch with positions mapped back to request indexes.
	itemErrs := 0
	var live []core.BatchItem
	var orig []int
	for i := range items {
		if preErr[i] != nil {
			itemErrs++
			emit(BatchFrameJSON{Index: i, Error: preErr[i].Error()})
			continue
		}
		live = append(live, items[i])
		orig = append(orig, i)
	}

	start := time.Now()
	batchTr := obs.NewTracer()
	mark := batchTr.Start(obs.StageBatch)
	var bst core.BatchStats
	if len(live) > 0 {
		opts := core.BatchOptions{
			SharedPerms: req.SharedPerms,
			// Each item gets the full query window; the batch as a whole
			// is bounded only by the client connection.
			ItemTimeout: s.QueryTimeout,
			OnResult: func(pos int, res core.BatchResult) {
				i := orig[pos]
				if res.Err != nil {
					emit(BatchFrameJSON{Index: i, Error: res.Err.Error()})
					return
				}
				s.observeQuery("query-batch", res.Stats, trs[i])
				resp := s.response(res.Answers, res.Stats, req.Queries[i].Params, trs[i])
				st := resp.Stats
				emit(BatchFrameJSON{Index: i, Answers: resp.Answers, Stats: &st, Trace: resp.Trace})
			},
		}
		_, bst = s.eng.QueryBatch(r.Context(), live, opts)
		itemErrs += bst.Errors
	}
	mark.End(len(items), len(items)-itemErrs)
	s.met.stage.With(obs.StageBatch.String()).Observe(batchTr.Spans()[0].Dur.Seconds())

	m := &s.met
	m.batchRequests.Inc()
	m.batchQueries.Add(uint64(len(items)))
	m.batchSize.Observe(float64(len(items)))
	m.batchItemErrs.Add(uint64(itemErrs))
	m.batchGroups.Add(uint64(bst.Groups))
	m.batchPermFills.Add(uint64(bst.PermFills))
	m.batchPermProbes.Add(uint64(bst.PermProbes))

	writeDone := BatchDoneJSON{
		Done:         true,
		Queries:      len(items),
		Errors:       itemErrs,
		Groups:       bst.Groups,
		PermFills:    bst.PermFills,
		PermProbes:   bst.PermProbes,
		TotalSeconds: time.Since(start).Seconds(),
	}
	wmu.Lock()
	_ = enc.Encode(writeDone)
	if flusher != nil {
		flusher.Flush()
	}
	wmu.Unlock()
}

// buildBatchItem maps one wire item onto a core.BatchItem; an error
// means the item is answered with an error frame, not run.
func (s *Server) buildBatchItem(q *BatchQueryJSON, tr *obs.Tracer, out *core.BatchItem) error {
	ids, err := s.resolveGenes(q.Genes)
	if err != nil {
		return err
	}
	params, err := s.params(q.Params, len(ids), tr)
	if err != nil {
		return err
	}
	out.Params = params
	out.K = q.Params.TopK
	if len(q.Columns) > 0 {
		if len(q.Edges) > 0 {
			return fmt.Errorf("batch item has both columns and edges")
		}
		if len(q.Columns) != len(ids) {
			return fmt.Errorf("%d gene names for %d columns", len(ids), len(q.Columns))
		}
		mq, err := gene.NewMatrix(-1, ids, q.Columns)
		if err != nil {
			return err
		}
		out.Matrix = mq
		return nil
	}
	if len(q.Edges) == 0 {
		return fmt.Errorf("batch item has neither columns nor edges")
	}
	g := grn.NewGraph(ids)
	for _, e := range q.Edges {
		if e.S < 0 || e.S >= len(ids) || e.T < 0 || e.T >= len(ids) || e.S == e.T {
			return fmt.Errorf("bad edge (%d,%d)", e.S, e.T)
		}
		g.SetEdge(e.S, e.T, e.Prob)
	}
	out.Graph = g
	return nil
}

// maxBatchItems is the effective MaxBatchItems (default 256).
func (s *Server) maxBatchItems() int {
	if s.MaxBatchItems > 0 {
		return s.MaxBatchItems
	}
	return 256
}
