package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// queryFixture runs one successful /query against s so that the query
// metrics have data.
func queryFixture(t *testing.T, s *Server, trace bool) QueryResponse {
	t.Helper()
	// The fixture database plants the A,B,C module in every source; use
	// source 3's own columns so the query matches.
	m := s.coord.Database().BySource(3)
	req := QueryRequest{
		Genes:   []string{"A", "B", "C"},
		Columns: [][]float64{m.Col(0), m.Col(1), m.Col(2)},
		Params:  ParamsJSON{Gamma: 0.6, Alpha: 0.4, Seed: 3, Analytic: true, Trace: trace},
	}
	rec := postJSON(t, s, "/query", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("query status = %d body %s", rec.Code, rec.Body)
	}
	var resp QueryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

func scrape(t *testing.T, s *Server) string {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	return rec.Body.String()
}

// parseExposition validates the Prometheus text format line by line and
// returns the sample values keyed by full series name (including the
// label part, verbatim).
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	helped := make(map[string]bool)
	typed := make(map[string]bool)
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if name, ok := strings.CutPrefix(line, "# HELP "); ok {
			fam, _, found := strings.Cut(name, " ")
			if !found {
				t.Fatalf("line %d: HELP without text: %q", ln+1, line)
			}
			helped[fam] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fam, kind, found := strings.Cut(rest, " ")
			if !found || (kind != "counter" && kind != "gauge" && kind != "histogram") {
				t.Fatalf("line %d: bad TYPE: %q", ln+1, line)
			}
			typed[fam] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		}
		series, valText, found := strings.Cut(line, " ")
		if !found {
			t.Fatalf("line %d: sample without value: %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(valText, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, line, err)
		}
		fam := series
		if i := strings.IndexByte(fam, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated labels: %q", ln+1, line)
			}
			fam = fam[:i]
		}
		// Histogram sample suffixes belong to the base family.
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if base := strings.TrimSuffix(fam, suf); base != fam && typed[base] {
				fam = base
				break
			}
		}
		if !helped[fam] || !typed[fam] {
			t.Fatalf("line %d: sample %q before HELP/TYPE of %q", ln+1, line, fam)
		}
		samples[series] = v
	}
	return samples
}

// TestMetricsExposition runs a query and checks the /metrics output is
// well-formed and carries every family the observability layer promises.
func TestMetricsExposition(t *testing.T) {
	s, _, _ := fixture(t)
	resp := queryFixture(t, s, false)
	samples := parseExposition(t, scrape(t, s))

	get := func(series string) float64 {
		t.Helper()
		v, ok := samples[series]
		if !ok {
			t.Fatalf("series %q missing from /metrics", series)
		}
		return v
	}
	if v := get(`imgrn_requests_total{endpoint="query"}`); v != 1 {
		t.Errorf("requests{query} = %v, want 1", v)
	}
	get(`imgrn_requests_total{endpoint="query-graph"}`) // pre-seeded
	get(`imgrn_requests_total{endpoint="cluster"}`)
	if v := get("imgrn_query_seconds_count"); v != 1 {
		t.Errorf("query_seconds_count = %v, want 1", v)
	}
	if v := get("imgrn_query_seconds_sum"); v <= 0 {
		t.Errorf("query_seconds_sum = %v, want > 0", v)
	}
	// Every pipeline stage family is pre-seeded even before its stage runs.
	for _, stage := range []string{"infer", "traverse", "filter", "markov_prune", "monte_carlo", "topk"} {
		get(fmt.Sprintf(`imgrn_stage_seconds_count{stage=%q}`, stage))
	}
	if v := get(`imgrn_stage_seconds_count{stage="infer"}`); v != 1 {
		t.Errorf("stage_seconds_count{infer} = %v, want 1", v)
	}
	if v := get("imgrn_candidates_refined_total"); v != float64(resp.Stats.CandidateMatrices-resp.Stats.MatricesPrunedL5) {
		t.Errorf("candidates_refined = %v, stats say %d", v,
			resp.Stats.CandidateMatrices-resp.Stats.MatricesPrunedL5)
	}
	get("imgrn_candidates_filtered_total")
	if v := get("imgrn_edgeprob_cache_misses_total"); v != float64(resp.Stats.CacheMisses) {
		t.Errorf("cache_misses = %v, stats say %d", v, resp.Stats.CacheMisses)
	}
	get("imgrn_edgeprob_cache_hits_total")
	if v := get("imgrn_reader_page_accesses_total"); v != float64(resp.Stats.IOCost) {
		t.Errorf("page_accesses = %v, stats say %d", v, resp.Stats.IOCost)
	}
	if v := get("imgrn_reader_pages"); v != float64(resp.Stats.IOCost) {
		t.Errorf("reader_pages gauge = %v, stats say %d", v, resp.Stats.IOCost)
	}
	get("imgrn_reader_buffer_hits_total")
	if v := get("imgrn_requests_in_flight"); v != 0 {
		t.Errorf("in_flight = %v, want 0 at rest", v)
	}
	get("imgrn_requests_shed_total")
	get("imgrn_slow_queries_total")
}

func TestMetricsMethodNotAllowed(t *testing.T) {
	s, _, _ := fixture(t)
	req := httptest.NewRequest(http.MethodPost, "/metrics", strings.NewReader("{}"))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST /metrics status = %d", rec.Code)
	}
}

// TestErrorCounter checks error responses land in the by-code counter.
func TestErrorCounter(t *testing.T) {
	s, _, _ := fixture(t)
	if rec := postJSON(t, s, "/query", map[string]any{"genes": []string{"nosuch"}}); rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
	samples := parseExposition(t, scrape(t, s))
	if v := samples[`imgrn_request_errors_total{code="400"}`]; v != 1 {
		t.Fatalf("errors{400} = %v, want 1", v)
	}
}

// TestTraceInResponse checks the opt-in per-request trace payload.
func TestTraceInResponse(t *testing.T) {
	s, _, _ := fixture(t)
	resp := queryFixture(t, s, true)
	if len(resp.Trace) == 0 {
		t.Fatal("params.trace=true produced no trace spans")
	}
	stages := make(map[string]SpanJSON)
	for _, sp := range resp.Trace {
		if sp.DurSeconds < 0 || sp.BeginSeconds < 0 {
			t.Errorf("span %s has negative timing: %+v", sp.Stage, sp)
		}
		stages[sp.Stage] = sp
	}
	for _, want := range []string{"infer", "traverse", "filter"} {
		if _, ok := stages[want]; !ok {
			t.Errorf("trace missing stage %q (got %v)", want, resp.Trace)
		}
	}
	if sp, ok := stages["monte_carlo"]; ok && sp.Out != resp.Stats.Answers {
		t.Errorf("monte_carlo out = %d, answers = %d", sp.Out, resp.Stats.Answers)
	}

	// And the default stays trace-free on the wire.
	if resp := queryFixture(t, s, false); len(resp.Trace) != 0 {
		t.Fatalf("untraced request returned %d spans", len(resp.Trace))
	}
}

// TestSlowQueryLog checks that queries over the threshold are logged with
// their stage breakdown and counted.
func TestSlowQueryLog(t *testing.T) {
	s, _, _ := fixture(t)
	var buf bytes.Buffer
	s.SlowQueryThreshold = time.Nanosecond // every query is "slow"
	s.SlowQueryLog = log.New(&buf, "", 0)
	queryFixture(t, s, false)
	out := buf.String()
	if !strings.Contains(out, "slow query: endpoint=query") {
		t.Fatalf("slow-query log missing entry: %q", out)
	}
	if !strings.Contains(out, "infer=") || !strings.Contains(out, "traverse=") {
		t.Errorf("slow-query log missing stage breakdown: %q", out)
	}
	samples := parseExposition(t, scrape(t, s))
	if v := samples["imgrn_slow_queries_total"]; v != 1 {
		t.Errorf("slow_queries_total = %v, want 1", v)
	}

	// Raise the threshold out of reach: no further log lines.
	buf.Reset()
	s.SlowQueryThreshold = time.Hour
	queryFixture(t, s, false)
	if buf.Len() != 0 {
		t.Errorf("fast query logged as slow: %q", buf.String())
	}
}

// TestPprofGate checks /debug/pprof/ answers 404 until EnablePprof.
func TestPprofGate(t *testing.T) {
	s, _, _ := fixture(t)
	get := func() int {
		req := httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		return rec.Code
	}
	if code := get(); code != http.StatusNotFound {
		t.Fatalf("pprof disabled: status = %d, want 404", code)
	}
	s.EnablePprof = true
	if code := get(); code != http.StatusOK {
		t.Fatalf("pprof enabled: status = %d, want 200", code)
	}
}
