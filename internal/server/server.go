// Package server exposes an IM-GRN query engine over HTTP with a JSON
// API — the prototype-system interface sketched in the paper's
// conclusion: clients submit gene feature samples or a hand-drawn query
// GRN plus ad-hoc thresholds, and receive the matching data sources with
// confidences and cost statistics.
//
// Requests are served concurrently: every query builds its own processor
// with a per-query execution context (private page-access accounting, see
// internal/exec), so no handler serializes behind another. QueryTimeout
// bounds each query's wall-clock time through context cancellation, and
// MaxConcurrent sheds load with 503 when too many queries are in flight.
//
// Endpoints:
//
//	GET  /healthz      liveness probe
//	GET  /stats        database and index statistics
//	POST /query        IM-GRN query from a feature matrix
//	POST /query-graph  IM-GRN query from an explicit probabilistic pattern
//	POST /cluster      cluster the data sources by regulatory structure
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"github.com/imgrn/imgrn/internal/cluster"
	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/randgen"
)

// Server handles IM-GRN HTTP requests over one index. Handlers are safe
// for concurrent use; queries do not serialize against each other because
// each runs on its own execution context.
type Server struct {
	idx *index.Index
	cat *gene.Catalog
	mux *http.ServeMux

	// MaxBodyBytes bounds request bodies (default 32 MiB).
	MaxBodyBytes int64

	// QueryTimeout bounds the wall-clock time of one query or clustering
	// request (default 30s; <= 0 disables the bound). A request past its
	// deadline is abandoned at the next traversal/refinement loop boundary
	// and answered with 503.
	QueryTimeout time.Duration

	// MaxConcurrent bounds the number of in-flight query/cluster requests
	// (default 0 = unbounded). Excess requests are rejected immediately
	// with 503 rather than queued.
	MaxConcurrent int

	// Workers is the intra-query parallelism passed to every query's
	// params (see core.Params.Workers). 0 preserves the exact sequential
	// per-query algorithm.
	Workers int

	semOnce sync.Once
	sem     chan struct{}

	// cacheMu guards caches; the caches themselves are lock-striped and
	// shared by concurrent requests with identical estimator settings.
	cacheMu sync.Mutex
	caches  map[estimatorSig]*core.EdgeProbCache
}

// estimatorSig identifies one estimator configuration; memoized edge
// probabilities must not be shared across configurations.
type estimatorSig struct {
	samples  int
	seed     uint64
	analytic bool
	oneSided bool
}

// cacheFor returns (creating if needed) the edge-probability cache for the
// estimator settings of p.
func (s *Server) cacheFor(p ParamsJSON) *core.EdgeProbCache {
	sig := estimatorSig{samples: p.Samples, seed: p.Seed, analytic: p.Analytic, oneSided: p.OneSided}
	s.cacheMu.Lock()
	defer s.cacheMu.Unlock()
	if s.caches == nil {
		s.caches = make(map[estimatorSig]*core.EdgeProbCache)
	}
	c, ok := s.caches[sig]
	if !ok {
		c = core.NewEdgeProbCache(0)
		s.caches[sig] = c
	}
	return c
}

// New returns a server over idx. cat translates gene names in requests;
// a nil catalog restricts requests to numeric gene IDs.
func New(idx *index.Index, cat *gene.Catalog) *Server {
	s := &Server{idx: idx, cat: cat, MaxBodyBytes: 32 << 20, QueryTimeout: 30 * time.Second}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/query-graph", s.handleQueryGraph)
	mux.HandleFunc("/cluster", s.handleCluster)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// acquire claims an execution slot, reporting false (and answering 503)
// when the server is at MaxConcurrent in-flight requests. The returned
// release func must be called when the request finishes.
func (s *Server) acquire(w http.ResponseWriter) (release func(), ok bool) {
	s.semOnce.Do(func() {
		if s.MaxConcurrent > 0 {
			s.sem = make(chan struct{}, s.MaxConcurrent)
		}
	})
	if s.sem == nil {
		return func() {}, true
	}
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, true
	default:
		writeError(w, http.StatusServiceUnavailable, "server at capacity")
		return nil, false
	}
}

// queryContext derives the per-request context: the client's (cancelled
// when the connection drops) bounded by QueryTimeout.
func (s *Server) queryContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.QueryTimeout > 0 {
		return context.WithTimeout(r.Context(), s.QueryTimeout)
	}
	return context.WithCancel(r.Context())
}

// writeQueryError maps a query error to an HTTP status: deadline and
// cancellation become 503 (the query was shed, not wrong), everything
// else 500.
func writeQueryError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		writeError(w, http.StatusServiceUnavailable, "query timed out")
		return
	}
	if errors.Is(err, context.Canceled) {
		writeError(w, http.StatusServiceUnavailable, "query cancelled")
		return
	}
	writeError(w, http.StatusInternalServerError, err.Error())
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// StatsResponse summarizes the database and index.
type StatsResponse struct {
	Matrices      int    `json:"matrices"`
	Vectors       int    `json:"vectors"`
	DistinctGenes int    `json:"distinctGenes"`
	TreeNodes     int    `json:"treeNodes"`
	TreeHeight    int    `json:"treeHeight"`
	Pages         uint64 `json:"pages"`
	Pivots        int    `json:"pivotsPerMatrix"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	sum := s.idx.DB().Summary()
	bs := s.idx.Stats()
	writeJSON(w, http.StatusOK, StatsResponse{
		Matrices:      sum.Matrices,
		Vectors:       bs.Vectors,
		DistinctGenes: sum.DistinctGenes,
		TreeNodes:     bs.TreeNodes,
		TreeHeight:    bs.TreeHeight,
		Pages:         bs.Pages,
		Pivots:        s.idx.D(),
	})
}

// QueryRequest is the /query payload: a feature matrix (one column per
// gene) plus the ad-hoc thresholds of Definition 4.
type QueryRequest struct {
	// Genes labels the columns, by name (resolved through the catalog) or
	// numeric ID when the name parses as an integer.
	Genes []string `json:"genes"`
	// Columns[i] is the feature vector of Genes[i]; all must share length.
	Columns [][]float64 `json:"columns"`
	Params  ParamsJSON  `json:"params"`
}

// GraphQueryRequest is the /query-graph payload: an explicit probabilistic
// pattern.
type GraphQueryRequest struct {
	Genes  []string   `json:"genes"`
	Edges  []EdgeJSON `json:"edges"`
	Params ParamsJSON `json:"params"`
}

// ParamsJSON mirrors core.Params for the wire.
type ParamsJSON struct {
	Gamma    float64 `json:"gamma"`
	Alpha    float64 `json:"alpha"`
	Samples  int     `json:"samples,omitempty"`
	Seed     uint64  `json:"seed,omitempty"`
	Analytic bool    `json:"analytic,omitempty"`
	OneSided bool    `json:"oneSided,omitempty"`
	TopK     int     `json:"topK,omitempty"`
	// Workers overrides the server's intra-query parallelism for this
	// request (0 = use the server default).
	Workers int `json:"workers,omitempty"`
}

// EdgeJSON is one probabilistic edge of a pattern or answer.
type EdgeJSON struct {
	S    int     `json:"s"`
	T    int     `json:"t"`
	Prob float64 `json:"prob"`
}

// AnswerJSON is one IM-GRN match.
type AnswerJSON struct {
	Source int        `json:"source"`
	Prob   float64    `json:"prob"`
	Genes  []string   `json:"genes"`
	Edges  []EdgeJSON `json:"edges"`
}

// QueryResponse is the /query and /query-graph reply.
type QueryResponse struct {
	Answers []AnswerJSON `json:"answers"`
	Stats   QueryStats   `json:"stats"`
}

// QueryStats carries the Section-6 cost metrics. IOCost is the page-access
// count of this request alone: accounting is per query, so concurrent
// requests never pollute each other's counters.
type QueryStats struct {
	QueryVertices  int     `json:"queryVertices"`
	QueryEdges     int     `json:"queryEdges"`
	CandidateGenes int     `json:"candidateGenes"`
	IOCost         uint64  `json:"ioPages"`
	CacheHits      int     `json:"cacheHits"`
	CacheMisses    int     `json:"cacheMisses"`
	TotalSeconds   float64 `json:"totalSeconds"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	ids, err := s.resolveGenes(req.Genes)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Columns) != len(ids) {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("%d gene names for %d columns", len(ids), len(req.Columns)))
		return
	}
	mq, err := gene.NewMatrix(-1, ids, req.Columns)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	proc, err := s.processor(req.Params)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	release, ok := s.acquire(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.queryContext(r)
	defer cancel()
	answers, st, err := proc.QueryContext(ctx, mq)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.response(answers, st, req.Params.TopK))
}

func (s *Server) handleQueryGraph(w http.ResponseWriter, r *http.Request) {
	var req GraphQueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	ids, err := s.resolveGenes(req.Genes)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	q := grn.NewGraph(ids)
	for _, e := range req.Edges {
		if e.S < 0 || e.S >= len(ids) || e.T < 0 || e.T >= len(ids) || e.S == e.T {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("bad edge (%d,%d)", e.S, e.T))
			return
		}
		q.SetEdge(e.S, e.T, e.Prob)
	}
	proc, err := s.processor(req.Params)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	release, ok := s.acquire(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.queryContext(r)
	defer cancel()
	answers, st, err := proc.QueryGraphContext(ctx, q)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, s.response(answers, st, req.Params.TopK))
}

// ClusterRequest is the /cluster payload: group the indexed data sources
// by regulatory-structure similarity (the Example-2 workflow).
type ClusterRequest struct {
	// K is the number of clusters (required, 1..N).
	K int `json:"k"`
	// Gamma is the edge threshold of the structure distance (0.9 when 0).
	Gamma float64 `json:"gamma,omitempty"`
	// Restarts of the k-medoids search (4 when 0).
	Restarts int `json:"restarts,omitempty"`
	// Seed of the medoid initialization.
	Seed uint64 `json:"seed,omitempty"`
}

// ClusterResponse reports the clustering.
type ClusterResponse struct {
	Clusters []ClusterJSON `json:"clusters"`
}

// ClusterJSON is one cluster: its medoid source and member sources.
type ClusterJSON struct {
	Medoid  int   `json:"medoidSource"`
	Members []int `json:"memberSources"`
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	var req ClusterRequest
	if !s.decode(w, r, &req) {
		return
	}
	db := s.idx.DB()
	if req.K < 1 || req.K > db.Len() {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("k=%d out of range [1,%d]", req.K, db.Len()))
		return
	}
	restarts := req.Restarts
	if restarts <= 0 {
		restarts = 4
	}
	release, ok := s.acquire(w)
	if !ok {
		return
	}
	defer release()
	dm, err := cluster.DistanceMatrix(db, cluster.Options{Gamma: req.Gamma})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	res, err := cluster.KMedoids(dm, req.K, restarts, randgen.New(req.Seed^0x5bd1e995))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := ClusterResponse{Clusters: make([]ClusterJSON, res.K())}
	for c := range resp.Clusters {
		resp.Clusters[c].Medoid = db.Matrix(res.Medoids[c]).Source
		resp.Clusters[c].Members = []int{}
	}
	for i, c := range res.Assign {
		resp.Clusters[c].Members = append(resp.Clusters[c].Members, db.Matrix(i).Source)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return false
	}
	return true
}

func (s *Server) processor(p ParamsJSON) (*core.Processor, error) {
	workers := p.Workers
	if workers <= 0 {
		workers = s.Workers
	}
	return core.NewProcessor(s.idx, core.Params{
		Gamma: p.Gamma, Alpha: p.Alpha, Samples: p.Samples,
		Seed: p.Seed, Analytic: p.Analytic, OneSided: p.OneSided,
		Workers: workers, Cache: s.cacheFor(p),
	})
}

// resolveGenes maps request gene names to IDs via the catalog, falling
// back to numeric parsing.
func (s *Server) resolveGenes(names []string) ([]gene.ID, error) {
	ids := make([]gene.ID, len(names))
	for i, name := range names {
		if s.cat != nil {
			if id, ok := s.cat.Lookup(name); ok {
				ids[i] = id
				continue
			}
		}
		var numeric int64
		if _, err := fmt.Sscanf(name, "%d", &numeric); err != nil {
			return nil, fmt.Errorf("unknown gene %q", name)
		}
		ids[i] = gene.ID(numeric)
	}
	return ids, nil
}

func (s *Server) geneName(id gene.ID) string {
	if s.cat != nil {
		return s.cat.Name(id)
	}
	return fmt.Sprintf("%d", int(id))
}

func (s *Server) response(answers []core.Answer, st core.Stats, topK int) QueryResponse {
	if topK > 0 && len(answers) > topK {
		// Answers arrive sorted by source; rank by probability for top-k.
		sortByProb(answers)
		answers = answers[:topK]
	}
	out := QueryResponse{
		Answers: make([]AnswerJSON, 0, len(answers)),
		Stats: QueryStats{
			QueryVertices:  st.QueryVertices,
			QueryEdges:     st.QueryEdges,
			CandidateGenes: st.CandidateGenes,
			IOCost:         st.IOCost,
			CacheHits:      st.CacheHits,
			CacheMisses:    st.CacheMisses,
			TotalSeconds:   st.Total.Seconds(),
		},
	}
	for _, a := range answers {
		aj := AnswerJSON{Source: a.Source, Prob: a.Prob}
		for _, g := range a.Genes {
			aj.Genes = append(aj.Genes, s.geneName(g))
		}
		for _, e := range a.Edges {
			aj.Edges = append(aj.Edges, EdgeJSON{S: e.S, T: e.T, Prob: e.P})
		}
		out.Answers = append(out.Answers, aj)
	}
	return out
}

func sortByProb(answers []core.Answer) {
	for i := 1; i < len(answers); i++ {
		for j := i; j > 0 && answers[j].Prob > answers[j-1].Prob; j-- {
			answers[j], answers[j-1] = answers[j-1], answers[j]
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
