// Package server exposes an IM-GRN query engine over HTTP with a JSON
// API — the prototype-system interface sketched in the paper's
// conclusion: clients submit gene feature samples or a hand-drawn query
// GRN plus ad-hoc thresholds, and receive the matching data sources with
// confidences and cost statistics.
//
// Requests are served concurrently: every query builds its own processor
// with a per-query execution context (private page-access accounting, see
// internal/exec), so no handler serializes behind another. QueryTimeout
// bounds each query's wall-clock time through context cancellation, and
// MaxConcurrent sheds load with 503 when too many queries are in flight.
//
// The server is fully observable: every query runs under an obs.Tracer,
// its per-stage spans and Stats feed the Metrics registry exposed at
// /metrics in the Prometheus text format (latency and per-stage duration
// histograms, pruning-power counters, cache and page-I/O accounting,
// in-flight/shed gauges — see the DESIGN.md metric catalog), queries
// slower than SlowQueryThreshold are logged with their stage breakdown,
// and runtime profiling is available under /debug/pprof/ when
// EnablePprof is set. Requests may opt into a per-request trace summary
// in the JSON response with "trace": true in their params.
//
// The server runs over a shard.Coordinator: one shard wrapping a single
// index in the default deployment (New), or P independent index shards
// queried scatter-gather (NewSharded). Sharded servers surface per-shard
// counters in /stats (the "shards" array) and /metrics (the imgrn_shard_*
// gauge families, refreshed on scrape). Mutations — POST /add-matrix and
// /remove-matrix — route to the shard their source is placed on and
// invalidate only that source's cached edge probabilities.
//
// Endpoints:
//
//	GET  /healthz        liveness probe
//	GET  /stats          database, index and per-shard statistics
//	GET  /metrics        Prometheus text exposition of the Metrics registry
//	GET  /debug/pprof/   net/http/pprof handlers (404 unless EnablePprof)
//	POST /query          IM-GRN query from a feature matrix
//	POST /query-graph    IM-GRN query from an explicit probabilistic pattern
//	POST /query-batch    many queries in one engine batch, streamed as NDJSON
//	POST /cluster        cluster the data sources by regulatory structure
//	POST /add-matrix     index a new data source online
//	POST /remove-matrix  drop a data source
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"github.com/imgrn/imgrn/internal/cluster"
	"github.com/imgrn/imgrn/internal/core"
	"github.com/imgrn/imgrn/internal/gene"
	"github.com/imgrn/imgrn/internal/grn"
	"github.com/imgrn/imgrn/internal/index"
	"github.com/imgrn/imgrn/internal/obs"
	"github.com/imgrn/imgrn/internal/plan"
	"github.com/imgrn/imgrn/internal/randgen"
	"github.com/imgrn/imgrn/internal/shard"
)

// Engine is the query/mutation surface the HTTP handlers run over. Three
// implementations serve it: the in-process shard.Coordinator (New,
// NewSharded, NewDurable), the same coordinator under a durable store,
// and the remote cluster.Coordinator (NewCluster) that scatter-gathers
// to networked shard servers — the handlers cannot tell them apart,
// which is the deployment-transparency seam of DESIGN.md §15.
type Engine interface {
	QueryContext(ctx context.Context, mq *gene.Matrix, params core.Params) ([]core.Answer, core.Stats, error)
	QueryGraphContext(ctx context.Context, q *grn.Graph, params core.Params) ([]core.Answer, core.Stats, error)
	QueryTopKContext(ctx context.Context, mq *gene.Matrix, params core.Params, k int) ([]core.Answer, core.Stats, error)
	QueryBatch(ctx context.Context, items []core.BatchItem, opts core.BatchOptions) ([]core.BatchResult, core.BatchStats)
	AddMatrix(m *gene.Matrix) error
	RemoveMatrix(source int) error
	// NumShards is the GLOBAL shard count; Placement the global shard a
	// source is (or would be) placed on; Matrices the indexed source
	// count (cluster engines count each shard once, not per replica).
	NumShards() int
	Placement(source int) (int, bool)
	Matrices() int
}

// Server handles IM-GRN HTTP requests over an Engine: an in-process
// shard coordinator (a single shard for New, P shards for NewSharded, a
// durable store for NewDurable) or a remote cluster coordinator
// (NewCluster). Handlers are safe for concurrent use; queries do not
// serialize against each other because each runs on its own execution
// context, and a mutation locks only the shard its source is placed on.
type Server struct {
	eng Engine
	// coord is the in-process coordinator behind eng, nil on
	// coordinator-mode servers (NewCluster); the handlers that need
	// engine INTERNALS — index build stats, the raw database, per-shard
	// snapshots — guard on it.
	coord *shard.Coordinator
	// store, when non-nil (NewDurable), wraps coord with the durable
	// lifecycle: mutations route through it so they are write-ahead
	// logged and fsynced before the response is sent.
	store *shard.Store
	// remote is the cluster coordinator behind eng on NewCluster servers.
	remote *cluster.Coordinator
	// role marks a shard-role server (NewShardServer): the /cluster/*
	// execution endpoints are mounted and floors tracks live top-k sinks.
	role   *ShardRole
	floors floorRegistry
	cat    *gene.Catalog
	mux    *http.ServeMux

	// MaxBodyBytes bounds request bodies (default 32 MiB).
	MaxBodyBytes int64

	// QueryTimeout bounds the wall-clock time of one query or clustering
	// request (default 30s; <= 0 disables the bound). A request past its
	// deadline is abandoned at the next traversal/refinement loop boundary
	// and answered with 503.
	QueryTimeout time.Duration

	// MaxConcurrent bounds the number of in-flight query/cluster requests
	// (default 0 = unbounded). Excess requests are rejected immediately
	// with 503 rather than queued.
	MaxConcurrent int

	// MaxBatchItems bounds the number of queries one /query-batch request
	// may carry (default 256 when 0). Oversized batches are answered with
	// 400 before any work runs.
	MaxBatchItems int

	// Workers is the intra-query parallelism passed to every query's
	// params (see core.Params.Workers). 0 preserves the exact sequential
	// per-query algorithm.
	Workers int

	// Planner, when non-nil, plans every query adaptively: each request's
	// plan is built by the cost-model Planner (fed the coordinator's cache
	// density and §4 pivot-cost figures) and installed on the params
	// before the query runs, and every finished query's stage statistics
	// are folded back into the model. Nil (the default) keeps the fixed
	// default plan — byte-identical to the pre-planner pipeline. Set it
	// before serving; the Planner itself is safe for concurrent use.
	Planner *plan.Planner

	// Metrics is the registry served at /metrics. New installs a fresh
	// registry with the full imgrn_* metric catalog (see DESIGN.md).
	Metrics *obs.Registry

	// EnablePprof exposes the net/http/pprof handlers under
	// /debug/pprof/; the routes answer 404 while it is false. Set it
	// before serving.
	EnablePprof bool

	// SlowQueryThreshold logs queries whose total wall-clock time meets
	// or exceeds it to SlowQueryLog, with their per-stage breakdown
	// (0 disables the slow-query log).
	SlowQueryThreshold time.Duration

	// SlowQueryLog receives slow-query lines (log.Default() when nil).
	SlowQueryLog *log.Logger

	met serverMetrics

	semOnce sync.Once
	sem     chan struct{}
}

// serverMetrics bundles the registry instruments the handlers record
// into; initMetrics registers them all eagerly so every family appears
// in /metrics from the first scrape, before any query has run.
type serverMetrics struct {
	requests     obs.CounterVec // by endpoint
	errors       obs.CounterVec // by HTTP status code
	latency      *obs.Histogram
	stage        obs.HistogramVec // by pipeline stage
	candFiltered *obs.Counter
	candRefined  *obs.Counter
	cacheHits    *obs.Counter
	cacheMisses  *obs.Counter
	pageAccesses *obs.Counter
	bufferHits   *obs.Counter
	readerPages  *obs.Gauge
	inFlight     *obs.Gauge
	shed         *obs.Counter
	slow         *obs.Counter
	mutations    obs.CounterVec // by op (add, remove)

	// Batch family: /query-batch request/item accounting plus the
	// batch-engine sharing counters (γ-group traversals run, permutation
	// pool fills and probes; see DESIGN.md §14).
	batchRequests   *obs.Counter
	batchQueries    *obs.Counter
	batchSize       *obs.Histogram
	batchItemErrs   *obs.Counter
	batchGroups     *obs.Counter
	batchPermFills  *obs.Counter
	batchPermProbes *obs.Counter

	// Plan decision family: per-query plan modes and stage-skip decisions,
	// the chosen sample count, and the planner's modeled per-candidate
	// stage costs (realized EWMA, in nanoseconds — the registry gauges are
	// integer-valued).
	planQueries   obs.CounterVec // by mode (fixed, adaptive)
	planSkips     obs.CounterVec // by skipped stage
	planSamples   *obs.Gauge
	planStageCost obs.GaugeVec // by stage (markov_prune, monte_carlo)

	// Per-shard gauge families, one series per shard, refreshed from the
	// coordinator snapshot on every /metrics scrape.
	shardSources     obs.GaugeVec
	shardQueries     obs.GaugeVec
	shardMutations   obs.GaugeVec
	shardIOPages     obs.GaugeVec
	shardIOHits      obs.GaugeVec
	shardCacheSize   obs.GaugeVec
	shardCacheHits   obs.GaugeVec
	shardCacheMisses obs.GaugeVec

	// durable is populated (initDurable) only on NewDurable servers: the
	// imgrn_wal_* / imgrn_snapshot_* families, refreshed per scrape.
	durable durableMetrics
}

func (m *serverMetrics) init(r *obs.Registry) {
	m.requests = r.CounterVec("imgrn_requests_total",
		"Requests served, by endpoint.", "endpoint")
	m.errors = r.CounterVec("imgrn_request_errors_total",
		"Error responses, by HTTP status code.", "code")
	m.latency = r.Histogram("imgrn_query_seconds",
		"End-to-end query latency in seconds.", nil)
	m.stage = r.HistogramVec("imgrn_stage_seconds",
		"Per-stage query pipeline durations in seconds (markov_prune and monte_carlo are aggregate CPU time across candidates).",
		"stage", nil)
	m.candFiltered = r.Counter("imgrn_candidates_filtered_total",
		"Candidates removed by the pruning layers (node pairs, point pairs, Lemma-5 matrices).")
	m.candRefined = r.Counter("imgrn_candidates_refined_total",
		"Candidate matrices that reached exact Monte Carlo verification.")
	m.cacheHits = r.Counter("imgrn_edgeprob_cache_hits_total",
		"Edge-probability cache hits during refinement.")
	m.cacheMisses = r.Counter("imgrn_edgeprob_cache_misses_total",
		"Edge-probability cache misses during refinement.")
	m.pageAccesses = r.Counter("imgrn_reader_page_accesses_total",
		"Simulated disk page accesses charged to per-query readers.")
	m.bufferHits = r.Counter("imgrn_reader_buffer_hits_total",
		"Page touches absorbed by per-query buffer pools.")
	m.readerPages = r.Gauge("imgrn_reader_pages",
		"Page accesses of the most recently completed query.")
	m.inFlight = r.Gauge("imgrn_requests_in_flight",
		"Query/cluster requests currently executing.")
	m.shed = r.Counter("imgrn_requests_shed_total",
		"Requests rejected with 503 because the server was at MaxConcurrent.")
	m.slow = r.Counter("imgrn_slow_queries_total",
		"Queries that exceeded SlowQueryThreshold.")
	m.mutations = r.CounterVec("imgrn_mutations_total",
		"Database mutations served, by operation (add, remove).", "op")
	m.batchRequests = r.Counter("imgrn_batch_requests_total",
		"Batch requests served by /query-batch (each may carry many queries).")
	m.batchQueries = r.Counter("imgrn_batch_queries_total",
		"Queries carried by /query-batch requests.")
	m.batchSize = r.Histogram("imgrn_batch_size",
		"Queries per /query-batch request.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	m.batchItemErrs = r.Counter("imgrn_batch_item_errors_total",
		"Batch items answered with an error frame (the batch itself succeeded).")
	m.batchGroups = r.Counter("imgrn_batch_groups_total",
		"Shared γ-group index traversals run by the batch engine.")
	m.batchPermFills = r.Counter("imgrn_batch_perm_fills_total",
		"Permutation-batch fills in shared-permutation mode (misses).")
	m.batchPermProbes = r.Counter("imgrn_batch_perm_probes_total",
		"Edge probabilities served from the shared permutation pool.")
	m.planQueries = r.CounterVec("imgrn_plan_queries_total",
		"Queries served, by plan mode (fixed = the default pipeline, adaptive = at least one cost-model decision departed from it).", "mode")
	m.planSkips = r.CounterVec("imgrn_plan_skips_total",
		"Plan decisions that skipped a pipeline stage, by stage.", "stage")
	m.planSamples = r.Gauge("imgrn_plan_samples",
		"Monte Carlo sample count R chosen by the most recent query's plan.")
	m.planStageCost = r.GaugeVec("imgrn_plan_stage_cost_nanos",
		"Planner cost model: modeled per-candidate stage cost in nanoseconds (EWMA of realized costs).", "stage")
	m.shardSources = r.GaugeVec("imgrn_shard_sources",
		"Data sources placed on each shard.", "shard")
	m.shardQueries = r.GaugeVec("imgrn_shard_queries",
		"Queries served by each shard since start.", "shard")
	m.shardMutations = r.GaugeVec("imgrn_shard_mutations",
		"Mutations routed to each shard since start.", "shard")
	m.shardIOPages = r.GaugeVec("imgrn_shard_io_pages",
		"Simulated page accesses charged against each shard's index.", "shard")
	m.shardIOHits = r.GaugeVec("imgrn_shard_io_buffer_hits",
		"Page touches absorbed by per-query buffer pools, per shard.", "shard")
	m.shardCacheSize = r.GaugeVec("imgrn_shard_cache_entries",
		"Memoized edge probabilities held by each shard's caches.", "shard")
	m.shardCacheHits = r.GaugeVec("imgrn_shard_cache_hits",
		"Edge-probability cache hits on each shard since start.", "shard")
	m.shardCacheMisses = r.GaugeVec("imgrn_shard_cache_misses",
		"Edge-probability cache misses on each shard since start.", "shard")
	// Pre-create the per-stage series so the family is complete (all
	// zero) on the first scrape.
	for _, name := range obs.StageNames() {
		m.stage.With(name)
	}
	for _, ep := range []string{"query", "query-graph", "query-batch", "cluster", "add-matrix", "remove-matrix"} {
		m.requests.With(ep)
	}
	for _, op := range []string{"add", "remove"} {
		m.mutations.With(op)
	}
	for _, mode := range []string{"fixed", "adaptive"} {
		m.planQueries.With(mode)
	}
	for _, stage := range []string{"pivot_prune", "signature", "markov_prune", "batch_kernel"} {
		m.planSkips.With(stage)
	}
	for _, stage := range []string{"markov_prune", "monte_carlo"} {
		m.planStageCost.With(stage)
	}
}

// observeShards refreshes the per-shard gauge families from a coordinator
// snapshot; called on every /metrics scrape so the series track the
// coordinator's lifetime counters.
func (m *serverMetrics) observeShards(infos []shard.ShardInfo) {
	for _, info := range infos {
		label := strconv.Itoa(info.Shard)
		m.shardSources.With(label).Set(int64(info.Sources))
		m.shardQueries.With(label).Set(int64(info.Queries))
		m.shardMutations.With(label).Set(int64(info.Mutations))
		m.shardIOPages.With(label).Set(int64(info.IOCost))
		m.shardIOHits.With(label).Set(int64(info.IOHits))
		m.shardCacheSize.With(label).Set(int64(info.CacheEntries))
		m.shardCacheHits.With(label).Set(int64(info.CacheHits))
		m.shardCacheMisses.With(label).Set(int64(info.CacheMisses))
	}
}

// New returns a server over idx, wrapped as a single-shard coordinator.
// cat translates gene names in requests; a nil catalog restricts requests
// to numeric gene IDs.
func New(idx *index.Index, cat *gene.Catalog) *Server {
	return NewSharded(shard.FromIndex(idx), cat)
}

// NewSharded returns a server over an already-built shard coordinator;
// queries run scatter-gather across its shards and /stats and /metrics
// carry per-shard counters.
func NewSharded(coord *shard.Coordinator, cat *gene.Catalog) *Server {
	s := newBase(cat)
	s.eng, s.coord = coord, coord
	return s
}

// newBase builds the engine-agnostic server shell: config defaults, the
// metrics registry with the full catalog, and the public routes. The
// caller wires the engine (and any role-specific routes) afterwards.
func newBase(cat *gene.Catalog) *Server {
	s := &Server{cat: cat, MaxBodyBytes: 32 << 20, QueryTimeout: 30 * time.Second}
	s.Metrics = obs.NewRegistry()
	s.met.init(s.Metrics)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/query-graph", s.handleQueryGraph)
	mux.HandleFunc("/query-batch", s.handleQueryBatch)
	mux.HandleFunc("/cluster", s.handleCluster)
	mux.HandleFunc("/add-matrix", s.handleAddMatrix)
	mux.HandleFunc("/remove-matrix", s.handleRemoveMatrix)
	mux.HandleFunc("/debug/pprof/", s.gatePprof(pprof.Index))
	mux.HandleFunc("/debug/pprof/cmdline", s.gatePprof(pprof.Cmdline))
	mux.HandleFunc("/debug/pprof/profile", s.gatePprof(pprof.Profile))
	mux.HandleFunc("/debug/pprof/symbol", s.gatePprof(pprof.Symbol))
	mux.HandleFunc("/debug/pprof/trace", s.gatePprof(pprof.Trace))
	s.mux = mux
	return s
}

// gatePprof wraps a net/http/pprof handler so profiling is only
// reachable when EnablePprof is set.
func (s *Server) gatePprof(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !s.EnablePprof {
			http.NotFound(w, r)
			return
		}
		h(w, r)
	}
}

// handleMetrics serves the registry in the Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.error(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if s.coord != nil {
		s.met.observeShards(s.coord.Snapshot())
	}
	if s.remote != nil {
		// Keep the membership gauges fresh even between health-probe
		// ticks: a scrape is a natural staleness bound.
		s.remote.RefreshHealth(r.Context())
	}
	if s.store != nil {
		s.met.observeDurable(s.store.DurableStats())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.Metrics.WritePrometheus(w)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// acquire claims an execution slot, reporting false (and answering 503)
// when the server is at MaxConcurrent in-flight requests. The returned
// release func must be called when the request finishes. The in-flight
// gauge tracks held slots; shed requests increment the shed counter.
func (s *Server) acquire(w http.ResponseWriter) (release func(), ok bool) {
	s.semOnce.Do(func() {
		if s.MaxConcurrent > 0 {
			s.sem = make(chan struct{}, s.MaxConcurrent)
		}
	})
	if s.sem == nil {
		s.met.inFlight.Inc()
		return func() { s.met.inFlight.Dec() }, true
	}
	select {
	case s.sem <- struct{}{}:
		s.met.inFlight.Inc()
		return func() { s.met.inFlight.Dec(); <-s.sem }, true
	default:
		s.met.shed.Inc()
		s.error(w, http.StatusServiceUnavailable, "server at capacity")
		return nil, false
	}
}

// queryContext derives the per-request context: the client's (cancelled
// when the connection drops) bounded by QueryTimeout.
func (s *Server) queryContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.QueryTimeout > 0 {
		return context.WithTimeout(r.Context(), s.QueryTimeout)
	}
	return context.WithCancel(r.Context())
}

// queryError maps a query error to an HTTP status: deadline and
// cancellation become 503 (the query was shed, not wrong), everything
// else 500.
func (s *Server) queryError(w http.ResponseWriter, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.error(w, http.StatusServiceUnavailable, "query timed out")
		return
	}
	if errors.Is(err, context.Canceled) {
		s.error(w, http.StatusServiceUnavailable, "query cancelled")
		return
	}
	s.error(w, http.StatusInternalServerError, err.Error())
}

// error answers with a JSON error body and counts it in the error
// metric, labeled by status code.
func (s *Server) error(w http.ResponseWriter, status int, msg string) {
	s.met.errors.With(strconv.Itoa(status)).Inc()
	writeError(w, status, msg)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// StatsResponse summarizes the database and index. Index figures
// (vectors, nodes, pages) aggregate across shards; Shards carries one
// entry per shard with its partition size and lifetime counters.
type StatsResponse struct {
	Matrices      int              `json:"matrices"`
	Vectors       int              `json:"vectors"`
	DistinctGenes int              `json:"distinctGenes"`
	TreeNodes     int              `json:"treeNodes"`
	TreeHeight    int              `json:"treeHeight"`
	Pages         uint64           `json:"pages"`
	Pivots        int              `json:"pivotsPerMatrix"`
	NumShards     int              `json:"numShards"`
	Shards        []ShardStatsJSON `json:"shards"`
	// Durability is present only on durable servers (NewDurable): boot
	// provenance plus WAL and checkpoint counters.
	Durability *DurabilityStatsJSON `json:"durability,omitempty"`
}

// ShardStatsJSON is one shard's /stats entry: partition size, operation
// counts, and lifetime I/O and cache counters.
type ShardStatsJSON struct {
	Shard        int    `json:"shard"`
	Sources      int    `json:"sources"`
	Vectors      int    `json:"vectors"`
	Queries      uint64 `json:"queries"`
	Mutations    uint64 `json:"mutations"`
	IOPages      uint64 `json:"ioPages"`
	IOBufferHits uint64 `json:"ioBufferHits"`
	CacheEntries int    `json:"cacheEntries"`
	CacheHits    uint64 `json:"cacheHits"`
	CacheMisses  uint64 `json:"cacheMisses"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.error(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if s.coord == nil {
		s.clusterStats(w, r)
		return
	}
	sum := s.coord.Database().Summary()
	bs := s.coord.IndexStats()
	infos := s.coord.Snapshot()
	shards := make([]ShardStatsJSON, len(infos))
	for i, info := range infos {
		shards[i] = ShardStatsJSON{
			Shard:        info.Shard,
			Sources:      info.Sources,
			Vectors:      info.Vectors,
			Queries:      info.Queries,
			Mutations:    info.Mutations,
			IOPages:      info.IOCost,
			IOBufferHits: info.IOHits,
			CacheEntries: info.CacheEntries,
			CacheHits:    info.CacheHits,
			CacheMisses:  info.CacheMisses,
		}
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Matrices:      sum.Matrices,
		Vectors:       bs.Vectors,
		DistinctGenes: sum.DistinctGenes,
		TreeNodes:     bs.TreeNodes,
		TreeHeight:    bs.TreeHeight,
		Pages:         bs.Pages,
		Pivots:        s.coord.D(),
		NumShards:     s.coord.NumShards(),
		Shards:        shards,
		Durability:    s.durabilityStats(),
	})
}

// QueryRequest is the /query payload: a feature matrix (one column per
// gene) plus the ad-hoc thresholds of Definition 4.
type QueryRequest struct {
	// Genes labels the columns, by name (resolved through the catalog) or
	// numeric ID when the name parses as an integer.
	Genes []string `json:"genes"`
	// Columns[i] is the feature vector of Genes[i]; all must share length.
	Columns [][]float64 `json:"columns"`
	Params  ParamsJSON  `json:"params"`
}

// GraphQueryRequest is the /query-graph payload: an explicit probabilistic
// pattern.
type GraphQueryRequest struct {
	Genes  []string   `json:"genes"`
	Edges  []EdgeJSON `json:"edges"`
	Params ParamsJSON `json:"params"`
}

// ParamsJSON mirrors core.Params for the wire.
type ParamsJSON struct {
	Gamma   float64 `json:"gamma"`
	Alpha   float64 `json:"alpha"`
	Samples int     `json:"samples,omitempty"`
	// Eps and Delta request a per-query (ε, δ)-approximation: the plan
	// then uses R = SampleSize(eps, delta) Monte Carlo samples (Lemma 2)
	// instead of the fixed samples value. Values outside ε > 0,
	// 0 < δ < 1 are answered with 400.
	Eps      float64 `json:"eps,omitempty"`
	Delta    float64 `json:"delta,omitempty"`
	Seed     uint64  `json:"seed,omitempty"`
	Analytic bool    `json:"analytic,omitempty"`
	OneSided bool    `json:"oneSided,omitempty"`
	TopK     int     `json:"topK,omitempty"`
	// Workers overrides the server's intra-query parallelism for this
	// request (0 = use the server default).
	Workers int `json:"workers,omitempty"`
	// Trace requests a per-stage trace summary in the response (the
	// "trace" array; see SpanJSON). Queries are traced server-side for
	// metrics either way; this only controls the response payload.
	Trace bool `json:"trace,omitempty"`
}

// EdgeJSON is one probabilistic edge of a pattern or answer.
type EdgeJSON struct {
	S    int     `json:"s"`
	T    int     `json:"t"`
	Prob float64 `json:"prob"`
}

// AnswerJSON is one IM-GRN match.
type AnswerJSON struct {
	Source int        `json:"source"`
	Prob   float64    `json:"prob"`
	Genes  []string   `json:"genes"`
	Edges  []EdgeJSON `json:"edges"`
}

// QueryResponse is the /query and /query-graph reply. Trace is present
// only when the request set params.trace.
type QueryResponse struct {
	Answers []AnswerJSON `json:"answers"`
	Stats   QueryStats   `json:"stats"`
	Trace   []SpanJSON   `json:"trace,omitempty"`
}

// QueryStats carries the full core.Stats cost metrics of one request on
// the wire. Field names are the documented wire format (DESIGN.md
// "Observability" § wire stats): every core.Stats field appears under
// its lowerCamelCase name, durations as *Seconds floats, with the one
// historical exception that IOCost is named ioPages (it counts simulated
// page accesses). Accounting is per query: concurrent requests never
// pollute each other's counters.
type QueryStats struct {
	QueryVertices     int     `json:"queryVertices"`
	QueryEdges        int     `json:"queryEdges"`
	NodePairsVisited  int     `json:"nodePairsVisited"`
	NodePairsPruned   int     `json:"nodePairsPruned"`
	PointPairsChecked int     `json:"pointPairsChecked"`
	PointPairsPruned  int     `json:"pointPairsPruned"`
	CandidateGenes    int     `json:"candidateGenes"`
	CandidateMatrices int     `json:"candidateMatrices"`
	MatricesPrunedL5  int     `json:"matricesPrunedL5"`
	Answers           int     `json:"answers"`
	IOCost            uint64  `json:"ioPages"`
	IOHits            uint64  `json:"ioBufferHits"`
	CacheHits         int     `json:"cacheHits"`
	CacheMisses       int     `json:"cacheMisses"`
	InferSeconds      float64 `json:"inferSeconds"`
	TraversalSeconds  float64 `json:"traversalSeconds"`
	RefinementSeconds float64 `json:"refinementSeconds"`
	MarkovSeconds     float64 `json:"markovPruneSeconds"`
	MonteCarloSeconds float64 `json:"monteCarloSeconds"`
	TotalSeconds      float64 `json:"totalSeconds"`
	// Plan reports the execution plan the query ran under (present on
	// every query; adaptive plans additionally carry the skipped stages
	// and the cost-model snapshot behind the decisions).
	Plan *PlanJSON `json:"plan,omitempty"`
}

// PlanJSON is the wire form of one query's execution plan.
type PlanJSON struct {
	// Mode is "fixed" (the default pipeline) or "adaptive" (at least one
	// cost-model decision departed from it).
	Mode string `json:"mode"`
	// Samples is the Monte Carlo sample count R the estimators used.
	Samples int `json:"samples"`
	// FromAccuracy, Eps, Delta report that (and which) requested
	// (ε, δ)-approximation chose Samples via the Lemma-2 bound.
	FromAccuracy bool    `json:"fromAccuracy,omitempty"`
	Eps          float64 `json:"eps,omitempty"`
	Delta        float64 `json:"delta,omitempty"`
	// Stage switches: false means the plan skipped the stage.
	PivotPruning  bool `json:"pivotPruning"`
	Signatures    bool `json:"signatures"`
	MarkovPruning bool `json:"markovPruning"`
	BatchKernel   bool `json:"batchKernel"`
	// Skipped lists the adaptive departures by stage name; Cost is the
	// planner's cost-model snapshot at plan time (both absent on fixed
	// plans).
	Skipped []string        `json:"skipped,omitempty"`
	Cost    *plan.CostModel `json:"cost,omitempty"`
}

// planJSON maps a resolved plan onto the wire (nil in, nil out).
func planJSON(pl *plan.Plan) *PlanJSON {
	if pl == nil {
		return nil
	}
	out := &PlanJSON{
		Mode:          pl.Mode(),
		Samples:       pl.EffectiveSamples(),
		FromAccuracy:  pl.FromAccuracy,
		Eps:           pl.Eps,
		Delta:         pl.Delta,
		PivotPruning:  pl.Pivot,
		Signatures:    pl.Signatures,
		MarkovPruning: pl.Markov,
		BatchKernel:   pl.Batch,
		Skipped:       pl.Skipped,
	}
	if pl.Adaptive {
		cost := pl.Cost
		out.Cost = &cost
	}
	return out
}

// statsJSON maps core.Stats onto the wire format.
func statsJSON(st core.Stats) QueryStats {
	return QueryStats{
		QueryVertices:     st.QueryVertices,
		QueryEdges:        st.QueryEdges,
		NodePairsVisited:  st.NodePairsVisited,
		NodePairsPruned:   st.NodePairsPruned,
		PointPairsChecked: st.PointPairsChecked,
		PointPairsPruned:  st.PointPairsPruned,
		CandidateGenes:    st.CandidateGenes,
		CandidateMatrices: st.CandidateMatrices,
		MatricesPrunedL5:  st.MatricesPrunedL5,
		Answers:           st.Answers,
		IOCost:            st.IOCost,
		IOHits:            st.IOHits,
		CacheHits:         st.CacheHits,
		CacheMisses:       st.CacheMisses,
		InferSeconds:      st.InferQuery.Seconds(),
		TraversalSeconds:  st.Traversal.Seconds(),
		RefinementSeconds: st.Refinement.Seconds(),
		MarkovSeconds:     st.MarkovPrune.Seconds(),
		MonteCarloSeconds: st.MonteCarlo.Seconds(),
		TotalSeconds:      st.Total.Seconds(),
		Plan:              planJSON(st.Plan),
	}
}

// SpanJSON is one pipeline-stage span of a traced request.
type SpanJSON struct {
	Stage        string  `json:"stage"`
	BeginSeconds float64 `json:"beginSeconds"`
	DurSeconds   float64 `json:"durSeconds"`
	In           int     `json:"in"`
	Out          int     `json:"out"`
}

func spansJSON(tr *obs.Tracer) []SpanJSON {
	spans := tr.Spans()
	if len(spans) == 0 {
		return nil
	}
	out := make([]SpanJSON, len(spans))
	for i, sp := range spans {
		out[i] = SpanJSON{
			Stage:        sp.Stage.String(),
			BeginSeconds: sp.Begin.Seconds(),
			DurSeconds:   sp.Dur.Seconds(),
			In:           sp.In,
			Out:          sp.Out,
		}
	}
	return out
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	ids, err := s.resolveGenes(req.Genes)
	if err != nil {
		s.error(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Columns) != len(ids) {
		s.error(w, http.StatusBadRequest,
			fmt.Sprintf("%d gene names for %d columns", len(ids), len(req.Columns)))
		return
	}
	mq, err := gene.NewMatrix(-1, ids, req.Columns)
	if err != nil {
		s.error(w, http.StatusBadRequest, err.Error())
		return
	}
	tr := obs.NewTracer()
	params, err := s.params(req.Params, len(ids), tr)
	if err != nil {
		s.error(w, http.StatusBadRequest, err.Error())
		return
	}
	release, ok := s.acquire(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.queryContext(r)
	defer cancel()
	// TopK routes through the coordinator's bounded merge so sharded
	// deployments terminate refinement early on the cross-shard Markov
	// bound; the answers come back ranked and trimmed.
	var answers []core.Answer
	var st core.Stats
	if req.Params.TopK > 0 {
		answers, st, err = s.eng.QueryTopKContext(ctx, mq, params, req.Params.TopK)
	} else {
		answers, st, err = s.eng.QueryContext(ctx, mq, params)
	}
	if err != nil {
		s.queryError(w, err)
		return
	}
	s.observeQuery("query", st, tr)
	writeJSON(w, http.StatusOK, s.response(answers, st, req.Params, tr))
}

func (s *Server) handleQueryGraph(w http.ResponseWriter, r *http.Request) {
	var req GraphQueryRequest
	if !s.decode(w, r, &req) {
		return
	}
	ids, err := s.resolveGenes(req.Genes)
	if err != nil {
		s.error(w, http.StatusBadRequest, err.Error())
		return
	}
	q := grn.NewGraph(ids)
	for _, e := range req.Edges {
		if e.S < 0 || e.S >= len(ids) || e.T < 0 || e.T >= len(ids) || e.S == e.T {
			s.error(w, http.StatusBadRequest, fmt.Sprintf("bad edge (%d,%d)", e.S, e.T))
			return
		}
		q.SetEdge(e.S, e.T, e.Prob)
	}
	tr := obs.NewTracer()
	params, err := s.params(req.Params, len(ids), tr)
	if err != nil {
		s.error(w, http.StatusBadRequest, err.Error())
		return
	}
	release, ok := s.acquire(w)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := s.queryContext(r)
	defer cancel()
	answers, st, err := s.eng.QueryGraphContext(ctx, q, params)
	if err != nil {
		s.queryError(w, err)
		return
	}
	s.observeQuery("query-graph", st, tr)
	writeJSON(w, http.StatusOK, s.response(answers, st, req.Params, tr))
}

// ClusterRequest is the /cluster payload: group the indexed data sources
// by regulatory-structure similarity (the Example-2 workflow).
type ClusterRequest struct {
	// K is the number of clusters (required, 1..N).
	K int `json:"k"`
	// Gamma is the edge threshold of the structure distance (0.9 when 0).
	Gamma float64 `json:"gamma,omitempty"`
	// Restarts of the k-medoids search (4 when 0).
	Restarts int `json:"restarts,omitempty"`
	// Seed of the medoid initialization.
	Seed uint64 `json:"seed,omitempty"`
}

// ClusterResponse reports the clustering.
type ClusterResponse struct {
	Clusters []ClusterJSON `json:"clusters"`
}

// ClusterJSON is one cluster: its medoid source and member sources.
type ClusterJSON struct {
	Medoid  int   `json:"medoidSource"`
	Members []int `json:"memberSources"`
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	var req ClusterRequest
	if !s.decode(w, r, &req) {
		return
	}
	if s.coord == nil {
		// Structure clustering needs the raw matrices; the cluster
		// coordinator holds none. Run it against a shard server directly.
		s.error(w, http.StatusNotImplemented, "/cluster is not served in coordinator mode")
		return
	}
	db := s.coord.Database()
	if req.K < 1 || req.K > db.Len() {
		s.error(w, http.StatusBadRequest,
			fmt.Sprintf("k=%d out of range [1,%d]", req.K, db.Len()))
		return
	}
	restarts := req.Restarts
	if restarts <= 0 {
		restarts = 4
	}
	release, ok := s.acquire(w)
	if !ok {
		return
	}
	defer release()
	dm, err := cluster.DistanceMatrix(db, cluster.Options{Gamma: req.Gamma})
	if err != nil {
		s.error(w, http.StatusInternalServerError, err.Error())
		return
	}
	res, err := cluster.KMedoids(dm, req.K, restarts, randgen.New(req.Seed^0x5bd1e995))
	if err != nil {
		s.error(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := ClusterResponse{Clusters: make([]ClusterJSON, res.K())}
	for c := range resp.Clusters {
		resp.Clusters[c].Medoid = db.Matrix(res.Medoids[c]).Source
		resp.Clusters[c].Members = []int{}
	}
	for i, c := range res.Assign {
		resp.Clusters[c].Members = append(resp.Clusters[c].Members, db.Matrix(i).Source)
	}
	s.met.requests.With("cluster").Inc()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, into any) bool {
	if r.Method != http.MethodPost {
		s.error(w, http.StatusMethodNotAllowed, "use POST")
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		s.error(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return false
	}
	return true
}

// params maps the wire params onto core.Params, validates them, and —
// when the server has a Planner — builds the query's adaptive plan under
// a "plan" trace span (In = queries the cost model has observed, Out =
// the chosen sample count R). Errors are client errors: out-of-range
// thresholds or an invalid (ε, δ), answered with 400. The coordinator
// supplies each shard's edge-probability cache itself, keyed by
// estimator settings.
func (s *Server) params(p ParamsJSON, queryGenes int, tr *obs.Tracer) (core.Params, error) {
	workers := p.Workers
	if workers <= 0 {
		workers = s.Workers
	}
	cp := core.Params{
		Gamma: p.Gamma, Alpha: p.Alpha, Samples: p.Samples,
		Eps: p.Eps, Delta: p.Delta,
		Seed: p.Seed, Analytic: p.Analytic, OneSided: p.OneSided,
		Workers: workers, Trace: tr,
	}
	if err := cp.Validate(); err != nil {
		return cp, err
	}
	if s.Planner != nil {
		mark := tr.Start(obs.StagePlan)
		pl, err := s.Planner.Plan(s.planRequest(p, queryGenes))
		if err != nil {
			return cp, err
		}
		cp.Plan = pl
		mark.End(s.Planner.Queries(), pl.EffectiveSamples())
	}
	return cp, nil
}

// planRequest assembles the Planner's view of one query from the wire
// params and the coordinator's engine state: cached edge-probability
// density across shards, the indexed vector count, and the index's mean
// per-vector §4 pivot cost.
func (s *Server) planRequest(p ParamsJSON, queryGenes int) plan.Request {
	req := plan.Request{
		Eps: p.Eps, Delta: p.Delta, Samples: p.Samples,
		Pivot: true, Signatures: true, Markov: true, Batch: true,
		QueryGenes: queryGenes,
	}
	if s.coord == nil {
		// Coordinator mode: no local index to read cost signals from; the
		// planner falls back to its model-only decisions.
		return req
	}
	for _, info := range s.coord.Snapshot() {
		req.CacheEntries += info.CacheEntries
	}
	bs := s.coord.IndexStats()
	req.DBVectors = bs.Vectors
	if bs.Vectors > 0 {
		req.MeanPivotCost = bs.PivotCostSum / float64(bs.Vectors)
	}
	return req
}

// observeQuery feeds one finished query's statistics and trace spans
// into the metrics registry and the slow-query log.
func (s *Server) observeQuery(endpoint string, st core.Stats, tr *obs.Tracer) {
	m := &s.met
	m.requests.With(endpoint).Inc()
	m.latency.Observe(st.Total.Seconds())
	for _, sp := range tr.Spans() {
		m.stage.With(sp.Stage.String()).Observe(sp.Dur.Seconds())
	}
	m.candFiltered.Add(uint64(st.NodePairsPruned + st.PointPairsPruned + st.MatricesPrunedL5))
	if refined := st.CandidateMatrices - st.MatricesPrunedL5; refined > 0 {
		m.candRefined.Add(uint64(refined))
	}
	m.cacheHits.Add(uint64(st.CacheHits))
	m.cacheMisses.Add(uint64(st.CacheMisses))
	m.pageAccesses.Add(st.IOCost)
	m.bufferHits.Add(st.IOHits)
	m.readerPages.Set(int64(st.IOCost))
	if pl := st.Plan; pl != nil {
		m.planQueries.With(pl.Mode()).Inc()
		m.planSamples.Set(int64(pl.EffectiveSamples()))
		for _, stage := range pl.Skipped {
			m.planSkips.With(stage).Inc()
		}
	}
	if s.Planner != nil {
		// Close the cost-model loop: realized stage statistics refine the
		// EWMA estimates the next plan is decided on.
		s.Planner.Observe(st.PlanFeedback())
		snap := s.Planner.Snapshot()
		m.planStageCost.With("markov_prune").Set(int64(snap.Cost.MarkovPerCandidate * 1e9))
		m.planStageCost.With("monte_carlo").Set(int64(snap.Cost.MonteCarloPerCandidate * 1e9))
	}
	if s.SlowQueryThreshold > 0 && st.Total >= s.SlowQueryThreshold {
		m.slow.Inc()
		logger := s.SlowQueryLog
		if logger == nil {
			logger = log.Default()
		}
		logger.Printf("slow query: endpoint=%s total=%v io=%d answers=%d trace: %s",
			endpoint, st.Total.Round(time.Microsecond), st.IOCost, st.Answers, tr.Summary())
	}
}

// resolveGenes maps request gene names to IDs via the catalog, falling
// back to numeric parsing.
func (s *Server) resolveGenes(names []string) ([]gene.ID, error) {
	ids := make([]gene.ID, len(names))
	for i, name := range names {
		if s.cat != nil {
			if id, ok := s.cat.Lookup(name); ok {
				ids[i] = id
				continue
			}
		}
		var numeric int64
		if _, err := fmt.Sscanf(name, "%d", &numeric); err != nil {
			return nil, fmt.Errorf("unknown gene %q", name)
		}
		ids[i] = gene.ID(numeric)
	}
	return ids, nil
}

func (s *Server) geneName(id gene.ID) string {
	if s.cat != nil {
		return s.cat.Name(id)
	}
	return fmt.Sprintf("%d", int(id))
}

func (s *Server) response(answers []core.Answer, st core.Stats, p ParamsJSON, tr *obs.Tracer) QueryResponse {
	if p.TopK > 0 && len(answers) > p.TopK {
		// Answers arrive sorted by source; rank by probability for top-k.
		mark := tr.Start(obs.StageTopK)
		in := len(answers)
		sortByProb(answers)
		answers = answers[:p.TopK]
		mark.End(in, len(answers))
	}
	out := QueryResponse{
		Answers: make([]AnswerJSON, 0, len(answers)),
		Stats:   statsJSON(st),
	}
	if p.Trace {
		out.Trace = spansJSON(tr)
	}
	for _, a := range answers {
		aj := AnswerJSON{Source: a.Source, Prob: a.Prob}
		for _, g := range a.Genes {
			aj.Genes = append(aj.Genes, s.geneName(g))
		}
		for _, e := range a.Edges {
			aj.Edges = append(aj.Edges, EdgeJSON{S: e.S, T: e.T, Prob: e.P})
		}
		out.Answers = append(out.Answers, aj)
	}
	return out
}

func sortByProb(answers []core.Answer) {
	for i := 1; i < len(answers); i++ {
		for j := i; j > 0 && answers[j].Prob > answers[j-1].Prob; j-- {
			answers[j], answers[j-1] = answers[j-1], answers[j]
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
