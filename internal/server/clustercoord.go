package server

import (
	"net/http"

	"github.com/imgrn/imgrn/internal/cluster"
	"github.com/imgrn/imgrn/internal/gene"
)

// Coordinator-mode serving (DESIGN.md §15). NewCluster runs the same
// HTTP surface as an in-process server over a remote cluster.Coordinator:
// /query, /query-graph, /query-batch and the mutation endpoints
// scatter-gather to the topology's shard servers, byte-identical to an
// in-process deployment at the same shard count and placement. The
// engine-internal endpoints degrade explicitly: /stats reports remote
// per-shard loads without index internals, /cluster (structure
// clustering) answers 501, and the planner stays nil (plans resolve
// through the coordinator's fixed resolution so every shard executes
// identical decisions).

// NewCluster returns a coordinator-mode server over the cluster topology
// in opts. The coordinator is built here so its imgrn_cluster_* and
// imgrn_rpc_* families land on the server's /metrics registry; callers
// reach it via Remote() (e.g. to Start the health-probe loop — NewCluster
// itself performs no I/O).
func NewCluster(opts cluster.CoordinatorOptions, cat *gene.Catalog) (*Server, error) {
	s := newBase(cat)
	opts.Registry = s.Metrics
	remote, err := cluster.New(opts)
	if err != nil {
		return nil, err
	}
	s.eng, s.remote = remote, remote
	s.mux.HandleFunc(cluster.PathMembers, s.handleClusterMembers)
	s.met.requests.With("cluster-members")
	return s, nil
}

// Remote exposes the cluster coordinator behind a NewCluster server (nil
// on every other server kind).
func (s *Server) Remote() *cluster.Coordinator { return s.remote }

// MembersResponse is the GET /cluster/members payload: the cluster
// membership/health table.
type MembersResponse struct {
	NumShards   int              `json:"numShards"`
	Replication int              `json:"replication"`
	Members     []cluster.Member `json:"members"`
}

func (s *Server) handleClusterMembers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.error(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	topo := s.remote.Topology()
	s.met.requests.With("cluster-members").Inc()
	writeJSON(w, http.StatusOK, MembersResponse{
		NumShards:   topo.NumShards,
		Replication: topo.Replication,
		Members:     s.remote.Members(r.Context()),
	})
}

// clusterStats is the coordinator-mode /stats: matrices and per-shard
// loads from the last health snapshot. Index internals (vectors, tree
// shape, pages, pivots) belong to the shard servers — scrape their /stats
// for them — and report zero here.
func (s *Server) clusterStats(w http.ResponseWriter, r *http.Request) {
	// Probe synchronously: /stats is a low-traffic diagnostic and serving
	// the boot-time snapshot would hide mutations until the next health
	// tick.
	s.remote.RefreshHealth(r.Context())
	matrices := s.remote.Matrices()
	infos := s.remote.ShardInfos()
	shards := make([]ShardStatsJSON, len(infos))
	for i, info := range infos {
		shards[i] = ShardStatsJSON{
			Shard:     info.Global,
			Sources:   info.Sources,
			Vectors:   info.Vectors,
			Queries:   info.Queries,
			Mutations: info.Mutations,
		}
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Matrices:  matrices,
		NumShards: s.remote.NumShards(),
		Shards:    shards,
	})
}
